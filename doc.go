// Package mallocsim is a trace-driven simulation framework reproducing
// Grunwald, Zorn & Henderson, "Improving the Cache Locality of Memory
// Allocation" (PLDI 1993).
//
// The repository contains faithful re-implementations of the five
// dynamic storage allocators the paper compares — FIRSTFIT (Knuth/
// Moraes), GNU G++ (Lea), BSD (Kingsley), GNU LOCAL (Haertel) and
// QUICKFIT (Weinstock/Wulf) — all operating on a simulated 32-bit
// address space in which their freelists, boundary tags and chunk
// descriptors are real memory words. Synthetic models of the paper's
// five allocation-intensive C programs (espresso, GhostScript, ptc,
// gawk, make), calibrated to the paper's published statistics, drive
// the allocators; direct-mapped cache simulation and LRU stack-distance
// page simulation consume the resulting reference traces; and an
// instruction-count cost model completes the paper's execution-time
// estimate T = I + M·P·D.
//
// Layout:
//
//	internal/mem       simulated sparse address space (sbrk, regions)
//	internal/trace     reference records, sinks, binary trace files
//	internal/cost      instruction accounting by app/malloc/free domain
//	internal/rng       deterministic PRNG and sampling distributions
//	internal/alloc     allocator interface + the six implementations
//	internal/cache     direct-mapped / set-associative cache simulators
//	internal/vm        LRU stack-distance page-fault simulation
//	internal/workload  synthetic program models and the run driver
//	internal/sim       experiment binding and metrics
//	internal/paper     one function per table and figure of the paper
//	cmd/locality       CLI regenerating any experiment
//	cmd/tracegen       trace file generation/inspection/replay
//	cmd/allocstats     per-allocator micro statistics
//	examples/          runnable walkthroughs of the public surface
//
// The benchmark suite in bench_test.go regenerates every table and
// figure (go test -bench .); EXPERIMENTS.md records paper-versus-
// measured values, and DESIGN.md documents the substitutions made for
// the unavailable 1993 substrate (Pixie traces, Tycho, VMSIM, the
// original binaries).
package mallocsim
