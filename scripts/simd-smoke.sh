#!/bin/sh
# simd-smoke.sh — end-to-end smoke test of the experiment service
# (cmd/simd), used by the CI `simd-smoke` job and runnable locally:
#
#   scripts/simd-smoke.sh
#
# Boots simd on a local port, submits one figure-4-style job (make x
# bsd on a 16K direct-mapped cache), polls it to completion, fetches
# the content-addressed report, resubmits the same spec and requires a
# result-cache hit, then sends SIGTERM and requires a clean drain.
set -eu

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8377
BASE="http://$ADDR"
SPEC='{"program":"make","allocator":"bsd","scale":1024,"caches":[{"size":16384}]}'

go build -o /tmp/simd-smoke-bin ./cmd/simd
/tmp/simd-smoke-bin -addr "$ADDR" -workers 2 -job-timeout 2m &
SIMD_PID=$!
trap 'kill "$SIMD_PID" 2>/dev/null || true' EXIT

# Wait for the service to come up.
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -fsS "$BASE/healthz"

echo "==> submit"
JOB=$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs")
echo "$JOB"
ID=$(echo "$JOB" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
HASH=$(echo "$JOB" | sed -n 's/.*"hash": "\([^"]*\)".*/\1/p')
[ -n "$ID" ] && [ -n "$HASH" ]

echo "==> poll $ID"
STATE=queued
for i in $(seq 1 150); do
    DOC=$(curl -fsS "$BASE/v1/jobs/$ID")
    STATE=$(echo "$DOC" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    if [ "$STATE" = failed ]; then
        echo "job failed: $DOC" >&2
        exit 1
    fi
    sleep 0.2
done
[ "$STATE" = done ] || { echo "job never finished (state=$STATE)" >&2; exit 1; }

echo "==> fetch report $HASH"
curl -fsS "$BASE/v1/reports/$HASH" | grep -q '"kind": "mallocsim-run-report"'

echo "==> resubmit must hit the result cache"
DUP=$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs")
echo "$DUP" | grep -q '"cached": true' || { echo "resubmission missed the cache: $DUP" >&2; exit 1; }
curl -fsS "$BASE/metrics" | grep '^simd_cache_hits_total ' | grep -qv '^simd_cache_hits_total 0$'

echo "==> metrics are Prometheus text exposition format"
curl -fsSi "$BASE/metrics" | grep -qi '^content-type: text/plain; version=0.0.4'
curl -fsS "$BASE/metrics" | grep -q '^# TYPE simd_jobs_submitted_total counter'

echo "==> SIGTERM drains cleanly"
kill -TERM "$SIMD_PID"
wait "$SIMD_PID"
trap - EXIT

echo "simd smoke: ok"
