#!/bin/sh
# lint.sh — the repository's static-analysis gate: go vet plus the
# alloclint suite (see internal/analysis and README.md "Static
# analysis"). CI runs this as the required `lint` job; run it locally
# before pushing:
#
#   scripts/lint.sh
#
# The alloclint binary is built once into GOBIN-style cache-friendly
# form via `go build` so repeated runs (and the CI job, which caches
# ~/.cache/go-build) pay the compile cost only when the analyzers
# change. Exits non-zero on any vet finding or alloclint diagnostic.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build -gcflags=-m (escape facts)"
# Feed compiler escape analysis into hotalloc: anything the compiler
# says "escapes to heap"/"moved to heap" inside a hot function is a
# diagnostic, even when no syntactic pattern catches it. -m output is
# advisory chatter on stderr; the build itself must still succeed.
escapes="${TMPDIR:-/tmp}/alloclint-escapes.$$"
bin="${TMPDIR:-/tmp}/alloclint.$$"
trap 'rm -f "$escapes" "$bin"' EXIT
go build -gcflags=-m ./... 2>"$escapes"

echo "==> alloclint ./..."
go build -o "$bin" ./cmd/alloclint
"$bin" -escapes "$escapes" ./...

echo "lint: clean"
