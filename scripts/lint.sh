#!/bin/sh
# lint.sh — the repository's static-analysis gate: go vet plus the
# alloclint suite (see internal/analysis and README.md "Static
# analysis"). CI runs this as the required `lint` job; run it locally
# before pushing:
#
#   scripts/lint.sh
#
# The alloclint binary is built once into GOBIN-style cache-friendly
# form via `go build` so repeated runs (and the CI job, which caches
# ~/.cache/go-build) pay the compile cost only when the analyzers
# change. Exits non-zero on any vet finding or alloclint diagnostic.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> alloclint ./..."
bin="${TMPDIR:-/tmp}/alloclint.$$"
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/alloclint
"$bin" ./...

echo "lint: clean"
