#!/bin/sh
# bench.sh — run the repository's locality-simulator micro-benchmarks
# and write a dated snapshot under bench/.
#
# Two artifacts per run:
#
#   bench/BENCH_<date>.txt    raw `go test -bench` output, directly
#                             usable with benchstat (old.txt new.txt)
#   bench/BENCH_<date>.json   machine-readable summary: one object per
#                             benchmark with ns/op and any custom
#                             b.ReportMetric units
#
# The JSON snapshot is additionally filed into the durable document
# store at bench/store (content-addressed, integrity-checked), so the
# benchmark trajectory is queryable alongside run reports and paper
# tables.
#
# Environment:
#   MALLOCSIM_BENCH_SCALE  experiment scale divisor (default 128; the
#                          full-matrix RunAll benchmark honours it)
#   BENCH_TIME             -benchtime for the micro-benchmarks
#                          (default 3x; RunAll always runs 1x)
#   BENCH_OUT              output directory (default bench/)
#
# Usage: scripts/bench.sh            # from the repository root
set -eu

cd "$(dirname "$0")/.."

out="${BENCH_OUT:-bench}"
benchtime="${BENCH_TIME:-3x}"
date="$(date -u +%Y-%m-%d)"
txt="$out/BENCH_$date.txt"
json="$out/BENCH_$date.json"
mkdir -p "$out"

micro='BenchmarkCacheDirectMapped$|BenchmarkCacheGroupSweep$|BenchmarkStackSimTreap$'
matrix='BenchmarkRunAllParallel$'

{
  # Micro-benchmarks: cache simulator hot paths and the LRU stack
  # treap. Several iterations each so benchstat has samples.
  go test -run '^$' -bench "$micro" -benchtime "$benchtime" .
  # Full experiment matrix through the parallel runner: one iteration
  # (it regenerates every paper table per op).
  go test -run '^$' -bench "$matrix" -benchtime 1x .
} | tee "$txt"

# Distil the raw output into JSON without external dependencies.
# Benchmark lines look like:
#   BenchmarkFoo-8  <iters>  <ns> ns/op  [<value> <unit>]...
awk -v date="$date" '
BEGIN { printf "{\n  \"date\": %c%s%c,\n  \"benchmarks\": [", 34, date, 34 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (n++) printf ","
  printf "\n    {\"name\": %c%s%c, \"iterations\": %s", 34, name, 34, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/[%\/]/, "_per_", unit)
    gsub(/[^A-Za-z0-9_.-]/, "_", unit)
    printf ", %c%s%c: %s", 34, unit, 34, $i
  }
  printf "}"
}
END {
  printf "\n  ],\n"
  printf "  \"goos\": %c%s%c,\n", 34, goos, 34
  printf "  \"goarch\": %c%s%c,\n", 34, goarch, 34
  printf "  \"cpu\": %c%s%c\n}\n", 34, cpu, 34
}' "$txt" > "$json"

echo "wrote $txt and $json"

# File the snapshot into the durable bench store (system of record).
go run ./cmd/sentinel -store "$out/store" -ingest "$json"
