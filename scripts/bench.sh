#!/bin/sh
# bench.sh — run the repository's locality-simulator micro-benchmarks
# and write a dated snapshot under bench/.
#
# Two artifacts per run:
#
#   bench/BENCH_<stamp>.txt   raw `go test -bench` output, directly
#                             usable with benchstat (old.txt new.txt)
#   bench/BENCH_<stamp>.json  machine-readable summary: one object per
#                             benchmark with ns/op and any custom
#                             b.ReportMetric units
#
# <stamp> is the UTC date, plus "-$BENCH_TAG" when a tag is set, so
# several snapshots can be recorded on one day (e.g. pre/post an
# optimization). The JSON snapshot is additionally filed into the
# durable document store at bench/store (content-addressed,
# integrity-checked), so the benchmark trajectory is queryable
# alongside run reports and paper tables.
#
# After the run, the new snapshot is compared benchstat-style against
# the most recent snapshot already in the baseline store (old ns/op,
# new ns/op, delta per benchmark). With BENCH_CHECK=1 the script exits
# 3 when BenchmarkRunAllParallel or BenchmarkServerWorkload regressed
# by more than BENCH_MAX_PCT percent (default 10) — the CI bench job's
# regression gate.
#
# Environment:
#   MALLOCSIM_BENCH_SCALE  experiment scale divisor (default 128; the
#                          full-matrix RunAll benchmark honours it)
#   BENCH_TIME             -benchtime for the micro-benchmarks
#                          (default 1s; RunAll always runs 1x)
#   BENCH_OUT              output directory (default bench/)
#   BENCH_TAG              optional snapshot tag appended to the stamp
#   BENCH_BASELINE_STORE   store to compare against and ingest into
#                          (default bench/store)
#   BENCH_CHECK            1 = fail (exit 3) on a >BENCH_MAX_PCT
#                          regression of BenchmarkRunAllParallel or
#                          BenchmarkServerWorkload
#   BENCH_MAX_PCT          regression threshold percent (default 10)
#
# Usage: scripts/bench.sh            # from the repository root
set -eu

cd "$(dirname "$0")/.."

out="${BENCH_OUT:-bench}"
benchtime="${BENCH_TIME:-1s}"
date="$(date -u +%Y-%m-%d)"
tag="${BENCH_TAG:-}"
stamp="$date${tag:+-$tag}"
txt="$out/BENCH_$stamp.txt"
json="$out/BENCH_$stamp.json"
baseline="${BENCH_BASELINE_STORE:-bench/store}"
maxpct="${BENCH_MAX_PCT:-10}"
mkdir -p "$out"

# Capture the previous snapshot (the old side of the comparison)
# before this run is ingested, so a same-day re-run still compares
# against genuinely older numbers.
prev=""
if [ -d "$baseline" ]; then
  prev="$(mktemp)"
  if ! go run ./cmd/sentinel -store "$baseline" -latest-bench > "$prev" 2>/dev/null; then
    rm -f "$prev"
    prev=""
  fi
fi

micro='BenchmarkCacheDirectMapped$|BenchmarkCacheGroupSweep$|BenchmarkCacheGroupBlockSweep$|BenchmarkStackSimTreap$|BenchmarkStackSimSweepExact$|BenchmarkStackSimSweepSampled$'
matrix='BenchmarkRunAllParallel$|BenchmarkServerWorkload$'

{
  # Micro-benchmarks: cache simulator hot paths (per-ref and columnar
  # block delivery) and the LRU stack engines (exact and sampled).
  # Several iterations each so benchstat has samples.
  go test -run '^$' -bench "$micro" -benchtime "$benchtime" .
  # Full experiment matrix through the parallel runner, plus the
  # concurrent server sweep: one iteration each (they regenerate whole
  # experiment tables per op).
  go test -run '^$' -bench "$matrix" -benchtime 1x .
} | tee "$txt"

# Distil the raw output into JSON without external dependencies.
# Benchmark lines look like:
#   BenchmarkFoo-8  <iters>  <ns> ns/op  [<value> <unit>]...
awk -v date="$stamp" '
BEGIN { printf "{\n  \"date\": %c%s%c,\n  \"benchmarks\": [", 34, date, 34 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (n++) printf ","
  printf "\n    {\"name\": %c%s%c, \"iterations\": %s", 34, name, 34, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/[%\/]/, "_per_", unit)
    gsub(/[^A-Za-z0-9_.-]/, "_", unit)
    printf ", %c%s%c: %s", 34, unit, 34, $i
  }
  printf "}"
}
END {
  printf "\n  ],\n"
  printf "  \"goos\": %c%s%c,\n", 34, goos, 34
  printf "  \"goarch\": %c%s%c,\n", 34, goarch, 34
  printf "  \"cpu\": %c%s%c\n}\n", 34, cpu, 34
}' "$txt" > "$json"

echo "wrote $txt and $json"

# File the snapshot into the durable bench store (system of record).
mkdir -p "$baseline"
go run ./cmd/sentinel -store "$baseline" -ingest "$json"
if [ "$out/store" != "$baseline" ] && [ -d "$out/store" ]; then
  go run ./cmd/sentinel -store "$out/store" -ingest "$json"
fi

# Benchstat-style comparison against the previous snapshot. Both sides
# are the script's own JSON format: benchmark objects carry ns_per_op.
if [ -n "$prev" ]; then
  echo ""
  awk -v maxpct="$maxpct" -v check="${BENCH_CHECK:-0}" '
  function getname(line) {
    if (match(line, /"name": "[^"]*"/)) {
      s = substr(line, RSTART + 9, RLENGTH - 10)
      return s
    }
    return ""
  }
  function getns(line) {
    if (match(line, /"ns_per_op": [0-9.e+-]+/))
      return substr(line, RSTART + 13, RLENGTH - 13) + 0
    return -1
  }
  /"date":/ {
    if (match($0, /"date": "[^"]*"/)) {
      d = substr($0, RSTART + 9, RLENGTH - 10)
      if (FNR == NR) olddate = d; else newdate = d
    }
  }
  /"name":/ {
    name = getname($0); ns = getns($0)
    if (name == "" || ns < 0) next
    if (FNR == NR) { old[name] = ns }
    else { new[name] = ns; order[++n] = name }
  }
  END {
    printf "benchstat %s vs %s\n", olddate, newdate
    printf "%-34s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    fail = 0
    for (i = 1; i <= n; i++) {
      name = order[i]
      if (!(name in old)) {
        printf "%-34s %14s %14.2f %9s\n", name, "-", new[name], "new"
        continue
      }
      delta = (new[name] - old[name]) / old[name] * 100
      printf "%-34s %14.2f %14.2f %+8.1f%%\n", name, old[name], new[name], delta
      if ((name == "BenchmarkRunAllParallel" || name == "BenchmarkServerWorkload") && delta > maxpct) fail = 1
    }
    if (check == 1 && fail) {
      printf "FAIL: a gated benchmark regressed more than %s%%\n", maxpct
      exit 3
    }
  }' "$prev" "$json" || rc=$?
  rm -f "$prev"
  exit "${rc:-0}"
fi
