package mallocsim

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section. Each BenchmarkFigureN / BenchmarkTableN
// runs the corresponding experiment end to end (synthetic workloads
// through real allocators through the locality simulators) and prints
// the resulting table once, so
//
//	go test -bench . -benchtime 1x
//
// reproduces the whole paper. MALLOCSIM_BENCH_SCALE (default 128)
// trades fidelity for time: scale 16 takes minutes and matches
// EXPERIMENTS.md; scale 128 smoke-tests the harness in seconds.
//
// BenchmarkMallocFree* are conventional micro-benchmarks of the six
// allocator implementations themselves; BenchmarkAblation* quantify the
// design decisions the paper's §4.3/§4.4 discussion calls out.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all"
	"mallocsim/internal/apps"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/paper"
	"mallocsim/internal/rng"
	"mallocsim/internal/sim"
	"mallocsim/internal/trace"
	"mallocsim/internal/vm"
	"mallocsim/internal/workload"
)

func benchScale() uint64 {
	if s := os.Getenv("MALLOCSIM_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 128
}

var printOnce sync.Map

// benchExperiment runs one paper experiment per iteration and prints
// its table the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchScale())
		e, ok := r.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		tab, err := e.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", tab.String())
		}
	}
}

func BenchmarkTable1Programs(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Baseline(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkFigure1MallocTime(b *testing.B)    { benchExperiment(b, "figure1") }
func BenchmarkFigure2PageFaultsGS(b *testing.B)  { benchExperiment(b, "figure2") }
func BenchmarkFigure3PageFaultsPTC(b *testing.B) { benchExperiment(b, "figure3") }
func BenchmarkFigure4NormTime16K(b *testing.B)   { benchExperiment(b, "figure4") }
func BenchmarkFigure5NormTime64K(b *testing.B)   { benchExperiment(b, "figure5") }
func BenchmarkTable3GSInputs(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFigure6GSSmall(b *testing.B)       { benchExperiment(b, "figure6") }
func BenchmarkFigure7GSMedium(b *testing.B)      { benchExperiment(b, "figure7") }
func BenchmarkFigure8GSLarge(b *testing.B)       { benchExperiment(b, "figure8") }
func BenchmarkTable4ExecTime16K(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5ExecTime64K(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6BoundaryTags(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkFigure9SizeMapping(b *testing.B)   { benchExperiment(b, "figure9") }

// BenchmarkServerWorkload runs the concurrent server experiment — the
// full 19-allocator sharing-attribution sweep — end to end. It is one
// of the two benchmarks gated by the CI regression check (bench.sh,
// BENCH_MAX_PCT): the server driver, tid plumbing and sharing
// attributor all sit on its hot path.
func BenchmarkServerWorkload(b *testing.B) { benchExperiment(b, "server") }

// --- allocator micro-benchmarks ---

// benchMallocFree measures a steady malloc/free churn through one
// allocator implementation, reporting simulated instructions per
// operation alongside the host-side ns/op.
func benchMallocFree(b *testing.B, name string) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	a, err := alloc.New(name, m)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	sizes := []uint32{8, 16, 24, 24, 32, 48, 64, 128, 24, 16}
	var live []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 64 || (len(live) > 0 && r.Bool(0.5)) {
			k := r.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				b.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p, err := a.Malloc(sizes[i%len(sizes)])
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, p)
	}
	b.ReportMetric(float64(meter.Total())/float64(b.N), "sim-instr/op")
}

func BenchmarkMallocFreeFirstFit(b *testing.B) { benchMallocFree(b, "firstfit") }
func BenchmarkMallocFreeGnuFit(b *testing.B)   { benchMallocFree(b, "gnufit") }
func BenchmarkMallocFreeBSD(b *testing.B)      { benchMallocFree(b, "bsd") }
func BenchmarkMallocFreeGnuLocal(b *testing.B) { benchMallocFree(b, "gnulocal") }
func BenchmarkMallocFreeQuickFit(b *testing.B) { benchMallocFree(b, "quickfit") }
func BenchmarkMallocFreeCustom(b *testing.B)   { benchMallocFree(b, "custom") }

// --- pointer-chasing kernel benchmarks (package apps) ---

// benchKernel times one kernel iteration through one allocator and
// reports the simulated instruction cost.
func benchKernel(b *testing.B, kernelName, allocName string) {
	app, ok := apps.Get(kernelName)
	if !ok {
		b.Fatalf("no kernel %q", kernelName)
	}
	size := 1500
	if kernelName == "cubes" {
		size = 300 // quadratic pairwise passes
	}
	for i := 0; i < b.N; i++ {
		meter := &cost.Meter{}
		m := mem.New(trace.Discard, meter)
		a, err := alloc.New(allocName, m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.Run(apps.NewCtx(m, a, 1), size); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(meter.Total()), "sim-instr")
	}
}

func BenchmarkKernelSymtabQuickFit(b *testing.B) { benchKernel(b, "symtab", "quickfit") }
func BenchmarkKernelSymtabFirstFit(b *testing.B) { benchKernel(b, "symtab", "firstfit") }
func BenchmarkKernelListsortBSD(b *testing.B)    { benchKernel(b, "listsort", "bsd") }
func BenchmarkKernelXlatGnuLocal(b *testing.B)   { benchKernel(b, "xlat", "gnulocal") }
func BenchmarkKernelCubesCustom(b *testing.B)    { benchKernel(b, "cubes", "custom") }
func BenchmarkKernelDepgraphGnuFit(b *testing.B) { benchKernel(b, "depgraph", "gnufit") }

// --- locality simulator micro-benchmarks ---

func BenchmarkCacheDirectMapped(b *testing.B) {
	c := cache.New(cache.Config{Size: 64 << 10})
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Ref(trace.Ref{Addr: r.Uint64n(1 << 22), Size: 4})
	}
}

func BenchmarkCacheFourWay(b *testing.B) {
	c := cache.New(cache.Config{Size: 64 << 10, Assoc: 4})
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Ref(trace.Ref{Addr: r.Uint64n(1 << 22), Size: 4})
	}
}

func BenchmarkStackSimTreap(b *testing.B) {
	s := vm.NewStackSim()
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var addr uint64
		if r.Bool(0.7) {
			addr = r.Uint64n(64 * 4096) // hot set
		} else {
			addr = r.Uint64n(4096 * 4096)
		}
		s.Ref(trace.Ref{Addr: addr, Size: 4})
	}
}

// BenchmarkCacheGroupSweep drives the paper's five-configuration cache
// group (the per-pair workhorse of package paper) with a mixed stream:
// mostly word refs, some straddling line boundaries, occasional block
// refs spanning several lines. This is the hot path the sparse paged
// bitset and the hoisted line decomposition target.
func BenchmarkCacheGroupSweep(b *testing.B) {
	cfgs := make([]cache.Config, len(paper.CacheSizes))
	for i, s := range paper.CacheSizes {
		cfgs[i] = cache.Config{Size: s}
	}
	g := cache.NewGroup(cfgs...)
	r := rng.New(4)
	refs := make([]trace.Ref, 4096)
	for i := range refs {
		ref := trace.Ref{Addr: r.Uint64n(1 << 24), Size: 4}
		if r.Bool(0.3) {
			ref.Kind = trace.Write
		}
		switch {
		case r.Bool(0.05):
			ref.Size = 256 // multi-line block copy
		case r.Bool(0.1):
			ref.Addr = ref.Addr&^63 + 62 // straddles a line boundary
			ref.Size = 8
		}
		refs[i] = ref
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ref(refs[i%len(refs)])
	}
	b.ReportMetric(float64(g.DistinctLines()), "distinct-lines")
}

// BenchmarkCacheGroupBlockSweep drives the same five-configuration
// group with the same mixed stream as BenchmarkCacheGroupSweep, but
// delivered as one columnar trace.Block per op (4096 rows, including
// collapsed run rows): the fused sweep decomposes each block into
// lines once and probes every config from the shared stream. Compare
// the reported ns/ref against BenchmarkCacheGroupSweep's ns/op — both
// simulate the identical reference sequence.
func BenchmarkCacheGroupBlockSweep(b *testing.B) {
	cfgs := make([]cache.Config, len(paper.CacheSizes))
	for i, s := range paper.CacheSizes {
		cfgs[i] = cache.Config{Size: s}
	}
	g := cache.NewGroup(cfgs...)
	r := rng.New(4)
	blk := &trace.Block{}
	refs := 0
	for blk.Len() < 4096 {
		ref := trace.Ref{Addr: r.Uint64n(1 << 24), Size: 4}
		if r.Bool(0.3) {
			ref.Kind = trace.Write
		}
		switch {
		case r.Bool(0.05):
			ref.Size = 256 // multi-line block copy
		case r.Bool(0.1):
			ref.Addr = ref.Addr&^63 + 62 // straddles a line boundary
			ref.Size = 8
		case r.Bool(0.1):
			// A collapsed run row: a sequential word sweep, as the
			// allocators' clear/copy loops emit via mem.TouchRun.
			blk.AppendRun(ref.Addr&^7, 8, ref.Kind, 32)
			refs += 32
			continue
		}
		blk.Append(ref)
		refs++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Block(blk)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*refs), "ns/ref")
	b.ReportMetric(float64(g.DistinctLines()), "distinct-lines")
}

// BenchmarkStackSimSweepExact and BenchmarkStackSimSweepSampled drive
// the default (Fenwick) stack-distance engine with an identical
// hot/cold paging stream in block mode, exact versus page-sampled at
// rate 1/256 (WithSampleShift(8)). Their ns/op ratio is the speedup the
// sampled mode buys on reconnaissance sweeps; the exact mode remains
// the default and the only one the golden figures accept.
func benchStackSimSweep(b *testing.B, opts ...vm.Option) {
	s := vm.NewStackSim(opts...)
	r := rng.New(3)
	blk := &trace.Block{}
	for blk.Len() < 4096 {
		var addr uint64
		if r.Bool(0.2) {
			addr = r.Uint64n(64 * 4096) // hot set
		} else {
			addr = r.Uint64n(1 << 32) // 1 Mi cold pages
		}
		blk.Append(trace.Ref{Addr: addr, Size: 4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Block(blk)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blk.Len()), "ns/ref")
}

func BenchmarkStackSimSweepExact(b *testing.B)   { benchStackSimSweep(b) }
func BenchmarkStackSimSweepSampled(b *testing.B) { benchStackSimSweep(b, vm.WithSampleShift(8)) }

// BenchmarkTeeBatch compares synchronous per-ref delivery against the
// batched ring-buffer path through a realistic fan-out (counter + cache
// group + filter), measured per simulated reference.
func BenchmarkTeeBatch(b *testing.B) {
	mkSink := func() trace.Sink {
		g := cache.NewGroup(cache.Config{Size: 16 << 10}, cache.Config{Size: 64 << 10})
		return trace.NewTee(
			&trace.Counter{},
			g,
			&trace.Filter{Keep: func(r trace.Ref) bool { return r.Kind == trace.Write }, Next: &trace.Counter{}},
		)
	}
	run := func(b *testing.B, batch int) {
		m := mem.New(mkSink(), &cost.Meter{})
		m.SetBatching(batch)
		region := m.NewRegion("bench", 1<<21)
		base, err := region.Sbrk(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := base + r.Uint64n(1<<20)&^7
			if r.Bool(0.3) {
				m.WriteWord(a, uint64(i))
			} else {
				m.ReadWord(a)
			}
		}
		m.Flush()
	}
	b.Run("direct", func(b *testing.B) { run(b, -1) })
	b.Run("batched", func(b *testing.B) { run(b, 0) })
}

// BenchmarkRunAllParallel regenerates the paper's entire experiment
// suite per iteration with the worker pool at GOMAXPROCS;
// BenchmarkRunAllSequential is the same matrix at Workers=1. Their
// ratio is the wall-clock win of parallel matrix execution (the output
// is byte-identical either way).
func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchScale())
		if _, err := r.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchScale())
		r.Workers = 1
		if _, err := r.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches: the §4.3/§4.4 design decisions ---

func runAblation(b *testing.B, progName, allocName string, caches ...cache.Config) *sim.Result {
	b.Helper()
	prog, ok := workload.ByName(progName)
	if !ok {
		b.Fatal("unknown program")
	}
	res, err := sim.Run(sim.Config{
		Program:   prog,
		Allocator: allocName,
		Scale:     benchScale(),
		Caches:    caches,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationCoalescing quantifies §4.1's claim that coalescing
// buys space at the price of time and locality.
func BenchmarkAblationCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := runAblation(b, "espresso", "firstfit", cache.Config{Size: 64 << 10})
		off := runAblation(b, "espresso", "firstfit-nocoalesce", cache.Config{Size: 64 << 10})
		b.ReportMetric(float64(off.Footprint)/float64(on.Footprint), "space-ratio")
		b.ReportMetric(off.Caches[0].MissRate()/on.Caches[0].MissRate(), "miss-ratio")
	}
}

// BenchmarkAblationRover compares Knuth's roving pointer against
// scanning from the list head.
func BenchmarkAblationRover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rover := runAblation(b, "espresso", "firstfit", cache.Config{Size: 64 << 10})
		head := runAblation(b, "espresso", "firstfit-norover", cache.Config{Size: 64 << 10})
		b.ReportMetric(float64(head.Instr.Total())/float64(rover.Instr.Total()), "instr-ratio")
	}
}

// BenchmarkAblationAssociativity extends the paper's direct-mapped
// study along the axis its related-work section cites (Wilson et al.).
func BenchmarkAblationAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runAblation(b, "gs-small", "quickfit",
			cache.Config{Size: 16 << 10, Assoc: 1},
			cache.Config{Size: 16 << 10, Assoc: 2},
			cache.Config{Size: 16 << 10, Assoc: 4})
		b.ReportMetric(res.Caches[0].MissRate()*100, "miss%-1way")
		b.ReportMetric(res.Caches[1].MissRate()*100, "miss%-2way")
		b.ReportMetric(res.Caches[2].MissRate()*100, "miss%-4way")
	}
}

// BenchmarkAblationChunkReclaim measures the cost of the custom
// allocator's optional whole-chunk reclamation.
func BenchmarkAblationChunkReclaim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := runAblation(b, "gawk", "custom", cache.Config{Size: 16 << 10})
		reclaim := runAblation(b, "gawk", "custom-reclaim", cache.Config{Size: 16 << 10})
		b.ReportMetric(float64(reclaim.Instr.Total())/float64(plain.Instr.Total()), "instr-ratio")
		b.ReportMetric(float64(reclaim.Footprint)/float64(plain.Footprint), "space-ratio")
	}
}

// BenchmarkAblationSizeClasses sweeps the §4.4 size-class granularity
// choice: power-of-two versus 25%-bounded classes.
func BenchmarkAblationSizeClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pow2 := runAblation(b, "gawk", "custom-pow2", cache.Config{Size: 16 << 10})
		bounded := runAblation(b, "gawk", "custom", cache.Config{Size: 16 << 10})
		b.ReportMetric(float64(pow2.Footprint)/float64(bounded.Footprint), "pow2-space-ratio")
	}
}
