module mallocsim

go 1.22
