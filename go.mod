module mallocsim

go 1.22

// Dependency policy: the module is deliberately stdlib-only so every
// target (tests, simulators, cmd/alloclint) builds in hermetic
// environments with no module proxy. The static-analysis suite under
// internal/analysis would normally pin golang.org/x/tools (go/analysis,
// analysistest); that pin is gated until a vendored or proxied copy is
// available, and the suite instead ships a small API-compatible
// framework on go/{ast,build,parser,types} (see internal/analysis and
// internal/analysis/load). To swap in x/tools later: add the require
// here, replace the mallocsim/internal/analysis imports in each
// analyzer with golang.org/x/tools/go/analysis, and drop
// internal/analysis/{load,analysistest}.
