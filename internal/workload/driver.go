package workload

import (
	"context"
	"fmt"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

// Config parameterizes one driver run.
type Config struct {
	Program Program
	// Scale divides the program's event counts: Scale 16 runs 1/16 of
	// the allocations, references and instructions. The long-lived
	// object count is *not* scaled (it is interleaved more densely), so
	// for churn-dominated programs the heap footprint — and therefore
	// cache and paging behaviour — is preserved across scales. Scale 1
	// reproduces Table 2 exactly.
	Scale uint64
	// Seed makes runs reproducible; the same seed yields the identical
	// operation sequence regardless of allocator.
	Seed uint64
	// SampleEvery, when non-zero, captures a fragmentation sample every
	// that many allocation steps: live payload bytes versus heap bytes
	// requested from the OS. The series shows how each allocator's
	// space overhead evolves (the paper's §4.1 space-efficiency axis).
	SampleEvery uint64
	// DisableLocalityHints suppresses the birth-phase locality hints the
	// driver passes to hint-aware allocators (alloc.LocalityHinter),
	// forcing the plain Malloc/MallocSite path. Runs against allocators
	// that do not exploit hints are byte-identical either way — the hint
	// is computed without consuming randomness or charging instructions —
	// so the knob exists to measure what hinting itself buys.
	DisableLocalityHints bool
}

// Sample is one point of the fragmentation time series.
type Sample struct {
	Step uint64
	// LiveBytes is the payload currently allocated by the program.
	LiveBytes uint64
	// HeapBytes is what the allocator has requested from the OS
	// (excluding the workload's own stack/global segments).
	HeapBytes uint64
}

// Overhead returns HeapBytes per live payload byte.
func (s Sample) Overhead() float64 {
	if s.LiveBytes == 0 {
		return 0
	}
	return float64(s.HeapBytes) / float64(s.LiveBytes)
}

// Stats summarizes a completed run (the raw material of Table 2).
type Stats struct {
	Program   string
	Allocs    uint64
	Frees     uint64
	FinalLive uint64
	// LiveBytes is the payload bytes still allocated at exit.
	LiveBytes uint64
	// ReqBytes is the total payload bytes requested over the run.
	ReqBytes uint64
	// Handoffs counts producer/consumer cross-thread frees: objects
	// allocated by one logical thread and freed by another. Always zero
	// for the (single-threaded) program driver; the server driver fills
	// it in.
	Handoffs uint64
	// Samples is the fragmentation time series (Config.SampleEvery).
	Samples []Sample
}

// recencyWindow is the temporal-locality model: the application mostly
// re-references recently used objects, Zipf-weighted by recency rank.
const (
	windowSize  = 32
	zipfExp     = 1.1
	windowProb  = 0.85 // else uniform over all live objects
	writeProb   = 0.3
	maxRunWords = 8
)

type object struct {
	addr uint64
	size uint32
	idx  int // position in the live slice
	dead bool
}

// deathEvent schedules an object's free.
type deathEvent struct {
	step uint64
	obj  *object
}

// deathQueue is a binary min-heap on step.
type deathQueue []deathEvent

func (q *deathQueue) push(e deathEvent) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].step <= (*q)[i].step {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func (q *deathQueue) pop() deathEvent {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	*q = h[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].step < h[smallest].step {
			smallest = l
		}
		if r < n && h[r].step < h[smallest].step {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// driver holds one run's state.
type driver struct {
	m      *mem.Memory
	a      alloc.Allocator
	hinter alloc.LocalityHinter // non-nil only when hints are on and exploited
	meter  *cost.Meter
	prog   Program

	sizeRng *rng.Rand
	lifeRng *rng.Rand
	refRng  *rng.Rand

	churnDist    *rng.Discrete
	churnSizes   []uint32
	immortalDist *rng.Discrete
	immortalSzs  []uint32
	windowZipf   *rng.Zipf
	globalZipf   *rng.Zipf

	live   []*object
	deaths deathQueue
	window [windowSize]*object
	wpos   int

	stackBase  uint64
	sp         uint64
	globalBase uint64
	globalHot  []uint64

	refsAcc  float64 // reference budget accumulator
	refsStep uint64  // references emitted this step

	liveBytes uint64
	nonHeap   []*mem.Region // stack + globals, excluded from heap samples

	stats Stats
}

// cancelCheckEvery is the cancellation-poll cadence of the driver's
// step loop: every that many allocation steps RunContext checks whether
// its context is done. One step is a bounded amount of work (one
// malloc, the scheduled frees, and the step's reference budget), so the
// poll granularity keeps cancellation latency in the low milliseconds
// while the check itself — one interface call on a non-cancellable
// context — stays invisible in profiles.
const cancelCheckEvery = 1024

// Run drives the program model against allocator a on memory m,
// creating stack and global regions on m for the application's
// non-heap references. The allocator must already be constructed on
// the same memory. References flow to m's sink; instructions to its
// meter with malloc/free time in the proper cost domains.
func Run(m *mem.Memory, a alloc.Allocator, cfg Config) (Stats, error) {
	return RunContext(context.Background(), m, a, cfg)
}

// RunContext is Run with cooperative cancellation: the step loop polls
// ctx every cancelCheckEvery allocation steps and returns early with
// context.Cause(ctx) wrapped in the error when the context is done.
// Cancellation does not perturb determinism — a run that completes
// produces byte-identical results whether or not ctx is cancellable.
func RunContext(ctx context.Context, m *mem.Memory, a alloc.Allocator, cfg Config) (Stats, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	p := cfg.Program
	d := &driver{m: m, a: a, meter: m.Meter(), prog: p}
	if d.meter == nil {
		d.meter = &cost.Meter{}
	}
	// Locality hints flow only to allocators that natively exploit them.
	// alloc.HintAware sees through instrumentation wrappers (which
	// implement MallocLocal unconditionally as a transparent fallback):
	// without the probe, a wrapped site-aware allocator would be routed
	// down the hint path and lose its site information.
	if !cfg.DisableLocalityHints && alloc.HintAware(a) {
		d.hinter, _ = a.(alloc.LocalityHinter)
	}

	root := rng.New(cfg.Seed ^ hashName(p.Name))
	d.sizeRng = root.Split()
	d.lifeRng = root.Split()
	d.refRng = root.Split()

	d.churnDist, d.churnSizes = buildDist(p.ChurnSizes)
	d.immortalDist, d.immortalSzs = buildDist(p.ImmortalSizes)
	d.windowZipf = rng.NewZipf(windowSize, zipfExp)
	d.globalZipf = rng.NewZipf(64, 1.0)

	// Stack segment: a small, intensely hot region.
	stack := m.NewRegion(p.Name+"-stack", 64*1024)
	sb, err := stack.Sbrk(8 * 1024)
	if err != nil {
		return Stats{}, err
	}
	d.stackBase = sb
	d.sp = 1024
	d.nonHeap = append(d.nonHeap, stack)

	// Global segment with a Zipf-hot set of word addresses.
	globals := m.NewRegion(p.Name+"-globals", 0)
	gb, err := globals.Sbrk(p.GlobalBytes)
	if err != nil {
		return Stats{}, err
	}
	d.globalBase = gb
	d.nonHeap = append(d.nonHeap, globals)
	d.globalHot = make([]uint64, 64)
	for i := range d.globalHot {
		d.globalHot[i] = gb + mem.AlignUp(d.refRng.Uint64n(p.GlobalBytes-4), mem.WordSize)
	}

	nAllocs := p.Allocs / cfg.Scale
	if nAllocs == 0 {
		nAllocs = 1
	}
	// The long-lived object count is kept at its full-scale value so the
	// heap footprint survives downscaling, but at extreme scales it is
	// capped so churn still dominates the run (real behaviour at any
	// scale has far more deaths than survivors). Programs that free
	// nothing (PTC) bypass this via the immortal branch below.
	immortalTarget := p.ImmortalCount()
	if p.Frees > 0 && immortalTarget > nAllocs/2 {
		immortalTarget = nAllocs / 2
	}
	// Bresenham-style interleaving spreads exactly immortalTarget
	// long-lived allocations through the run, in small bursts: real
	// programs allocate long-lived structure in clusters (loading a
	// document, building a table), not one object at a time. Bursting
	// also keeps the permanent heap from shredding the address space
	// into isolated holes beyond what real programs exhibit.
	const immortalBurst = 4
	var immAcc uint64
	var immPending uint64
	refsPerStep := p.RefsPerAlloc()
	instrPerStep := p.InstrPerAlloc()

	d.stats.Program = p.Name
	var frees uint64 // amortized cancellation poll across death drains
	for step := uint64(0); step < nAllocs; step++ {
		if step%cancelCheckEvery == 0 && ctx.Err() != nil {
			return d.stats, fmt.Errorf("workload %s: aborted at step %d/%d: %w",
				p.Name, step, nAllocs, context.Cause(ctx))
		}
		// Deaths scheduled at or before this step happen first, so the
		// allocator sees the recycling opportunity the paper's
		// segregated-storage designs exploit. The drain after a free
		// burst is unbounded in step terms, so it polls on its own
		// counter (ctx.Err() is nil until cancellation, so the poll
		// leaves uncancelled runs byte-identical).
		for len(d.deaths) > 0 && d.deaths[0].step <= step {
			frees++
			if frees%cancelCheckEvery == 0 && ctx.Err() != nil {
				return d.stats, fmt.Errorf("workload %s: aborted at step %d/%d: %w",
					p.Name, step, nAllocs, context.Cause(ctx))
			}
			ev := d.deaths.pop()
			if err := d.freeObject(ev.obj); err != nil {
				return d.stats, fmt.Errorf("workload %s step %d: %w", p.Name, step, err)
			}
		}

		immortal := false
		immAcc += immortalTarget
		if immPending > 0 {
			immPending--
			immortal = true
		} else if immAcc >= nAllocs*immortalBurst {
			immAcc -= nAllocs * immortalBurst
			immPending = immortalBurst - 1
			immortal = true
		}
		var size uint32
		var site uint32
		if immortal || p.Frees == 0 {
			idx := d.immortalDist.Sample(d.sizeRng)
			size = d.immortalSzs[idx]
			site = immortalSiteBase + uint32(idx)
			immortal = true
		} else {
			idx := d.churnDist.Sample(d.sizeRng)
			size = d.churnSizes[idx]
			site = churnSiteBase + uint32(idx)
		}

		obj, err := d.mallocObject(size, site, uint32(step>>localityPhaseShift))
		if err != nil {
			return d.stats, fmt.Errorf("workload %s step %d: %w", p.Name, step, err)
		}
		if !immortal {
			death := step + 1 + d.sampleLife()
			// Phase behaviour: deaths land on batch boundaries, so the
			// program releases objects in bursts.
			if b := p.FreeBatch; b > 1 {
				death = (death + b - 1) / b * b
			}
			d.deaths.push(deathEvent{step: death, obj: obj})
		}

		// The application initializes its new object...
		d.refsStep = 0
		d.initObject(obj)
		// ...then computes, referencing stack, globals and the heap.
		d.refsAcc += refsPerStep - float64(d.refsStep)
		d.emitRefs()
		// Pure-compute instructions fill out the instruction budget
		// (each reference already charged one instruction).
		if extra := instrPerStep - float64(d.refsStep); extra > 1 {
			d.meter.ChargeTo(cost.App, uint64(extra))
		}

		if cfg.SampleEvery > 0 && step%cfg.SampleEvery == 0 {
			d.stats.Samples = append(d.stats.Samples, d.sample(step))
		}
	}

	d.stats.FinalLive = uint64(len(d.live))
	for _, o := range d.live {
		d.stats.LiveBytes += uint64(o.size)
	}
	return d.stats, nil
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func buildDist(sw []SizeWeight) (*rng.Discrete, []uint32) {
	weights := make([]float64, len(sw))
	sizes := make([]uint32, len(sw))
	for i, e := range sw {
		weights[i] = e.Weight
		sizes[i] = e.Size
	}
	return rng.NewDiscrete(weights), sizes
}

func (d *driver) sampleLife() uint64 {
	p := d.prog
	if p.MediumFrac > 0 && d.lifeRng.Bool(p.MediumFrac) {
		return d.lifeRng.Geometric(p.MediumLife)
	}
	return d.lifeRng.Geometric(p.ShortLife)
}

// Synthetic call-site identifiers: each size-distribution entry plays
// the role of one allocation site, the granularity at which Barrett &
// Zorn-style predictors observe programs. Site-aware allocators (the
// lifetime package) receive them; everything else sees plain Malloc.
const (
	churnSiteBase    = 1
	immortalSiteBase = 1001
)

// localityPhaseShift derives an object's locality hint from its birth
// step: steps in the same 2^localityPhaseShift-step window share a
// hint, modelling a program phase whose objects are born — and will be
// referenced — together. Hint-aware allocators (alloc.LocalityHinter)
// receive it; everything else is untouched, and the derivation costs
// no randomness or instructions, so non-hinted runs stay
// byte-identical.
const localityPhaseShift = 6

func (d *driver) mallocObject(size uint32, site uint32, hint uint32) (*object, error) {
	prev := d.meter.Enter(cost.Malloc)
	d.meter.Charge(alloc.CallOverhead)
	var addr uint64
	var err error
	if d.hinter != nil {
		addr, err = d.hinter.MallocLocal(size, hint)
	} else if sa, ok := d.a.(alloc.SiteAllocator); ok {
		addr, err = sa.MallocSite(size, site)
	} else {
		addr, err = d.a.Malloc(size)
	}
	d.meter.Enter(prev)
	if err != nil {
		return nil, err
	}
	d.stats.Allocs++
	d.stats.ReqBytes += uint64(size)
	d.liveBytes += uint64(size)
	o := &object{addr: addr, size: size, idx: len(d.live)}
	d.live = append(d.live, o)
	d.window[d.wpos] = o
	d.wpos = (d.wpos + 1) % windowSize
	return o, nil
}

func (d *driver) freeObject(o *object) error {
	prev := d.meter.Enter(cost.Free)
	d.meter.Charge(alloc.CallOverhead)
	err := d.a.Free(o.addr)
	d.meter.Enter(prev)
	if err != nil {
		return err
	}
	d.stats.Frees++
	d.liveBytes -= uint64(o.size)
	o.dead = true
	last := len(d.live) - 1
	d.live[o.idx] = d.live[last]
	d.live[o.idx].idx = o.idx
	d.live = d.live[:last]
	return nil
}

// sample captures one fragmentation time-series point.
func (d *driver) sample(step uint64) Sample {
	heap := d.m.Footprint()
	for _, r := range d.nonHeap {
		heap -= r.Size()
	}
	return Sample{Step: step, LiveBytes: d.liveBytes, HeapBytes: heap}
}

// initObject writes every word of the fresh object, as real programs
// initialize their allocations. Large objects (GhostScript buffers) can
// exceed one step's reference budget; the accumulator carries the debt
// forward so total references stay on target.
func (d *driver) initObject(o *object) {
	words := uint64(o.size) / mem.WordSize
	if words == 0 {
		d.m.Touch(o.addr, o.size, trace.Write)
		d.refsStep++
		return
	}
	d.m.TouchRun(o.addr, words, trace.Write)
	d.refsStep += words
}

// emitRefs spends the accumulated reference budget on a locality-shaped
// mix of stack, global and heap references.
func (d *driver) emitRefs() {
	p := d.prog
	for d.refsAcc >= 1 {
		r := d.refRng.Float64()
		switch {
		case r < p.StackFrac:
			d.stackRef()
			d.refsAcc--
			d.refsStep++
		case r < p.StackFrac+p.GlobalFrac:
			d.globalRef()
			d.refsAcc--
			d.refsStep++
		default:
			n := d.heapRun()
			d.refsAcc -= float64(n)
			d.refsStep += n
		}
	}
}

// stackRef models a procedure-call stack: the pointer random-walks in a
// narrow band and references land near it.
func (d *driver) stackRef() {
	delta := int64(d.refRng.Uint64n(129)) - 64
	sp := int64(d.sp) + delta
	if sp < 64 {
		sp = 64
	}
	if sp > 1984 {
		sp = 1984
	}
	d.sp = uint64(sp)
	off := d.sp - d.refRng.Uint64n(16)*mem.WordSize
	kind := trace.Read
	if d.refRng.Bool(0.45) {
		kind = trace.Write
	}
	d.m.Touch(d.stackBase+mem.AlignUp(off, mem.WordSize), mem.WordSize, kind)
}

func (d *driver) globalRef() {
	addr := d.globalHot[d.globalZipf.Sample(d.refRng)]
	kind := trace.Read
	if d.refRng.Bool(0.2) {
		kind = trace.Write
	}
	d.m.Touch(addr, mem.WordSize, kind)
}

// heapRun references a short sequential run of words inside one live
// object, chosen mostly from the recency window (temporal locality)
// and otherwise uniformly from the live set.
func (d *driver) heapRun() uint64 {
	o := d.pickObject()
	if o == nil {
		// Nothing live: burn one reference on the stack instead.
		d.stackRef()
		return 1
	}
	words := uint64(o.size) / mem.WordSize
	if words == 0 {
		d.m.Touch(o.addr, o.size, trace.Read)
		return 1
	}
	start := d.refRng.Uint64n(words)
	run := 1 + d.refRng.Uint64n(maxRunWords)
	if run > words-start {
		run = words - start
	}
	kind := trace.Read
	if d.refRng.Bool(writeProb) {
		kind = trace.Write
	}
	d.m.TouchRun(o.addr+start*mem.WordSize, run, kind)
	// Promote the object in the recency window.
	d.window[d.wpos] = o
	d.wpos = (d.wpos + 1) % windowSize
	return run
}

func (d *driver) pickObject() *object {
	if len(d.live) == 0 {
		return nil
	}
	if d.refRng.Bool(windowProb) {
		// Most recent = rank 0: the window is a ring, so walk back from
		// the last insertion point.
		rank := d.windowZipf.Sample(d.refRng)
		pos := (d.wpos - 1 - rank + 2*windowSize) % windowSize
		if o := d.window[pos]; o != nil && !o.dead {
			return o
		}
	}
	return d.live[d.refRng.Intn(len(d.live))]
}
