package workload

import (
	"context"
	"errors"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func runServer(t *testing.T, allocName string, scale, seed uint64) (Stats, *trace.Recorder) {
	t.Helper()
	rec := &trace.Recorder{}
	m := mem.New(rec, &cost.Meter{})
	a, err := alloc.New(allocName, m)
	if err != nil {
		t.Fatal(err)
	}
	scen, ok := ServerByName("server")
	if !ok {
		t.Fatal("no server scenario in the catalog")
	}
	stats, err := RunServer(m, a, ServerRunConfig{Scenario: scen, Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m.Flush()
	return stats, rec
}

// TestServerDeterminism: identical configurations must replay the exact
// same reference stream — addresses, kinds AND thread stamps — and the
// same stats; a different seed must diverge.
func TestServerDeterminism(t *testing.T) {
	s1, r1 := runServer(t, "bsd", 2048, 7)
	s2, r2 := runServer(t, "bsd", 2048, 7)
	if statKey(s1) != statKey(s2) || s1.Handoffs != s2.Handoffs {
		t.Errorf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(r1.Refs) != len(r2.Refs) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Refs), len(r2.Refs))
	}
	for i := range r1.Refs {
		if r1.Refs[i] != r2.Refs[i] {
			t.Fatalf("ref %d differs: %+v vs %+v", i, r1.Refs[i], r2.Refs[i])
		}
	}
	s3, _ := runServer(t, "bsd", 2048, 8)
	if statKey(s3) == statKey(s1) {
		t.Error("different seeds produced identical stats")
	}
}

// TestServerShape: the scenario must actually be server-shaped —
// multiple thread identities in the stream, producer/consumer handoffs,
// conservation of objects, and no leaked handoff queues at exit.
func TestServerShape(t *testing.T) {
	stats, rec := runServer(t, "firstfit", 2048, 3)
	if stats.Allocs != stats.Frees+stats.FinalLive {
		t.Errorf("object conservation violated: %d allocs, %d frees, %d live",
			stats.Allocs, stats.Frees, stats.FinalLive)
	}
	if stats.Handoffs == 0 {
		t.Error("no cross-thread handoffs occurred")
	}
	if stats.Handoffs >= stats.Frees {
		t.Errorf("handoffs %d not a proper subset of frees %d", stats.Handoffs, stats.Frees)
	}
	tids := map[uint8]bool{}
	for _, r := range rec.Refs {
		tids[r.Tid] = true
	}
	scen, _ := ServerByName("server")
	if len(tids) != scen.Threads {
		t.Errorf("stream carries %d distinct tids, want %d", len(tids), scen.Threads)
	}
}

// TestServerSharingSignal: feeding the server stream to the sharing
// attributor must yield both true and false sharing events — the signal
// the server experiment tables are built on — and stay byte-identical
// across batched and unbatched delivery.
func TestServerSharingSignal(t *testing.T) {
	run := func(batch int) (Stats, cache.SharingReport) {
		s := cache.NewSharing(cache.SharingConfig{})
		m := mem.New(s, &cost.Meter{})
		m.SetBatching(batch)
		a, err := alloc.New("bsd", m)
		if err != nil {
			t.Fatal(err)
		}
		scen, _ := ServerByName("server")
		stats, err := RunServer(m, a, ServerRunConfig{Scenario: scen, Scale: 1024, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		m.Flush()
		return stats, s.Report()
	}
	_, rep := run(0)
	if rep.True == 0 {
		t.Error("server run produced no true sharing (sessions/globals/handoffs should ping-pong)")
	}
	if rep.False == 0 {
		t.Error("server run produced no false sharing under a shared-heap allocator")
	}
	if rep.PingLines == 0 {
		t.Error("no ping-pong lines recorded")
	}
	_, rep2 := run(-1) // unbatched per-Ref delivery
	if rep.True != rep2.True || rep.False != rep2.False || rep.PingLines != rep2.PingLines {
		t.Errorf("sharing report depends on delivery tier: batched %+v vs unbatched %+v", rep, rep2)
	}
}

// TestServerCancellation: a canceled context aborts the run through the
// amortized polls (burst loop, death drains, inbox drains) instead of
// running to completion.
func TestServerCancellation(t *testing.T) {
	m := mem.New(&trace.Counter{}, &cost.Meter{})
	a, err := alloc.New("firstfit", m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scen, _ := ServerByName("server")
	_, err = RunServerContext(ctx, m, a, ServerRunConfig{Scenario: scen, Scale: 64, Seed: 1})
	if err == nil {
		t.Fatal("canceled run completed without error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestServerThreadBounds: the attributor's holder masks cap threads at
// 63, and a server needs at least a producer and a consumer.
func TestServerThreadBounds(t *testing.T) {
	m := mem.New(&trace.Counter{}, &cost.Meter{})
	a, err := alloc.New("firstfit", m)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{0, 1, 64, 200} {
		scen, _ := ServerByName("server")
		scen.Threads = threads
		if _, err := RunServer(m, a, ServerRunConfig{Scenario: scen, Scale: 1024, Seed: 1}); err == nil {
			t.Errorf("Threads=%d accepted, want error", threads)
		}
	}
}
