package workload

import (
	"context"
	"fmt"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

// ServerConfig models a server-shaped concurrent workload: N logical
// threads serving a bursty request stream against shared long-lived
// session state. Each request is routed to a thread, which allocates
// per-request objects (stamped with its tid — see mem.Memory.SetTid),
// touches a Zipf-hot session owned by whichever thread last renewed it,
// and either frees its request state locally or hands it to a consumer
// thread that reads it and frees it there (a producer/consumer
// cross-thread free). Interleaved arrivals put different threads'
// small objects on the same cache lines under shared-heap allocators —
// the false-sharing placement artifact the sharing attributor measures
// — while session headers, handoff payloads and hot globals produce
// true sharing for every allocator.
//
// The model runs on one goroutine: "threads" are logical identities
// replayed deterministically via internal/rng, so runs are
// byte-identical at any simulator worker or shard count.
type ServerConfig struct {
	// Name identifies the scenario ("server"); it doubles as the
	// program name in reports and memoization keys, so it must not
	// collide with the Program catalog.
	Name string
	// Description summarizes the scenario.
	Description string

	// Threads is the number of logical worker threads (2..63 — the
	// sharing attributor tracks holders in a 64-bit mask).
	Threads int
	// Requests is the full-scale (scale 1) request count.
	Requests uint64
	// Instr and DataRefs are full-scale totals, like Program's.
	Instr    uint64
	DataRefs uint64

	// Sessions is the number of live long-lived session objects; like
	// Program's immortal count it is not scaled down.
	Sessions int
	// SessionSizes and ReqSizes are the object-size distributions of
	// session state and per-request churn.
	SessionSizes []SizeWeight
	ReqSizes     []SizeWeight
	// SessionLife is the geometric mean session lifetime in requests;
	// an expired session is freed and reallocated by the thread that
	// noticed, migrating its ownership.
	SessionLife float64
	// ReqLife is the geometric mean lifetime (in requests) of request
	// objects that are not handed off.
	ReqLife float64

	// BurstMean is the geometric mean arrival-burst size: requests in a
	// burst are routed round-robin across threads and their allocations
	// interleave in the allocator's stream.
	BurstMean float64
	// HandoffFrac is the fraction of request objects handed to a
	// consumer thread, which reads the payload and frees it.
	HandoffFrac float64

	// StackFrac and GlobalFrac split data references between each
	// thread's stack and the shared global segment; the rest go to the
	// heap.
	StackFrac  float64
	GlobalFrac float64
	// GlobalBytes is the size of the shared global segment.
	GlobalBytes uint64
}

// RefsPerRequest returns the mean data references per request.
func (c ServerConfig) RefsPerRequest() float64 {
	return float64(c.DataRefs) / float64(c.Requests)
}

// InstrPerRequest returns the mean instructions per request.
func (c ServerConfig) InstrPerRequest() float64 {
	return float64(c.Instr) / float64(c.Requests)
}

// Synthetic call sites for the server scenario's size classes, disjoint
// from the program driver's churn/immortal bases.
const (
	reqSiteBase     = 2001
	sessionSiteBase = 3001
)

var serverCatalog = []ServerConfig{
	{
		Name:        "server",
		Description: "8-thread request/response server: bursty arrivals, producer/consumer frees, Zipf-hot shared sessions",
		Threads:     8,
		Requests:    1024 * k,
		Instr:       448 * m,
		DataRefs:    128 * m,
		Sessions:    512,
		SessionSizes: []SizeWeight{
			{64, 2}, {96, 2}, {128, 1.5}, {192, 1}, {256, 0.6}, {512, 0.2},
		},
		ReqSizes: []SizeWeight{
			{16, 2}, {24, 3}, {32, 2}, {48, 1}, {64, 0.6}, {128, 0.2},
		},
		SessionLife: 4000,
		ReqLife:     24,
		BurstMean:   6,
		HandoffFrac: 0.35,
		StackFrac:   0.30,
		GlobalFrac:  0.08,
		GlobalBytes: 32 * 1024,
	},
}

// ServerScenarios returns the concurrent scenario catalog.
func ServerScenarios() []ServerConfig {
	out := make([]ServerConfig, len(serverCatalog))
	copy(out, serverCatalog)
	return out
}

// ServerByName looks a server scenario up by its catalog name.
func ServerByName(name string) (ServerConfig, bool) {
	for _, c := range serverCatalog {
		if c.Name == name {
			return c, true
		}
	}
	return ServerConfig{}, false
}

// ServerRunConfig parameterizes one server-driver run; Scale and Seed
// behave exactly as in Config.
type ServerRunConfig struct {
	Scenario ServerConfig
	Scale    uint64
	Seed     uint64
	// DisableLocalityHints forces the plain Malloc/MallocSite path, as
	// in Config. The server's hint is the allocating thread's id, so a
	// hint-aware allocator can segregate per-thread streams into
	// per-thread arenas.
	DisableLocalityHints bool
}

// serverThread is one logical worker's replay state.
type serverThread struct {
	id        uint8
	stackBase uint64
	sp        uint64
	window    [windowSize]*object
	wpos      int
	// inbox holds objects produced by other threads and handed to this
	// one: the consumer reads the payload and frees it cross-thread.
	inbox []*object
	// deaths schedules this thread's local request-object frees, keyed
	// by global request index.
	deaths deathQueue
}

// serverSession is one long-lived session slot.
type serverSession struct {
	obj  *object
	dies uint64 // global request index at which the session expires
}

type serverDriver struct {
	m      *mem.Memory
	a      alloc.Allocator
	hinter alloc.LocalityHinter
	meter  *cost.Meter
	scen   ServerConfig

	sizeRng  *rng.Rand
	lifeRng  *rng.Rand
	refRng   *rng.Rand
	routeRng *rng.Rand

	reqDist     *rng.Discrete
	reqSizes    []uint32
	sesDist     *rng.Discrete
	sesSizes    []uint32
	windowZipf  *rng.Zipf
	globalZipf  *rng.Zipf
	sessionZipf *rng.Zipf

	threads  []serverThread
	sessions []serverSession

	live       []*object
	globalBase uint64
	globalHot  []uint64

	refsAcc  float64
	refsStep uint64

	liveBytes uint64
	frees     uint64 // amortized cancellation poll across all free drains

	stats Stats
}

// RunServer drives the server scenario against allocator a on memory m.
// Like Run it requires the allocator to be constructed on the same
// memory; references flow to m's sink with the issuing thread stamped
// via SetTid, so a cache.Sharing sink downstream sees per-thread
// streams.
func RunServer(m *mem.Memory, a alloc.Allocator, cfg ServerRunConfig) (Stats, error) {
	return RunServerContext(context.Background(), m, a, cfg)
}

// RunServerContext is RunServer with cooperative cancellation: the
// burst loop and every free-queue drain (local death queues and the
// cross-thread inboxes) poll ctx on amortized counters, so cancellation
// latency stays bounded without perturbing completed runs.
func RunServerContext(ctx context.Context, m *mem.Memory, a alloc.Allocator, cfg ServerRunConfig) (Stats, error) {
	scen := cfg.Scenario
	if scen.Threads < 2 || scen.Threads > 63 {
		return Stats{}, fmt.Errorf("workload: server scenario %q needs 2..63 threads, got %d", scen.Name, scen.Threads)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	d := &serverDriver{m: m, a: a, meter: m.Meter(), scen: scen}
	if d.meter == nil {
		d.meter = &cost.Meter{}
	}
	if !cfg.DisableLocalityHints && alloc.HintAware(a) {
		d.hinter, _ = a.(alloc.LocalityHinter)
	}

	root := rng.New(cfg.Seed ^ hashName(scen.Name))
	d.sizeRng = root.Split()
	d.lifeRng = root.Split()
	d.refRng = root.Split()
	d.routeRng = root.Split()

	d.reqDist, d.reqSizes = buildDist(scen.ReqSizes)
	d.sesDist, d.sesSizes = buildDist(scen.SessionSizes)
	d.windowZipf = rng.NewZipf(windowSize, zipfExp)
	d.globalZipf = rng.NewZipf(64, 1.0)
	d.sessionZipf = rng.NewZipf(scen.Sessions, 1.05)

	// Per-thread stack segments plus one shared global segment; all are
	// excluded from heap metrics by the simulation driver (they belong
	// to the application, not the allocator).
	d.threads = make([]serverThread, scen.Threads)
	for t := range d.threads {
		if ctx.Err() != nil {
			return d.stats, fmt.Errorf("server %s: aborted during setup: %w", scen.Name, context.Cause(ctx))
		}
		stack := m.NewRegion(fmt.Sprintf("%s-stack%d", scen.Name, t), 64*1024)
		sb, err := stack.Sbrk(8 * 1024)
		if err != nil {
			return Stats{}, err
		}
		d.threads[t] = serverThread{id: uint8(t), stackBase: sb, sp: 1024}
	}
	globals := m.NewRegion(scen.Name+"-globals", 0)
	gb, err := globals.Sbrk(scen.GlobalBytes)
	if err != nil {
		return Stats{}, err
	}
	d.globalBase = gb
	d.globalHot = make([]uint64, 64)
	for i := range d.globalHot {
		d.globalHot[i] = gb + mem.AlignUp(d.refRng.Uint64n(scen.GlobalBytes-4), mem.WordSize)
	}

	nReqs := scen.Requests / cfg.Scale
	if nReqs == 0 {
		nReqs = 1
	}
	d.stats.Program = scen.Name

	// Prime the session table: long-lived state allocated round-robin,
	// so initial ownership is spread across the threads.
	d.sessions = make([]serverSession, scen.Sessions)
	for i := range d.sessions {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return d.stats, fmt.Errorf("server %s: aborted priming sessions: %w", scen.Name, context.Cause(ctx))
		}
		t := i % scen.Threads
		m.SetTid(uint8(t))
		obj, err := d.malloc(t, d.sesDist, d.sesSizes, sessionSiteBase)
		if err != nil {
			return d.stats, fmt.Errorf("server %s: priming session %d: %w", scen.Name, i, err)
		}
		d.initObject(obj)
		d.sessions[i] = serverSession{obj: obj, dies: 1 + d.lifeRng.Geometric(scen.SessionLife)}
	}

	refsPerReq := scen.RefsPerRequest()
	instrPerReq := scen.InstrPerRequest()
	var (
		req       uint64
		bursts    uint64
		rrBase    int
		burst     []int
		burstObjs []*object
	)
	for req < nReqs {
		bursts++
		if bursts%cancelCheckEvery == 0 && ctx.Err() != nil {
			return d.stats, fmt.Errorf("server %s: aborted at request %d/%d: %w",
				scen.Name, req, nReqs, context.Cause(ctx))
		}
		n := 1 + d.lifeRng.Geometric(scen.BurstMean)
		if n > nReqs-req {
			n = nReqs - req
		}
		burst = burst[:0]
		for i := uint64(0); i < n; i++ {
			burst = append(burst, (rrBase+int(i))%scen.Threads)
		}
		// Advance the round-robin base with a little jitter so burst
		// boundaries do not lock thread t to arrival slot t forever.
		rrBase = (rrBase + int(n%uint64(scen.Threads)) + int(d.routeRng.Uint64n(3))) % scen.Threads

		// Phase 1 — arrivals: every routed thread allocates and
		// initializes its request state back to back, interleaving the
		// threads' allocation streams at the allocator.
		burstObjs = burstObjs[:0]
		for i, t := range burst {
			if i%cancelCheckEvery == 0 && ctx.Err() != nil {
				return d.stats, fmt.Errorf("server %s: aborted at request %d/%d: %w",
					scen.Name, req, nReqs, context.Cause(ctx))
			}
			obj, err := d.arrive(t)
			if err != nil {
				return d.stats, fmt.Errorf("server %s request %d: %w", scen.Name, req, err)
			}
			burstObjs = append(burstObjs, obj)
		}
		// Phase 2 — processing: drain queues, touch the session, spend
		// the reference budget, then retire the request state.
		for i, t := range burst {
			if err := d.process(ctx, t, req+uint64(i), burstObjs[i], refsPerReq, instrPerReq); err != nil {
				return d.stats, err
			}
		}
		req += n
	}

	// Retire every parked handoff so the cross-thread queues end empty.
	for t := range d.threads {
		d.m.SetTid(d.threads[t].id)
		if err := d.drainInbox(ctx, &d.threads[t]); err != nil {
			return d.stats, err
		}
	}

	d.stats.FinalLive = uint64(len(d.live))
	for _, o := range d.live {
		d.stats.LiveBytes += uint64(o.size)
	}
	return d.stats, nil
}

// arrive allocates and initializes one request object on thread t.
func (d *serverDriver) arrive(t int) (*object, error) {
	d.m.SetTid(uint8(t))
	obj, err := d.malloc(t, d.reqDist, d.reqSizes, reqSiteBase)
	if err != nil {
		return nil, err
	}
	d.refsStep = 0
	d.initObject(obj)
	// The init words count against the request's reference budget,
	// which process() tops up.
	d.refsAcc -= float64(d.refsStep)
	th := &d.threads[t]
	th.window[th.wpos] = obj
	th.wpos = (th.wpos + 1) % windowSize
	return obj, nil
}

// process handles one request on thread t: drain the thread's free
// queues, do the session work, spend the reference budget, and either
// hand the request object to a consumer or schedule its local death.
func (d *serverDriver) process(ctx context.Context, t int, reqIdx uint64, obj *object, refsPerReq, instrPerReq float64) error {
	d.m.SetTid(uint8(t))
	th := &d.threads[t]
	d.refsStep = 0

	// Local deaths due at this request happen first (the recycling
	// opportunity), then the cross-thread inbox; both drains are
	// unbounded in request terms and poll on the shared frees counter.
	for len(th.deaths) > 0 && th.deaths[0].step <= reqIdx {
		d.frees++
		if d.frees%cancelCheckEvery == 0 && ctx.Err() != nil {
			return fmt.Errorf("server %s: aborted at request %d: %w",
				d.scen.Name, reqIdx, context.Cause(ctx))
		}
		ev := th.deaths.pop()
		if err := d.free(ev.obj); err != nil {
			return fmt.Errorf("server %s request %d: %w", d.scen.Name, reqIdx, err)
		}
	}
	if err := d.drainInbox(ctx, th); err != nil {
		return fmt.Errorf("server %s request %d: %w", d.scen.Name, reqIdx, err)
	}

	if err := d.touchSession(th, reqIdx); err != nil {
		return fmt.Errorf("server %s request %d: %w", d.scen.Name, reqIdx, err)
	}

	d.refsAcc += refsPerReq - float64(d.refsStep)
	d.emitRefs(th)
	if extra := instrPerReq - float64(d.refsStep); extra > 1 {
		d.meter.ChargeTo(cost.App, uint64(extra))
	}

	if d.routeRng.Bool(d.scen.HandoffFrac) {
		// Producer/consumer handoff: a different thread will read the
		// payload and free it.
		consumer := (t + 1 + int(d.routeRng.Uint64n(uint64(d.scen.Threads-1)))) % d.scen.Threads
		d.threads[consumer].inbox = append(d.threads[consumer].inbox, obj)
	} else {
		death := reqIdx + 1 + d.lifeRng.Geometric(d.scen.ReqLife)
		th.deaths.push(deathEvent{step: death, obj: obj})
	}
	return nil
}

// drainInbox consumes every object handed to th: the consumer reads the
// payload the producer wrote (true sharing on the object's lines), then
// frees it cross-thread. The drain is unbounded in request terms, so —
// like the local death drain — it polls cancellation on the shared
// amortized frees counter.
func (d *serverDriver) drainInbox(ctx context.Context, th *serverThread) error {
	for len(th.inbox) > 0 {
		d.frees++
		if d.frees%cancelCheckEvery == 0 && ctx.Err() != nil {
			return fmt.Errorf("server %s: aborted draining thread %d inbox: %w",
				d.scen.Name, th.id, context.Cause(ctx))
		}
		o := th.inbox[len(th.inbox)-1]
		th.inbox = th.inbox[:len(th.inbox)-1]
		words := uint64(o.size) / mem.WordSize
		if words == 0 {
			d.m.Touch(o.addr, o.size, trace.Read)
			d.refsStep++
		} else {
			if words > maxRunWords {
				words = maxRunWords
			}
			d.m.TouchRun(o.addr, words, trace.Read)
			d.refsStep += words
		}
		if err := d.free(o); err != nil {
			return err
		}
		d.stats.Handoffs++
	}
	return nil
}

// touchSession does the request's session work: read the Zipf-chosen
// session's header (words every handling thread reads — true sharing),
// bump its counter word, and renew it when it has expired (freeing the
// old state, often across threads, and becoming the new owner).
func (d *serverDriver) touchSession(th *serverThread, reqIdx uint64) error {
	i := d.sessionZipf.Sample(d.refRng)
	s := &d.sessions[i]
	if reqIdx >= s.dies {
		if err := d.free(s.obj); err != nil {
			return err
		}
		obj, err := d.malloc(int(th.id), d.sesDist, d.sesSizes, sessionSiteBase)
		if err != nil {
			return err
		}
		d.initObject(obj)
		s.obj = obj
		s.dies = reqIdx + 1 + d.lifeRng.Geometric(d.scen.SessionLife)
	}
	words := uint64(s.obj.size) / mem.WordSize
	n := uint64(4)
	if n > words {
		n = words
	}
	if n > 0 {
		d.m.TouchRun(s.obj.addr, n, trace.Read)
		d.refsStep += n
	}
	d.m.Touch(s.obj.addr, mem.WordSize, trace.Write)
	d.refsStep++
	return nil
}

// malloc allocates one object from the given size distribution,
// charging the malloc cost domain exactly as the program driver does.
// The locality hint is the allocating thread's id, so hint-aware
// allocators can give each logical thread its own arena.
func (d *serverDriver) malloc(t int, dist *rng.Discrete, sizes []uint32, siteBase uint32) (*object, error) {
	idx := dist.Sample(d.sizeRng)
	size := sizes[idx]
	prev := d.meter.Enter(cost.Malloc)
	d.meter.Charge(alloc.CallOverhead)
	var addr uint64
	var err error
	if d.hinter != nil {
		addr, err = d.hinter.MallocLocal(size, uint32(t))
	} else if sa, ok := d.a.(alloc.SiteAllocator); ok {
		addr, err = sa.MallocSite(size, siteBase+uint32(idx))
	} else {
		addr, err = d.a.Malloc(size)
	}
	d.meter.Enter(prev)
	if err != nil {
		return nil, err
	}
	d.stats.Allocs++
	d.stats.ReqBytes += uint64(size)
	d.liveBytes += uint64(size)
	o := &object{addr: addr, size: size, idx: len(d.live)}
	d.live = append(d.live, o)
	return o, nil
}

func (d *serverDriver) free(o *object) error {
	prev := d.meter.Enter(cost.Free)
	d.meter.Charge(alloc.CallOverhead)
	err := d.a.Free(o.addr)
	d.meter.Enter(prev)
	if err != nil {
		return err
	}
	d.stats.Frees++
	d.liveBytes -= uint64(o.size)
	o.dead = true
	last := len(d.live) - 1
	d.live[o.idx] = d.live[last]
	d.live[o.idx].idx = o.idx
	d.live = d.live[:last]
	return nil
}

// initObject writes every word of a fresh object (counted into the
// request's reference budget via refsStep).
func (d *serverDriver) initObject(o *object) {
	words := uint64(o.size) / mem.WordSize
	if words == 0 {
		d.m.Touch(o.addr, o.size, trace.Write)
		d.refsStep++
		return
	}
	d.m.TouchRun(o.addr, words, trace.Write)
	d.refsStep += words
}

// emitRefs spends the accumulated reference budget on the thread's
// locality-shaped mix of stack, global and heap references.
func (d *serverDriver) emitRefs(th *serverThread) {
	scen := d.scen
	for d.refsAcc >= 1 {
		r := d.refRng.Float64()
		switch {
		case r < scen.StackFrac:
			d.stackRef(th)
			d.refsAcc--
			d.refsStep++
		case r < scen.StackFrac+scen.GlobalFrac:
			d.globalRef()
			d.refsAcc--
			d.refsStep++
		default:
			n := d.heapRun(th)
			d.refsAcc -= float64(n)
			d.refsStep += n
		}
	}
}

// stackRef walks the thread's private stack band (never shared).
func (d *serverDriver) stackRef(th *serverThread) {
	delta := int64(d.refRng.Uint64n(129)) - 64
	sp := int64(th.sp) + delta
	if sp < 64 {
		sp = 64
	}
	if sp > 1984 {
		sp = 1984
	}
	th.sp = uint64(sp)
	off := th.sp - d.refRng.Uint64n(16)*mem.WordSize
	kind := trace.Read
	if d.refRng.Bool(0.45) {
		kind = trace.Write
	}
	d.m.Touch(th.stackBase+mem.AlignUp(off, mem.WordSize), mem.WordSize, kind)
}

// globalRef touches the shared Zipf-hot global words; concurrent
// writers make these lines ping-pong identically for every allocator —
// the allocator-independent true-sharing floor.
func (d *serverDriver) globalRef() {
	addr := d.globalHot[d.globalZipf.Sample(d.refRng)]
	kind := trace.Read
	if d.refRng.Bool(0.2) {
		kind = trace.Write
	}
	d.m.Touch(addr, mem.WordSize, kind)
}

// heapRun references a short sequential run inside one live object,
// mostly from the thread's own recency window and otherwise uniformly
// from the whole live set (occasionally another thread's object).
func (d *serverDriver) heapRun(th *serverThread) uint64 {
	o := d.pickObject(th)
	if o == nil {
		d.stackRef(th)
		return 1
	}
	words := uint64(o.size) / mem.WordSize
	if words == 0 {
		d.m.Touch(o.addr, o.size, trace.Read)
		return 1
	}
	start := d.refRng.Uint64n(words)
	run := 1 + d.refRng.Uint64n(maxRunWords)
	if run > words-start {
		run = words - start
	}
	kind := trace.Read
	if d.refRng.Bool(writeProb) {
		kind = trace.Write
	}
	d.m.TouchRun(o.addr+start*mem.WordSize, run, kind)
	th.window[th.wpos] = o
	th.wpos = (th.wpos + 1) % windowSize
	return run
}

func (d *serverDriver) pickObject(th *serverThread) *object {
	if len(d.live) == 0 {
		return nil
	}
	if d.refRng.Bool(windowProb) {
		rank := d.windowZipf.Sample(d.refRng)
		pos := (th.wpos - 1 - rank + 2*windowSize) % windowSize
		if o := th.window[pos]; o != nil && !o.dead {
			return o
		}
	}
	return d.live[d.refRng.Intn(len(d.live))]
}
