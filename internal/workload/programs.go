// Package workload synthesizes the allocation and memory-reference
// behaviour of the paper's five test programs (Tables 1–3): ESPRESSO,
// GhostScript (three input sets), PTC, GAWK and MAKE.
//
// The original binaries and their Pixie traces are not available, so
// each program is modelled by the statistics the paper publishes —
// total instructions, data references, objects allocated and freed, and
// maximum heap size — plus size and lifetime distributions consistent
// with the paper's observations: most allocations are small (24 bytes
// is "a very common allocation request size"), a few object sizes
// dominate, most objects die young, and a long-lived core accounts for
// the heap footprint. PTC frees nothing (Table 2: 0 objects freed);
// GAWK churns 1.7 million objects through a 60 KB heap.
//
// The driver (Run) replays a program model against a real allocator on
// simulated memory: the allocator's placement decisions determine where
// the application's heap references land, which is exactly the coupling
// the paper measures.
package workload

// SizeWeight is one entry of a discrete object-size distribution.
type SizeWeight struct {
	Size   uint32
	Weight float64
}

// Program is a synthetic model of one of the paper's test programs.
// Counts are full-scale (scale 1) values matching Tables 2 and 3.
type Program struct {
	// Name is the paper's program name, lower-cased ("espresso", ...).
	Name string
	// Description summarizes the application domain (Table 1).
	Description string

	// Instr is the total instruction count (Table 2, ×10⁶ there).
	Instr uint64
	// DataRefs is the total data reference count.
	DataRefs uint64
	// Allocs and Frees are the object counts (Table 2, ×10³ there).
	Allocs uint64
	Frees  uint64
	// MaxHeapKB is the paper's maximum heap size in kilobytes.
	MaxHeapKB uint64

	// ChurnSizes is the size distribution of short-lived objects;
	// ImmortalSizes of the long-lived core that accounts for the heap
	// footprint.
	ChurnSizes    []SizeWeight
	ImmortalSizes []SizeWeight

	// ShortLife and MediumLife are geometric mean lifetimes (in
	// allocation events) of churn objects; MediumFrac is the fraction
	// of churn objects drawing the medium lifetime.
	ShortLife  float64
	MediumLife float64
	MediumFrac float64

	// FreeBatch models phase behaviour: deaths are deferred to the next
	// multiple of FreeBatch allocation steps, so objects are released
	// in bursts (building then discarding a structure) rather than in a
	// perfectly interleaved stream. Bursty release keeps sequential-fit
	// freelists populated — the searches whose locality cost the paper
	// measures. Zero or one means no batching.
	FreeBatch uint64

	// StackFrac and GlobalFrac split data references between the stack
	// and global segments; the rest go to the heap.
	StackFrac  float64
	GlobalFrac float64
	// GlobalBytes is the size of the simulated global segment.
	GlobalBytes uint64
}

// InstrPerAlloc returns the mean instructions between allocations.
func (p Program) InstrPerAlloc() float64 {
	return float64(p.Instr) / float64(p.Allocs)
}

// RefsPerAlloc returns the mean data references between allocations.
func (p Program) RefsPerAlloc() float64 {
	return float64(p.DataRefs) / float64(p.Allocs)
}

// ImmortalCount returns the number of never-freed objects at full
// scale (Table 2: objects allocated minus objects freed).
func (p Program) ImmortalCount() uint64 {
	if p.Allocs < p.Frees {
		return 0
	}
	return p.Allocs - p.Frees
}

const m = 1_000_000
const k = 1_000

var catalog = []Program{
	{
		Name:        "espresso",
		Description: "PLA logic optimizer, release 2.3 example input",
		Instr:       2506 * m,
		DataRefs:    595 * m,
		Allocs:      1673 * k,
		Frees:       1666 * k,
		MaxHeapKB:   396,
		ChurnSizes: []SizeWeight{
			{8, 1}, {16, 3}, {24, 4}, {32, 2}, {40, 1}, {64, 0.5}, {128, 0.2},
		},
		ImmortalSizes: []SizeWeight{
			{16, 2}, {24, 3}, {32, 2}, {48, 1.5}, {64, 1}, {128, 0.4},
			{256, 0.1}, {512, 0.05}, {1024, 0.02},
		},
		ShortLife:   40,
		MediumLife:  1500,
		MediumFrac:  0.2,
		FreeBatch:   64,
		StackFrac:   0.35,
		GlobalFrac:  0.10,
		GlobalBytes: 48 * 1024,
	},
	{
		Name:          "gs",
		Description:   "GhostScript 2.1 interpreting a 126-page manual (GS-Large)",
		Instr:         1344 * m,
		DataRefs:      421 * m,
		Allocs:        924 * k,
		Frees:         898 * k,
		MaxHeapKB:     4129,
		ChurnSizes:    gsChurnSizes,
		ImmortalSizes: gsImmortalSizes,
		ShortLife:     30,
		MediumLife:    1000,
		MediumFrac:    0.2,
		FreeBatch:     64,
		StackFrac:     0.33,
		GlobalFrac:    0.12,
		GlobalBytes:   96 * 1024,
	},
	{
		Name:          "gs-medium",
		Description:   "GhostScript 2.1, medium input set (Table 3)",
		Instr:         539 * m,
		DataRefs:      172 * m,
		Allocs:        567 * k,
		Frees:         551 * k,
		MaxHeapKB:     2721,
		ChurnSizes:    gsChurnSizes,
		ImmortalSizes: gsImmortalSizes,
		ShortLife:     30,
		MediumLife:    1000,
		MediumFrac:    0.2,
		FreeBatch:     64,
		StackFrac:     0.33,
		GlobalFrac:    0.12,
		GlobalBytes:   96 * 1024,
	},
	{
		Name:          "gs-small",
		Description:   "GhostScript 2.1, small input set (Table 3)",
		Instr:         195 * m,
		DataRefs:      66 * m,
		Allocs:        109 * k,
		Frees:         102 * k,
		MaxHeapKB:     1092,
		ChurnSizes:    gsChurnSizes,
		ImmortalSizes: gsImmortalSizes,
		ShortLife:     30,
		MediumLife:    1000,
		MediumFrac:    0.2,
		FreeBatch:     64,
		StackFrac:     0.33,
		GlobalFrac:    0.12,
		GlobalBytes:   96 * 1024,
	},
	{
		Name:        "ptc",
		Description: "Pascal-to-C translator; allocates and never frees",
		Instr:       367 * m,
		DataRefs:    125 * m,
		Allocs:      103 * k,
		Frees:       0,
		MaxHeapKB:   3146,
		ChurnSizes: []SizeWeight{ // unused: every object is immortal
			{16, 1}, {24, 1},
		},
		ImmortalSizes: []SizeWeight{
			{12, 1}, {16, 2}, {20, 2}, {24, 2}, {28, 1}, {32, 1},
			{48, 0.5}, {64, 0.3}, {128, 0.1}, {1024, 0.01},
		},
		ShortLife:   1,
		MediumLife:  1,
		MediumFrac:  0,
		FreeBatch:   0,
		StackFrac:   0.30,
		GlobalFrac:  0.08,
		GlobalBytes: 32 * 1024,
	},
	{
		Name:        "gawk",
		Description: "GNU awk interpreter; 1.7M objects through a 60 KB heap",
		Instr:       1215 * m,
		DataRefs:    374 * m,
		Allocs:      1704 * k,
		Frees:       1702 * k,
		MaxHeapKB:   60,
		ChurnSizes: []SizeWeight{
			{8, 1}, {16, 3}, {24, 4}, {32, 1.5}, {48, 0.5},
		},
		ImmortalSizes: []SizeWeight{
			{16, 2}, {24, 3}, {32, 2}, {64, 0.5},
		},
		ShortLife:   8,
		MediumLife:  150,
		MediumFrac:  0.15,
		FreeBatch:   16,
		StackFrac:   0.38,
		GlobalFrac:  0.12,
		GlobalBytes: 24 * 1024,
	},
	{
		Name:        "make",
		Description: "GNU make analyzing the makefile of a large application",
		Instr:       56 * m,
		DataRefs:    17 * m,
		Allocs:      24 * k,
		Frees:       13 * k,
		MaxHeapKB:   380,
		ChurnSizes: []SizeWeight{
			{8, 1}, {16, 2}, {24, 2}, {32, 1}, {64, 0.5},
		},
		ImmortalSizes: []SizeWeight{
			{16, 1}, {24, 2}, {32, 2}, {48, 1}, {64, 0.5}, {128, 0.2},
		},
		ShortLife:   50,
		MediumLife:  800,
		MediumFrac:  0.2,
		FreeBatch:   32,
		StackFrac:   0.35,
		GlobalFrac:  0.10,
		GlobalBytes: 32 * 1024,
	},
}

// GhostScript's heap is dominated by a long-lived core with a heavy
// tail of large buffers (raster lines, font caches), matching its
// 4 MB / 26 k-object footprint (about 160 bytes per live object).
var gsImmortalSizes = []SizeWeight{
	{16, 1.5}, {24, 2}, {32, 2}, {48, 1.5}, {64, 1.5}, {96, 1},
	{160, 0.6}, {256, 0.5}, {512, 0.25}, {1200, 0.1},
	{4096, 0.05}, {16384, 0.015}, {32768, 0.008},
}

var gsChurnSizes = []SizeWeight{
	{8, 1}, {16, 2}, {24, 3}, {32, 2}, {48, 1}, {64, 0.5},
}

// Programs returns the full catalog: the paper's five programs plus the
// two additional GhostScript input sets of Table 3.
func Programs() []Program {
	out := make([]Program, len(catalog))
	copy(out, catalog)
	return out
}

// PaperPrograms returns the five programs of Tables 1 and 2, in the
// paper's column order.
func PaperPrograms() []Program {
	names := []string{"espresso", "gs", "ptc", "gawk", "make"}
	out := make([]Program, 0, len(names))
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			panic("workload: catalog missing " + n)
		}
		out = append(out, p)
	}
	return out
}

// GhostScriptInputs returns the three GhostScript input sets of
// Table 3, smallest first.
func GhostScriptInputs() []Program {
	names := []string{"gs-small", "gs-medium", "gs"}
	out := make([]Program, 0, len(names))
	for _, n := range names {
		p, _ := ByName(n)
		out = append(out, p)
	}
	return out
}

// ByName looks a program up by its catalog name.
func ByName(name string) (Program, bool) {
	for _, p := range catalog {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// Names returns the catalog names in order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, p := range catalog {
		out[i] = p.Name
	}
	return out
}
