package workload

import (
	"testing"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

func TestDeathQueueOrdering(t *testing.T) {
	var q deathQueue
	r := rng.New(5)
	steps := make([]uint64, 200)
	for i := range steps {
		steps[i] = r.Uint64n(1000)
		q.push(deathEvent{step: steps[i]})
	}
	prev := uint64(0)
	for range steps {
		e := q.pop()
		if e.step < prev {
			t.Fatalf("heap order violated: %d after %d", e.step, prev)
		}
		prev = e.step
	}
	if len(q) != 0 {
		t.Errorf("queue not drained: %d left", len(q))
	}
}

func runProgram(t *testing.T, progName, allocName string, scale, seed uint64) (Stats, *cost.Meter, *trace.Counter, *mem.Memory) {
	t.Helper()
	meter := &cost.Meter{}
	var counter trace.Counter
	m := mem.New(&counter, meter)
	a, err := alloc.New(allocName, m)
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := ByName(progName)
	if !ok {
		t.Fatalf("no program %q", progName)
	}
	stats, err := Run(m, a, Config{Program: prog, Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return stats, meter, &counter, m
}

func statKey(s Stats) [5]uint64 {
	return [5]uint64{s.Allocs, s.Frees, s.FinalLive, s.LiveBytes, s.ReqBytes}
}

func TestRunDeterminism(t *testing.T) {
	s1, m1, c1, mem1 := runProgram(t, "espresso", "bsd", 256, 7)
	s2, m2, c2, mem2 := runProgram(t, "espresso", "bsd", 256, 7)
	if statKey(s1) != statKey(s2) {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	if m1.Total() != m2.Total() || c1.Total() != c2.Total() || mem1.Footprint() != mem2.Footprint() {
		t.Error("meters/counters/footprints differ across identical runs")
	}
	s3, _, _, _ := runProgram(t, "espresso", "bsd", 256, 8)
	if statKey(s3) == statKey(s1) {
		t.Error("different seeds produced identical stats")
	}
}

// TestOperationSequenceAllocatorIndependent: the workload must issue the
// identical op sequence (sizes, counts, deaths) regardless of which
// allocator serves it, so cross-allocator comparisons are apples to
// apples.
func TestOperationSequenceAllocatorIndependent(t *testing.T) {
	s1, _, _, _ := runProgram(t, "gawk", "firstfit", 256, 3)
	s2, _, _, _ := runProgram(t, "gawk", "gnulocal", 256, 3)
	if s1.Allocs != s2.Allocs || s1.Frees != s2.Frees || s1.ReqBytes != s2.ReqBytes {
		t.Errorf("op sequences differ across allocators: %+v vs %+v", s1, s2)
	}
}

func TestBudgetsOnTarget(t *testing.T) {
	const scale = 64
	for _, name := range []string{"espresso", "gawk", "gs-small"} {
		prog, _ := ByName(name)
		stats, meter, counter, _ := runProgram(t, name, "bsd", scale, 1)
		wantAllocs := prog.Allocs / scale
		if stats.Allocs != wantAllocs {
			t.Errorf("%s: allocs %d, want %d", name, stats.Allocs, wantAllocs)
		}
		// Instructions and references should land within 25% of the
		// scaled Table 2 targets (allocator overhead rides on top of
		// instructions).
		wantInstr := float64(prog.Instr) / scale
		if got := float64(meter.Total()); got < wantInstr*0.8 || got > wantInstr*1.3 {
			t.Errorf("%s: instr %.0f, want within 25%% of %.0f", name, got, wantInstr)
		}
		wantRefs := float64(prog.DataRefs) / scale
		if got := float64(counter.Total()); got < wantRefs*0.75 || got > wantRefs*1.35 {
			t.Errorf("%s: refs %.0f, want within ~30%% of %.0f", name, got, wantRefs)
		}
	}
}

// TestFootprintPreservedAcrossScales: for churn-dominated programs the
// immortal core is unscaled, so the heap footprint should be similar at
// different scales (the property that makes scaled cache results
// meaningful).
func TestFootprintPreservedAcrossScales(t *testing.T) {
	_, _, _, m64 := runProgram(t, "gawk", "bsd", 64, 1)
	_, _, _, m256 := runProgram(t, "gawk", "bsd", 256, 1)
	f64, f256 := float64(m64.Footprint()), float64(m256.Footprint())
	if f256 < f64*0.5 || f256 > f64*2 {
		t.Errorf("gawk footprint not preserved: %v at /64 vs %v at /256", f64, f256)
	}
}

func TestFootprintNearTable2(t *testing.T) {
	// At moderate scale the modelled heap should land near the paper's
	// maximum heap size (within 2x: allocator overhead varies).
	for _, c := range []struct {
		name  string
		scale uint64
	}{
		// make cannot preserve its footprint when scaled (half its
		// objects are immortal, so heap size tracks allocation count):
		// validate it at full scale.
		{"espresso", 32}, {"gawk", 32}, {"make", 1}, {"gs-small", 8},
	} {
		prog, _ := ByName(c.name)
		_, _, _, m := runProgram(t, c.name, "gnulocal", c.scale, 1)
		var heap uint64
		for _, r := range m.Regions() {
			switch r.Name() {
			case c.name + "-stack", c.name + "-globals":
			default:
				heap += r.Size()
			}
		}
		target := float64(prog.MaxHeapKB * 1024)
		if got := float64(heap); got < target*0.4 || got > target*2.5 {
			t.Errorf("%s: heap %d bytes, paper says %d KB", c.name, heap, prog.MaxHeapKB)
		}
	}
}

func TestPTCNeverFrees(t *testing.T) {
	stats, _, _, _ := runProgram(t, "ptc", "firstfit", 64, 1)
	if stats.Frees != 0 {
		t.Errorf("ptc freed %d objects", stats.Frees)
	}
	if stats.FinalLive != stats.Allocs {
		t.Errorf("live %d != allocs %d", stats.FinalLive, stats.Allocs)
	}
}

func TestFreesRoughlyMatchModel(t *testing.T) {
	prog, _ := ByName("espresso")
	const scale = 64
	stats, _, _, _ := runProgram(t, "espresso", "quickfit", scale, 1)
	// The immortal core keeps its full-scale count (footprint
	// preservation), so at scale s the expected free fraction is
	// (nAllocs - immortals)/nAllocs, less a small end-of-run tail of
	// churn objects whose deaths fall past the horizon.
	nAllocs := prog.Allocs / scale
	immortals := prog.ImmortalCount()
	if immortals > nAllocs/2 {
		immortals = nAllocs / 2
	}
	churn := nAllocs - immortals
	if stats.Frees > churn {
		t.Errorf("freed %d > churn objects %d", stats.Frees, churn)
	}
	if float64(stats.Frees) < float64(churn)*0.85 {
		t.Errorf("freed %d of %d churn objects (< 85%%)", stats.Frees, churn)
	}
	if stats.FinalLive != stats.Allocs-stats.Frees {
		t.Errorf("live accounting: %d != %d - %d", stats.FinalLive, stats.Allocs, stats.Frees)
	}
	if stats.LiveBytes == 0 {
		t.Error("no live bytes at exit")
	}
	// At full scale the model reproduces the paper's ratio closely.
	fullFrac := float64(prog.Allocs-prog.ImmortalCount()) / float64(prog.Allocs)
	paperFrac := float64(prog.Frees) / float64(prog.Allocs)
	if fullFrac < paperFrac-0.01 || fullFrac > paperFrac+0.01 {
		t.Errorf("full-scale free fraction %.3f vs paper %.3f", fullFrac, paperFrac)
	}
}

func TestScaleDefaultsToOneish(t *testing.T) {
	// Scale 0 must behave as scale 1 (full run) — use tiny make at its
	// natural size? Full make is 24k allocs: acceptable.
	stats, _, _, _ := runProgram(t, "make", "bsd", 0, 1)
	prog, _ := ByName("make")
	if stats.Allocs != prog.Allocs {
		t.Errorf("scale 0: allocs %d, want full %d", stats.Allocs, prog.Allocs)
	}
}

func TestFragmentationSamples(t *testing.T) {
	prog, _ := ByName("espresso")
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	a, err := alloc.New("bsd", m)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(m, a, Config{Program: prog, Scale: 128, Seed: 1, SampleEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int(prog.Allocs/128/500) + 1
	if len(stats.Samples) != wantSamples {
		t.Fatalf("got %d samples, want %d", len(stats.Samples), wantSamples)
	}
	prevStep := uint64(0)
	for i, s := range stats.Samples {
		if i > 0 && s.Step <= prevStep {
			t.Fatal("sample steps not increasing")
		}
		prevStep = s.Step
		if s.HeapBytes < s.LiveBytes {
			t.Errorf("sample %d: heap %d below live payload %d", i, s.HeapBytes, s.LiveBytes)
		}
	}
	last := stats.Samples[len(stats.Samples)-1]
	if last.Overhead() < 1 || last.Overhead() > 5 {
		t.Errorf("final overhead %.2f implausible", last.Overhead())
	}
	if (Sample{}).Overhead() != 0 {
		t.Error("zero sample overhead should be 0")
	}
}
