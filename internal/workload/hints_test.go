package workload

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/obs"
	"mallocsim/internal/trace"
)

// runHinted executes one run with explicit control over the
// locality-hint knob and optional obs instrumentation.
func runHinted(t *testing.T, allocName string, disable, instrument bool) (Stats, cost.Snapshot, trace.Counter, uint64) {
	t.Helper()
	meter := &cost.Meter{}
	var counter trace.Counter
	m := mem.New(&counter, meter)
	a, err := alloc.New(allocName, m)
	if err != nil {
		t.Fatal(err)
	}
	if instrument {
		a = obs.Instrument(a, meter, &obs.Recorder{})
	}
	prog, ok := ByName("espresso")
	if !ok {
		t.Fatal("no espresso program")
	}
	stats, err := Run(m, a, Config{Program: prog, Scale: 512, Seed: 3, DisableLocalityHints: disable})
	if err != nil {
		t.Fatal(err)
	}
	return stats, meter.Snapshot(), counter, m.Footprint()
}

// For allocators that do not implement alloc.LocalityHinter, the hint
// knob must be invisible: hints-on and hints-off runs are
// byte-identical in every observable (the hint derivation consumes no
// randomness and charges nothing).
func TestHintsNoopForNonHintingAllocators(t *testing.T) {
	for _, name := range []string{"quickfit", "lifetime", "bitfit", "vamfit"} {
		t.Run(name, func(t *testing.T) {
			s1, i1, c1, f1 := runHinted(t, name, false, false)
			s2, i2, c2, f2 := runHinted(t, name, true, false)
			if statKey(s1) != statKey(s2) {
				t.Errorf("stats diverged: %+v vs %+v", s1, s2)
			}
			if i1 != i2 {
				t.Errorf("instruction snapshot diverged: %+v vs %+v", i1, i2)
			}
			if c1 != c2 {
				t.Errorf("reference counter diverged: %+v vs %+v", c1, c2)
			}
			if f1 != f2 {
				t.Errorf("footprint diverged: %d vs %d", f1, f2)
			}
		})
	}
}

// For a hint-aware allocator the hints must actually steer placement:
// disabling them changes the reference stream (same op counts, a
// different heap layout).
func TestHintsSteerLocarena(t *testing.T) {
	s1, _, c1, f1 := runHinted(t, "locarena", false, false)
	s2, _, c2, f2 := runHinted(t, "locarena", true, false)
	if s1.Allocs != s2.Allocs || s1.Frees != s2.Frees {
		t.Fatalf("op counts should not depend on hints: %+v vs %+v", s1, s2)
	}
	if c1 == c2 && f1 == f2 {
		t.Errorf("hints had no observable effect on locarena (footprint %d, refs %+v)", f1, c1)
	}
	if f1 <= f2 {
		t.Logf("note: hinted footprint %d ≤ unhinted %d", f1, f2)
	}
}

// Hints survive the obs instrumentation wrapper: a wrapped hinted run
// reproduces the unwrapped hinted run's workload stats and footprint
// (alloc.HintAware sees through Unwrap, and the wrapper forwards
// MallocLocal).
func TestHintsFlowThroughInstrumentation(t *testing.T) {
	s1, _, _, f1 := runHinted(t, "locarena", false, false)
	s2, _, _, f2 := runHinted(t, "locarena", false, true)
	if statKey(s1) != statKey(s2) {
		t.Errorf("stats diverged under instrumentation: %+v vs %+v", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("footprint diverged under instrumentation: %d vs %d", f1, f2)
	}
	// And a wrapped site-aware allocator keeps its site path: the
	// wrapper implements MallocLocal unconditionally, so a naive
	// hint-first dispatch would silently drop lifetime's site data.
	s3, _, _, f3 := runHinted(t, "lifetime", false, false)
	s4, _, _, f4 := runHinted(t, "lifetime", false, true)
	if statKey(s3) != statKey(s4) || f3 != f4 {
		t.Errorf("wrapped site-aware run diverged: %+v/%d vs %+v/%d", s3, f3, s4, f4)
	}
}
