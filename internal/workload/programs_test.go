package workload

import "testing"

func TestCatalogComplete(t *testing.T) {
	names := Names()
	want := map[string]bool{
		"espresso": true, "gs": true, "gs-medium": true, "gs-small": true,
		"ptc": true, "gawk": true, "make": true,
	}
	if len(names) != len(want) {
		t.Fatalf("catalog has %d programs: %v", len(names), names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected program %q", n)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("espresso")
	if !ok || p.Name != "espresso" {
		t.Fatal("espresso lookup failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestPaperProgramsOrder(t *testing.T) {
	progs := PaperPrograms()
	want := []string{"espresso", "gs", "ptc", "gawk", "make"}
	if len(progs) != len(want) {
		t.Fatalf("got %d programs", len(progs))
	}
	for i, p := range progs {
		if p.Name != want[i] {
			t.Errorf("position %d: %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestGhostScriptInputsAscending(t *testing.T) {
	inputs := GhostScriptInputs()
	if len(inputs) != 3 {
		t.Fatalf("got %d inputs", len(inputs))
	}
	for i := 1; i < len(inputs); i++ {
		if inputs[i].Allocs <= inputs[i-1].Allocs {
			t.Error("inputs not ordered smallest to largest")
		}
	}
}

// TestTable2Consistency checks each model against the paper's Table 2
// identities.
func TestTable2Consistency(t *testing.T) {
	for _, p := range Programs() {
		if p.Frees > p.Allocs {
			t.Errorf("%s: frees %d > allocs %d", p.Name, p.Frees, p.Allocs)
		}
		if p.Instr < p.DataRefs {
			t.Errorf("%s: more data refs than instructions", p.Name)
		}
		ratio := float64(p.DataRefs) / float64(p.Instr)
		if ratio < 0.2 || ratio > 0.45 {
			t.Errorf("%s: refs/instr = %.2f outside plausible MIPS range", p.Name, ratio)
		}
		if p.StackFrac+p.GlobalFrac >= 1 {
			t.Errorf("%s: non-heap reference fractions exceed 1", p.Name)
		}
		if len(p.ChurnSizes) == 0 || len(p.ImmortalSizes) == 0 {
			t.Errorf("%s: missing size distributions", p.Name)
		}
		for _, sw := range append(append([]SizeWeight{}, p.ChurnSizes...), p.ImmortalSizes...) {
			if sw.Size == 0 || sw.Weight < 0 {
				t.Errorf("%s: bad size entry %+v", p.Name, sw)
			}
		}
	}
	ptc, _ := ByName("ptc")
	if ptc.Frees != 0 {
		t.Error("ptc must free nothing (Table 2)")
	}
}

func TestDerivedRates(t *testing.T) {
	p, _ := ByName("espresso")
	if ipa := p.InstrPerAlloc(); ipa < 1000 || ipa > 2000 {
		t.Errorf("espresso instr/alloc = %v", ipa)
	}
	if rpa := p.RefsPerAlloc(); rpa < 200 || rpa > 600 {
		t.Errorf("espresso refs/alloc = %v", rpa)
	}
	if ic := p.ImmortalCount(); ic != 7000 {
		t.Errorf("espresso immortal count = %d, want 7000", ic)
	}
}
