package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, refs []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Fatalf("writer count %d, want %d", w.Count(), len(refs))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ref)
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	refs := []Ref{
		{Addr: 0x100000000, Size: 4, Kind: Read},
		{Addr: 0x100000004, Size: 4, Kind: Write},
		{Addr: 0x42, Size: 32768, Kind: Read}, // backward jump + big size
		{Addr: 0x42, Size: 3, Kind: Write},    // non-word size -> inline
		{Addr: 1 << 40, Size: 0, Kind: Read},
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("got %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d: got %+v want %+v", i, got[i], refs[i])
		}
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("expected bad-magic error")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("expected short-header error")
	}
}

func TestFileTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Addr: 1 << 35, Size: 4})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("expected malformed-stream error, got %v", err)
	}
}

func TestFileForEach(t *testing.T) {
	refs := make([]Ref, 1000)
	addr := uint64(1 << 32)
	for i := range refs {
		addr += uint64(i % 64)
		refs[i] = Ref{Addr: addr, Size: 4, Kind: Kind(i % 2)}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	var c Counter
	n, err := r.ForEach(&c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || c.Total() != 1000 {
		t.Errorf("decoded %d refs, counter %d", n, c.Total())
	}
}

// TestQuickFileRoundTrip: encode/decode is the identity for arbitrary
// reference streams (property-based).
func TestQuickFileRoundTrip(t *testing.T) {
	prop := func(addrs []uint32, sizes []uint16, kinds []bool) bool {
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			k := Read
			if kinds[i] {
				k = Write
			}
			refs[i] = Ref{Addr: uint64(addrs[i]), Size: uint32(sizes[i]), Kind: k}
		}
		got := roundTrip(t, refs)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
