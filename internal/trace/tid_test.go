package trace

import "testing"

// The Tid column is optional: blocks built by single-threaded producers
// must not grow one, and blocks that do grow one must agree with the
// per-reference expansion everywhere a tid can be observed.

func TestBlockTidsAbsentWhenZero(t *testing.T) {
	var b Block
	b.Append(Ref{Addr: 0x100, Size: 4, Kind: Read})
	b.AppendRun(0x200, 4, Write, 8)
	if b.Tids != nil {
		t.Fatalf("tid-0 rows materialized a Tids column: %v", b.Tids)
	}
	if got := b.At(1); got.Tid != 0 {
		t.Errorf("At(1).Tid = %d, want 0", got.Tid)
	}
	for i, r := range b.AppendRefs(nil) {
		if r.Tid != 0 {
			t.Errorf("expanded ref %d has tid %d, want 0", i, r.Tid)
		}
	}
}

func TestBlockTidBackfillAndExpansion(t *testing.T) {
	var b Block
	b.Append(Ref{Addr: 0x100, Size: 4, Kind: Read})     // before activation: tid 0
	b.AppendRun(0x200, 4, Write, 3)                     // before activation: tid 0
	b.Append(Ref{Addr: 0x300, Size: 8, Kind: Write, Tid: 5})
	b.AppendRunTid(0x400, 4, Read, 2, 7)
	if len(b.Tids) != b.Len() {
		t.Fatalf("Tids length %d, rows %d", len(b.Tids), b.Len())
	}
	wantRows := []uint8{0, 0, 5, 7}
	for i, want := range wantRows {
		if b.Tids[i] != want {
			t.Errorf("Tids[%d] = %d, want %d", i, b.Tids[i], want)
		}
		if got := b.At(i); got.Tid != want {
			t.Errorf("At(%d).Tid = %d, want %d", i, got.Tid, want)
		}
	}
	wantExpanded := []uint8{0, 0, 0, 0, 5, 7, 7}
	refs := b.AppendRefs(nil)
	if len(refs) != len(wantExpanded) {
		t.Fatalf("expanded to %d refs, want %d", len(refs), len(wantExpanded))
	}
	for i, r := range refs {
		if r.Tid != wantExpanded[i] {
			t.Errorf("expanded ref %d tid %d, want %d", i, r.Tid, wantExpanded[i])
		}
	}
}

func TestBlockTidResetKeepsColumn(t *testing.T) {
	var b Block
	b.Append(Ref{Addr: 1, Size: 4, Kind: Read, Tid: 3})
	b.Reset()
	if b.Tids == nil || len(b.Tids) != 0 {
		t.Fatalf("Reset left Tids = %v, want empty non-nil", b.Tids)
	}
	// A tid-0 row appended after Reset must still land in the column so
	// the lengths stay in lockstep.
	b.Append(Ref{Addr: 2, Size: 4, Kind: Read})
	if len(b.Tids) != 1 || b.Tids[0] != 0 {
		t.Fatalf("post-Reset append: Tids = %v, want [0]", b.Tids)
	}
}
