// Package trace defines the memory-reference records that flow from the
// simulated allocators and application workloads into the cache and
// virtual-memory simulators, together with composable sinks for routing,
// counting, filtering and serializing those references.
//
// The reference stream is the central artifact of the reproduction: the
// paper ("Improving the Cache Locality of Memory Allocation", PLDI 1993)
// is a trace-driven simulation study, and every experiment in this
// repository is a consumer of a trace.Sink.
//
// # Batching
//
// The per-reference Sink.Ref call is the simulator's hottest edge, so
// sinks that can tolerate deferred delivery additionally implement
// BatchSink (Refs([]Ref)). Producers such as mem.Memory buffer
// references and flush them in slices to every BatchSink while still
// delivering synchronously, reference by reference, to plain Sinks.
// Custom Sink implementors need to do nothing: not implementing
// BatchSink is always correct. Implement it only when the sink's
// behaviour depends solely on the reference values and their order —
// see the BatchSink contract.
package trace

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "unknown"
	}
}

// Ref is a single data reference: Size bytes at Addr, either a Read or a
// Write. Addresses are virtual addresses in the simulated address space
// managed by package mem.
type Ref struct {
	Addr uint64
	Size uint32
	Kind Kind
}

// Sink consumes a stream of references. Implementations include cache
// simulators, page-fault simulators, counters and trace writers.
type Sink interface {
	Ref(Ref)
}

// BatchSink is a Sink that also accepts references in slices. Producers
// with a hot emit path (mem.Memory) buffer references and hand the
// whole batch to each BatchSink at flush boundaries, replacing one
// interface call per reference per sink with one call per batch.
//
// Implementing BatchSink is a contract, not just an optimization: it
// declares that the sink tolerates *deferred* delivery. Refs(batch)
// must be equivalent to calling Ref for each element in order, and the
// sink must not depend on observing each reference at the instant it
// was generated (for example by reading clock-like state that advances
// between generation and flush). Sinks that need synchronous delivery —
// like obs.Attribution, which reads the cost meter's current domain per
// reference — simply implement plain Sink and keep receiving every
// reference immediately; see Split.
//
// The batch slice is only valid for the duration of the call and may be
// reused by the producer; copy it if it must be retained.
type BatchSink interface {
	Sink
	Refs([]Ref)
}

// Split partitions a sink graph into its batch-capable leaves and an
// immediate-delivery remainder. Tees are flattened recursively (and
// Discard/nil entries dropped) exactly as NewTee does; every leaf that
// implements BatchSink lands in the batch slice, and the rest are
// recombined into a single Sink (nil when there are none). Producers
// use this to route buffered references to batchers at flush time while
// still delivering synchronously to everything else.
func Split(s Sink) ([]BatchSink, Sink) {
	flat := flatten(nil, []Sink{s})
	var batch []BatchSink
	var rest Tee
	for _, leaf := range flat {
		if b, ok := leaf.(BatchSink); ok {
			batch = append(batch, b)
		} else {
			rest = append(rest, leaf)
		}
	}
	switch len(rest) {
	case 0:
		return batch, nil
	case 1:
		return batch, rest[0]
	default:
		return batch, rest
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r Ref) { f(r) }

type discardSink struct{}

func (discardSink) Ref(Ref)    {}
func (discardSink) Refs([]Ref) {}

// Discard is a Sink that drops every reference.
var Discard Sink = discardSink{}

// Tee fans a reference stream out to several sinks in order.
type Tee []Sink

// Ref implements Sink.
func (t Tee) Ref(r Ref) {
	for _, s := range t {
		s.Ref(r)
	}
}

// Refs implements BatchSink: members that batch receive the whole
// slice, the rest receive the references one by one.
func (t Tee) Refs(batch []Ref) {
	for _, s := range t {
		if b, ok := s.(BatchSink); ok {
			b.Refs(batch)
			continue
		}
		for _, r := range batch {
			s.Ref(r)
		}
	}
}

// NewTee builds a Tee from the given sinks, recursively flattening
// nested Tees and dropping Discard and nil entries at any depth. If the
// result contains a single sink, that sink is returned directly; with
// none, Discard.
func NewTee(sinks ...Sink) Sink {
	flat := flatten(nil, sinks)
	switch len(flat) {
	case 0:
		return Discard
	case 1:
		return flat[0]
	}
	return flat
}

func flatten(dst Tee, sinks []Sink) Tee {
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
			continue
		case Tee:
			dst = flatten(dst, v)
		default:
			if s == Discard {
				continue
			}
			dst = append(dst, s)
		}
	}
	return dst
}

// Counter tallies references by kind and total bytes touched.
type Counter struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrote uint64
}

// Ref implements Sink.
func (c *Counter) Ref(r Ref) {
	if r.Kind == Write {
		c.Writes++
		c.BytesWrote += uint64(r.Size)
	} else {
		c.Reads++
		c.BytesRead += uint64(r.Size)
	}
}

// Refs implements BatchSink.
func (c *Counter) Refs(batch []Ref) {
	for _, r := range batch {
		c.Ref(r)
	}
}

// Total returns the total number of references seen.
func (c *Counter) Total() uint64 { return c.Reads + c.Writes }

// Bytes returns the total number of bytes touched.
func (c *Counter) Bytes() uint64 { return c.BytesRead + c.BytesWrote }

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// Filter forwards only references for which Keep returns true.
type Filter struct {
	Keep func(Ref) bool
	Next Sink
}

// Ref implements Sink.
func (f *Filter) Ref(r Ref) {
	if f.Keep(r) {
		f.Next.Ref(r)
	}
}

// Refs implements BatchSink.
func (f *Filter) Refs(batch []Ref) {
	for _, r := range batch {
		if f.Keep(r) {
			f.Next.Ref(r)
		}
	}
}

// RangeFilter forwards only references whose address lies in [Lo, Hi).
func RangeFilter(lo, hi uint64, next Sink) Sink {
	return &Filter{
		Keep: func(r Ref) bool { return r.Addr >= lo && r.Addr < hi },
		Next: next,
	}
}

// Recorder appends every reference to an in-memory slice. It is intended
// for tests and small traces.
type Recorder struct {
	Refs []Ref
}

// Ref implements Sink. Recorder does not implement BatchSink (the
// exported Refs field occupies the method name): it receives every
// reference synchronously even from batching producers, which is what
// tests interleaving recorded references with other events want.
func (rec *Recorder) Ref(r Ref) { rec.Refs = append(rec.Refs, r) }

// Reset clears the recorded references.
func (rec *Recorder) Reset() { rec.Refs = rec.Refs[:0] }
