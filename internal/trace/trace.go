// Package trace defines the memory-reference records that flow from the
// simulated allocators and application workloads into the cache and
// virtual-memory simulators, together with composable sinks for routing,
// counting, filtering and serializing those references.
//
// The reference stream is the central artifact of the reproduction: the
// paper ("Improving the Cache Locality of Memory Allocation", PLDI 1993)
// is a trace-driven simulation study, and every experiment in this
// repository is a consumer of a trace.Sink.
package trace

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "unknown"
	}
}

// Ref is a single data reference: Size bytes at Addr, either a Read or a
// Write. Addresses are virtual addresses in the simulated address space
// managed by package mem.
type Ref struct {
	Addr uint64
	Size uint32
	Kind Kind
}

// Sink consumes a stream of references. Implementations include cache
// simulators, page-fault simulators, counters and trace writers.
type Sink interface {
	Ref(Ref)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r Ref) { f(r) }

type discardSink struct{}

func (discardSink) Ref(Ref) {}

// Discard is a Sink that drops every reference.
var Discard Sink = discardSink{}

// Tee fans a reference stream out to several sinks in order.
type Tee []Sink

// Ref implements Sink.
func (t Tee) Ref(r Ref) {
	for _, s := range t {
		s.Ref(r)
	}
}

// NewTee builds a Tee from the given sinks, recursively flattening
// nested Tees and dropping Discard and nil entries at any depth. If the
// result contains a single sink, that sink is returned directly; with
// none, Discard.
func NewTee(sinks ...Sink) Sink {
	flat := flatten(nil, sinks)
	switch len(flat) {
	case 0:
		return Discard
	case 1:
		return flat[0]
	}
	return flat
}

func flatten(dst Tee, sinks []Sink) Tee {
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
			continue
		case Tee:
			dst = flatten(dst, v)
		default:
			if s == Discard {
				continue
			}
			dst = append(dst, s)
		}
	}
	return dst
}

// Counter tallies references by kind and total bytes touched.
type Counter struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrote uint64
}

// Ref implements Sink.
func (c *Counter) Ref(r Ref) {
	if r.Kind == Write {
		c.Writes++
		c.BytesWrote += uint64(r.Size)
	} else {
		c.Reads++
		c.BytesRead += uint64(r.Size)
	}
}

// Total returns the total number of references seen.
func (c *Counter) Total() uint64 { return c.Reads + c.Writes }

// Bytes returns the total number of bytes touched.
func (c *Counter) Bytes() uint64 { return c.BytesRead + c.BytesWrote }

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// Filter forwards only references for which Keep returns true.
type Filter struct {
	Keep func(Ref) bool
	Next Sink
}

// Ref implements Sink.
func (f *Filter) Ref(r Ref) {
	if f.Keep(r) {
		f.Next.Ref(r)
	}
}

// RangeFilter forwards only references whose address lies in [Lo, Hi).
func RangeFilter(lo, hi uint64, next Sink) Sink {
	return &Filter{
		Keep: func(r Ref) bool { return r.Addr >= lo && r.Addr < hi },
		Next: next,
	}
}

// Recorder appends every reference to an in-memory slice. It is intended
// for tests and small traces.
type Recorder struct {
	Refs []Ref
}

// Ref implements Sink.
func (rec *Recorder) Ref(r Ref) { rec.Refs = append(rec.Refs, r) }

// Reset clears the recorded references.
func (rec *Recorder) Reset() { rec.Refs = rec.Refs[:0] }
