// Package trace defines the memory-reference records that flow from the
// simulated allocators and application workloads into the cache and
// virtual-memory simulators, together with composable sinks for routing,
// counting, filtering and serializing those references.
//
// The reference stream is the central artifact of the reproduction: the
// paper ("Improving the Cache Locality of Memory Allocation", PLDI 1993)
// is a trace-driven simulation study, and every experiment in this
// repository is a consumer of a trace.Sink.
//
// # Batching and columnar blocks
//
// The per-reference Sink.Ref call is the simulator's hottest edge, so
// sinks that can tolerate deferred delivery additionally implement
// BatchSink (Refs([]Ref)) or, one tier up, BlockSink (Block(*Block)).
// Producers such as mem.Memory buffer references and flush them —
// as a columnar Block to every BlockSink, as a []Ref slice to every
// remaining BatchSink — while still delivering synchronously,
// reference by reference, to plain Sinks. Custom Sink implementors
// need to do nothing: not implementing either interface is always
// correct. Implement them only when the sink's behaviour depends
// solely on the reference values and their order — see the BatchSink
// and BlockSink contracts.
//
// The columnar Block representation (struct-of-arrays: separate
// address, size and kind columns) exists for the simulators' sake:
// a cache group decomposes a whole block's addresses into a
// run-length-collapsed cache-line stream once and replays it across
// every configuration, and the VM stack simulator walks the address
// column without loading sizes and kinds it mostly ignores.
package trace

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "unknown"
	}
}

// Ref is a single data reference: Size bytes at Addr, either a Read or a
// Write. Addresses are virtual addresses in the simulated address space
// managed by package mem.
//
// Tid is the logical thread that issued the reference. Single-threaded
// workloads leave it zero (the zero value fills the struct's existing
// padding, so the field is free); concurrent workloads stamp it via
// mem.Memory.SetTid so sharing-aware sinks (cache.Sharing) can attribute
// cross-thread line transfers. Sinks that do not care about thread
// identity ignore the field and behave exactly as before.
type Ref struct {
	Addr uint64
	Size uint32
	Kind Kind
	Tid  uint8
}

// Sink consumes a stream of references. Implementations include cache
// simulators, page-fault simulators, counters and trace writers.
type Sink interface {
	Ref(Ref)
}

// BatchSink is a Sink that also accepts references in slices. Producers
// with a hot emit path (mem.Memory) buffer references and hand the
// whole batch to each BatchSink at flush boundaries, replacing one
// interface call per reference per sink with one call per batch.
//
// Implementing BatchSink is a contract, not just an optimization: it
// declares that the sink tolerates *deferred* delivery. Refs(batch)
// must be equivalent to calling Ref for each element in order, and the
// sink must not depend on observing each reference at the instant it
// was generated (for example by reading clock-like state that advances
// between generation and flush). Sinks that need synchronous delivery —
// like obs.Attribution, which reads the cost meter's current domain per
// reference — simply implement plain Sink and keep receiving every
// reference immediately; see Split.
//
// The batch slice is only valid for the duration of the call and may be
// reused by the producer; copy it if it must be retained.
type BatchSink interface {
	Sink
	Refs([]Ref)
}

// Block is a columnar (struct-of-arrays) batch of references: element i
// of each column together form one row. The column slices always have
// equal length. Splitting the stream into per-field columns lets bulk
// consumers touch only the columns they need — the cache simulators
// scan addresses and kinds without loading sizes for word references,
// and producers append runs of equal-size references without restoring
// the whole struct per element.
type Block struct {
	Addrs []uint64
	Sizes []uint32
	Kinds []Kind
	// Runs is the optional run-length column. When non-nil (same length
	// as the other columns), row i stands for Runs[i] consecutive
	// references — Addrs[i], Addrs[i]+Sizes[i], Addrs[i]+2·Sizes[i], …
	// — each Sizes[i] bytes of kind Kinds[i]. A nil Runs column (or a
	// row with Runs[i] == 1) is a single reference per row. Producers
	// must not emit run rows with Runs[i] == 0, and a run's address
	// arithmetic must not wrap the 64-bit address space (mem.Memory
	// falls back to single-reference rows near the top of the space);
	// consumers may rely on both. Word-run producers (mem.TouchRun)
	// use this to store an n-word sweep as one row, and the simulators
	// consume runs with closed-form line/page arithmetic instead of
	// per-reference decomposition.
	Runs []uint32
	// Tids is the optional thread-identity column. When non-nil (same
	// length as the other columns), Tids[i] is the logical thread that
	// issued row i — every reference of a run row shares the row's tid.
	// A nil Tids column means every row was issued by thread 0, so
	// single-threaded producers pay nothing for the column's existence.
	// Like the other columns it is only valid for the duration of a
	// BlockSink.Block call.
	Tids []uint8
}

// Len returns the number of rows in the block. With a Runs column this
// can be smaller than the number of references; see Refs.
func (b *Block) Len() int { return len(b.Addrs) }

// Refs returns the total number of references in the block, expanding
// run rows.
func (b *Block) Refs() int {
	if b.Runs == nil {
		return len(b.Addrs)
	}
	var n uint64
	for _, r := range b.Runs {
		n += uint64(r)
	}
	return int(n)
}

// At returns the first reference of row i. Rows with Runs[i] > 1 stand
// for further references beyond it; use AppendRefs to expand them.
func (b *Block) At(i int) Ref {
	r := Ref{Addr: b.Addrs[i], Size: b.Sizes[i], Kind: b.Kinds[i]}
	if b.Tids != nil {
		r.Tid = b.Tids[i]
	}
	return r
}

// Append adds one single-reference row to the block. A nonzero r.Tid
// materializes the Tids column on first use.
func (b *Block) Append(r Ref) {
	if b.Tids == nil && r.Tid != 0 {
		b.ensureTids()
	}
	b.Addrs = append(b.Addrs, r.Addr)
	b.Sizes = append(b.Sizes, r.Size)
	b.Kinds = append(b.Kinds, r.Kind)
	if b.Runs != nil {
		b.Runs = append(b.Runs, 1)
	}
	if b.Tids != nil {
		b.Tids = append(b.Tids, r.Tid)
	}
}

// AppendRun adds a run row: n consecutive references of size bytes each
// starting at addr, all issued by thread 0. It materializes the Runs
// column on first use.
func (b *Block) AppendRun(addr uint64, size uint32, k Kind, n uint32) {
	b.AppendRunTid(addr, size, k, n, 0)
}

// AppendRunTid is AppendRun with an explicit thread id; a nonzero tid
// materializes the Tids column on first use.
func (b *Block) AppendRunTid(addr uint64, size uint32, k Kind, n uint32, tid uint8) {
	if b.Runs == nil {
		//lint:allow hotalloc one-time materialization of the Runs column, amortized across the block's reuse (Reset keeps the backing array)
		b.Runs = make([]uint32, len(b.Addrs), cap(b.Addrs))
		for i := range b.Runs {
			b.Runs[i] = 1
		}
	}
	if b.Tids == nil && tid != 0 {
		b.ensureTids()
	}
	b.Addrs = append(b.Addrs, addr)
	b.Sizes = append(b.Sizes, size)
	b.Kinds = append(b.Kinds, k)
	b.Runs = append(b.Runs, n)
	if b.Tids != nil {
		b.Tids = append(b.Tids, tid)
	}
}

// ensureTids backfills the Tids column with zeros (thread 0) for the
// rows appended before the first nonzero tid. Kept out of line so the
// one-time materialization is not inlined into the hot append paths
// (Reset keeps the backing array, so it never runs twice per block).
//
//go:noinline
func (b *Block) ensureTids() {
	b.Tids = make([]uint8, len(b.Addrs), cap(b.Addrs))
}

// Reset empties the block, keeping the columns' capacity.
func (b *Block) Reset() {
	b.Addrs = b.Addrs[:0]
	b.Sizes = b.Sizes[:0]
	b.Kinds = b.Kinds[:0]
	if b.Runs != nil {
		b.Runs = b.Runs[:0]
	}
	if b.Tids != nil {
		b.Tids = b.Tids[:0]
	}
}

// AppendRefs converts the block's references into dst (appending),
// expanding run rows, and returns the extended slice — the bridge from
// a columnar producer to a BatchSink consumer.
func (b *Block) AppendRefs(dst []Ref) []Ref {
	for i, a := range b.Addrs {
		sz, k := b.Sizes[i], b.Kinds[i]
		var tid uint8
		if b.Tids != nil {
			tid = b.Tids[i]
		}
		n := uint32(1)
		if b.Runs != nil {
			n = b.Runs[i]
		}
		for ; n > 0; n-- {
			dst = append(dst, Ref{Addr: a, Size: sz, Kind: k, Tid: tid})
			a += uint64(sz)
		}
	}
	return dst
}

// BlockSink is a Sink that additionally accepts references as columnar
// blocks. It is the third delivery tier: producers hand each flushed
// batch as one Block to every BlockSink, as a []Ref to every remaining
// BatchSink, and reference by reference to plain Sinks.
//
// The contract extends BatchSink's: Block(b) must be equivalent to
// calling Ref for every reference of the block in row order — with run
// rows (see Block.Runs) expanded in place — and the sink must tolerate
// deferred delivery. The block and its column slices are only valid
// for the duration of the call and will be reused by the producer;
// copy what must be retained. A sink implementing both BlockSink and
// BatchSink receives each batch exactly once, via Block.
type BlockSink interface {
	Sink
	Block(*Block)
}

// Split partitions a sink graph into its batch-capable leaves and an
// immediate-delivery remainder. Tees are flattened recursively (and
// Discard/nil entries dropped) exactly as NewTee does; every leaf that
// implements BatchSink lands in the batch slice, and the rest are
// recombined into a single Sink (nil when there are none). Producers
// use this to route buffered references to batchers at flush time while
// still delivering synchronously to everything else.
func Split(s Sink) ([]BatchSink, Sink) {
	flat := flatten(nil, []Sink{s})
	var batch []BatchSink
	var rest Tee
	for _, leaf := range flat {
		if b, ok := leaf.(BatchSink); ok {
			batch = append(batch, b)
		} else {
			rest = append(rest, leaf)
		}
	}
	switch len(rest) {
	case 0:
		return batch, nil
	case 1:
		return batch, rest[0]
	default:
		return batch, rest
	}
}

// SplitBlocks partitions a sink graph into three delivery tiers:
// columnar-block leaves, slice-batch leaves that do not take blocks,
// and the immediate-delivery remainder (nil when there are none). Tees
// are flattened and Discard/nil entries dropped exactly as NewTee does.
// mem.Memory uses this to route each flushed buffer once per leaf at
// the widest interface the leaf supports.
func SplitBlocks(s Sink) ([]BlockSink, []BatchSink, Sink) {
	flat := flatten(nil, []Sink{s})
	var blocks []BlockSink
	var batch []BatchSink
	var rest Tee
	for _, leaf := range flat {
		switch v := leaf.(type) {
		case BlockSink:
			blocks = append(blocks, v)
		case BatchSink:
			batch = append(batch, v)
		default:
			rest = append(rest, leaf)
		}
	}
	switch len(rest) {
	case 0:
		return blocks, batch, nil
	case 1:
		return blocks, batch, rest[0]
	default:
		return blocks, batch, rest
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r Ref) { f(r) }

type discardSink struct{}

func (discardSink) Ref(Ref)      {}
func (discardSink) Refs([]Ref)   {}
func (discardSink) Block(*Block) {}

// Discard is a Sink that drops every reference.
var Discard Sink = discardSink{}

// Tee fans a reference stream out to several sinks in order.
type Tee []Sink

// Ref implements Sink.
func (t Tee) Ref(r Ref) {
	for _, s := range t {
		s.Ref(r)
	}
}

// Refs implements BatchSink: members that batch receive the whole
// slice, the rest receive the references one by one.
func (t Tee) Refs(batch []Ref) {
	for _, s := range t {
		if b, ok := s.(BatchSink); ok {
			b.Refs(batch)
			continue
		}
		for _, r := range batch {
			s.Ref(r)
		}
	}
}

// Block implements BlockSink: members that take blocks receive the
// block, slice-batchers receive a materialized []Ref (built at most
// once per call), and the rest receive the references one by one. Hot
// producers should prefer SplitBlocks and deliver to the leaves
// directly; Tee.Block is the correct-but-unoptimized composition for
// ad-hoc pipelines.
func (t Tee) Block(blk *Block) {
	var refs []Ref
	for _, s := range t {
		if b, ok := s.(BlockSink); ok {
			b.Block(blk)
			continue
		}
		// Materialize the expanded reference slice at most once and
		// share it between slice-batchers and per-reference members.
		if refs == nil {
			refs = blk.AppendRefs(make([]Ref, 0, blk.Refs()))
		}
		if b, ok := s.(BatchSink); ok {
			b.Refs(refs)
			continue
		}
		for _, r := range refs {
			s.Ref(r)
		}
	}
}

// NewTee builds a Tee from the given sinks, recursively flattening
// nested Tees and dropping Discard and nil entries at any depth. If the
// result contains a single sink, that sink is returned directly; with
// none, Discard.
func NewTee(sinks ...Sink) Sink {
	flat := flatten(nil, sinks)
	switch len(flat) {
	case 0:
		return Discard
	case 1:
		return flat[0]
	}
	return flat
}

func flatten(dst Tee, sinks []Sink) Tee {
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
			continue
		case Tee:
			dst = flatten(dst, v)
		default:
			if s == Discard {
				continue
			}
			dst = append(dst, s)
		}
	}
	return dst
}

// Counter tallies references by kind and total bytes touched.
type Counter struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrote uint64
}

// Ref implements Sink.
func (c *Counter) Ref(r Ref) {
	if r.Kind == Write {
		c.Writes++
		c.BytesWrote += uint64(r.Size)
	} else {
		c.Reads++
		c.BytesRead += uint64(r.Size)
	}
}

// Refs implements BatchSink.
func (c *Counter) Refs(batch []Ref) {
	for _, r := range batch {
		c.Ref(r)
	}
}

// Block implements BlockSink: the tally needs only the kind and size
// columns, scanned in lockstep.
func (c *Counter) Block(b *Block) {
	// Local accumulators keep the loop in registers; the write counts
	// fall out of the totals, so only writes pay the per-row branch. A
	// run row contributes its whole count with two multiplies — the
	// tally is the same whichever way the run is delivered.
	var refs, writes, wroteBytes, totalBytes uint64
	if b.Runs == nil {
		for i, k := range b.Kinds {
			sz := uint64(b.Sizes[i])
			totalBytes += sz
			if k == Write {
				writes++
				wroteBytes += sz
			}
		}
		refs = uint64(len(b.Kinds))
	} else {
		for i, k := range b.Kinds {
			n := uint64(b.Runs[i])
			bytes := n * uint64(b.Sizes[i])
			refs += n
			totalBytes += bytes
			if k == Write {
				writes += n
				wroteBytes += bytes
			}
		}
	}
	c.Writes += writes
	c.BytesWrote += wroteBytes
	c.Reads += refs - writes
	c.BytesRead += totalBytes - wroteBytes
}

// Total returns the total number of references seen.
func (c *Counter) Total() uint64 { return c.Reads + c.Writes }

// Bytes returns the total number of bytes touched.
func (c *Counter) Bytes() uint64 { return c.BytesRead + c.BytesWrote }

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// Filter forwards only references for which Keep returns true.
type Filter struct {
	Keep func(Ref) bool
	Next Sink
}

// Ref implements Sink.
func (f *Filter) Ref(r Ref) {
	if f.Keep(r) {
		f.Next.Ref(r)
	}
}

// Refs implements BatchSink.
func (f *Filter) Refs(batch []Ref) {
	for _, r := range batch {
		if f.Keep(r) {
			f.Next.Ref(r)
		}
	}
}

// RangeFilter forwards only references whose address lies in [Lo, Hi).
func RangeFilter(lo, hi uint64, next Sink) Sink {
	return &Filter{
		Keep: func(r Ref) bool { return r.Addr >= lo && r.Addr < hi },
		Next: next,
	}
}

// Recorder appends every reference to an in-memory slice. It is intended
// for tests and small traces.
type Recorder struct {
	Refs []Ref
}

// Ref implements Sink. Recorder does not implement BatchSink (the
// exported Refs field occupies the method name): it receives every
// reference synchronously even from batching producers, which is what
// tests interleaving recorded references with other events want.
func (rec *Recorder) Ref(r Ref) { rec.Refs = append(rec.Refs, r) }

// Reset clears the recorded references.
func (rec *Recorder) Reset() { rec.Refs = rec.Refs[:0] }
