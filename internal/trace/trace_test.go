package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("Kind strings: %q %q", Read, Write)
	}
	if Kind(9).String() != "unknown" {
		t.Errorf("unexpected: %q", Kind(9))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Ref(Ref{Addr: 0, Size: 4, Kind: Read})
	c.Ref(Ref{Addr: 8, Size: 8, Kind: Write})
	c.Ref(Ref{Addr: 16, Size: 4, Kind: Read})
	if c.Reads != 2 || c.Writes != 1 {
		t.Errorf("reads=%d writes=%d", c.Reads, c.Writes)
	}
	if c.Total() != 3 {
		t.Errorf("total=%d", c.Total())
	}
	if c.BytesRead != 8 || c.BytesWrote != 8 || c.Bytes() != 16 {
		t.Errorf("bytes: %d/%d", c.BytesRead, c.BytesWrote)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counter
	tee := NewTee(&a, &b)
	tee.Ref(Ref{Size: 4})
	tee.Ref(Ref{Size: 4, Kind: Write})
	if a.Total() != 2 || b.Total() != 2 {
		t.Errorf("tee did not fan out: %d %d", a.Total(), b.Total())
	}
}

func TestNewTeeFlattens(t *testing.T) {
	var a, b, c Counter
	inner := NewTee(&a, &b)
	outer := NewTee(inner, &c, nil, Discard)
	tee, ok := outer.(Tee)
	if !ok {
		t.Fatalf("expected Tee, got %T", outer)
	}
	if len(tee) != 3 {
		t.Errorf("expected 3 flattened sinks, got %d", len(tee))
	}
	if got := NewTee(); got != Discard {
		t.Errorf("empty tee should be Discard")
	}
	if got := NewTee(&a); got != Sink(&a) {
		t.Errorf("single-sink tee should collapse")
	}
}

// TestNewTeeNested: hand-built Tees nested inside Tees flatten
// recursively, including Discard and nil entries at any depth.
func TestNewTeeNested(t *testing.T) {
	var a, b, c, d Counter
	deep := Tee{&a, Tee{&b, Tee{&c, Discard}, nil}}
	out := NewTee(deep, &d)
	tee, ok := out.(Tee)
	if !ok {
		t.Fatalf("expected Tee, got %T", out)
	}
	if len(tee) != 4 {
		t.Fatalf("expected 4 flattened sinks, got %d: %#v", len(tee), tee)
	}
	out.Ref(Ref{Size: 4})
	for i, cnt := range []*Counter{&a, &b, &c, &d} {
		if cnt.Total() != 1 {
			t.Errorf("sink %d saw %d refs, want 1", i, cnt.Total())
		}
	}
}

// TestNewTeeAllDiscard: an input of only Discard (and nested Discard)
// collapses to Discard itself, not an empty Tee.
func TestNewTeeAllDiscard(t *testing.T) {
	if got := NewTee(Discard, Discard); got != Discard {
		t.Errorf("all-Discard tee = %T, want Discard", got)
	}
	if got := NewTee(Tee{Discard}, nil, Tee{Tee{Discard}}); got != Discard {
		t.Errorf("nested all-Discard tee = %T, want Discard", got)
	}
	if got := NewTee(nil, nil); got != Discard {
		t.Errorf("all-nil tee = %T, want Discard", got)
	}
}

// TestNewTeeSingleUnwrap: a single surviving sink is returned directly
// even when buried under nesting and noise.
func TestNewTeeSingleUnwrap(t *testing.T) {
	var a Counter
	if got := NewTee(Tee{Tee{&a}}, Discard, nil); got != Sink(&a) {
		t.Errorf("buried single sink = %T, want *Counter directly", got)
	}
	if got := NewTee(Discard, &a); got != Sink(&a) {
		t.Errorf("single sink + Discard = %T, want *Counter directly", got)
	}
}

func TestFilterAndRange(t *testing.T) {
	var c Counter
	f := RangeFilter(100, 200, &c)
	f.Ref(Ref{Addr: 50, Size: 4})
	f.Ref(Ref{Addr: 100, Size: 4})
	f.Ref(Ref{Addr: 199, Size: 4})
	f.Ref(Ref{Addr: 200, Size: 4})
	if c.Total() != 2 {
		t.Errorf("range filter passed %d refs, want 2", c.Total())
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	refs := []Ref{{1, 4, Read, 0}, {2, 8, Write, 0}}
	for _, ref := range refs {
		r.Ref(ref)
	}
	if len(r.Refs) != 2 || r.Refs[0] != refs[0] || r.Refs[1] != refs[1] {
		t.Errorf("recorded %v", r.Refs)
	}
	r.Reset()
	if len(r.Refs) != 0 {
		t.Error("reset failed")
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(Ref) { n++ })
	s.Ref(Ref{})
	if n != 1 {
		t.Error("SinkFunc not invoked")
	}
}

// TestQuickCounterTotals: total always equals reads+writes and bytes
// accumulate exactly, for arbitrary ref sequences.
func TestQuickCounterTotals(t *testing.T) {
	prop := func(addrs []uint64, sizes []uint16, kinds []bool) bool {
		var c Counter
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		var bytes uint64
		for i := 0; i < n; i++ {
			k := Read
			if kinds[i] {
				k = Write
			}
			c.Ref(Ref{Addr: addrs[i], Size: uint32(sizes[i]), Kind: k})
			bytes += uint64(sizes[i])
		}
		return c.Total() == uint64(n) && c.Bytes() == bytes
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTeeRefsBatch(t *testing.T) {
	var c1, c2 Counter
	var plain Recorder // plain Sink: receives per-ref fan-out
	tee := Tee{&c1, &plain, &c2}
	batch := []Ref{
		{Addr: 0, Size: 4},
		{Addr: 8, Size: 4, Kind: Write},
		{Addr: 16, Size: 8},
	}
	tee.Refs(batch)
	if c1.Total() != 3 || c2.Total() != 3 || len(plain.Refs) != 3 {
		t.Errorf("batch fan-out: c1=%d c2=%d plain=%d", c1.Total(), c2.Total(), len(plain.Refs))
	}
	if c1.Writes != 1 || c1.BytesRead != 12 {
		t.Errorf("counter state: %+v", c1)
	}
}

func TestCounterBatchMatchesSingle(t *testing.T) {
	refs := []Ref{{Addr: 0, Size: 4}, {Addr: 4, Size: 8, Kind: Write}, {Addr: 32, Size: 0}}
	var a, b Counter
	for _, r := range refs {
		a.Ref(r)
	}
	b.Refs(refs)
	if a != b {
		t.Errorf("batch %+v != single %+v", b, a)
	}
}

func TestFilterBatch(t *testing.T) {
	var out Counter
	f := &Filter{Keep: func(r Ref) bool { return r.Addr < 100 }, Next: &out}
	f.Refs([]Ref{{Addr: 1, Size: 4}, {Addr: 200, Size: 4}, {Addr: 99, Size: 4}})
	if out.Total() != 2 {
		t.Errorf("filtered batch total = %d, want 2", out.Total())
	}
}

func TestSplit(t *testing.T) {
	var c Counter      // BatchSink
	var rec Recorder   // plain Sink (Refs is a field)
	var rec2 Recorder  // second plain sink: remainder becomes a Tee
	fn := SinkFunc(func(Ref) {})

	// All-batch graph: no remainder.
	batch, rest := Split(NewTee(&c, Discard))
	if len(batch) != 1 || rest != nil {
		t.Errorf("all-batch split: %d batchers, rest %v", len(batch), rest)
	}

	// Mixed graph, nested tee: batchers extracted, single leftover
	// returned directly.
	batch, rest = Split(NewTee(&c, Tee{&rec}))
	if len(batch) != 1 || rest != Sink(&rec) {
		t.Errorf("mixed split: %d batchers, rest %T", len(batch), rest)
	}

	// Multiple leftovers recombine into a Tee.
	batch, rest = Split(NewTee(&c, &rec, &rec2, fn))
	if len(batch) != 1 {
		t.Errorf("batchers = %d", len(batch))
	}
	if tee, ok := rest.(Tee); !ok || len(tee) != 3 {
		t.Errorf("rest = %T %v, want 3-element Tee", rest, rest)
	}

	// Discard-only graph: nothing at all.
	batch, rest = Split(Discard)
	if len(batch) != 0 || rest != nil {
		t.Errorf("discard split: %d batchers, rest %v", len(batch), rest)
	}
}

var _ BatchSink = (*Counter)(nil)
var _ BatchSink = (Tee)(nil)
var _ BatchSink = (*Filter)(nil)
var _ BatchSink = discardSink{}
