package trace

import "testing"

// Pins the justification on AppendRun's //lint:allow hotalloc: the
// Runs-column make is a one-time materialization, amortized across the
// block's reuse because Reset keeps every backing array.

func TestBlockAppendZeroAllocAfterWarm(t *testing.T) {
	b := &Block{}
	fill := func() {
		b.Reset()
		addr := uint64(0x1000)
		for i := 0; i < 256; i++ {
			b.Append(Ref{Addr: addr, Size: 8, Kind: Read})
			addr += 32
			if i%9 == 0 {
				b.AppendRun(addr, 16, Write, 64)
				addr += 16 * 64
			}
		}
	}
	fill() // grow the columns (including the lazily materialized Runs) once
	if avg := testing.AllocsPerRun(50, fill); avg != 0 {
		t.Errorf("warmed Block append cycle allocates %.1f allocs/op, want 0", avg)
	}
}
