package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format, used by cmd/tracegen to store and replay
// reference traces without rerunning the workload driver.
//
// Layout:
//
//	magic   [4]byte  "MTR1"
//	records *
//
// Each record is:
//
//	tag     byte     bit0 = kind (0 read, 1 write); bits 1.. = size field:
//	                 size encoded as (size>>2) when size is a multiple of 4
//	                 and fits in 6 bits, else tag size field = 0x3f and an
//	                 explicit uvarint size follows the address.
//	addr    zigzag varint delta from previous address
//	[size]  uvarint, only when tag size field == 0x3f
//
// Delta+varint encoding keeps traces compact: consecutive references are
// usually near each other, which is, after all, what this paper is about.

var magic = [4]byte{'M', 'T', 'R', '1'}

const sizeInline = 0x3f

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer serializes a reference stream to an io.Writer. It implements
// Sink; call Flush when done.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	buf      [2*binary.MaxVarintLen64 + 1]byte
	err      error
}

// NewWriter creates a Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Ref implements Sink. Encoding errors are sticky and reported by Flush.
func (tw *Writer) Ref(r Ref) {
	if tw.err != nil {
		return
	}
	tag := byte(0)
	if r.Kind == Write {
		tag = 1
	}
	inline := false
	if r.Size%4 == 0 && r.Size>>2 < sizeInline {
		tag |= byte(r.Size>>2) << 1
	} else {
		tag |= sizeInline << 1
		inline = true
	}
	n := 0
	tw.buf[n] = tag
	n++
	delta := int64(r.Addr) - int64(tw.prevAddr)
	n += binary.PutVarint(tw.buf[n:], delta)
	if inline {
		n += binary.PutUvarint(tw.buf[n:], uint64(r.Size))
	}
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		tw.err = err
		return
	}
	tw.prevAddr = r.Addr
	tw.count++
}

// Count returns the number of references written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush writes buffered data and returns the first error encountered.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader decodes a trace stream produced by Writer.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:])
	}
	return &Reader{r: br}, nil
}

// Next returns the next reference, or io.EOF at end of stream.
func (tr *Reader) Next() (Ref, error) {
	tag, err := tr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		return Ref{}, fmt.Errorf("trace: %w", err)
	}
	var ref Ref
	if tag&1 != 0 {
		ref.Kind = Write
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Ref{}, fmt.Errorf("%w: truncated address", ErrBadTrace)
	}
	ref.Addr = uint64(int64(tr.prevAddr) + delta)
	szField := tag >> 1
	if szField == sizeInline {
		sz, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Ref{}, fmt.Errorf("%w: truncated size", ErrBadTrace)
		}
		ref.Size = uint32(sz)
	} else {
		ref.Size = uint32(szField) << 2
	}
	tr.prevAddr = ref.Addr
	return ref, nil
}

// ForEach decodes the whole stream, invoking sink for every reference.
// It returns the number of references decoded.
func (tr *Reader) ForEach(sink Sink) (uint64, error) {
	var n uint64
	for {
		ref, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Ref(ref)
		n++
	}
}
