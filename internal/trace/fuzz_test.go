package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary bytes must never panic the trace decoder; valid
// prefixes decode cleanly and errors are typed.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream and mutations of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Addr: 1 << 33, Size: 4, Kind: Read})
	w.Ref(Ref{Addr: 1<<33 + 64, Size: 3, Kind: Write})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("MTR1"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // typed decode error: fine
			}
		}
	})
}

// FuzzRoundTrip: any sequence of refs encodable from fuzz input must
// survive a write/read cycle intact.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var refs []Ref
		for i := 0; i+5 < len(data); i += 6 {
			refs = append(refs, Ref{
				Addr: uint64(data[i])<<16 | uint64(data[i+1])<<8 | uint64(data[i+2]),
				Size: uint32(data[i+3])<<8 | uint32(data[i+4]),
				Kind: Kind(data[i+5] % 2),
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range refs {
			w.Ref(r)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range refs {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("ref %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("ref %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing data: %v", err)
		}
	})
}
