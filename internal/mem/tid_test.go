package mem

import (
	"testing"

	"mallocsim/internal/trace"
)

// blockTap captures flushed blocks (deep-copying the columns, which are
// only valid during the call) so tests can inspect the Tids column.
type blockTap struct {
	blocks []trace.Block
}

func (s *blockTap) Ref(trace.Ref) {}
func (s *blockTap) Block(b *trace.Block) {
	cp := trace.Block{
		Addrs: append([]uint64(nil), b.Addrs...),
		Sizes: append([]uint32(nil), b.Sizes...),
		Kinds: append([]trace.Kind(nil), b.Kinds...),
	}
	if b.Runs != nil {
		cp.Runs = append([]uint32(nil), b.Runs...)
	}
	if b.Tids != nil {
		cp.Tids = append([]uint8(nil), b.Tids...)
	}
	s.blocks = append(s.blocks, cp)
}

func TestTidColumnAbsentWithoutSetTid(t *testing.T) {
	tap := &blockTap{}
	m := New(tap, nil)
	m.SetBatching(0)
	m.Touch(0x100, 4, trace.Read)
	m.TouchRun(0x200, 16, trace.Write)
	m.Flush()
	if len(tap.blocks) == 0 {
		t.Fatal("no blocks flushed")
	}
	for i, b := range tap.blocks {
		if b.Tids != nil {
			t.Errorf("block %d has a Tids column %v without SetTid", i, b.Tids)
		}
	}
}

func TestTidStampingBatched(t *testing.T) {
	tap := &blockTap{}
	m := New(tap, nil)
	m.SetBatching(0)
	m.Touch(0x100, 4, trace.Read) // buffered before activation: tid 0
	m.SetTid(2)
	m.Touch(0x104, 4, trace.Write)
	m.TouchRun(0x200, 8, trace.Read) // one run row, tid 2
	m.SetTid(0)
	m.Touch(0x300, 4, trace.Read)
	m.Flush()
	if len(tap.blocks) != 1 {
		t.Fatalf("flushed %d blocks, want 1", len(tap.blocks))
	}
	b := tap.blocks[0]
	want := []uint8{0, 2, 2, 0}
	if len(b.Tids) != len(want) {
		t.Fatalf("Tids = %v, want %v", b.Tids, want)
	}
	for i, w := range want {
		if b.Tids[i] != w {
			t.Errorf("Tids[%d] = %d, want %d", i, b.Tids[i], w)
		}
	}
}

func TestTidStampingUnbatched(t *testing.T) {
	rec := &trace.Recorder{}
	m := New(rec, nil)
	m.SetTid(3)
	m.Touch(0x100, 4, trace.Read)
	m.TouchRun(0x200, 2, trace.Write)
	m.SetTid(1)
	m.Touch(0x300, 4, trace.Read)
	want := []uint8{3, 3, 3, 1}
	if len(rec.Refs) != len(want) {
		t.Fatalf("recorded %d refs, want %d", len(rec.Refs), len(want))
	}
	for i, w := range want {
		if rec.Refs[i].Tid != w {
			t.Errorf("ref %d tid %d, want %d", i, rec.Refs[i].Tid, w)
		}
	}
}

// TestTidBatchedMatchesUnbatched pins the delivery-tier equivalence for
// tid-stamped streams: expanding the batched blocks yields exactly the
// unbatched per-reference stream, tids included.
func TestTidBatchedMatchesUnbatched(t *testing.T) {
	emitAll := func(m *Memory) {
		for i := 0; i < 300; i++ {
			m.SetTid(uint8(i % 5))
			m.Touch(uint64(0x1000+i*8), 4, trace.Kind(i%2))
			if i%11 == 0 {
				m.TouchRun(uint64(0x9000+i*64), 12, trace.Read)
			}
		}
	}

	rec := &trace.Recorder{}
	m1 := New(rec, nil)
	emitAll(m1)

	tap := &blockTap{}
	m2 := New(tap, nil)
	m2.SetBatching(64)
	emitAll(m2)
	m2.Flush()
	var batched []trace.Ref
	for i := range tap.blocks {
		batched = tap.blocks[i].AppendRefs(batched)
	}

	if len(batched) != len(rec.Refs) {
		t.Fatalf("batched %d refs, unbatched %d", len(batched), len(rec.Refs))
	}
	for i := range batched {
		if batched[i] != rec.Refs[i] {
			t.Fatalf("ref %d: batched %+v, unbatched %+v", i, batched[i], rec.Refs[i])
		}
	}
}
