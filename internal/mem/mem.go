// Package mem provides the simulated byte-addressable address space on
// which every allocator in this repository operates.
//
// The allocators are not models: they are real implementations whose
// freelist links, boundary tags and chunk headers live as 32-bit words
// inside this simulated memory. Every word read or written by an
// allocator emits a trace.Ref (so the cache and page simulators see the
// allocator's own reference behaviour — the paper's central concern) and
// charges one instruction to the active cost domain (loads and stores
// are instructions on the paper's MIPS test vehicle).
//
// Memory is sparse and organized into named regions. Each region has a
// fixed virtual base and grows upward via Sbrk, mimicking Unix program
// break semantics; distinct regions live far apart so an allocator can
// keep, say, a chunk-descriptor table in one region and the heap proper
// in another (as GNU malloc does) without the two colliding. Backing
// pages are materialized lazily, so a region's virtual span costs
// nothing until touched.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mallocsim/internal/cost"
	"mallocsim/internal/trace"
)

const (
	// WordSize is the machine word in bytes. The paper's test vehicle is
	// a 32-bit DECstation; boundary tags are one word ("two extra words
	// of overhead ... 8 bytes").
	WordSize = 4

	// PageSize is the backing-store granularity and also the page size
	// used by the paper's VM experiments (4 KB).
	PageSize = 4096

	// LineSize is the cache block size of the paper's test vehicle
	// (32-byte blocks on the DECstation's R3000). The cache simulators
	// default to it; it lives here, next to WordSize and PageSize, so
	// the whole tree derives its machine geometry from one place (the
	// wordaddr analyzer enforces this).
	LineSize = 32

	// regionSpan is the virtual address spacing between region bases.
	// 4 GiB keeps all word values (which hold addresses) inside 32 bits
	// only if a region's *offset* is stored; we instead store full
	// addresses as 64-bit values split across... see Region docs.
	regionSpan = 1 << 32
)

// RegionReserve is the number of bytes reserved at the start of every
// region, so that no object ever lives at region offset 0: allocators
// store region-relative offsets in 32-bit memory words, and offset 0 is
// their NULL.
const RegionReserve = 2 * WordSize

// ErrOutOfMemory is returned by Sbrk when a region's limit is exceeded.
var ErrOutOfMemory = errors.New("mem: out of memory")

// ErrBadAddress is returned for accesses outside any region's break.
var ErrBadAddress = errors.New("mem: address outside allocated region")

// DefaultBatchSize is the reference ring-buffer capacity used by
// SetBatching(0): 2048 refs (~26 KB of columns) still fits comfortably
// in L2 while cutting the per-flush fan-out and the run-length breaks
// at block boundaries to an eighth of a 256-ref buffer's.
const DefaultBatchSize = 2048

// Memory is a sparse simulated address space. It is not safe for
// concurrent use; each simulation run owns one Memory.
type Memory struct {
	pages   map[uint64]*[PageSize]byte
	regions []*Region
	sink    trace.Sink
	meter   *cost.Meter

	// Batched reference delivery (see SetBatching): emitted references
	// accumulate in the columnar ring buffer (addrs/sizes/kinds/runs,
	// one row per reference — or per word run, see TouchRun) and are
	// handed at flush boundaries as one trace.Block to each BlockSink
	// and as a materialized []Ref slice to each remaining BatchSink;
	// direct receives every reference synchronously. addrs == nil means
	// batching is off.
	addrs      []uint64
	sizes      []uint32
	kinds      []trace.Kind
	runs       []uint32
	bufN       int
	blockSinks []trace.BlockSink
	batchers   []trace.BatchSink
	direct     trace.Sink
	flushBlk   trace.Block
	refScratch []trace.Ref

	// Thread-identity stamping (see SetTid). tids is the optional
	// columnar tid ring, allocated lazily on the first SetTid call so
	// that single-threaded runs carry no column and flush blocks with a
	// nil Tids column — byte-identical to the pre-Tid pipeline. curTid
	// is stamped into every emitted reference; it stays 0 until SetTid
	// is called, and Ref.Tid == 0 is the zero value either way.
	tids   []uint8
	curTid uint8
	tidOn  bool

	// InstrPerAccess is the instruction charge per word access.
	// Default 1 (a load or store instruction).
	InstrPerAccess uint64

	// DefaultRegionLimit caps regions created with limit 0. It exists
	// for failure-injection tests: a small default limit drives every
	// allocator's out-of-memory paths without special constructors.
	// Zero means the full region span.
	DefaultRegionLimit uint64
}

// New creates an empty Memory that reports references to sink and
// charges instructions to meter. Either may be nil, in which case
// references are discarded / instructions are not charged.
func New(sink trace.Sink, meter *cost.Meter) *Memory {
	if sink == nil {
		sink = trace.Discard
	}
	return &Memory{
		pages:          make(map[uint64]*[PageSize]byte),
		sink:           sink,
		meter:          meter,
		InstrPerAccess: 1,
	}
}

// SetSink replaces the reference sink. Pending batched references are
// flushed to the old sinks first.
func (m *Memory) SetSink(s trace.Sink) {
	if s == nil {
		s = trace.Discard
	}
	m.Flush()
	m.sink = s
	if m.addrs != nil {
		m.rebatch(len(m.addrs))
	}
}

// SetBatching enables (size > 0, or 0 for DefaultBatchSize) or disables
// (size < 0) batched reference delivery. When enabled, references are
// buffered in a columnar ring buffer and flushed as a trace.Block to
// every sink that implements trace.BlockSink and as a slice to every
// remaining trace.BatchSink; sinks that implement neither still receive
// each reference immediately, so order-sensitive sinks stay exact.
// Callers that read simulator state out of band (cache counters, fault
// curves) must call Flush first; the simulation drivers in package sim
// and paper do.
//
// Batching is off by default: ad-hoc pipelines keep the seed semantics
// where every sink observes each reference the instant it is emitted.
func (m *Memory) SetBatching(size int) {
	m.Flush()
	if size < 0 {
		m.addrs, m.sizes, m.kinds, m.runs, m.tids = nil, nil, nil, nil, nil
		m.blockSinks, m.batchers, m.direct = nil, nil, nil
		return
	}
	if size == 0 {
		size = DefaultBatchSize
	}
	m.rebatch(size)
}

// rebatch recomputes the block/batch/direct split of the current sink.
func (m *Memory) rebatch(size int) {
	m.blockSinks, m.batchers, m.direct = trace.SplitBlocks(m.sink)
	if len(m.blockSinks) == 0 && len(m.batchers) == 0 {
		// Nothing batches: fall back to the plain path.
		m.addrs, m.sizes, m.kinds, m.runs, m.tids = nil, nil, nil, nil, nil
		m.direct = nil
		return
	}
	m.addrs = make([]uint64, size)
	m.sizes = make([]uint32, size)
	m.kinds = make([]trace.Kind, size)
	m.runs = make([]uint32, size)
	if m.tidOn {
		m.tids = make([]uint8, size)
	} else {
		m.tids = nil
	}
	m.bufN = 0
}

// SetTid sets the logical thread id stamped on every subsequently
// emitted reference. The default tid is 0; the first call activates the
// Tids column on flushed blocks (rows buffered before activation keep
// tid 0), so workloads that never call SetTid produce blocks with a nil
// Tids column and a byte-identical reference stream to the pre-Tid
// pipeline. Concurrent workload drivers call SetTid when switching the
// logical thread whose references they are replaying; like the rest of
// Memory it is not safe for concurrent use.
func (m *Memory) SetTid(tid uint8) {
	if tid == m.curTid && m.tidOn {
		return
	}
	if !m.tidOn {
		m.tidOn = true
		if m.addrs != nil {
			// Rows already buffered were emitted under tid 0; a zeroed
			// column of the full ring capacity records exactly that.
			m.tids = make([]uint8, len(m.addrs))
		}
	}
	m.curTid = tid
}

// Flush delivers buffered references to the block and batch sinks. It
// is a no-op when batching is disabled or the buffer is empty.
func (m *Memory) Flush() {
	if m.bufN == 0 {
		return
	}
	n := m.bufN
	m.bufN = 0
	m.flushBlk = trace.Block{Addrs: m.addrs[:n], Sizes: m.sizes[:n], Kinds: m.kinds[:n], Runs: m.runs[:n]}
	if m.tids != nil {
		m.flushBlk.Tids = m.tids[:n]
	}
	for _, b := range m.blockSinks {
		b.Block(&m.flushBlk)
	}
	if len(m.batchers) > 0 {
		m.refScratch = m.flushBlk.AppendRefs(m.refScratch[:0])
		for _, b := range m.batchers {
			b.Refs(m.refScratch)
		}
	}
}

// emit routes one reference to the sinks, via the ring buffer when
// batching is enabled.
func (m *Memory) emit(r trace.Ref) {
	// One unconditional byte move keeps the single-threaded fast path
	// branch-free: curTid is 0 until SetTid is first called, matching
	// the Ref zero value.
	r.Tid = m.curTid
	if m.addrs == nil {
		m.sink.Ref(r)
		return
	}
	if m.direct != nil {
		m.direct.Ref(r)
	}
	n := m.bufN
	m.addrs[n] = r.Addr
	m.sizes[n] = r.Size
	m.kinds[n] = r.Kind
	m.runs[n] = 1
	if m.tids != nil {
		m.tids[n] = r.Tid
	}
	m.bufN = n + 1
	if m.bufN == len(m.addrs) {
		m.Flush()
	}
}

// Meter returns the cost meter, which may be nil.
func (m *Memory) Meter() *cost.Meter { return m.meter }

// Region is a contiguous, upward-growing span of the simulated address
// space, analogous to a Unix data segment.
type Region struct {
	m     *Memory
	name  string
	base  uint64
	brk   uint64
	limit uint64
}

// NewRegion creates a region with the given name and maximum size in
// bytes (0 means the full region span). Regions are assigned
// non-overlapping virtual bases in creation order, starting at 1<<32 so
// that address 0 is never valid (a faithful NULL).
func (m *Memory) NewRegion(name string, limit uint64) *Region {
	// Regions are staggered by a page count coprime to the cache sizes
	// under study so that region bases do not all collide on cache set
	// 0 (real processes also place segments at unrelated offsets).
	i := uint64(len(m.regions))
	base := (i+1)*regionSpan + i*37*PageSize
	if limit == 0 {
		limit = m.DefaultRegionLimit
	}
	if limit == 0 || limit > regionSpan {
		limit = regionSpan
	}
	r := &Region{m: m, name: name, base: base, brk: base + RegionReserve, limit: base + limit}
	m.regions = append(m.regions, r)
	return r
}

// Regions returns all regions in creation order.
func (m *Memory) Regions() []*Region { return m.regions }

// RegionAt returns the region whose allocated span contains addr, or
// nil. The fast path exploits the regionSpan-aligned base layout (the
// region index is addr's high word minus one); the linear fallback
// covers addresses past a span boundary inside an oversized region.
func (m *Memory) RegionAt(addr uint64) *Region {
	if i := addr/regionSpan - 1; addr >= regionSpan && i < uint64(len(m.regions)) {
		if r := m.regions[i]; r.Contains(addr) {
			return r
		}
	}
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r
		}
	}
	return nil
}

// Footprint returns the total bytes requested from the "operating
// system" across all regions: the paper's "maximum heap size" metric.
func (m *Memory) Footprint() uint64 {
	var total uint64
	for _, r := range m.regions {
		total += r.brk - r.base
	}
	return total
}

// TouchedPages returns the number of distinct backing pages materialized
// so far (pages actually referenced, across all regions).
func (m *Memory) TouchedPages() int { return len(m.pages) }

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Base returns the region's first virtual address.
func (r *Region) Base() uint64 { return r.base }

// Brk returns the current program break (one past the last valid byte).
func (r *Region) Brk() uint64 { return r.brk }

// Size returns the bytes obtained so far via Sbrk.
func (r *Region) Size() uint64 { return r.brk - r.base }

// Contains reports whether addr lies inside the region's allocated span.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.base && addr < r.brk
}

// Sbrk extends the region by n bytes (rounded up to word size) and
// returns the address of the new space. It fails with ErrOutOfMemory
// when the region limit would be exceeded. Sbrk itself costs a few
// instructions (a system-call stub on the original hardware); we charge
// a flat SbrkCost.
const SbrkCost = 20

// Sbrk extends the region and returns the old break.
func (r *Region) Sbrk(n uint64) (uint64, error) {
	n = alignUp(n, WordSize)
	if r.brk+n > r.limit {
		return 0, fmt.Errorf("%w: region %q limit %d exceeded (brk %d + %d)",
			ErrOutOfMemory, r.name, r.limit-r.base, r.brk-r.base, n)
	}
	old := r.brk
	r.brk += n
	r.charge(SbrkCost)
	return old, nil
}

func (r *Region) charge(n uint64) {
	if r.m.meter != nil {
		r.m.meter.Charge(n)
	}
}

func (m *Memory) page(addr uint64) *[PageSize]byte {
	pn := PageOf(addr)
	p := m.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

func (m *Memory) checkAddr(addr uint64, n uint32) {
	// A word access must lie inside some region's allocated span.
	// Out-of-range accesses are programming errors in an allocator and
	// abort the simulation loudly rather than silently corrupting it.
	for _, r := range m.regions {
		if addr >= r.base && addr+uint64(n) <= r.brk {
			return
		}
	}
	panic(fmt.Sprintf("mem: access [%#x,+%d) outside any region break", addr, n))
}

// ReadWord loads the 32-bit word at addr (which must be word-aligned),
// emitting a read reference and charging one instruction.
func (m *Memory) ReadWord(addr uint64) uint64 {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word read at %#x", addr))
	}
	m.checkAddr(addr, WordSize)
	if m.meter != nil {
		m.meter.Charge(m.InstrPerAccess)
	}
	m.emit(trace.Ref{Addr: addr, Size: WordSize, Kind: trace.Read})
	p := m.page(addr)
	off := PageOffset(addr)
	return uint64(binary.LittleEndian.Uint32(p[off : off+WordSize]))
}

// WriteWord stores a 32-bit word at addr (word-aligned), emitting a
// write reference and charging one instruction. Values must fit in 32
// bits: the simulated machine is a 32-bit DECstation, and all addresses
// stored in memory are region-relative (see Region.EncodePtr).
func (m *Memory) WriteWord(addr, val uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word write at %#x", addr))
	}
	if val>>32 != 0 {
		panic(fmt.Sprintf("mem: value %#x does not fit in a 32-bit word", val))
	}
	m.checkAddr(addr, WordSize)
	if m.meter != nil {
		m.meter.Charge(m.InstrPerAccess)
	}
	m.emit(trace.Ref{Addr: addr, Size: WordSize, Kind: trace.Write})
	p := m.page(addr)
	off := PageOffset(addr)
	binary.LittleEndian.PutUint32(p[off:off+WordSize], uint32(val))
}

// Pointer encoding: simulated words are 32 bits wide but virtual
// addresses exceed 32 bits (regions are based at multiples of 1<<32).
// Allocators therefore store *region-relative offsets* in memory words.
// EncodePtr/DecodePtr perform the translation; offset 0 plays the role
// of NULL (region offsets of real objects are never 0 because every
// region reserves its first word).

// EncodePtr converts a full virtual address within r to a storable word
// value. The zero address encodes as 0 (NULL).
func (r *Region) EncodePtr(addr uint64) uint64 {
	if addr == 0 {
		return 0
	}
	if addr < r.base || addr >= r.base+regionSpan {
		panic(fmt.Sprintf("mem: address %#x outside region %q", addr, r.name))
	}
	return addr - r.base
}

// DecodePtr converts a stored word value back to a full virtual address.
// The word 0 decodes to address 0 (NULL).
func (r *Region) DecodePtr(word uint64) uint64 {
	if word == 0 {
		return 0
	}
	return r.base + word
}

// Touch emits a reference of n bytes at addr without reading or writing
// backing store and charges one instruction per word touched. It is
// used by the synthetic application workloads, whose data contents are
// irrelevant — only their addresses matter to the locality simulators.
func (m *Memory) Touch(addr uint64, n uint32, k trace.Kind) {
	if m.meter != nil {
		m.meter.Charge(m.InstrPerAccess)
	}
	m.emit(trace.Ref{Addr: addr, Size: n, Kind: k})
}

// TouchRun emits n word-sized references at consecutive word addresses
// starting at addr, charging one instruction per word. The reference
// stream it produces is exactly the one Touch(addr+i*WordSize,
// WordSize, k) for i in [0,n) produces — same references, same order,
// same charge. With batching enabled the whole run is stored as a
// single run row in the columnar buffer (see trace.Block.Runs), so
// simulators consume it with closed-form line/page arithmetic instead
// of n separate rows; flush boundaries may therefore differ from the
// per-word calls, which the BlockSink deferred-delivery contract
// permits. The workload drivers use TouchRun for object initialization
// and sequential heap runs.
func (m *Memory) TouchRun(addr uint64, n uint64, k trace.Kind) {
	if n == 0 {
		return
	}
	if m.meter != nil {
		m.meter.Charge(n * m.InstrPerAccess)
	}
	if m.addrs == nil || m.direct != nil ||
		n >= 1<<62 || addr+n*WordSize-1 < addr {
		// Unbatched; a synchronous sink wants every reference the
		// instant it is generated; or the run would wrap the address
		// space (run rows must not — wrap-around is only expressible
		// reference by reference): the per-reference path.
		for ; n > 0; n-- {
			r := trace.Ref{Addr: addr, Size: WordSize, Kind: k, Tid: m.curTid}
			if m.addrs == nil {
				m.sink.Ref(r)
			} else {
				m.emit(r)
			}
			addr += WordSize
		}
		return
	}
	for n > 0 {
		run := n
		if run > math.MaxUint32 {
			run = math.MaxUint32
		}
		row := m.bufN
		m.addrs[row] = addr
		m.sizes[row] = WordSize
		m.kinds[row] = k
		m.runs[row] = uint32(run)
		if m.tids != nil {
			m.tids[row] = m.curTid
		}
		m.bufN = row + 1
		addr += run * WordSize
		n -= run
		if m.bufN == len(m.addrs) {
			m.Flush()
		}
	}
}

func alignUp(n, a uint64) uint64 {
	return (n + a - 1) &^ (a - 1)
}

// AlignUp rounds n up to a multiple of a (a power of two).
func AlignUp(n, a uint64) uint64 { return alignUp(n, a) }

// Geometry helpers: the blessed spellings of address decomposition.
// Code outside this package must not hand-roll the equivalent
// shift/mask arithmetic or re-declare the 4/32/4096 magic numbers —
// the wordaddr analyzer (cmd/alloclint) flags both.

// WordOf returns the word index of an address or offset.
func WordOf(addr uint64) uint64 { return addr / WordSize }

// LineOf returns the cache-line index of an address.
func LineOf(addr uint64) uint64 { return addr / LineSize }

// LineOffset returns the byte offset of an address within its line.
func LineOffset(addr uint64) uint64 { return addr % LineSize }

// PageOf returns the page number of an address.
func PageOf(addr uint64) uint64 { return addr / PageSize }

// PageOffset returns the byte offset of an address within its page.
func PageOffset(addr uint64) uint64 { return addr % PageSize }
