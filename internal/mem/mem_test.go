package mem

import (
	"testing"
	"testing/quick"

	"mallocsim/internal/cost"
	"mallocsim/internal/trace"
)

func TestRegionBasics(t *testing.T) {
	m := New(nil, nil)
	r := m.NewRegion("heap", 0)
	if r.Name() != "heap" {
		t.Errorf("name %q", r.Name())
	}
	if r.Base()%PageSize != 0 {
		t.Errorf("region base %#x not page aligned", r.Base())
	}
	if r.Size() != RegionReserve {
		t.Errorf("fresh region size = %d, want reserve %d", r.Size(), RegionReserve)
	}
	addr, err := r.Sbrk(100)
	if err != nil {
		t.Fatal(err)
	}
	if addr != r.Base()+RegionReserve {
		t.Errorf("first sbrk at %#x, want base+reserve", addr)
	}
	if r.Size() != RegionReserve+AlignUp(100, WordSize) {
		t.Errorf("size %d", r.Size())
	}
	if !r.Contains(addr) || r.Contains(r.Brk()) {
		t.Error("Contains wrong at boundaries")
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	m := New(nil, nil)
	var regions []*Region
	for i := 0; i < 8; i++ {
		r := m.NewRegion("r", 0)
		if _, err := r.Sbrk(1 << 20); err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i, a := range regions {
		for j, b := range regions {
			if i == j {
				continue
			}
			if a.Base() < b.Brk() && b.Base() < a.Brk() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestRegionAt(t *testing.T) {
	m := New(nil, nil)
	var regions []*Region
	for i := 0; i < 4; i++ {
		r := m.NewRegion("r", 0)
		if _, err := r.Sbrk(1024); err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i, r := range regions {
		if got := m.RegionAt(r.Base()); got != r {
			t.Errorf("region %d: RegionAt(base) = %v", i, got)
		}
		if got := m.RegionAt(r.Brk() - 1); got != r {
			t.Errorf("region %d: RegionAt(brk-1) = %v", i, got)
		}
		if got := m.RegionAt(r.Brk()); got == r {
			t.Errorf("region %d: RegionAt(brk) should not match", i)
		}
	}
	if got := m.RegionAt(0); got != nil {
		t.Errorf("RegionAt(0) = %v, want nil", got)
	}
	if got := m.RegionAt(1 << 62); got != nil {
		t.Errorf("RegionAt(huge) = %v, want nil", got)
	}
	// Below the first region's base (inside its span slot but before the
	// reserve) nothing matches either.
	if got := m.RegionAt(regions[0].Base() - 1); got != nil {
		t.Errorf("RegionAt(base-1) = %v, want nil", got)
	}
}

func TestRegionLimit(t *testing.T) {
	m := New(nil, nil)
	r := m.NewRegion("small", 4096)
	if _, err := r.Sbrk(8192); err == nil {
		t.Error("expected out-of-memory")
	}
	if _, err := r.Sbrk(2048); err != nil {
		t.Errorf("within limit: %v", err)
	}
}

func TestWordReadWriteRoundTrip(t *testing.T) {
	m := New(nil, nil)
	r := m.NewRegion("heap", 0)
	base, _ := r.Sbrk(1 << 16)
	vals := []uint64{0, 1, 0xdeadbeef, 0xffffffff}
	for i, v := range vals {
		m.WriteWord(base+uint64(i)*4, v)
	}
	for i, v := range vals {
		if got := m.ReadWord(base + uint64(i)*4); got != v {
			t.Errorf("word %d: got %#x want %#x", i, got, v)
		}
	}
	// Fresh memory reads as zero.
	if got := m.ReadWord(base + 4096); got != 0 {
		t.Errorf("fresh word = %#x", got)
	}
}

func TestAccessEmitsRefsAndCharges(t *testing.T) {
	var rec trace.Recorder
	meter := &cost.Meter{}
	m := New(&rec, meter)
	r := m.NewRegion("heap", 0)
	base, _ := r.Sbrk(64)
	before := meter.Total()
	m.WriteWord(base, 42)
	v := m.ReadWord(base)
	if v != 42 {
		t.Fatal("round trip failed")
	}
	if len(rec.Refs) != 2 {
		t.Fatalf("refs = %d, want 2", len(rec.Refs))
	}
	if rec.Refs[0].Kind != trace.Write || rec.Refs[1].Kind != trace.Read {
		t.Error("ref kinds wrong")
	}
	if rec.Refs[0].Addr != base || rec.Refs[0].Size != WordSize {
		t.Errorf("ref = %+v", rec.Refs[0])
	}
	if meter.Total()-before != 2 {
		t.Errorf("charged %d instructions, want 2", meter.Total()-before)
	}
}

func TestTouch(t *testing.T) {
	var rec trace.Recorder
	meter := &cost.Meter{}
	m := New(&rec, meter)
	m.Touch(12345, 8, trace.Write)
	if len(rec.Refs) != 1 || rec.Refs[0].Size != 8 || rec.Refs[0].Addr != 12345 {
		t.Errorf("touch ref %+v", rec.Refs)
	}
	if meter.Total() != 1 {
		t.Errorf("touch charged %d", meter.Total())
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(nil, nil)
	r := m.NewRegion("heap", 0)
	base, _ := r.Sbrk(64)
	mustPanic(t, "unaligned read", func() { m.ReadWord(base + 1) })
	mustPanic(t, "unaligned write", func() { m.WriteWord(base+2, 0) })
	mustPanic(t, "oversize value", func() { m.WriteWord(base, 1<<32) })
	mustPanic(t, "out of range", func() { m.ReadWord(base + 1<<20) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestEncodeDecodePtr(t *testing.T) {
	m := New(nil, nil)
	r := m.NewRegion("heap", 0)
	addr, _ := r.Sbrk(1024)
	w := r.EncodePtr(addr)
	if w == 0 {
		t.Fatal("valid address encoded as null")
	}
	if got := r.DecodePtr(w); got != addr {
		t.Errorf("decode(encode(%#x)) = %#x", addr, got)
	}
	if r.EncodePtr(0) != 0 || r.DecodePtr(0) != 0 {
		t.Error("null must round-trip as 0")
	}
	other := m.NewRegion("other", 0)
	oaddr, _ := other.Sbrk(16)
	mustPanic(t, "cross-region encode", func() { r.EncodePtr(oaddr) })
}

func TestFootprintAndPages(t *testing.T) {
	m := New(nil, nil)
	a := m.NewRegion("a", 0)
	b := m.NewRegion("b", 0)
	a.Sbrk(1000)
	b.Sbrk(2000)
	want := uint64(2*RegionReserve) + AlignUp(1000, WordSize) + AlignUp(2000, WordSize)
	if m.Footprint() != want {
		t.Errorf("footprint %d, want %d", m.Footprint(), want)
	}
	if m.TouchedPages() != 0 {
		t.Error("no pages should be materialized before access")
	}
	addr, _ := a.Sbrk(PageSize * 3)
	m.WriteWord(addr, 1)
	m.WriteWord(addr+2*PageSize, 1)
	if m.TouchedPages() != 2 {
		t.Errorf("touched pages = %d, want 2", m.TouchedPages())
	}
}

// Property: words written at distinct aligned addresses are all
// independently recoverable (no aliasing between pages or regions).
func TestQuickWordIndependence(t *testing.T) {
	prop := func(offsets []uint16, vals []uint32) bool {
		n := len(offsets)
		if len(vals) < n {
			n = len(vals)
		}
		m := New(nil, nil)
		r := m.NewRegion("heap", 0)
		base, _ := r.Sbrk(1 << 20)
		want := map[uint64]uint64{}
		for i := 0; i < n; i++ {
			addr := base + uint64(offsets[i])*4
			want[addr] = uint64(vals[i])
			m.WriteWord(addr, uint64(vals[i]))
		}
		for addr, v := range want {
			if m.ReadWord(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct{ n, a, want uint64 }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {4095, 4096, 4096}, {4097, 4096, 8192},
	}
	for _, c := range cases {
		if got := AlignUp(c.n, c.a); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.n, c.a, got, c.want)
		}
	}
}

// TestBatchingDeliversIdenticalStream checks that a batching Memory
// delivers the same references, in the same order, as an unbatched one
// — to batch sinks at flush boundaries and to plain sinks immediately.
func TestBatchingDeliversIdenticalStream(t *testing.T) {
	run := func(batch int) (counted trace.Counter, recorded []trace.Ref) {
		var c trace.Counter
		rec := &trace.Recorder{} // plain Sink: stays on the direct path
		m := New(trace.NewTee(&c, rec), nil)
		if batch != 0 {
			m.SetBatching(batch)
		}
		r := m.NewRegion("r", 1<<20)
		a, err := r.Sbrk(256)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 40; i++ {
			m.WriteWord(a+i*WordSize, i)
			if m.ReadWord(a+i*WordSize) != i {
				t.Fatal("round trip")
			}
		}
		m.Touch(a, 64, trace.Read)
		m.Flush()
		return c, rec.Refs
	}
	wantC, wantRefs := run(0)
	for _, size := range []int{1, 7, 256} {
		gotC, gotRefs := run(size)
		if gotC != wantC {
			t.Errorf("batch=%d: counter %+v != %+v", size, gotC, wantC)
		}
		if len(gotRefs) != len(wantRefs) {
			t.Fatalf("batch=%d: %d refs != %d", size, len(gotRefs), len(wantRefs))
		}
		for i := range gotRefs {
			if gotRefs[i] != wantRefs[i] {
				t.Errorf("batch=%d: ref %d differs: %+v vs %+v", size, i, gotRefs[i], wantRefs[i])
			}
		}
	}
}

// TestBatchingFlushBoundaries checks buffered delivery semantics: batch
// sinks see nothing until a flush (buffer fill, explicit Flush, SetSink
// or SetBatching), plain sinks see everything immediately.
func TestBatchingFlushBoundaries(t *testing.T) {
	var c trace.Counter
	rec := &trace.Recorder{}
	m := New(trace.NewTee(&c, rec), nil)
	m.SetBatching(8)
	r := m.NewRegion("r", 1<<20)
	a, _ := r.Sbrk(256)

	for i := uint64(0); i < 5; i++ {
		m.WriteWord(a+i*WordSize, i)
	}
	if c.Total() != 0 {
		t.Errorf("batch sink saw %d refs before flush", c.Total())
	}
	if len(rec.Refs) != 5 {
		t.Errorf("direct sink saw %d refs, want 5 immediately", len(rec.Refs))
	}
	m.Flush()
	if c.Total() != 5 {
		t.Errorf("after flush: %d refs, want 5", c.Total())
	}
	m.Flush() // idempotent on empty buffer
	if c.Total() != 5 {
		t.Error("empty flush re-delivered")
	}

	// Buffer fill auto-flushes.
	for i := uint64(0); i < 8; i++ {
		m.WriteWord(a+i*WordSize, i)
	}
	if c.Total() != 13 {
		t.Errorf("auto-flush: %d, want 13", c.Total())
	}

	// SetSink flushes pending refs to the old sinks first.
	m.WriteWord(a, 1)
	var c2 trace.Counter
	m.SetSink(&c2)
	if c.Total() != 14 || c2.Total() != 0 {
		t.Errorf("SetSink flush: old=%d new=%d", c.Total(), c2.Total())
	}
	// ...and the new sink inherits batching.
	m.WriteWord(a, 2)
	if c2.Total() != 0 {
		t.Error("new sink not batched")
	}
	m.Flush()
	if c2.Total() != 1 {
		t.Errorf("new sink after flush: %d", c2.Total())
	}

	// SetBatching(-1) disables and restores synchronous delivery.
	m.SetBatching(-1)
	m.WriteWord(a, 3)
	if c2.Total() != 2 {
		t.Errorf("unbatched delivery: %d, want 2", c2.Total())
	}
}

// TestBatchingNoBatchersFallsBack: with only plain sinks the buffer is
// disabled entirely and delivery is synchronous.
func TestBatchingNoBatchersFallsBack(t *testing.T) {
	rec := &trace.Recorder{}
	m := New(rec, nil)
	m.SetBatching(0)
	r := m.NewRegion("r", 1<<20)
	a, _ := r.Sbrk(64)
	m.WriteWord(a, 42)
	if len(rec.Refs) != 1 {
		t.Errorf("plain-only pipeline: %d refs, want 1 synchronously", len(rec.Refs))
	}
}

func TestGeometryHelpers(t *testing.T) {
	cases := []struct {
		addr                               uint64
		word, line, lineOff, page, pageOff uint64
	}{
		{0, 0, 0, 0, 0, 0},
		{3, 0, 0, 3, 0, 3},
		{WordSize, 1, 0, WordSize, 0, WordSize},
		{LineSize, LineSize / WordSize, 1, 0, 0, LineSize},
		{LineSize + 5, LineSize/WordSize + 1, 1, 5, 0, LineSize + 5},
		{PageSize, PageSize / WordSize, PageSize / LineSize, 0, 1, 0},
		{3*PageSize + 2*LineSize + 7, (3*PageSize + 2*LineSize + 7) / WordSize, (3*PageSize + 2*LineSize + 7) / LineSize, 7, 3, 2*LineSize + 7},
	}
	for _, c := range cases {
		if got := WordOf(c.addr); got != c.word {
			t.Errorf("WordOf(%d) = %d, want %d", c.addr, got, c.word)
		}
		if got := LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%d) = %d, want %d", c.addr, got, c.line)
		}
		if got := LineOffset(c.addr); got != c.lineOff {
			t.Errorf("LineOffset(%d) = %d, want %d", c.addr, got, c.lineOff)
		}
		if got := PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.page)
		}
		if got := PageOffset(c.addr); got != c.pageOff {
			t.Errorf("PageOffset(%d) = %d, want %d", c.addr, got, c.pageOff)
		}
	}

	// The helpers must agree with the recomposition identity.
	if err := quick.Check(func(addr uint64) bool {
		return LineOf(addr)*LineSize+LineOffset(addr) == addr &&
			PageOf(addr)*PageSize+PageOffset(addr) == addr &&
			WordOf(addr)*WordSize+addr%WordSize == addr
	}, nil); err != nil {
		t.Error(err)
	}
}
