package heapmap

import (
	"strings"
	"testing"

	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func testMemory(t *testing.T, size uint64) (*mem.Memory, *mem.Region, uint64) {
	t.Helper()
	m := mem.New(trace.Discard, nil)
	r := m.NewRegion("heap", 0)
	base, err := r.Sbrk(size)
	if err != nil {
		t.Fatal(err)
	}
	return m, r, base
}

func TestRenderShadesByOccupancy(t *testing.T) {
	m, _, base := testMemory(t, 2048)
	live := []Block{
		{base, 512},        // cell 0: 100%
		{base + 1024, 128}, // cell 2: 25%
	}
	out := Render(m, live, Options{CellBytes: 512, Width: 8})
	if !strings.Contains(out, "heap:") {
		t.Fatalf("missing region header:\n%s", out)
	}
	// One row with: full, empty, quarter, empty (plus reserve slack).
	if !strings.Contains(out, "@") || !strings.Contains(out, "-") || !strings.Contains(out, ".") {
		t.Errorf("expected @/-/. glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
}

func TestRenderExcludes(t *testing.T) {
	m := mem.New(trace.Discard, nil)
	a := m.NewRegion("keep", 0)
	b := m.NewRegion("skip", 0)
	a.Sbrk(1024)
	b.Sbrk(1024)
	out := Render(m, nil, Options{Exclude: func(n string) bool { return n == "skip" }})
	if !strings.Contains(out, "keep:") || strings.Contains(out, "skip:") {
		t.Errorf("exclusion failed:\n%s", out)
	}
}

func TestRenderSkipsEmptyRegions(t *testing.T) {
	m := mem.New(trace.Discard, nil)
	m.NewRegion("untouched", 0) // only the reserve, no sbrk
	out := Render(m, nil, Options{})
	if strings.Contains(out, "untouched:") {
		t.Errorf("empty region rendered:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	m, _, base := testMemory(t, 8192)
	// Two live islands leave three holes: [gap][live][gap][live][gap].
	live := []Block{
		{base + 1024, 512},
		{base + 4096, 512},
	}
	s := Summarize(m, live, Options{CellBytes: 512})
	if s.LiveBytes != 1024 {
		t.Errorf("live bytes %d", s.LiveBytes)
	}
	if s.RequestedBytes < 8192 {
		t.Errorf("requested %d", s.RequestedBytes)
	}
	if s.Holes != 3 {
		t.Errorf("holes = %d, want 3", s.Holes)
	}
	if s.LargestHoleKB < 1 {
		t.Errorf("largest hole %dKB", s.LargestHoleKB)
	}
}

func TestSummarizeBlockSpanningCells(t *testing.T) {
	// Size the region so brk lands exactly on a cell boundary (the
	// region reserve would otherwise leave a trailing sliver cell).
	m, _, base := testMemory(t, 4096-mem.RegionReserve)
	// One block covering the whole span: no holes.
	live := []Block{{base, 4096 - 2*uint32(mem.RegionReserve)}}
	s := Summarize(m, live, Options{CellBytes: 512})
	if s.Holes != 0 {
		t.Errorf("holes = %d, want 0", s.Holes)
	}
}

func TestShadeFor(t *testing.T) {
	cases := []struct {
		frac float64
		want byte
	}{
		{0, '.'}, {0.1, '-'}, {0.25, '-'}, {0.4, '+'}, {0.6, '#'}, {0.9, '@'}, {1, '@'},
	}
	for _, c := range cases {
		if got := shadeFor(c.frac); got != c.want {
			t.Errorf("shadeFor(%v) = %c, want %c", c.frac, got, c.want)
		}
	}
}
