// Package heapmap renders the occupancy of a simulated heap as an
// ASCII map: for every cell of address space, how much holds live
// application data versus allocator overhead and holes. The maps make
// the paper's fragmentation arguments visible — FIRSTFIT's scattered
// holes, BSD's half-empty power-of-two blocks, the chunked allocators'
// dense same-size pages.
package heapmap

import (
	"fmt"
	"sort"
	"strings"

	"mallocsim/internal/mem"
)

// Block is one live allocation.
type Block struct {
	Addr uint64
	Size uint32
}

// shades maps live-byte fraction per cell to a glyph.
// ' ' = untouched, '.' = 0%, then quartiles to '@' = full.
var shades = []byte{'.', '-', '+', '#', '@'}

func shadeFor(frac float64) byte {
	switch {
	case frac <= 0:
		return shades[0]
	case frac <= 0.25:
		return shades[1]
	case frac <= 0.5:
		return shades[2]
	case frac <= 0.75:
		return shades[3]
	default:
		return shades[4]
	}
}

// Options configures the rendering.
type Options struct {
	// CellBytes is the address span per glyph (default 512).
	CellBytes uint64
	// Width is glyphs per row (default 64).
	Width int
	// Exclude skips regions by name (e.g. the workload's stack).
	Exclude func(name string) bool
}

// Render draws one occupancy map per (non-excluded, non-empty) region
// of m, given the live allocation set.
func Render(m *mem.Memory, live []Block, opt Options) string {
	if opt.CellBytes == 0 {
		opt.CellBytes = 512
	}
	if opt.Width == 0 {
		opt.Width = 64
	}
	sorted := append([]Block(nil), live...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	var sb strings.Builder
	for _, r := range m.Regions() {
		if opt.Exclude != nil && opt.Exclude(r.Name()) {
			continue
		}
		span := r.Size()
		if span <= mem.RegionReserve {
			continue
		}
		renderRegion(&sb, r, sorted, opt)
	}
	fmt.Fprintf(&sb, "legend: '%c' empty", shades[0])
	for i, pct := range []string{"<=25%%", "<=50%%", "<=75%%", ">75%%"} {
		fmt.Fprintf(&sb, ", '%c' "+pct+" live", shades[i+1])
	}
	sb.WriteString(" (per-cell live-byte fraction)\n")
	return sb.String()
}

func renderRegion(sb *strings.Builder, r *mem.Region, live []Block, opt Options) {
	base, brk := r.Base(), r.Brk()
	cells := int((brk - base + opt.CellBytes - 1) / opt.CellBytes)
	liveBytes := make([]uint64, cells)

	// Distribute each live block's bytes over the cells it spans.
	// Blocks are sorted; skip those outside this region.
	var total uint64
	for _, b := range live {
		end := b.Addr + uint64(b.Size)
		if end <= base || b.Addr >= brk {
			continue
		}
		total += uint64(b.Size)
		for addr := b.Addr; addr < end; {
			cell := (addr - base) / opt.CellBytes
			cellEnd := base + (cell+1)*opt.CellBytes
			chunk := cellEnd - addr
			if end-addr < chunk {
				chunk = end - addr
			}
			if int(cell) < cells {
				liveBytes[cell] += chunk
			}
			addr += chunk
		}
	}

	fmt.Fprintf(sb, "%s: %d KB requested, %d KB live (%.0f%%)\n",
		r.Name(), (brk-base+1023)/1024, (total+1023)/1024,
		100*float64(total)/float64(brk-base))
	for row := 0; row < cells; row += opt.Width {
		fmt.Fprintf(sb, "  %6dK |", uint64(row)*opt.CellBytes/1024)
		for i := row; i < row+opt.Width && i < cells; i++ {
			frac := float64(liveBytes[i]) / float64(opt.CellBytes)
			sb.WriteByte(shadeFor(frac))
		}
		sb.WriteString("|\n")
	}
}

// FragSummary condenses a live set against a heap span into the
// headline numbers: live fraction and the count of "holes" (maximal
// empty cell runs) — many small holes is the shattered-heap signature.
type FragSummary struct {
	RequestedBytes uint64
	LiveBytes      uint64
	Holes          int
	LargestHoleKB  uint64
}

// Summarize computes a FragSummary over every non-excluded region.
func Summarize(m *mem.Memory, live []Block, opt Options) FragSummary {
	if opt.CellBytes == 0 {
		opt.CellBytes = 512
	}
	var s FragSummary
	for _, b := range live {
		s.LiveBytes += uint64(b.Size)
	}
	for _, r := range m.Regions() {
		if opt.Exclude != nil && opt.Exclude(r.Name()) {
			continue
		}
		if r.Size() <= mem.RegionReserve {
			continue
		}
		s.RequestedBytes += r.Size()
		base, brk := r.Base(), r.Brk()
		cells := int((brk - base + opt.CellBytes - 1) / opt.CellBytes)
		occupied := make([]bool, cells)
		for _, b := range live {
			end := b.Addr + uint64(b.Size)
			if end <= base || b.Addr >= brk {
				continue
			}
			for addr := b.Addr; addr < end; addr += opt.CellBytes {
				cell := int((addr - base) / opt.CellBytes)
				if cell < cells {
					occupied[cell] = true
				}
			}
		}
		run := 0
		for i := 0; i <= cells; i++ {
			if i < cells && !occupied[i] {
				run++
				continue
			}
			if run > 0 {
				s.Holes++
				if kb := uint64(run) * opt.CellBytes / 1024; kb > s.LargestHoleKB {
					s.LargestHoleKB = kb
				}
				run = 0
			}
		}
	}
	return s
}
