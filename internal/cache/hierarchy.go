package cache

import "mallocsim/internal/trace"

// Hierarchy simulates a two-level cache, the organization the paper
// cites from Mogul & Borg ("a hypothetical two-level cache that
// requires 200 cycles to service a second-level cache miss"). The L1
// is probed first; L1 misses probe the L2; L2 misses go to memory.
// Inclusion is not enforced (each level fills independently), matching
// simple early-1990s two-level designs.
//
// Cycle accounting uses per-level service times: an L1 hit costs
// L1Hit, an L1 miss satisfied by L2 costs L2Hit, and a full miss costs
// MemPenalty, enabling execution-time estimates under deep-hierarchy
// assumptions (the regime where the paper predicts GNU LOCAL's
// locality investment pays off).
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	// Service times in cycles (defaults: 1 / 12 / 200).
	L1Hit      uint64
	L2Hit      uint64
	MemPenalty uint64

	accesses uint64
	l1Misses uint64
	l2Misses uint64
}

// NewHierarchy builds a two-level hierarchy from two configurations.
// The levels must share a line size.
func NewHierarchy(l1, l2 Config) *Hierarchy {
	a, b := New(l1), New(l2)
	if a.cfg.LineSize != b.cfg.LineSize {
		panic("cache: hierarchy levels must share a line size")
	}
	return &Hierarchy{L1: a, L2: b, L1Hit: 1, L2Hit: 12, MemPenalty: 200}
}

// Ref implements trace.Sink.
func (h *Hierarchy) Ref(r trace.Ref) {
	first, last := span(r.Addr, r.Size, h.L1.lineShift)
	write := r.Kind == trace.Write
	if first == last {
		h.accessLine(first, write)
		return
	}
	for line := first; ; line++ {
		h.accessLine(line, write)
		if line == last {
			break
		}
	}
}

// Refs implements trace.BatchSink.
func (h *Hierarchy) Refs(batch []trace.Ref) {
	for _, r := range batch {
		h.Ref(r)
	}
}

func (h *Hierarchy) accessLine(line uint64, write bool) {
	h.accesses++
	l1Before := h.L1.misses
	h.L1.accessLine(line, write)
	if h.L1.misses == l1Before {
		return // L1 hit
	}
	h.l1Misses++
	l2Before := h.L2.misses
	h.L2.accessLine(line, write)
	if h.L2.misses != l2Before {
		h.l2Misses++
	}
}

// Accesses returns the total line accesses.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// L1Misses returns accesses that missed the first level.
func (h *Hierarchy) L1Misses() uint64 { return h.l1Misses }

// L2Misses returns accesses that missed both levels.
func (h *Hierarchy) L2Misses() uint64 { return h.l2Misses }

// L1MissRate returns l1 misses per access.
func (h *Hierarchy) L1MissRate() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.l1Misses) / float64(h.accesses)
}

// GlobalMissRate returns full (memory) misses per access.
func (h *Hierarchy) GlobalMissRate() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.l2Misses) / float64(h.accesses)
}

// StallCycles returns the memory-stall cycles beyond the one-cycle
// pipeline assumption: (L2Hit-1) per L2 hit plus (MemPenalty-1) per
// full miss.
func (h *Hierarchy) StallCycles() uint64 {
	l2hits := h.l1Misses - h.l2Misses
	return l2hits*(h.L2Hit-1) + h.l2Misses*(h.MemPenalty-1)
}
