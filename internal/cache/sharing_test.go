package cache

import (
	"reflect"
	"testing"

	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

// shareOracle is the naive per-Ref reference implementation of the
// sharing protocol: plain maps keyed by line number, one transition per
// (reference, line) pair, no run folding, no paging, no caching. The
// attributor's bulk paths must reproduce its numbers exactly.
type shareOracle struct {
	lineSize uint64
	regionOf func(uint64) int
	owner    map[uint64]int
	holders  map[uint64]uint64
	written  map[uint64]uint64
	rows     map[[2]int][2]uint64
	ping     map[uint64]bool
	trueEv   uint64
	falseEv  uint64
}

func newShareOracle(lineSize uint64, regionOf func(uint64) int) *shareOracle {
	return &shareOracle{
		lineSize: lineSize,
		regionOf: regionOf,
		owner:    map[uint64]int{},
		holders:  map[uint64]uint64{},
		written:  map[uint64]uint64{},
		rows:     map[[2]int][2]uint64{},
		ping:     map[uint64]bool{},
	}
}

func (o *shareOracle) ref(r trace.Ref) {
	n := uint64(r.Size)
	if n == 0 {
		n = 1
	}
	end := r.Addr + n - 1
	if end < r.Addr {
		end = ^uint64(0)
	}
	first, last := r.Addr/o.lineSize, end/o.lineSize
	for line := first; ; line++ {
		base := line * o.lineSize
		lo, hi := r.Addr, end
		if lo < base {
			lo = base
		}
		if lineEnd := base + o.lineSize - 1; hi > lineEnd {
			hi = lineEnd
		}
		var mask uint64
		for w := mem.WordOf(lo - base); w <= mem.WordOf(hi-base); w++ {
			mask |= uint64(1) << w
		}
		o.line(line, mask, r.Kind == trace.Write, r.Tid)
		if line == last {
			return
		}
	}
}

func (o *shareOracle) line(line, mask uint64, write bool, tid uint8) {
	t := int(tid & 63)
	bit := uint64(1) << t
	holders := o.holders[line]
	if write {
		if holders&bit == 0 && o.owner[line] != 0 {
			o.record(line, t, mask&o.written[line] != 0)
		}
		if o.owner[line] == t+1 && holders == bit {
			o.written[line] |= mask
		} else {
			o.written[line] = mask
		}
		o.owner[line] = t + 1
		o.holders[line] = bit
		return
	}
	if holders&bit == 0 {
		if o.owner[line] != 0 {
			o.record(line, t, mask&o.written[line] != 0)
		}
		o.holders[line] = holders | bit
	}
}

func (o *shareOracle) record(line uint64, tid int, isTrue bool) {
	o.ping[line] = true
	region := 0
	if o.regionOf != nil {
		if r := o.regionOf(line * o.lineSize); r > 0 {
			region = r
		}
	}
	row := o.rows[[2]int{region, tid}]
	if isTrue {
		o.trueEv++
		row[0]++
	} else {
		o.falseEv++
		row[1]++
	}
	o.rows[[2]int{region, tid}] = row
}

func (o *shareOracle) report() SharingReport {
	rep := SharingReport{True: o.trueEv, False: o.falseEv, PingLines: uint64(len(o.ping))}
	keys := make([][2]int, 0, len(o.rows))
	for k := range o.rows {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j][0] < keys[i][0] || (keys[j][0] == keys[i][0] && keys[j][1] < keys[i][1]) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	if len(keys) > 0 {
		rep.Rows = make([]SharingRow, 0, len(keys))
	}
	for _, k := range keys {
		row := o.rows[k]
		rep.Rows = append(rep.Rows, SharingRow{Region: k[0], Tid: uint8(k[1]), True: row[0], False: row[1]})
	}
	return rep
}

// genTidBlocks builds contract-conforming blocks (the genBlock mix of
// plain, clamped, aligned-run, misaligned-run and zero-size rows) and
// stamps a tid column on most of them, leaving some without a column
// (all thread 0) to cover the nil-Tids path.
func genTidBlocks(seed uint64, n, rows, tids int) []*trace.Block {
	r := rng.New(seed)
	blocks := make([]*trace.Block, n)
	for i := range blocks {
		b := genBlock(r, rows)
		if i%4 != 3 {
			col := make([]uint8, b.Len())
			for j := range col {
				col[j] = uint8(r.Uint64n(uint64(tids)))
			}
			b.Tids = col
		}
		blocks[i] = b
	}
	return blocks
}

// testRegionOf carves the low address space into arbitrary 1 MB
// "regions" so the attribution rows exercise multiple region indices.
func testRegionOf(addr uint64) int { return int(addr >> 20) }

// TestSharingOracleEquivalence: every delivery tier of the attributor —
// per-Ref, batched slices, and columnar blocks with folded run rows —
// must reproduce the naive per-Ref oracle exactly, across line- and
// page-spanning refs, clamped top-of-address-space refs, multiple
// line sizes and several thread counts.
func TestSharingOracleEquivalence(t *testing.T) {
	for _, lineSize := range []uint64{32, 64, 128} {
		for _, tids := range []int{1, 2, 5, 64} {
			for seed := uint64(1); seed <= 3; seed++ {
				blocks := genTidBlocks(seed, 4, 512, tids)
				var refs []trace.Ref
				for _, b := range blocks {
					refs = b.AppendRefs(refs)
				}

				oracle := newShareOracle(lineSize, testRegionOf)
				for _, r := range refs {
					oracle.ref(r)
				}
				want := oracle.report()

				cfg := SharingConfig{LineSize: lineSize, RegionOf: testRegionOf}
				byRef := NewSharing(cfg)
				for _, r := range refs {
					byRef.Ref(r)
				}
				byBatch := NewSharing(cfg)
				byBatch.Refs(refs)
				byBlock := NewSharing(cfg)
				for _, b := range blocks {
					byBlock.Block(b)
				}

				for name, s := range map[string]*Sharing{"ref": byRef, "refs": byBatch, "block": byBlock} {
					if got := s.Report(); !reflect.DeepEqual(got, want) {
						t.Fatalf("line=%d tids=%d seed=%d: %s tier diverged from oracle:\ngot:  %+v\nwant: %+v",
							lineSize, tids, seed, name, got, want)
					}
				}
			}
		}
	}
}

// TestSharingShardIndependence: the attributor is a separate sink, so
// its report must be byte-identical whether the cache Group it shares a
// pipeline with runs unsharded or with 8 shard workers.
func TestSharingShardIndependence(t *testing.T) {
	blocks := genTidBlocks(9, 6, 512, 4)
	var want SharingReport
	for i, workers := range []int{1, 8} {
		s := NewSharing(SharingConfig{RegionOf: testRegionOf})
		g := NewGroup(Config{Size: 16 << 10}, Config{Size: 64 << 10})
		g.StartShards(workers)
		for _, b := range blocks {
			g.Block(b)
			s.Block(b)
		}
		g.Stop()
		got := s.Report()
		if i == 0 {
			want = got
			if want.True+want.False == 0 {
				t.Fatal("sharing battery produced no events; the fixture is too weak")
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sharing report diverged:\ngot:  %+v\nwant: %+v", workers, got, want)
		}
	}
}

// TestSharingSingleThreadSilent: a stream with no tid stamping can
// never ping-pong — thread 0 always holds its own lines.
func TestSharingSingleThreadSilent(t *testing.T) {
	s := NewSharing(SharingConfig{})
	for _, b := range genBlocks(3, 4, 512) {
		s.Block(b)
	}
	rep := s.Report()
	if rep.True != 0 || rep.False != 0 || rep.PingLines != 0 || len(rep.Rows) != 0 {
		t.Fatalf("single-threaded stream produced sharing events: %+v", rep)
	}
}
