package cache

import (
	"testing"

	"mallocsim/internal/trace"
)

// The hotalloc analyzer bans closures, boxing and make/new on the hot
// paths statically; these tests pin the dynamic half of the contract —
// append growth into warm buffers and lazy page materialization are
// amortized, so the warmed steady state performs zero heap allocations
// per sweep.

// zeroAllocBlock builds a block mixing plain rows and run rows, the
// shape the fused sweep sees from the workload driver.
func zeroAllocBlock() *trace.Block {
	b := &trace.Block{}
	addr := uint64(0x4000)
	for i := 0; i < 512; i++ {
		b.Append(trace.Ref{Addr: addr, Size: 8, Kind: trace.Read})
		addr += 24
		if i%7 == 0 {
			b.AppendRun(addr, 16, trace.Write, 32)
			addr += 16 * 32
		}
		if i%61 == 0 {
			addr += 1 << 18 // jump pages so the line sets span several bitmap pages
		}
	}
	return b
}

func TestGroupBlockSweepZeroAlloc(t *testing.T) {
	g := NewGroup(
		Config{Size: 8 << 10},
		Config{Size: 16 << 10, Assoc: 2},
		Config{Size: 64 << 10, Assoc: 4},
	)
	b := zeroAllocBlock()
	g.Block(b) // materialize line-set pages and counters
	if avg := testing.AllocsPerRun(20, func() { g.Block(b) }); avg != 0 {
		t.Errorf("warmed fused Group.Block sweep allocates %.1f allocs/op, want 0", avg)
	}
}

func TestCacheBlockZeroAlloc(t *testing.T) {
	c := New(Config{Size: 16 << 10, Assoc: 2})
	b := zeroAllocBlock()
	c.Block(b)
	if avg := testing.AllocsPerRun(20, func() { c.Block(b) }); avg != 0 {
		t.Errorf("warmed Cache.Block allocates %.1f allocs/op, want 0", avg)
	}
}

func TestSharingBlockZeroAlloc(t *testing.T) {
	s := NewSharing(SharingConfig{RegionOf: testRegionOf})
	// Tid-striped variant of the standard block so sharing events
	// actually fire during the sweep (the event path must be warm too:
	// its region×thread counters and ping-line pages are materialized
	// on first use and reused after).
	b := zeroAllocBlock()
	tids := make([]uint8, b.Len())
	for i := range tids {
		tids[i] = uint8(i % 4)
	}
	b.Tids = tids
	s.Block(b) // materialize coherence pages, counters and ping-line pages
	if s.Events() == 0 {
		t.Fatal("warm-up sweep produced no sharing events; the fixture is too weak")
	}
	if avg := testing.AllocsPerRun(20, func() { s.Block(b) }); avg != 0 {
		t.Errorf("warmed Sharing.Block sweep allocates %.1f allocs/op, want 0", avg)
	}
}

func TestLineSetAddRangeZeroAlloc(t *testing.T) {
	var s lineSet
	warm := func() {
		s.add(3)
		s.addRange(0, 4096)             // within one page
		s.addRange(60_000, 75_000)      // crosses page boundaries
		s.addRange(1<<30, 1<<30+10_000) // sparse territory
		s.addRange(1<<30+20_000, 1<<30+120_000)
	}
	warm() // materialize dense and sparse pages
	if avg := testing.AllocsPerRun(50, warm); avg != 0 {
		t.Errorf("warmed lineSet.add/addRange allocates %.1f allocs/op, want 0", avg)
	}
}
