package cache

// Per-set sharding of a Group: the cache-line stream of each block is
// partitioned by the low bits of the line number and the partitions are
// simulated by worker goroutines, one per shard, inside a single run.
//
// Why this is exact: a set-associative cache decomposes into completely
// independent sets — an access to set s reads and writes only set s's
// ways and the global counters. Every member config's set index is
// line & (sets-1), and the shard index is line & (nshards-1) with
// nshards ≤ the smallest member's set count, so the shard bits are a
// suffix of every member's set-index bits: two lines in different
// shards can never map to the same set of any member. Each worker
// therefore owns a disjoint slice of every cache's tag array, keeps its
// own access/miss/writeback counters and distinct-line set, and the
// totals are order-independent sums folded at Drain/Results time.
//
// Flush intervals are the one feature that breaks set independence (the
// flush trigger counts accesses across all sets), so StartShards
// refuses groups that use them. No-write-allocate and associativity are
// handled exactly.

const (
	// shardChunkLen is the number of line-stream entries staged per
	// shard before handing the chunk to its worker: large enough to
	// amortize the channel transfer, small enough to keep workers busy
	// while a block is still being routed.
	shardChunkLen = 2048

	// maxShards bounds the shard count; it also bounds how many low
	// line bits the partition consumes (min set count across the
	// paper's configs is 512, so 256 stays a strict suffix).
	maxShards = 256
)

// shardChunk is one unit of work: a slice of the packed line stream
// (line<<1|writeBit) with the per-entry collapsed access counts.
type shardChunk struct {
	lines  []uint64
	counts []uint32
}

// groupShard is one worker's state: its inbox, staging buffer (owned by
// the routing goroutine), and private counters.
type groupShard struct {
	g      *Group
	in     chan shardChunk
	staged shardChunk
	seen   *lineSet
	stats  []shardStats
}

type shardStats struct {
	accesses   uint64
	misses     uint64
	writebacks uint64
}

// StartShards switches the group to sharded simulation with up to n
// worker goroutines (rounded down to a power of two and clamped to the
// smallest member's set count and to an internal maximum). It must be
// called on a fresh group, before any references are delivered, and is
// a no-op when n < 2, when any member has a flush interval (the one
// feature that couples sets), or when the geometry leaves no line bits
// to partition on. It returns the number of shards actually started.
//
// While sharding is active all delivery paths (Ref, Refs, Block) route
// through the shard workers; reading results via Results or
// DistinctLines drains in-flight work first. Call Stop to join the
// workers and fold their counters into the member caches — the group
// must not receive further references after Stop.
func (g *Group) StartShards(n int) int {
	if g.shards != nil {
		panic("cache: StartShards called twice")
	}
	if !g.seen.empty() {
		panic("cache: StartShards on a group that has already seen references")
	}
	for _, c := range g.caches {
		if c.accesses != 0 {
			panic("cache: StartShards on a group that has already seen references")
		}
		if c.cfg.FlushInterval != 0 {
			return 0
		}
	}
	if g.lineShift == 0 {
		return 0
	}
	if n > maxShards {
		n = maxShards
	}
	for _, c := range g.caches {
		if sets := int(c.setMask + 1); n > sets {
			n = sets
		}
	}
	// Round down to a power of two so the shard index is a bit mask.
	for n&(n-1) != 0 {
		n &= n - 1
	}
	if n < 2 {
		return 0
	}
	g.shardMask = uint64(n - 1)
	g.chunkFree = make(chan shardChunk, 2*n)
	g.shards = make([]*groupShard, n)
	for i := range g.shards {
		s := &groupShard{
			g:      g,
			in:     make(chan shardChunk, 2),
			staged: newShardChunk(),
			seen:   newLineSet(),
			stats:  make([]shardStats, len(g.caches)),
		}
		g.shards[i] = s
		g.workersWG.Add(1)
		go s.run()
	}
	return n
}

func newShardChunk() shardChunk {
	return shardChunk{
		lines:  make([]uint64, 0, shardChunkLen),
		counts: make([]uint32, 0, shardChunkLen),
	}
}

// route partitions the decomposed line stream across the shard staging
// buffers, dispatching each buffer to its worker as it fills.
func (g *Group) route() {
	mask := g.shardMask
	counts := g.runCounts
	for j, e := range g.runLines {
		s := g.shards[(e>>1)&mask]
		s.staged.lines = append(s.staged.lines, e)
		s.staged.counts = append(s.staged.counts, counts[j])
		if len(s.staged.lines) == shardChunkLen {
			g.dispatch(s)
		}
	}
}

// dispatch hands the shard's staged chunk to its worker and replaces
// the staging buffer from the free pool.
func (g *Group) dispatch(s *groupShard) {
	if len(s.staged.lines) == 0 {
		return
	}
	g.pending.Add(1)
	s.in <- s.staged
	select {
	case ch := <-g.chunkFree:
		s.staged = shardChunk{lines: ch.lines[:0], counts: ch.counts[:0]}
	default:
		s.staged = newShardChunk()
	}
}

// Drain dispatches all staged work and blocks until every in-flight
// chunk has been processed, making the shard counters safe to read. It
// is a no-op when sharding is inactive, and the workers stay available
// for more references afterwards.
func (g *Group) Drain() {
	if g.shards == nil {
		return
	}
	for _, s := range g.shards {
		g.dispatch(s)
	}
	g.pending.Wait()
}

// Stop drains outstanding work, joins the shard workers and folds their
// counters into the member caches, returning the group to unsharded
// (single-goroutine) operation. It is idempotent. The shard workers'
// disjoint distinct-line partitions are merged back into the group's
// set, so the group may keep receiving references after Stop without
// double-counting lines it has already seen.
func (g *Group) Stop() {
	if g.shards == nil {
		return
	}
	for _, s := range g.shards {
		g.dispatch(s)
		close(s.in)
	}
	g.workersWG.Wait()
	for _, s := range g.shards {
		g.seen.merge(s.seen)
		for i := range g.caches {
			g.caches[i].accesses += s.stats[i].accesses
			g.caches[i].misses += s.stats[i].misses
			g.caches[i].writebacks += s.stats[i].writebacks
		}
	}
	g.shards = nil
	g.chunkFree = nil
}

// run is the worker loop: process chunks until the inbox closes,
// recycling chunk buffers through the free pool.
func (s *groupShard) run() {
	defer s.g.workersWG.Done()
	for ch := range s.in {
		s.process(ch)
		s.g.pending.Done()
		select {
		case s.g.chunkFree <- ch:
		default:
		}
	}
}

// process simulates one chunk of the shard's line stream against every
// member cache, touching only this shard's set partition of each tag
// array and only this shard's private counters.
func (s *groupShard) process(ch shardChunk) {
	for _, e := range ch.lines {
		s.seen.add(e >> 1)
	}
	for i, c := range s.g.caches {
		st := &s.stats[i]
		tags := c.tags
		if c.assoc == 1 && !c.cfg.NoWriteAllocate && len(tags) > 0 {
			// Direct mapped: the set mask is len(tags)-1, and deriving
			// it from the slice length drops the probe bounds check.
			mask := uint64(len(tags) - 1)
			for j, e := range ch.lines {
				st.accesses += uint64(ch.counts[j])
				// e is the packed tag (line<<1 | write): merge its dirty
				// bit on hit, install it verbatim on miss.
				set := (e >> 1) & mask
				t := tags[set]
				if t^e < 2 {
					tags[set] = t | e&dirtyBit
					continue
				}
				st.misses++
				if t != invalidTag && t&dirtyBit != 0 {
					st.writebacks++
				}
				tags[set] = e
			}
			continue
		}
		for j, e := range ch.lines {
			s.access(c, st, e>>1, e&1 != 0, uint64(ch.counts[j]))
		}
	}
}

// access is the general per-entry probe with shard-local counters: the
// same semantics as Cache.accessLine (minus flush intervals, which
// StartShards excludes) applied count times, where accesses 2..count
// are hits by the rleOK argument (and count is always 1 when the group
// could not collapse runs).
func (s *groupShard) access(c *Cache, st *shardStats, line uint64, write bool, count uint64) {
	st.accesses += count
	noFill := write && c.cfg.NoWriteAllocate
	packed := line << 1
	if write {
		packed |= dirtyBit
	}
	set := line & c.setMask
	if c.assoc == 1 {
		t := c.tags[set]
		if t^packed < 2 {
			c.tags[set] = t | packed&dirtyBit
			return
		}
		st.misses++
		if !noFill {
			if t != invalidTag && t&dirtyBit != 0 {
				st.writebacks++
			}
			c.tags[set] = packed
		}
		return
	}
	ways := c.tags[set*uint64(c.assoc) : (set+1)*uint64(c.assoc)]
	for i, t := range ways {
		if t^packed < 2 {
			t |= packed & dirtyBit
			copy(ways[1:i+1], ways[:i])
			ways[0] = t
			return
		}
	}
	st.misses++
	if !noFill {
		if lru := ways[len(ways)-1]; lru != invalidTag && lru&dirtyBit != 0 {
			st.writebacks++
		}
		copy(ways[1:], ways[:len(ways)-1])
		ways[0] = packed
	}
}
