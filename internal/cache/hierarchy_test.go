package cache

import (
	"testing"

	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy(Config{Size: 128}, Config{Size: 4096})
	// Lines 0 and 4 (addr 0, 128) conflict in L1 (4 sets) but coexist
	// in L2 (128 sets).
	for i := 0; i < 100; i++ {
		h.Ref(trace.Ref{Addr: 0, Size: 4})
		h.Ref(trace.Ref{Addr: 128, Size: 4})
	}
	if h.Accesses() != 200 {
		t.Fatalf("accesses %d", h.Accesses())
	}
	if h.L1Misses() != 200 {
		t.Errorf("L1 misses %d, want 200 (ping-pong)", h.L1Misses())
	}
	if h.L2Misses() != 2 {
		t.Errorf("L2 misses %d, want 2 cold", h.L2Misses())
	}
	// Stalls: 198 L2 hits at (12-1) + 2 memory at (200-1).
	if want := uint64(198*11 + 2*199); h.StallCycles() != want {
		t.Errorf("stalls %d, want %d", h.StallCycles(), want)
	}
	if h.L1MissRate() != 1.0 {
		t.Errorf("L1 miss rate %v", h.L1MissRate())
	}
	if got := h.GlobalMissRate(); got != 0.01 {
		t.Errorf("global miss rate %v", got)
	}
}

func TestHierarchyInclusionOfCounts(t *testing.T) {
	// L2 misses can never exceed L1 misses, and both are bounded by
	// accesses, on arbitrary traffic.
	h := NewHierarchy(Config{Size: 1 << 10}, Config{Size: 16 << 10, Assoc: 4})
	r := rng.New(9)
	for i := 0; i < 100000; i++ {
		h.Ref(trace.Ref{Addr: r.Uint64n(128 << 10), Size: 4, Kind: trace.Kind(r.Intn(2))})
	}
	if h.L2Misses() > h.L1Misses() || h.L1Misses() > h.Accesses() {
		t.Errorf("count ordering violated: %d/%d/%d", h.L2Misses(), h.L1Misses(), h.Accesses())
	}
	if h.L2Misses() == 0 || h.L1Misses() == h.L2Misses() {
		t.Error("expected both L2 hits and misses under random traffic")
	}
}

func TestHierarchyLineSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on line-size mismatch")
		}
	}()
	NewHierarchy(Config{Size: 128, LineSize: 32}, Config{Size: 4096, LineSize: 64})
}

func TestWritebacks(t *testing.T) {
	c := New(Config{Size: 128}) // 4 sets
	// Read-only conflict traffic: no writebacks ever.
	for i := 0; i < 50; i++ {
		c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Read})
		c.Ref(trace.Ref{Addr: 128, Size: 4, Kind: trace.Read})
	}
	if c.Writebacks() != 0 {
		t.Fatalf("read-only traffic produced %d writebacks", c.Writebacks())
	}
	c.Reset()
	// Write ping-pong: every eviction writes a dirty line back.
	for i := 0; i < 50; i++ {
		c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Write})
		c.Ref(trace.Ref{Addr: 128, Size: 4, Kind: trace.Write})
	}
	if wb := c.Writebacks(); wb != 99 {
		t.Errorf("write ping-pong writebacks = %d, want 99", wb)
	}
}

func TestWritebacksDirtyOnlyOnce(t *testing.T) {
	c := New(Config{Size: 128})
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Write})  // dirty line 0
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Read})   // hit, stays dirty
	c.Ref(trace.Ref{Addr: 128, Size: 4, Kind: trace.Read}) // evicts dirty 0
	if c.Writebacks() != 1 {
		t.Errorf("writebacks %d, want 1", c.Writebacks())
	}
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Read}) // evicts clean 4
	if c.Writebacks() != 1 {
		t.Errorf("clean eviction wrote back: %d", c.Writebacks())
	}
}

func TestWritebacksAssoc(t *testing.T) {
	c := New(Config{Size: 64, Assoc: 2}) // one set, two ways
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Write})
	c.Ref(trace.Ref{Addr: 64, Size: 4, Kind: trace.Read})
	c.Ref(trace.Ref{Addr: 128, Size: 4, Kind: trace.Read}) // evicts dirty 0
	if c.Writebacks() != 1 {
		t.Errorf("assoc writebacks %d, want 1", c.Writebacks())
	}
	c.Ref(trace.Ref{Addr: 192, Size: 4, Kind: trace.Read}) // evicts clean 64... wait LRU
	if c.Writebacks() != 1 {
		t.Errorf("clean assoc eviction wrote back: %d", c.Writebacks())
	}
}

func TestFlushCountsDirtyWritebacks(t *testing.T) {
	c := New(Config{Size: 4096, FlushInterval: 10})
	for i := 0; i < 9; i++ {
		c.Ref(trace.Ref{Addr: uint64(i) * 32, Size: 4, Kind: trace.Write})
	}
	if c.Writebacks() != 0 {
		t.Fatal("premature writebacks")
	}
	c.Ref(trace.Ref{Addr: 9 * 32, Size: 4, Kind: trace.Write}) // 10th access flushes first
	if c.Writebacks() != 9 {
		t.Errorf("flush wrote back %d dirty lines, want 9", c.Writebacks())
	}
}
