package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// Sharing attributes cross-thread cache-line transfers. It models an
// invalidation-based coherence protocol at line granularity: each line
// remembers its last writer (owner), the set of threads holding a valid
// copy, and the word-granular footprint of the owner's writes. When a
// thread accesses a line it does not hold a copy of, and the line has
// been written before, the access suffers a coherence transfer — a
// sharing event. The event is *true* sharing when the accessed words
// intersect the words the remote owner wrote, and *false* sharing when
// they are disjoint (distinct words that merely cohabit one line — the
// placement artifact an allocator controls). Events are attributed per
// region×thread, the axis the server experiment tables report.
//
// Sharing implements trace.Sink, trace.BatchSink and trace.BlockSink.
// Classification depends only on the reference values and their order,
// so deferred columnar delivery is sound, and results are independent
// of the cache Group's shard count: Sharing is a separate sink that
// consumes the full stream on the delivering goroutine. Like the other
// simulators it is not safe for concurrent use.
//
// Thread identities come from trace.Ref.Tid / trace.Block.Tids. Holder
// sets are 64-bit masks, so tids alias modulo 64; workloads stay well
// under that (the server scenarios use at most a few dozen threads).
// A workload that never stamps tids produces no events: every access
// comes from thread 0, which always holds its own lines.
type Sharing struct {
	lineShift uint
	lineSize  uint64
	regionOf  func(uint64) int

	// Per-line coherence state in lineSet-style lazily allocated pages:
	// a directly-indexed slice below shareDenseLimit, a map above it,
	// and a single-entry last-page cache for the strongly local common
	// case.
	dense   []*sharePage
	sparse  map[uint64]*sharePage
	lastIdx uint64
	last    *sharePage

	counts    map[uint64]*shareCount
	pingLines lineSet
	trueEv    uint64
	falseEv   uint64
}

// SharingConfig configures a Sharing attributor.
type SharingConfig struct {
	// LineSize is the coherence granularity in bytes: a power of two of
	// at most 64 machine words (so a line's word footprint fits one
	// mask). Defaults to the machine line size (32 bytes).
	LineSize uint64
	// RegionOf classifies an address into a small non-negative region
	// index for the attribution rows; nil attributes everything to
	// region 0. It is consulted only when an event fires (events are
	// rare next to accesses), so it may be moderately expensive.
	RegionOf func(addr uint64) int
}

const (
	sharePageShift = 12 // 4096 lines of coherence state per page
	sharePageLines = 1 << sharePageShift
)

// sharePage holds the coherence state of 4096 consecutive lines in
// parallel arrays. owner is the last writer's tid plus one (0 = never
// written); holders is the mask of tids with a valid copy; written is
// the word-granular footprint accumulated by the current owner while it
// was the line's sole holder.
type sharePage struct {
	owner   [sharePageLines]uint8
	holders [sharePageLines]uint64
	written [sharePageLines]uint64
}

type shareCount struct {
	trueEv  uint64
	falseEv uint64
}

// NewSharing builds a sharing attributor. It panics on invalid geometry
// (programmer error in experiment setup).
func NewSharing(cfg SharingConfig) *Sharing {
	if cfg.LineSize == 0 {
		cfg.LineSize = DefaultLineSize
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: sharing line size %d not a power of two", cfg.LineSize))
	}
	if mem.WordOf(cfg.LineSize) > 64 {
		panic(fmt.Sprintf("cache: sharing line size %d exceeds 64 words", cfg.LineSize))
	}
	return &Sharing{
		lineShift: uint(bits.TrailingZeros64(cfg.LineSize)),
		lineSize:  cfg.LineSize,
		regionOf:  cfg.RegionOf,
		counts:    make(map[uint64]*shareCount),
	}
}

// wordSpanMask returns the mask with word indices [w0, w1] set; both
// must be below 64 (guaranteed by the NewSharing geometry check).
func wordSpanMask(w0, w1 uint64) uint64 {
	return (^uint64(0) << w0) & (^uint64(0) >> (63 - w1))
}

// Ref implements trace.Sink.
func (s *Sharing) Ref(r trace.Ref) {
	s.access(r.Addr, r.Size, r.Kind, r.Tid)
}

// Refs implements trace.BatchSink.
func (s *Sharing) Refs(batch []trace.Ref) {
	for _, r := range batch {
		s.access(r.Addr, r.Size, r.Kind, r.Tid)
	}
}

// Block implements trace.BlockSink. Aligned run rows are folded to one
// protocol transition per line (equivalent to element-by-element
// delivery: only a line's first element can suffer the event, and the
// remaining elements only widen the sole-owner write footprint);
// contract-violating rows are expanded element by element.
func (s *Sharing) Block(b *trace.Block) {
	runs, tids := b.Runs, b.Tids
	for i, addr := range b.Addrs {
		var tid uint8
		if tids != nil {
			tid = tids[i]
		}
		if runs != nil && runs[i] != 1 {
			s.runRow(addr, b.Sizes[i], b.Kinds[i], runs[i], tid)
			continue
		}
		s.access(addr, b.Sizes[i], b.Kinds[i], tid)
	}
}

// access applies one reference: every line it touches sees one protocol
// transition carrying the reference's word footprint within that line.
func (s *Sharing) access(addr uint64, size uint32, k trace.Kind, tid uint8) {
	first, last := span(addr, size, s.lineShift)
	n := uint64(size)
	if n == 0 {
		n = 1
	}
	end := addr + n - 1
	if end < addr {
		end = ^uint64(0)
	}
	write := k == trace.Write
	for line := first; ; line++ {
		base := line << s.lineShift
		lo, hi := addr, end
		if lo < base {
			lo = base
		}
		if lineEnd := base + s.lineSize - 1; hi > lineEnd {
			hi = lineEnd
		}
		m := wordSpanMask(mem.WordOf(lo-base), mem.WordOf(hi-base))
		s.accessLine(line, m, m, write, tid)
		if line == last {
			return
		}
	}
}

// runRow applies one run row. Aligned runs (power-of-two size dividing
// the line) take the closed form; anything else replays element by
// element through access.
func (s *Sharing) runRow(addr uint64, size uint32, k trace.Kind, n uint32, tid uint8) {
	if n == 0 {
		return
	}
	sz := uint64(size)
	if !runAligned(addr, sz, uint64(n), s.lineShift) {
		for ; n > 0; n-- {
			s.access(addr, size, k, tid)
			addr += sz
		}
		return
	}
	write := k == trace.Write
	end := addr + sz*uint64(n) - 1
	first, last := addr>>s.lineShift, end>>s.lineShift
	for line := first; ; line++ {
		base := line << s.lineShift
		lo, hi := addr, end
		if lo < base {
			lo = base
		}
		if lineEnd := base + s.lineSize - 1; hi > lineEnd {
			hi = lineEnd
		}
		update := wordSpanMask(mem.WordOf(lo-base), mem.WordOf(hi-base))
		// Only the line's first element can observe the event, so the
		// classification mask covers that element's words alone; the
		// update mask covers the whole run's footprint in the line.
		c1 := lo + sz - 1
		if c1 > hi {
			c1 = hi
		}
		classify := wordSpanMask(mem.WordOf(lo-base), mem.WordOf(c1-base))
		s.accessLine(line, classify, update, write, tid)
		if line == last {
			return
		}
	}
}

// accessLine runs one protocol transition: classify is the word mask an
// event (if any) is classified against, update the word mask a write
// deposits. For plain references the two coincide.
func (s *Sharing) accessLine(line, classify, update uint64, write bool, tid uint8) {
	idx := line >> sharePageShift
	p := s.last
	if p == nil || idx != s.lastIdx {
		p = nil
		if idx < uint64(len(s.dense)) {
			p = s.dense[idx]
		}
		if p == nil {
			p = s.page(idx)
		}
		s.lastIdx, s.last = idx, p
	}
	i := line & (sharePageLines - 1)
	t := tid & 63
	bit := uint64(1) << t
	holders := p.holders[i]
	if write {
		if holders&bit == 0 && p.owner[i] != 0 {
			s.event(line, t, classify&p.written[i] != 0)
		}
		if p.owner[i] == t+1 && holders == bit {
			// Still the sole holder: the write footprint accumulates.
			p.written[i] |= update
		} else {
			p.written[i] = update
		}
		p.owner[i] = t + 1
		p.holders[i] = bit
		return
	}
	if holders&bit == 0 {
		if p.owner[i] != 0 {
			s.event(line, t, classify&p.written[i] != 0)
		}
		p.holders[i] = holders | bit
	}
}

// event records one coherence transfer — the cold path of accessLine
// (events are rare next to accesses, and a warm run's region×thread
// counters are already materialized).
func (s *Sharing) event(line uint64, tid uint8, isTrue bool) {
	if isTrue {
		s.trueEv++
	} else {
		s.falseEv++
	}
	s.pingLines.add(line)
	region := 0
	if s.regionOf != nil {
		if r := s.regionOf(line << s.lineShift); r > 0 {
			region = r
		}
	}
	key := uint64(region)<<8 | uint64(tid)
	c := s.counts[key]
	if c == nil {
		c = &shareCount{}
		s.counts[key] = c
	}
	if isTrue {
		c.trueEv++
	} else {
		c.falseEv++
	}
}

// page allocates (and registers) the coherence page covering idx — the
// slow path of accessLine, kept out of line like lineSet.page.
func (s *Sharing) page(idx uint64) *sharePage {
	if idx < lineSetDenseLimit {
		if idx >= uint64(len(s.dense)) {
			size := idx + 1
			if min := 2 * uint64(len(s.dense)); size < min {
				size = min
			}
			if size > lineSetDenseLimit {
				size = lineSetDenseLimit
			}
			grown := make([]*sharePage, size)
			copy(grown, s.dense)
			s.dense = grown
		}
		p := new(sharePage)
		s.dense[idx] = p
		return p
	}
	p := s.sparse[idx]
	if p == nil {
		p = new(sharePage)
		if s.sparse == nil {
			s.sparse = make(map[uint64]*sharePage)
		}
		s.sparse[idx] = p
	}
	return p
}

// SharingRow is one attribution row: sharing events suffered by thread
// Tid on lines of region Region (the index SharingConfig.RegionOf
// assigned).
type SharingRow struct {
	Region int
	Tid    uint8
	True   uint64
	False  uint64
}

// SharingReport is the attributor's end-of-run summary.
type SharingReport struct {
	// Rows are the region×thread attribution rows, sorted by (Region,
	// Tid).
	Rows []SharingRow
	// True and False are the stream-wide event totals.
	True  uint64
	False uint64
	// PingLines is the number of distinct lines that suffered at least
	// one transfer — the "ping-pong lines" the server tables report.
	PingLines uint64
}

// Events returns the total number of sharing events recorded.
func (s *Sharing) Events() uint64 { return s.trueEv + s.falseEv }

// Report assembles the end-of-run summary. O(rows log rows); call it
// after the stream is flushed.
func (s *Sharing) Report() SharingReport {
	keys := make([]uint64, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var rows []SharingRow
	if len(keys) > 0 {
		rows = make([]SharingRow, 0, len(keys))
	}
	for _, k := range keys {
		c := s.counts[k]
		rows = append(rows, SharingRow{
			Region: int(k >> 8),
			Tid:    uint8(k & 0xff),
			True:   c.trueEv,
			False:  c.falseEv,
		})
	}
	return SharingReport{
		Rows:      rows,
		True:      s.trueEv,
		False:     s.falseEv,
		PingLines: s.pingLines.distinct(),
	}
}
