package cache

import "mallocsim/internal/trace"

// VictimCache simulates Jouppi's victim-cache organization (the paper's
// reference [11]: "Improving direct-mapped cache performance by the
// addition of a small fully-associative cache and prefetch buffers"):
// a direct-mapped main cache backed by a small fully-associative buffer
// holding the most recent evictions. A main-cache miss that hits in the
// victim buffer swaps the two lines and costs far less than a memory
// access; only misses in both count as full misses.
//
// The experiment this enables: how much of FIRSTFIT's conflict-miss
// pathology could 1990s hardware have absorbed?
type VictimCache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	tags      []uint64 // direct-mapped main tags
	victims   []uint64 // fully associative, LRU order (index 0 = MRU)

	accesses   uint64
	misses     uint64 // misses in both main and victim
	victimHits uint64 // main misses rescued by the victim buffer
}

// NewVictim builds a direct-mapped cache of the given configuration
// (Assoc must be 1) with a fully-associative victim buffer of `entries`
// lines.
func NewVictim(cfg Config, entries int) *VictimCache {
	cfg = cfg.withDefaults()
	if cfg.Assoc != 1 {
		panic("cache: victim cache requires a direct-mapped main cache")
	}
	if entries <= 0 {
		panic("cache: victim buffer needs at least one entry")
	}
	base := New(cfg) // reuse geometry validation
	v := &VictimCache{
		cfg:       cfg,
		lineShift: base.lineShift,
		setMask:   base.setMask,
		tags:      base.tags,
		victims:   make([]uint64, entries),
	}
	for i := range v.victims {
		v.victims[i] = invalidTag
	}
	return v
}

// Config returns the main-cache configuration.
func (v *VictimCache) Config() Config { return v.cfg }

// Entries returns the victim buffer size in lines.
func (v *VictimCache) Entries() int { return len(v.victims) }

// Ref implements trace.Sink.
func (v *VictimCache) Ref(r trace.Ref) {
	first, last := span(r.Addr, r.Size, v.lineShift)
	if first == last {
		v.accessLine(first)
		return
	}
	for line := first; ; line++ {
		v.accessLine(line)
		if line == last {
			break
		}
	}
}

// Refs implements trace.BatchSink.
func (v *VictimCache) Refs(batch []trace.Ref) {
	for _, r := range batch {
		v.Ref(r)
	}
}

func (v *VictimCache) accessLine(line uint64) {
	v.accesses++
	set := line & v.setMask
	if v.tags[set] == line {
		return // main hit
	}
	evicted := v.tags[set]
	// Probe the victim buffer.
	for i, t := range v.victims {
		if t == line {
			// Victim hit: swap the victim line with the evictee.
			v.victimHits++
			v.tags[set] = line
			v.victims[i] = evicted
			v.touchVictim(i)
			return
		}
	}
	// Full miss: fill from memory, push the evictee into the buffer.
	v.misses++
	v.tags[set] = line
	if evicted != invalidTag {
		v.insertVictim(evicted)
	}
}

// touchVictim moves entry i to the MRU position.
func (v *VictimCache) touchVictim(i int) {
	t := v.victims[i]
	copy(v.victims[1:i+1], v.victims[:i])
	v.victims[0] = t
}

// insertVictim adds a line at MRU, evicting the LRU entry.
func (v *VictimCache) insertVictim(line uint64) {
	copy(v.victims[1:], v.victims[:len(v.victims)-1])
	v.victims[0] = line
}

// Accesses returns the number of line accesses simulated.
func (v *VictimCache) Accesses() uint64 { return v.accesses }

// Misses returns full misses (missed main and victim buffer).
func (v *VictimCache) Misses() uint64 { return v.misses }

// VictimHits returns main-cache misses rescued by the buffer.
func (v *VictimCache) VictimHits() uint64 { return v.victimHits }

// MissRate returns full misses per access.
func (v *VictimCache) MissRate() float64 {
	if v.accesses == 0 {
		return 0
	}
	return float64(v.misses) / float64(v.accesses)
}
