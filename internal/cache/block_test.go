package cache

import (
	"reflect"
	"testing"

	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

// genBlock builds a random contract-conforming block: a mix of plain
// rows (word refs, line-spanning refs, refs whose byte span clamps at
// the top of the 64-bit address space) and run rows (aligned power-of-
// two runs that the simulators collapse in closed form, misaligned and
// zero-size runs that must take the element-by-element fallback). Run
// rows never wrap and never have count 0, per the Block contract.
func genBlock(r *rng.Rand, rows int) *trace.Block {
	b := &trace.Block{}
	for b.Len() < rows {
		kind := trace.Read
		if r.Bool(0.4) {
			kind = trace.Write
		}
		switch {
		case r.Bool(0.05):
			// Byte span clamps at ^uint64(0).
			b.Append(trace.Ref{
				Addr: ^uint64(0) - r.Uint64n(512),
				Size: uint32(r.Uint64n(1024)),
				Kind: kind,
			})
		case r.Bool(0.1):
			// Aligned power-of-two run: the closed-form path.
			size := uint32(1) << r.Uint64n(7) // 1..64 bytes
			addr := r.Uint64n(1<<22) &^ uint64(size-1)
			b.AppendRun(addr, size, kind, uint32(1+r.Uint64n(200)))
		case r.Bool(0.05):
			// Misaligned or non-power-of-two run: the fallback path.
			sizes := []uint32{3, 5, 12, 96}
			size := sizes[r.Intn(len(sizes))]
			b.AppendRun(1+r.Uint64n(1<<22), size, kind, uint32(1+r.Uint64n(50)))
		case r.Bool(0.02):
			// Zero-size run: every element resolves to the same byte.
			b.AppendRun(r.Uint64n(1<<22), 0, kind, uint32(1+r.Uint64n(5)))
		default:
			sizes := []uint32{0, 1, 4, 8, 8, 8, 62, 256}
			b.Append(trace.Ref{
				Addr: r.Uint64n(1 << 22),
				Size: sizes[r.Intn(len(sizes))],
				Kind: kind,
			})
		}
	}
	return b
}

// deliverRefs feeds the expanded reference sequence of blocks to s one
// Ref at a time — the per-reference oracle every bulk path must match.
func deliverRefs(s trace.Sink, blocks []*trace.Block) {
	var refs []trace.Ref
	for _, b := range blocks {
		refs = b.AppendRefs(refs[:0])
		for _, r := range refs {
			s.Ref(r)
		}
	}
}

func genBlocks(seed uint64, n, rows int) []*trace.Block {
	r := rng.New(seed)
	blocks := make([]*trace.Block, n)
	for i := range blocks {
		blocks[i] = genBlock(r, rows)
	}
	return blocks
}

// TestCacheBlockEquivalence: Cache.Block must accumulate exactly the
// counters of per-reference delivery, for every geometry (direct
// mapped, set associative, no-write-allocate, flush intervals).
func TestCacheBlockEquivalence(t *testing.T) {
	cfgs := map[string]Config{
		"direct16k":   {Size: 16 << 10},
		"assoc4":      {Size: 64 << 10, Assoc: 4},
		"nowralloc":   {Size: 16 << 10, NoWriteAllocate: true},
		"smallline":   {Size: 8 << 10, LineSize: 16},
		"flush":       {Size: 16 << 10, FlushInterval: 4096},
		"fullyassoc":  {Size: 4 << 10, Assoc: 64},
		"assoc2flush": {Size: 32 << 10, Assoc: 2, FlushInterval: 2048},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				blocks := genBlocks(seed, 4, 512)
				byRef, byBlock := New(cfg), New(cfg)
				deliverRefs(byRef, blocks)
				for _, b := range blocks {
					byBlock.Block(b)
				}
				if byRef.Accesses() != byBlock.Accesses() ||
					byRef.Misses() != byBlock.Misses() ||
					byRef.Writebacks() != byBlock.Writebacks() {
					t.Fatalf("seed %d: block delivery diverged: ref (%d,%d,%d) vs block (%d,%d,%d)",
						seed,
						byRef.Accesses(), byRef.Misses(), byRef.Writebacks(),
						byBlock.Accesses(), byBlock.Misses(), byBlock.Writebacks())
				}
			}
		})
	}
}

// groupVariants are the Group shapes that select each bulk code path:
// the fused single-pass scan (all direct mapped, no flush/nwa), the
// decompose+replay path (associative members), and the per-ref
// fallback (flush intervals and no-write-allocate disable run
// collapsing).
func groupVariants() map[string][]Config {
	return map[string][]Config{
		"fused": {
			{Size: 16 << 10}, {Size: 32 << 10}, {Size: 64 << 10},
			{Size: 128 << 10}, {Size: 512 << 10},
		},
		"assoc": {
			{Size: 16 << 10}, {Size: 64 << 10, Assoc: 4}, {Size: 32 << 10, Assoc: 2},
		},
		"nwa": {
			{Size: 16 << 10}, {Size: 64 << 10, NoWriteAllocate: true},
		},
		"flush": {
			{Size: 16 << 10, FlushInterval: 8192}, {Size: 64 << 10},
		},
	}
}

// TestGroupBlockEquivalence: Group.Block (fused scan, decompose+replay
// and the fallback) must match per-reference delivery on every member's
// counters and on the distinct-line census.
func TestGroupBlockEquivalence(t *testing.T) {
	for name, cfgs := range groupVariants() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				blocks := genBlocks(seed, 4, 512)
				byRef, byBlock := NewGroup(cfgs...), NewGroup(cfgs...)
				deliverRefs(byRef, blocks)
				for _, b := range blocks {
					byBlock.Block(b)
				}
				if !reflect.DeepEqual(byRef.Results(), byBlock.Results()) {
					t.Fatalf("seed %d: group block delivery diverged:\nref:   %+v\nblock: %+v",
						seed, byRef.Results(), byBlock.Results())
				}
				if byRef.DistinctLines() != byBlock.DistinctLines() {
					t.Fatalf("seed %d: distinct lines diverged: %d vs %d",
						seed, byRef.DistinctLines(), byBlock.DistinctLines())
				}
			}
		})
	}
}

// TestGroupShardEquivalence: sharded simulation must be byte-identical
// to the single-goroutine group at any worker count — shard partitions
// are disjoint per set, and the counters are order-independent sums.
// The race detector (CI runs the suite with -race) checks the
// chunk-handoff synchronization while this test checks the numbers.
func TestGroupShardEquivalence(t *testing.T) {
	cfgs := []Config{
		{Size: 16 << 10}, {Size: 64 << 10}, {Size: 256 << 10},
	}
	for _, workers := range []int{1, 8} {
		for seed := uint64(1); seed <= 2; seed++ {
			blocks := genBlocks(seed, 6, 512)
			plain, sharded := NewGroup(cfgs...), NewGroup(cfgs...)
			started := sharded.StartShards(workers)
			if workers == 1 && started != 0 {
				t.Fatalf("StartShards(1) started %d shards, want none", started)
			}
			if workers == 8 && started != 8 {
				t.Fatalf("StartShards(8) started %d shards, want 8", started)
			}
			deliverRefs(plain, blocks)
			for _, b := range blocks {
				sharded.Block(b)
			}
			sharded.Stop()
			if !reflect.DeepEqual(plain.Results(), sharded.Results()) {
				t.Fatalf("workers=%d seed=%d: sharded results diverged:\nplain:   %+v\nsharded: %+v",
					workers, seed, plain.Results(), sharded.Results())
			}
			if plain.DistinctLines() != sharded.DistinctLines() {
				t.Fatalf("workers=%d seed=%d: distinct lines diverged: %d vs %d",
					workers, seed, plain.DistinctLines(), sharded.DistinctLines())
			}
		}
	}
}

// TestGroupShardRefAndBatchPaths: while sharding is active the Ref and
// Refs tiers route through the workers too; all three tiers must agree
// with the unsharded oracle.
func TestGroupShardRefAndBatchPaths(t *testing.T) {
	cfgs := []Config{{Size: 16 << 10}, {Size: 64 << 10}}
	blocks := genBlocks(7, 3, 256)
	var refs []trace.Ref
	for _, b := range blocks {
		refs = b.AppendRefs(refs)
	}
	plain := NewGroup(cfgs...)
	deliverRefs(plain, blocks)

	viaRef := NewGroup(cfgs...)
	viaRef.StartShards(4)
	for _, r := range refs {
		viaRef.Ref(r)
	}
	viaRef.Stop()

	viaBatch := NewGroup(cfgs...)
	viaBatch.StartShards(4)
	viaBatch.Refs(refs)
	viaBatch.Stop()

	if !reflect.DeepEqual(plain.Results(), viaRef.Results()) {
		t.Fatalf("sharded Ref path diverged:\nplain: %+v\nshard: %+v", plain.Results(), viaRef.Results())
	}
	if !reflect.DeepEqual(plain.Results(), viaBatch.Results()) {
		t.Fatalf("sharded Refs path diverged:\nplain: %+v\nshard: %+v", plain.Results(), viaBatch.Results())
	}
}

// TestLineSetAddRange: the word-at-a-time range fill must mark exactly
// the lines that repeated add calls mark, across page boundaries, word
// boundaries and both dense and sparse territory.
func TestLineSetAddRange(t *testing.T) {
	r := rng.New(11)
	spans := [][2]uint64{
		{0, 0},
		{5, 5},
		{0, 63},
		{60, 70},
		{63, 64},
		{(1 << lineSetPageShift) - 2, (1 << lineSetPageShift) + 2},
		{3 * (1 << lineSetPageShift), 5 * (1 << lineSetPageShift)},
	}
	for i := 0; i < 40; i++ {
		first := r.Uint64n(1 << 21)
		spans = append(spans, [2]uint64{first, first + r.Uint64n(3000)})
	}
	// A sparse-territory span (beyond the dense page limit).
	base := uint64(lineSetDenseLimit)<<lineSetPageShift + 17
	spans = append(spans, [2]uint64{base, base + 100})

	ranged, looped := newLineSet(), newLineSet()
	for _, s := range spans {
		ranged.addRange(s[0], s[1])
		for line := s[0]; ; line++ {
			looped.add(line)
			if line == s[1] {
				break
			}
		}
	}
	if ranged.distinct() != looped.distinct() {
		t.Fatalf("distinct count diverged: addRange %d vs add loop %d",
			ranged.distinct(), looped.distinct())
	}
	// Membership spot-check via a probe group is indirect; compare the
	// raw pages instead.
	for idx, page := range looped.dense {
		if page == nil {
			if idx < len(ranged.dense) && ranged.dense[idx] != nil {
				for _, w := range ranged.dense[idx] {
					if w != 0 {
						t.Fatalf("page %d: addRange set bits the oracle did not", idx)
					}
				}
			}
			continue
		}
		if idx >= len(ranged.dense) || ranged.dense[idx] == nil {
			t.Fatalf("page %d missing from addRange set", idx)
		}
		if *ranged.dense[idx] != *page {
			t.Fatalf("page %d bitmap diverged", idx)
		}
	}
}
