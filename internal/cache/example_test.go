package cache_test

import (
	"fmt"

	"mallocsim/internal/cache"
	"mallocsim/internal/trace"
)

// A direct-mapped cache with two conflicting lines ping-pongs; a victim
// buffer absorbs the conflict.
func ExampleNew() {
	c := cache.New(cache.Config{Size: 128}) // 4 sets of 32-byte lines
	for i := 0; i < 10; i++ {
		c.Ref(trace.Ref{Addr: 0, Size: 4})
		c.Ref(trace.Ref{Addr: 128, Size: 4}) // same set as address 0
	}
	fmt.Printf("accesses=%d misses=%d\n", c.Accesses(), c.Misses())
	// Output: accesses=20 misses=20
}

func ExampleNewVictim() {
	v := cache.NewVictim(cache.Config{Size: 128}, 4)
	for i := 0; i < 10; i++ {
		v.Ref(trace.Ref{Addr: 0, Size: 4})
		v.Ref(trace.Ref{Addr: 128, Size: 4})
	}
	fmt.Printf("misses=%d rescued=%d\n", v.Misses(), v.VictimHits())
	// Output: misses=2 rescued=18
}

// A Group simulates several cache sizes in one pass over the trace and
// reports the shared cold-miss count.
func ExampleNewGroup() {
	g := cache.NewGroup(cache.Config{Size: 128}, cache.Config{Size: 4096})
	for i := 0; i < 5; i++ {
		g.Ref(trace.Ref{Addr: 0, Size: 4})
		g.Ref(trace.Ref{Addr: 2048, Size: 4})
	}
	for _, res := range g.Results() {
		fmt.Printf("%s: misses=%d cold=%d\n", res.Config, res.Misses, res.ColdLines)
	}
	// Output:
	// 128/32B direct-mapped: misses=10 cold=2
	// 4K/32B direct-mapped: misses=2 cold=2
}

// A two-level hierarchy turns most L1 misses into cheap L2 hits.
func ExampleNewHierarchy() {
	h := cache.NewHierarchy(cache.Config{Size: 128}, cache.Config{Size: 4096})
	for i := 0; i < 10; i++ {
		h.Ref(trace.Ref{Addr: 0, Size: 4})
		h.Ref(trace.Ref{Addr: 128, Size: 4})
	}
	fmt.Printf("L1 misses=%d, memory misses=%d\n", h.L1Misses(), h.L2Misses())
	// Output: L1 misses=20, memory misses=2
}
