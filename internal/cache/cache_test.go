package cache

import (
	"testing"
	"testing/quick"

	"mallocsim/internal/trace"
)

func ref(addr uint64) trace.Ref { return trace.Ref{Addr: addr, Size: 4, Kind: trace.Read} }

func TestConfigDefaults(t *testing.T) {
	c := New(Config{Size: 16 << 10})
	if c.Config().LineSize != DefaultLineSize || c.Config().Assoc != 1 {
		t.Errorf("defaults: %+v", c.Config())
	}
}

func TestConfigString(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Size: 16 << 10}, "16K/32B direct-mapped"},
		{Config{Size: 1 << 20, Assoc: 4}, "1M/32B 4-way"},
		{Config{Size: 512, LineSize: 16, Assoc: 2}, "512/16B 2-way"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 1000},                         // not multiple of line
		{Size: 96, LineSize: 32},             // 3 sets: not a power of two
		{Size: 64, LineSize: 48},             // line not power of two
		{Size: 32, LineSize: 32, Assoc: 3},   // lines not divisible
		{Size: 128, LineSize: 32, Assoc: -1}, // bad assoc
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 128-byte cache, 32-byte lines: 4 sets. Addresses 0 and 128 map to
	// set 0 and evict each other; address 32 maps to set 1.
	c := New(Config{Size: 128})
	c.Ref(ref(0))   // miss
	c.Ref(ref(0))   // hit
	c.Ref(ref(128)) // miss, evicts 0
	c.Ref(ref(0))   // miss again
	c.Ref(ref(32))  // miss, different set
	c.Ref(ref(32))  // hit
	if c.Misses() != 4 || c.Accesses() != 6 {
		t.Errorf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
}

func TestAssocLRU(t *testing.T) {
	// One set of 2 ways (64-byte cache): lines 0, 2, 4 all map to set 0.
	c := New(Config{Size: 64, Assoc: 2})
	c.Ref(ref(0))   // miss {0}
	c.Ref(ref(64))  // miss {64,0}
	c.Ref(ref(0))   // hit  {0,64}
	c.Ref(ref(128)) // miss, evicts 64 -> {128,0}
	c.Ref(ref(0))   // hit
	c.Ref(ref(64))  // miss (was evicted)
	if c.Misses() != 4 {
		t.Errorf("misses=%d, want 4", c.Misses())
	}
}

func TestAssocOneEqualsDirectMapped(t *testing.T) {
	a := New(Config{Size: 4096, Assoc: 1})
	b := New(Config{Size: 4096, Assoc: 1})
	_ = b
	dm := New(Config{Size: 4096})
	seed := uint64(12345)
	for i := 0; i < 20000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		addr := (seed >> 16) % (64 << 10)
		a.Ref(ref(addr))
		dm.Ref(ref(addr))
	}
	if a.Misses() != dm.Misses() {
		t.Errorf("assoc=1 misses %d != direct-mapped %d", a.Misses(), dm.Misses())
	}
}

func TestLineSpanningRef(t *testing.T) {
	c := New(Config{Size: 1024})
	c.Ref(trace.Ref{Addr: 30, Size: 8}) // spans lines 0 and 1
	if c.Accesses() != 2 || c.Misses() != 2 {
		t.Errorf("accesses=%d misses=%d, want 2/2", c.Accesses(), c.Misses())
	}
	c.Ref(trace.Ref{Addr: 0, Size: 0}) // zero size counts as 1 byte
	if c.Accesses() != 3 {
		t.Errorf("zero-size ref not counted")
	}
}

func TestFullyAssocOnlyColdMisses(t *testing.T) {
	// Working set of 16 lines in a 16-line fully-associative cache:
	// after the cold pass, everything hits forever.
	c := New(Config{Size: 512, Assoc: 16})
	for pass := 0; pass < 10; pass++ {
		for i := uint64(0); i < 16; i++ {
			c.Ref(ref(i * 32))
		}
	}
	if c.Misses() != 16 {
		t.Errorf("misses=%d, want 16 cold only", c.Misses())
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Size: 128})
	c.Ref(ref(0))
	c.Reset()
	if c.Misses() != 0 || c.Accesses() != 0 || c.MissRate() != 0 {
		t.Error("reset incomplete")
	}
	c.Ref(ref(0))
	if c.Misses() != 1 {
		t.Error("reset must clear contents (cold again)")
	}
}

func TestGroupColdAndResults(t *testing.T) {
	// Lines 0, 4 and 64: distinct sets in the 4 KB cache (128 sets), but
	// lines 0 and 64 collide in the 128-byte cache (4 sets... 64 % 4 == 0).
	g := NewGroup(Config{Size: 128}, Config{Size: 4096})
	for i := 0; i < 3; i++ {
		g.Ref(ref(0))
		g.Ref(ref(128))
		g.Ref(ref(2048))
	}
	if g.DistinctLines() != 3 {
		t.Errorf("distinct lines = %d", g.DistinctLines())
	}
	rs := g.Results()
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	small, big := rs[0], rs[1]
	if small.ColdLines != 3 || big.ColdLines != 3 {
		t.Error("cold lines wrong")
	}
	// 4 KB cache holds all three lines: cold misses only.
	if big.Misses != 3 || big.ConflictMisses() != 0 {
		t.Errorf("big cache misses=%d conflict=%d", big.Misses, big.ConflictMisses())
	}
	if small.Misses <= big.Misses {
		t.Error("small cache should conflict-miss more")
	}
	if small.MissRate() <= big.MissRate() {
		t.Error("miss rates out of order")
	}
}

func TestGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty group must panic")
		}
	}()
	NewGroup()
}

func TestGroupMixedLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed line sizes must panic")
		}
	}()
	NewGroup(Config{Size: 128, LineSize: 32}, Config{Size: 128, LineSize: 16})
}

// Property: for any reference stream, a larger cache of equal geometry
// never misses more than a smaller one... (not true in general for
// direct-mapped caches! Belady anomalies exist for conflict misses).
// The properties that DO hold and are checked here:
//   - misses never exceed accesses,
//   - misses are at least the distinct-line count (cold) for any cache,
//   - a fully-associative LRU cache exhibits the inclusion property:
//     bigger is never worse.
func TestQuickCacheInvariants(t *testing.T) {
	prop := func(raw []uint16) bool {
		small := New(Config{Size: 256, Assoc: 8}) // fully assoc: 8 lines
		big := New(Config{Size: 1024, Assoc: 32}) // fully assoc: 32 lines
		dm := New(Config{Size: 512})              // direct-mapped
		seen := map[uint64]bool{}
		for _, v := range raw {
			addr := uint64(v) * 8
			small.Ref(ref(addr))
			big.Ref(ref(addr))
			dm.Ref(ref(addr))
			seen[addr/32] = true
		}
		cold := uint64(len(seen))
		if dm.Misses() > dm.Accesses() || dm.Misses() < cold {
			return false
		}
		if big.Misses() > small.Misses() {
			return false // LRU inclusion property violated
		}
		return big.Misses() >= cold
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWrappingRefTerminates is the regression test for the span-wrap
// bug: a reference whose Addr+Size-1 overflows uint64 made last < first
// and the `line == last` termination never fire. The span is clamped to
// the top of the address space instead.
func TestWrappingRefTerminates(t *testing.T) {
	top := ^uint64(0)
	cases := []trace.Ref{
		{Addr: top, Size: 4},           // starts on the last byte
		{Addr: top - 3, Size: 8},       // crosses the top boundary
		{Addr: top - 40, Size: 64},     // spans into the wrap
		{Addr: top - 31, Size: 0},      // zero size at the edge
		{Addr: top &^ 31, Size: 1 << 31}, // huge span from the last line
	}
	for _, r := range cases {
		c := New(Config{Size: 128})
		c.Ref(r) // must terminate
		wantLines := (top >> 5) - ((r.Addr) >> 5) + 1
		if c.Accesses() != wantLines {
			t.Errorf("ref %+v: accesses=%d, want %d (clamped span)", r, c.Accesses(), wantLines)
		}

		g := NewGroup(Config{Size: 128}, Config{Size: 4096})
		g.Ref(r)
		if g.DistinctLines() != wantLines {
			t.Errorf("group ref %+v: distinct=%d, want %d", r, g.DistinctLines(), wantLines)
		}

		v := NewVictim(Config{Size: 128}, 2)
		v.Ref(r)
		if v.Accesses() != wantLines {
			t.Errorf("victim ref %+v: accesses=%d, want %d", r, v.Accesses(), wantLines)
		}

		h := NewHierarchy(Config{Size: 128}, Config{Size: 4096})
		h.Ref(r)
		if h.Accesses() != wantLines {
			t.Errorf("hierarchy ref %+v: accesses=%d, want %d", r, h.Accesses(), wantLines)
		}
	}
}

// TestSingleLineFastPath checks the common-case shortcut against the
// span loop: results must be identical for line-interior references.
func TestSingleLineFastPath(t *testing.T) {
	c := New(Config{Size: 1024})
	c.Ref(trace.Ref{Addr: 4, Size: 4})  // fast path
	c.Ref(trace.Ref{Addr: 12, Size: 4}) // same line: hit via fast path
	c.Ref(trace.Ref{Addr: 0, Size: 32}) // exactly one full line
	if c.Accesses() != 3 || c.Misses() != 1 {
		t.Errorf("accesses=%d misses=%d, want 3/1", c.Accesses(), c.Misses())
	}
	// Write on the fast path must still set the dirty bit.
	c.Ref(trace.Ref{Addr: 4, Size: 4, Kind: trace.Write})
	c.Ref(trace.Ref{Addr: 1024 + 4, Size: 4}) // conflict: evicts dirty line
	if c.Writebacks() != 1 {
		t.Errorf("writebacks=%d, want 1", c.Writebacks())
	}
}

// TestLineSetPagedBitset exercises the distinct-line bitset across page
// boundaries and re-visits, comparing against a map oracle.
func TestLineSetPagedBitset(t *testing.T) {
	s := newLineSet()
	oracle := map[uint64]bool{}
	seed := uint64(99)
	add := func(line uint64) {
		s.add(line)
		oracle[line] = true
	}
	// Dense run crossing several 4096-line pages, then sparse far jumps
	// (distinct lineSet pages), then revisits.
	for i := uint64(0); i < 3*4096+17; i++ {
		add(i)
	}
	for i := 0; i < 5000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		add(seed >> 24)
	}
	for i := uint64(0); i < 4096; i += 7 {
		add(i) // all revisits
	}
	if got := s.distinct(); got != uint64(len(oracle)) {
		t.Errorf("lineSet count=%d, oracle=%d", got, len(oracle))
	}
}

// TestGroupBatchEquivalence feeds one random stream to two identical
// groups — one per-ref, one in batches — and requires identical state.
func TestGroupBatchEquivalence(t *testing.T) {
	mk := func() *Group {
		return NewGroup(Config{Size: 1 << 10}, Config{Size: 4 << 10}, Config{Size: 16 << 10, Assoc: 2})
	}
	single, batched := mk(), mk()
	seed := uint64(7)
	var batch []trace.Ref
	for i := 0; i < 50000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		r := trace.Ref{Addr: (seed >> 16) % (1 << 21), Size: uint32(4 + (seed>>8)%64)}
		if seed%3 == 0 {
			r.Kind = trace.Write
		}
		single.Ref(r)
		batch = append(batch, r)
		if len(batch) == 113 {
			batched.Refs(batch)
			batch = batch[:0]
		}
	}
	batched.Refs(batch)
	if single.DistinctLines() != batched.DistinctLines() {
		t.Errorf("distinct lines: %d vs %d", single.DistinctLines(), batched.DistinctLines())
	}
	a, b := single.Results(), batched.Results()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cache %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
