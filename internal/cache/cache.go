// Package cache implements the data-cache simulators used to reproduce
// the paper's cache-locality experiments.
//
// The paper simulates direct-mapped caches with 32-byte blocks at sizes
// from 16 KB to 256 KB (a modified Tycho simulator consuming Pixie
// traces). This package provides the same model — a direct-mapped
// simulator — plus an N-way set-associative LRU simulator as an
// extension (the paper cites Wilson's associativity studies as related
// work), and a Group that feeds one reference stream to many
// configurations in a single pass.
//
// Only data references are simulated; the paper assumes a 0% instruction
// cache miss rate, making its (and our) execution-time predictions
// conservative.
package cache

import (
	"fmt"

	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// DefaultLineSize is the paper's cache block size (32 bytes).
const DefaultLineSize = mem.LineSize

// Config describes one cache to simulate.
type Config struct {
	// Size is the total capacity in bytes. Must be a power of two and a
	// multiple of LineSize*Assoc.
	Size uint64
	// LineSize is the block size in bytes (power of two). Defaults to 32.
	LineSize uint64
	// Assoc is the set associativity; 1 (direct-mapped) if zero.
	Assoc int
	// NoWriteAllocate makes write misses bypass the cache (counted as
	// misses but not filling a line). The default is write-allocate,
	// matching the paper's Tycho configuration.
	NoWriteAllocate bool
	// FlushInterval, when non-zero, invalidates the whole cache every
	// that many line accesses, modelling context-switch interference —
	// the effect the paper's §3.2 deliberately excludes ("we
	// intentionally avoid introducing the effects of intermittent cache
	// flushes") and that Mogul & Borg quantify.
	FlushInterval uint64
}

func (c Config) withDefaults() Config {
	if c.LineSize == 0 {
		c.LineSize = DefaultLineSize
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	return c
}

// String renders e.g. "64K/32B direct-mapped" or "16K/32B 4-way".
func (c Config) String() string {
	c = c.withDefaults()
	assoc := "direct-mapped"
	if c.Assoc > 1 {
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%s/%dB %s", sizeStr(c.Size), c.LineSize, assoc)
}

func sizeStr(n uint64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Validate checks the configuration's geometry — the same invariants
// New enforces by panicking — and returns a descriptive error for the
// first violation. Use it to reject externally supplied configurations
// (job specs arriving over the network) before they reach New, where a
// bad geometry is treated as a programmer error.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity must be >= 1")
	}
	lines := c.Size / c.LineSize
	if lines == 0 || c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.Size, c.LineSize)
	}
	sets := lines / uint64(c.Assoc)
	if sets == 0 || lines%uint64(c.Assoc) != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache simulates a single cache configuration. It implements
// trace.Sink. The zero value is not usable; call New.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	// tags holds, per set, assoc line tags maintained in LRU order
	// (index 0 = most recently used). invalidTag marks empty ways; the
	// top bit of a valid tag is its write-back dirty flag.
	tags []uint64

	accesses   uint64
	misses     uint64
	writebacks uint64
}

const (
	invalidTag = ^uint64(0)
	dirtyFlag  = uint64(1) << 63
	lineMask   = dirtyFlag - 1
)

// New builds a cache simulator for cfg. It panics on invalid geometry
// (these are programmer errors in experiment setup); validate untrusted
// configurations with Config.Validate first.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	lines := cfg.Size / cfg.LineSize
	sets := lines / uint64(cfg.Assoc)
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   sets - 1,
		assoc:     cfg.Assoc,
		tags:      make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration (with defaults applied).
func (c *Cache) Config() Config { return c.cfg }

// span returns the first and last line numbers touched by a reference,
// clamping spans that would wrap the 64-bit address space (Addr+Size-1
// overflowing) to the top line so iteration always terminates.
func span(addr uint64, size uint32, shift uint) (first, last uint64) {
	n := uint64(size)
	if n == 0 {
		n = 1
	}
	end := addr + n - 1
	if end < addr {
		end = ^uint64(0)
	}
	return addr >> shift, end >> shift
}

// Ref implements trace.Sink. A reference spanning multiple lines counts
// as one access per line touched.
func (c *Cache) Ref(r trace.Ref) {
	first, last := span(r.Addr, r.Size, c.lineShift)
	write := r.Kind == trace.Write
	if first == last {
		// Single-line references dominate real traces (word accesses
		// within a 32-byte line); skip the span loop entirely.
		c.accessLine(first, write)
		return
	}
	for line := first; ; line++ {
		c.accessLine(line, write)
		if line == last {
			break
		}
	}
}

// Refs implements trace.BatchSink.
func (c *Cache) Refs(batch []trace.Ref) {
	for _, r := range batch {
		c.Ref(r)
	}
}

func (c *Cache) accessLine(line uint64, write bool) {
	c.accesses++
	if c.cfg.FlushInterval != 0 && c.accesses%c.cfg.FlushInterval == 0 {
		c.invalidate()
	}
	noFill := write && c.cfg.NoWriteAllocate
	fillTag := line
	if write {
		fillTag |= dirtyFlag
	}
	set := line & c.setMask
	if c.assoc == 1 {
		// Direct-mapped fast path.
		t := c.tags[set]
		if t != invalidTag && t&lineMask == line {
			if write {
				c.tags[set] = t | dirtyFlag
			}
			return
		}
		c.misses++
		if !noFill {
			if t != invalidTag && t&dirtyFlag != 0 {
				c.writebacks++
			}
			c.tags[set] = fillTag
		}
		return
	}
	ways := c.tags[set*uint64(c.assoc) : (set+1)*uint64(c.assoc)]
	for i, t := range ways {
		if t != invalidTag && t&lineMask == line {
			// Hit: move to front (LRU order maintenance).
			if write {
				t |= dirtyFlag
			}
			copy(ways[1:i+1], ways[:i])
			ways[0] = t
			return
		}
	}
	// Miss: evict LRU (last way), insert at front.
	c.misses++
	if !noFill {
		if lru := ways[len(ways)-1]; lru != invalidTag && lru&dirtyFlag != 0 {
			c.writebacks++
		}
		copy(ways[1:], ways[:len(ways)-1])
		ways[0] = fillTag
	}
}

func (c *Cache) invalidate() {
	for i := range c.tags {
		if t := c.tags[i]; t != invalidTag && t&dirtyFlag != 0 {
			c.writebacks++
		}
		c.tags[i] = invalidTag
	}
}

// Accesses returns the number of line accesses simulated.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Writebacks returns the number of dirty lines evicted (write-back bus
// traffic beyond line fills). Invalidations (Reset, FlushInterval) also
// write dirty lines back.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// MissRate returns misses/accesses, or 0 when empty.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.invalidate()
	c.accesses = 0
	c.misses = 0
	c.writebacks = 0
}

// Result summarizes one simulated cache after a run.
type Result struct {
	Config   Config
	Accesses uint64
	Misses   uint64
	// ColdLines is the number of distinct lines referenced during the
	// run; the first access to each necessarily misses in any cache, so
	// this is the cold-miss count (identical across configurations).
	ColdLines uint64
}

// MissRate returns the overall miss ratio.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// ConflictMisses returns misses beyond the cold (compulsory) misses.
func (r Result) ConflictMisses() uint64 {
	if r.Misses < r.ColdLines {
		return 0
	}
	return r.Misses - r.ColdLines
}

// lineSet tracks distinct line numbers with a sparse paged bitset:
// 4096-line (512-byte) pages allocated on demand. Pages below
// lineSetDenseLimit live in a directly-indexed slice (one bounds check
// and a load — the common case, since simulated heaps sit in the low
// few GB of the address space); pages above it fall back to a map.
// Compared with map[uint64]struct{} this replaces a hash+insert per
// line access with a shift, an array index and a bit test, and shrinks
// the footprint from ~48 bytes to one bit per distinct line.
type lineSet struct {
	dense  []*lineSetPage
	sparse map[uint64]*lineSetPage
	count  uint64
}

const (
	lineSetPageShift = 12 // 4096 lines per page

	// lineSetDenseLimit caps the directly-indexed page table: 2^15
	// pages × 4096 lines × 32-byte lines = the first 4 GB of address
	// space, at a worst-case cost of 256 KB of page pointers.
	lineSetDenseLimit = 1 << 15
)

type lineSetPage [1 << (lineSetPageShift - 6)]uint64

func newLineSet() *lineSet {
	return &lineSet{}
}

// add marks line as seen, bumping the distinct count on first sight.
func (s *lineSet) add(line uint64) {
	idx := line >> lineSetPageShift
	var p *lineSetPage
	if idx < uint64(len(s.dense)) {
		p = s.dense[idx]
	}
	if p == nil {
		p = s.page(idx)
	}
	w := (line >> 6) & (uint64(len(p)) - 1)
	bit := uint64(1) << (line & 63)
	if p[w]&bit == 0 {
		p[w] |= bit
		s.count++
	}
}

// page allocates (and registers) the page covering idx — the slow path
// of add, kept out of line so add itself stays small and inlinable.
func (s *lineSet) page(idx uint64) *lineSetPage {
	if idx < lineSetDenseLimit {
		if idx >= uint64(len(s.dense)) {
			grown := make([]*lineSetPage, idx+1)
			copy(grown, s.dense)
			s.dense = grown
		}
		p := new(lineSetPage)
		s.dense[idx] = p
		return p
	}
	p := s.sparse[idx]
	if p == nil {
		p = new(lineSetPage)
		if s.sparse == nil {
			s.sparse = make(map[uint64]*lineSetPage)
		}
		s.sparse[idx] = p
	}
	return p
}

// Group feeds one reference stream to several cache configurations and
// tracks the distinct-line (cold miss) count once for all of them. It
// implements trace.Sink and trace.BatchSink.
type Group struct {
	caches []*Cache
	// seen tracks distinct line numbers (the shared cold-miss count).
	seen      *lineSet
	lineShift uint
	// fused is true when every member is a plain direct-mapped
	// write-allocate cache with no flush interval — the paper's exact
	// configuration — letting accessLine run one fused loop over the
	// members' tag arrays instead of a virtual call per cache.
	fused bool
}

// NewGroup builds a group over the given configurations. All configs
// must share one line size (the paper's experiments all use 32 bytes).
func NewGroup(cfgs ...Config) *Group {
	if len(cfgs) == 0 {
		panic("cache: empty group")
	}
	g := &Group{seen: newLineSet(), fused: true}
	var lineSize uint64
	for _, cfg := range cfgs {
		c := New(cfg)
		if lineSize == 0 {
			lineSize = c.cfg.LineSize
			g.lineShift = c.lineShift
		} else if c.cfg.LineSize != lineSize {
			panic("cache: group configs must share a line size")
		}
		if c.assoc != 1 || c.cfg.NoWriteAllocate || c.cfg.FlushInterval != 0 {
			g.fused = false
		}
		g.caches = append(g.caches, c)
	}
	return g
}

// Ref implements trace.Sink. The line decomposition is done once here —
// every member cache shares the group's line size, so each gets the
// pre-split line number instead of redoing the shift/mask work.
func (g *Group) Ref(r trace.Ref) {
	first, last := span(r.Addr, r.Size, g.lineShift)
	write := r.Kind == trace.Write
	if first == last {
		g.accessLine(first, write)
		return
	}
	for line := first; ; line++ {
		g.accessLine(line, write)
		if line == last {
			break
		}
	}
}

func (g *Group) accessLine(line uint64, write bool) {
	g.seen.add(line)
	if g.fused {
		// Every member is plain direct-mapped write-allocate: run the
		// direct-mapped fast path inline over all tag arrays, skipping
		// the per-cache call and its feature branches.
		fillTag := line
		if write {
			fillTag |= dirtyFlag
		}
		for _, c := range g.caches {
			c.accesses++
			set := line & c.setMask
			t := c.tags[set]
			if t&lineMask == line && t != invalidTag {
				if write {
					c.tags[set] = t | dirtyFlag
				}
				continue
			}
			c.misses++
			if t != invalidTag && t&dirtyFlag != 0 {
				c.writebacks++
			}
			c.tags[set] = fillTag
		}
		return
	}
	for _, c := range g.caches {
		c.accessLine(line, write)
	}
}

// Refs implements trace.BatchSink.
func (g *Group) Refs(batch []trace.Ref) {
	for _, r := range batch {
		g.Ref(r)
	}
}

// Caches returns the member simulators in construction order.
func (g *Group) Caches() []*Cache { return g.caches }

// DistinctLines returns the number of distinct cache lines referenced.
func (g *Group) DistinctLines() uint64 { return g.seen.count }

// Results summarizes every member cache.
func (g *Group) Results() []Result {
	out := make([]Result, len(g.caches))
	cold := g.DistinctLines()
	for i, c := range g.caches {
		out[i] = Result{Config: c.cfg, Accesses: c.accesses, Misses: c.misses, ColdLines: cold}
	}
	return out
}
