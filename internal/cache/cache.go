// Package cache implements the data-cache simulators used to reproduce
// the paper's cache-locality experiments.
//
// The paper simulates direct-mapped caches with 32-byte blocks at sizes
// from 16 KB to 256 KB (a modified Tycho simulator consuming Pixie
// traces). This package provides the same model — a direct-mapped
// simulator — plus an N-way set-associative LRU simulator as an
// extension (the paper cites Wilson's associativity studies as related
// work), and a Group that feeds one reference stream to many
// configurations in a single pass.
//
// Only data references are simulated; the paper assumes a 0% instruction
// cache miss rate, making its (and our) execution-time predictions
// conservative.
package cache

import (
	"fmt"

	"mallocsim/internal/trace"
)

// DefaultLineSize is the paper's cache block size (32 bytes).
const DefaultLineSize = 32

// Config describes one cache to simulate.
type Config struct {
	// Size is the total capacity in bytes. Must be a power of two and a
	// multiple of LineSize*Assoc.
	Size uint64
	// LineSize is the block size in bytes (power of two). Defaults to 32.
	LineSize uint64
	// Assoc is the set associativity; 1 (direct-mapped) if zero.
	Assoc int
	// NoWriteAllocate makes write misses bypass the cache (counted as
	// misses but not filling a line). The default is write-allocate,
	// matching the paper's Tycho configuration.
	NoWriteAllocate bool
	// FlushInterval, when non-zero, invalidates the whole cache every
	// that many line accesses, modelling context-switch interference —
	// the effect the paper's §3.2 deliberately excludes ("we
	// intentionally avoid introducing the effects of intermittent cache
	// flushes") and that Mogul & Borg quantify.
	FlushInterval uint64
}

func (c Config) withDefaults() Config {
	if c.LineSize == 0 {
		c.LineSize = DefaultLineSize
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	return c
}

// String renders e.g. "64K/32B direct-mapped" or "16K/32B 4-way".
func (c Config) String() string {
	c = c.withDefaults()
	assoc := "direct-mapped"
	if c.Assoc > 1 {
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%s/%dB %s", sizeStr(c.Size), c.LineSize, assoc)
}

func sizeStr(n uint64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Cache simulates a single cache configuration. It implements
// trace.Sink. The zero value is not usable; call New.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	// tags holds, per set, assoc line tags maintained in LRU order
	// (index 0 = most recently used). invalidTag marks empty ways; the
	// top bit of a valid tag is its write-back dirty flag.
	tags []uint64

	accesses   uint64
	misses     uint64
	writebacks uint64
}

const (
	invalidTag = ^uint64(0)
	dirtyFlag  = uint64(1) << 63
	lineMask   = dirtyFlag - 1
)

// New builds a cache simulator for cfg. It panics on invalid geometry
// (these are programmer errors in experiment setup).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if cfg.LineSize == 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineSize))
	}
	if cfg.Assoc < 1 {
		panic("cache: associativity must be >= 1")
	}
	lines := cfg.Size / cfg.LineSize
	if lines == 0 || cfg.Size%cfg.LineSize != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of line size %d", cfg.Size, cfg.LineSize))
	}
	sets := lines / uint64(cfg.Assoc)
	if sets == 0 || lines%uint64(cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by associativity %d", lines, cfg.Assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   sets - 1,
		assoc:     cfg.Assoc,
		tags:      make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration (with defaults applied).
func (c *Cache) Config() Config { return c.cfg }

// Ref implements trace.Sink. A reference spanning multiple lines counts
// as one access per line touched.
func (c *Cache) Ref(r trace.Ref) {
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	write := r.Kind == trace.Write
	first := r.Addr >> c.lineShift
	last := (r.Addr + size - 1) >> c.lineShift
	for line := first; ; line++ {
		c.accessLine(line, write)
		if line == last {
			break
		}
	}
}

func (c *Cache) accessLine(line uint64, write bool) {
	c.accesses++
	if c.cfg.FlushInterval != 0 && c.accesses%c.cfg.FlushInterval == 0 {
		c.invalidate()
	}
	noFill := write && c.cfg.NoWriteAllocate
	fillTag := line
	if write {
		fillTag |= dirtyFlag
	}
	set := line & c.setMask
	if c.assoc == 1 {
		// Direct-mapped fast path.
		t := c.tags[set]
		if t != invalidTag && t&lineMask == line {
			if write {
				c.tags[set] = t | dirtyFlag
			}
			return
		}
		c.misses++
		if !noFill {
			if t != invalidTag && t&dirtyFlag != 0 {
				c.writebacks++
			}
			c.tags[set] = fillTag
		}
		return
	}
	ways := c.tags[set*uint64(c.assoc) : (set+1)*uint64(c.assoc)]
	for i, t := range ways {
		if t != invalidTag && t&lineMask == line {
			// Hit: move to front (LRU order maintenance).
			if write {
				t |= dirtyFlag
			}
			copy(ways[1:i+1], ways[:i])
			ways[0] = t
			return
		}
	}
	// Miss: evict LRU (last way), insert at front.
	c.misses++
	if !noFill {
		if lru := ways[len(ways)-1]; lru != invalidTag && lru&dirtyFlag != 0 {
			c.writebacks++
		}
		copy(ways[1:], ways[:len(ways)-1])
		ways[0] = fillTag
	}
}

func (c *Cache) invalidate() {
	for i := range c.tags {
		if t := c.tags[i]; t != invalidTag && t&dirtyFlag != 0 {
			c.writebacks++
		}
		c.tags[i] = invalidTag
	}
}

// Accesses returns the number of line accesses simulated.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Writebacks returns the number of dirty lines evicted (write-back bus
// traffic beyond line fills). Invalidations (Reset, FlushInterval) also
// write dirty lines back.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// MissRate returns misses/accesses, or 0 when empty.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.invalidate()
	c.accesses = 0
	c.misses = 0
	c.writebacks = 0
}

// Result summarizes one simulated cache after a run.
type Result struct {
	Config   Config
	Accesses uint64
	Misses   uint64
	// ColdLines is the number of distinct lines referenced during the
	// run; the first access to each necessarily misses in any cache, so
	// this is the cold-miss count (identical across configurations).
	ColdLines uint64
}

// MissRate returns the overall miss ratio.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// ConflictMisses returns misses beyond the cold (compulsory) misses.
func (r Result) ConflictMisses() uint64 {
	if r.Misses < r.ColdLines {
		return 0
	}
	return r.Misses - r.ColdLines
}

// Group feeds one reference stream to several cache configurations and
// tracks the distinct-line (cold miss) count once for all of them. It
// implements trace.Sink.
type Group struct {
	caches []*Cache
	// seen tracks distinct line numbers. Footprints are bounded by the
	// simulated heap (a few MB), so a map is fine even for long traces.
	seen      map[uint64]struct{}
	lineShift uint
}

// NewGroup builds a group over the given configurations. All configs
// must share one line size (the paper's experiments all use 32 bytes).
func NewGroup(cfgs ...Config) *Group {
	if len(cfgs) == 0 {
		panic("cache: empty group")
	}
	g := &Group{seen: make(map[uint64]struct{})}
	var lineSize uint64
	for _, cfg := range cfgs {
		c := New(cfg)
		if lineSize == 0 {
			lineSize = c.cfg.LineSize
			g.lineShift = c.lineShift
		} else if c.cfg.LineSize != lineSize {
			panic("cache: group configs must share a line size")
		}
		g.caches = append(g.caches, c)
	}
	return g
}

// Ref implements trace.Sink.
func (g *Group) Ref(r trace.Ref) {
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	write := r.Kind == trace.Write
	first := r.Addr >> g.lineShift
	last := (r.Addr + size - 1) >> g.lineShift
	for line := first; ; line++ {
		g.seen[line] = struct{}{}
		for _, c := range g.caches {
			c.accessLine(line, write)
		}
		if line == last {
			break
		}
	}
}

// Caches returns the member simulators in construction order.
func (g *Group) Caches() []*Cache { return g.caches }

// DistinctLines returns the number of distinct cache lines referenced.
func (g *Group) DistinctLines() uint64 { return uint64(len(g.seen)) }

// Results summarizes every member cache.
func (g *Group) Results() []Result {
	out := make([]Result, len(g.caches))
	cold := g.DistinctLines()
	for i, c := range g.caches {
		out[i] = Result{Config: c.cfg, Accesses: c.accesses, Misses: c.misses, ColdLines: cold}
	}
	return out
}
