// Package cache implements the data-cache simulators used to reproduce
// the paper's cache-locality experiments.
//
// The paper simulates direct-mapped caches with 32-byte blocks at sizes
// from 16 KB to 256 KB (a modified Tycho simulator consuming Pixie
// traces). This package provides the same model — a direct-mapped
// simulator — plus an N-way set-associative LRU simulator as an
// extension (the paper cites Wilson's associativity studies as related
// work), and a Group that feeds one reference stream to many
// configurations in a single pass.
//
// Only data references are simulated; the paper assumes a 0% instruction
// cache miss rate, making its (and our) execution-time predictions
// conservative.
package cache

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// DefaultLineSize is the paper's cache block size (32 bytes).
const DefaultLineSize = mem.LineSize

// Config describes one cache to simulate.
type Config struct {
	// Size is the total capacity in bytes. Must be a power of two and a
	// multiple of LineSize*Assoc.
	Size uint64
	// LineSize is the block size in bytes (power of two). Defaults to 32.
	LineSize uint64
	// Assoc is the set associativity; 1 (direct-mapped) if zero.
	Assoc int
	// NoWriteAllocate makes write misses bypass the cache (counted as
	// misses but not filling a line). The default is write-allocate,
	// matching the paper's Tycho configuration.
	NoWriteAllocate bool
	// FlushInterval, when non-zero, invalidates the whole cache every
	// that many line accesses, modelling context-switch interference —
	// the effect the paper's §3.2 deliberately excludes ("we
	// intentionally avoid introducing the effects of intermittent cache
	// flushes") and that Mogul & Borg quantify.
	FlushInterval uint64
}

func (c Config) withDefaults() Config {
	if c.LineSize == 0 {
		c.LineSize = DefaultLineSize
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	return c
}

// String renders e.g. "64K/32B direct-mapped" or "16K/32B 4-way".
func (c Config) String() string {
	c = c.withDefaults()
	assoc := "direct-mapped"
	if c.Assoc > 1 {
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%s/%dB %s", sizeStr(c.Size), c.LineSize, assoc)
}

func sizeStr(n uint64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Validate checks the configuration's geometry — the same invariants
// New enforces by panicking — and returns a descriptive error for the
// first violation. Use it to reject externally supplied configurations
// (job specs arriving over the network) before they reach New, where a
// bad geometry is treated as a programmer error.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity must be >= 1")
	}
	lines := c.Size / c.LineSize
	if lines == 0 || c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.Size, c.LineSize)
	}
	sets := lines / uint64(c.Assoc)
	if sets == 0 || lines%uint64(c.Assoc) != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache simulates a single cache configuration. It implements
// trace.Sink. The zero value is not usable; call New.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	// tags holds, per set, assoc line tags maintained in LRU order
	// (index 0 = most recently used). invalidTag marks empty ways;
	// valid tags are packed as line<<1 | dirty — the same packing the
	// group's decomposed line stream uses (line<<1 | writeBit), so the
	// hot hit test is a single XOR: t^packed < 2 iff same line, and
	// invalidTag can never satisfy it (lines fit in 60 bits).
	tags []uint64

	accesses   uint64
	misses     uint64
	writebacks uint64
}

const (
	invalidTag = ^uint64(0)
	dirtyBit   = uint64(1)
)

// New builds a cache simulator for cfg. It panics on invalid geometry
// (these are programmer errors in experiment setup); validate untrusted
// configurations with Config.Validate first.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	lines := cfg.Size / cfg.LineSize
	sets := lines / uint64(cfg.Assoc)
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   sets - 1,
		assoc:     cfg.Assoc,
		tags:      make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration (with defaults applied).
func (c *Cache) Config() Config { return c.cfg }

// span returns the first and last line numbers touched by a reference,
// clamping spans that would wrap the 64-bit address space (Addr+Size-1
// overflowing) to the top line so iteration always terminates.
func span(addr uint64, size uint32, shift uint) (first, last uint64) {
	n := uint64(size)
	if n == 0 {
		n = 1
	}
	end := addr + n - 1
	if end < addr {
		end = ^uint64(0)
	}
	return addr >> shift, end >> shift
}

// Ref implements trace.Sink. A reference spanning multiple lines counts
// as one access per line touched.
func (c *Cache) Ref(r trace.Ref) {
	first, last := span(r.Addr, r.Size, c.lineShift)
	write := r.Kind == trace.Write
	if first == last {
		// Single-line references dominate real traces (word accesses
		// within a 32-byte line); skip the span loop entirely.
		c.accessLine(first, write)
		return
	}
	for line := first; ; line++ {
		c.accessLine(line, write)
		if line == last {
			break
		}
	}
}

// Refs implements trace.BatchSink.
func (c *Cache) Refs(batch []trace.Ref) {
	for _, r := range batch {
		c.Ref(r)
	}
}

// Block implements trace.BlockSink: the simulator walks the address and
// kind columns directly, loading sizes only to split line-spanning
// references. Run rows are expanded reference by reference — a lone
// Cache may have flush intervals or no-write-allocate semantics, for
// which every individual access matters; the closed-form run sweep
// lives in Group, which gates it on the features that permit it.
func (c *Cache) Block(b *trace.Block) {
	runs := b.Runs
	for i, addr := range b.Addrs {
		sz := b.Sizes[i]
		write := b.Kinds[i] == trace.Write
		n := uint32(1)
		if runs != nil {
			n = runs[i]
		}
		for ; n > 0; n-- {
			first, last := span(addr, sz, c.lineShift)
			if first == last {
				c.accessLine(first, write)
			} else {
				for line := first; ; line++ {
					c.accessLine(line, write)
					if line == last {
						break
					}
				}
			}
			addr += uint64(sz)
		}
	}
}

// accessLineRun folds count consecutive accesses to one line (write
// true if any of them was a store) into a single probe plus a bulk
// access count. Exact only for write-allocate caches with no flush
// interval: after the first access the line is resident whatever the
// probe's outcome, so accesses 2..count hit and can only set the dirty
// bit — which the folded write flag already does. Group.replay gates
// callers on exactly those conditions (rleOK).
func (c *Cache) accessLineRun(line uint64, write bool, count uint64) {
	c.accesses += count - 1
	c.accessLine(line, write)
}

func (c *Cache) accessLine(line uint64, write bool) {
	c.accesses++
	if c.cfg.FlushInterval != 0 && c.accesses%c.cfg.FlushInterval == 0 {
		c.invalidate()
	}
	noFill := write && c.cfg.NoWriteAllocate
	packed := line << 1
	if write {
		packed |= dirtyBit
	}
	set := line & c.setMask
	if c.assoc == 1 {
		// Direct-mapped fast path.
		t := c.tags[set]
		if t^packed < 2 {
			c.tags[set] = t | packed&dirtyBit
			return
		}
		c.misses++
		if !noFill {
			if t != invalidTag && t&dirtyBit != 0 {
				c.writebacks++
			}
			c.tags[set] = packed
		}
		return
	}
	ways := c.tags[set*uint64(c.assoc) : (set+1)*uint64(c.assoc)]
	for i, t := range ways {
		if t^packed < 2 {
			// Hit: move to front (LRU order maintenance).
			t |= packed & dirtyBit
			copy(ways[1:i+1], ways[:i])
			ways[0] = t
			return
		}
	}
	// Miss: evict LRU (last way), insert at front.
	c.misses++
	if !noFill {
		if lru := ways[len(ways)-1]; lru != invalidTag && lru&dirtyBit != 0 {
			c.writebacks++
		}
		copy(ways[1:], ways[:len(ways)-1])
		ways[0] = packed
	}
}

func (c *Cache) invalidate() {
	for i := range c.tags {
		if t := c.tags[i]; t != invalidTag && t&dirtyBit != 0 {
			c.writebacks++
		}
		c.tags[i] = invalidTag
	}
}

// Accesses returns the number of line accesses simulated.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Writebacks returns the number of dirty lines evicted (write-back bus
// traffic beyond line fills). Invalidations (Reset, FlushInterval) also
// write dirty lines back.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// MissRate returns misses/accesses, or 0 when empty.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.invalidate()
	c.accesses = 0
	c.misses = 0
	c.writebacks = 0
}

// Result summarizes one simulated cache after a run.
type Result struct {
	Config   Config
	Accesses uint64
	Misses   uint64
	// ColdLines is the number of distinct lines referenced during the
	// run; the first access to each necessarily misses in any cache, so
	// this is the cold-miss count (identical across configurations).
	ColdLines uint64
}

// MissRate returns the overall miss ratio.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// ConflictMisses returns misses beyond the cold (compulsory) misses.
func (r Result) ConflictMisses() uint64 {
	if r.Misses < r.ColdLines {
		return 0
	}
	return r.Misses - r.ColdLines
}

// lineSet tracks distinct line numbers with a sparse paged bitset:
// 4096-line (512-byte) pages allocated on demand. Pages below
// lineSetDenseLimit live in a directly-indexed slice (one bounds check
// and a load — the common case, since simulated heaps sit in the low
// few GB of the address space); pages above it fall back to a map.
// Compared with map[uint64]struct{} this replaces a hash+insert per
// line access with a shift, an array index and a bit test, and shrinks
// the footprint from ~48 bytes to one bit per distinct line.
type lineSet struct {
	dense  []*lineSetPage
	sparse map[uint64]*lineSetPage
	// Single-entry page cache: reference streams are strongly local, so
	// consecutive adds overwhelmingly hit one page; caching it turns the
	// common case into a compare plus the bit test.
	lastIdx uint64
	last    *lineSetPage
}

const (
	lineSetPageShift = 12 // 4096 lines per page

	// lineSetDenseLimit caps the directly-indexed page table: 2^20
	// pages × 4096 lines × 32-byte lines = the first 128 GB of address
	// space, at a worst-case cost of 8 MB of page pointers (the slice
	// grows only to the highest index actually referenced). The limit
	// must clear mem's region layout — bases at multiples of 1<<32 —
	// for several regions, or every lookup decays to the sparse map.
	lineSetDenseLimit = 1 << 20
)

type lineSetPage [1 << (lineSetPageShift - 6)]uint64

func newLineSet() *lineSet {
	return &lineSet{}
}

// add marks line as seen. The distinct count is not maintained here —
// the unconditional OR keeps the per-access cost at a shift, an index
// and a store; distinct() recovers the count by popcount when a reader
// (end-of-run results, a sample capture) actually wants it.
func (s *lineSet) add(line uint64) {
	idx := line >> lineSetPageShift
	p := s.last
	if p == nil || idx != s.lastIdx {
		p = nil
		if idx < uint64(len(s.dense)) {
			p = s.dense[idx]
		}
		if p == nil {
			p = s.page(idx)
		}
		s.lastIdx, s.last = idx, p
	}
	p[(line>>6)&(uint64(len(p))-1)] |= uint64(1) << (line & 63)
}

// addRange marks every line in [first, last] as seen — equivalent to
// calling add on each, but setting whole 64-bit bitmap words at a time,
// so a contiguous run of lines costs O(words) instead of O(lines).
func (s *lineSet) addRange(first, last uint64) {
	for line := first; ; {
		idx := line >> lineSetPageShift
		p := s.last
		if p == nil || idx != s.lastIdx {
			p = nil
			if idx < uint64(len(s.dense)) {
				p = s.dense[idx]
			}
			if p == nil {
				p = s.page(idx)
			}
			s.lastIdx, s.last = idx, p
		}
		end := (idx+1)<<lineSetPageShift - 1
		if end > last {
			end = last
		}
		wFirst := (line >> 6) & (uint64(len(p)) - 1)
		wLast := (end >> 6) & (uint64(len(p)) - 1)
		loMask := ^uint64(0) << (line & 63)
		hiMask := ^uint64(0) >> (63 - end&63)
		if wFirst == wLast {
			p[wFirst] |= loMask & hiMask
		} else {
			p[wFirst] |= loMask
			for w := wFirst + 1; w < wLast; w++ {
				p[w] = ^uint64(0)
			}
			p[wLast] |= hiMask
		}
		if end == last {
			return
		}
		line = end + 1
	}
}

// empty reports whether no line has ever been added (pages are only
// allocated by add, so page presence is membership evidence).
func (s *lineSet) empty() bool { return len(s.dense) == 0 && len(s.sparse) == 0 }

// distinct counts the set bits across all pages: the number of distinct
// lines added. O(allocated pages), called only from result assembly.
func (s *lineSet) distinct() uint64 {
	var n uint64
	for _, p := range s.dense {
		if p != nil {
			for _, w := range p {
				n += uint64(bits.OnesCount64(w))
			}
		}
	}
	//lint:allow determinism popcount sum is order-insensitive
	for _, p := range s.sparse {
		for _, w := range p {
			n += uint64(bits.OnesCount64(w))
		}
	}
	return n
}

// merge ORs another set's pages into this one (used when shard workers
// fold their disjoint partitions back into the group at Stop).
func (s *lineSet) merge(o *lineSet) {
	for idx, p := range o.dense {
		if p != nil {
			s.mergePage(uint64(idx), p)
		}
	}
	//lint:allow determinism bitwise OR-merge is order-insensitive
	for idx, p := range o.sparse {
		s.mergePage(idx, p)
	}
}

func (s *lineSet) mergePage(idx uint64, src *lineSetPage) {
	var dst *lineSetPage
	if idx < uint64(len(s.dense)) {
		dst = s.dense[idx]
	}
	if dst == nil {
		dst = s.page(idx)
	}
	for w, v := range src {
		dst[w] |= v
	}
}

// page allocates (and registers) the page covering idx — the slow path
// of add, kept out of line so add itself stays small and inlinable.
func (s *lineSet) page(idx uint64) *lineSetPage {
	if idx < lineSetDenseLimit {
		if idx >= uint64(len(s.dense)) {
			// Grow geometrically: region layouts touch page indices in
			// increasing order, and growing to exactly idx+1 each time
			// would recopy the whole pointer table per new page.
			size := idx + 1
			if min := 2 * uint64(len(s.dense)); size < min {
				size = min
			}
			if size > lineSetDenseLimit {
				size = lineSetDenseLimit
			}
			grown := make([]*lineSetPage, size)
			copy(grown, s.dense)
			s.dense = grown
		}
		p := new(lineSetPage)
		s.dense[idx] = p
		return p
	}
	p := s.sparse[idx]
	if p == nil {
		p = new(lineSetPage)
		if s.sparse == nil {
			s.sparse = make(map[uint64]*lineSetPage)
		}
		s.sparse[idx] = p
	}
	return p
}

// Group feeds one reference stream to several cache configurations and
// tracks the distinct-line (cold miss) count once for all of them. It
// implements trace.Sink, trace.BatchSink and trace.BlockSink: columnar
// blocks take the fastest path, decomposing every address into a
// run-length-collapsed cache-line stream once and replaying that stream
// across all member configurations.
type Group struct {
	caches []*Cache
	// seen tracks distinct line numbers (the shared cold-miss count).
	seen      *lineSet
	lineShift uint
	// fused is true when every member is a plain direct-mapped
	// write-allocate cache with no flush interval — the paper's exact
	// configuration — letting accessLine run one fused loop over the
	// members' tag arrays instead of a virtual call per cache.
	fused bool
	// rleOK is true when every member is write-allocate with no flush
	// interval: consecutive accesses to one cache line may then be
	// collapsed to a single probe with a bulk access count (see
	// Cache.accessLineRun for why this is exact). Unlike fused it does
	// not require direct mapping.
	rleOK bool

	// Decomposed line stream of the block being replayed, reused across
	// blocks. runLines packs line<<1|writeBit (the write bit of a
	// collapsed run is the OR of its members); runCounts holds how many
	// consecutive accesses each entry folds; runTotal is their sum.
	runLines  []uint64
	runCounts []uint32
	runTotal  uint64

	// probes is fusedScan's flattened view of the member caches — tag
	// array, scan-local miss/writeback accumulators and the member's
	// index side by side in one contiguous array — so the per-line
	// probe loop touches no per-cache structs. Ordered by ascending set
	// count (probeOrder) so probeEntry can stop a read probe at the
	// first hit. Refreshed at every scan; nil unless fused.
	probes []fusedProbe
	// probeOrder holds the member indices sorted by ascending set
	// count (stable, so equal-sized members keep config order).
	probeOrder []int
	// Per-set sharding (see StartShards); nil when disabled.
	shards    []*groupShard
	shardMask uint64
	chunkFree chan shardChunk
	pending   sync.WaitGroup
	workersWG sync.WaitGroup
	oneBlk    trace.Block
}

// NewGroup builds a group over the given configurations. All configs
// must share one line size (the paper's experiments all use 32 bytes).
func NewGroup(cfgs ...Config) *Group {
	if len(cfgs) == 0 {
		panic("cache: empty group")
	}
	g := &Group{seen: newLineSet(), fused: true, rleOK: true}
	var lineSize uint64
	for _, cfg := range cfgs {
		c := New(cfg)
		if lineSize == 0 {
			lineSize = c.cfg.LineSize
			g.lineShift = c.lineShift
		} else if c.cfg.LineSize != lineSize {
			panic("cache: group configs must share a line size")
		}
		if c.cfg.NoWriteAllocate || c.cfg.FlushInterval != 0 {
			g.rleOK = false
		}
		if c.assoc != 1 || !g.rleOK {
			g.fused = false
		}
		g.caches = append(g.caches, c)
	}
	if g.fused {
		g.probes = make([]fusedProbe, len(g.caches))
		g.probeOrder = make([]int, len(g.caches))
		for i := range g.probeOrder {
			g.probeOrder[i] = i
		}
		sort.SliceStable(g.probeOrder, func(a, b int) bool {
			return g.caches[g.probeOrder[a]].setMask < g.caches[g.probeOrder[b]].setMask
		})
	}
	return g
}

// fusedProbe is one member's state in fusedScan's probe loop.
type fusedProbe struct {
	tags               []uint64
	idx                int // index of the member cache in g.caches
	misses, writebacks uint64
}

// Ref implements trace.Sink. The line decomposition is done once here —
// every member cache shares the group's line size, so each gets the
// pre-split line number instead of redoing the shift/mask work.
func (g *Group) Ref(r trace.Ref) {
	if g.shards != nil {
		// Sharded delivery: every reference must flow through the
		// shard-partitioned line stream so the worker goroutines stay
		// the sole writers of their set partitions.
		g.oneBlk.Reset()
		g.oneBlk.Append(r)
		g.Block(&g.oneBlk)
		return
	}
	first, last := span(r.Addr, r.Size, g.lineShift)
	write := r.Kind == trace.Write
	if first == last {
		g.accessLine(first, write)
		return
	}
	for line := first; ; line++ {
		g.accessLine(line, write)
		if line == last {
			break
		}
	}
}

func (g *Group) accessLine(line uint64, write bool) {
	g.seen.add(line)
	if g.fused {
		// Every member is plain direct-mapped write-allocate: run the
		// direct-mapped fast path inline over all tag arrays, skipping
		// the per-cache call and its feature branches.
		packed := line << 1
		if write {
			packed |= dirtyBit
		}
		for _, c := range g.caches {
			c.accesses++
			set := line & c.setMask
			t := c.tags[set]
			if t^packed < 2 {
				c.tags[set] = t | packed&dirtyBit
				continue
			}
			c.misses++
			if t != invalidTag && t&dirtyBit != 0 {
				c.writebacks++
			}
			c.tags[set] = packed
		}
		return
	}
	for _, c := range g.caches {
		c.accessLine(line, write)
	}
}

// Refs implements trace.BatchSink.
func (g *Group) Refs(batch []trace.Ref) {
	for _, r := range batch {
		g.Ref(r)
	}
}

// Block implements trace.BlockSink: the whole block's addresses are
// decomposed into a run-length-collapsed line stream once, then that
// stream is replayed across every member configuration (or routed to
// the shard workers when sharding is active). Line numbers are packed
// as line<<1|writeBit, which requires at least one free top bit — with
// a degenerate 1-byte line size the per-reference path is used instead.
func (g *Group) Block(b *trace.Block) {
	if g.lineShift == 0 {
		runs := b.Runs
		for i := 0; i < b.Len(); i++ {
			r := b.At(i)
			n := uint32(1)
			if runs != nil {
				n = runs[i]
			}
			for ; n > 0; n-- {
				g.Ref(r)
				r.Addr += uint64(r.Size)
			}
		}
		return
	}
	if g.shards == nil && g.fused {
		g.fusedScan(b)
		return
	}
	g.decompose(b)
	if g.shards != nil {
		g.route()
		return
	}
	g.replay()
}

// runAligned reports whether one run row decomposes in closed form: the
// element size must be a nonzero power of two no larger than the line
// size (hence a divisor of it), the start address a multiple of it — so
// no element spans a line boundary and per-line element counts are
// exact quotients — and the run must not wrap the 64-bit address space.
// Producers honouring the Block contract only emit such rows; anything
// else is expanded element by element in place.
func runAligned(addr, sz, n uint64, shift uint) bool {
	return sz != 0 && sz&(sz-1) == 0 && sz <= uint64(1)<<shift &&
		addr&(sz-1) == 0 && sz*n-1 <= ^uint64(0)-addr
}

// fusedScan is the single-pass specialization of decompose+replay for
// an unsharded all-direct-mapped write-allocate group: each collapsed
// line run probes every member the moment it closes, so the block never
// materializes an intermediate line stream. The probe order and all
// counter updates match decompose+replay exactly.
func (g *Group) fusedScan(b *trace.Block) {
	seen := g.seen
	caches := g.caches
	shift := g.lineShift
	runs := b.Runs
	// Refresh the flattened probe view (tag slices may have been
	// replaced by Reset) and zero the scan-local counters. The view is
	// ordered smallest member first so probeEntry can early-exit read
	// probes on the inclusion property.
	for i, k := range g.probeOrder {
		g.probes[i] = fusedProbe{tags: caches[k].tags, idx: k}
	}
	var total uint64
	var cur uint64
	have := false
	for i, addr := range b.Addrs {
		// Kind is 0 for reads and 1 for writes: the packed write bit
		// is the kind itself (masked so a malformed kind cannot reach
		// the line bits).
		w := uint64(b.Kinds[i]) & 1
		if runs != nil && runs[i] != 1 {
			n := uint64(runs[i])
			if n == 0 {
				continue
			}
			sz := uint64(b.Sizes[i])
			if !runAligned(addr, sz, n, shift) {
				// Contract-violating run row: expand it element by
				// element through the span path (preserving order and
				// the current collapse state).
				for ; n > 0; n-- {
					first, last := span(addr, b.Sizes[i], shift)
					total += last - first + 1
					for line := first; ; line++ {
						if have && cur>>1 == line {
							cur |= w
						} else {
							if have {
								g.probeEntry(cur)
							}
							cur, have = line<<1|w, true
						}
						if line == last {
							break
						}
					}
					addr += sz
				}
				continue
			}
			// Aligned run row: every element lies within one line, so
			// the row is n single-line accesses walking lines
			// first..last contiguously. Only the line transitions cost
			// probes; the n accesses are part of the bulk total, and
			// the distinct-line set takes the whole range in one call
			// (re-adding the first line on a merge is an idempotent OR).
			total += n
			first := addr >> shift
			last := (addr + sz*n - 1) >> shift
			seen.addRange(first, last)
			if have && cur>>1 == first {
				cur |= w
			} else {
				if have {
					g.probeEntry(cur)
				}
				cur, have = first<<1|w, true
			}
			if first != last {
				// Lines first..last-1 all close here: probe the first
				// (whose entry may carry a merged-in write bit), then
				// the interior lines in order. The last line stays
				// open for merging.
				g.probeEntry(cur)
				g.probeRun((first+1)<<1|w, last-first-1)
				cur = last<<1 | w
			}
			continue
		}
		first, last := span(addr, b.Sizes[i], shift)
		total += last - first + 1
		if first == last {
			if have && cur>>1 == first {
				cur |= w
				continue
			}
			if have {
				g.probeEntry(cur)
			}
			cur, have = first<<1|w, true
			continue
		}
		for line := first; ; line++ {
			if have && cur>>1 == line {
				cur |= w
			} else {
				if have {
					g.probeEntry(cur)
				}
				cur, have = line<<1|w, true
			}
			if line == last {
				break
			}
		}
	}
	if have {
		g.probeEntry(cur)
	}
	for _, c := range caches {
		c.accesses += total
	}
	for i := range g.probes {
		p := &g.probes[i]
		caches[p.idx].misses += p.misses
		caches[p.idx].writebacks += p.writebacks
	}
}

// probeEntry probes one closed line entry against every member,
// smallest first, exploiting the inclusion property of nested
// direct-mapped caches: a larger member's set index refines a smaller
// member's (both are low-bit masks of the line number), so a line's
// congruence class in the large cache is a subset of its class in the
// small cache — if the line was its class's most recent access in the
// small cache it certainly was in the subclass, hence resident in the
// large cache too. Consequences used here:
//
//   - A read hit at any level implies hits at every larger level,
//     where a read hit changes no state (no LRU, no dirty merge) — the
//     probe stops at the first hit.
//   - Dirty state is inclusive as well (the write that dirtied a line
//     in a small member hit — and dirtied — it in every larger one),
//     so a write hit on an already-dirty line stops the same way.
//   - A hit at the smallest level means the line was installed by an
//     earlier access, which already recorded it in the distinct-line
//     set — only a miss at the smallest level needs seen.add.
//
// The shortcuts assume every member has seen the same access stream
// since its last reset, which Group guarantees for all delivery
// through its sink interface. Probes happen in line-close order, so
// each member's counters and tag state are identical to the unfused
// per-reference simulation. Accesses are charged in bulk by fusedScan.
func (g *Group) probeEntry(e uint64) {
	probes := g.probes
	if e&dirtyBit == 0 {
		for k := range probes {
			p := &probes[k]
			tags := p.tags
			if len(tags) == 0 {
				continue
			}
			// Direct mapped: the set mask is len(tags)-1, and deriving
			// it from the length drops the bounds check.
			set := (e >> 1) & uint64(len(tags)-1)
			t := tags[set]
			if t^e < 2 {
				return // read hit: every larger member hits, no-op
			}
			p.misses++
			if t != invalidTag && t&dirtyBit != 0 {
				p.writebacks++
			}
			tags[set] = e
			if k == 0 {
				g.seen.add(e >> 1)
			}
		}
		return
	}
	for k := range probes {
		p := &probes[k]
		tags := p.tags
		if len(tags) == 0 {
			continue
		}
		set := (e >> 1) & uint64(len(tags)-1)
		t := tags[set]
		if t^e < 2 {
			if t&dirtyBit != 0 {
				return // dirty hit: the rest are dirty hits, no-op
			}
			tags[set] = t | dirtyBit
			continue
		}
		p.misses++
		if t != invalidTag && t&dirtyBit != 0 {
			p.writebacks++
		}
		tags[set] = e
		if k == 0 {
			g.seen.add(e >> 1)
		}
	}
}

// probeRun probes n consecutive closed line entries starting at e0
// (packed stride 2). Callers have already range-added the lines to the
// distinct-line set, so the per-entry add on a smallest-level miss is
// an idempotent re-add.
func (g *Group) probeRun(e0, n uint64) {
	for ; n > 0; n-- {
		g.probeEntry(e0)
		e0 += 2
	}
}

// decompose splits every reference in the block into cache-line
// accesses, collapsing consecutive accesses to the same line into one
// entry when the group's members allow it (rleOK; the write bit of a
// collapsed entry is the OR of its members' write bits). The resulting
// runLines/runCounts stream replays identically across every member,
// hoisting the span/shift work that the per-reference path repeats per
// config per ref.
func (g *Group) decompose(b *trace.Block) {
	lines := g.runLines[:0]
	counts := g.runCounts[:0]
	// Run lengths are only consumed by the non-fused replay (per-entry
	// bulk hits) and by the shard workers; the fused single-goroutine
	// path charges accesses from the total alone, so skipping the counts
	// column halves the stream-building stores on the hottest path.
	needCounts := g.shards != nil || (g.rleOK && !g.fused)
	// Distinct-line tracking happens here, at run-entry creation, when
	// the stream is replayed on this goroutine (one add per emitted
	// entry — identical to a pass over the finished stream, without the
	// extra traversal). Shard workers track their own partitions.
	seen := g.seen
	if g.shards != nil {
		seen = nil
	}
	shift := g.lineShift
	runs := b.Runs
	var total uint64
	if g.rleOK {
		var cur uint64
		var curN uint32
		have := false
		for i, addr := range b.Addrs {
			w := uint64(b.Kinds[i]) & 1
			if runs != nil && runs[i] != 1 {
				n := runs[i]
				if n == 0 {
					continue
				}
				sz := uint64(b.Sizes[i])
				if !runAligned(addr, sz, uint64(n), shift) {
					// Contract-violating run row: expand element by
					// element through the span path, preserving the
					// collapse state.
					for ; n > 0; n-- {
						first, last := span(addr, b.Sizes[i], shift)
						total += last - first + 1
						for line := first; ; line++ {
							if have && cur>>1 == line && curN < math.MaxUint32 {
								cur |= w
								curN++
							} else {
								if have {
									lines = append(lines, cur)
									if needCounts {
										counts = append(counts, curN)
									}
								}
								cur, curN, have = line<<1|w, 1, true
								if seen != nil {
									seen.add(line)
								}
							}
							if line == last {
								break
							}
						}
						addr += sz
					}
					continue
				}
				// Aligned run row: n single-line accesses walking lines
				// first..last, with exact per-line counts computed in
				// closed form instead of element by element.
				total += uint64(n)
				first := addr >> shift
				last := (addr + sz*uint64(n) - 1) >> shift
				if seen != nil {
					seen.addRange(first, last)
				}
				firstCnt := n
				if first != last {
					firstCnt = uint32((((first + 1) << shift) - addr) / sz)
				}
				if have && cur>>1 == first && curN <= math.MaxUint32-firstCnt {
					cur |= w
					curN += firstCnt
				} else {
					if have {
						lines = append(lines, cur)
						if needCounts {
							counts = append(counts, curN)
						}
					}
					cur, curN, have = first<<1|w, firstCnt, true
				}
				if first == last {
					continue
				}
				// wpl (elements per full line) cannot truncate in the
				// uint32 cast whenever a full middle line exists: its
				// count is bounded by the row's uint32 run length.
				wpl := uint32((uint64(1) << shift) / sz)
				rem := n - firstCnt
				for line := first + 1; ; line++ {
					cnt := wpl
					if line == last {
						cnt = rem
					}
					lines = append(lines, cur)
					if needCounts {
						counts = append(counts, curN)
					}
					cur, curN = line<<1|w, cnt
					if line == last {
						break
					}
					rem -= wpl
				}
				continue
			}
			first, last := span(addr, b.Sizes[i], shift)
			total += last - first + 1
			if first == last {
				// Single-line reference: the overwhelming case for a
				// word-granular stream, kept free of the line loop.
				if have && cur>>1 == first {
					cur |= w
					curN++
					continue
				}
				if have {
					lines = append(lines, cur)
					if needCounts {
						counts = append(counts, curN)
					}
				}
				cur, curN, have = first<<1|w, 1, true
				if seen != nil {
					seen.add(first)
				}
				continue
			}
			for line := first; ; line++ {
				if have && cur>>1 == line {
					cur |= w
					curN++
				} else {
					if have {
						lines = append(lines, cur)
						if needCounts {
							counts = append(counts, curN)
						}
					}
					cur, curN, have = line<<1|w, 1, true
					if seen != nil {
						seen.add(line)
					}
				}
				if line == last {
					break
				}
			}
		}
		if have {
			lines = append(lines, cur)
			if needCounts {
				counts = append(counts, curN)
			}
		}
	} else {
		// Not collapsible (flush intervals or no-write-allocate members
		// need every access): one entry per line access, all counts 1.
		for i, addr := range b.Addrs {
			w := uint64(b.Kinds[i]) & 1
			if runs != nil && runs[i] != 1 {
				// Per-access stream: expand the run one element at a
				// time. Aligned elements hit exactly one line; a
				// contract-violating row goes through span per element.
				n := runs[i]
				sz := uint64(b.Sizes[i])
				a := addr
				if !runAligned(addr, sz, uint64(n), shift) {
					for ; n > 0; n-- {
						first, last := span(a, b.Sizes[i], shift)
						total += last - first + 1
						for line := first; ; line++ {
							lines = append(lines, line<<1|w)
							if seen != nil {
								seen.add(line)
							}
							if line == last {
								break
							}
						}
						a += sz
					}
					continue
				}
				total += uint64(n)
				for ; n > 0; n-- {
					line := a >> shift
					lines = append(lines, line<<1|w)
					if seen != nil {
						seen.add(line)
					}
					a += sz
				}
				continue
			}
			first, last := span(addr, b.Sizes[i], shift)
			total += last - first + 1
			for line := first; ; line++ {
				lines = append(lines, line<<1|w)
				if seen != nil {
					seen.add(line)
				}
				if line == last {
					break
				}
			}
		}
		if needCounts {
			for len(counts) < len(lines) {
				counts = append(counts, 1)
			}
			counts = counts[:len(lines)]
		}
	}
	g.runLines, g.runCounts, g.runTotal = lines, counts, total
}

// replay feeds the decomposed line stream to every member cache on the
// calling goroutine. Distinct-line tracking already happened during
// decomposition.
func (g *Group) replay() {
	lines := g.runLines
	if g.fused {
		// Every member is plain direct-mapped write-allocate: bulk-add
		// the access count and run the probe loop over each tag array
		// with no per-access feature branches.
		for _, c := range g.caches {
			c.accesses += g.runTotal
			tags := c.tags
			if len(tags) == 0 {
				continue
			}
			// Direct mapped (fused), so the set mask is len(tags)-1;
			// deriving it from the length drops the bounds check.
			mask := uint64(len(tags) - 1)
			for _, e := range lines {
				// The stream entry e is already the packed tag (line<<1 |
				// write), so a hit's dirty-merge and a miss's fill use e
				// directly.
				set := (e >> 1) & mask
				t := tags[set]
				if t^e < 2 {
					tags[set] = t | e&dirtyBit
					continue
				}
				c.misses++
				if t != invalidTag && t&dirtyBit != 0 {
					c.writebacks++
				}
				tags[set] = e
			}
		}
		return
	}
	counts := g.runCounts
	for _, c := range g.caches {
		if g.rleOK {
			for j, e := range lines {
				c.accessLineRun(e>>1, e&1 != 0, uint64(counts[j]))
			}
		} else {
			// Not collapsed (counts are all 1): the exact per-access
			// path, which handles flush intervals and no-write-allocate.
			for _, e := range lines {
				c.accessLine(e>>1, e&1 != 0)
			}
		}
	}
}

// Caches returns the member simulators in construction order.
func (g *Group) Caches() []*Cache { return g.caches }

// DistinctLines returns the number of distinct cache lines referenced.
// With sharding active it drains in-flight work first.
func (g *Group) DistinctLines() uint64 {
	g.Drain()
	n := g.seen.distinct()
	for _, s := range g.shards {
		n += s.seen.distinct()
	}
	return n
}

// Results summarizes every member cache. With sharding active it drains
// in-flight work and folds the per-shard counters into the totals.
func (g *Group) Results() []Result {
	g.Drain()
	out := make([]Result, len(g.caches))
	cold := g.DistinctLines()
	for i, c := range g.caches {
		res := Result{Config: c.cfg, Accesses: c.accesses, Misses: c.misses, ColdLines: cold}
		for _, s := range g.shards {
			res.Accesses += s.stats[i].accesses
			res.Misses += s.stats[i].misses
		}
		out[i] = res
	}
	return out
}
