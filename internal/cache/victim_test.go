package cache

import (
	"testing"

	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

func TestVictimRescuesConflicts(t *testing.T) {
	// Two lines ping-ponging on one set of a direct-mapped cache: the
	// plain cache misses every access after the first two; a 4-entry
	// victim buffer turns all of those into victim hits.
	plain := New(Config{Size: 128})
	victim := NewVictim(Config{Size: 128}, 4)
	for i := 0; i < 100; i++ {
		for _, addr := range []uint64{0, 128} {
			r := trace.Ref{Addr: addr, Size: 4}
			plain.Ref(r)
			victim.Ref(r)
		}
	}
	if plain.Misses() != 200 {
		t.Errorf("plain cache misses = %d, want 200 (ping-pong)", plain.Misses())
	}
	if victim.Misses() != 2 {
		t.Errorf("victim cache full misses = %d, want 2 cold", victim.Misses())
	}
	if victim.VictimHits() != 198 {
		t.Errorf("victim hits = %d, want 198", victim.VictimHits())
	}
	if victim.Accesses() != 200 {
		t.Errorf("accesses = %d", victim.Accesses())
	}
}

func TestVictimLRUEviction(t *testing.T) {
	// 1-entry victim buffer: three-way ping-pong cannot be rescued.
	v := NewVictim(Config{Size: 128}, 1)
	for i := 0; i < 50; i++ {
		for _, addr := range []uint64{0, 128, 256} {
			v.Ref(trace.Ref{Addr: addr, Size: 4})
		}
	}
	if v.VictimHits() != 0 {
		t.Errorf("1-entry buffer rescued %d of a 3-way ping-pong", v.VictimHits())
	}
	// But a 2-entry buffer rescues everything after warmup.
	v2 := NewVictim(Config{Size: 128}, 2)
	for i := 0; i < 50; i++ {
		for _, addr := range []uint64{0, 128, 256} {
			v2.Ref(trace.Ref{Addr: addr, Size: 4})
		}
	}
	if v2.Misses() != 3 {
		t.Errorf("2-entry buffer misses = %d, want 3 cold", v2.Misses())
	}
}

func TestVictimNeverWorseThanPlain(t *testing.T) {
	plain := New(Config{Size: 1024})
	victim := NewVictim(Config{Size: 1024}, 4)
	r := rng.New(31)
	for i := 0; i < 50000; i++ {
		ref := trace.Ref{Addr: r.Uint64n(16 << 10), Size: 4}
		plain.Ref(ref)
		victim.Ref(ref)
	}
	if victim.Misses() > plain.Misses() {
		t.Errorf("victim cache missed more (%d) than plain (%d)", victim.Misses(), plain.Misses())
	}
	if victim.MissRate() > plain.MissRate() {
		t.Error("miss rate ordering violated")
	}
	if victim.Config().Size != 1024 || victim.Entries() != 4 {
		t.Error("config accessors wrong")
	}
}

func TestVictimPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewVictim(Config{Size: 128, Assoc: 2}, 4) },
		func() { NewVictim(Config{Size: 128}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFlushInterval(t *testing.T) {
	// Without flushes, a resident working set hits forever; with a
	// flush every 100 accesses, misses recur.
	plain := New(Config{Size: 4096})
	flushy := New(Config{Size: 4096, FlushInterval: 100})
	for i := 0; i < 10000; i++ {
		addr := uint64(i%8) * 32
		r := trace.Ref{Addr: addr, Size: 4}
		plain.Ref(r)
		flushy.Ref(r)
	}
	if plain.Misses() != 8 {
		t.Errorf("plain misses = %d, want 8 cold", plain.Misses())
	}
	if flushy.Misses() < 8*90 {
		t.Errorf("flushing cache misses = %d, want ~%d (8 per flush)", flushy.Misses(), 8*100)
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c := New(Config{Size: 4096, NoWriteAllocate: true})
	// Write miss: counted, not filled.
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Write})
	if c.Misses() != 1 {
		t.Fatalf("write miss not counted")
	}
	// A following read to the same line still misses (line not filled).
	c.Ref(trace.Ref{Addr: 8, Size: 4, Kind: trace.Read})
	if c.Misses() != 2 {
		t.Errorf("line was filled on a write miss")
	}
	// Now the read filled it: writes and reads hit.
	c.Ref(trace.Ref{Addr: 4, Size: 4, Kind: trace.Write})
	c.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Read})
	if c.Misses() != 2 {
		t.Errorf("hits after fill miscounted: %d", c.Misses())
	}
	// Set-associative variant behaves the same way.
	sa := New(Config{Size: 4096, Assoc: 4, NoWriteAllocate: true})
	sa.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Write})
	sa.Ref(trace.Ref{Addr: 0, Size: 4, Kind: trace.Read})
	if sa.Misses() != 2 {
		t.Errorf("assoc no-write-allocate: %d misses, want 2", sa.Misses())
	}
}
