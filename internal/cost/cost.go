// Package cost implements the instruction-count execution model used
// throughout the reproduction.
//
// The paper measures execution time in machine instructions (via the QPT
// tool) and splits it into time spent in the application proper versus
// time spent inside malloc and free (Figure 1). It then estimates total
// execution time on a machine with a cache as
//
//	T = I + M·P·D
//
// where I is the instruction count, M the data-cache miss rate, P the
// miss penalty in cycles and D the number of data references (Section
// 4.2, Figures 4/5, Tables 4/5). Package cost provides the "I" side of
// that model: a Meter that accumulates instruction charges attributed to
// one of several domains (application, malloc, free).
package cost

import (
	"encoding/json"
	"fmt"
)

// Domain identifies who is being charged for instructions.
type Domain uint8

const (
	// App is application compute, including the application's own loads
	// and stores.
	App Domain = iota
	// Malloc is time inside an allocation call.
	Malloc
	// Free is time inside a deallocation call.
	Free

	numDomains
)

// NumDomains is the number of cost domains, for callers that keep
// per-domain tables indexed by Domain.
const NumDomains = int(numDomains)

// String returns a short human-readable domain name.
func (d Domain) String() string {
	switch d {
	case App:
		return "app"
	case Malloc:
		return "malloc"
	case Free:
		return "free"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// Meter accumulates instruction counts per domain. The zero value is a
// ready-to-use meter charging the App domain.
type Meter struct {
	instr [numDomains]uint64
	cur   Domain
}

// Charge adds n instructions to the current domain.
func (m *Meter) Charge(n uint64) { m.instr[m.cur] += n }

// ChargeTo adds n instructions to a specific domain without switching.
func (m *Meter) ChargeTo(d Domain, n uint64) { m.instr[d] += n }

// Enter switches the current domain and returns the previous one, so
// callers can restore it with a deferred Enter(prev).
func (m *Meter) Enter(d Domain) (prev Domain) {
	prev = m.cur
	m.cur = d
	return prev
}

// Current returns the domain currently being charged.
func (m *Meter) Current() Domain { return m.cur }

// Instr returns the instructions charged to domain d.
func (m *Meter) Instr(d Domain) uint64 { return m.instr[d] }

// AllocInstr returns the instructions charged to malloc plus free.
func (m *Meter) AllocInstr() uint64 { return m.instr[Malloc] + m.instr[Free] }

// Total returns the instructions charged across all domains.
func (m *Meter) Total() uint64 {
	var t uint64
	for _, v := range m.instr {
		t += v
	}
	return t
}

// AllocFraction returns the fraction of all instructions spent in malloc
// and free: the quantity plotted in the paper's Figure 1. It returns 0
// for an empty meter.
func (m *Meter) AllocFraction() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.AllocInstr()) / float64(t)
}

// Reset zeroes all counters and returns to the App domain.
func (m *Meter) Reset() { *m = Meter{} }

// Snapshot is a copyable summary of a meter.
type Snapshot struct {
	App    uint64
	Malloc uint64
	Free   uint64
}

// Snapshot returns the current per-domain totals.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{App: m.instr[App], Malloc: m.instr[Malloc], Free: m.instr[Free]}
}

// Total returns the instruction total of the snapshot.
func (s Snapshot) Total() uint64 { return s.App + s.Malloc + s.Free }

// AllocFraction returns the fraction of the snapshot's instructions
// spent in malloc and free (Figure 1's y-axis), 0 for an empty
// snapshot. It mirrors Meter.AllocFraction for code that holds only
// the copyable summary.
func (s Snapshot) AllocFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Malloc+s.Free) / float64(t)
}

// MarshalJSON serializes the snapshot with its derived totals, so JSON
// consumers get the Figure 1 quantity without recomputing it.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		App           uint64  `json:"app"`
		Malloc        uint64  `json:"malloc"`
		Free          uint64  `json:"free"`
		Total         uint64  `json:"total"`
		AllocFraction float64 `json:"alloc_fraction"`
	}{s.App, s.Malloc, s.Free, s.Total(), s.AllocFraction()})
}

// Sub returns the difference s - o, field by field. Fields that would
// underflow — snapshots subtracted out of order — clamp to zero rather
// than wrapping, so interval arithmetic degrades to an empty interval
// instead of a garbage one.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Snapshot{App: sub(s.App, o.App), Malloc: sub(s.Malloc, o.Malloc), Free: sub(s.Free, o.Free)}
}
