package cost

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestMeterDomains(t *testing.T) {
	var m Meter
	m.Charge(10) // App by default
	prev := m.Enter(Malloc)
	if prev != App {
		t.Errorf("prev domain = %v, want App", prev)
	}
	m.Charge(5)
	m.Enter(Free)
	m.Charge(3)
	m.Enter(prev)
	m.Charge(2)
	if m.Instr(App) != 12 || m.Instr(Malloc) != 5 || m.Instr(Free) != 3 {
		t.Errorf("instr: app=%d malloc=%d free=%d", m.Instr(App), m.Instr(Malloc), m.Instr(Free))
	}
	if m.Total() != 20 || m.AllocInstr() != 8 {
		t.Errorf("total=%d alloc=%d", m.Total(), m.AllocInstr())
	}
	if got, want := m.AllocFraction(), 8.0/20.0; got != want {
		t.Errorf("alloc fraction = %v, want %v", got, want)
	}
}

func TestMeterChargeTo(t *testing.T) {
	var m Meter
	m.ChargeTo(Free, 7)
	if m.Current() != App {
		t.Error("ChargeTo must not switch domains")
	}
	if m.Instr(Free) != 7 {
		t.Errorf("free=%d", m.Instr(Free))
	}
}

func TestMeterResetAndEmpty(t *testing.T) {
	var m Meter
	if m.AllocFraction() != 0 {
		t.Error("empty meter fraction should be 0")
	}
	m.Charge(4)
	m.Enter(Malloc)
	m.Reset()
	if m.Total() != 0 || m.Current() != App {
		t.Error("reset incomplete")
	}
}

func TestSnapshot(t *testing.T) {
	var m Meter
	m.Charge(1)
	m.Enter(Malloc)
	m.Charge(2)
	s1 := m.Snapshot()
	m.Charge(5)
	s2 := m.Snapshot()
	d := s2.Sub(s1)
	if d.Malloc != 5 || d.App != 0 || d.Free != 0 {
		t.Errorf("diff = %+v", d)
	}
	if s2.Total() != 8 {
		t.Errorf("total = %d", s2.Total())
	}
}

// TestSnapshotSubUnderflow: out-of-order subtraction clamps each field
// to zero instead of wrapping to huge values.
func TestSnapshotSubUnderflow(t *testing.T) {
	older := Snapshot{App: 10, Malloc: 5, Free: 2}
	newer := Snapshot{App: 100, Malloc: 50, Free: 20}
	d := older.Sub(newer)
	if d != (Snapshot{}) {
		t.Errorf("out-of-order Sub = %+v, want zeroed fields", d)
	}
	// Mixed direction: only the underflowing fields clamp.
	mixed := Snapshot{App: 200, Malloc: 1, Free: 30}.Sub(newer)
	if mixed != (Snapshot{App: 100, Malloc: 0, Free: 10}) {
		t.Errorf("mixed Sub = %+v", mixed)
	}
}

func TestSnapshotAllocFraction(t *testing.T) {
	if f := (Snapshot{}).AllocFraction(); f != 0 {
		t.Errorf("empty snapshot fraction = %v", f)
	}
	s := Snapshot{App: 60, Malloc: 30, Free: 10}
	if got, want := s.AllocFraction(), 0.4; got != want {
		t.Errorf("fraction = %v, want %v", got, want)
	}
}

func TestSnapshotMarshalJSON(t *testing.T) {
	s := Snapshot{App: 60, Malloc: 30, Free: 10}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		App           uint64  `json:"app"`
		Malloc        uint64  `json:"malloc"`
		Free          uint64  `json:"free"`
		Total         uint64  `json:"total"`
		AllocFraction float64 `json:"alloc_fraction"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 100 || out.AllocFraction != 0.4 || out.Malloc != 30 {
		t.Errorf("marshalled %s", data)
	}
}

func TestDomainString(t *testing.T) {
	if App.String() != "app" || Malloc.String() != "malloc" || Free.String() != "free" {
		t.Error("domain names wrong")
	}
	if Domain(7).String() == "" {
		t.Error("unknown domain must still render")
	}
}

// Property: total is always the sum of per-domain charges, in any
// charge/switch interleaving.
func TestQuickMeterConservation(t *testing.T) {
	prop := func(ops []uint16) bool {
		var m Meter
		var sum uint64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				m.Enter(App)
			case 1:
				m.Enter(Malloc)
			case 2:
				m.Enter(Free)
			case 3:
				m.Charge(uint64(op))
				sum += uint64(op)
			}
		}
		return m.Total() == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
