// Package suite assembles the alloclint analyzer suite: the eight
// repo-specific invariant checkers that mechanise the allocator
// contract (allocerrors), the single-source machine geometry
// (wordaddr), the byte-identical-run guarantees (determinism), the
// shadow oracle's zero-perturbation property (puresim), the
// registry/battery closure (registry), and — on the shared
// interprocedural call graph (internal/analysis/interproc) — the
// zero-allocation hot-path contract (hotalloc), the serving tier's
// lock discipline (locksafe) and cancellation responsiveness
// (ctxpoll). cmd/alloclint runs them all; the meta-test in this
// package keeps the repository itself clean.
package suite

import (
	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/allocerrors"
	"mallocsim/internal/analysis/ctxpoll"
	"mallocsim/internal/analysis/determinism"
	"mallocsim/internal/analysis/hotalloc"
	"mallocsim/internal/analysis/locksafe"
	"mallocsim/internal/analysis/puresim"
	"mallocsim/internal/analysis/registry"
	"mallocsim/internal/analysis/wordaddr"
)

// Analyzers returns the full alloclint suite, in reporting-name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocerrors.Analyzer,
		ctxpoll.Analyzer,
		determinism.Analyzer,
		hotalloc.Analyzer,
		locksafe.Analyzer,
		puresim.Analyzer,
		registry.Analyzer,
		wordaddr.Analyzer,
	}
}

// Names returns the suite's analyzer names, in order — the known-name
// set drivers hand to analysis.WithKnownNames for the stale-
// suppression audit.
func Names() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
