// Package suite assembles the alloclint analyzer suite: the five
// repo-specific invariant checkers that mechanise the allocator
// contract (allocerrors), the single-source machine geometry
// (wordaddr), the byte-identical-run guarantees (determinism), the
// shadow oracle's zero-perturbation property (puresim) and the
// registry/battery closure (registry). cmd/alloclint runs them all;
// the meta-test in this package keeps the repository itself clean.
package suite

import (
	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/allocerrors"
	"mallocsim/internal/analysis/determinism"
	"mallocsim/internal/analysis/puresim"
	"mallocsim/internal/analysis/registry"
	"mallocsim/internal/analysis/wordaddr"
)

// Analyzers returns the full alloclint suite, in reporting-name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocerrors.Analyzer,
		determinism.Analyzer,
		puresim.Analyzer,
		registry.Analyzer,
		wordaddr.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
