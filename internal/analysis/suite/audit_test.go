package suite_test

import (
	"strings"
	"testing"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/load"
	"mallocsim/internal/analysis/suite"
)

// TestSuppressionAudit runs the full suite over the audit fixture and
// checks both audit classes fire: an unknown analyzer name (only
// diagnosable when the driver declares the known set) and a stale
// directive for an analyzer that ran but found nothing to suppress.
func TestSuppressionAudit(t *testing.T) {
	loader := load.NewLoader("", "../testdata/src")
	pkg, err := loader.Load("audit")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*load.Package{pkg}

	diags, err := analysis.Run(pkgs, loader.Fset(), suite.Analyzers(),
		analysis.WithKnownNames(suite.Names()))
	if err != nil {
		t.Fatal(err)
	}
	var unknown, stale int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, `names unknown analyzer "nosuchanalyzer"`):
			unknown++
		case strings.Contains(d.Message, "lint:allow determinism suppresses no diagnostic here"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
		if d.Analyzer != "lint" {
			t.Errorf("audit diagnostic attributed to %q, want \"lint\": %s", d.Analyzer, d)
		}
	}
	if unknown != 1 || stale != 1 {
		t.Errorf("got %d unknown-name and %d stale findings, want 1 and 1", unknown, stale)
	}

	// Without WithKnownNames the unknown-name audit stays silent (a
	// single-analyzer harness cannot vouch for the full suite), but the
	// stale check still applies to analyzers that ran.
	diags, err = analysis.Run(pkgs, loader.Fset(), suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown analyzer") {
			t.Errorf("unknown-name audit fired without WithKnownNames: %s", d)
		}
	}
}
