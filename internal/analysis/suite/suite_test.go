package suite_test

import (
	"testing"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/load"
	"mallocsim/internal/analysis/suite"
)

// TestRepositoryClean is the meta-test: the repository itself must lint
// clean under the full suite, so a change that trips an analyzer fails
// go test ./... as well as the CI lint job.
func TestRepositoryClean(t *testing.T) {
	root, modPath, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(modPath, root)
	pkgs, err := loader.Tree()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, loader.Fset(), suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if got := suite.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := suite.ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
