package suite_test

import (
	"testing"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/escape"
	"mallocsim/internal/analysis/load"
	"mallocsim/internal/analysis/suite"
)

// TestRepositoryClean is the meta-test: the repository itself must lint
// clean under the full suite — stale-suppression audit included — so a
// change that trips an analyzer fails go test ./... as well as the CI
// lint job. Compiler escape facts are ingested when the toolchain
// cooperates (mirroring alloclint -escapes auto); without them the
// syntactic checks still run and the tree must still be clean.
func TestRepositoryClean(t *testing.T) {
	root, modPath, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(modPath, root)
	pkgs, err := loader.Tree()
	if err != nil {
		t.Fatal(err)
	}
	opts := []analysis.RunOption{analysis.WithKnownNames(suite.Names())}
	if facts, err := escape.Collect(root); err != nil {
		t.Logf("escape ingestion unavailable, hotalloc runs syntactic-only: %v", err)
	} else {
		opts = append(opts, analysis.WithEscapes(facts))
	}
	diags, err := analysis.Run(pkgs, loader.Fset(), suite.Analyzers(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

func TestNames(t *testing.T) {
	names := suite.Names()
	if len(names) != len(suite.Analyzers()) {
		t.Fatalf("Names() returned %d names for %d analyzers", len(names), len(suite.Analyzers()))
	}
	for i, a := range suite.Analyzers() {
		if names[i] != a.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], a.Name)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("suite not in name order: %q before %q", names[i-1], names[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if got := suite.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := suite.ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
