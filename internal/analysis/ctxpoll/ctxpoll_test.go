package ctxpoll_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/ctxpoll"
)

// The mem and cost fixture packages are loaded alongside the scoped
// sim fixture so the call graph indexes the work primitives the
// analyzer's scaling closure is seeded with.
func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxpoll.Analyzer, "ctxp/sim", "mem", "cost")
}
