// Package ctxpoll enforces cancellation responsiveness in the long-
// running tiers (sim, workload, paper, serve): every loop whose trip
// count scales with trace length or job count must reach a ctx.Err()
// or ctx.Done() poll within a bounded number of iterations, so Ctrl-C
// on a 400-million-reference replay or a serve-tier shutdown takes
// effect in milliseconds rather than after the trace drains.
//
// The property is interprocedural twice over. First, "scales with the
// trace" is recognized by what the loop body reaches: the per-
// reference work primitives (mem.Memory.Touch/TouchRun/ReadWord/
// WriteWord, mem.Region.Sbrk, cost.Meter.Charge/ChargeTo) or another
// context-taking function, through any depth of helpers. Second, the
// poll itself may live in a callee — a loop whose body calls
// paper.Runner.Result is responsive because Result polls at entry —
// so the check accepts any body that reaches a poll through calls, not
// just loops with a literal ctx.Err() in them. Both closures come from
// the shared call graph (internal/analysis/interproc), with interface
// dispatch expanded to in-tree implementations.
//
// Amortized polling is the sanctioned idiom and passes: a guard like
//
//	if ops%cancelCheckEvery == 0 && ctx.Err() != nil { return ... }
//
// counts, because the poll is still reached within a bounded number of
// iterations. Only functions that take a context.Context are checked —
// a helper without one cannot poll, and its loops are charged to the
// context-taking caller whose body (transitively) runs them.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/interproc"
)

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "loops in sim/workload/paper/serve that scale with trace length or job count must reach a ctx.Err()/ctx.Done() poll within a bounded number of iterations, directly or through a callee",
	Run:  run,
}

// scoped names the packages whose loops drive simulated time or jobs.
var scoped = []string{"sim", "workload", "paper", "serve"}

func inScope(path string) bool {
	for _, name := range scoped {
		if analysis.PkgIs(path, name) || analysis.PkgUnder(path, name) {
			return true
		}
	}
	return false
}

// workPrimitives lists the per-reference work functions by package
// path suffix, receiver type and method name: a loop that reaches one
// of these runs once per simulated reference (or a constant fraction
// of that) and therefore scales with the trace.
var workPrimitives = map[string]map[string]map[string]bool{
	"mem": {
		"Memory": {"Touch": true, "TouchRun": true, "ReadWord": true, "WriteWord": true},
		"Region": {"Sbrk": true},
	},
	"cost": {
		"Meter": {"Charge": true, "ChargeTo": true},
	},
}

type closures struct {
	poll *interproc.Reach // functions that poll ctx somewhere in their body
	work *interproc.Reach // functions that reach a per-reference work primitive
}

type sharedKey struct{}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	g := interproc.Of(pass.All, pass.Shared)
	c, ok := pass.Shared[sharedKey{}].(*closures)
	if !ok {
		c = &closures{
			poll: g.Reach(pollSeed, true),
			work: g.Reach(workSeed, true),
		}
		pass.Shared[sharedKey{}] = c
	}
	for _, fn := range g.Funcs() {
		if fn.Pkg.Path != pass.Path {
			continue
		}
		if !takesContext(fn.Obj) {
			continue
		}
		checkLoops(pass, g, c, fn)
	}
	return nil
}

// takesContext reports whether the function has a context.Context
// parameter (the convention puts it first, but any position counts).
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkLoops examines every for/range loop in the declaration,
// including loops inside its function literals (a goroutine launched
// by a ctx-taking function inherits its cancellation duty).
func checkLoops(pass *analysis.Pass, g *interproc.Graph, c *closures, fn *interproc.Func) {
	callEdges := map[*ast.CallExpr][]interproc.Call{}
	for _, edge := range fn.Calls() {
		callEdges[edge.Expr] = append(callEdges[edge.Expr], edge)
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		unbounded := false
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
			// `for {}` and `for cond {}` have no init/post bounding the
			// trip count; treat them as scaling unless proven responsive.
			unbounded = loop.Init == nil && loop.Post == nil
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		scaling, why := scalingCall(fn, c, callEdges, body)
		if !scaling && unbounded {
			scaling, why = true, "its trip count has no syntactic bound"
		}
		if scaling && !polls(fn, c, callEdges, body) {
			pass.Reportf(n.Pos(),
				"loop scales with the workload (%s) but never reaches a ctx.Err()/ctx.Done() poll; add an amortized check like `if ops%%1024 == 0 && ctx.Err() != nil { return ctx.Err() }`", why)
		}
		return true
	})
}

// scalingCall reports whether the loop body (transitively) performs
// per-reference work or calls another context-taking function, with a
// description for the diagnostic.
func scalingCall(fn *interproc.Func, c *closures, callEdges map[*ast.CallExpr][]interproc.Call, body *ast.BlockStmt) (bool, string) {
	found := ""
	interproc.InspectBody(body, func(n ast.Node) {
		if found != "" {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, edge := range callEdges[call] {
			if c.work.Contains(edge.Callee) {
				found = "it drives " + witness(c.work, edge.Callee)
				return
			}
			if takesContext(edge.Callee) {
				found = "it calls the context-taking " + interproc.FuncLabel(edge.Callee)
				return
			}
		}
	})
	return found != "", found
}

// witness renders "Memory.Touch" or "runStep → Meter.Charge".
func witness(r *interproc.Reach, fn *types.Func) string {
	if why := r.Why(fn); why != "" {
		return interproc.FuncLabel(fn) + " (" + why + ")"
	}
	return interproc.FuncLabel(fn)
}

// polls reports whether the loop body reaches a context poll: a direct
// ctx.Err()/ctx.Done() use, or a call into the poll closure.
func polls(fn *interproc.Func, c *closures, callEdges map[*ast.CallExpr][]interproc.Call, body *ast.BlockStmt) bool {
	found := false
	interproc.InspectBody(body, func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isPollSelector(fn.Info, n) {
				found = true
			}
		case *ast.CallExpr:
			for _, edge := range callEdges[n] {
				if c.poll.Contains(edge.Callee) {
					found = true
					return
				}
			}
		}
	})
	return found
}

// isPollSelector matches ctx.Err / ctx.Done on a context-typed
// operand (covering ctx.Err() calls, <-ctx.Done() receives and select
// cases alike).
func isPollSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if name != "Err" && name != "Done" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isContext(t)
}

// pollSeed seeds the poll closure: the function's own body touches
// ctx.Err or ctx.Done.
func pollSeed(fn *interproc.Func) string {
	found := ""
	interproc.InspectBody(fn.Decl.Body, func(n ast.Node) {
		if found != "" {
			return
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && isPollSelector(fn.Info, sel) {
			found = "polls ctx." + sel.Sel.Name
		}
	})
	return found
}

// workSeed seeds the work closure: the function is one of the per-
// reference primitives.
func workSeed(fn *interproc.Func) string {
	byRecv, ok := workPrimitives[pkgTail(fn.Pkg.Path)]
	if !ok {
		return ""
	}
	sig, _ := fn.Obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	if methods := byRecv[named.Obj().Name()]; methods != nil && methods[fn.Obj.Name()] {
		return "the per-reference primitive " + named.Obj().Name() + "." + fn.Obj.Name()
	}
	return ""
}

// pkgTail returns the last path segment.
func pkgTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
