// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixtures, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture tree lives under <testdata>/src; each package's import path
// is its directory relative to that root. Expected diagnostics are
// trailing comments on the offending line:
//
//	x := p % 4 // want `raw word-size literal`
//
// The string after want is a regular expression (quoted or backquoted
// Go string literal) that must match a diagnostic message reported on
// that line; several expectations may follow one want. Diagnostics
// suppressed by //lint:allow directives are filtered before matching,
// so fixtures can (and do) prove the suppression mechanism works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/load"
)

// Run loads the fixture packages at the given import paths (relative to
// testdata/src) and checks analyzer's diagnostics against the // want
// expectations in their sources.
func Run(t *testing.T, testdata string, analyzer *analysis.Analyzer, paths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader("", root)
	var pkgs []*load.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, loader.Fset(), []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}
	wants := collectWants(t, loader, pkgs)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, loader *load.Loader, pkgs []*load.Package) []want {
	t.Helper()
	var wants []want
	fset := loader.Fset()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					pats, err := splitPatterns(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want expectation: %v", pos.Filename, pos.Line, err)
					}
					for _, p := range pats {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of quoted or backquoted Go string
// literals.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expectation must be a quoted or backquoted string, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == s[0] && (s[0] == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated string in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %w", s[:end+1], err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty expectation")
	}
	return out, nil
}
