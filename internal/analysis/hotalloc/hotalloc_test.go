package hotalloc_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hot/cache", "hot/vm", "hot/trace")
}
