// Package hotalloc enforces the zero-allocation contract on the
// simulation hot paths: the per-block and per-reference functions of
// the cache, VM and trace layers (the fused cache.Group sweep,
// lineSet.add/addRange, the sampled vm.StackSim probe, the trace.Block
// append paths and mem.Memory's touch/emit pipeline) execute once per
// simulated memory reference, so a single heap allocation there is
// multiplied by hundreds of millions and drowns the placement effects
// the paper measures in harness noise.
//
// Two layers of evidence feed the same diagnostic stream:
//
//   - Syntactic: closures, make/new, map and slice literals,
//     address-taken composite literals, string concatenation,
//     fmt/errors/sort/strconv calls and concrete-to-interface
//     conversions inside a hot function are flagged directly.
//   - Compiler facts: when the driver ingests `go build -gcflags=-m`
//     output (internal/analysis/escape), every "escapes to heap" /
//     "moved to heap" diagnostic whose position falls inside a hot
//     function body is flagged too — this is the ground truth that
//     sees inlining and call-site boxing the syntax cannot.
//
// append is deliberately exempt: amortized slice growth into a
// warm, reused buffer is the hot paths' working idiom, and the
// AllocsPerRun regression tests (cache/vm zeroalloc tests) pin the
// warmed steady state to 0 allocs/op dynamically. Cold-path helpers
// called from hot functions (lineSet.page, mem.Memory.page) are not in
// the hot set: materializing a page on first touch is the documented
// amortized exception, and the dynamic tests hold it to account.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mallocsim/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "per-reference hot paths in cache/vm/trace/mem must not allocate: no closures, boxing, make/new or escaping values (append into reused buffers is exempt and pinned by AllocsPerRun tests)",
	Run:  run,
}

// hotFuncs maps package (path-suffix) → receiver type name → the
// method names under the zero-alloc contract. Matching is
// per-function, not transitive: a hot function may call a documented
// cold-path helper (page materialization) without inheriting its
// allocations.
var hotFuncs = map[string]map[string]map[string]bool{
	"cache": {
		"Group":      set("Ref", "accessLine", "Block", "fusedScan", "probeEntry", "probeRun", "decompose", "replay"),
		"Cache":      set("Ref", "Block", "accessLine", "accessLineRun"),
		"lineSet":    set("add", "addRange"),
		"groupShard": set("process", "access"),
		"Sharing":    set("Ref", "Refs", "Block", "access", "runRow", "accessLine"),
	},
	"vm": {
		"StackSim": set("Ref", "Block", "foldRepeats", "accessPage", "record"),
		"mtfList":  set("access"),
	},
	"trace": {
		"Block": set("Append", "AppendRun", "AppendRunTid", "AppendRefs", "Reset"),
	},
	"mem": {
		"Memory": set("Touch", "TouchRun", "emit"),
	},
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// allocatingCall classifies calls to standard-library helpers that
// always heap-allocate. strconv's Append* family and everything not
// listed stay legal.
func allocatingCall(callee *types.Func) string {
	if callee.Pkg() == nil {
		return ""
	}
	pkg, name := callee.Pkg().Path(), callee.Name()
	switch pkg {
	case "fmt":
		return "fmt." + name + " allocates (and boxes its operands)"
	case "errors":
		return "errors." + name + " allocates"
	case "sort":
		if strings.HasPrefix(name, "Slice") {
			return "sort." + name + " boxes its comparator closure"
		}
	case "strconv":
		if !strings.HasPrefix(name, "Append") {
			return "strconv." + name + " allocates its result string (use the Append* forms into a reused buffer)"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "Fields", "ToUpper", "ToLower", "Map", "Clone":
			return "strings." + name + " allocates its result"
		}
	}
	return ""
}

func run(pass *analysis.Pass) error {
	var byRecv map[string]map[string]bool
	for pkgName, m := range hotFuncs {
		if analysis.PkgIs(pass.Path, pkgName) {
			byRecv = m
			break
		}
	}
	if byRecv == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			recv := recvTypeName(fd)
			if methods := byRecv[recv]; methods != nil && methods[fd.Name.Name] {
				label := recv + "." + fd.Name.Name
				checkBody(pass, fd, label)
				checkEscapes(pass, fd, label)
			}
		}
	}
	return nil
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkBody applies the syntactic allocation checks to one hot
// function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, label string) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in hot function %s allocates per call; hoist it to a method or a reused field", label)
			return false // its body is the closure's problem, not a second report per node
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite literal in hot function %s escapes to the heap; reuse a preallocated value instead", label)
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot function %s allocates; hoist the map to a reused field", label)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot function %s allocates its backing array; reuse a buffer", label)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(),
						"string concatenation in hot function %s allocates; format off the hot path or append into a reused []byte", label)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, info, n, label)
		}
		return true
	})
}

// checkCall flags builtin allocators, allocating stdlib helpers and
// concrete-to-interface argument boxing.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, label string) {
	switch callee := calleeObject(info, call).(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			pass.Reportf(call.Pos(),
				"make in hot function %s allocates per call; size the buffer at construction (append growth into a warm buffer is the sanctioned idiom)", label)
		case "new":
			pass.Reportf(call.Pos(), "new in hot function %s allocates; reuse a preallocated value", label)
		}
		return
	case *types.Func:
		if why := allocatingCall(callee); why != "" {
			pass.Reportf(call.Pos(), "%s in hot function %s; move it off the per-reference path", why, label)
			return
		}
		checkBoxing(pass, info, call, callee, label)
	}
}

// checkBoxing reports arguments whose concrete values convert to
// interface parameters at a hot call site — each such conversion heap-
// allocates the boxed value (small-integer and zero-size exceptions
// are too fragile to bless statically; the escape facts confirm the
// real ones).
func checkBoxing(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, callee *types.Func, label string) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
		}
		if param == nil || !types.IsInterface(param.Underlying()) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"argument boxes %s into interface %s in hot function %s; keep hot calls monomorphic",
			at.Type.String(), param.String(), label)
	}
}

// checkEscapes overlays the compiler's escape facts: any heap fact
// positioned inside this hot function's body is a violation.
func checkEscapes(pass *analysis.Pass, fd *ast.FuncDecl, label string) {
	if len(pass.Escapes) == 0 {
		return
	}
	start := pass.Fset.Position(fd.Body.Pos())
	end := pass.Fset.Position(fd.Body.End())
	tokFile := pass.Fset.File(fd.Body.Pos())
	for _, fact := range pass.Escapes {
		if fact.File != start.Filename || fact.Line < start.Line || fact.Line > end.Line {
			continue
		}
		pos := tokFile.LineStart(fact.Line)
		pass.Reportf(pos,
			"compiler escape analysis: %s in hot function %s (go build -gcflags=-m)", fact.Msg, label)
	}
}

// calleeObject resolves the called function, seeing through parens.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
