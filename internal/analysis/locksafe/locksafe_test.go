package locksafe_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, "../testdata", locksafe.Analyzer, "lock/serve")
}
