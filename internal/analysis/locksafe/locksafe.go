// Package locksafe enforces the serving tier's lock discipline in the
// serve, store and cache packages: no mutex may be held across an
// operation that can block — channel sends and receives, selects
// without a default, Clock waits, file or network I/O, or a call that
// transitively reaches any of those — and distinct locks must be
// acquired in one consistent order.
//
// A lock held across a blocking operation turns one slow disk read or
// one full channel into a stall of every request behind the mutex; an
// inconsistent acquisition order between the result-cache and store
// tiers is a deadlock waiting for load. Both properties are
// interprocedural: the blocking operation usually hides two or three
// calls down (handleSubmit → lookupReport → DiskStore.Get →
// os.ReadFile), and interface dispatch (store.Store, Clock) stands
// between the lock site and the syscall. The analyzer therefore runs
// on the whole-tree call graph (internal/analysis/interproc): a
// may-block closure seeded by syntactic blocking operations and
// blocking standard-library calls, expanded through in-tree interface
// implementations, plus a transitive may-acquire summary for the
// ordering check. Within each function a must-hold lock lattice flows
// through the statement lists (interproc.Flow), so the idiomatic
// lock-check-unlock-return early exits stay precise.
//
// Known boundaries, inherited from the engine: goroutine bodies are
// analyzed as their own activations (a `go` statement neither blocks
// the caller nor runs under the caller's locks), dynamic calls through
// plain function values are invisible, and *Locked-suffixed helpers
// are analyzed at their call sites, where the lock is actually held.
// Deliberate holds — the store's index write, which must be atomic
// with the registration it persists — carry justified //lint:allow
// directives at the call site.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mallocsim/internal/analysis"
	"mallocsim/internal/analysis/interproc"
)

// Analyzer is the locksafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "in serve/store/cache no mutex is held across channel ops, Clock waits, I/O or calls that may block, and locks are acquired in one consistent order",
	Run:  run,
}

// scoped names the packages under the lock discipline.
var scoped = []string{"serve", "store", "cache"}

func inScope(path string) bool {
	for _, name := range scoped {
		if analysis.PkgIs(path, name) || analysis.PkgUnder(path, name) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	c := compute(pass)
	for _, f := range c.byPkg[pass.Path] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

type finding struct {
	pos token.Pos
	msg string
}

type computed struct {
	byPkg map[string][]finding
}

type sharedKey struct{}

// compute runs the whole-tree analysis once per Run invocation and
// buckets findings by package, so each pass reports only its own.
func compute(pass *analysis.Pass) *computed {
	if c, ok := pass.Shared[sharedKey{}].(*computed); ok {
		return c
	}
	g := interproc.Of(pass.All, pass.Shared)
	a := &analyzer{
		g:          g,
		blockReach: g.Reach(blockSeed, true),
		out:        &computed{byPkg: map[string][]finding{}},
	}
	a.acquires = g.Summarize(func(fn *interproc.Func) []any {
		var locks []any
		for _, l := range a.directLocks(fn) {
			locks = append(locks, l)
		}
		return locks
	}, true)
	for _, fn := range g.Funcs() {
		if inScope(fn.Pkg.Path) {
			a.analyzeFunc(fn)
		}
	}
	a.reportCycles()
	pass.Shared[sharedKey{}] = a.out
	return a.out
}

type analyzer struct {
	g          *interproc.Graph
	blockReach *interproc.Reach
	acquires   map[*types.Func]map[any]bool
	out        *computed

	edges     []orderEdge
	edgeSeen  map[[2]types.Object]bool
	lockNames map[types.Object]string
}

// held is the must-hold lattice value: the locks provably held at a
// program point, keyed by the mutex's field or variable object.
type held map[types.Object]string // object → display label ("s.mu")

type orderEdge struct {
	from, to           types.Object
	fromLabel, toLabel string
	pos                token.Pos
	pkg                string
}

func (a *analyzer) report(pkg string, pos token.Pos, msg string) {
	a.out.byPkg[pkg] = append(a.out.byPkg[pkg], finding{pos: pos, msg: msg})
}

// analyzeFunc flows the held-lock lattice through one body.
func (a *analyzer) analyzeFunc(fn *interproc.Func) {
	callEdges := map[*ast.CallExpr][]interproc.Call{}
	for _, c := range fn.Calls() {
		callEdges[c.Expr] = append(callEdges[c.Expr], c)
	}
	reported := map[token.Pos]bool{}
	flow := &interproc.Flow[held]{
		Clone: func(h held) held {
			c := make(held, len(h))
			for k, v := range h {
				c[k] = v
			}
			return c
		},
		Meet: func(x, y held) held {
			m := held{}
			for k, v := range x {
				if _, ok := y[k]; ok {
					m[k] = v
				}
			}
			return m
		},
		Visit: func(n ast.Node, h held, nonblocking bool) {
			a.visit(fn, callEdges, reported, n, h, nonblocking)
		},
	}
	flow.Walk(fn.Decl.Body.List, held{})
}

// visit checks one executable node against the current held set.
func (a *analyzer) visit(fn *interproc.Func, callEdges map[*ast.CallExpr][]interproc.Call, reported map[token.Pos]bool, n ast.Node, h held, nonblocking bool) {
	pkg := fn.Pkg.Path
	switch n := n.(type) {
	case *ast.SelectStmt:
		if !nonblocking && len(h) > 0 && !reported[n.Pos()] {
			reported[n.Pos()] = true
			a.report(pkg, n.Pos(),
				"select with no default case may block while "+heldList(h)+" is held; release the lock first or add a default")
		}
		return // clause comms and bodies are visited separately by the walker
	case *ast.RangeStmt:
		if _, isChan := fn.Info.TypeOf(n.X).Underlying().(*types.Chan); isChan && len(h) > 0 && !reported[n.Pos()] {
			reported[n.Pos()] = true
			a.report(pkg, n.Pos(),
				"range over a channel blocks on every iteration while "+heldList(h)+" is held; release the lock around the loop")
		}
		a.inspectExpr(fn, callEdges, reported, n.X, h, false)
		return
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred work runs at return (after the body's own unlocks are
		// what they are) and go bodies run on another goroutine; neither
		// executes at this program point, and `defer mu.Unlock()`
		// deliberately leaves the lock held for the rest of the walk.
		return
	}
	a.inspectExpr(fn, callEdges, reported, n, h, nonblocking)
}

// inspectExpr deep-checks a statement or expression for channel
// operations and calls, skipping function literals (their bodies are
// separate activations).
func (a *analyzer) inspectExpr(fn *interproc.Func, callEdges map[*ast.CallExpr][]interproc.Call, reported map[token.Pos]bool, root ast.Node, h held, nonblocking bool) {
	pkg := fn.Pkg.Path
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if !nonblocking && len(h) > 0 && !reported[n.Pos()] {
				reported[n.Pos()] = true
				a.report(pkg, n.Pos(),
					"channel send may block while "+heldList(h)+" is held; release the lock first or send via a select with default")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking && len(h) > 0 && !reported[n.Pos()] {
				reported[n.Pos()] = true
				a.report(pkg, n.Pos(),
					"channel receive may block while "+heldList(h)+" is held; release the lock first")
			}
		case *ast.CallExpr:
			a.checkCall(fn, callEdges, reported, n, h)
		}
		return true
	})
}

// checkCall applies the lock transfer function and the blocking /
// ordering checks to one call site.
func (a *analyzer) checkCall(fn *interproc.Func, callEdges map[*ast.CallExpr][]interproc.Call, reported map[token.Pos]bool, call *ast.CallExpr, h held) {
	pkg := fn.Pkg.Path
	if obj, label, op := lockOp(fn.Info, call); op != 0 {
		if obj == nil {
			return // dynamic lock expression; nothing sound to track
		}
		if op > 0 {
			for _, held := range sortedHeld(h) {
				if held.obj == obj {
					continue // re-locking the same object is caught below via calls
				}
				a.addEdge(held.obj, obj, held.label, label, call.Pos(), pkg)
			}
			h[obj] = label
		} else {
			delete(h, obj)
		}
		return
	}
	if len(h) == 0 {
		// Nothing held: only the transfer function above matters.
		return
	}
	// Blocking standard-library call under a held lock.
	if callee := interproc.StaticCallee(fn.Info, call); callee != nil {
		if why := stdlibBlocking(callee); why != "" && !reported[call.Pos()] {
			reported[call.Pos()] = true
			a.report(pkg, call.Pos(),
				why+" may block while "+heldList(h)+" is held; move the I/O outside the critical section")
			return
		}
	}
	// In-tree callees: may-block closure and transitive lock acquisition.
	for _, edge := range callEdges[call] {
		if a.blockReach.Contains(edge.Callee) && !reported[call.Pos()] {
			reported[call.Pos()] = true
			a.report(pkg, call.Pos(),
				"call to "+interproc.FuncLabel(edge.Callee)+" may block ("+a.blockReach.Why(edge.Callee)+") while "+heldList(h)+" is held; restructure so the lock is released first")
		}
		for _, acq := range a.sortedAcquires(edge.Callee) {
			for _, hl := range sortedHeld(h) {
				if hl.obj == acq.obj {
					if !reported[call.Pos()] {
						reported[call.Pos()] = true
						a.report(pkg, call.Pos(),
							"call to "+interproc.FuncLabel(edge.Callee)+" may re-acquire "+hl.label+", which is already held (sync.Mutex is not reentrant: this deadlocks)")
					}
					continue
				}
				a.addEdge(hl.obj, acq.obj, hl.label, acq.label, call.Pos(), pkg)
			}
		}
	}
}

// addEdge records a lock-order edge (to acquired while from is held),
// once per ordered pair.
func (a *analyzer) addEdge(from, to types.Object, fromLabel, toLabel string, pos token.Pos, pkg string) {
	if a.edgeSeen == nil {
		a.edgeSeen = map[[2]types.Object]bool{}
	}
	key := [2]types.Object{from, to}
	if a.edgeSeen[key] {
		return
	}
	a.edgeSeen[key] = true
	a.edges = append(a.edges, orderEdge{from: from, to: to, fromLabel: fromLabel, toLabel: toLabel, pos: pos, pkg: pkg})
}

// reportCycles flags every recorded acquisition edge that lies on a
// cycle: two code paths that take the same pair of locks in opposite
// orders deadlock under contention.
func (a *analyzer) reportCycles() {
	adj := map[types.Object][]types.Object{}
	for _, e := range a.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		stack := []types.Object{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for _, e := range a.edges {
		if reaches(e.to, e.from) {
			a.report(e.pkg, e.pos,
				"lock order inversion: "+e.toLabel+" is acquired while "+e.fromLabel+" is held, but another path acquires them in the opposite order; pick one global order for this pair")
		}
	}
}

type heldLock struct {
	obj   types.Object
	label string
}

func sortedHeld(h held) []heldLock {
	out := make([]heldLock, 0, len(h))
	for obj, label := range h {
		out = append(out, heldLock{obj, label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// heldList renders the held set for a message ("s.mu" or "c.mu, s.mu").
func heldList(h held) string {
	var labels []string
	for _, hl := range sortedHeld(h) {
		labels = append(labels, hl.label)
	}
	return strings.Join(labels, ", ")
}

// sortedAcquires lists the locks a callee may transitively acquire, in
// label order.
func (a *analyzer) sortedAcquires(callee *types.Func) []heldLock {
	set := a.acquires[callee]
	if len(set) == 0 {
		return nil
	}
	var out []heldLock
	for fact := range set {
		obj, ok := fact.(types.Object)
		if !ok {
			continue
		}
		out = append(out, heldLock{obj, a.lockLabel(obj)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

func (a *analyzer) lockLabel(obj types.Object) string {
	if l, ok := a.lockNames[obj]; ok {
		return l
	}
	return obj.Name()
}

func (a *analyzer) noteLockLabel(obj types.Object, label string) {
	if a.lockNames == nil {
		a.lockNames = map[types.Object]string{}
	}
	if _, ok := a.lockNames[obj]; !ok {
		a.lockNames[obj] = label
	}
}

// directLocks lists the mutex objects a body syntactically acquires
// (the seed facts for the transitive may-acquire summary), noting each
// lock's display label as a side effect.
func (a *analyzer) directLocks(fn *interproc.Func) []types.Object {
	var locks []types.Object
	interproc.InspectBody(fn.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if obj, label, op := lockOp(fn.Info, call); op > 0 && obj != nil {
			a.noteLockLabel(obj, label)
			locks = append(locks, obj)
		}
	})
	return locks
}

// lockOp classifies a call as a mutex acquire (+1) or release (-1) and
// resolves the mutex's identity: the field or variable object of the
// sync.Mutex/RWMutex the method is called on. A nil object with a
// non-zero op means the lock expression is too dynamic to track.
func lockOp(info *types.Info, call *ast.CallExpr) (types.Object, string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", 0
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = 1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return nil, "", 0
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, "", 0
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", 0
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, "", 0
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return info.Uses[base.Sel], exprLabel(base), op
	case *ast.Ident:
		return info.Uses[base], base.Name, op
	}
	return nil, "", op
}

// exprLabel renders a selector chain ("s.mu"); non-ident links render
// as their final segments.
func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	}
	return "…"
}

// blockSeed is the may-block seed: a non-empty description when the
// function's own body performs a blocking operation.
func blockSeed(fn *interproc.Func) string {
	var why string
	// Communications of a select with a default case cannot block.
	nonblocking := map[ast.Node]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			// Goroutine bodies block their own goroutine; closures are
			// included elsewhere only when invoked inline, which this
			// conservative seed forgoes.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				why = "select with no default"
				return false
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				nonblocking[commOp(cc.Comm)] = true
			}
		case *ast.SendStmt:
			if !nonblocking[n] {
				why = "channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking[n] {
				why = "channel receive"
			}
		case *ast.RangeStmt:
			if _, isChan := fn.Info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				why = "range over a channel"
			}
		case *ast.CallExpr:
			if callee := interproc.StaticCallee(fn.Info, n); callee != nil {
				why = stdlibBlocking(callee)
			}
		}
		return why == ""
	})
	return why
}

// commOp extracts the blocking operation node from a select
// communication clause statement.
func commOp(comm ast.Stmt) ast.Node {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s
	case *ast.ExprStmt:
		return ast.Unparen(s.X)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return ast.Unparen(s.Rhs[0])
		}
	}
	return comm
}

// osNonblocking lists the os helpers that touch no file descriptors.
var osNonblocking = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Exit": true, "Getpid": true, "Getppid": true,
	"Getuid": true, "Geteuid": true, "IsNotExist": true, "IsExist": true,
	"IsPermission": true, "IsTimeout": true, "TempDir": true, "IsPathSeparator": true,
}

// stdlibBlocking classifies standard-library calls that can block:
// file and network I/O, sleeps, waits, and stream encoders driving an
// io.Writer. Pure helpers (json.Marshal, filepath.Join, errors.Is)
// stay silent.
func stdlibBlocking(callee *types.Func) string {
	pkg := callee.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), callee.Name()
	switch path {
	case "os":
		if osNonblocking[name] {
			return ""
		}
		return "os." + name
	case "io", "io/fs", "bufio", "net", "net/http", "os/exec", "log":
		return pkg.Name() + "." + name
	case "time":
		if name == "Sleep" || name == "Tick" {
			return "time." + name
		}
	case "sync":
		if name == "Wait" {
			return interproc.FuncLabel(callee)
		}
	case "encoding/json":
		if name == "Encode" || name == "Decode" {
			return "json." + name + " (streams to its writer)"
		}
	case "fmt":
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Fscan") {
			return "fmt." + name + " (writes to its io.Writer)"
		}
	}
	return ""
}
