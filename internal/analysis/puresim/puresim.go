// Package puresim protects the shadow oracle's zero-perturbation
// guarantee (PR 3): a run under -check must be byte-identical to an
// unchecked run, which holds only because the oracle in
// internal/alloc/shadow is pure host-side bookkeeping — it issues no
// simulated memory references and charges no instructions.
//
// The analyzer computes the static call graph rooted at every function
// of the shadow package (direct calls, followed across packages into
// any function whose source is in the loaded tree) and reports paths
// that reach a reference-emitting or instruction-charging API:
// (*mem.Memory).ReadWord/WriteWord/Touch/Flush/SetSink/SetBatching,
// (*mem.Region).Sbrk, (*cost.Meter).Charge/ChargeTo/Enter, and
// alloc.Charge.
//
// Dynamic dispatch is the analysis boundary: calls through interfaces
// (the wrapped alloc.Allocator, the alloc.Checker audit hook) are not
// traversed. That boundary is the design, not a blind spot — the
// forwarded allocator call is the run being measured, and the periodic
// boundary-tag audit is documented as perturbing (shadow's AuditEvery
// knob); what must stay pure is the oracle's own bookkeeping, which is
// exactly the statically reachable code.
package puresim

import (
	"go/ast"
	"go/types"

	"mallocsim/internal/analysis"
)

// Analyzer is the puresim analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "puresim",
	Doc:  "code statically reachable from the shadow oracle must not emit simulated references or charge instructions (-check runs must stay byte-identical)",
	Run:  run,
}

// banned maps package name (path-suffix matched) to receiver-qualified
// or plain function names that emit references or charge instructions.
type bannedFunc struct {
	pkg  string // package path suffix
	recv string // receiver type name, "" for plain functions
	name string
}

var bannedFuncs = []bannedFunc{
	{"mem", "Memory", "ReadWord"},
	{"mem", "Memory", "WriteWord"},
	{"mem", "Memory", "Touch"},
	{"mem", "Memory", "Flush"},
	{"mem", "Memory", "SetSink"},
	{"mem", "Memory", "SetBatching"},
	{"mem", "Region", "Sbrk"},
	{"cost", "Meter", "Charge"},
	{"cost", "Meter", "ChargeTo"},
	{"cost", "Meter", "Enter"},
	{"alloc", "", "Charge"},
}

func isBanned(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	for _, b := range bannedFuncs {
		if b.name == fn.Name() && b.recv == recv && analysis.PkgIs(fn.Pkg().Path(), b.pkg) {
			qual := fn.Pkg().Name() + "." + fn.Name()
			if recv != "" {
				qual = "(*" + fn.Pkg().Name() + "." + recv + ")." + fn.Name()
			}
			return qual, true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgIs(pass.Path, "shadow") {
		return nil
	}
	// Index every function body in the loaded tree so traversal can
	// cross package boundaries (shadow → mem.RegionAt → ...).
	bodies := map[*types.Func]*ast.FuncDecl{}
	infos := map[*types.Func]*types.Info{}
	for _, p := range pass.All {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					bodies[obj] = fd
					infos[obj] = p.Info
				}
			}
		}
	}

	// visited[fn] — fn's transitive closure is known clean or already
	// queued; impure call paths are reported once per offending edge
	// out of the shadow package.
	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func, origin *ast.CallExpr, chain []string)
	visit = func(fn *types.Func, origin *ast.CallExpr, chain []string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		fd := bodies[fn]
		info := infos[fn]
		if fd == nil || info == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if qual, bad := isBanned(callee); bad {
				at := origin
				if at == nil {
					at = call // direct call from shadow code itself
				}
				pass.Reportf(at.Pos(),
					"%s is reachable from the shadow oracle via %s: the oracle must not emit references or charge instructions, or -check runs stop being byte-identical",
					qual, chainString(append(chain, fn.FullName())))
				return true
			}
			next := origin
			if next == nil {
				next = call
			}
			visit(callee, next, append(chain, fn.FullName()))
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				visit(obj, nil, nil)
			}
		}
	}
	return nil
}

func chainString(chain []string) string {
	out := ""
	for i, c := range chain {
		if i > 0 {
			out += " → "
		}
		out += c
	}
	return out
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Skip interface method calls: dynamic dispatch is the analysis
		// boundary (see package doc).
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
