package puresim_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/puresim"
)

func TestPureSim(t *testing.T) {
	// oraclehelp is loaded alongside shadow so the call-graph traversal
	// can cross the package boundary.
	analysistest.Run(t, "../testdata", puresim.Analyzer, "shadow", "oraclehelp")
}
