package interproc_test

import (
	"go/types"
	"strings"
	"testing"

	"mallocsim/internal/analysis/interproc"
	"mallocsim/internal/analysis/load"
)

// The lock/serve fixture doubles as the engine's test bed: it has a
// stdlib-blocking seed function, a caller one hop up, an interface
// whose only in-tree implementation blocks, and goroutine bodies that
// must stay out of the caller's closure.
func loadGraph(t *testing.T) *interproc.Graph {
	t.Helper()
	loader := load.NewLoader("", "../testdata/src")
	pkg, err := loader.Load("lock/serve")
	if err != nil {
		t.Fatal(err)
	}
	return interproc.Build([]*load.Package{pkg})
}

func fnByName(t *testing.T, g *interproc.Graph, name string) *interproc.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if interproc.FuncLabel(fn.Obj) == name {
			return fn
		}
	}
	t.Fatalf("function %q not indexed", name)
	return nil
}

// blockSeed mirrors locksafe's seed shape, reduced to the one case the
// fixture needs: a direct call into os.
func osSeed(fn *interproc.Func) string {
	for _, c := range fn.Calls() {
		if pkg := c.Callee.Pkg(); pkg != nil && pkg.Path() == "os" {
			return "os." + c.Callee.Name()
		}
	}
	return ""
}

func TestReachClosureAndWitness(t *testing.T) {
	g := loadGraph(t)
	r := g.Reach(osSeed, true)

	readDisk := fnByName(t, g, "Server.readDisk")
	if !r.Contains(readDisk.Obj) {
		t.Fatal("Server.readDisk should seed the closure (it calls os.ReadFile)")
	}
	if why := r.Why(readDisk.Obj); !strings.Contains(why, "os.ReadFile") {
		t.Errorf("Why(readDisk) = %q, want an os.ReadFile witness", why)
	}

	// Submit calls os directly, so it seeds rather than chains.
	submit := fnByName(t, g, "Server.Submit")
	if !r.Contains(submit.Obj) {
		t.Error("Server.Submit should be in the closure (direct os call)")
	}
	// Lookup only reaches os through the interface-expanded callee: its
	// witness is a chain.
	lookup := fnByName(t, g, "Tiered.Lookup")
	if why := r.Why(lookup.Obj); !strings.Contains(why, "DiskStore.Get") || !strings.Contains(why, "os.ReadFile") {
		t.Errorf("Why(Lookup) = %q, want a DiskStore.Get → os.ReadFile chain", why)
	}

	// Spawn's only blocking work is inside a go statement: out of the
	// closure.
	spawn := fnByName(t, g, "Server.Spawn")
	if r.Contains(spawn.Obj) {
		t.Error("Server.Spawn reached the closure through a go statement body")
	}
}

func TestInterfaceExpansion(t *testing.T) {
	g := loadGraph(t)
	lookup := fnByName(t, g, "Tiered.Lookup")
	var expanded []string
	for _, c := range lookup.Calls() {
		if c.ViaIface {
			expanded = append(expanded, interproc.FuncLabel(c.Callee))
		}
	}
	if len(expanded) != 1 || expanded[0] != "DiskStore.Get" {
		t.Errorf("Tiered.Lookup interface edges = %v, want [DiskStore.Get]", expanded)
	}

	// And the closure flows through the expanded edge.
	r := g.Reach(osSeed, true)
	if !r.Contains(lookup.Obj) {
		t.Error("Tiered.Lookup should reach os through the interface dispatch")
	}
	// With expansion disabled the edge is not followed.
	r = g.Reach(osSeed, false)
	if r.Contains(lookup.Obj) {
		t.Error("Tiered.Lookup reached os with viaIfaces=false")
	}
}

func TestSummarizeTransitiveFacts(t *testing.T) {
	g := loadGraph(t)
	// Facts: each function's own name, so a summary set is exactly the
	// reachable function set.
	sum := g.Summarize(func(fn *interproc.Func) []any {
		return []any{interproc.FuncLabel(fn.Obj)}
	}, true)

	again := fnByName(t, g, "Server.Again")
	set := sum[again.Obj]
	for _, want := range []string{"Server.Again", "Server.lockedTouch"} {
		if !set[any(want)] {
			t.Errorf("Summarize(Again) missing %q (have %d facts)", want, len(set))
		}
	}
	if set[any("Server.Submit")] {
		t.Error("Summarize(Again) contains the unreachable Server.Submit")
	}
}

func TestStaticCalleeDynamicCallsInvisible(t *testing.T) {
	g := loadGraph(t)
	// Spin in ctxp/sim calls through a function value; here we assert on
	// the graph level: no edge of any fixture function targets a
	// *types.Signature-only callee (every edge has a *types.Func).
	for _, fn := range g.Funcs() {
		for _, c := range fn.Calls() {
			if c.Callee == nil {
				t.Fatalf("%s has a nil callee edge", interproc.FuncLabel(fn.Obj))
			}
			if _, ok := c.Callee.Type().(*types.Signature); !ok {
				t.Fatalf("%s edge to non-signature callee", interproc.FuncLabel(fn.Obj))
			}
		}
	}
}
