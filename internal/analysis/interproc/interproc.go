// Package interproc is the interprocedural engine shared by the
// concurrency and allocation analyzers (locksafe, ctxpoll, hotalloc).
//
// It builds a whole-tree static call graph over every package a run
// loaded (Graph), resolves interface-method calls to their in-tree
// implementations, and offers two derived views on top:
//
//   - reachability closures (Graph.Reach): "which functions can reach a
//     blocking operation / a ctx poll / a work primitive", with a
//     witness chain for diagnostics, and
//   - transitive fact summaries (Graph.Summarize): "which locks may a
//     call to this function acquire", the union of per-function facts
//     over all statically reachable callees.
//
// It also carries the lightweight intraprocedural dataflow walker
// (Flow) that threads a client-owned lattice — locksafe's held-lock
// set — through a body's statement lists in execution order, cloning
// state into branches and meeting it back at merges.
//
// Boundaries, stated once so every client inherits them: dynamic calls
// through plain function values are invisible; calls through interface
// methods fan out to every in-tree named type implementing the
// interface (out-of-tree implementors are unknowable here); function
// literals are attributed to their enclosing declaration; and bodies
// started with `go` belong to the spawned goroutine, not the caller,
// so neither call edges nor blocking facts flow out of a go statement.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mallocsim/internal/analysis/load"
)

// A Func is one declared function or method with a body.
type Func struct {
	// Obj is the type-checker's object for the declaration.
	Obj *types.Func
	// Decl is the syntax, Body non-nil.
	Decl *ast.FuncDecl
	// Info is the owning package's type facts.
	Info *types.Info
	// Pkg is the owning package.
	Pkg *load.Package

	calls []Call
}

// A Call is one resolved call edge out of a Func.
type Call struct {
	// Expr is the call site.
	Expr *ast.CallExpr
	// Callee is the resolved target. For an interface-method call there
	// is one Call per in-tree implementation, each with ViaIface set.
	Callee *types.Func
	// ViaIface marks an edge obtained by expanding interface dispatch
	// to an implementation.
	ViaIface bool
}

// Graph is the whole-tree call graph.
type Graph struct {
	// Fset maps positions.
	Fset *token.FileSet

	funcs map[*types.Func]*Func
	list  []*Func // declaration order: package path, then file position

	named []*types.Named // every package-level named type, for Implements
	impls map[string][]*types.Func
}

// graphKey memoizes the graph in Pass.Shared across analyzers of one
// run (see Of).
type graphKey struct{}

// Of returns the run's call graph, building it on first use and
// memoizing it in shared, which the framework scopes to one Run
// invocation.
func Of(all []*load.Package, shared map[any]any) *Graph {
	if g, ok := shared[graphKey{}].(*Graph); ok {
		return g
	}
	g := Build(all)
	shared[graphKey{}] = g
	return g
}

// Build constructs the call graph over every loaded package.
func Build(all []*load.Package) *Graph {
	g := &Graph{
		funcs: map[*types.Func]*Func{},
		impls: map[string][]*types.Func{},
	}
	// Index every declared body and named type.
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Info: pkg.Info, Pkg: pkg}
				g.funcs[obj] = fn
				g.list = append(g.list, fn)
			}
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
	}
	// Resolve call edges.
	for _, fn := range g.list {
		fn.calls = g.resolveCalls(fn)
	}
	return g
}

// Funcs lists every indexed function in deterministic order.
func (g *Graph) Funcs() []*Func { return g.list }

// Lookup returns the graph node for obj, or nil for out-of-tree or
// bodiless functions.
func (g *Graph) Lookup(obj *types.Func) *Func { return g.funcs[obj] }

// Calls returns fn's resolved outgoing edges.
func (fn *Func) Calls() []Call { return fn.calls }

// resolveCalls collects fn's call edges, skipping go statements and
// expanding interface dispatch.
func (g *Graph) resolveCalls(fn *Func) []Call {
	var calls []Call
	InspectBody(fn.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := StaticCallee(fn.Info, call)
		if callee == nil {
			return
		}
		if iface := ifaceRecv(callee); iface != nil {
			for _, impl := range g.implementations(iface, callee.Name()) {
				calls = append(calls, Call{Expr: call, Callee: impl, ViaIface: true})
			}
			return
		}
		calls = append(calls, Call{Expr: call, Callee: callee})
	})
	return calls
}

// InspectBody walks a function body visiting every node that executes
// as part of the function's own activation: it descends into function
// literals (they run on behalf of the declaring function when invoked
// or deferred) but not into go statements, whose work belongs to the
// spawned goroutine.
func InspectBody(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// StaticCallee resolves a call's target function: plain identifiers,
// selector calls on concrete or interface receivers, and builtins
// excluded. Calls through bare function values resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ifaceRecv returns the interface a method is declared on, or nil for
// concrete methods and plain functions.
func ifaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementations returns the in-tree concrete methods named name on
// types satisfying iface, memoized per (iface, name).
func (g *Graph) implementations(iface *types.Interface, name string) []*types.Func {
	key := types.TypeString(iface, nil) + "." + name
	if impls, ok := g.impls[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range g.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(nil, name)
		if sel == nil {
			// Method is unexported in another package; Lookup with a nil
			// package only sees exported names, which covers every
			// cross-package dispatch this repo performs.
			continue
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
	g.impls[key] = impls
	return impls
}

// A Reach is a may-reach closure over the call graph: the set of
// functions from which some seed property is statically reachable,
// each entry carrying a witness for diagnostics.
type Reach struct {
	via map[*types.Func]reachVia
}

type reachVia struct {
	next *types.Func // nil when the function itself satisfies the seed
	why  string
}

// Reach computes the closure of seed: for every indexed function,
// seed returns a non-empty description if the function itself has the
// property (e.g. "its body receives from a channel"); the result then
// contains that function and every function that can reach it through
// call edges. Interface-expanded edges are followed when viaIfaces.
func (g *Graph) Reach(seed func(fn *Func) string, viaIfaces bool) *Reach {
	r := &Reach{via: map[*types.Func]reachVia{}}
	// Seed pass.
	var frontier []*types.Func
	for _, fn := range g.list {
		if why := seed(fn); why != "" {
			r.via[fn.Obj] = reachVia{why: why}
			frontier = append(frontier, fn.Obj)
		}
	}
	// Reverse-edge propagation to a fixpoint (each function enqueued at
	// most once).
	callers := g.reverseEdges(viaIfaces)
	for len(frontier) > 0 {
		target := frontier[0]
		frontier = frontier[1:]
		for _, caller := range callers[target] {
			if _, done := r.via[caller]; done {
				continue
			}
			r.via[caller] = reachVia{next: target}
			frontier = append(frontier, caller)
		}
	}
	return r
}

// reverseEdges maps each callee to its in-tree callers, deterministic
// order.
func (g *Graph) reverseEdges(viaIfaces bool) map[*types.Func][]*types.Func {
	callers := map[*types.Func][]*types.Func{}
	for _, fn := range g.list {
		for _, c := range fn.calls {
			if c.ViaIface && !viaIfaces {
				continue
			}
			callers[c.Callee] = append(callers[c.Callee], fn.Obj)
		}
	}
	return callers
}

// Contains reports whether fn is in the closure.
func (r *Reach) Contains(fn *types.Func) bool {
	_, ok := r.via[fn]
	return ok
}

// Why returns a human-readable witness chain for a closure member,
// e.g. "DiskStore.Get → os.ReadFile", empty for non-members.
func (r *Reach) Why(fn *types.Func) string {
	var s string
	for hop := 0; hop < 32; hop++ { // depth cap guards cyclic witnesses
		via, ok := r.via[fn]
		if !ok {
			return s
		}
		if via.next == nil {
			if s != "" {
				s += " → "
			}
			return s + via.why
		}
		if s != "" {
			s += " → "
		}
		s += FuncLabel(via.next)
		fn = via.next
	}
	return s + " → …"
}

// FuncLabel renders Recv.Name or pkg.Name for diagnostics.
func FuncLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Summarize computes a transitive may-fact summary: each function's
// set is the union of direct(fn) over fn and every function statically
// reachable from it. Facts are compared by interface identity (the
// clients key on types.Object values). Interface-expanded edges are
// followed when viaIfaces.
func (g *Graph) Summarize(direct func(fn *Func) []any, viaIfaces bool) map[*types.Func]map[any]bool {
	sum := map[*types.Func]map[any]bool{}
	add := func(fn *types.Func, fact any) bool {
		set := sum[fn]
		if set == nil {
			set = map[any]bool{}
			sum[fn] = set
		}
		if set[fact] {
			return false
		}
		set[fact] = true
		return true
	}
	callers := g.reverseEdges(viaIfaces)
	var frontier []*types.Func
	for _, fn := range g.list {
		for _, fact := range direct(fn) {
			if add(fn.Obj, fact) {
				frontier = append(frontier, fn.Obj)
			}
		}
	}
	// Propagate every new fact to callers until the fixpoint. The
	// frontier holds functions whose sets grew; cycles terminate because
	// set growth is monotone and bounded.
	for len(frontier) > 0 {
		target := frontier[0]
		frontier = frontier[1:]
		for _, caller := range callers[target] {
			grew := false
			for fact := range sum[target] {
				if add(caller, fact) {
					grew = true
				}
			}
			if grew {
				frontier = append(frontier, caller)
			}
		}
	}
	return sum
}
