package interproc

import (
	"go/ast"
)

// Flow is the intraprocedural dataflow walker: it visits a body's
// statement lists in execution order threading a client-owned state
// value (locksafe's held-lock lattice). Branch bodies get a Clone of
// the incoming state; where control flow merges, the surviving branch
// states are combined with Meet (for a must-hold lattice, set
// intersection). A branch that provably terminates (ends in return,
// break, continue, goto or a panic call) contributes nothing to the
// merge — that is what keeps the idiomatic
//
//	mu.Lock()
//	if bad { mu.Unlock(); return }
//	... // still held here
//
// precise: the early-return arm's unlocked state dies with it.
//
// The walker does not descend into function literals (their bodies run
// under a different activation; see the package comment) or go
// statements. Loop bodies are visited once with a clone of the
// entry state; the state after a loop is the entry state (the loop may
// run zero times), which over-approximates held locks only for code
// that leaves a lock held after a loop that unlocks it — a shape the
// lint forbids anyway.
type Flow[S any] struct {
	// Clone copies a state for a branch.
	Clone func(S) S
	// Meet combines two surviving branch states.
	Meet func(S, S) S
	// Visit observes one executable node with the state in force before
	// it runs. It is called for simple statements and for the scrutinee
	// expressions of compound ones (if/for conditions, switch tags,
	// range operands). nonblocking marks nodes whose own blocking is
	// already accounted for: select communications (the select node,
	// visited first, is the blocking point; with a default they cannot
	// block at all). Visit may
	// mutate the state in place when S is a reference type (the map
	// lattice locksafe uses).
	Visit func(n ast.Node, state S, nonblocking bool)
}

// Walk runs the flow over one statement list with the given entry
// state, returning the state at the fall-through exit and whether the
// list provably terminates (never falls through).
func (f *Flow[S]) Walk(stmts []ast.Stmt, state S) (S, bool) {
	for _, stmt := range stmts {
		var terminated bool
		state, terminated = f.stmt(stmt, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (f *Flow[S]) stmt(stmt ast.Stmt, state S) (S, bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return f.Walk(s.List, state)
	case *ast.LabeledStmt:
		return f.stmt(s.Stmt, state)
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = f.stmt(s.Init, state)
		}
		f.Visit(s.Cond, state, false)
		thenOut, thenTerm := f.Walk(s.Body.List, f.Clone(state))
		elseOut, elseTerm := state, false
		if s.Else != nil {
			elseOut, elseTerm = f.stmt(s.Else, f.Clone(state))
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return f.Meet(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = f.stmt(s.Init, state)
		}
		if s.Cond != nil {
			f.Visit(s.Cond, state, false)
		}
		body, term := f.Walk(s.Body.List, f.Clone(state))
		if s.Post != nil && !term {
			f.stmt(s.Post, body)
		}
		return state, false
	case *ast.RangeStmt:
		f.Visit(s, state, false) // the range operand itself (a channel range blocks)
		f.Walk(s.Body.List, f.Clone(state))
		return state, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = f.stmt(s.Init, state)
		}
		if s.Tag != nil {
			f.Visit(s.Tag, state, false)
		}
		return f.clauses(s.Body.List, state, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = f.stmt(s.Init, state)
		}
		f.Visit(s.Assign, state, false)
		return f.clauses(s.Body.List, state, false)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		// The select statement itself is the blocking point; clients see
		// it with nonblocking set when a default case exists.
		f.Visit(s, state, hasDefault)
		return f.selectClauses(s.Body.List, state, hasDefault)
	case *ast.ReturnStmt:
		f.Visit(s, state, false)
		return state, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list.
		return state, true
	case *ast.ExprStmt:
		f.Visit(s, state, false)
		return state, isPanicExit(s.X)
	case *ast.DeferStmt, *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.DeclStmt, *ast.GoStmt, *ast.EmptyStmt:
		f.Visit(stmt, state, false)
		return state, false
	default:
		f.Visit(stmt, state, false)
		return state, false
	}
}

// clauses walks switch case bodies, each from a clone of the incoming
// state, and meets the survivors. Without a default clause the
// fall-past path (no case matched) also survives with the incoming
// state; with one, a switch whose every clause terminates is itself
// terminating.
func (f *Flow[S]) clauses(list []ast.Stmt, state S, _ bool) (S, bool) {
	hasDefault := false
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	var out S
	have := false
	if !hasDefault {
		out, have = state, true
	}
	for _, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		cout, cterm := f.Walk(cc.Body, f.Clone(state))
		if cterm {
			continue
		}
		if !have {
			out, have = cout, true
		} else {
			out = f.Meet(out, cout)
		}
	}
	if !have {
		return state, true
	}
	return out, false
}

// selectClauses walks select communication clauses. Each comm
// statement is visited with the select's blocking classification, then
// its body runs from a clone of the incoming state.
func (f *Flow[S]) selectClauses(list []ast.Stmt, state S, hasDefault bool) (S, bool) {
	out := state
	for _, c := range list {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		branch := f.Clone(state)
		if cc.Comm != nil {
			// The comm's own blocking is accounted for at the select node
			// (visited above); with a default it cannot block at all.
			// Either way the comm is visited only for its nested
			// expressions.
			f.Visit(cc.Comm, branch, true)
		}
		bout, bterm := f.Walk(cc.Body, branch)
		if !bterm {
			out = f.Meet(out, bout)
		}
	}
	return out, false
}

// isPanicExit reports whether an expression statement never returns
// (panic or os.Exit by name — enough for a must-analysis that only
// loses precision, never soundness, on a miss).
func isPanicExit(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
