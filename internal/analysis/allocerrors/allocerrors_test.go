package allocerrors_test

import (
	"testing"

	"mallocsim/internal/analysis/allocerrors"
	"mallocsim/internal/analysis/analysistest"
)

func TestAllocErrors(t *testing.T) {
	analysistest.Run(t, "../testdata", allocerrors.Analyzer, "callers", "alloc/hot")
}
