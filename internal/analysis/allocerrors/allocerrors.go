// Package allocerrors enforces the allocator error contract documented
// on alloc.Allocator (see also EXPERIMENTS.md "Correctness"):
//
//  1. Sentinel comparison: the shared sentinels (alloc.ErrBadFree,
//     alloc.ErrTooLarge, mem.ErrOutOfMemory, mem.ErrBadAddress) are
//     wrapped by conforming allocators, so comparing an error to them
//     with == or != misclassifies wrapped failures. Callers must use
//     errors.Is. This is checked in every package.
//  2. No panic on the hot path: within allocator packages (any package
//     on or under a path segment "alloc"), nothing reachable from a
//     Malloc, MallocSite or Free method body through same-package calls
//     may panic. Constructors may panic (the contract permits failure
//     at construction); audit helpers (alloc.Checker.Check, CheckList)
//     are only flagged if a hot-path body reaches them.
//  3. Wrapped errors only: those same hot paths must not mint fresh
//     error values with errors.New or a non-%w fmt.Errorf — every
//     failure must wrap a sentinel so callers and the differential
//     battery can classify it with errors.Is.
package allocerrors

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mallocsim/internal/analysis"
)

// Analyzer is the allocerrors analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocerrors",
	Doc:  "allocator failures must wrap the shared sentinels, be compared with errors.Is, and never panic on the Malloc/Free hot path",
	Run:  run,
}

// sentinelPkgs maps a package (by path-suffix name) to the names of its
// exported error sentinels.
var sentinelPkgs = map[string][]string{
	"alloc": {"ErrBadFree", "ErrTooLarge"},
	"mem":   {"ErrOutOfMemory", "ErrBadAddress"},
}

// hotMethods are the allocator-contract entry points whose reachable
// code must neither panic nor mint unwrapped errors.
var hotMethods = map[string]bool{"Malloc": true, "MallocSite": true, "MallocLocal": true, "Free": true}

func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	for pkgName, names := range sentinelPkgs {
		if !analysis.PkgIs(v.Pkg().Path(), pkgName) {
			continue
		}
		for _, n := range names {
			if v.Name() == n {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	checkSentinelComparisons(pass)
	if analysis.PkgIs(pass.Path, "alloc") || analysis.PkgUnder(pass.Path, "alloc") {
		checkHotPaths(pass)
	}
	return nil
}

// checkSentinelComparisons flags ==/!= against a sentinel anywhere.
func checkSentinelComparisons(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if obj := usedObject(pass, side); obj != nil && isSentinel(obj) {
					pass.Reportf(be.Pos(),
						"sentinel %s compared with %s; allocators wrap sentinels, so use errors.Is(err, %s.%s)",
						obj.Name(), be.Op, obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}

// usedObject resolves an identifier or selector to its object.
func usedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// checkHotPaths walks the intra-package call graph from every
// Malloc/MallocSite/Free method and flags panics and fresh error
// construction in the visited bodies.
func checkHotPaths(pass *analysis.Pass) {
	// Bodies of every function declared in this package.
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[obj] = fd
			}
		}
	}
	// Seed with the hot methods (methods only: a receiver distinguishes
	// the contract entry points from free functions of the same name).
	type item struct {
		fn    *types.Func
		entry string // the hot method whose contract applies
	}
	var queue []item
	seen := map[*types.Func]bool{}
	for fn, fd := range bodies {
		if fd.Recv != nil && hotMethods[fn.Name()] {
			queue = append(queue, item{fn, fn.Name()})
			seen[fn] = true
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fd := bodies[it.fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch callee := calleeObject(pass, call).(type) {
			case *types.Builtin:
				if callee.Name() == "panic" {
					pass.Reportf(call.Pos(),
						"panic reachable from %s: the allocator contract forbids panics on the Malloc/Free hot path once construction succeeded — return an error wrapping a sentinel instead",
						it.entry)
				}
			case *types.Func:
				checkErrorMint(pass, call, callee, it.entry)
				if callee.Pkg() == pass.Pkg {
					if _, local := bodies[callee]; local && !seen[callee] {
						seen[callee] = true
						queue = append(queue, item{callee, it.entry})
					}
				}
			}
			return true
		})
	}
}

// checkErrorMint flags errors.New and non-wrapping fmt.Errorf on a hot
// path.
func checkErrorMint(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func, entry string) {
	if callee.Pkg() == nil {
		return
	}
	switch {
	case callee.Pkg().Path() == "errors" && callee.Name() == "New":
		pass.Reportf(call.Pos(),
			"errors.New on the %s path mints an unclassifiable error; wrap a sentinel with fmt.Errorf(\"...: %%w\", ...) instead",
			entry)
	case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // non-constant format: cannot prove, stay silent
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w on the %s path mints an unclassifiable error; wrap alloc.ErrBadFree, alloc.ErrTooLarge or mem.ErrOutOfMemory",
				entry)
		}
	}
}

// calleeObject resolves the called function, seeing through parens.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
