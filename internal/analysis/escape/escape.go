// Package escape ingests the Go compiler's escape-analysis diagnostics
// (`go build -gcflags=-m`) into position-keyed allocation facts the
// hotalloc analyzer overlays on its syntactic checks.
//
// The compiler is the ground truth for what actually reaches the heap:
// it sees inlining, interface boxing at call sites and closure
// captures that no per-file syntactic pass can. The trade-off is that
// collecting the facts needs a working toolchain and writable build
// cache, which the hermetic analysis loader deliberately avoids — so
// ingestion is optional everywhere: Collect degrades to an error the
// caller reports and continues without, and a nil fact set just skips
// the escape-backed checks (the syntactic ones still run).
package escape

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// A Fact is one compiler escape diagnostic.
type Fact struct {
	// File is the absolute path of the source file.
	File string
	// Line and Col locate the allocation (1-based).
	Line, Col int
	// Msg is the compiler's text, e.g. "new(lineSetPage) escapes to
	// heap" or "moved to heap: hdr".
	Msg string
}

// heap-relevant diagnostic shapes; -m also prints inlining and
// parameter-leak lines, which carry no allocation.
func heapMsg(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.Contains(msg, "escapes to heap:") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// Parse extracts heap facts from -gcflags=-m output. Relative file
// paths (the compiler emits them relative to the build's working
// directory) are resolved against baseDir.
func Parse(output []byte, baseDir string) []Fact {
	var facts []Fact
	for _, line := range bytes.Split(output, []byte("\n")) {
		f, ok := parseLine(string(line), baseDir)
		if ok {
			facts = append(facts, f)
		}
	}
	return facts
}

// parseLine splits "file.go:LINE:COL: msg".
func parseLine(s, baseDir string) (Fact, bool) {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "#") {
		return Fact{}, false
	}
	// file:line:col: msg — find the ": " after the position triple.
	i := strings.Index(s, ".go:")
	if i < 0 {
		return Fact{}, false
	}
	file := s[:i+3]
	rest := s[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return Fact{}, false
	}
	line, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	msg := strings.TrimSpace(parts[2])
	if err1 != nil || err2 != nil || !heapMsg(msg) {
		return Fact{}, false
	}
	if !filepath.IsAbs(file) {
		file = filepath.Join(baseDir, file)
	}
	return Fact{File: file, Line: line, Col: col, Msg: msg}, true
}

// Collect builds the whole module under -gcflags=-m and parses the
// diagnostics. moduleRoot must hold go.mod. The build's object output
// is discarded; only the compiler chatter matters. Errors mean the
// toolchain is unavailable or the tree does not compile — callers
// degrade to syntactic-only checking.
func Collect(moduleRoot string) ([]Fact, error) {
	// -m writes to stderr; a failing build also does, so check the exit
	// code first and surface the compiler's text.
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = moduleRoot
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags=-m: %v\n%s", err, trim(out.Bytes()))
	}
	return Parse(out.Bytes(), moduleRoot), nil
}

func trim(b []byte) []byte {
	const max = 2048
	if len(b) > max {
		return append(b[:max:max], "..."...)
	}
	return b
}
