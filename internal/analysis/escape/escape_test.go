package escape

import (
	"path/filepath"
	"testing"
)

func TestParse(t *testing.T) {
	out := []byte(`# mallocsim/internal/trace
internal/trace/trace.go:155:12: make([]uint32, len(b.Addrs), cap(b.Addrs)) escapes to heap
internal/trace/trace.go:40:6: can inline Ref.End
internal/vm/vm.go:455:8: "vm: page in map but not in list" escapes to heap
internal/mem/mem.go:200:2: moved to heap: hdr
internal/mem/mem.go:210:15: leaking param: m
/abs/other.go:7:3: composite literal escapes to heap
not a diagnostic line
internal/x/x.go:bad:9: escapes to heap
`)
	facts := Parse(out, "/root/mod")
	want := []Fact{
		{File: "/root/mod/internal/trace/trace.go", Line: 155, Col: 12, Msg: "make([]uint32, len(b.Addrs), cap(b.Addrs)) escapes to heap"},
		{File: "/root/mod/internal/vm/vm.go", Line: 455, Col: 8, Msg: `"vm: page in map but not in list" escapes to heap`},
		{File: "/root/mod/internal/mem/mem.go", Line: 200, Col: 2, Msg: "moved to heap: hdr"},
		{File: filepath.FromSlash("/abs/other.go"), Line: 7, Col: 3, Msg: "composite literal escapes to heap"},
	}
	if len(facts) != len(want) {
		t.Fatalf("Parse returned %d facts, want %d: %+v", len(facts), len(want), facts)
	}
	for i, f := range facts {
		if f != want[i] {
			t.Errorf("fact %d = %+v, want %+v", i, f, want[i])
		}
	}
}

func TestParseFiltersNonHeapChatter(t *testing.T) {
	out := []byte(`internal/a/a.go:1:1: can inline f
internal/a/a.go:2:2: inlining call to f
internal/a/a.go:3:3: leaking param: x
internal/a/a.go:4:4: x does not escape
`)
	if facts := Parse(out, "/m"); len(facts) != 0 {
		t.Fatalf("non-heap chatter parsed as facts: %+v", facts)
	}
}
