// Package vm exercises the determinism rules for the sampled
// stack-distance code: the sampling filter must be a pure function of
// the page number, so hash/maphash — whose seeds are randomized per
// process — is banned alongside global math/rand.
package vm

import (
	"hash/maphash" // want `import of hash/maphash in a determinism-scoped package`
)

var seed = maphash.MakeSeed()

// SamplePage draws its sampling decision from a per-process random
// seed: the same trace would select a different page population every
// run.
func SamplePage(page uint64) bool {
	var h maphash.Hash
	h.SetSeed(seed)
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(page >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()&63 == 0
}

// SamplePageFixed is the blessed shape: a fixed avalanche hash
// (SplitMix64's finalizer) of the page number, identical in every
// process.
func SamplePageFixed(page uint64) bool {
	z := page + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z^(z>>31))&63 == 0
}
