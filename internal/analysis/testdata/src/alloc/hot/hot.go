// Package hot exercises the allocerrors hot-path rules: nothing
// reachable from a Malloc/MallocSite/Free method through same-package
// calls may panic or mint a fresh, unwrapped error.
package hot

import (
	"errors"
	"fmt"

	"alloc"
	"mem"
)

// A is an allocator-shaped type.
type A struct{}

// New may panic: the contract permits failure at construction.
func New(ok bool) *A {
	if !ok {
		panic("hot: bad config") // ok: constructors are not on the hot path
	}
	return &A{}
}

func (a *A) Malloc(n uint32) (uint64, error) {
	if n == 0 {
		panic("hot: zero") // want `panic reachable from Malloc`
	}
	if n > 1<<20 {
		return 0, fmt.Errorf("hot: %d bytes: %w", n, alloc.ErrTooLarge) // ok: wraps a sentinel
	}
	return a.grow(n)
}

// grow is reached from Malloc, so the contract applies here too.
func (a *A) grow(n uint32) (uint64, error) {
	if n == 1 {
		panic("hot: one") // want `panic reachable from Malloc`
	}
	if n == 2 {
		return 0, errors.New("hot: two") // want `errors.New on the Malloc path`
	}
	return 0, nil
}

func (a *A) Free(addr uint64) error {
	if addr == 0 {
		return fmt.Errorf("hot: free of null") // want `fmt.Errorf without %w on the Free path`
	}
	return fmt.Errorf("hot: %#x gone: %w", addr, mem.ErrOutOfMemory) // ok: wraps a sentinel
}

// Malloc the free function is not a contract entry point: only methods
// (a receiver) are seeded.
func Malloc(n uint32) uint64 {
	if n == 0 {
		panic("hot: free function") // ok: not a method
	}
	return 0
}
