// Package alloc is a minimal fixture stand-in for the real
// internal/alloc: the shared sentinels, the registry entry point and
// the instruction-charging helper, matched by the analyzers via the
// path-suffix convention.
package alloc

import (
	"errors"

	"mem"
)

var (
	ErrBadFree  = errors.New("alloc: bad free")
	ErrTooLarge = errors.New("alloc: request too large")
)

// Register mirrors the real registry entry point.
func Register(name string, mk func(m *mem.Memory) any) {}

// Charge mirrors the instruction-charging helper (impure for puresim).
func Charge(m *mem.Memory, n uint64) {}
