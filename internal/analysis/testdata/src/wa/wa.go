// Package wa exercises the wordaddr geometry rules: raw 4/32/4096
// literals in address math, geometry-mirroring declarations, and
// hand-rolled shift/mask arithmetic on address-named operands.
package wa

import "mem"

// PageChunk mirrors the page size as a bare literal.
const PageChunk = 4096 // want `PageChunk re-derives the 4 KB page size`

const shifted = 1 << 12 // want `shifted re-derives the 4 KB page size`

const lineBytes = 32 // want `lineBytes re-derives the 32-byte cache line size`

const wordBytes = 4 // want `wordBytes re-derives the 4-byte word size`

const fanout = 32 // ok: the name says nothing about cache lines

const quadWords = 4 //lint:allow wordaddr counts the words in one object, not the machine word size

// BlockSize is the blessed spelling.
const BlockSize = mem.PageSize

func links(m *mem.Memory, b uint64) (uint64, uint64) {
	next := m.ReadWord(b + 4)            // want `raw geometry literal 4 in the address argument of mem.ReadWord`
	m.WriteWord(b+4096, next)            // want `raw geometry literal 4096 in the address argument of mem.WriteWord`
	prev := m.ReadWord(b + mem.WordSize) // ok: named geometry
	return next, prev
}

func masks(addr uint64, n uint64) (uint64, uint64, uint64) {
	page := addr / 4096 // want `hand-rolled page size math on "addr"`
	line := addr >> 5   // want `hand-rolled line shift math on "addr"`
	off := addr & 3     // want `hand-rolled word mask math on "addr"`
	count := n / 4      // ok: n is not an address-named operand
	_ = count
	return page, line, off
}

/*lint:allow wordaddr*/ // want `lint:allow needs an analyzer name and a justification`
