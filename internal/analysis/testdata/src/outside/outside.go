// Package outside is not in the determinism scope: wall-clock reads
// are allowed here, as they are in the cmd/ front-ends that time real
// executions.
package outside

import "time"

// Stamp is fine here.
func Stamp() int64 {
	return time.Now().Unix() // ok: not a scoped package
}
