// Package callers exercises the allocerrors sentinel-comparison rule,
// which applies in every package, not just allocator packages.
package callers

import (
	"errors"

	"alloc"
	"mem"
)

// Classify sorts allocator failures into buckets.
func Classify(err error) string {
	if err == alloc.ErrBadFree { // want `sentinel ErrBadFree compared with ==`
		return "badfree"
	}
	if alloc.ErrTooLarge != err { // want `sentinel ErrTooLarge compared with !=`
		_ = err
	}
	if err == mem.ErrOutOfMemory { // want `sentinel ErrOutOfMemory compared with ==`
		return "oom"
	}
	if errors.Is(err, alloc.ErrTooLarge) { // ok: the blessed comparison
		return "toolarge"
	}
	//lint:allow allocerrors this fixture proves a justified suppression silences the diagnostic
	if err == mem.ErrBadAddress {
		return "badaddr"
	}
	return "other"
}
