// Package mem is a minimal fixture stand-in for the real internal/mem:
// the analyzers match packages by path suffix, so this stub carries the
// same geometry constants, sentinels and method names. wordaddr skips
// packages named mem, which is why the bare literals here are fine.
package mem

import "errors"

const (
	WordSize = 4
	LineSize = 32
	PageSize = 4096
)

var (
	ErrOutOfMemory = errors.New("mem: out of memory")
	ErrBadAddress  = errors.New("mem: address outside allocated region")
)

// Memory mirrors the reference-emitting simulated address space.
type Memory struct{}

func (m *Memory) ReadWord(addr uint64) uint64 { return addr }
func (m *Memory) WriteWord(addr, val uint64)  {}
func (m *Memory) Touch(addr uint64, n uint64) {}
func (m *Memory) Flush()                      {}

// Region mirrors the pure geometry surface plus the growing Sbrk.
type Region struct{}

func (r *Region) Sbrk(n uint64) (uint64, error) { return 0, nil }
func (r *Region) EncodePtr(addr uint64) uint64  { return addr }
func (r *Region) DecodePtr(w uint64) uint64     { return w }
func (r *Region) Contains(addr uint64) bool     { return addr != 0 }
func (r *Region) Base() uint64                  { return 0 }

// WordOf is the blessed word-index helper.
func WordOf(addr uint64) uint64 { return addr / WordSize }
