// Package serve exercises the service-package determinism rules: wall
// time and wall-clock timers are allowed only in clock.go.
package serve

import (
	"context"
	"time"
)

// Stamp reads the wall clock outside the clock shim.
func Stamp() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix()
}

// Deadline arms an unmockable timer.
func Deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout arms an unmockable wall-clock timer`
}

// DeadlineAt is the absolute-time variant.
func DeadlineAt(ctx context.Context, t time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadline(ctx, t) // want `context\.WithDeadline arms an unmockable wall-clock timer`
}

// CancelCause is the blessed replacement: the deadline fires on the
// injected clock, and the cause makes errors.Is report
// DeadlineExceeded.
func CancelCause(ctx context.Context, deadline <-chan time.Time) context.Context {
	ctx, cancel := context.WithCancelCause(ctx)
	go func() {
		<-deadline
		cancel(context.DeadlineExceeded)
	}()
	return ctx
}
