package serve

import "time"

// RealClock is the blessed clock shim: clock.go is the one file in a
// scoped package allowed to read wall time, because everything else
// reaches it through an injected interface.
type RealClock struct{}

// Now is allowed here.
func (RealClock) Now() time.Time { return time.Now() } // ok: clock.go is the clock shim

// After is allowed here.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) } // ok
