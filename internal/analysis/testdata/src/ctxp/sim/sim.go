// Package sim exercises ctxpoll: loops in context-taking functions
// that (transitively) drive per-reference work or call other context-
// taking functions must reach a ctx poll, directly or through a
// callee; amortized guarded polls count; fixed-bound quiet loops can
// carry a justified allow.
package sim

import (
	"context"

	"cost"
	"mem"
)

// Run drives the per-reference primitive with and without polling.
func Run(ctx context.Context, m *mem.Memory, n int) error {
	for i := 0; i < n; i++ { // want `loop scales with the workload \(it drives Memory\.Touch`
		m.Touch(uint64(i), 8)
	}
	for i := 0; i < n; i++ { // amortized guarded poll: clean
		if i%1024 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		m.Touch(uint64(i), 8)
	}
	return nil
}

// Spin has no calls at all, but its trip count has no syntactic bound.
func Spin(ctx context.Context, ready func() bool) {
	for !ready() { // want `loop scales with the workload \(its trip count has no syntactic bound\)`
	}
}

// RunAll calls a context-taking helper that never polls.
func RunAll(ctx context.Context, jobs []int) {
	for _, j := range jobs { // want `loop scales with the workload \(it calls the context-taking sim\.execute\)`
		execute(ctx, j)
	}
}

func execute(ctx context.Context, j int) { _ = j }

// RunPolite is the same shape, but the helper polls at entry: the poll
// closure satisfies the loop interprocedurally.
func RunPolite(ctx context.Context, jobs []int) {
	for _, j := range jobs {
		politeExecute(ctx, j)
	}
}

func politeExecute(ctx context.Context, j int) {
	if ctx.Err() != nil {
		return
	}
	_ = j
}

// Drain reaches Meter.Charge two hops down; the witness chain names
// the path.
func Drain(ctx context.Context, meter *cost.Meter, n int) {
	for i := 0; i < n; i++ { // want `loop scales with the workload \(it drives sim\.chargeOne`
		chargeOne(meter)
	}
}

func chargeOne(meter *cost.Meter) { meter.Charge(1) }

// Watch polls through a select on ctx.Done: clean.
func Watch(ctx context.Context, m *mem.Memory, ticks chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-ticks:
			m.Touch(uint64(t), 8)
		}
	}
}

// HelperNoCtx has no context parameter: its loops are charged to the
// context-taking callers whose bodies run them, not to it.
func HelperNoCtx(m *mem.Memory, n int) {
	for i := 0; i < n; i++ {
		m.Touch(uint64(i), 8)
	}
}

// DrainInbox pops a cross-thread free queue until empty. The drain is
// unbounded in step terms — a burst can park arbitrarily many objects —
// so running it without a poll is flagged.
func DrainInbox(ctx context.Context, m *mem.Memory, inbox []uint64) {
	for len(inbox) > 0 { // want `loop scales with the workload \(it drives Memory\.Touch`
		a := inbox[len(inbox)-1]
		inbox = inbox[:len(inbox)-1]
		m.Touch(a, 8)
	}
}

// DrainQueuesAmortized is the server driver's idiom: every free-queue
// drain — local death queues and cross-thread inboxes alike — shares
// one amortized counter, so the poll covers all of them.
func DrainQueuesAmortized(ctx context.Context, m *mem.Memory, inboxes [][]uint64) error {
	var frees uint64
	for t := range inboxes {
		for len(inboxes[t]) > 0 {
			frees++
			if frees%1024 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			a := inboxes[t][len(inboxes[t])-1]
			inboxes[t] = inboxes[t][:len(inboxes[t])-1]
			m.Touch(a, 8)
		}
	}
	return nil
}

// Bounded runs a fixed handful of context-taking calls; the justified
// allow documents why no poll is worth it.
func Bounded(ctx context.Context) {
	//lint:allow ctxpoll eight fixed iterations, each fast; a poll between them would be noise
	for i := 0; i < 8; i++ {
		execute(ctx, i)
	}
}
