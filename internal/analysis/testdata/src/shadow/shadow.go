// Package shadow exercises the puresim purity rules: nothing statically
// reachable from the oracle package may emit simulated references or
// charge instructions.
package shadow

import (
	"alloc"
	"cost"
	"mem"
	"oraclehelp"
)

// Oracle is the fixture stand-in for the shadow oracle.
type Oracle struct {
	m     *mem.Memory
	r     *mem.Region
	meter *cost.Meter
}

// Audit reads simulated memory directly.
func (o *Oracle) Audit(addr uint64) uint64 {
	return o.m.ReadWord(addr) // want `\(\*mem\.Memory\)\.ReadWord is reachable from the shadow oracle`
}

// Record charges instructions through a helper package: the traversal
// crosses the package boundary and reports at this origin call.
func (o *Oracle) Record(n uint64) {
	oraclehelp.Note(o.meter, n) // want `\(\*cost\.Meter\)\.Charge is reachable from the shadow oracle`
}

// Bill uses the allocator charging helper.
func (o *Oracle) Bill(n uint64) {
	alloc.Charge(o.m, n) // want `alloc\.Charge is reachable from the shadow oracle`
}

// Span is pure bookkeeping: region geometry emits nothing.
func (o *Oracle) Span(addr uint64) bool {
	return o.r.Contains(addr) // ok: pure geometry
}

// allocator is the wrapped-allocator shape.
type allocator interface {
	Malloc(n uint32) (uint64, error)
}

// Forward calls through the interface: dynamic dispatch is the analysis
// boundary — the forwarded call is the run being measured.
func (o *Oracle) Forward(a allocator, n uint32) (uint64, error) {
	return a.Malloc(n) // ok: interface calls are the boundary
}
