// A second file re-importing a package already imported by all.go.
package all

import (
	_ "reg/alloc/good" // want `package reg/alloc/good is blank-imported 2 times`
)
