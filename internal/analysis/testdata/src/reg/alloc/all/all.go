// Package all mirrors the real internal/alloc/all: blank imports pull
// in every allocator's init-time registration, and the curated lists
// name the paper's comparison set.
package all

import (
	_ "reg/alloc/empty" // want `package reg/alloc/empty is imported by reg/alloc/all but registers no allocator`
	_ "reg/alloc/good"
	_ "reg/alloc/zdup"
)

// Paper is the curated list; "typo" names nothing.
var Paper = []string{"good", "typo"} // want `list entry "typo" names no registered allocator`
