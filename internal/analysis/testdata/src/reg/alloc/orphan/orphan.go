// Package orphan registers an allocator but is never imported by all,
// so its allocator silently vanishes from the battery and the matrix.
package orphan

import "alloc"

func init() {
	alloc.Register("orphan", nil) // want `package reg/alloc/orphan registers an allocator but is not blank-imported`
}
