// Package good registers allocators and is blank-imported by all:
// the contract shape.
package good

import "alloc"

func init() {
	alloc.Register("good", nil)
	alloc.Register("shared", nil)
}
