// Package empty registers nothing; all's import of it is dead.
package empty

// placeholder gives the package content.
const placeholder = 0
