// Package zdup re-registers a name another package owns: a panic
// waiting for init time, caught at lint time instead.
package zdup

import "alloc"

func init() {
	alloc.Register("zdup", nil)
	alloc.Register("shared", nil) // want `allocator name "shared" is already registered by reg/alloc/good`
}
