// Package oraclehelp is a helper the shadow fixture reaches through a
// cross-package call; its impurity is reported at the call in shadow.
package oraclehelp

import "cost"

// Note charges the meter: impure.
func Note(m *cost.Meter, n uint64) {
	m.Charge(n)
}
