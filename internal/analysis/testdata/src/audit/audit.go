// Package audit exercises the suppression audit: a directive naming an
// analyzer outside the declared known set, and a directive for an
// analyzer that ran but suppressed nothing, are both diagnostics. The
// driving test (internal/analysis/suite audit test) runs the full
// suite over this package with WithKnownNames and asserts on the two
// findings below.
package audit

//lint:allow nosuchanalyzer the name is a typo, so this suppresses nothing and must flag
var a = 1

//lint:allow determinism stale: nothing on the next line reads a clock anymore
var b = 2
