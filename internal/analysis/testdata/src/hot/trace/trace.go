// Package trace exercises hotalloc on the Block append hot set,
// mirroring the real trace.Block's lazily materialized Runs column.
package trace

type Block struct {
	Addrs []uint64
	Runs  []uint32
}

// Append grows by append only: exempt.
func (b *Block) Append(a uint64) {
	b.Addrs = append(b.Addrs, a)
}

// AppendRun materializes the Runs column once, under a justified
// allow, like the real implementation.
func (b *Block) AppendRun(a uint64, n uint32) {
	if b.Runs == nil {
		//lint:allow hotalloc one-time column materialization, amortized across the block's reuse
		b.Runs = make([]uint32, len(b.Addrs))
	}
	b.Addrs = append(b.Addrs, a)
	b.Runs = append(b.Runs, n)
}

// Reset keeps the backing arrays.
func (b *Block) Reset() {
	b.Addrs = b.Addrs[:0]
	if b.Runs != nil {
		b.Runs = b.Runs[:0]
	}
}
