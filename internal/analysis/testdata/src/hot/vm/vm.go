// Package vm exercises hotalloc on the StackSim hot set.
package vm

type StackSim struct{ hist []uint64 }

// record grows its histogram by append: exempt.
func (s *StackSim) record(d int) {
	for d >= len(s.hist) {
		s.hist = append(s.hist, 0)
	}
	s.hist[d]++
}

// accessPage allocates a channel per probe: flagged.
func (s *StackSim) accessPage(p uint64) {
	c := make(chan uint64, 1) // want `make in hot function StackSim.accessPage`
	c <- p
}

// Curve is a cold reader: copies allocate freely.
func (s *StackSim) Curve() []uint64 {
	out := make([]uint64, len(s.hist))
	copy(out, s.hist)
	return out
}
