// Package cache exercises the hotalloc zero-allocation contract: hot
// methods (matched by receiver and name) may not close over, box,
// make/new or otherwise allocate; append into reused buffers is
// exempt; non-hot methods allocate freely.
package cache

import (
	"fmt"
	"sort"
)

type point struct{ x uint64 }

func box(v any) { _ = v }

// Group mirrors the fused-sweep receiver; Ref/Block/accessLine/
// decompose are in the hot set.
type Group struct {
	buf  []uint64
	seen map[uint64]bool
}

// Ref trips every syntactic allocation class.
func (g *Group) Ref(addr uint64) {
	f := func() {} // want `closure literal in hot function Group.Ref`
	_ = f
	m := map[uint64]bool{} // want `map literal in hot function Group.Ref`
	_ = m
	sl := []uint64{addr} // want `slice literal in hot function Group.Ref`
	_ = sl
	p := &point{x: addr} // want `&composite literal in hot function Group.Ref`
	_ = p
	b := make([]byte, 8) // want `make in hot function Group.Ref`
	_ = b
	q := new(point) // want `new in hot function Group.Ref`
	_ = q
	s := "addr " + fmt.Sprint(addr) // want `string concatenation in hot function Group.Ref` `fmt\.Sprint allocates`
	_ = s
	sort.Slice(g.buf, func(i, j int) bool { return g.buf[i] < g.buf[j] }) // want `sort\.Slice boxes its comparator` `closure literal in hot function Group.Ref`
	box(addr)                                                             // want `argument boxes uint64 into interface`
}

// Block uses only the sanctioned idioms: append into a reused buffer
// and a call to a documented cold-path helper.
func (g *Group) Block(addrs []uint64) {
	for _, a := range addrs {
		g.buf = append(g.buf, a)
	}
	g.cold(len(addrs))
}

// cold is not in the hot set; it may allocate freely.
func (g *Group) cold(n int) {
	g.seen = make(map[uint64]bool, n)
}

// accessLine shows a justified suppression: the diagnostic on the make
// is covered by the directive above it.
func (g *Group) accessLine(line uint64) {
	if g.buf == nil {
		//lint:allow hotalloc one-time scratch materialization, amortized across replays
		g.buf = make([]uint64, 0, 64)
	}
	g.buf = append(g.buf, line)
}

// decompose is clean; its leftover directive is stale and the
// suppression audit flags it.
func (g *Group) decompose() {
	//lint:allow hotalloc stale justification kept after the fix // want `lint:allow hotalloc suppresses no diagnostic here`
	g.buf = g.buf[:0]
}

// lineSet.addRange is hot and clean.
type lineSet struct{ dense []uint64 }

func (s *lineSet) addRange(first, last uint64) {
	for ; first <= last; first++ {
		s.dense = append(s.dense, first)
	}
}

// Sharing mirrors the sharing attributor's sweep path; Ref, Block,
// access, runRow and accessLine are in the hot set.
type Sharing struct {
	written []uint64
	counts  map[uint64]uint64
}

// accessLine may not materialize per-event state inline; the counter
// map has to come from a cold-path helper.
func (s *Sharing) accessLine(line uint64) {
	if s.counts == nil {
		s.counts = map[uint64]uint64{} // want `map literal in hot function Sharing.accessLine`
	}
	s.counts[line]++
}

// runRow folds a run with index arithmetic and append into a reused
// buffer: clean.
func (s *Sharing) runRow(addr uint64, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.written = append(s.written, addr+i)
	}
}

// event is not in the hot set — the attributor's cold event path may
// materialize counters freely.
func (s *Sharing) event() {
	s.counts = make(map[uint64]uint64)
}

// Helper is neither a hot receiver nor a hot name: free to allocate.
func Helper() []byte { return make([]byte, 32) }
