// Package serve exercises the locksafe discipline: no mutex held
// across channel operations, I/O or calls that may block; consistent
// acquisition order; no re-entry. The clean functions demonstrate the
// sanctioned patterns the must-hold lattice keeps precise.
package serve

import (
	"os"
	"sync"
)

type Server struct {
	mu    sync.Mutex
	cmu   sync.Mutex
	jobs  map[string]int
	queue chan int
	done  chan struct{}
}

// Submit holds mu across one of each blocking class.
func (s *Server) Submit(id string) {
	s.mu.Lock()
	s.queue <- 1 // want `channel send may block while s.mu is held`
	<-s.done     // want `channel receive may block while s.mu is held`
	select {     // want `select with no default case may block while s.mu is held`
	case v := <-s.queue:
		_ = v
	}
	os.ReadFile(id) // want `os.ReadFile may block while s.mu is held`
	s.readDisk(id)  // want `call to Server.readDisk may block \(os\.ReadFile\) while s.mu is held`
	s.mu.Unlock()
}

// readDisk seeds the may-block closure through its os call.
func (s *Server) readDisk(id string) {
	os.ReadFile(id)
}

// Drain ranges over a channel under the lock.
func (s *Server) Drain() {
	s.mu.Lock()
	for v := range s.queue { // want `range over a channel blocks on every iteration while s.mu is held`
		_ = v
	}
	s.mu.Unlock()
}

// NonBlocking holds the lock only across non-blocking work.
func (s *Server) NonBlocking(id string) {
	s.mu.Lock()
	select { // a default case makes the send non-blocking: clean
	case s.queue <- 1:
	default:
	}
	s.jobs[id]++
	s.mu.Unlock()
	s.queue <- 1    // released: clean
	os.ReadFile(id) // released: clean
}

// EarlyReturn exercises the must-hold precision: the unlocked early
// arm dies at its return, so the receive on it is clean, and the
// fall-through is still known locked.
func (s *Server) EarlyReturn(id string) {
	s.mu.Lock()
	if id == "" {
		s.mu.Unlock()
		<-s.done // released on this arm: clean
		return
	}
	s.jobs[id]++
	s.mu.Unlock()
}

// DeferUnlock leaves the lock held for the whole body; nothing in the
// body blocks, so it is clean.
func (s *Server) DeferUnlock(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id]++
}

// Spawn launches the blocking work on its own goroutine: the goroutine
// does not run under the caller's lock, so this is clean.
func (s *Server) Spawn() {
	s.mu.Lock()
	go func() {
		<-s.done
	}()
	s.mu.Unlock()
}

// Reorder and Inverse acquire the pair in opposite orders: both edges
// lie on a cycle and both sites flag.
func (s *Server) Reorder() {
	s.mu.Lock()
	s.cmu.Lock() // want `lock order inversion`
	s.cmu.Unlock()
	s.mu.Unlock()
}

func (s *Server) Inverse() {
	s.cmu.Lock()
	s.mu.Lock() // want `lock order inversion`
	s.mu.Unlock()
	s.cmu.Unlock()
}

// Again re-enters a held, non-reentrant lock through a helper.
func (s *Server) Again() {
	s.mu.Lock()
	s.lockedTouch() // want `call to Server.lockedTouch may re-acquire s.mu`
	s.mu.Unlock()
}

func (s *Server) lockedTouch() {
	s.mu.Lock()
	s.mu.Unlock()
}

// Persist documents a deliberate hold with a justified allow.
func (s *Server) Persist(id string) {
	s.mu.Lock()
	//lint:allow locksafe this fixture's write must be atomic with the map update below
	os.WriteFile(id, nil, 0o644)
	s.jobs[id] = 1
	s.mu.Unlock()
}

// Store dispatch: the blocking implementation is reached through an
// interface, which the engine expands to in-tree implementations.
type Store interface {
	Get(string) ([]byte, error)
}

type DiskStore struct{}

func (d *DiskStore) Get(p string) ([]byte, error) { return os.ReadFile(p) }

type Tiered struct {
	mu sync.Mutex
	st Store
}

func (t *Tiered) Lookup(p string) {
	t.mu.Lock()
	t.st.Get(p) // want `call to DiskStore.Get may block \(os\.ReadFile\) while t.mu is held`
	t.mu.Unlock()
}
