// Package cost is a minimal fixture stand-in for the real
// internal/cost: the Meter methods puresim bans.
package cost

// Meter mirrors the instruction meter.
type Meter struct{}

func (m *Meter) Charge(n uint64)          {}
func (m *Meter) ChargeTo(d int, n uint64) {}
func (m *Meter) Enter(d int) func()       { return func() {} }
