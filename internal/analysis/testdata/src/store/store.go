// Package store exercises the determinism rules in the durable-store
// package: index timestamps must come from the injected Clock, and
// listings must never leak map iteration order into what two processes
// over the same directory would enumerate.
package store

import (
	"sort"
	"time"
)

// Entry is a stub of the store's index entry.
type Entry struct {
	Hash     string
	StoredAt time.Time
}

// Stamp reads the wall clock outside the clock shim.
func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// ListUnsorted iterates the index map raw: two loads of the same
// directory would enumerate entries in different orders.
func ListUnsorted(byHash map[string]Entry) []Entry {
	var out []Entry
	for _, e := range byHash { // want `map iteration order is randomized`
		out = append(out, e)
	}
	return out
}

// ListSorted is the blessed shape: collect keys, sort, then index.
func ListSorted(byHash map[string]Entry) []Entry {
	keys := make([]string, 0, len(byHash))
	for k := range byHash { // ok: keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, byHash[k])
	}
	return out
}
