package store

import "time"

// RealClock mirrors internal/store's blessed clock shim: StoredAt
// timestamps come from an injected Clock, and clock.go is the one file
// allowed to read wall time to implement it.
type RealClock struct{}

// Now is allowed here.
func (RealClock) Now() time.Time { return time.Now() } // ok: clock.go is the clock shim
