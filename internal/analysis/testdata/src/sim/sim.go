// Package sim exercises the determinism rules inside a scoped package
// (the analyzer covers sim, paper, obs, cache and vm by path suffix).
package sim

import (
	"math/rand" // want `import of math/rand in a determinism-scoped package`
	"sort"
	"time"
)

var _ = rand.Int

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix()
}

// Fold iterates a map in randomized order.
func Fold(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

// Sorted uses the blessed collect-keys-then-sort idiom.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: the sorted-keys idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counted justifies an order-insensitive fold.
func Counted(m map[string]int) int {
	n := 0
	//lint:allow determinism a pure commutative count; iteration order cannot affect the result
	for range m {
		n++
	}
	return n
}

// Slices are ordered; ranging one is fine.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs { // ok: slice iteration is ordered
		total += x
	}
	return total
}
