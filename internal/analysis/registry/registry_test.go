package registry_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/registry"
)

func TestRegistry(t *testing.T) {
	// The whole fixture tree is loaded: the analyzer anchors on
	// reg/alloc/all and scans its siblings for registrations.
	analysistest.Run(t, "../testdata", registry.Analyzer,
		"reg/alloc/all", "reg/alloc/good", "reg/alloc/zdup",
		"reg/alloc/orphan", "reg/alloc/empty")
}
