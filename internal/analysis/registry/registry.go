// Package registry keeps the allocator registry closed under the
// differential battery: every allocator implementation package under
// internal/alloc/ must be blank-imported exactly once by
// internal/alloc/all, so that alloc.Names() — which the alloctest
// battery, the fuzz harness and every cmd/ front-end enumerate — covers
// every implementation that exists. A package that registers but is not
// imported silently vanishes from the paper's comparison matrix and
// from the contract battery; that is exactly the rot this analyzer
// exists to stop.
//
// Checks, anchored on the package named "all" whose parent path segment
// is "alloc":
//
//  1. Every sibling package (under the same alloc/ prefix) that calls
//     alloc.Register must be blank-imported by all — exactly once.
//  2. Every in-tree import of all must point at a package that actually
//     registers an allocator (no dead imports).
//  3. A registry name must be registered by exactly one package
//     (duplicates panic at init time; this catches them at lint time).
//  4. Every name in all's curated lists (Paper, Extended, Modern and
//     their compositions) must be a name some package registers
//     (catches typos in the lists).
package registry

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"mallocsim/internal/analysis"
)

// Analyzer is the registry analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "registry",
	Doc:  "every allocator package under internal/alloc must be registered exactly once in internal/alloc/all, with list names matching registrations, so the alloctest battery covers it",
	Run:  run,
}

// regSite is one alloc.Register call.
type regSite struct {
	pkg string
	pos ast.Node
}

func run(pass *analysis.Pass) error {
	// Anchor on alloc/all so the whole-tree check runs exactly once.
	if !analysis.PkgIs(pass.Path, "all") || !strings.HasSuffix(parentPath(pass.Path), "alloc") {
		return nil
	}
	prefix := parentPath(pass.Path) + "/"

	// Registrations across the tree: name literal → registering sites.
	registered := map[string][]regSite{}
	registeringPkgs := map[string]bool{}
	firstReg := map[string]regSite{}
	var regPkgList []string
	for _, p := range pass.All {
		if !strings.HasPrefix(p.Path, prefix) || p.Path == pass.Path {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil ||
					!analysis.PkgIs(fn.Pkg().Path(), "alloc") || len(call.Args) < 1 {
					return true
				}
				name, ok := stringLit(p.Info, call.Args[0])
				if !ok {
					return true
				}
				registered[name] = append(registered[name], regSite{pkg: p.Path, pos: call})
				if !registeringPkgs[p.Path] {
					registeringPkgs[p.Path] = true
					regPkgList = append(regPkgList, p.Path)
					firstReg[p.Path] = regSite{pkg: p.Path, pos: call}
				}
				return true
			})
		}
	}

	// Imports of the all package.
	importCount := map[string]int{}
	importPos := map[string]ast.Node{}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			importCount[path]++
			importPos[path] = imp
		}
	}

	// 1. Registering package never imported, or imported more than once.
	sort.Strings(regPkgList)
	for _, pkgPath := range regPkgList {
		switch importCount[pkgPath] {
		case 0:
			// Report at the package's first Register call: that is where
			// the fix (adding the blank import) is motivated.
			pass.Reportf(firstReg[pkgPath].pos.Pos(),
				"package %s registers an allocator but is not blank-imported by %s: it is invisible to alloc.Names(), the alloctest battery and every front-end",
				pkgPath, pass.Path)
		case 1:
			// Registered and imported exactly once: the contract.
		default:
			pass.Reportf(importPos[pkgPath].Pos(),
				"package %s is blank-imported %d times by %s; import it exactly once",
				pkgPath, importCount[pkgPath], pass.Path)
		}
	}

	// 2. Dead imports: an in-tree import that registers nothing.
	var importPaths []string
	for path := range importCount {
		importPaths = append(importPaths, path)
	}
	sort.Strings(importPaths)
	for _, path := range importPaths {
		if strings.HasPrefix(path, prefix) && !registeringPkgs[path] {
			pass.Reportf(importPos[path].Pos(),
				"package %s is imported by %s but registers no allocator; drop the dead import or add the missing alloc.Register call",
				path, pass.Path)
		}
	}

	// 3. Duplicate registrations of one name across packages.
	var names []string
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := registered[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pkg < sites[j].pkg })
		for _, dup := range sites[1:] {
			pass.Reportf(dup.pos.Pos(),
				"allocator name %q is already registered by %s; duplicate registrations panic at init time",
				name, sites[0].pkg)
		}
	}

	// 4. Curated list names must resolve to registrations.
	checkCuratedLists(pass, registered)
	return nil
}

// checkCuratedLists verifies every string literal in the all package's
// package-level variables (the Paper/Extended/Modern curated lists)
// names a registered allocator.
func checkCuratedLists(pass *analysis.Pass, registered map[string][]regSite) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						lit, ok := n.(*ast.BasicLit)
						if !ok {
							return true
						}
						name, ok := stringLit(pass.TypesInfo, lit)
						if !ok {
							return true
						}
						if _, exists := registered[name]; !exists {
							pass.Reportf(lit.Pos(),
								"list entry %q names no registered allocator (typo, or its package was never registered)", name)
						}
						return true
					})
				}
			}
		}
	}
}

func parentPath(path string) string {
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return ""
	}
	return path[:i]
}

func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
