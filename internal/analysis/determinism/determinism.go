// Package determinism protects the repo's byte-identical-output
// guarantees: parallel experiment runs (workers=1 ≡ workers=8, PR 2)
// and shadow-checked runs (-check changes no measured byte, PR 3) only
// hold if the simulation and reporting pipeline is a pure function of
// its inputs. In the packages that compute or assemble results —
// sim, paper, obs, cache and vm — this analyzer forbids the three
// stdlib trapdoors through which nondeterminism leaks:
//
//  1. Wall-clock reads: time.Now, time.Since and friends. Simulated
//     time is instruction counts (cost.Meter); wall time belongs in
//     cmd/ front-ends and benchmarks only.
//  2. Global math/rand (and math/rand/v2): the global source is seeded
//     per-process and shared across goroutines. All stochastic inputs
//     must come from internal/rng, which is seeded explicitly and
//     deterministic per (seed, stream). hash/maphash falls under the
//     same rule: its seeds are randomized per process, so the sampled
//     stack-distance filter (PR 7) hashes page numbers with a fixed
//     avalanche function instead.
//  3. Unsorted map iteration: a range over a map observes Go's
//     randomized iteration order. The one blessed shape is the
//     collect-keys-then-sort idiom — a loop body that only appends the
//     range key to a slice which is passed to a sort function later in
//     the same block. Anything else must either iterate a slice, sort
//     first, or carry a //lint:allow determinism justification proving
//     the fold is order-insensitive.
//
// The experiment service (internal/serve, PR 5) is also in scope: a
// served report must be the same bytes the locality CLI writes. serve
// does legitimately need wall time — job timestamps and per-job
// deadlines — so the rules gain one blessed escape hatch: a file named
// clock.go may read the clock; everything else must go through the
// Clock interface it defines. context.WithTimeout and
// context.WithDeadline are banned in scoped packages outside clock.go
// for the same reason — they arm an unmockable wall-clock timer; arm
// the deadline on the injected clock and cancel with
// context.WithCancelCause(…)(context.DeadlineExceeded) instead.
package determinism

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"mallocsim/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "internal/{sim,paper,obs,cache,vm,serve,store} must not read wall clocks, use global math/rand, or iterate maps unsorted — run results must be byte-identical across runs and worker counts",
	Run:  run,
}

// scopedPkgs are the package names (path-suffix matched) the guarantees
// cover. store is scoped so that two processes over one store directory
// enumerate documents identically (listings, index rewrites).
var scopedPkgs = []string{"sim", "paper", "obs", "cache", "vm", "serve", "store"}

// clockFuncs are the time package functions that read the wall clock or
// schedule against it.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// bannedImports map forbidden import paths to the replacement.
// hash/maphash is banned for the same reason as global math/rand: its
// seeds (maphash.MakeSeed, the zero-Hash auto-seed) are randomized per
// process, so any sampling filter built on it would select a different
// page population every run. The sampled stack-distance mode
// (vm.WithSampleShift) must use a fixed avalanche hash of the page
// number instead, keeping sampled curves a pure function of
// (trace, shift).
var bannedImports = map[string]string{
	"math/rand":    "internal/rng (explicitly seeded, deterministic per stream)",
	"math/rand/v2": "internal/rng (explicitly seeded, deterministic per stream)",
	"hash/maphash": "a fixed avalanche hash of the value (vm's sampling hash); maphash seeds are randomized per process",
}

func inScope(path string) bool {
	for _, p := range scopedPkgs {
		if analysis.PkgIs(path, p) || analysis.PkgUnder(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		checkImports(pass, f)
		checkClockAndMaps(pass, f)
	}
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := imp.Path.Value
		path = path[1 : len(path)-1]
		if repl, banned := bannedImports[path]; banned {
			pass.Reportf(imp.Pos(), "import of %s in a determinism-scoped package; use %s", path, repl)
		}
	}
}

// isClockFile reports whether f is the package's blessed clock shim —
// the one file allowed to touch the wall clock, which must confine it
// behind an injected interface (internal/serve's Clock).
func isClockFile(pass *analysis.Pass, f *ast.File) bool {
	return filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "clock.go"
}

func checkClockAndMaps(pass *analysis.Pass, f *ast.File) {
	clockFile := isClockFile(pass, f)
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn, ok := calleeFunc(pass, n)
			if !ok || fn.Pkg() == nil {
				break
			}
			switch {
			case fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] && !clockFile:
				pass.Reportf(n.Pos(),
					"time.%s reads the wall clock in a determinism-scoped package; simulated time is instruction counts (cost.Meter), and service wall time goes through the injected Clock (clock.go)",
					fn.Name())
			case fn.Pkg().Path() == "context" &&
				(fn.Name() == "WithTimeout" || fn.Name() == "WithDeadline") && !clockFile:
				pass.Reportf(n.Pos(),
					"context.%s arms an unmockable wall-clock timer in a determinism-scoped package; arm the deadline on the injected Clock and cancel with context.WithCancelCause",
					fn.Name())
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn, ok
}

// checkMapRange flags a range over a map unless it is the
// collect-keys-then-sort idiom.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isSortedKeysIdiom(pass, rs, stack) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order is randomized; collect keys and sort (the keys := ...; sort.X(keys) idiom), iterate a slice instead, or justify order-insensitivity with //lint:allow determinism")
}

// isSortedKeysIdiom recognizes
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)          // or sort.Slice/slices.Sort... on keys
//
// where the sort call appears after the loop in the same enclosing
// block.
func isSortedKeysIdiom(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || a0.Name != dst.Name {
		return false
	}
	if a1, ok := call.Args[1].(*ast.Ident); !ok || a1.Name != key.Name {
		return false
	}
	// Find the enclosing block and require a sort of dst after the loop.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, st := range block.List {
			if st == ast.Stmt(rs) || containsNode(st, rs) {
				after = true
				continue
			}
			if after && sortsSlice(pass, st, dst.Name) {
				return true
			}
		}
		return false
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// sortsSlice reports whether stmt calls sort.X(name, ...) or
// slices.SortX(name, ...).
func sortsSlice(pass *analysis.Pass, stmt ast.Stmt, name string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, ok := calleeFunc(pass, call)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == name {
			found = true
		}
		return !found
	})
	return found
}
