package determinism_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata", determinism.Analyzer, "sim", "vm", "outside", "serve", "store")
}
