// Package wordaddr keeps the machine geometry — word size 4, cache
// line size 32, page size 4096 — in one place: package mem. Outside
// mem, address/line/page arithmetic must spell those quantities as
// mem.WordSize, mem.LineSize and mem.PageSize (or use the mem helpers
// AlignUp, PageOf, PageOffset, LineOf, WordOf); a raw 4 or 4096 in
// address math is a latent bug the paper's geometry-sensitive results
// cannot tolerate (a simulator disagreeing with the allocators about
// the word size silently invalidates every locality figure).
//
// Three patterns are flagged, everywhere except in a package named mem:
//
//  1. Integer literals 4, 32 or 4096 appearing inside the address
//     argument of a mem access or pointer-translation call
//     ((*mem.Memory).ReadWord/WriteWord/Touch,
//     (*mem.Region).EncodePtr/DecodePtr/Contains).
//  2. Constant or variable declarations initialized to a bare 4096 (or
//     1<<12) — page-size mirrors — and declarations whose name
//     mentions "line" or "word" initialized to bare 32 or 4.
//  3. Shift/mask/modulo arithmetic (%, /, &, &^, <<, >>) combining an
//     address-named operand (addr, ptr, base, brk, off...) with a bare
//     geometry literal (2, 3, 4, 5, 12, 31, 32, 4095, 4096).
package wordaddr

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"mallocsim/internal/analysis"
)

// Analyzer is the wordaddr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wordaddr",
	Doc:  "address/line/page arithmetic outside internal/mem must use mem.WordSize/LineSize/PageSize and the mem helpers, not raw 4/32/4096 literals",
	Run:  run,
}

// geometry maps a magic literal to the mem name that must replace it.
var geometry = map[int64]string{
	4:    "mem.WordSize",
	32:   "mem.LineSize",
	4096: "mem.PageSize",
}

// addrCalls lists the mem methods whose first argument is a full
// virtual address.
var addrCalls = map[string]bool{
	"ReadWord": true, "WriteWord": true, "Touch": true,
	"EncodePtr": true, "DecodePtr": true, "Contains": true,
}

// addrName matches identifiers that conventionally hold addresses or
// address offsets.
var addrName = regexp.MustCompile(`(?i)^(addr|ptr|base|brk|off|offset)[0-9]*$|.*(Addr|Ptr|Base|Brk|Offset)$`)

// maskLits are the bare literals that betray hand-rolled word/line/page
// shift-mask math when combined with an address operand.
var maskLits = map[int64]string{
	2: "word shift", 3: "word mask", 4: "word size",
	5: "line shift", 31: "line mask", 32: "line size",
	12: "page shift", 4095: "page mask", 4096: "page size",
}

func run(pass *analysis.Pass) error {
	if analysis.PkgIs(pass.Path, "mem") {
		return nil // mem is where the geometry is defined
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := memAddrCall(pass, n); ok && len(n.Args) > 0 {
				checkAddrExpr(pass, n.Args[0], name)
			}
		case *ast.ValueSpec:
			checkValueSpec(pass, n)
		case *ast.BinaryExpr:
			checkMaskMath(pass, n)
		}
		return true
	})
}

// memAddrCall reports whether call invokes one of the mem methods
// taking an address first argument, returning the method name.
func memAddrCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !analysis.PkgIs(fn.Pkg().Path(), "mem") {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return "", false
	}
	if !addrCalls[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// checkAddrExpr flags geometry literals anywhere inside an address
// expression.
func checkAddrExpr(pass *analysis.Pass, e ast.Expr, method string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
			if v, err := strconv.ParseInt(lit.Value, 0, 64); err == nil {
				if name, magic := geometry[v]; magic {
					pass.Reportf(lit.Pos(),
						"raw geometry literal %s in the address argument of mem.%s; use %s",
						lit.Value, method, name)
				}
			}
		}
		return true
	})
}

// checkValueSpec flags const/var declarations that re-derive geometry.
func checkValueSpec(pass *analysis.Pass, spec *ast.ValueSpec) {
	lineName := regexp.MustCompile(`(?i)line`)
	wordName := regexp.MustCompile(`(?i)word`)
	for i, name := range spec.Names {
		if i >= len(spec.Values) {
			break
		}
		v, ok := intValue(spec.Values[i])
		if !ok {
			continue
		}
		switch {
		case v == 4096:
			pass.Reportf(spec.Values[i].Pos(),
				"%s re-derives the 4 KB page size as a bare literal; use mem.PageSize", name.Name)
		case v == 32 && lineName.MatchString(name.Name):
			pass.Reportf(spec.Values[i].Pos(),
				"%s re-derives the 32-byte cache line size as a bare literal; use mem.LineSize", name.Name)
		case v == 4 && wordName.MatchString(name.Name):
			pass.Reportf(spec.Values[i].Pos(),
				"%s re-derives the 4-byte word size as a bare literal; use mem.WordSize", name.Name)
		}
	}
}

// intValue evaluates a literal or 1<<n shift to an int64.
func intValue(e ast.Expr) (int64, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return 0, false
		}
		v, err := strconv.ParseInt(e.Value, 0, 64)
		return v, err == nil
	case *ast.BinaryExpr:
		if e.Op != token.SHL {
			return 0, false
		}
		x, okx := intValue(e.X)
		y, oky := intValue(e.Y)
		if !okx || !oky || y < 0 || y > 62 {
			return 0, false
		}
		return x << uint(y), true
	}
	return 0, false
}

// checkMaskMath flags shift/mask arithmetic pairing an address-named
// operand with a bare geometry literal.
func checkMaskMath(pass *analysis.Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.REM, token.QUO, token.AND, token.AND_NOT, token.SHL, token.SHR:
	default:
		return
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		name, ok := addrOperand(pair[0])
		if !ok {
			continue
		}
		lit, ok := pair[1].(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			continue
		}
		v, err := strconv.ParseInt(lit.Value, 0, 64)
		if err != nil {
			continue
		}
		if what, magic := maskLits[v]; magic {
			pass.Reportf(be.Pos(),
				"hand-rolled %s math on %q (%s %s %s); use the mem helpers (mem.AlignUp, mem.PageOf, mem.LineOf, mem.WordOf) or the mem geometry constants",
				what, name, name, be.Op, lit.Value)
			return
		}
	}
}

// addrOperand reports whether e is an identifier (or selector leaf)
// with an address-ish name.
func addrOperand(e ast.Expr) (string, bool) {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	return name, addrName.MatchString(name)
}
