package wordaddr_test

import (
	"testing"

	"mallocsim/internal/analysis/analysistest"
	"mallocsim/internal/analysis/wordaddr"
)

func TestWordAddr(t *testing.T) {
	analysistest.Run(t, "../testdata", wordaddr.Analyzer, "wa")
}
