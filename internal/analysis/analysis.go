// Package analysis is the stdlib-only analyzer framework behind
// cmd/alloclint.
//
// It mirrors the golang.org/x/tools/go/analysis surface — an Analyzer
// owns a Run function receiving a *Pass with the package's syntax and
// type information, and reports position-anchored Diagnostics — but is
// implemented entirely on go/{ast,build,parser,token,types} so the lint
// suite works in hermetic build environments where the x/tools module
// cannot be fetched (see the pinned-dependency note in go.mod). The API
// shapes match deliberately: if golang.org/x/tools becomes available,
// each analyzer ports by swapping this import for go/analysis and the
// local analysistest for its x/tools namesake.
//
// # Suppression
//
// A diagnostic is suppressed by an allow directive:
//
//	//lint:allow <analyzer> <justification>
//
// placed at the end of the offending line or on its own line directly
// above. The justification is mandatory — a bare //lint:allow name is
// itself a diagnostic — so every suppression in the tree documents why
// the invariant does not apply. See README.md "Static analysis".
//
// Suppressions are audited: a directive that names an analyzer outside
// the known set (when the driver supplies one with WithKnownNames) or
// that no longer suppresses any diagnostic of an analyzer that ran is
// itself a diagnostic, so dead allows cannot linger after the code
// they excused is rewritten.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mallocsim/internal/analysis/escape"
	"mallocsim/internal/analysis/load"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives ("allocerrors", "wordaddr", ...).
	Name string
	// Doc is the one-paragraph description printed by alloclint -help.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message states the violation and the fix.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Fset maps positions for every file in the run (shared loader fset).
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Files are the package's parsed sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo is the type-checker's facts for Files.
	TypesInfo *types.Info
	// All lists every package loaded in this run, sorted by import
	// path, for whole-tree analyzers (registry, puresim).
	All []*load.Package
	// Escapes holds compiler escape-analysis facts for the whole tree
	// when the driver ingested them (WithEscapes); nil means the facts
	// are unavailable and escape-backed checks are skipped.
	Escapes []escape.Fact
	// Shared is a scratch space scoped to one Run invocation and handed
	// to every pass, for memoizing whole-tree artifacts (the
	// interprocedural call graph) across analyzers and packages.
	Shared map[any]any

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A RunOption configures one Run invocation.
type RunOption func(*runConfig)

type runConfig struct {
	escapes []escape.Fact
	known   map[string]bool
}

// WithEscapes supplies compiler escape-analysis facts to every pass
// (see internal/analysis/escape and the hotalloc analyzer).
func WithEscapes(facts []escape.Fact) RunOption {
	return func(c *runConfig) { c.escapes = facts }
}

// WithKnownNames declares the complete set of analyzer names valid in
// //lint:allow directives, enabling the unknown-name audit. Drivers
// that run the full suite pass suite names; single-analyzer harnesses
// (analysistest) omit it, since directives for the analyzers they do
// not load are legitimately outside their view.
func WithKnownNames(names []string) RunOption {
	return func(c *runConfig) {
		c.known = map[string]bool{"lint": true} // the framework's own diagnostics
		for _, n := range names {
			c.known[n] = true
		}
	}
}

// Run executes every analyzer over every package, applies //lint:allow
// suppression, audits the suppressions themselves, and returns the
// surviving diagnostics sorted by position then analyzer name. The
// error reports analyzer failures, not lint findings: a clean run over
// dirty code returns diagnostics and a nil error.
func Run(pkgs []*load.Package, fset *token.FileSet, analyzers []*Analyzer, opts ...RunOption) ([]Diagnostic, error) {
	var cfg runConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var diags []Diagnostic
	shared := map[any]any{}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Path:      pkg.Path,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				All:       pkgs,
				Escapes:   cfg.escapes,
				Shared:    shared,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	allows, bad := collectAllows(pkgs, fset)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.covers(d) {
			kept = append(kept, d)
		}
	}
	// Stale-suppression audit: after coverage is known, a directive that
	// suppressed nothing is dead weight — either its analyzer name is
	// not a registered analyzer at all (a typo that silently suppresses
	// nothing, checked only when the driver declared the known set), or
	// the code it excused has been fixed and the directive should go.
	// Only analyzers that actually ran can vouch for "suppresses
	// nothing"; directives for analyzers outside this run are left
	// alone. Audit findings are not themselves suppressible.
	ran := map[string]bool{"lint": true}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, e := range allows.entries() {
		switch {
		case cfg.known != nil && !cfg.known[e.name]:
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      e.pos,
				Message: fmt.Sprintf(
					"lint:allow names unknown analyzer %q; fix the name or delete the directive (alloclint -list shows the suite)", e.name),
			})
		case ran[e.name] && !e.used:
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      e.pos,
				Message: fmt.Sprintf(
					"lint:allow %s suppresses no diagnostic here; the code it excused is gone, so delete the stale directive", e.name),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// allowSet records, per file and line, which analyzers are suppressed,
// and which directives earned their keep by covering a diagnostic.
type allowSet struct {
	byLine map[string]map[int]map[string]*allowEntry
	all    []*allowEntry
}

type allowEntry struct {
	name string
	pos  token.Position
	used bool
}

// covers reports whether a directive suppresses d, marking the
// directive used. A directive covers its own line and the line
// directly below, so both trailing comments and own-line comments
// above the code work.
func (s *allowSet) covers(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if e := lines[line][d.Analyzer]; e != nil {
			e.used = true
			hit = true
		}
	}
	return hit
}

// entries lists every well-formed directive in collection order.
func (s *allowSet) entries() []*allowEntry { return s.all }

// AllowPrefix starts a suppression directive comment.
const AllowPrefix = "lint:allow"

// collectAllows scans every comment for allow directives. Directives
// without a justification are returned as diagnostics themselves.
func collectAllows(pkgs []*load.Package, fset *token.FileSet) (*allowSet, []Diagnostic) {
	allows := &allowSet{byLine: map[string]map[int]map[string]*allowEntry{}}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), AllowPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "lint:allow needs an analyzer name and a justification: //lint:allow <analyzer> <why this is safe>",
						})
						continue
					}
					lines := allows.byLine[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]*allowEntry{}
						allows.byLine[pos.Filename] = lines
					}
					names := lines[pos.Line]
					if names == nil {
						names = map[string]*allowEntry{}
						lines[pos.Line] = names
					}
					if names[fields[0]] == nil {
						e := &allowEntry{name: fields[0], pos: pos}
						names[fields[0]] = e
						allows.all = append(allows.all, e)
					}
				}
			}
		}
	}
	return allows, bad
}

// WalkStack walks the AST rooted at root, calling fn with each node and
// the stack of its ancestors (outermost first, root's parent chain not
// included). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// PkgIs reports whether the import path is, or ends with a path segment
// equal to, name — the path-suffix convention the analyzers use so that
// analysistest fixture trees (import path "alloc") and the real module
// ("mallocsim/internal/alloc") both match.
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// PkgUnder reports whether the import path lies strictly below a
// segment equal to name (e.g. "mallocsim/internal/alloc/bsd" is under
// "alloc").
func PkgUnder(path, name string) bool {
	i := strings.Index(path+"/", "/"+name+"/")
	if i >= 0 {
		return len(path) > i+len(name)+1
	}
	return strings.HasPrefix(path, name+"/")
}
