// Package load type-checks Go packages from source with no toolchain
// downloads and no compiled export data, so the alloclint analyzers can
// run in hermetic environments (CI containers, offline checkouts).
//
// It is the offline stand-in for golang.org/x/tools/go/packages: a
// Loader maps import paths to directories (the current module's path
// prefix maps to the module root; for analysistest fixture trees the
// prefix is empty and import paths are directories relative to the
// fixture root), parses every buildable non-test file, and type-checks
// recursively. Standard-library imports are resolved from $GOROOT
// source via go/importer's "source" compiler, which needs no network
// and no pre-built .a files.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("mallocsim/internal/mem", or for fixture
	// trees the directory relative to the fixture root).
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
}

// Loader loads and caches packages for one code tree.
type Loader struct {
	// ModulePath is the import-path prefix served from RootDir
	// ("mallocsim" for the real module, "" for fixture trees where
	// import paths are RootDir-relative directories).
	ModulePath string
	// RootDir is the absolute directory the tree lives in.
	RootDir string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
	state map[string]int // 0 unvisited, 1 loading (cycle guard), 2 done
}

// NewLoader builds a loader for the tree rooted at rootDir. modulePath
// may be empty (fixture mode, see Loader.ModulePath).
func NewLoader(modulePath, rootDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		RootDir:    rootDir,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*Package{},
		state:      map[string]int{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot walks upward from dir to the directory containing go.mod
// and returns that directory and the declared module path.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("load: %s has no module directive", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path inside this tree to its directory, or ""
// when the path is not served from RootDir.
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.RootDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.RootDir, filepath.FromSlash(rest))
		}
		return ""
	}
	// Fixture mode: any import whose directory exists under RootDir is
	// served from the tree; everything else is standard library.
	dir := filepath.Join(l.RootDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Tree loads every buildable package under RootDir (the "./..."
// pattern), skipping testdata and hidden directories, and returns them
// sorted by import path.
func (l *Loader) Tree() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.RootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.RootDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.RootDir, p)
			if err != nil {
				return err
			}
			ip := filepath.ToSlash(rel)
			if ip == "." {
				ip = ""
			}
			if l.ModulePath != "" {
				if ip == "" {
					ip = l.ModulePath
				} else {
					ip = l.ModulePath + "/" + ip
				}
			}
			if ip != "" {
				paths = append(paths, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load type-checks the package at the given import path (which must
// resolve inside the tree) along with its in-tree dependencies.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	switch l.state[path] {
	case 1:
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: import path %q is outside the tree rooted at %s", path, l.RootDir)
	}
	l.state[path] = 1
	defer func() { l.state[path] = 2 }()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*treeImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("load: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// treeImporter resolves imports during type checking: in-tree paths
// recurse through the Loader, everything else is standard library
// served from $GOROOT source.
type treeImporter Loader

func (t *treeImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(t)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
