package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := &Plot{
		Title:   "test chart",
		YLabel:  "things",
		XLabels: []string{"1", "2", "3", "4"},
		Series: []Series{
			{Name: "up", Y: []float64{1, 2, 3, 4}},
			{Name: "down", Y: []float64{4, 3, 2, 1}},
		},
		Width:  30,
		Height: 8,
	}
	out := p.Render()
	for _, want := range []string{"test chart", "up", "down", "*", "o", "y: things"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestRenderMonotoneShape(t *testing.T) {
	// An increasing series must place its last point above its first.
	p := &Plot{
		Series: []Series{{Name: "s", Y: []float64{0, 10}}},
		Width:  20, Height: 10,
	}
	out := p.Render()
	rows := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, row := range rows {
		if idx := strings.IndexByte(row, '*'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 {
		t.Fatal("no marks rendered")
	}
	// The y=10 point (top row) must appear before (above) the y=0 row.
	if firstRow >= lastRow {
		t.Errorf("increasing series not rising: marks from row %d to %d", firstRow, lastRow)
	}
}

func TestRenderLogScale(t *testing.T) {
	p := &Plot{
		Series: []Series{{Name: "log", Y: []float64{1, 10, 100, 1000}}},
		LogY:   true,
		Width:  24, Height: 9,
	}
	out := p.Render()
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "*") {
		t.Errorf("log plot missing content:\n%s", out)
	}
	// With log scaling the four decade points are evenly spaced: the
	// mark rows should span the full height.
	rows := strings.Split(out, "\n")
	marked := 0
	for _, row := range rows {
		if strings.ContainsRune(row, '*') {
			marked++
		}
	}
	if marked < 8 {
		t.Errorf("log curve spans %d rows, want full height", marked)
	}
}

func TestRenderHandlesZerosOnLog(t *testing.T) {
	p := &Plot{
		Series: []Series{{Name: "z", Y: []float64{0, 5, 0, 50}}},
		LogY:   true,
	}
	out := p.Render() // must not panic or produce Inf/NaN
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("log plot produced non-finite labels:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := (&Plot{Title: "x"}).Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	if out := (&Plot{Series: []Series{{Name: "e"}}}).Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty series: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "c", Y: []float64{5, 5, 5}}}}
	out := p.Render() // degenerate range must not divide by zero
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not rendered:\n%s", out)
	}
}

func TestManySeriesMarkers(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: string(rune('a' + i)), Y: []float64{float64(i), float64(i + 1)}})
	}
	out := (&Plot{Series: series}).Render()
	if !strings.Contains(out, "#") || !strings.Contains(out, "@") {
		t.Errorf("marker variety missing:\n%s", out)
	}
}
