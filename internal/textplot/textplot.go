// Package textplot renders data series as ASCII line charts. The
// paper's results are figures — fault-rate curves on log axes, miss
// rates versus cache size — and cmd/locality uses this package to show
// them as curves in a terminal, not just as tables.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	Y    []float64
}

// Plot describes a chart. X positions are shared by all series and
// labelled by XLabels (short strings; sparse labels are fine).
type Plot struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series
	// Width and Height are the plot-area dimensions in characters
	// (defaults 60×16).
	Width  int
	Height int
	// LogY plots log10(y); non-positive values are clamped to a tenth
	// of the smallest positive value.
	LogY bool
}

// markers distinguish series within the grid.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (p *Plot) Render() string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if len(p.Series) == 0 {
		return p.Title + "\n(no data)\n"
	}
	n := 0
	for _, s := range p.Series {
		if len(s.Y) > n {
			n = len(s.Y)
		}
	}
	if n == 0 {
		return p.Title + "\n(no data)\n"
	}

	// Transform values and find the range.
	minPos := math.Inf(1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	tf := func(v float64) float64 {
		if !p.LogY {
			return v
		}
		if v <= 0 {
			v = minPos / 10
		}
		return math.Log10(v)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			t := tf(v)
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xAt := func(i int) int {
		if n == 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}
	yAt := func(v float64) int {
		frac := (tf(v) - lo) / (hi - lo)
		row := int(math.Round(frac * float64(height-1)))
		return height - 1 - row // row 0 is the top
	}
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		prevX, prevY := -1, -1
		for i, v := range s.Y {
			x, y := xAt(i), yAt(v)
			if prevX >= 0 {
				drawLine(grid, prevX, prevY, x, y, mark)
			}
			grid[y][x] = mark
			prevX, prevY = x, y
		}
	}

	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	// Y tick labels at top, middle, bottom.
	labelFor := func(row int) string {
		frac := float64(height-1-row) / float64(height-1)
		t := lo + frac*(hi-lo)
		v := t
		if p.LogY {
			v = math.Pow(10, t)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for row := 0; row < height; row++ {
		label := strings.Repeat(" ", 9)
		if row == 0 || row == height-1 || row == height/2 {
			label = labelFor(row)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[row]))
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	// X labels: first, middle, last.
	if len(p.XLabels) > 0 {
		xl := make([]byte, width+11)
		for i := range xl {
			xl[i] = ' '
		}
		place := func(pos int, s string) {
			start := 11 + pos - len(s)/2
			if start < 11 {
				start = 11
			}
			if start+len(s) > len(xl) {
				start = len(xl) - len(s)
			}
			copy(xl[start:], s)
		}
		place(0, p.XLabels[0])
		if len(p.XLabels) > 2 {
			place(xAt((len(p.XLabels)-1)/2), p.XLabels[(len(p.XLabels)-1)/2])
		}
		if len(p.XLabels) > 1 {
			place(width-1, p.XLabels[len(p.XLabels)-1])
		}
		sb.Write(xl)
		sb.WriteByte('\n')
	}
	if p.YLabel != "" {
		fmt.Fprintf(&sb, "y: %s", p.YLabel)
		if p.LogY {
			sb.WriteString(" (log scale)")
		}
		sb.WriteByte('\n')
	}
	// Legend.
	for si, s := range p.Series {
		fmt.Fprintf(&sb, "  %c %s", markers[si%len(markers)], s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// drawLine marks a rough Bresenham segment between two grid points so
// curves read as lines rather than scattered dots. Existing marks are
// kept (first-drawn wins at intersections).
func drawLine(grid [][]byte, x0, y0, x1, y1 int, mark byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if grid[y][x] == ' ' {
			grid[y][x] = mark
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
