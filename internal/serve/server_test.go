package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smallSpec is a job that completes in well under a second.
func smallSpec() string {
	return `{"program":"make","allocator":"bsd","scale":4096,"caches":[{"size":16384}]}`
}

// bigSpec is a job that, uninterrupted, runs for many seconds — the
// deadline and drain tests rely on having time to act while it runs.
func bigSpec() string {
	return `{"program":"espresso","allocator":"bsd","scale":1,"page_sim":true}`
}

func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		// Short budget: tests that leave a long job in flight rely on
		// the forced abort path rather than waiting out the drain.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return doc, resp.StatusCode
}

func getJSON(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %s (status %d): %v", url, resp.StatusCode, err)
	}
	return doc, resp.StatusCode
}

// waitState polls a job until it reaches any of the given states.
func waitState(t *testing.T, ts *httptest.Server, id string, states ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		doc, code := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		for _, s := range states {
			if doc["state"] == s {
				return doc
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %v within 30s", id, states)
	return nil
}

func metric(t *testing.T, ts *httptest.Server, name string) uint64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		var n uint64
		if _, err := fmt.Sscanf(line, name+" %d", &n); err == nil {
			return n
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestServiceEndToEnd drives the full loop: submit, poll to
// completion, fetch the content-addressed report, then resubmit and
// require a cache hit that skips the simulation.
func TestServiceEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})

	doc, code := postJob(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit: no job id in %v", doc)
	}
	done := waitState(t, ts, id, StateDone, StateFailed)
	if done["state"] != StateDone {
		t.Fatalf("job failed: %v", done["error"])
	}

	hash, _ := done["hash"].(string)
	rep, code := getJSON(t, ts.URL+"/v1/reports/"+hash)
	if code != http.StatusOK {
		t.Fatalf("report fetch: status %d", code)
	}
	if rep["kind"] != "mallocsim-run-report" {
		t.Fatalf("report kind = %v", rep["kind"])
	}
	if rep["program"] != "make" || rep["allocator"] != "bsd" {
		t.Fatalf("report identity = %v/%v", rep["program"], rep["allocator"])
	}

	hitsBefore := metric(t, ts, "simd_cache_hits_total")
	dup, code := postJob(t, ts, smallSpec())
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cached)", code)
	}
	if dup["cached"] != true || dup["state"] != StateDone {
		t.Fatalf("resubmit not served from cache: %v", dup)
	}
	if dup["hash"] != hash {
		t.Fatalf("resubmit hash %v != %v", dup["hash"], hash)
	}
	if hits := metric(t, ts, "simd_cache_hits_total"); hits != hitsBefore+1 {
		t.Fatalf("cache hits = %d, want %d", hits, hitsBefore+1)
	}
}

// TestServiceDefaultedSpecSharesHash: a spec relying on defaults and
// one spelling them out are the same experiment, so the second
// submission must hit the first's cached result.
func TestServiceDefaultedSpecSharesHash(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})

	implicit := `{"program":"make","allocator":"bsd","scale":4096,"caches":[{"size":16384}]}`
	explicit := `{"program":"make","allocator":"bsd","scale":4096,"seed":1,"caches":[{"size":16384,"line_size":32,"assoc":1}]}`
	doc, _ := postJob(t, ts, implicit)
	id := doc["id"].(string)
	if d := waitState(t, ts, id, StateDone, StateFailed); d["state"] != StateDone {
		t.Fatalf("job failed: %v", d["error"])
	}
	dup, code := postJob(t, ts, explicit)
	if code != http.StatusOK || dup["cached"] != true {
		t.Fatalf("explicit form missed the cache: status %d, %v", code, dup)
	}
}

// TestServiceWorkerWidthInvariance runs the same jobs on a sequential
// and a wide service and requires identical report digests: the pool
// width is a latency knob, never a results knob.
func TestServiceWorkerWidthInvariance(t *testing.T) {
	specs := []string{
		`{"program":"make","allocator":"bsd","scale":4096,"caches":[{"size":16384}]}`,
		`{"program":"make","allocator":"firstfit","scale":4096,"caches":[{"size":16384}]}`,
		`{"program":"gawk","allocator":"bsd","scale":4096,"caches":[{"size":16384}],"page_sim":true}`,
		`{"program":"gawk","allocator":"gnufit","scale":4096,"caches":[{"size":16384},{"size":65536,"assoc":4}]}`,
	}
	digests := func(workers int) []string {
		_, ts := newTestService(t, Options{Workers: workers})
		ids := make([]string, len(specs))
		for i, s := range specs {
			doc, code := postJob(t, ts, s)
			if code != http.StatusAccepted {
				t.Fatalf("workers=%d submit %d: status %d", workers, i, code)
			}
			ids[i] = doc["id"].(string)
		}
		out := make([]string, len(specs))
		for i, id := range ids {
			doc := waitState(t, ts, id, StateDone, StateFailed)
			if doc["state"] != StateDone {
				t.Fatalf("workers=%d job %d failed: %v", workers, i, doc["error"])
			}
			out[i], _ = doc["report_sha256"].(string)
			if out[i] == "" {
				t.Fatalf("workers=%d job %d: no report digest", workers, i)
			}
		}
		return out
	}
	seq := digests(1)
	par := digests(8)
	for i := range specs {
		if seq[i] != par[i] {
			t.Errorf("spec %d: workers=1 digest %s != workers=8 digest %s", i, seq[i], par[i])
		}
	}
}

// TestServiceJobDeadline arms a per-job deadline on the fake clock,
// fires it while the job is running, and requires the job to fail with
// the deadline cause within a bounded wait.
func TestServiceJobDeadline(t *testing.T) {
	clock := newFakeClock()
	_, ts := newTestService(t, Options{Workers: 1, DefaultTimeout: time.Minute, Clock: clock})

	doc, code := postJob(t, ts, bigSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := doc["id"].(string)
	waitState(t, ts, id, StateRunning, StateDone, StateFailed)
	clock.Advance(2 * time.Minute)
	final := waitState(t, ts, id, StateDone, StateFailed)
	if final["state"] != StateFailed {
		t.Fatalf("job state = %v, want failed (deadline)", final["state"])
	}
	msg, _ := final["error"].(string)
	if !strings.Contains(msg, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not mention the deadline", msg)
	}
}

// TestServiceSpecTimeoutOverride: a spec's timeout_ms beats the server
// default but never changes the job's identity hash.
func TestServiceSpecTimeoutOverride(t *testing.T) {
	base := &JobSpec{Program: "espresso", Allocator: "bsd", Scale: 1, PageSim: true}
	if err := base.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	fast := &JobSpec{Program: "espresso", Allocator: "bsd", Scale: 1, PageSim: true, TimeoutMS: 50}
	if err := fast.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if base.Hash() != fast.Hash() {
		t.Fatal("timeout_ms changed the content hash; it must bound execution only")
	}
	if d := fast.Timeout(time.Minute); d != 50*time.Millisecond {
		t.Fatalf("Timeout = %v, want 50ms", d)
	}
	if d := base.Timeout(time.Minute); d != time.Minute {
		t.Fatalf("Timeout default = %v, want 1m", d)
	}

	clock := newFakeClock()
	_, ts := newTestService(t, Options{Workers: 1, Clock: clock})
	doc, _ := postJob(t, ts, `{"program":"espresso","allocator":"bsd","scale":1,"page_sim":true,"timeout_ms":50}`)
	id := doc["id"].(string)
	waitState(t, ts, id, StateRunning, StateDone, StateFailed)
	clock.Advance(time.Second)
	final := waitState(t, ts, id, StateDone, StateFailed)
	if final["state"] != StateFailed {
		t.Fatalf("job state = %v, want failed", final["state"])
	}
}

// TestServiceDrain: Shutdown refuses new work, finishes accepted work,
// and leaves the finished reports fetchable through the live handler.
func TestServiceDrain(t *testing.T) {
	srv := NewServer(Options{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	doc, code := postJob(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := doc["id"].(string)
	hash := doc["hash"].(string)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The accepted job completed during the drain.
	final, _ := getJSON(t, ts.URL+"/v1/jobs/"+id)
	if final["state"] != StateDone {
		t.Fatalf("drained job state = %v, want done (err %v)", final["state"], final["error"])
	}
	if _, code := getJSON(t, ts.URL+"/v1/reports/"+hash); code != http.StatusOK {
		t.Fatalf("report fetch after drain: status %d", code)
	}

	// New work and liveness are refused.
	if _, code := postJob(t, ts, smallSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: status %d, want 503", resp.StatusCode)
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServiceBadRequests: malformed specs are 4xx, never 5xx and never
// a panic.
func TestServiceBadRequests(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", ``},
		{"not-json", `{{{`},
		{"unknown-field", `{"program":"make","allocator":"bsd","frobnicate":1}`},
		{"unknown-program", `{"program":"doom","allocator":"bsd"}`},
		{"unknown-allocator", `{"program":"make","allocator":"hoard"}`},
		{"zero-cache", `{"program":"make","allocator":"bsd","caches":[{"size":0}]}`},
		{"unaligned-cache", `{"program":"make","allocator":"bsd","caches":[{"size":100}]}`},
		{"absurd-cache", `{"program":"make","allocator":"bsd","caches":[{"size":1099511627776}]}`},
		{"bad-assoc", `{"program":"make","allocator":"bsd","caches":[{"size":16384,"assoc":-2}]}`},
		{"bad-line", `{"program":"make","allocator":"bsd","caches":[{"size":16384,"line_size":33}]}`},
		{"trailing", `{"program":"make","allocator":"bsd"} extra`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doc, code := postJob(t, ts, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %v)", code, doc)
			}
			if msg, _ := doc["error"].(string); msg == "" {
				t.Fatal("400 without an error message")
			}
		})
	}
	if _, code := getJSON(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	if _, code := getJSON(t, ts.URL+"/v1/reports/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown report: status %d, want 404", code)
	}
}

// TestServiceSingleFlight coalesces identical in-flight submissions
// onto one job.
func TestServiceSingleFlight(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	first, _ := postJob(t, ts, bigSpec())
	second, code := postJob(t, ts, bigSpec())
	if code != http.StatusAccepted {
		t.Fatalf("duplicate submit: status %d", code)
	}
	if first["id"] != second["id"] {
		t.Fatalf("in-flight duplicate got a new job: %v vs %v", first["id"], second["id"])
	}
	if n := metric(t, ts, "simd_jobs_deduplicated_total"); n != 1 {
		t.Fatalf("deduplicated = %d, want 1", n)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put("a", []byte("ra"))
	c.Put("b", []byte("rb"))
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.Put("c", []byte("rc")) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("a and c should survive")
	}
	if got, _ := c.Get("a"); !bytes.Equal(got, []byte("ra")) {
		t.Fatalf("a = %q", got)
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", hits, misses, evictions)
	}
}
