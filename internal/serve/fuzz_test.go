package serve

import (
	"strings"
	"testing"
)

// FuzzJobSpec feeds arbitrary bytes through the request-decoding path
// — decode, canonicalize, hash — and asserts the invariants the HTTP
// layer depends on: no panic on any input, every rejection is a typed
// BadRequestError (so clients get a 4xx, never a 500), and any spec
// that is accepted canonicalizes to a stable content hash.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"program":"make","allocator":"bsd"}`,
		`{"program":"espresso","allocator":"firstfit","scale":64,"seed":7}`,
		`{"program":"make","allocator":"bsd","caches":[{"size":16384,"assoc":4}],"page_sim":true}`,
		`{"program":"make","allocator":"bsd","timeout_ms":500}`,
		`{"program":"doom","allocator":"bsd"}`,
		`{"program":"make","allocator":"hoard"}`,
		`{"program":"make","allocator":"bsd","caches":[{"size":100}]}`,
		`{"program":"make","allocator":"bsd","caches":[{"size":18446744073709551615}]}`,
		`{"program":"make","allocator":"bsd","caches":[{"size":16384,"line_size":48}]}`,
		`{"program":"make","allocator":"bsd","caches":[{"size":16384,"assoc":-1}]}`,
		`{"program":"make","allocator":"bsd","frobnicate":true}`,
		`{"program":"make","allocator":"bsd"} trailing`,
		`[1,2,3]`,
		`"just a string"`,
		`{{{`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(strings.NewReader(string(data)))
		if err != nil {
			if !IsBadRequest(err) {
				t.Fatalf("decode error is not a BadRequestError: %v", err)
			}
			return
		}
		if err := spec.Canonicalize(); err != nil {
			if !IsBadRequest(err) {
				t.Fatalf("canonicalize error is not a BadRequestError: %v", err)
			}
			return
		}
		// An accepted spec must have a stable, fully-defaulted identity.
		h1 := spec.Hash()
		if len(h1) != 64 {
			t.Fatalf("hash %q is not a hex sha256", h1)
		}
		if err := spec.Canonicalize(); err != nil {
			t.Fatalf("re-canonicalizing an accepted spec failed: %v", err)
		}
		if h2 := spec.Hash(); h2 != h1 {
			t.Fatalf("canonicalization is not idempotent: %s != %s", h2, h1)
		}
		if spec.Scale == 0 || spec.Seed == 0 || len(spec.Caches) == 0 {
			t.Fatalf("accepted spec missing defaults: %+v", spec)
		}
	})
}
