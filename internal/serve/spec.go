package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cache"
	"mallocsim/internal/obs"
	"mallocsim/internal/paper"
	"mallocsim/internal/workload"
)

// Decoding limits: a job spec is a small configuration document, so
// anything large is hostile or corrupt.
const (
	// MaxSpecBytes bounds the request body accepted by the job handler.
	MaxSpecBytes = 64 << 10
	// MaxCaches bounds the cache configurations simulated per job; the
	// paper's matrix uses five.
	MaxCaches = 32
	// MaxCacheSize bounds each simulated cache's capacity. The tag
	// array is proportional to size/line-size, so this caps per-job
	// memory; the paper's largest cache is 256 KB.
	MaxCacheSize = 64 << 20
)

// BadRequestError marks a spec error caused by the client's input; the
// HTTP layer maps it to a 4xx status instead of a 500.
type BadRequestError struct{ msg string }

func (e *BadRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{msg: fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether err originated from invalid client
// input.
func IsBadRequest(err error) bool {
	var br *BadRequestError
	return errors.As(err, &br)
}

// CacheSpec is the wire form of one cache configuration.
type CacheSpec struct {
	Size            uint64 `json:"size"`
	LineSize        uint64 `json:"line_size,omitempty"`
	Assoc           int    `json:"assoc,omitempty"`
	NoWriteAllocate bool   `json:"no_write_allocate,omitempty"`
	FlushInterval   uint64 `json:"flush_interval,omitempty"`
}

func (c CacheSpec) config() cache.Config {
	return cache.Config{
		Size:            c.Size,
		LineSize:        c.LineSize,
		Assoc:           c.Assoc,
		NoWriteAllocate: c.NoWriteAllocate,
		FlushInterval:   c.FlushInterval,
	}
}

// JobSpec is one experiment submission: which synthetic program to
// drive through which allocator, at what scale, over which simulated
// memory hierarchy. The zero values of Scale, Seed and Caches select
// the paper's defaults, so {"program":"cfrac","allocator":"gnu"} is a
// complete job.
type JobSpec struct {
	Program   string      `json:"program"`
	Allocator string      `json:"allocator"`
	Scale     uint64      `json:"scale,omitempty"`
	Seed      uint64      `json:"seed,omitempty"`
	Caches    []CacheSpec `json:"caches,omitempty"`
	PageSim   bool        `json:"page_sim,omitempty"`
	// TimeoutMS overrides the server's default per-job deadline. It
	// bounds execution only and does not identify the result, so it is
	// excluded from the content hash.
	TimeoutMS uint64 `json:"timeout_ms,omitempty"`
}

// DecodeJobSpec parses a spec from JSON, rejecting unknown fields and
// trailing garbage. All errors are BadRequestErrors.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes+1))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, badRequestf("invalid job spec: %v", err)
	}
	if dec.More() {
		return nil, badRequestf("invalid job spec: trailing data after JSON document")
	}
	return &spec, nil
}

// Canonicalize validates the spec and fills in paper defaults, so that
// every spec naming the same experiment hashes identically: scale 0
// becomes paper.DefaultScale, seed 0 becomes 1, an empty cache list
// becomes the paper's five direct-mapped sizes, and each cache config
// gets its geometry defaults. Returns a BadRequestError for anything a
// client can get wrong.
func (s *JobSpec) Canonicalize() error {
	if _, ok := workload.ByName(s.Program); !ok {
		return badRequestf("unknown program %q (have: %v)", s.Program, workload.Names())
	}
	if !knownAllocator(s.Allocator) {
		return badRequestf("unknown allocator %q (have: %v)", s.Allocator, alloc.Names())
	}
	if s.Scale == 0 {
		s.Scale = paper.DefaultScale
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Caches) == 0 {
		s.Caches = make([]CacheSpec, len(paper.CacheSizes))
		for i, size := range paper.CacheSizes {
			s.Caches[i] = CacheSpec{Size: size}
		}
	}
	if len(s.Caches) > MaxCaches {
		return badRequestf("too many cache configs: %d > %d", len(s.Caches), MaxCaches)
	}
	for i := range s.Caches {
		c := &s.Caches[i]
		if c.Size > MaxCacheSize {
			return badRequestf("cache %d: size %d exceeds limit %d", i, c.Size, MaxCacheSize)
		}
		if c.LineSize == 0 {
			c.LineSize = cache.DefaultLineSize
		}
		if c.Assoc == 0 {
			c.Assoc = 1
		}
		if err := c.config().Validate(); err != nil {
			return badRequestf("cache %d: %v", i, err)
		}
	}
	return nil
}

func knownAllocator(name string) bool {
	names := alloc.Names()
	i := sort.SearchStrings(names, name)
	return i < len(names) && names[i] == name
}

// Timeout resolves the job's deadline against the server default.
func (s *JobSpec) Timeout(def time.Duration) time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return def
}

// hashDoc is the canonical identity of a result: everything that
// determines the report bytes, and nothing else. TimeoutMS is absent —
// it bounds execution, it does not change the answer — and the report
// schema version is included so a schema bump invalidates cached
// results.
type hashDoc struct {
	ReportVersion int         `json:"report_version"`
	Program       string      `json:"program"`
	Allocator     string      `json:"allocator"`
	Scale         uint64      `json:"scale"`
	Seed          uint64      `json:"seed"`
	Caches        []CacheSpec `json:"caches"`
	PageSim       bool        `json:"page_sim"`
}

// Hash returns the hex SHA-256 content address of the canonicalized
// spec's result. Call Canonicalize first; hashing a raw spec would
// give defaulted and explicit forms of the same experiment different
// addresses.
func (s *JobSpec) Hash() string {
	b, err := json.Marshal(hashDoc{
		ReportVersion: obs.ReportVersion,
		Program:       s.Program,
		Allocator:     s.Allocator,
		Scale:         s.Scale,
		Seed:          s.Seed,
		Caches:        s.Caches,
		PageSim:       s.PageSim,
	})
	if err != nil {
		// Marshalling a struct of scalars and slices cannot fail.
		panic("serve: hash marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
