// Clock injection: the experiment service needs wall time for two
// things only — stamping job lifecycle events and arming per-job
// deadlines. Both go through the Clock interface so tests substitute a
// manual clock and drive timeouts deterministically, and so the
// determinism analyzer can confine real clock reads to this one file
// (package serve is in the analyzer's scope; see
// internal/analysis/determinism).
package serve

import "time"

// Clock abstracts the two time operations the server performs. The
// production implementation is RealClock; tests use a fake whose After
// channels fire on demand.
type Clock interface {
	// Now returns the current time. Used for job timestamps and queue
	// latency metrics only — never for anything that feeds a report.
	Now() time.Time
	// After returns a channel that delivers one value after d elapses,
	// like time.After. Used to arm per-job deadlines.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
