package serve

import (
	"sync"
	"time"
)

// fakeClock is a manually advanced Clock: After timers fire only when
// the test calls Advance past their deadline, so deadline behaviour is
// tested without real sleeps.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t.ch
	}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock forward and fires every timer whose deadline
// has passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			live = append(live, t)
		}
	}
	c.timers = live
}
