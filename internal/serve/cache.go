package serve

import (
	"container/list"
	"sync"

	"mallocsim/internal/obs"
)

// ResultCache is a bounded, content-addressed store of finished report
// documents keyed by JobSpec.Hash. Simulation runs are deterministic,
// so a hash hit is exactly the report a fresh run would produce;
// resubmitting a spec costs one map lookup instead of a simulation.
// Eviction is LRU. All methods are safe for concurrent use; the
// obs counters (which are not) are guarded by the cache's own mutex.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // hash → element holding *cacheEntry

	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
}

type cacheEntry struct {
	hash   string
	report []byte // encoded JSON report document
}

// NewResultCache creates a cache holding at most max reports (max <= 0
// means 128).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = 128
	}
	return &ResultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached report bytes for hash, if present, promoting
// the entry to most recently used.
func (c *ResultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

// Contains reports whether hash is cached without touching recency or
// the hit/miss counters (used by metrics and tests).
func (c *ResultCache) Contains(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[hash]
	return ok
}

// Put stores a report under hash, evicting the least recently used
// entry when full. Storing an existing hash refreshes its recency but
// keeps the original bytes: content-addressed entries are immutable.
func (c *ResultCache) Put(hash string, report []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
		c.evictions.Inc()
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, report: report})
}

// Len returns the number of cached reports.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit/miss/eviction counts.
func (c *ResultCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits.Value(), c.misses.Value(), c.evictions.Value()
}
