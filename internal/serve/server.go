// Package serve implements the mallocsim experiment service: an HTTP
// API that accepts (program, allocator, cache/VM config) job
// submissions, runs them on a bounded worker pool with per-job
// deadlines, and serves the versioned JSON run reports produced by the
// observability layer.
//
// Results are content-addressed: a job's identity is the SHA-256 of
// its canonicalized spec plus the report schema version, and finished
// reports live in a bounded LRU cache under that hash. Because every
// simulation is deterministic, resubmitting a spec is answered from
// the cache with byte-identical output, and identical in-flight
// submissions are coalesced into one run (single-flight).
//
// The package is in scope for the determinism analyzer: wall-clock
// reads are confined to the injected Clock (clock.go), job IDs come
// from a counter, and nothing here perturbs the simulation core — a
// report served over HTTP is the same bytes the locality CLI writes.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mallocsim/internal/cache"
	"mallocsim/internal/obs"
	"mallocsim/internal/sim"
	"mallocsim/internal/store"
	"mallocsim/internal/workload"
)

// Job lifecycle states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker-pool size (<= 0 means 2).
	// Reports are deterministic, so the pool width affects only
	// latency, never results.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-unstarted jobs
	// (<= 0 means 64); submissions beyond it are refused with 503.
	QueueDepth int
	// CacheEntries bounds the result cache (<= 0 means 128).
	CacheEntries int
	// DefaultTimeout is the per-job deadline when the spec does not
	// set one; 0 means no deadline.
	DefaultTimeout time.Duration
	// Clock supplies timestamps and deadline timers (nil means the
	// wall clock). Tests inject a manual clock here.
	Clock Clock
	// Store is the durable report store the in-memory result cache
	// tiers over (nil means memory-only, the pre-store behavior).
	// Finished reports are written through on job completion; cache
	// misses fall through to the store, so reports survive restarts
	// and LRU eviction.
	Store store.Store
}

// Job is one tracked submission.
type Job struct {
	ID    string
	Spec  *JobSpec
	Hash  string
	State string
	// Cached marks a job answered from the result cache without
	// running.
	Cached bool
	// Err holds the failure message for StateFailed.
	Err string
	// ReportSHA256 is the hex digest of the finished report bytes
	// (distinct from Hash, which addresses the spec).
	ReportSHA256 string

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// Server is the experiment service. Create with NewServer; it
// implements http.Handler.
type Server struct {
	opts  Options
	clock Clock
	cache *ResultCache
	store store.Store
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	byHash   map[string]*Job
	nextID   uint64
	queue    chan *Job
	draining bool
	running  int

	submitted obs.Counter
	completed obs.Counter
	failed    obs.Counter
	deduped   obs.Counter

	// Store-tier counters get their own mutex so lookupReport can run
	// both with and without s.mu held.
	storeMu     sync.Mutex
	storeHits   obs.Counter
	storeMisses obs.Counter
	storeErrors obs.Counter

	wg sync.WaitGroup
}

// NewServer creates the service and starts its worker pool. Callers
// must Shutdown to stop the workers.
func NewServer(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	clock := opts.Clock
	if clock == nil {
		clock = RealClock{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		clock:      clock,
		cache:      NewResultCache(opts.CacheEntries),
		store:      opts.Store,
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		byHash:     make(map[string]*Job),
		queue:      make(chan *Job, opts.QueueDepth),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/reports/{hash}", s.handleReport)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/diff/{hashA}/{hashB}", s.handleDiff)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted, every
// accepted job runs to completion, and the worker pool exits. If ctx
// is cancelled before the drain finishes, in-flight simulations are
// aborted through their contexts and Shutdown returns ctx's error
// after the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// --- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err == nil {
		err = spec.Canonicalize()
	}
	if err != nil {
		status := http.StatusInternalServerError
		if IsBadRequest(err) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	hash := spec.Hash()

	// Content-addressed fast path, resolved before taking s.mu: the
	// store tier reads from disk, and no lock may be held across I/O
	// (locksafe). The window between this lookup and the lock admits a
	// concurrent completion of the same hash; the dedup path below then
	// coalesces or re-runs deterministically — a miss here costs work,
	// never correctness.
	report, cached := s.lookupReport(hash)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	// A cached or durably stored result answers the job without running
	// (and counts a cache or store hit on /metrics).
	if cached {
		j := s.byHash[hash]
		if j == nil {
			j = s.newJobLocked(spec, hash)
			now := s.clock.Now()
			j.StartedAt, j.FinishedAt = now, now
		}
		j.State = StateDone
		j.Cached = true
		sum := sha256.Sum256(report)
		j.ReportSHA256 = hex.EncodeToString(sum[:])
		view := jobView(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	// Single-flight: coalesce identical submissions onto the job that
	// is already queued or running.
	if j := s.byHash[hash]; j != nil && (j.State == StateQueued || j.State == StateRunning) {
		s.deduped.Inc()
		view := jobView(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, view)
		return
	}
	j := s.newJobLocked(spec, hash)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		delete(s.byHash, hash)
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("job queue is full"))
		return
	}
	view := jobView(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// newJobLocked registers a job; the caller holds s.mu. IDs come from a
// counter, not the clock, so identical submission sequences produce
// identical IDs.
func (s *Server) newJobLocked(spec *JobSpec, hash string) *Job {
	s.nextID++
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", s.nextID),
		Spec:        spec,
		Hash:        hash,
		State:       StateQueued,
		SubmittedAt: s.clock.Now(),
	}
	s.jobs[j.ID] = j
	s.byHash[hash] = j
	s.submitted.Inc()
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id") // parse the request before taking the lock
	s.mu.Lock()
	j, ok := s.jobs[id]
	var view map[string]any
	if ok {
		view = jobView(j)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	report, ok := s.lookupReport(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no report with hash %q", hash))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(report)
}

// lookupReport resolves a content hash through the tiers: the
// in-memory LRU first, then the durable store. A store hit re-warms
// the memory cache so the next lookup is one map access. Store
// failures (corruption, I/O) count on /metrics and read as a miss —
// the caller re-runs the simulation rather than serving bad bytes.
func (s *Server) lookupReport(hash string) ([]byte, bool) {
	if report, ok := s.cache.Get(hash); ok {
		return report, true
	}
	if s.store == nil {
		return nil, false
	}
	report, err := s.store.Get(hash)
	if err != nil {
		s.storeMu.Lock()
		if errors.Is(err, store.ErrNotFound) {
			s.storeMisses.Inc()
		} else {
			s.storeErrors.Inc()
		}
		s.storeMu.Unlock()
		return nil, false
	}
	s.storeMu.Lock()
	s.storeHits.Inc()
	s.storeMu.Unlock()
	s.cache.Put(hash, report)
	return report, true
}

// persistReport writes a finished report through to the durable store.
// Persistence failures never fail the job — the report is still served
// from memory — but they are counted, so an operator sees a store
// going bad before a restart loses history.
func (s *Server) persistReport(j *Job, report []byte) {
	if s.store == nil {
		return
	}
	err := s.store.Put(j.Hash, report, store.Meta{
		Kind:      "run-report",
		Program:   j.Spec.Program,
		Allocator: j.Spec.Allocator,
		Scale:     j.Spec.Scale,
		Seed:      j.Spec.Seed,
	})
	if err != nil {
		s.storeMu.Lock()
		s.storeErrors.Inc()
		s.storeMu.Unlock()
	}
}

// handleRuns lists the durable store's contents, newest last, filtered
// by the kind, program, allocator and name query parameters.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable,
			errors.New("no durable store configured (start simd with -store)"))
		return
	}
	q := r.URL.Query()
	entries := store.Select(s.store, store.Filter{
		Kind:      q.Get("kind"),
		Name:      q.Get("name"),
		Program:   q.Get("program"),
		Allocator: q.Get("allocator"),
	})
	if entries == nil {
		entries = []store.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(entries),
		"runs":  entries,
	})
}

// handleDiff compares two stored reports field by field. The optional
// threshold query parameter (a relative delta, e.g. 0.01 for 1%) sets
// the significance bar; the default 0 flags any change, which is the
// right bar for a deterministic simulator.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	hashA, hashB := r.PathValue("hashA"), r.PathValue("hashB")
	var opts obs.DiffOptions
	if t := r.URL.Query().Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q", t))
			return
		}
		opts.RelThreshold = v
	}
	load := func(hash string) (*obs.Report, error) {
		raw, ok := s.lookupReport(hash)
		if !ok {
			return nil, fmt.Errorf("no report with hash %q", hash)
		}
		var rep obs.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("report %s is not a run report: %v", hash, err)
		}
		return &rep, nil
	}
	repA, err := load(hashA)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	repB, err := load(hashB)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	d := obs.DiffReports(repA, repB, opts)
	d.HashA, d.HashB = hashA, hashB
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// --- worker pool ---

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	// Per-job deadline, armed on the injected clock so tests can fire
	// it deterministically. The cause is DeadlineExceeded, so the
	// simulation's error satisfies errors.Is(err,
	// context.DeadlineExceeded) exactly as a context.WithTimeout
	// would — but without an unmockable wall-clock timer. Armed before
	// the job is visible as running, so an observer of that state can
	// rely on the deadline being live.
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	finished := make(chan struct{})
	if d := j.Spec.Timeout(s.opts.DefaultTimeout); d > 0 {
		deadline := s.clock.After(d)
		go func() {
			select {
			case <-deadline:
				cancel(context.DeadlineExceeded)
			case <-finished:
			}
		}()
	}

	s.mu.Lock()
	j.State = StateRunning
	j.StartedAt = s.clock.Now()
	s.running++
	s.mu.Unlock()

	report, reportSHA, err := s.execute(ctx, j.Spec)
	close(finished)
	cancel(nil)

	if err == nil {
		// Write-through to the durable store before the job flips to
		// done, so an observer who sees "done" can rely on the report
		// having been offered to every tier. Disk I/O stays outside
		// s.mu.
		s.persistReport(j, report)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.FinishedAt = s.clock.Now()
	if err != nil {
		j.State = StateFailed
		j.Err = err.Error()
		s.failed.Inc()
		return
	}
	s.cache.Put(j.Hash, report)
	j.State = StateDone
	j.ReportSHA256 = reportSHA
	s.completed.Inc()
}

// execute runs the simulation described by a canonicalized spec and
// returns the encoded report document plus its digest.
func (s *Server) execute(ctx context.Context, spec *JobSpec) ([]byte, string, error) {
	prog, ok := workload.ByName(spec.Program)
	if !ok {
		return nil, "", fmt.Errorf("unknown program %q", spec.Program)
	}
	cfgs := make([]cache.Config, len(spec.Caches))
	for i, c := range spec.Caches {
		cfgs[i] = c.config()
	}
	res, err := sim.RunContext(ctx, sim.Config{
		Program:   prog,
		Allocator: spec.Allocator,
		Scale:     spec.Scale,
		Seed:      spec.Seed,
		Caches:    cfgs,
		PageSim:   spec.PageSim,
	})
	if err != nil {
		return nil, "", err
	}
	report, err := res.Report().Encode()
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(report)
	return report, hex.EncodeToString(sum[:]), nil
}

// --- response helpers ---

// jobView renders a job as its wire document; the caller holds s.mu.
func jobView(j *Job) map[string]any {
	v := map[string]any{
		"id":           j.ID,
		"state":        j.State,
		"hash":         j.Hash,
		"spec":         j.Spec,
		"submitted_at": j.SubmittedAt,
	}
	if j.Cached {
		v["cached"] = true
	}
	if !j.StartedAt.IsZero() {
		v["started_at"] = j.StartedAt
	}
	if !j.FinishedAt.IsZero() {
		v["finished_at"] = j.FinishedAt
	}
	if j.Err != "" {
		v["error"] = j.Err
	}
	if j.State == StateDone {
		v["report_sha256"] = j.ReportSHA256
		v["report_url"] = "/v1/reports/" + j.Hash
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
