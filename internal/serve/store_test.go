package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mallocsim/internal/store"
)

func openStore(t *testing.T, dir string) *store.DiskStore {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// runToDone submits spec and waits for completion, returning the job's
// content hash.
func runToDone(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	doc, code := postJob(t, ts, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d, body %v", code, doc)
	}
	if doc["state"] == StateDone { // answered from cache or store
		return doc["hash"].(string)
	}
	done := waitState(t, ts, doc["id"].(string), StateDone, StateFailed)
	if done["state"] != StateDone {
		t.Fatalf("job failed: %v", done["error"])
	}
	return done["hash"].(string)
}

// TestReportSurvivesRestart is the acceptance E2E: run a job on one
// server, tear the server down, start a fresh Server (empty memory
// cache) over the same store directory, and fetch the report by hash —
// it must come off disk, recording a cache miss and a store hit on
// /metrics.
func TestReportSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	srv1 := NewServer(Options{Workers: 1, Store: openStore(t, dir)})
	ts1 := httptest.NewServer(srv1)
	hash := runToDone(t, ts1, smallSpec())
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// "Restart": a new Server over a reopened store on the same dir.
	_, ts2 := newTestService(t, Options{Workers: 1, Store: openStore(t, dir)})
	rep, code := getJSON(t, ts2.URL+"/v1/reports/"+hash)
	if code != http.StatusOK {
		t.Fatalf("report fetch after restart: status %d", code)
	}
	if rep["kind"] != "mallocsim-run-report" || rep["program"] != "make" {
		t.Fatalf("restarted report = kind %v, program %v", rep["kind"], rep["program"])
	}
	if misses := metric(t, ts2, "simd_cache_misses_total"); misses == 0 {
		t.Fatal("store-served fetch did not record a memory-cache miss")
	}
	if hits := metric(t, ts2, "simd_store_hits_total"); hits != 1 {
		t.Fatalf("simd_store_hits_total = %d, want 1", hits)
	}
	if objects := metric(t, ts2, "simd_store_objects"); objects != 1 {
		t.Fatalf("simd_store_objects = %d, want 1", objects)
	}

	// The store hit re-warmed the memory cache: the next fetch is a
	// cache hit, not another disk read.
	if _, code := getJSON(t, ts2.URL+"/v1/reports/"+hash); code != http.StatusOK {
		t.Fatalf("second fetch: status %d", code)
	}
	if hits := metric(t, ts2, "simd_store_hits_total"); hits != 1 {
		t.Fatalf("second fetch went to disk again (store hits %d)", hits)
	}
	if hits := metric(t, ts2, "simd_cache_hits_total"); hits == 0 {
		t.Fatal("second fetch did not hit the memory cache")
	}

	// Resubmitting the spec on the restarted server is answered from
	// the store without running (cached fast path).
	dup, code := postJob(t, ts2, smallSpec())
	if code != http.StatusOK || dup["cached"] != true {
		t.Fatalf("resubmit after restart not served from store: status %d, %v", code, dup)
	}
}

// TestRunsListing exercises GET /v1/runs and its filters.
func TestRunsListing(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestService(t, Options{Workers: 2, Store: openStore(t, dir)})

	runToDone(t, ts, `{"program":"make","allocator":"bsd","scale":4096,"caches":[{"size":16384}]}`)
	runToDone(t, ts, `{"program":"make","allocator":"firstfit","scale":4096,"caches":[{"size":16384}]}`)

	list := func(query string) (int, []any) {
		doc, code := getJSON(t, ts.URL+"/v1/runs"+query)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: status %d", query, code)
		}
		runs, _ := doc["runs"].([]any)
		return int(doc["count"].(float64)), runs
	}
	count, runs := list("")
	if count != 2 || len(runs) != 2 {
		t.Fatalf("unfiltered runs = %d/%d, want 2", count, len(runs))
	}
	entry := runs[0].(map[string]any)
	meta := entry["meta"].(map[string]any)
	if meta["kind"] != "run-report" || meta["program"] != "make" {
		t.Fatalf("entry meta = %v", meta)
	}
	if entry["sha256"] == "" || entry["hash"] == "" {
		t.Fatalf("entry lacks integrity fields: %v", entry)
	}

	if count, _ := list("?allocator=firstfit"); count != 1 {
		t.Fatalf("allocator filter = %d, want 1", count)
	}
	if count, _ := list("?allocator=quickfit"); count != 0 {
		t.Fatalf("absent allocator filter = %d, want 0", count)
	}
	if count, _ := list("?kind=bench-snapshot"); count != 0 {
		t.Fatalf("kind filter = %d, want 0", count)
	}
}

// TestRunsWithoutStore: a memory-only server reports the listing as
// unavailable rather than silently empty.
func TestRunsWithoutStore(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	if _, code := getJSON(t, ts.URL+"/v1/runs"); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/runs without store: status %d, want 503", code)
	}
}

// TestDiffEndpoint diffs a report against itself (identical) and
// against a different allocator's run (allocator field + metric
// deltas).
func TestDiffEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestService(t, Options{Workers: 2, Store: openStore(t, dir)})

	hashA := runToDone(t, ts, `{"program":"make","allocator":"bsd","scale":4096,"caches":[{"size":16384}]}`)
	hashB := runToDone(t, ts, `{"program":"make","allocator":"firstfit","scale":4096,"caches":[{"size":16384}]}`)

	self, code := getJSON(t, fmt.Sprintf("%s/v1/diff/%s/%s", ts.URL, hashA, hashA))
	if code != http.StatusOK {
		t.Fatalf("self diff: status %d", code)
	}
	if self["identical"] != true {
		t.Fatalf("self diff not identical: %v", self)
	}
	if self["hash_a"] != hashA || self["hash_b"] != hashA {
		t.Fatalf("self diff hashes = %v/%v", self["hash_a"], self["hash_b"])
	}

	cross, code := getJSON(t, fmt.Sprintf("%s/v1/diff/%s/%s", ts.URL, hashA, hashB))
	if code != http.StatusOK {
		t.Fatalf("cross diff: status %d", code)
	}
	if cross["identical"] == true {
		t.Fatal("different allocators' reports reported identical")
	}
	raw, _ := json.Marshal(cross["fields"])
	if !jsonContains(raw, "allocator") {
		t.Fatalf("cross diff fields lack allocator: %s", raw)
	}
	if cross["significant_count"].(float64) == 0 {
		t.Fatal("cross diff flagged no metrics at zero threshold")
	}

	// A loose threshold suppresses significance but not the deltas.
	loose, code := getJSON(t, fmt.Sprintf("%s/v1/diff/%s/%s?threshold=0.999999", ts.URL, hashA, hashB))
	if code != http.StatusOK {
		t.Fatalf("loose diff: status %d", code)
	}
	if loose["identical"] == true {
		t.Fatal("loose diff reported identical")
	}

	if _, code := getJSON(t, ts.URL+"/v1/diff/"+hashA+"/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("diff with unknown hash: status %d, want 404", code)
	}
	if _, code := getJSON(t, fmt.Sprintf("%s/v1/diff/%s/%s?threshold=nope", ts.URL, hashA, hashB)); code != http.StatusBadRequest {
		t.Fatalf("diff with bad threshold: status %d, want 400", code)
	}
}

func jsonContains(raw []byte, substr string) bool {
	return len(raw) > 0 && string(raw) != "null" && containsStr(string(raw), substr)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStoreWriteThroughOnCompletion: the report lands in the store the
// moment the job is done, not lazily on first read.
func TestStoreWriteThroughOnCompletion(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, ts := newTestService(t, Options{Workers: 1, Store: st})
	hash := runToDone(t, ts, smallSpec())
	if st.Len() != 1 {
		t.Fatalf("store Len = %d after completion, want 1", st.Len())
	}
	e, err := st.Stat(hash)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if e.Meta.Kind != "run-report" || e.Meta.Program != "make" || e.Meta.Allocator != "bsd" {
		t.Fatalf("stored meta = %+v", e.Meta)
	}
	if got, err := st.Get(hash); err != nil || len(got) == 0 {
		t.Fatalf("stored report unreadable: %v", err)
	}
}

// TestContainsDoesNotPerturbRecency pins the dedupe-path contract: a
// Contains probe must neither promote an entry (saving it from
// eviction) nor touch the hit/miss counters the capacity planner
// reads. Get is the only recency-bearing read.
func TestContainsDoesNotPerturbRecency(t *testing.T) {
	c := NewResultCache(2)
	c.Put("old", []byte("r-old"))
	c.Put("young", []byte("r-young"))

	h0, m0, e0 := c.Stats()
	for i := 0; i < 3; i++ {
		if !c.Contains("old") {
			t.Fatal("old missing")
		}
		if c.Contains("ghost") {
			t.Fatal("ghost present")
		}
	}
	if h, m, e := c.Stats(); h != h0 || m != m0 || e != e0 {
		t.Fatalf("Contains moved the counters: %d/%d/%d -> %d/%d/%d", h0, m0, e0, h, m, e)
	}

	// "old" is still the LRU entry despite the probes: the next Put
	// evicts it, not "young".
	c.Put("new", []byte("r-new"))
	if c.Contains("old") {
		t.Fatal("Contains promoted the probed entry; LRU order must be Get-only")
	}
	if !c.Contains("young") || !c.Contains("new") {
		t.Fatal("wrong entry evicted")
	}

	// Get, by contrast, does promote.
	c2 := NewResultCache(2)
	c2.Put("a", []byte("ra"))
	c2.Put("b", []byte("rb"))
	c2.Get("a")
	c2.Put("c", []byte("rc"))
	if c2.Contains("b") || !c2.Contains("a") {
		t.Fatal("Get failed to promote")
	}
}
