package serve

import (
	"fmt"
	"net/http"
	"sort"
)

// Prometheus text exposition (version 0.0.4) of the service counters
// and gauges. Counter names carry the conventional _total suffix — a
// suffix-compatible rename of the flat names the service exposed
// before (simd_cache_hits → simd_cache_hits_total), so dashboards
// update with a rename, not a re-plumb. Gauges keep their names.

// promContentType is the content type Prometheus scrapers negotiate
// for the text exposition format.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promMetric is one exposed time series.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value uint64
}

// writeProm renders metrics in exposition order: one # HELP and # TYPE
// header per metric, then the sample.
func writeProm(w http.ResponseWriter, metrics []promMetric) {
	w.Header().Set("Content-Type", promContentType)
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		fmt.Fprintf(w, "%s %d\n", m.name, m.value)
	}
}

// handleMetrics renders the service counters in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions := s.cache.Stats()

	s.storeMu.Lock()
	storeHits, storeMisses := s.storeHits.Value(), s.storeMisses.Value()
	storeErrors := s.storeErrors.Value()
	s.storeMu.Unlock()
	var storeObjects, storeBytes uint64
	if s.store != nil {
		storeObjects = uint64(s.store.Len())
		storeBytes = uint64(s.store.Bytes())
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var queued, running, done, failed int
	for _, id := range ids {
		switch s.jobs[id].State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	metrics := []promMetric{
		{"simd_jobs_submitted_total", "counter", "Jobs accepted for execution.", s.submitted.Value()},
		{"simd_jobs_completed_total", "counter", "Jobs that finished and produced a report.", s.completed.Value()},
		{"simd_jobs_failed_total", "counter", "Jobs that ended in an error.", s.failed.Value()},
		{"simd_jobs_deduplicated_total", "counter", "Submissions coalesced onto an in-flight identical job.", s.deduped.Value()},
		{"simd_jobs_queued", "gauge", "Jobs accepted but not yet running.", uint64(queued)},
		{"simd_jobs_running", "gauge", "Jobs currently executing.", uint64(running)},
		{"simd_jobs_done", "gauge", "Tracked jobs in the done state.", uint64(done)},
		{"simd_jobs_errored", "gauge", "Tracked jobs in the failed state.", uint64(failed)},
		{"simd_cache_hits_total", "counter", "Report lookups answered by the in-memory result cache.", hits},
		{"simd_cache_misses_total", "counter", "Report lookups that missed the in-memory result cache.", misses},
		{"simd_cache_evictions_total", "counter", "Reports evicted from the in-memory result cache (LRU).", evictions},
		{"simd_cache_entries", "gauge", "Reports currently held in the in-memory result cache.", uint64(s.cache.Len())},
		{"simd_store_hits_total", "counter", "Cache misses answered by the durable report store.", storeHits},
		{"simd_store_misses_total", "counter", "Lookups absent from both the cache and the store.", storeMisses},
		{"simd_store_errors_total", "counter", "Durable store reads or writes that failed (I/O, corruption).", storeErrors},
		{"simd_store_objects", "gauge", "Documents in the durable report store.", storeObjects},
		{"simd_store_bytes", "gauge", "Total bytes of stored documents.", storeBytes},
		{"simd_workers", "gauge", "Simulation worker-pool size.", uint64(s.opts.Workers)},
	}
	s.mu.Unlock()
	writeProm(w, metrics)
}
