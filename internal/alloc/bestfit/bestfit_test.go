package bestfit

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestPicksTightestFit(t *testing.T) {
	a, _ := newTestAlloc()
	// Create free blocks of 3 sizes by allocating with live separators
	// and freeing the middles.
	var seps []uint64
	mkFree := func(n uint32) uint64 {
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := a.Malloc(16) // separator prevents coalescing
		if err != nil {
			t.Fatal(err)
		}
		seps = append(seps, s)
		return p
	}
	big := mkFree(400)
	mid := mkFree(100)
	small := mkFree(40)
	for _, p := range []uint64{big, mid, small} {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// A 90-byte request fits all three; best fit takes the 100-byte one.
	q, err := a.Malloc(90)
	if err != nil {
		t.Fatal(err)
	}
	if q != mid {
		t.Errorf("best fit chose %#x, want the 100-byte block %#x", q, mid)
	}
	// A 30-byte request takes the 40-byte block.
	q2, err := a.Malloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if q2 != small {
		t.Errorf("best fit chose %#x, want the 40-byte block %#x", q2, small)
	}
}

func TestExhaustiveScan(t *testing.T) {
	a, _ := newTestAlloc()
	// With k free blocks and no exact fit, a malloc must examine all k.
	var frees, seps []uint64
	for i := 0; i < 10; i++ {
		p, _ := a.Malloc(uint32(100 + 8*i))
		s, _ := a.Malloc(16)
		frees = append(frees, p)
		seps = append(seps, s)
	}
	for _, p := range frees {
		a.Free(p)
	}
	before := a.ScanSteps()
	if _, err := a.Malloc(60); err != nil {
		t.Fatal(err)
	}
	// The heap-top residue block also sits on the list; expect at least
	// the ten freed blocks to be visited.
	if steps := a.ScanSteps() - before; steps < 10 {
		t.Errorf("scan visited %d blocks, want >= 10 (exhaustive)", steps)
	}
	_ = seps
}

func TestCoalesces(t *testing.T) {
	a, m := newTestAlloc()
	var ptrs []uint64
	for i := 0; i < 50; i++ {
		p, _ := a.Malloc(60)
		ptrs = append(ptrs, p)
	}
	foot := m.Footprint()
	for _, p := range ptrs {
		a.Free(p)
	}
	if _, err := a.Malloc(2500); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != foot {
		t.Error("coalesced free space did not satisfy a large request")
	}
}

func TestStats(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(10)
	a.Free(p)
	allocs, frees, _ := a.Stats()
	if allocs != 1 || frees != 1 || a.Name() != "bestfit" {
		t.Errorf("stats/name wrong: %d %d %q", allocs, frees, a.Name())
	}
}

// TestHeapIntegrityUnderStress audits the tag representation after
// randomized churn.
func TestHeapIntegrityUnderStress(t *testing.T) {
	a, _ := newTestAlloc()
	seed := uint64(12345)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	var live []uint64
	for op := 0; op < 4000; op++ {
		if len(live) > 120 || (len(live) > 0 && next()%2 == 0) {
			i := int(next()) % len(live)
			if err := a.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p, err := a.Malloc(uint32(1 + next()%300))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	if _, err := a.Check(); err != nil {
		t.Fatal(err)
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if st, err := a.Check(); err != nil || st.LiveBytes != 0 {
		t.Fatalf("after full free: %+v %v", st, err)
	}
}
