// Package bestfit implements the classic best-fit sequential allocator,
// the other member of the paper's "sequential-fit methods, such as
// first-fit, best-fit, etc." family (Standish's taxonomy, §2.1).
//
// Allocation scans the entire freelist and takes the smallest
// sufficiently large block — the tightest fit minimizes leftover
// fragments, the textbook space argument for best fit. The locality
// price is even steeper than FIRSTFIT's: every allocation touches
// every free block in the heap, so the paper's conclusion ("allocators
// based on sequential-fit methods ... have poor reference locality")
// applies a fortiori. The benchmark suite uses this implementation to
// extend the paper's Figure 6–8 comparison with the full sequential-fit
// family.
//
// Block layout, boundary tags, splitting and coalescing match FIRSTFIT
// (package alloc.BlockHeap).
package bestfit

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

// SplitThreshold and ExpandChunk match the other sequential allocators.
const (
	SplitThreshold = 24
	ExpandChunk    = mem.PageSize
)

// Allocator is a best-fit instance.
type Allocator struct {
	m        *mem.Memory
	h        alloc.BlockHeap
	head     uint64
	lowBlock uint64

	scanSteps uint64
	allocs    uint64
	frees     uint64
}

// New creates a best-fit allocator with its own heap region on m.
func New(m *mem.Memory) *Allocator {
	r := m.NewRegion("bestfit-heap", 0)
	a := &Allocator{m: m, h: alloc.BlockHeap{M: m, R: r}}
	head, err := a.h.NewListHead()
	if err != nil {
		panic("bestfit: sentinel sbrk failed: " + err.Error())
	}
	a.head = head
	a.lowBlock = r.Brk()
	return a
}

func init() {
	alloc.Register("bestfit", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "bestfit" }

// Allocator searches the freelist, so it implements alloc.Scanner.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: the cumulative number of
// freelist nodes examined.
func (a *Allocator) ScanSteps() uint64 { return a.scanSteps }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 8)
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	need := alloc.BlockSizeFor(n)

	// Exhaustive scan for the tightest fit; an exact fit ends early
	// (the only shortcut best fit allows itself).
	var best, bestSize uint64
	for b := a.h.Next(a.head); b != a.head; b = a.h.Next(b) {
		size, _ := a.h.Header(b)
		alloc.Charge(a.m, 4)
		a.scanSteps++
		if size >= need && (best == 0 || size < bestSize) {
			best, bestSize = b, size
			if size == need {
				break
			}
		}
	}
	if best == 0 {
		var err error
		best, bestSize, err = a.expand(need)
		if err != nil {
			return 0, err
		}
	}
	return a.allocateFrom(best, bestSize, need), nil
}

func (a *Allocator) allocateFrom(b, size, need uint64) uint64 {
	alloc.Charge(a.m, 4)
	a.h.Remove(b)
	if size >= need+SplitThreshold {
		rem := b + need
		a.h.SetTags(rem, size-need, false)
		a.h.InsertAfter(a.head, rem)
		size = need
	}
	a.h.SetTags(b, size, true)
	return a.h.Payload(b)
}

func (a *Allocator) expand(need uint64) (uint64, uint64, error) {
	grow := need
	if grow < ExpandChunk {
		grow = ExpandChunk
	}
	addr, err := a.h.R.Sbrk(grow)
	if err != nil {
		return 0, 0, err
	}
	b, size := addr, grow
	if addr > a.lowBlock {
		if psize, palloc := a.h.FooterBefore(addr); !palloc {
			prev := addr - psize
			a.h.Remove(prev)
			b = prev
			size += psize
		}
	}
	a.h.SetTags(b, size, false)
	a.h.InsertAfter(a.head, b)
	return b, size, nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 8)
	if p%mem.WordSize != 0 || p < a.lowBlock+mem.WordSize || p >= a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	b := a.h.BlockOf(p)
	size, allocated := a.h.Header(b)
	if !allocated || size < alloc.MinBlock || b+size > a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	// Both boundary tags must agree: a lone header can be a stale word
	// inside a since-coalesced free block (double free) or arbitrary
	// payload bits (interior pointer).
	if fsize, falloc := a.h.FooterBefore(b + size); fsize != size || !falloc {
		return alloc.ErrBadFree
	}
	// Mark the block free before coalescing, so its own header never
	// survives inside a merged free area still reading "allocated" (the
	// double-free hole the footer check alone cannot close when both
	// neighbours are free).
	a.h.SetTags(b, size, false)
	if next := b + size; next < a.h.R.Brk() {
		if nsize, nalloc := a.h.Header(next); !nalloc {
			a.h.Remove(next)
			size += nsize
		}
	}
	if b > a.lowBlock {
		if psize, palloc := a.h.FooterBefore(b); !palloc {
			prev := b - psize
			a.h.Remove(prev)
			b = prev
			size += psize
		}
	}
	a.h.SetTags(b, size, false)
	a.h.InsertAfter(a.head, b)
	return nil
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees, scanSteps uint64) {
	return a.allocs, a.frees, a.scanSteps
}

// Allocator can audit its own heap (shadow wrapper hook).
var _ alloc.Checker = (*Allocator)(nil)

// Check audits the heap representation. The walk performs counted
// references; meant for tests and explicit audits.
func (a *Allocator) Check() (alloc.HeapStats, error) {
	hc := alloc.HeapCheck{
		H:               &a.h,
		Lo:              a.lowBlock,
		Hi:              a.h.R.Brk(),
		Heads:           []uint64{a.head},
		ExpectCoalesced: true,
	}
	return hc.Run()
}
