package alloc

import (
	"strings"
	"testing"

	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// buildHeap hand-assembles a small tagged heap for the walker.
func buildHeap(t *testing.T) (*BlockHeap, uint64, uint64) {
	t.Helper()
	m := mem.New(trace.Discard, &cost.Meter{})
	r := m.NewRegion("walk-test", 0)
	h := &BlockHeap{M: m, R: r}
	head, err := h.NewListHead()
	if err != nil {
		t.Fatal(err)
	}
	lo := r.Brk()
	if _, err := r.Sbrk(256); err != nil {
		t.Fatal(err)
	}
	return h, head, lo
}

func TestHeapCheckCleanHeap(t *testing.T) {
	h, head, lo := buildHeap(t)
	// [alloc 64][free 96][alloc 96]
	h.SetTags(lo, 64, true)
	h.SetTags(lo+64, 96, false)
	h.InsertAfter(head, lo+64)
	h.SetTags(lo+160, 96, true)

	hc := HeapCheck{H: h, Lo: lo, Hi: lo + 256, Heads: []uint64{head}, ExpectCoalesced: true}
	st, err := hc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 3 || st.FreeBlocks != 1 || st.FreeBytes != 96 || st.LiveBytes != 160 {
		t.Errorf("stats: %+v", st)
	}
	if st.LargestFree != 96 {
		t.Errorf("largest free %d", st.LargestFree)
	}
}

func TestHeapCheckDetectsViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func(h *BlockHeap, head, lo uint64)
		want  string
	}{
		{
			"header/footer mismatch",
			func(h *BlockHeap, head, lo uint64) {
				h.SetTags(lo, 256, true)
				h.SetHeader(lo, 128, true) // footer still says 256
			},
			"disagrees",
		},
		{
			"overrun",
			func(h *BlockHeap, head, lo uint64) {
				h.SetTags(lo, 64, true)
				h.M.WriteWord(lo+64, PackTag(512, true)) // runs past heap end
			},
			"overruns",
		},
		{
			"bad size",
			func(h *BlockHeap, head, lo uint64) {
				h.M.WriteWord(lo, PackTag(8, true)) // below MinBlock
			},
			"bad size",
		},
		{
			"free block missing from freelist",
			func(h *BlockHeap, head, lo uint64) {
				h.SetTags(lo, 256, false) // free but never inserted
			},
			"on freelists",
		},
		{
			"freelist node marked allocated",
			func(h *BlockHeap, head, lo uint64) {
				h.SetTags(lo, 256, true)
				h.InsertAfter(head, lo) // allocated block on the list
			},
			"not a free block",
		},
		{
			"uncoalesced neighbours",
			func(h *BlockHeap, head, lo uint64) {
				h.SetTags(lo, 128, false)
				h.InsertAfter(head, lo)
				h.SetTags(lo+128, 128, false)
				h.InsertAfter(head, lo+128)
			},
			"adjacent free",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h, head, lo := buildHeap(t)
			c.build(h, head, lo)
			hc := HeapCheck{H: h, Lo: lo, Hi: lo + 256, Heads: []uint64{head}, ExpectCoalesced: true}
			_, err := hc.Run()
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
