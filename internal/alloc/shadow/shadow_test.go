package shadow_test

import (
	"errors"
	"fmt"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/shadow"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// fake is a bump allocator with switchable contract bugs, for proving
// the oracle notices each class of misbehaviour.
type fake struct {
	m *mem.Memory
	r *mem.Region

	returnNull    bool // Malloc: nil error, address 0
	misalign      bool // Malloc: word-misaligned address
	replayLast    bool // Malloc: hand out the previous block again
	escapeRegion  bool // Malloc: address in the region's reserved prefix
	wrongMallocEr bool // Malloc: fail with an unclassified error
	acceptAnyFree bool // Free: always succeed
	rejectFrees   bool // Free: always fail
	wrongFreeErr  bool // Free: reject invalid frees with a non-ErrBadFree error

	last uint64
	live map[uint64]bool
}

func newFake(m *mem.Memory) *fake {
	return &fake{m: m, r: m.NewRegion("fake-heap", 0), live: map[uint64]bool{}}
}

func (f *fake) Name() string { return "fake" }

func (f *fake) Malloc(n uint32) (uint64, error) {
	if f.wrongMallocEr {
		return 0, errors.New("fake: unclassified failure")
	}
	if f.returnNull {
		return 0, nil
	}
	if f.replayLast && f.last != 0 {
		return f.last, nil
	}
	if n == 0 {
		n = mem.WordSize
	}
	p, err := f.r.Sbrk(mem.AlignUp(uint64(n), mem.WordSize))
	if err != nil {
		return 0, err
	}
	if f.misalign {
		p++
	}
	if f.escapeRegion {
		p = f.r.Base() + 4 // inside the reserved prefix
	}
	f.last = p
	f.live[p] = true
	return p, nil
}

func (f *fake) Free(p uint64) error {
	if f.acceptAnyFree {
		delete(f.live, p)
		return nil
	}
	if f.rejectFrees {
		return alloc.ErrBadFree
	}
	if !f.live[p] {
		if f.wrongFreeErr {
			return errors.New("fake: not allocated")
		}
		return alloc.ErrBadFree
	}
	delete(f.live, p)
	return nil
}

func wrapFake(mutate func(*fake)) (*shadow.Allocator, *fake) {
	m := mem.New(trace.Discard, &cost.Meter{})
	f := newFake(m)
	if mutate != nil {
		mutate(f)
	}
	return shadow.Wrap(f, m, shadow.Options{}), f
}

func expectInvariant(t *testing.T, s *shadow.Allocator, inv string) {
	t.Helper()
	snap := s.Snapshot()
	if snap.ByInvariant[inv] == 0 {
		t.Fatalf("expected a %q violation; snapshot: %+v first=%v", inv, snap, snap.First)
	}
}

func TestCleanRunHasNoViolations(t *testing.T) {
	s, _ := wrapFake(nil)
	var ptrs []uint64
	for i := 0; i < 200; i++ {
		p, err := s.Malloc(uint32(i % 97))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%2 == 0 {
			if err := s.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := s.ViolationCount(); n != 0 {
		t.Fatalf("clean run produced %d violations: %v", n, s.Violations())
	}
	if got := s.LiveBlocks(); got != 100 {
		t.Fatalf("oracle live count = %d, want 100", got)
	}
}

func TestDetectsNullReturn(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.returnNull = true })
	_, _ = s.Malloc(16)
	expectInvariant(t, s, shadow.InvNullReturn)
}

func TestDetectsMisalignment(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.misalign = true })
	_, _ = s.Malloc(16)
	expectInvariant(t, s, shadow.InvMisaligned)
}

func TestDetectsOverlap(t *testing.T) {
	s, _ := wrapFake(nil)
	if _, err := s.Malloc(64); err != nil {
		t.Fatal(err)
	}
	// Switch on the bug mid-run: the next block replays the previous
	// address while the first is still live.
	sf := s.Unwrap().(*fake)
	sf.replayLast = true
	_, _ = s.Malloc(64)
	expectInvariant(t, s, shadow.InvOverlap)
}

func TestDetectsRegionEscape(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.escapeRegion = true })
	_, _ = s.Malloc(16)
	expectInvariant(t, s, shadow.InvOutOfRegion)
}

func TestDetectsMallocErrorClass(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.wrongMallocEr = true })
	_, _ = s.Malloc(16)
	expectInvariant(t, s, shadow.InvMallocErrClass)
}

func TestDetectsDoubleFreeAccepted(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.acceptAnyFree = true })
	p, _ := s.Malloc(32)
	_ = s.Free(p)
	_ = s.Free(p)
	expectInvariant(t, s, shadow.InvDoubleFree)
}

func TestDetectsInteriorFreeAccepted(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.acceptAnyFree = true })
	p, _ := s.Malloc(64)
	_ = s.Free(p + mem.WordSize)
	expectInvariant(t, s, shadow.InvInteriorFree)
}

func TestDetectsUnknownFreeAccepted(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.acceptAnyFree = true })
	if _, err := s.Malloc(64); err != nil {
		t.Fatal(err)
	}
	_ = s.Free(1 << 20)
	expectInvariant(t, s, shadow.InvUnknownFree)
}

func TestDetectsLiveFreeRejected(t *testing.T) {
	s, _ := wrapFake(nil)
	p, _ := s.Malloc(32)
	s.Unwrap().(*fake).rejectFrees = true
	_ = s.Free(p)
	expectInvariant(t, s, shadow.InvFreeLiveRejected)
	if s.LiveBlocks() != 1 {
		t.Fatalf("oracle dropped a block the allocator claims is still live")
	}
}

func TestDetectsFreeErrorClass(t *testing.T) {
	s, _ := wrapFake(func(f *fake) { f.wrongFreeErr = true })
	if _, err := s.Malloc(32); err != nil {
		t.Fatal(err)
	}
	_ = s.Free(1 << 20)
	expectInvariant(t, s, shadow.InvFreeErrClass)
}

// failingChecker implements alloc.Checker and always reports corruption.
type failingChecker struct {
	*fake
}

func (c failingChecker) Check() (alloc.HeapStats, error) {
	return alloc.HeapStats{}, fmt.Errorf("boundary tags disagree")
}

func TestAuditHookViaUnwrapChain(t *testing.T) {
	m := mem.New(trace.Discard, &cost.Meter{})
	inner := failingChecker{newFake(m)}
	s := shadow.Wrap(inner, m, shadow.Options{AuditEvery: 1})
	if _, err := s.Malloc(16); err != nil {
		t.Fatal(err)
	}
	expectInvariant(t, s, shadow.InvAudit)
	if !s.Audit() {
		t.Fatal("Audit() reported no checker")
	}
}

func TestOnViolationCallbackAndRecordCap(t *testing.T) {
	var seen int
	m := mem.New(trace.Discard, &cost.Meter{})
	f := newFake(m)
	f.returnNull = true
	s := shadow.Wrap(f, m, shadow.Options{
		MaxRecorded: 2,
		OnViolation: func(v shadow.Violation) { seen++ },
	})
	for i := 0; i < 5; i++ {
		_, _ = s.Malloc(8)
	}
	if seen != 5 {
		t.Errorf("OnViolation fired %d times, want 5", seen)
	}
	if got := len(s.Violations()); got != 2 {
		t.Errorf("recorded %d violations verbatim, want cap of 2", got)
	}
	if s.ViolationCount() != 5 {
		t.Errorf("total count = %d, want 5", s.ViolationCount())
	}
}

// TestOracleModelStress drives a large random-shaped churn through the
// oracle's treap (insert/remove/floor/ceil) against a map-based
// reference: the clean bump allocator never violates, and the live set
// matches exactly throughout.
func TestOracleModelStress(t *testing.T) {
	s, _ := wrapFake(nil)
	ref := map[uint64]bool{}
	var order []uint64
	x := uint64(0x1234567)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if len(order) > 0 && x%3 == 0 {
			idx := int(x/3) % len(order)
			p := order[idx]
			if err := s.Free(p); err != nil {
				t.Fatalf("free(%#x): %v", p, err)
			}
			delete(ref, p)
			order[idx] = order[len(order)-1]
			order = order[:len(order)-1]
			continue
		}
		p, err := s.Malloc(uint32(x%512) + 1)
		if err != nil {
			t.Fatal(err)
		}
		ref[p] = true
		order = append(order, p)
	}
	if s.LiveBlocks() != len(ref) {
		t.Fatalf("oracle live = %d, reference = %d", s.LiveBlocks(), len(ref))
	}
	if n := s.ViolationCount(); n != 0 {
		t.Fatalf("stress produced %d violations: %v", n, s.Violations())
	}
}
