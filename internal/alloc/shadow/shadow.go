// Package shadow wraps an alloc.Allocator with an independent oracle
// model of the heap and validates every operation against it.
//
// The oracle is host-side state (an address-ordered treap of live
// blocks plus per-block size/site bookkeeping) — it issues no simulated
// references and charges no instructions, so wrapping changes nothing
// about the run being measured except where periodic boundary-tag
// audits are enabled (see Options.AuditEvery). Each Malloc and Free is
// checked for the contract documented on alloc.Allocator: returned
// blocks must be word-aligned, non-null, inside the allocator's own
// region span and disjoint from every live block; frees must target
// live block bases, and double frees and interior pointers must be
// rejected with alloc.ErrBadFree. Violations are recorded as structured
// records (operation index, allocator, invariant, block) and surfaced
// through Snapshot, which the simulation embeds in its JSON run report.
//
// The wrapper is an observer, not a gatekeeper: every call is forwarded
// to the wrapped allocator and its result returned unchanged, so a
// buggy allocator behaves identically with and without the shadow — the
// shadow just tells you about it.
package shadow

import (
	"errors"
	"fmt"

	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

// Invariant names identify what a Violation violated. They are stable
// strings (they appear in JSON reports and CI logs).
const (
	// InvNullReturn: Malloc reported success but returned address 0.
	InvNullReturn = "malloc-null"
	// InvMisaligned: Malloc returned an address not word-aligned.
	InvMisaligned = "misaligned"
	// InvOverlap: a returned block overlaps a live block.
	InvOverlap = "overlap"
	// InvOutOfRegion: a returned block lies outside the break of any
	// simulated region, or inside a region's reserved prefix — payload
	// escaping the allocator's own metadata/payload layout.
	InvOutOfRegion = "out-of-region"
	// InvMallocErrClass: Malloc failed with an error that is neither
	// alloc.ErrTooLarge nor one wrapping mem.ErrOutOfMemory.
	InvMallocErrClass = "malloc-error-class"
	// InvFreeLiveRejected: Free of a live block base returned an error.
	InvFreeLiveRejected = "free-live-rejected"
	// InvDoubleFree: Free of an already-freed base succeeded.
	InvDoubleFree = "double-free-accepted"
	// InvInteriorFree: Free of a pointer strictly inside a live block
	// succeeded.
	InvInteriorFree = "interior-free-accepted"
	// InvUnknownFree: Free of an address never returned by Malloc
	// succeeded.
	InvUnknownFree = "unknown-free-accepted"
	// InvFreeErrClass: an invalid Free was rejected, but with an error
	// other than alloc.ErrBadFree.
	InvFreeErrClass = "free-error-class"
	// InvAudit: a periodic boundary-tag heap audit (alloc.Checker)
	// reported an inconsistency.
	InvAudit = "heap-audit"
)

// Violation is one recorded contract breach.
type Violation struct {
	// Op is the 1-based operation index (Mallocs and Frees both count).
	Op uint64 `json:"op"`
	// Allocator is the wrapped allocator's registry name.
	Allocator string `json:"allocator"`
	// Invariant is one of the Inv* constants.
	Invariant string `json:"invariant"`
	// Call is "malloc", "free" or "audit".
	Call string `json:"call"`
	// Addr is the address involved (block base for malloc violations,
	// the freed pointer for free violations), 0 if not applicable.
	Addr uint64 `json:"addr,omitempty"`
	// Size is the request size for malloc violations.
	Size uint32 `json:"size,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("op %d %s(%s): %s addr=%#x size=%d: %s",
		v.Op, v.Call, v.Allocator, v.Invariant, v.Addr, v.Size, v.Detail)
}

// Snapshot summarizes a shadow wrapper's observations for reports.
type Snapshot struct {
	Allocator   string            `json:"allocator"`
	Ops         uint64            `json:"ops"`
	Audits      uint64            `json:"audits"`
	LiveBlocks  int               `json:"live_blocks"`
	LiveBytes   uint64            `json:"live_bytes"`
	Violations  uint64            `json:"violations"`
	ByInvariant map[string]uint64 `json:"by_invariant,omitempty"`
	// First holds the first Options.MaxRecorded violations verbatim.
	First []Violation `json:"first,omitempty"`
}

// Options configures a shadow wrapper.
type Options struct {
	// AuditEvery runs a boundary-tag heap audit (alloc.Checker.Check)
	// every AuditEvery operations, when the wrapped allocator
	// implements Checker. 0 uses DefaultAuditEvery; set DisableAudit
	// to turn audits off entirely. Audits perform counted references.
	AuditEvery uint64
	// DisableAudit turns periodic audits off.
	DisableAudit bool
	// MaxRecorded bounds the verbatim violation records kept (the
	// counters always count everything). 0 uses DefaultMaxRecorded.
	MaxRecorded int
	// OnViolation, if set, is called synchronously for every violation.
	OnViolation func(Violation)
}

// DefaultAuditEvery is the default audit cadence, in operations.
//
//lint:allow wordaddr 4096 is an op-count cadence (audit every 4096 Malloc/Free calls), not a byte quantity
const DefaultAuditEvery = 4096

// DefaultMaxRecorded is the default cap on verbatim violation records.
const DefaultMaxRecorded = 32

// node is one live allocation in the oracle's address-ordered treap.
type node struct {
	addr uint64
	size uint64 // effective payload span (≥ one word)
	site uint32
	op   uint64 // op index of the allocating call
	prio uint64
	l, r *node
}

// Allocator is the shadow wrapper. It implements alloc.Allocator,
// alloc.SiteAllocator and alloc.LocalityHinter (forwarding site and
// locality information when the wrapped allocator exploits them).
type Allocator struct {
	inner   alloc.Allocator
	site    alloc.SiteAllocator  // nil if inner is not site-aware
	hint    alloc.LocalityHinter // nil if inner is not hint-aware
	checker alloc.Checker        // nil if no audit hook anywhere in the chain
	m       *mem.Memory
	opts    Options

	ops    uint64
	audits uint64

	root      *node
	live      map[uint64]*node  // addr → treap node
	liveBytes uint64
	freed     map[uint64]uint64 // former base → op index of the freeing call
	rng       uint64            // treap priorities (deterministic xorshift)

	counts   map[string]uint64
	total    uint64
	recorded []Violation
}

// Wrap builds a shadow wrapper around a. The memory m is consulted
// (host-side only) to validate that returned blocks lie inside region
// breaks. The audit hook is discovered by unwrapping a's wrapper chain
// (anything implementing Unwrap() alloc.Allocator) until an
// alloc.Checker is found.
func Wrap(a alloc.Allocator, m *mem.Memory, opts Options) *Allocator {
	if opts.AuditEvery == 0 {
		opts.AuditEvery = DefaultAuditEvery
	}
	if opts.MaxRecorded == 0 {
		opts.MaxRecorded = DefaultMaxRecorded
	}
	s := &Allocator{
		inner:  a,
		m:      m,
		opts:   opts,
		live:   map[uint64]*node{},
		freed:  map[uint64]uint64{},
		rng:    0x9e3779b97f4a7c15,
		counts: map[string]uint64{},
	}
	s.site, _ = a.(alloc.SiteAllocator)
	s.hint, _ = a.(alloc.LocalityHinter)
	for inner := a; ; {
		if c, ok := inner.(alloc.Checker); ok {
			s.checker = c
			break
		}
		u, ok := inner.(interface{ Unwrap() alloc.Allocator })
		if !ok {
			break
		}
		inner = u.Unwrap()
	}
	return s
}

// Name returns the wrapped allocator's name.
func (s *Allocator) Name() string { return s.inner.Name() }

// Unwrap returns the wrapped allocator.
func (s *Allocator) Unwrap() alloc.Allocator { return s.inner }

// Malloc forwards to the wrapped allocator and validates the result.
func (s *Allocator) Malloc(n uint32) (uint64, error) {
	addr, err := s.inner.Malloc(n)
	s.afterMalloc(n, 0, addr, err)
	return addr, err
}

// MallocSite forwards site information when the wrapped allocator is
// site-aware, falling back to Malloc otherwise.
func (s *Allocator) MallocSite(n uint32, site uint32) (uint64, error) {
	var addr uint64
	var err error
	if s.site != nil {
		addr, err = s.site.MallocSite(n, site)
	} else {
		addr, err = s.inner.Malloc(n)
	}
	s.afterMalloc(n, site, addr, err)
	return addr, err
}

// MallocLocal forwards the locality hint when the wrapped allocator is
// hint-aware, falling back to Malloc otherwise. The oracle does not
// model hints — placement policy is the allocator's business — so the
// usual liveness and geometry validation applies unchanged.
func (s *Allocator) MallocLocal(n uint32, locality uint32) (uint64, error) {
	var addr uint64
	var err error
	if s.hint != nil {
		addr, err = s.hint.MallocLocal(n, locality)
	} else {
		addr, err = s.inner.Malloc(n)
	}
	s.afterMalloc(n, 0, addr, err)
	return addr, err
}

// Free forwards to the wrapped allocator and validates the outcome
// against the oracle's liveness model.
func (s *Allocator) Free(addr uint64) error {
	err := s.inner.Free(addr)
	s.afterFree(addr, err)
	return err
}

// effSize is the payload span the oracle books for a request: at least
// one word, per the Malloc(0) contract.
func effSize(n uint32) uint64 {
	if n == 0 {
		return mem.WordSize
	}
	return uint64(n)
}

func (s *Allocator) afterMalloc(n uint32, site uint32, addr uint64, err error) {
	s.ops++
	defer s.maybeAudit()
	if err != nil {
		if !errors.Is(err, alloc.ErrTooLarge) && !errors.Is(err, mem.ErrOutOfMemory) {
			s.violate(Violation{Call: "malloc", Invariant: InvMallocErrClass, Size: n,
				Detail: fmt.Sprintf("unexpected error class: %v", err)})
		}
		return
	}
	size := effSize(n)
	if addr == 0 {
		s.violate(Violation{Call: "malloc", Invariant: InvNullReturn, Size: n,
			Detail: "nil error but null address"})
		return
	}
	if addr%mem.WordSize != 0 {
		s.violate(Violation{Call: "malloc", Invariant: InvMisaligned, Addr: addr, Size: n,
			Detail: fmt.Sprintf("address %% %d = %d", mem.WordSize, addr%mem.WordSize)})
	}
	if r := s.m.RegionAt(addr); r == nil {
		s.violate(Violation{Call: "malloc", Invariant: InvOutOfRegion, Addr: addr, Size: n,
			Detail: "address outside every simulated region"})
	} else if addr < r.Base()+mem.RegionReserve || addr+size > r.Brk() {
		s.violate(Violation{Call: "malloc", Invariant: InvOutOfRegion, Addr: addr, Size: n,
			Detail: fmt.Sprintf("payload [%#x,%#x) escapes region %s [%#x,%#x)",
				addr, addr+size, r.Name(), r.Base()+mem.RegionReserve, r.Brk())})
	}
	// No-overlap against the address-ordered live set: the predecessor
	// must end at or before addr, the successor start at or after
	// addr+size.
	if p := s.floor(addr - 1); p != nil && p.addr+p.size > addr {
		s.violate(Violation{Call: "malloc", Invariant: InvOverlap, Addr: addr, Size: n,
			Detail: fmt.Sprintf("overlaps live block [%#x,%#x) from op %d", p.addr, p.addr+p.size, p.op)})
	}
	if nx := s.ceil(addr); nx != nil && nx.addr != addr && addr+size > nx.addr {
		s.violate(Violation{Call: "malloc", Invariant: InvOverlap, Addr: addr, Size: n,
			Detail: fmt.Sprintf("overlaps live block [%#x,%#x) from op %d", nx.addr, nx.addr+nx.size, nx.op)})
	}
	if old, dup := s.live[addr]; dup {
		// Exact duplicate base: the floor/ceil probes above skip the
		// node at addr itself, so report the overlap here, then adopt
		// the newer claim (observer, not gatekeeper).
		s.violate(Violation{Call: "malloc", Invariant: InvOverlap, Addr: addr, Size: n,
			Detail: fmt.Sprintf("same base as live block [%#x,%#x) from op %d", old.addr, old.addr+old.size, old.op)})
		s.liveBytes += size - old.size
		old.size, old.site, old.op = size, site, s.ops
	} else {
		s.insert(&node{addr: addr, size: size, site: site, op: s.ops, prio: s.nextPrio()})
		s.liveBytes += size
	}
	delete(s.freed, addr)
}

func (s *Allocator) afterFree(addr uint64, err error) {
	s.ops++
	defer s.maybeAudit()
	if b, ok := s.live[addr]; ok {
		if err != nil {
			s.violate(Violation{Call: "free", Invariant: InvFreeLiveRejected, Addr: addr,
				Detail: fmt.Sprintf("live block from op %d rejected: %v", b.op, err)})
			// Keep the block live: the allocator claims it still is.
			return
		}
		s.remove(addr)
		s.freed[addr] = s.ops
		return
	}
	// Not a live base. Classify what the allocator should have rejected.
	inv, detail := InvUnknownFree, "address never returned by Malloc"
	if opIdx, wasFreed := s.freed[addr]; wasFreed {
		inv, detail = InvDoubleFree, fmt.Sprintf("base already freed at op %d", opIdx)
	} else if p := s.floor(addr); p != nil && addr > p.addr && addr < p.addr+p.size {
		inv, detail = InvInteriorFree,
			fmt.Sprintf("pointer into live block [%#x,%#x) from op %d", p.addr, p.addr+p.size, p.op)
	}
	if err == nil {
		s.violate(Violation{Call: "free", Invariant: inv, Addr: addr,
			Detail: detail + " — accepted"})
		return
	}
	if !errors.Is(err, alloc.ErrBadFree) {
		s.violate(Violation{Call: "free", Invariant: InvFreeErrClass, Addr: addr,
			Detail: fmt.Sprintf("%s — rejected with %v, want alloc.ErrBadFree", detail, err)})
	}
}

// --- address-ordered treap ---------------------------------------------

func (s *Allocator) nextPrio() uint64 {
	// xorshift64: deterministic so shadowed runs stay reproducible.
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

func merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.r = merge(a.r, b)
		return a
	}
	b.l = merge(a, b.l)
	return b
}

// split partitions t into nodes with addr < key and addr >= key.
func split(t *node, key uint64) (l, r *node) {
	if t == nil {
		return nil, nil
	}
	if t.addr < key {
		t.r, r = split(t.r, key)
		return t, r
	}
	l, t.l = split(t.l, key)
	return l, t
}

func (s *Allocator) insert(n *node) {
	l, r := split(s.root, n.addr)
	s.root = merge(merge(l, n), r)
	s.live[n.addr] = n
}

func (s *Allocator) remove(addr uint64) {
	b := s.live[addr]
	l, r := split(s.root, addr)
	_, r = split(r, addr+1) // drops the node with .addr == addr
	s.root = merge(l, r)
	delete(s.live, addr)
	s.liveBytes -= b.size
}

// floor returns the live block with the greatest base ≤ addr, nil if none.
func (s *Allocator) floor(addr uint64) *node {
	var best *node
	for t := s.root; t != nil; {
		if t.addr <= addr {
			best = t
			t = t.r
		} else {
			t = t.l
		}
	}
	return best
}

// ceil returns the live block with the smallest base ≥ addr, nil if none.
func (s *Allocator) ceil(addr uint64) *node {
	var best *node
	for t := s.root; t != nil; {
		if t.addr >= addr {
			best = t
			t = t.l
		} else {
			t = t.r
		}
	}
	return best
}

// --- audits and reporting ----------------------------------------------

func (s *Allocator) maybeAudit() {
	if s.checker == nil || s.opts.DisableAudit {
		return
	}
	if s.ops%s.opts.AuditEvery == 0 {
		s.runAudit()
	}
}

func (s *Allocator) runAudit() {
	s.audits++
	if _, err := s.checker.Check(); err != nil {
		s.violate(Violation{Call: "audit", Invariant: InvAudit, Detail: err.Error()})
	}
}

// Audit runs one boundary-tag heap audit immediately (typically at end
// of run). It reports whether the wrapped allocator supports auditing.
func (s *Allocator) Audit() bool {
	if s.checker == nil {
		return false
	}
	s.runAudit()
	return true
}

func (s *Allocator) violate(v Violation) {
	v.Op = s.ops
	v.Allocator = s.inner.Name()
	s.total++
	s.counts[v.Invariant]++
	if len(s.recorded) < s.opts.MaxRecorded {
		s.recorded = append(s.recorded, v)
	}
	if s.opts.OnViolation != nil {
		s.opts.OnViolation(v)
	}
}

// ViolationCount returns the total number of violations observed.
func (s *Allocator) ViolationCount() uint64 { return s.total }

// Violations returns the recorded violations (bounded by MaxRecorded).
func (s *Allocator) Violations() []Violation {
	out := make([]Violation, len(s.recorded))
	copy(out, s.recorded)
	return out
}

// LiveBlocks returns the oracle's current live-block count.
func (s *Allocator) LiveBlocks() int { return len(s.live) }

// Snapshot captures the wrapper's observations for reporting.
func (s *Allocator) Snapshot() *Snapshot {
	snap := &Snapshot{
		Allocator:  s.inner.Name(),
		Ops:        s.ops,
		Audits:     s.audits,
		LiveBlocks: len(s.live),
		LiveBytes:  s.liveBytes,
		Violations: s.total,
		First:      s.Violations(),
	}
	if len(s.counts) > 0 {
		snap.ByInvariant = make(map[string]uint64, len(s.counts))
		for k, v := range s.counts {
			snap.ByInvariant[k] = v
		}
	}
	return snap
}

var (
	_ alloc.Allocator      = (*Allocator)(nil)
	_ alloc.SiteAllocator  = (*Allocator)(nil)
	_ alloc.LocalityHinter = (*Allocator)(nil)
)
