package custom

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc(cfg Config) (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m, cfg), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, DefaultConfig()) })
}

func TestConformanceReclaim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reclaim = true
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, cfg) })
}

func TestConformancePow2(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, PowerOfTwoConfig(512)) })
}

func TestBoundedFragConfig(t *testing.T) {
	cfg := BoundedFragConfig(1024, 4)
	prev := uint32(0)
	for _, c := range cfg.Classes {
		if c <= prev || c%4 != 0 {
			t.Fatalf("classes not ascending word multiples: %v", cfg.Classes)
		}
		// The next class is at most 25% above the previous (plus word
		// rounding), bounding internal fragmentation.
		if prev >= 8 && float64(c) > float64(prev)*1.25+4 {
			t.Errorf("gap %d -> %d exceeds 25%% + rounding", prev, c)
		}
		prev = c
	}
	if cfg.Classes[len(cfg.Classes)-1] != 1024 {
		t.Error("classes must reach maxSmall")
	}
}

func TestPowerOfTwoConfig(t *testing.T) {
	cfg := PowerOfTwoConfig(1024)
	want := []uint32{8, 16, 32, 64, 128, 256, 512, 1024}
	if len(cfg.Classes) != len(want) {
		t.Fatalf("classes %v", cfg.Classes)
	}
	for i, c := range cfg.Classes {
		if c != want[i] {
			t.Fatalf("classes %v, want %v", cfg.Classes, want)
		}
	}
}

func TestFromProfile(t *testing.T) {
	profile := map[uint32]uint64{
		24: 100000, 40: 50000, 17: 30000, 2000: 5, 0: 3,
	}
	cfg := FromProfile(profile, 1024, 4)
	has := func(size uint32) bool {
		for _, c := range cfg.Classes {
			if c == size {
				return true
			}
		}
		return false
	}
	// Hot sizes become exact classes (17 word-rounds to 20).
	for _, s := range []uint32{24, 40, 20} {
		if !has(s) {
			t.Errorf("profile class %d missing from %v", s, cfg.Classes)
		}
	}
	if has(2000) || has(0) {
		t.Error("oversize/zero profile entries must be ignored")
	}
	prev := uint32(0)
	for _, c := range cfg.Classes {
		if c <= prev {
			t.Fatalf("classes not ascending: %v", cfg.Classes)
		}
		prev = c
	}
}

func TestSizeMappingExact(t *testing.T) {
	a, _ := newTestAlloc(Config{Classes: []uint32{8, 24, 100, 1024}})
	if got := a.Classes(); len(got) != 4 {
		t.Fatalf("classes %v", got)
	}
	// Requests map to the smallest covering class; verify via exact
	// reuse across the class range.
	p, _ := a.Malloc(9) // class 24
	a.Free(p)
	q, _ := a.Malloc(24)
	if q != p {
		t.Errorf("9B and 24B should share class 24: %#x vs %#x", p, q)
	}
	r, _ := a.Malloc(25) // class 100
	a.Free(r)
	s, _ := a.Malloc(100)
	if s != r {
		t.Errorf("25B and 100B should share class 100: %#x vs %#x", r, s)
	}
}

func TestNoPerObjectHeader(t *testing.T) {
	// 64 objects of class 64 fit in one 4096-byte chunk exactly: with
	// any per-object header only 63 would fit.
	a, _ := newTestAlloc(Config{Classes: []uint32{64}})
	first, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	chunk := first &^ (ChunkSize - 1)
	for i := 1; i < 64; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if p&^(ChunkSize-1) != chunk {
			t.Fatalf("object %d left the chunk: %#x", i, p)
		}
	}
}

func TestLargeDelegation(t *testing.T) {
	a, _ := newTestAlloc(DefaultConfig())
	p, err := a.Malloc(5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestChunkReclamationAndReuse(t *testing.T) {
	cfg := Config{Classes: []uint32{32, 512}, Reclaim: true}
	a, m := newTestAlloc(cfg)
	// Fill a chunk with class-512 objects, free them: the chunk returns
	// to the pool and must be reused by class 32 without heap growth.
	var ptrs []uint64
	for i := 0; i < ChunkSize/512; i++ {
		p, err := a.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	foot := m.Footprint()
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	q, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != foot {
		t.Errorf("reclaimed chunk not reused: footprint %d -> %d", foot, m.Footprint())
	}
	if q&^(ChunkSize-1) != ptrs[0]&^(ChunkSize-1) {
		t.Errorf("class 32 did not land on the reclaimed chunk")
	}
}

func TestNoReclaimKeepsChunks(t *testing.T) {
	cfg := Config{Classes: []uint32{32, 512}}
	a, m := newTestAlloc(cfg)
	var ptrs []uint64
	for i := 0; i < ChunkSize/512; i++ {
		p, _ := a.Malloc(512)
		ptrs = append(ptrs, p)
	}
	foot := m.Footprint()
	for _, p := range ptrs {
		a.Free(p)
	}
	if _, err := a.Malloc(32); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() == foot {
		t.Error("without reclamation, class 32 must grow a new chunk")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Classes: []uint32{0}},
		{Classes: []uint32{7}},
		{Classes: []uint32{16, 16}},
		{Classes: []uint32{32, 16}},
		{Classes: []uint32{8192}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %v: expected panic", cfg.Classes)
				}
			}()
			newTestAlloc(cfg)
		}()
	}
}

func TestNames(t *testing.T) {
	a, _ := newTestAlloc(DefaultConfig())
	if a.Name() != "custom" {
		t.Errorf("name %q", a.Name())
	}
	cfg := DefaultConfig()
	cfg.Reclaim = true
	b, _ := newTestAlloc(cfg)
	if b.Name() != "custom-reclaim" {
		t.Errorf("name %q", b.Name())
	}
}

func TestStats(t *testing.T) {
	a, _ := newTestAlloc(DefaultConfig())
	p, _ := a.Malloc(10)
	a.Free(p)
	allocs, frees := a.Stats()
	if allocs != 1 || frees != 1 {
		t.Errorf("stats %d/%d", allocs, frees)
	}
}
