// Package custom implements the allocator architecture the paper
// recommends in §4.4 ("An Architecture for Efficient Memory
// Allocation") and illustrates in Figure 9.
//
// The design combines the winning traits of the allocators studied:
//
//   - QUICKFIT/BSD-speed allocation: a size class is found with a single
//     indexed load of a size-mapping array (Figure 9), and allocation
//     pops the head of that class's freelist — no searching, ever.
//   - Arbitrary size classes: the mapping array supports non-uniform
//     class boundaries, so classes can be chosen to bound internal
//     fragmentation (e.g. at most 25%) or synthesized from a measured
//     program profile (the paper's CustoMalloc line of work).
//   - GNU LOCAL-style tag elimination: objects carry no per-object
//     header at all; the owning chunk's descriptor records the class,
//     so free() recovers the size from the address. No boundary tags
//     means no cache pollution (Table 6).
//   - Optional whole-chunk reclamation (WithReclaim): per-chunk free
//     counts let fully-free chunks return to a chunk pool for reuse by
//     any class, at extra bookkeeping cost — an explicit
//     speed-versus-space design knob the benchmarks ablate.
//
// Requests beyond the largest class are delegated to a general-purpose
// GNU G++ allocator, which the paper notes is still needed "to allocate
// infrequently allocated objects or objects that deviate from the
// normal program behavior".
package custom

import (
	"fmt"
	"sort"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/gnufit"
	"mallocsim/internal/mem"
)

// ChunkSize is the carving granularity for class storage.
const ChunkSize = mem.PageSize

const chunkLog = 12

// Config selects the size classes and reclamation policy.
type Config struct {
	// Classes are the payload sizes served by the fast path, ascending,
	// each a positive multiple of the word size. Requests above the
	// last class go to the general allocator.
	Classes []uint32
	// Reclaim enables whole-chunk reclamation via per-chunk free
	// counts.
	Reclaim bool
}

// BoundedFragConfig returns classes sized so that internal
// fragmentation never exceeds 1/(factor) of the object, following the
// paper's citation of DeTreville: with 25% tolerated, "objects of size
// 12–16 bytes are rounded to 16 bytes". factor 4 gives the 25% bound.
// Classes run from 8 bytes up to maxSmall.
func BoundedFragConfig(maxSmall uint32, factor uint32) Config {
	if factor < 2 {
		factor = 2
	}
	var classes []uint32
	size := uint32(8)
	for size < maxSmall {
		classes = append(classes, size)
		next := size + size/factor
		next = uint32(mem.AlignUp(uint64(next), mem.WordSize))
		if next <= size {
			next = size + mem.WordSize
		}
		size = next
	}
	classes = append(classes, maxSmall)
	return Config{Classes: classes}
}

// PowerOfTwoConfig returns BSD-style power-of-two classes from 8 up to
// maxSmall (itself rounded up to a power of two) — the crude mapping
// the paper says is used "because it is easy to compute", for ablating
// against smarter class choices.
func PowerOfTwoConfig(maxSmall uint32) Config {
	var classes []uint32
	for size := uint32(8); ; size <<= 1 {
		classes = append(classes, size)
		if size >= maxSmall {
			break
		}
	}
	return Config{Classes: classes}
}

// FromProfile synthesizes a configuration from a measured request-size
// histogram, as the paper advocates: "we advocate basing the choice of
// size classes on empirical measurements of a particular program's
// behavior". The most frequent maxClasses word-rounded sizes become
// exact classes; bounded-fragmentation classes fill the gaps so every
// small request is covered.
func FromProfile(sizes map[uint32]uint64, maxSmall uint32, maxClasses int) Config {
	type sc struct {
		size  uint32
		count uint64
	}
	rounded := make(map[uint32]uint64)
	for size, count := range sizes {
		if size == 0 || size > maxSmall {
			continue
		}
		r := uint32(mem.AlignUp(uint64(size), mem.WordSize))
		rounded[r] += count
	}
	byCount := make([]sc, 0, len(rounded))
	for size, count := range rounded {
		byCount = append(byCount, sc{size, count})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].count != byCount[j].count {
			return byCount[i].count > byCount[j].count
		}
		return byCount[i].size < byCount[j].size
	})
	chosen := map[uint32]bool{}
	for i := 0; i < len(byCount) && len(chosen) < maxClasses; i++ {
		chosen[byCount[i].size] = true
	}
	for _, c := range BoundedFragConfig(maxSmall, 4).Classes {
		chosen[c] = true
	}
	classes := make([]uint32, 0, len(chosen))
	for c := range chosen {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	return Config{Classes: classes}
}

// DefaultConfig is the bounded-fragmentation configuration (25% bound,
// classes up to 1 KB).
func DefaultConfig() Config { return BoundedFragConfig(1024, 4) }

// Allocator is a §4.4 recommended-architecture instance.
type Allocator struct {
	m       *mem.Memory
	general *gnufit.Allocator
	data    *mem.Region // chunk storage
	info    *mem.Region // chunk descriptors, 8 bytes each
	state   *mem.Region // size-mapping array, class heads, chunk pool

	cfg       Config
	classes   []uint32
	maxSmall  uint32
	dataBase  uint64
	infoBase  uint64
	stateBase uint64

	// State-region word offsets computed at construction.
	offHeads     uint64 // class freelist heads
	offChunkPool uint64 // head of the free-chunk stack (chunk index)

	infoChunks uint64 // host-side descriptor capacity bookkeeping
	nchunks    uint64 // chunks in the data region (incl. guard)

	// freeFrags is a host-side validation table of currently-free
	// fragment addresses. The §4.4 design is deliberately tagless — no
	// per-object allocated bit exists in simulated memory — so a double
	// free is undetectable from the algorithm's own state and used to
	// re-link the fragment, cycling its class list. The side table
	// costs no simulated references or instructions — the equivalent of
	// a debug-build assertion, not part of the measured algorithm.
	freeFrags map[uint64]bool

	allocs uint64
	frees  uint64
}

// Descriptor fields (8 bytes per chunk).
const (
	descSize = 8
	dClass   = 0 // class index + 1; 0 = free or never used
	dAux     = 4 // reclaim: free frag count; pooled chunk: next free idx
)

// New creates a custom allocator with the given configuration.
func New(m *mem.Memory, cfg Config) *Allocator {
	if len(cfg.Classes) == 0 {
		cfg = DefaultConfig()
	}
	a := &Allocator{
		m:         m,
		general:   gnufit.New(m),
		data:      m.NewRegion("custom-heap", 0),
		info:      m.NewRegion("custom-info", 0),
		state:     m.NewRegion("custom-state", 0),
		cfg:       cfg,
		freeFrags: map[uint64]bool{},
	}
	prev := uint32(0)
	for _, c := range cfg.Classes {
		if c == 0 || c%mem.WordSize != 0 || c <= prev {
			panic(fmt.Sprintf("custom: bad class size %d (classes must be ascending word multiples)", c))
		}
		if c > ChunkSize {
			panic(fmt.Sprintf("custom: class size %d exceeds chunk size", c))
		}
		a.classes = append(a.classes, c)
		prev = c
	}
	a.maxSmall = a.classes[len(a.classes)-1]

	mapWords := uint64(a.maxSmall / mem.WordSize) // entry i covers sizes 4i+1..4i+4
	a.offHeads = mapWords * mem.WordSize
	a.offChunkPool = a.offHeads + uint64(len(a.classes))*mem.WordSize
	stateLen := a.offChunkPool + mem.WordSize

	var err error
	a.stateBase, err = a.state.Sbrk(stateLen)
	if err == nil {
		// Guard chunk: index 0 is null; it absorbs the region's
		// reserved prefix so later chunks are page-aligned.
		a.dataBase = a.data.Base()
		_, err = a.data.Sbrk(ChunkSize - mem.RegionReserve)
	}
	if err == nil {
		a.infoBase, err = a.info.Sbrk(descSize)
	}
	if err != nil {
		panic("custom: init sbrk failed: " + err.Error())
	}
	a.nchunks = 1
	a.infoChunks = 1

	// Populate the Figure 9 size-mapping array: every request size maps
	// to the smallest covering class.
	ci := 0
	for i := uint64(0); i < mapWords; i++ {
		top := uint32(i+1) * mem.WordSize // largest size covered by entry i
		for a.classes[ci] < top {
			ci++
		}
		m.WriteWord(a.stateBase+i*mem.WordSize, uint64(ci+1))
	}
	for c := range a.classes {
		m.WriteWord(a.headSlot(c), 0)
	}
	m.WriteWord(a.stateBase+a.offChunkPool, 0)
	return a
}

func init() {
	alloc.Register("custom", func(m *mem.Memory) alloc.Allocator {
		return New(m, DefaultConfig())
	})
	alloc.Register("custom-reclaim", func(m *mem.Memory) alloc.Allocator {
		cfg := DefaultConfig()
		cfg.Reclaim = true
		return New(m, cfg)
	})
	alloc.Register("custom-pow2", func(m *mem.Memory) alloc.Allocator {
		return New(m, PowerOfTwoConfig(1024))
	})
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string {
	if a.cfg.Reclaim {
		return "custom-reclaim"
	}
	return "custom"
}

// Classes returns the configured class sizes.
func (a *Allocator) Classes() []uint32 { return a.classes }

// Owns reports whether addr lies in this allocator's storage (chunk
// space or the general allocator's heap). Composing allocators (the
// lifetime-segregated design) use it to route frees.
func (a *Allocator) Owns(addr uint64) bool {
	return a.data.Contains(addr) || a.general.Region().Contains(addr)
}

func (a *Allocator) headSlot(class int) uint64 {
	return a.stateBase + a.offHeads + uint64(class)*mem.WordSize
}

func (a *Allocator) chunkAddr(idx uint64) uint64 { return a.dataBase + idx*ChunkSize }
func (a *Allocator) chunkIndex(addr uint64) uint64 {
	return (addr - a.dataBase) >> chunkLog
}
func (a *Allocator) desc(idx uint64) uint64 { return a.infoBase + idx*descSize }

// Fragment pointers are data-region offsets; the guard chunk keeps
// offset 0 free to serve as null.
func (a *Allocator) fragAddr(off uint64) uint64 { return a.data.Base() + off }
func (a *Allocator) fragOff(addr uint64) uint64 { return addr - a.data.Base() }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 8)
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	if n > a.maxSmall {
		return a.general.Malloc(n)
	}
	// Figure 9: one indexed load maps the request to its class.
	entry := (uint64(n) - 1) / mem.WordSize
	class := int(a.m.ReadWord(a.stateBase+entry*mem.WordSize)) - 1

	slot := a.headSlot(class)
	head := a.m.ReadWord(slot)
	if head == 0 {
		if err := a.newChunk(class); err != nil {
			return 0, err
		}
		head = a.m.ReadWord(slot)
	}
	p := a.fragAddr(head)
	next := a.m.ReadWord(p)
	a.m.WriteWord(slot, next)
	if a.cfg.Reclaim {
		idx := a.chunkIndex(p)
		a.m.WriteWord(a.desc(idx)+dAux, a.m.ReadWord(a.desc(idx)+dAux)-1)
	}
	delete(a.freeFrags, p)
	return p, nil
}

// newChunk dedicates a chunk (pooled or fresh) to the class, chaining
// its fragments onto the class freelist.
func (a *Allocator) newChunk(class int) error {
	var idx uint64
	pool := a.m.ReadWord(a.stateBase + a.offChunkPool)
	if pool != 0 {
		idx = pool
		a.m.WriteWord(a.stateBase+a.offChunkPool, a.m.ReadWord(a.desc(idx)+dAux))
	} else {
		// Grow the descriptor table before the chunk storage: spare
		// descriptor capacity after a failed data Sbrk is harmless,
		// whereas a chunk without a descriptor would be invisible to
		// Free.
		for a.infoChunks < a.nchunks+1 {
			if _, err := a.info.Sbrk(descSize); err != nil {
				return err
			}
			a.infoChunks++
		}
		if _, err := a.data.Sbrk(ChunkSize); err != nil {
			return err
		}
		idx = a.nchunks
		a.nchunks++
	}
	size := uint64(a.classes[class])
	nfrags := uint64(ChunkSize) / size
	a.m.WriteWord(a.desc(idx)+dClass, uint64(class+1))
	if a.cfg.Reclaim {
		a.m.WriteWord(a.desc(idx)+dAux, nfrags)
	}
	base := a.chunkAddr(idx)
	slot := a.headSlot(class)
	old := a.m.ReadWord(slot)
	// Chain fragments in address order; the last links to the previous
	// head (normally null).
	for i := nfrags; i > 0; i-- {
		fa := base + (i-1)*size
		a.m.WriteWord(fa, old)
		old = a.fragOff(fa)
		alloc.Charge(a.m, 2)
		a.freeFrags[fa] = true
	}
	a.m.WriteWord(slot, old)
	return nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 6)
	if !a.data.Contains(p) {
		// Not chunk storage: the general allocator owns it (or it is
		// garbage, which the general allocator will reject).
		return a.general.Free(p)
	}
	if p%mem.WordSize != 0 || p < a.dataBase+ChunkSize {
		return alloc.ErrBadFree
	}
	idx := a.chunkIndex(p)
	class := int(a.m.ReadWord(a.desc(idx)+dClass)) - 1
	if class < 0 || class >= len(a.classes) {
		return alloc.ErrBadFree
	}
	size := uint64(a.classes[class])
	if (p-a.chunkAddr(idx))%size != 0 {
		return alloc.ErrBadFree
	}
	if a.freeFrags[p] {
		// Double free of a fragment (zero-cost side-table check; see
		// the freeFrags field comment).
		return alloc.ErrBadFree
	}
	slot := a.headSlot(class)
	head := a.m.ReadWord(slot)
	a.m.WriteWord(p, head)
	a.m.WriteWord(slot, a.fragOff(p))
	a.freeFrags[p] = true
	if !a.cfg.Reclaim {
		return nil
	}
	nfree := a.m.ReadWord(a.desc(idx)+dAux) + 1
	a.m.WriteWord(a.desc(idx)+dAux, nfree)
	if nfree == uint64(ChunkSize)/size {
		a.reclaim(idx, class)
	}
	return nil
}

// reclaim unthreads every fragment of chunk idx from the class freelist
// and pushes the chunk onto the pool for reuse by any class.
func (a *Allocator) reclaim(idx uint64, class int) {
	slot := a.headSlot(class)
	var prevAddr uint64 // 0 = head slot
	cur := a.m.ReadWord(slot)
	for cur != 0 {
		alloc.Charge(a.m, 3)
		fa := a.fragAddr(cur)
		next := a.m.ReadWord(fa)
		if a.chunkIndex(fa) == idx {
			if prevAddr == 0 {
				a.m.WriteWord(slot, next)
			} else {
				a.m.WriteWord(prevAddr, next)
			}
		} else {
			prevAddr = fa
		}
		cur = next
	}
	size := uint64(a.classes[class])
	base := a.chunkAddr(idx)
	for off := uint64(0); off < ChunkSize; off += size {
		delete(a.freeFrags, base+off)
	}
	a.m.WriteWord(a.desc(idx)+dClass, 0)
	a.m.WriteWord(a.desc(idx)+dAux, a.m.ReadWord(a.stateBase+a.offChunkPool))
	a.m.WriteWord(a.stateBase+a.offChunkPool, idx)
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees uint64) { return a.allocs, a.frees }
