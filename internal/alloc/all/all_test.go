package all_test

import (
	"reflect"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/all"
)

// The curated lists drive figure column order and CLI row order, so
// their exact contents and ordering are published output: any change
// moves every downstream table. This test pins them — append-only
// growth must extend the expectations here, never reorder them.

func TestCuratedListOrder(t *testing.T) {
	wantPaper := []string{"firstfit", "gnufit", "bsd", "gnulocal", "quickfit"}
	if !reflect.DeepEqual(all.Paper, wantPaper) {
		t.Errorf("Paper order changed:\n got %v\nwant %v", all.Paper, wantPaper)
	}
	wantExtended := append(append([]string{}, wantPaper...),
		"bestfit", "buddy", "custom", "custom-reclaim", "fibbuddy", "lifetime")
	if !reflect.DeepEqual(all.Extended, wantExtended) {
		t.Errorf("Extended order changed:\n got %v\nwant %v", all.Extended, wantExtended)
	}
	wantModern := []string{"bitfit", "vamfit", "locarena"}
	if !reflect.DeepEqual(all.Modern, wantModern) {
		t.Errorf("Modern order changed:\n got %v\nwant %v", all.Modern, wantModern)
	}
	wantEverything := append(append([]string{}, wantExtended...), wantModern...)
	if !reflect.DeepEqual(all.Everything, wantEverything) {
		t.Errorf("Everything must be Extended followed by Modern:\n got %v\nwant %v",
			all.Everything, wantEverything)
	}
}

// TestRegistryNames pins the full registry: alloc.Names() is the
// differential battery's and the fuzz harness's enumeration, so a
// missing or extra name silently shrinks or pollutes the matrix.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"bestfit", "bitfit", "bsd", "buddy",
		"custom", "custom-pow2", "custom-reclaim",
		"fibbuddy",
		"firstfit", "firstfit-addrorder", "firstfit-nocoalesce", "firstfit-norover",
		"gnufit", "gnulocal", "gnulocal-tags",
		"lifetime", "locarena", "quickfit", "vamfit",
	}
	if got := alloc.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("registry changed:\n got %v\nwant %v", got, want)
	}
}

// Every curated-list entry must resolve through the registry (the
// registry analyzer checks this statically; this is the runtime proof).
func TestCuratedListsResolve(t *testing.T) {
	names := map[string]bool{}
	for _, n := range alloc.Names() {
		names[n] = true
	}
	for _, list := range [][]string{all.Paper, all.Extended, all.Modern, all.Everything} {
		for _, n := range list {
			if !names[n] {
				t.Errorf("curated entry %q not in registry", n)
			}
		}
	}
}
