// Package all registers every allocator implementation with the
// alloc registry. Import it for side effects wherever allocators are
// constructed by name.
package all

import (
	_ "mallocsim/internal/alloc/bestfit"
	_ "mallocsim/internal/alloc/bitfit"
	_ "mallocsim/internal/alloc/bsd"
	_ "mallocsim/internal/alloc/buddy"
	_ "mallocsim/internal/alloc/custom"
	_ "mallocsim/internal/alloc/fibbuddy"
	_ "mallocsim/internal/alloc/firstfit"
	_ "mallocsim/internal/alloc/gnufit"
	_ "mallocsim/internal/alloc/gnulocal"
	_ "mallocsim/internal/alloc/lifetime"
	_ "mallocsim/internal/alloc/locarena"
	_ "mallocsim/internal/alloc/quickfit"
	_ "mallocsim/internal/alloc/vamfit"
)

// Paper lists the five allocators the paper compares, in its
// presentation order.
var Paper = []string{"firstfit", "gnufit", "bsd", "gnulocal", "quickfit"}

// Extended adds this repository's implementations of the paper's §4.4
// recommended architecture, the best-fit member of the sequential-fit
// family, and the §5.1 future-work lifetime-segregated design to the
// paper's five.
var Extended = append(append([]string{}, Paper...),
	"bestfit", "buddy", "custom", "custom-reclaim", "fibbuddy", "lifetime")

// Modern lists the post-1993 designs compared against the paper's §4.4
// recommendation in the "modern allocators" figure column: bitmap fit
// (arXiv 2110.10357), Vam (Feng & Berger 2005), and the locality-hint
// arena allocator. Appended after Extended — never interleaved — so
// pre-existing figure rows stay byte-identical.
var Modern = []string{"bitfit", "vamfit", "locarena"}

// Everything is Extended followed by Modern: the enumeration CLIs
// (allocstats) iterate it so new families append columns without
// reordering existing ones.
var Everything = append(append([]string{}, Extended...), Modern...)
