package alloc

import (
	"fmt"

	"mallocsim/internal/mem"
)

// BlockHeap provides the boundary-tagged block machinery shared by the
// sequential-fit allocators (FIRSTFIT and GNU G++).
//
// Block layout (all sizes in bytes, multiples of the word size):
//
//	+0            header word:  blockSize | allocBit
//	+4            payload (for free blocks: freelist next pointer)
//	+8            ...     (for free blocks: freelist prev pointer)
//	+size-4       footer word:  blockSize | allocBit
//
// blockSize includes both tag words, so an allocated block carries
// exactly the "two extra words of overhead (boundary tags), one at each
// end of the block, which contain the size of the block and its current
// status" the paper describes. Boundary tags let Free coalesce with
// adjacent free storage in constant time.
//
// Free blocks are linked into circular doubly-linked freelists through
// their first two payload words. List sentinels are 16-byte pseudo
// blocks carved from the same region so that link updates are real
// memory references. Stored pointers are region-relative (see
// mem.Region.EncodePtr); offset 0 is NULL.
type BlockHeap struct {
	M *mem.Memory
	R *mem.Region
}

const (
	// TagOverhead is the per-block boundary tag cost: one header plus
	// one footer word (8 bytes — the figure the paper uses in its
	// Table 6 cache-pollution ablation).
	TagOverhead = 2 * mem.WordSize
	// MinBlock is the smallest legal block: tags plus the two freelist
	// link words a free block must hold.
	MinBlock = 16

	allocBit = 1
	sizeMask = ^uint64(3)
)

// PackTag encodes a tag word.
func PackTag(size uint64, allocated bool) uint64 {
	w := size
	if allocated {
		w |= allocBit
	}
	return w
}

// Header reads block b's header tag.
func (h *BlockHeap) Header(b uint64) (size uint64, allocated bool) {
	w := h.M.ReadWord(b)
	return w & sizeMask, w&allocBit != 0
}

// FooterBefore reads the footer tag of the block that ends at address b
// (i.e. the word at b-4), giving the left neighbour's size and status.
func (h *BlockHeap) FooterBefore(b uint64) (size uint64, allocated bool) {
	w := h.M.ReadWord(b - mem.WordSize)
	return w & sizeMask, w&allocBit != 0
}

// SetTags writes both boundary tags of block b.
func (h *BlockHeap) SetTags(b, size uint64, allocated bool) {
	w := PackTag(size, allocated)
	h.M.WriteWord(b, w)
	h.M.WriteWord(b+size-mem.WordSize, w)
}

// SetHeader rewrites only the header tag.
func (h *BlockHeap) SetHeader(b, size uint64, allocated bool) {
	h.M.WriteWord(b, PackTag(size, allocated))
}

// Payload returns the payload address of block b.
func (h *BlockHeap) Payload(b uint64) uint64 { return b + mem.WordSize }

// BlockOf returns the block address owning payload address p.
func (h *BlockHeap) BlockOf(p uint64) uint64 { return p - mem.WordSize }

// BlockSizeFor returns the block size needed to satisfy a payload
// request of n bytes: payload rounded up to the word size plus tag
// overhead, with the block able to hold freelist links once freed.
func BlockSizeFor(n uint32) uint64 {
	size := mem.AlignUp(uint64(n), mem.WordSize) + TagOverhead
	if size < MinBlock {
		size = MinBlock
	}
	return size
}

// --- circular doubly-linked freelist, links in simulated memory ---

const (
	offNext = 1 * mem.WordSize // word offset of the next link
	offPrev = 2 * mem.WordSize // word offset of the prev link
)

// NewListHead carves a 16-byte sentinel pseudo-block from the region
// and initializes it to an empty circular list.
func (h *BlockHeap) NewListHead() (uint64, error) {
	head, err := h.R.Sbrk(MinBlock)
	if err != nil {
		return 0, err
	}
	// Mark the sentinel allocated with size 0 so coalescing scans that
	// accidentally land on it see an un-mergeable block.
	h.M.WriteWord(head, PackTag(0, true))
	h.SetNext(head, head)
	h.SetPrev(head, head)
	return head, nil
}

// Next returns the freelist successor of b.
func (h *BlockHeap) Next(b uint64) uint64 {
	return h.R.DecodePtr(h.M.ReadWord(b + offNext))
}

// Prev returns the freelist predecessor of b.
func (h *BlockHeap) Prev(b uint64) uint64 {
	return h.R.DecodePtr(h.M.ReadWord(b + offPrev))
}

// SetNext writes b's next link.
func (h *BlockHeap) SetNext(b, v uint64) {
	h.M.WriteWord(b+offNext, h.R.EncodePtr(v))
}

// SetPrev writes b's prev link.
func (h *BlockHeap) SetPrev(b, v uint64) {
	h.M.WriteWord(b+offPrev, h.R.EncodePtr(v))
}

// InsertAfter links block b into the list directly after position at.
// Cost: 2 reads/writes on b, one write each on the neighbours — the
// "three objects modified to insert an item" the paper charges against
// doubly-linked freelists.
func (h *BlockHeap) InsertAfter(at, b uint64) {
	next := h.Next(at)
	h.SetNext(b, next)
	h.SetPrev(b, at)
	h.SetNext(at, b)
	h.SetPrev(next, b)
}

// Remove unlinks block b from its list and returns its former successor.
func (h *BlockHeap) Remove(b uint64) uint64 {
	next := h.Next(b)
	prev := h.Prev(b)
	h.SetNext(prev, next)
	h.SetPrev(next, prev)
	return next
}

// CheckList panics if the circular list rooted at head is structurally
// corrupt (next/prev mismatch). For tests and debugging; it performs
// real (counted) memory accesses, so production paths must not call it.
func (h *BlockHeap) CheckList(head uint64) {
	b := head
	for {
		next := h.Next(b)
		if h.Prev(next) != b {
			panic(fmt.Sprintf("alloc: freelist corrupt at %#x: next %#x has prev %#x", b, next, h.Prev(next)))
		}
		b = next
		if b == head {
			return
		}
	}
}
