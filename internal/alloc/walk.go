package alloc

import (
	"fmt"

	"mallocsim/internal/mem"
)

// HeapCheck walks a boundary-tagged heap and verifies its structural
// invariants. It is the deep-integrity companion to the conformance
// battery: where alloctest checks the allocator's *behaviour*, HeapCheck
// audits the *representation* — every word of tag metadata in simulated
// memory.
//
// Checks performed:
//
//   - the block chain tiles [lo, hi) exactly: headers and footers agree,
//     sizes are word-aligned and at least MinBlock;
//   - no two adjacent free blocks exist when coalescing is expected;
//   - every free block in the chain appears on exactly one freelist
//     (the caller supplies the freelist heads), and every freelist node
//     lies inside the heap and is marked free.
//
// HeapCheck performs real (counted) memory accesses; call it from tests
// only.
type HeapCheck struct {
	H *BlockHeap
	// Lo and Hi bound the block area (lowBlock .. brk).
	Lo, Hi uint64
	// Heads are the freelist sentinels to audit.
	Heads []uint64
	// ExpectCoalesced asserts that no two free blocks are adjacent.
	ExpectCoalesced bool
}

// Stats summarizes a verified heap.
type HeapStats struct {
	Blocks     int
	FreeBlocks int
	FreeBytes  uint64
	LiveBytes  uint64
	// LargestFree is the biggest free block (external fragmentation
	// indicator: FreeBytes >> LargestFree means a shattered heap).
	LargestFree uint64
}

// Run walks the heap, returning statistics or the first violation.
func (hc *HeapCheck) Run() (HeapStats, error) {
	var st HeapStats
	freeAt := map[uint64]bool{}
	prevFree := false
	for b := hc.Lo; b < hc.Hi; {
		size, allocated := hc.H.Header(b)
		if size < MinBlock || size%mem.WordSize != 0 {
			return st, fmt.Errorf("alloc: block %#x has bad size %d", b, size)
		}
		if b+size > hc.Hi {
			return st, fmt.Errorf("alloc: block %#x (size %d) overruns heap end %#x", b, size, hc.Hi)
		}
		fsize, falloc := hc.H.FooterBefore(b + size)
		if fsize != size || falloc != allocated {
			return st, fmt.Errorf("alloc: block %#x header (%d,%v) disagrees with footer (%d,%v)",
				b, size, allocated, fsize, falloc)
		}
		st.Blocks++
		if allocated {
			st.LiveBytes += size
			prevFree = false
		} else {
			if prevFree && hc.ExpectCoalesced {
				return st, fmt.Errorf("alloc: adjacent free blocks at %#x", b)
			}
			prevFree = true
			st.FreeBlocks++
			st.FreeBytes += size
			if size > st.LargestFree {
				st.LargestFree = size
			}
			freeAt[b] = true
		}
		b += size
	}

	// Audit the freelists against the chain walk.
	seen := map[uint64]bool{}
	for _, head := range hc.Heads {
		for b := hc.H.Next(head); b != head; b = hc.H.Next(b) {
			if b < hc.Lo || b >= hc.Hi {
				return st, fmt.Errorf("alloc: freelist node %#x outside heap", b)
			}
			if !freeAt[b] {
				return st, fmt.Errorf("alloc: freelist node %#x is not a free block", b)
			}
			if seen[b] {
				return st, fmt.Errorf("alloc: block %#x on two freelists", b)
			}
			seen[b] = true
			if _, allocated := hc.H.Header(b); allocated {
				return st, fmt.Errorf("alloc: freelist node %#x marked allocated", b)
			}
		}
	}
	if len(seen) != st.FreeBlocks {
		return st, fmt.Errorf("alloc: %d free blocks in heap but %d on freelists",
			st.FreeBlocks, len(seen))
	}
	return st, nil
}
