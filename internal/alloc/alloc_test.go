package alloc

import (
	"testing"

	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newHeap(t *testing.T) (*BlockHeap, *mem.Memory) {
	t.Helper()
	m := mem.New(trace.Discard, &cost.Meter{})
	r := m.NewRegion("test-heap", 0)
	return &BlockHeap{M: m, R: r}, m
}

func TestBlockSizeFor(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint64
	}{
		{1, MinBlock}, {4, MinBlock}, {8, MinBlock}, {9, 20}, {12, 20},
		{16, 24}, {24, 32}, {100, 108}, {4096, 4104},
	}
	for _, c := range cases {
		if got := BlockSizeFor(c.n); got != c.want {
			t.Errorf("BlockSizeFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTagsRoundTrip(t *testing.T) {
	h, _ := newHeap(t)
	b, err := h.R.Sbrk(64)
	if err != nil {
		t.Fatal(err)
	}
	h.SetTags(b, 64, true)
	size, allocated := h.Header(b)
	if size != 64 || !allocated {
		t.Errorf("header: %d %v", size, allocated)
	}
	// The footer is readable as the predecessor tag of the next block.
	size, allocated = h.FooterBefore(b + 64)
	if size != 64 || !allocated {
		t.Errorf("footer: %d %v", size, allocated)
	}
	h.SetTags(b, 64, false)
	if _, allocated := h.Header(b); allocated {
		t.Error("free bit not cleared")
	}
	h.SetHeader(b, 32, true)
	if size, _ := h.Header(b); size != 32 {
		t.Error("SetHeader failed")
	}
}

func TestFreeListOps(t *testing.T) {
	h, _ := newHeap(t)
	head, err := h.NewListHead()
	if err != nil {
		t.Fatal(err)
	}
	if h.Next(head) != head || h.Prev(head) != head {
		t.Fatal("fresh list not empty circular")
	}
	var blocks []uint64
	for i := 0; i < 4; i++ {
		b, _ := h.R.Sbrk(32)
		h.SetTags(b, 32, false)
		h.InsertAfter(head, b)
		blocks = append(blocks, b)
	}
	h.CheckList(head)
	// Inserted after head each time: list order is reversed insertion.
	if h.Next(head) != blocks[3] {
		t.Errorf("front = %#x, want %#x", h.Next(head), blocks[3])
	}
	// Remove the middle and re-verify.
	next := h.Remove(blocks[2])
	if next != blocks[1] {
		t.Errorf("Remove returned %#x, want %#x", next, blocks[1])
	}
	h.CheckList(head)
	count := 0
	for b := h.Next(head); b != head; b = h.Next(b) {
		count++
	}
	if count != 3 {
		t.Errorf("list has %d blocks, want 3", count)
	}
}

func TestPayloadBlockOf(t *testing.T) {
	h, _ := newHeap(t)
	b, _ := h.R.Sbrk(32)
	p := h.Payload(b)
	if p != b+4 || h.BlockOf(p) != b {
		t.Error("payload/block mapping broken")
	}
}

func TestPackTag(t *testing.T) {
	if PackTag(64, true) != 65 || PackTag(64, false) != 64 {
		t.Error("PackTag wrong")
	}
}

func TestRegistry(t *testing.T) {
	// Registration happens in subpackage init functions; this package's
	// internal tests cannot import them (cycle), so the full registry
	// contents are validated by the sim package tests. Here: unknown
	// lookups must fail cleanly, and every registered constructor (bar
	// test stubs) must build.
	m := mem.New(trace.Discard, nil)
	if _, err := New("no-such-allocator", m); err == nil {
		t.Error("unknown allocator must error")
	}
	for _, n := range Names() {
		if n == "dup-test" {
			continue // stub registered by TestRegisterDuplicatePanics
		}
		a, err := New(n, mem.New(trace.Discard, nil))
		if err != nil {
			t.Errorf("constructing %q: %v", n, err)
			continue
		}
		if a == nil {
			t.Errorf("%q returned nil", n)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register("dup-test", func(m *mem.Memory) Allocator { return nil })
	Register("dup-test", func(m *mem.Memory) Allocator { return nil })
}

func TestCharge(t *testing.T) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	Charge(m, 17)
	if meter.Total() != 17 {
		t.Errorf("charged %d", meter.Total())
	}
	Charge(mem.New(trace.Discard, nil), 5) // nil meter: no-op, no panic
}
