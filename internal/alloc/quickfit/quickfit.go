// Package quickfit implements the paper's QUICKFIT allocator
// (Weinstock & Wulf), a fast segregated-storage algorithm based on an
// array of exact-size freelists.
//
// Requests of 4–32 bytes, rounded to the word size, are served by
// indexing the freelist array with the request size and popping the
// head — a handful of instructions. Empty lists are replenished by
// carving from a tail chunk obtained from a general-purpose allocator;
// the same general allocator (GNU G++ in the paper's configuration and
// in ours) serves requests larger than 32 bytes directly. Deallocation
// identifies the owning allocator from a one-word boundary tag and, for
// small objects, pushes onto the exact list. Small objects are never
// coalesced and never leave their size class.
//
// Rounding to multiples of the word size (rather than BSD's powers of
// two) keeps internal fragmentation low, and the exact-size recycling
// yields the same strong locality the paper observes for BSD — the
// paper recommends this structure as "the foundation for
// high-performance DSA implementations".
package quickfit

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/gnufit"
	"mallocsim/internal/mem"
)

const (
	// MaxSmall is the largest request handled by the exact-size lists.
	MaxSmall = 32
	// numLists is one list per word-multiple size 4, 8, ..., 32.
	numLists = MaxSmall / mem.WordSize

	headerSize = mem.WordSize

	// qfMagic marks a header word as a live quickfit small block; the
	// low bits hold the payload size.
	qfMagic = 0x80000000

	// qfFree marks a header word as a freed quickfit small block
	// (same low-bits size encoding). Without a distinct freed state the
	// header kept qfMagic after free — the freelist link lives in the
	// payload — so a double free passed the tag check and re-linked the
	// block, cycling its exact-size list.
	qfFree = 0x40000000

	// TailChunk is the payload size of the chunks obtained from the
	// general allocator and carved into small blocks.
	TailChunk = 2048

	// State-region word offsets: the freelist array, then the tail
	// chunk cursor and limit.
	sLists   = 0
	sTailPtr = numLists * mem.WordSize
	sTailEnd = sTailPtr + mem.WordSize
	stateLen = sTailEnd + mem.WordSize
)

// Allocator is a QUICKFIT instance backed by a GNU G++ general
// allocator for large requests and tail chunks.
type Allocator struct {
	m         *mem.Memory
	general   *gnufit.Allocator
	state     *mem.Region
	stateBase uint64

	allocs uint64
	frees  uint64
}

// New creates a QUICKFIT allocator (and its embedded GNU G++ fallback)
// on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:       m,
		general: gnufit.New(m),
		state:   m.NewRegion("quickfit-state", mem.PageSize),
	}
	base, err := a.state.Sbrk(stateLen)
	if err != nil {
		panic("quickfit: state sbrk failed: " + err.Error())
	}
	a.stateBase = base
	for off := uint64(0); off < stateLen; off += mem.WordSize {
		m.WriteWord(base+off, 0)
	}
	return a
}

func init() {
	alloc.Register("quickfit", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "quickfit" }

// heap returns the region all blocks live in (the general allocator's).
func (a *Allocator) heap() *mem.Region { return a.general.Region() }

func (a *Allocator) listSlot(size uint64) uint64 {
	return a.stateBase + sLists + (size/mem.WordSize-1)*mem.WordSize
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 8) // round + range test
	if n > MaxSmall {
		return a.general.Malloc(n)
	}
	size := mem.AlignUp(uint64(n), mem.WordSize)
	if size == 0 {
		size = mem.WordSize // Malloc(0) contract: one usable word
	}
	slot := a.listSlot(size)
	head := a.m.ReadWord(slot)
	if head != 0 {
		// The fast path the paper praises: index, pop, restamp, done.
		b := a.heap().DecodePtr(head)
		next := a.m.ReadWord(b + headerSize)
		a.m.WriteWord(slot, next)
		a.m.WriteWord(b, qfMagic|size)
		return b + headerSize, nil
	}
	return a.carve(size)
}

// carve takes a small block from the tail chunk, fetching a new chunk
// from the general allocator when the tail is exhausted.
func (a *Allocator) carve(size uint64) (uint64, error) {
	need := size + headerSize
	tail := a.m.ReadWord(a.stateBase + sTailPtr)
	end := a.m.ReadWord(a.stateBase + sTailEnd)
	if end-tail < need || tail == 0 {
		// The old tail remainder (< 36 bytes) is abandoned, as in the
		// original QuickFit: small objects are cheap, chunks are not.
		p, err := a.general.Malloc(TailChunk)
		if err != nil {
			return 0, err
		}
		tail = a.heap().EncodePtr(p)
		end = tail + TailChunk
		a.m.WriteWord(a.stateBase+sTailEnd, end)
	}
	a.m.WriteWord(a.stateBase+sTailPtr, tail+need)
	b := a.heap().DecodePtr(tail)
	a.m.WriteWord(b, qfMagic|size)
	return b + headerSize, nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 8)
	if p%mem.WordSize != 0 || p < a.heap().Base()+headerSize || p >= a.heap().Brk() {
		return alloc.ErrBadFree
	}
	hdr := a.m.ReadWord(p - headerSize)
	if hdr&qfMagic == 0 {
		if fsize := hdr &^ uint64(qfFree); hdr&qfFree != 0 &&
			fsize > 0 && fsize <= MaxSmall && fsize%mem.WordSize == 0 {
			// A freed small block's tag: double free.
			return alloc.ErrBadFree
		}
		// Not a quickfit tag: the general allocator owns this block.
		return a.general.Free(p)
	}
	size := hdr &^ uint64(qfMagic)
	if size == 0 || size > MaxSmall || size%mem.WordSize != 0 {
		return alloc.ErrBadFree
	}
	slot := a.listSlot(size)
	head := a.m.ReadWord(slot)
	a.m.WriteWord(p-headerSize, qfFree|size)
	a.m.WriteWord(p, head) // link lives in the payload's first word
	a.m.WriteWord(slot, a.heap().EncodePtr(p-headerSize))
	return nil
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees uint64) { return a.allocs, a.frees }

// The exact-size lists never search, but the general-allocator
// fallback (large requests and tail-chunk fetches) does, so QUICKFIT's
// conformance is explicit too.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: freelist nodes examined by the
// embedded general allocator (the exact-size fast path contributes
// zero, which is the paper's point).
func (a *Allocator) ScanSteps() uint64 { return a.general.ScanSteps() }
