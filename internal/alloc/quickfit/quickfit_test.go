package quickfit

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestExactReuse(t *testing.T) {
	a, _ := newTestAlloc()
	// Small objects recycle through their exact list: free then
	// same-size malloc returns the identical address (LIFO).
	for _, n := range []uint32{1, 4, 8, 12, 16, 24, 32} {
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
		q, err := a.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		if q != p {
			t.Errorf("size %d: freed block %#x not recycled (got %#x)", n, p, q)
		}
	}
}

func TestWordRounding(t *testing.T) {
	a, _ := newTestAlloc()
	// 21..24 bytes share the 24-byte class: frees of any cross-feed
	// allocations of the others.
	p, _ := a.Malloc(21)
	a.Free(p)
	q, _ := a.Malloc(24)
	if q != p {
		t.Errorf("21B and 24B must share a class: %#x vs %#x", p, q)
	}
	// ...but 20 and 24 are distinct classes.
	r, _ := a.Malloc(20)
	a.Free(r)
	s, _ := a.Malloc(24)
	if s == r {
		t.Error("20B and 24B classes must be distinct")
	}
}

func TestLargeDelegation(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(MaxSmall + 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("free of delegated block: %v", err)
	}
	// The general allocator coalesces: a following large request reuses
	// the space.
	q, err := a.Malloc(MaxSmall + 1)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("general allocator did not recycle: %#x vs %#x", p, q)
	}
}

func TestTailCarving(t *testing.T) {
	a, m := newTestAlloc()
	// A tail chunk serves many small blocks with a single general
	// allocation: footprint grows once per TailChunk, not per malloc.
	foot0 := m.Footprint()
	n := 0
	for m.Footprint() == foot0 || n == 0 {
		if _, err := a.Malloc(16); err != nil {
			t.Fatal(err)
		}
		n++
		if n > 10000 {
			t.Fatal("heap never grew")
		}
	}
	// First growth accounts for a whole chunk (plus general-allocator
	// bookkeeping): many more allocations fit before the next growth.
	foot1 := m.Footprint()
	count := 0
	for m.Footprint() == foot1 {
		if _, err := a.Malloc(16); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count < 50 {
		t.Errorf("only %d 16-byte blocks per chunk, want dozens", count)
	}
}

func TestMixedSmallLargeFreeDispatch(t *testing.T) {
	a, _ := newTestAlloc()
	small, _ := a.Malloc(8)
	large, _ := a.Malloc(500)
	small2, _ := a.Malloc(32)
	if err := a.Free(large); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(small); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(small2); err != nil {
		t.Fatal(err)
	}
}

func TestSmallNeverCoalesce(t *testing.T) {
	a, _ := newTestAlloc()
	// Freeing many 8-byte blocks then allocating 24 bytes must NOT carve
	// the 8-byte blocks: they stay in their class forever.
	var ptrs []uint64
	for i := 0; i < 50; i++ {
		p, _ := a.Malloc(8)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		a.Free(p)
	}
	q, _ := a.Malloc(24)
	for _, p := range ptrs {
		if q == p {
			t.Fatalf("24-byte object landed on an 8-byte block %#x", p)
		}
	}
	// And the 8-byte blocks are all still recyclable.
	for range ptrs {
		r, err := a.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range ptrs {
			if r == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("8-byte allocation %#x did not reuse the freed pool", r)
		}
	}
}

func TestStats(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(1)
	a.Free(p)
	allocs, frees := a.Stats()
	if allocs != 1 || frees != 1 {
		t.Errorf("stats %d/%d", allocs, frees)
	}
	if a.Name() != "quickfit" {
		t.Errorf("name %q", a.Name())
	}
}
