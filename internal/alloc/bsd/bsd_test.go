package bsd

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestBlockSizeRounding(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint64
	}{
		{1, 16}, {11, 16}, {12, 16}, {13, 32}, {24, 32}, {28, 32},
		{29, 64}, {60, 64}, {61, 128}, {1000, 1024}, {4093, 8192},
	}
	for _, c := range cases {
		if got := BlockSize(c.n); got != c.want {
			t.Errorf("BlockSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestInternalFragmentation(t *testing.T) {
	// The paper's complaint: allocating N slightly above a class wastes
	// almost half the block. 100 objects of 33+4=37 -> 64-byte blocks.
	a, m := newTestAlloc()
	before := m.Footprint()
	for i := 0; i < 64; i++ {
		if _, err := a.Malloc(33); err != nil {
			t.Fatal(err)
		}
	}
	grew := m.Footprint() - before
	if grew != 64*64 {
		t.Errorf("64 x 33B grew heap by %d, want %d (64B blocks)", grew, 64*64)
	}
}

func TestLIFOReuse(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(24)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Malloc(20) // same 32-byte class
	if q != p {
		t.Errorf("freed block not immediately recycled: %#x vs %#x", q, p)
	}
}

func TestNoCoalescingEver(t *testing.T) {
	a, m := newTestAlloc()
	// Free 128 16-byte blocks; a following 4096-byte request must grow
	// the heap because classes never merge.
	var ptrs []uint64
	for i := 0; i < 128; i++ {
		p, _ := a.Malloc(8)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		a.Free(p)
	}
	before := m.Footprint()
	if _, err := a.Malloc(4000); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() == before {
		t.Error("BSD must not coalesce small blocks into large ones")
	}
}

func TestPageCarving(t *testing.T) {
	a, m := newTestAlloc()
	before := m.Footprint()
	if _, err := a.Malloc(24); err != nil { // 32-byte class
		t.Fatal(err)
	}
	if grew := m.Footprint() - before; grew != PageAlloc {
		t.Errorf("first allocation grew heap by %d, want a full page %d", grew, PageAlloc)
	}
	// The other 127 blocks of the page satisfy subsequent allocations
	// without growth.
	for i := 0; i < 127; i++ {
		if _, err := a.Malloc(24); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint()-before != PageAlloc {
		t.Error("page not fully carved before regrowth")
	}
	if _, err := a.Malloc(24); err != nil {
		t.Fatal(err)
	}
	if m.Footprint()-before != 2*PageAlloc {
		t.Error("129th block should trigger a second page")
	}
}

func TestHugeRequest(t *testing.T) {
	a, _ := newTestAlloc()
	if _, err := a.Malloc(1 << 28); err == nil {
		t.Error("request above the largest bucket must fail")
	}
	p, err := a.Malloc(1 << 26)
	if err != nil {
		t.Fatalf("large-but-legal request: %v", err)
	}
	if err := a.Free(p); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(1)
	a.Free(p)
	allocs, frees := a.Stats()
	if allocs != 1 || frees != 1 {
		t.Errorf("stats %d/%d", allocs, frees)
	}
}
