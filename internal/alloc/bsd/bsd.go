// Package bsd implements the paper's "BSD" allocator: Chris Kingsley's
// fast segregated-storage malloc distributed with 4.2 BSD Unix.
//
// Object size requests are rounded up to a power of two (including a
// one-word header), and a singly-linked freelist of objects is kept per
// size class. When a class's freelist is empty, a page of storage is
// obtained and carved into blocks of that class. No attempt is ever
// made to coalesce objects: a block stays in its size class forever.
//
// Because the algorithm is so simple its implementation is very fast,
// and — the paper's key observation — the rapid recycling of
// same-sized objects gives it excellent reference locality for free.
// The price is severe internal fragmentation: nearly half of each
// allocation can be wasted, which inflates the page-fault rate when
// memory is scarce (the paper's GhostScript measurements).
package bsd

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

const (
	// minBucket is the log2 of the smallest block (16 bytes: one header
	// word plus at least 12 payload bytes).
	minBucket = 4
	// maxBucket is the log2 of the largest supported block (128 MB).
	maxBucket = 27
	// numBuckets is the size of the freelist head array.
	numBuckets = maxBucket - minBucket + 1

	headerSize = mem.WordSize

	// allocMagic marks a header word as live; the low byte holds the
	// bucket index (Kingsley's ov_magic/ov_index pair).
	allocMagic = 0xa500

	// freeMagic marks a header word as free, again with the bucket index
	// in the low byte. Keeping the header word distinctive in both states
	// (the free-list link lives in word 1 instead of overwriting the
	// header) makes double frees deterministically detectable; with the
	// link in word 0, a link value that happened to fall in allocMagic's
	// range was accepted as a live header and re-linked, cycling the
	// freelist.
	freeMagic = 0xf4ee00

	// PageAlloc is the carving granularity when a class is empty.
	PageAlloc = mem.PageSize
)

// Allocator is a BSD (Kingsley) instance.
type Allocator struct {
	m *mem.Memory
	r *mem.Region

	headBase uint64 // freelist head array: one word per bucket
	lowBlock uint64

	allocs uint64
	frees  uint64
}

// New creates a BSD allocator with its own heap region on m.
func New(m *mem.Memory) *Allocator {
	r := m.NewRegion("bsd-heap", 0)
	a := &Allocator{m: m, r: r}
	base, err := r.Sbrk(numBuckets * mem.WordSize)
	if err != nil {
		panic("bsd: head array sbrk failed: " + err.Error())
	}
	a.headBase = base
	for i := 0; i < numBuckets; i++ {
		m.WriteWord(base+uint64(i)*mem.WordSize, 0)
	}
	a.lowBlock = r.Brk()
	return a
}

func init() {
	alloc.Register("bsd", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "bsd" }

// BlockSize returns the rounded block size (including header) used for
// an n-byte request: the paper's internal-fragmentation culprit.
func BlockSize(n uint32) uint64 {
	need := uint64(n) + headerSize
	size := uint64(1) << minBucket
	for size < need {
		size <<= 1
	}
	return size
}

func bucketFor(n uint32) int {
	need := uint64(n) + headerSize
	b := minBucket
	for uint64(1)<<b < need {
		b++
	}
	return b
}

func (a *Allocator) headSlot(bucket int) uint64 {
	return a.headBase + uint64(bucket-minBucket)*mem.WordSize
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 10) // bucket computation: a few shifts and compares
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	bucket := bucketFor(n)
	if bucket > maxBucket {
		return 0, alloc.ErrTooLarge
	}
	slot := a.headSlot(bucket)
	head := a.m.ReadWord(slot)
	if head == 0 {
		if err := a.morecore(bucket); err != nil {
			return 0, err
		}
		head = a.m.ReadWord(slot)
	}
	b := a.r.DecodePtr(head)
	next := a.m.ReadWord(b + mem.WordSize) // free block word 1 holds the next link
	a.m.WriteWord(slot, next)
	a.m.WriteWord(b, allocMagic|uint64(bucket))
	return b + headerSize, nil
}

// morecore obtains a page (or one block, if larger) and carves it into
// blocks of the given class, chaining them onto the freelist. The chain
// writes touch the fresh page end to end — cold misses the cache
// simulator duly observes.
func (a *Allocator) morecore(bucket int) error {
	size := uint64(1) << bucket
	amt := size
	if amt < PageAlloc {
		amt = PageAlloc
	}
	addr, err := a.r.Sbrk(amt)
	if err != nil {
		return err
	}
	nblks := amt / size
	slot := a.headSlot(bucket)
	for i := uint64(0); i < nblks; i++ {
		b := addr + i*size
		var next uint64
		if i+1 < nblks {
			next = a.r.EncodePtr(b + size)
		}
		a.m.WriteWord(b, freeMagic|uint64(bucket))
		a.m.WriteWord(b+mem.WordSize, next)
		alloc.Charge(a.m, 2)
	}
	a.m.WriteWord(slot, a.r.EncodePtr(addr))
	return nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 8)
	if p%mem.WordSize != 0 || p < a.lowBlock+headerSize || p >= a.r.Brk() {
		return alloc.ErrBadFree
	}
	b := p - headerSize
	hdr := a.m.ReadWord(b)
	bucket := int(hdr & 0xff)
	if hdr&^0xff != allocMagic || bucket < minBucket || bucket > maxBucket {
		// A freeMagic header here is a double free; anything else is an
		// unknown or interior pointer. Both are rejected without
		// touching the freelists.
		return alloc.ErrBadFree
	}
	slot := a.headSlot(bucket)
	head := a.m.ReadWord(slot)
	a.m.WriteWord(b, freeMagic|uint64(bucket))
	a.m.WriteWord(b+mem.WordSize, head)
	a.m.WriteWord(slot, a.r.EncodePtr(b))
	return nil
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees uint64) { return a.allocs, a.frees }
