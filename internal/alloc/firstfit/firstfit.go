// Package firstfit implements the paper's FIRSTFIT allocator: a
// first-fit strategy with the optimizations suggested by Knuth, as
// implemented by Mark Moraes.
//
// All free blocks are connected in a single circular doubly-linked
// freelist that is scanned during allocation for the first sufficiently
// large block. The found block is split when the remainder is large
// enough (at least 24 bytes); the freelist pointer is a roving pointer,
// which eliminates the aggregation of small blocks at the front of the
// list. Allocated blocks carry two words of boundary-tag overhead, one
// at each end, allowing objects to be coalesced with adjacent free
// storage in constant time when freed.
//
// The paper's verdict: this classic design has disastrous page and
// cache locality, because the allocation scan visits free objects
// scattered across the whole address space.
package firstfit

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

// SplitThreshold is the minimum remainder worth splitting off; smaller
// leftovers stay attached to the allocated block ("if the extra piece
// is too small — in this case less than 24 bytes — the block is not
// split").
const SplitThreshold = 24

// ExpandChunk is the minimum sbrk growth when the freelist has no fit.
const ExpandChunk = mem.PageSize

// Option configures the allocator (used for the design-decision
// ablations in the benchmark suite).
type Option func(*Allocator)

// WithoutCoalescing disables boundary-tag coalescing on free, isolating
// the locality cost/benefit of coalescing (a §4.1 design discussion).
func WithoutCoalescing() Option {
	return func(a *Allocator) { a.coalesce = false }
}

// WithoutRover disables the roving pointer: every scan starts at the
// list head, recreating the classic small-blocks-up-front pathology.
func WithoutRover() Option {
	return func(a *Allocator) { a.roving = false }
}

// WithAddressOrder keeps the freelist sorted by address, the coalescing
// alternative the paper's §4.1 weighs ("maintaining a sorted list takes
// considerable CPU time and many pages will be visited when objects are
// inserted in order"). Address-ordered first fit is the classic
// low-fragmentation policy; this option lets the benchmarks price its
// insertion walks against the roving-pointer default. Implies no
// roving pointer.
func WithAddressOrder() Option {
	return func(a *Allocator) {
		a.addrOrder = true
		a.roving = false
	}
}

// Allocator is a FIRSTFIT instance. Create with New.
type Allocator struct {
	m         *mem.Memory
	h         alloc.BlockHeap
	head      uint64 // freelist sentinel
	rover     uint64 // roving scan start (a list node: free block or head)
	lowBlock  uint64 // first address that can hold a block
	coalesce  bool
	roving    bool
	addrOrder bool

	scanSteps uint64
	allocs    uint64
	frees     uint64
}

// New creates a FIRSTFIT allocator with its own heap region on m.
func New(m *mem.Memory, opts ...Option) *Allocator {
	r := m.NewRegion("firstfit-heap", 0)
	a := &Allocator{
		m:        m,
		h:        alloc.BlockHeap{M: m, R: r},
		coalesce: true,
		roving:   true,
	}
	head, err := a.h.NewListHead()
	if err != nil {
		panic("firstfit: sentinel sbrk failed: " + err.Error())
	}
	a.head = head
	a.rover = head
	a.lowBlock = r.Brk()
	for _, o := range opts {
		o(a)
	}
	return a
}

func init() {
	alloc.Register("firstfit", func(m *mem.Memory) alloc.Allocator { return New(m) })
	alloc.Register("firstfit-nocoalesce", func(m *mem.Memory) alloc.Allocator {
		return New(m, WithoutCoalescing())
	})
	alloc.Register("firstfit-norover", func(m *mem.Memory) alloc.Allocator {
		return New(m, WithoutRover())
	})
	alloc.Register("firstfit-addrorder", func(m *mem.Memory) alloc.Allocator {
		return New(m, WithAddressOrder())
	})
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "firstfit" }

// Allocator searches the freelist, so it implements alloc.Scanner.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: the cumulative number of
// freelist nodes examined.
func (a *Allocator) ScanSteps() uint64 { return a.scanSteps }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 12) // size rounding, list setup
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	need := alloc.BlockSizeFor(n)

	start := a.rover
	if !a.roving {
		start = a.head
	}
	b := start
	for {
		if b != a.head {
			size, _ := a.h.Header(b)
			alloc.Charge(a.m, 3) // compare + branch
			a.scanSteps++
			if size >= need {
				return a.allocateFrom(b, size, need), nil
			}
		}
		b = a.h.Next(b)
		if b == start {
			break
		}
	}

	// No fit: extend the heap and allocate from the new space.
	b, size, err := a.expand(need)
	if err != nil {
		return 0, err
	}
	return a.allocateFrom(b, size, need), nil
}

// allocateFrom takes block b (a freelist member of the given size) and
// returns the payload of a `need`-sized allocation carved from it.
func (a *Allocator) allocateFrom(b, size, need uint64) uint64 {
	alloc.Charge(a.m, 4)
	if size >= need+SplitThreshold {
		// Split: the remainder replaces b on the freelist.
		rem := b + need
		a.h.SetTags(rem, size-need, false)
		a.h.InsertAfter(b, rem)
		a.h.Remove(b)
		a.setRover(rem)
		size = need
	} else {
		next := a.h.Remove(b)
		a.setRover(next)
	}
	a.h.SetTags(b, size, true)
	return a.h.Payload(b)
}

func (a *Allocator) setRover(node uint64) {
	if a.roving {
		a.rover = node
	}
}

// expand grows the heap by at least `need` bytes, coalescing the new
// space with a free block at the old heap top, and returns the
// resulting free block (already on the freelist) and its size.
func (a *Allocator) expand(need uint64) (uint64, uint64, error) {
	grow := need
	if grow < ExpandChunk {
		grow = ExpandChunk
	}
	addr, err := a.h.R.Sbrk(grow)
	if err != nil {
		return 0, 0, err
	}
	b, size := addr, grow
	if addr > a.lowBlock {
		if psize, palloc := a.h.FooterBefore(addr); !palloc {
			prev := addr - psize
			a.unlink(prev)
			b = prev
			size += psize
		}
	}
	a.h.SetTags(b, size, false)
	a.insertFree(b)
	return b, size, nil
}

// insertFree links a free block into the list according to the policy:
// address-ordered (a paid walk over the list), immediately before the
// rover, or at the list front.
func (a *Allocator) insertFree(b uint64) {
	if a.addrOrder {
		// The sorted-insert walk the paper prices: every node visited
		// until the insertion point is a real memory reference.
		prev := a.head
		for cur := a.h.Next(a.head); cur != a.head && cur < b; cur = a.h.Next(cur) {
			alloc.Charge(a.m, 2)
			prev = cur
		}
		a.h.InsertAfter(prev, b)
		return
	}
	a.h.InsertAfter(a.insertPos(), b)
}

// insertPos returns the list position after which freed or new blocks
// are inserted: immediately before the rover (so they re-enter the scan
// window next), or at the list front when the rover is disabled.
func (a *Allocator) insertPos() uint64 {
	if a.roving {
		return a.h.Prev(a.rover)
	}
	return a.head
}

// unlink removes b from the freelist, repairing the rover if it pointed
// at b.
func (a *Allocator) unlink(b uint64) {
	next := a.h.Remove(b)
	if a.rover == b {
		a.rover = next
	}
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 12)
	if p%mem.WordSize != 0 || p < a.lowBlock+mem.WordSize || p >= a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	b := a.h.BlockOf(p)
	size, allocated := a.h.Header(b)
	if !allocated || size < alloc.MinBlock || b+size > a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	// Boundary tags must agree. A header alone can be stale — after
	// this block's neighbourhood coalesced, the old header word survives
	// inside the merged free block — so a double free (or an interior
	// pointer landing on plausible bits) passes the header test. The
	// footer of a live block is always in sync with its header.
	if fsize, falloc := a.h.FooterBefore(b + size); fsize != size || !falloc {
		return alloc.ErrBadFree
	}
	// Mark the block free before coalescing. When it merges into a
	// neighbour, only the merged extent gets fresh tags; this block's own
	// header word would otherwise survive inside the free area still
	// reading "allocated", letting a later double free pass the checks
	// above.
	a.h.SetTags(b, size, false)

	if a.coalesce {
		alloc.Charge(a.m, 4)
		// Merge with the following block if free.
		if next := b + size; next < a.h.R.Brk() {
			if nsize, nalloc := a.h.Header(next); !nalloc {
				a.unlink(next)
				size += nsize
			}
		}
		// Merge with the preceding block if free.
		if b > a.lowBlock {
			if psize, palloc := a.h.FooterBefore(b); !palloc {
				prev := b - psize
				a.unlink(prev)
				b = prev
				size += psize
			}
		}
	}

	a.h.SetTags(b, size, false)
	// Default policy: insert just behind the rover. The rover itself
	// advances only on allocation (Knuth), so freshly freed blocks are
	// the *last* the next scan reaches — the scan first revisits the
	// accumulated free blocks scattered across the address space, which
	// is precisely the reference behaviour the paper indicts.
	a.insertFree(b)
	return nil
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees, scanSteps uint64) {
	return a.allocs, a.frees, a.scanSteps
}

// Allocator can audit its own heap (shadow wrapper hook).
var _ alloc.Checker = (*Allocator)(nil)

// Check audits the heap representation (tags, tiling, freelist
// consistency). The walk performs counted references, so it is meant
// for tests and explicitly requested audits (shadow wrapper), not for
// measured hot paths.
func (a *Allocator) Check() (alloc.HeapStats, error) {
	hc := alloc.HeapCheck{
		H:               &a.h,
		Lo:              a.lowBlock,
		Hi:              a.h.R.Brk(),
		Heads:           []uint64{a.head},
		ExpectCoalesced: a.coalesce,
	}
	return hc.Run()
}
