package firstfit

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc(opts ...Option) (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m, opts...), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestConformanceNoCoalesce(t *testing.T) {
	// The no-coalesce variant exists to demonstrate fragmentation, so
	// the steady-state footprint check does not apply to it.
	alloctest.RunOpts(t, func(m *mem.Memory) alloc.Allocator { return New(m, WithoutCoalescing()) },
		alloctest.Options{SkipSteadyState: true})
}

func TestConformanceNoRover(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, WithoutRover()) })
}

func TestCoalescingRebuildsBigBlocks(t *testing.T) {
	a, m := newTestAlloc()
	// Allocate many small blocks, free them all, then allocate one block
	// spanning nearly everything: coalescing must have merged the frees,
	// so the heap should not grow.
	var ptrs []uint64
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(40)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	footBefore := m.Footprint()
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Malloc(4000); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != footBefore {
		t.Errorf("heap grew from %d to %d despite coalesced free space", footBefore, m.Footprint())
	}
}

func TestNoCoalesceFragments(t *testing.T) {
	a, m := newTestAlloc(WithoutCoalescing())
	var ptrs []uint64
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(40)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	footBefore := m.Footprint()
	// 100 48-byte free blocks cannot satisfy 4000 bytes without growth.
	if _, err := a.Malloc(4000); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() == footBefore {
		t.Error("uncoalesced heap satisfied a big request without growing")
	}
}

func TestSplitThreshold(t *testing.T) {
	a, _ := newTestAlloc()
	// Free a 4096-byte area, then allocate a bit less: remainder > 24
	// must be split off and satisfy another allocation without growth.
	p, err := a.Malloc(4000)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := a.Malloc(3000)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("expected reuse of freed block: %#x vs %#x", q, p)
	}
	r, err := a.Malloc(900)
	if err != nil {
		t.Fatal(err)
	}
	if r < q || r > q+4096 {
		t.Errorf("remainder not reused: %#x", r)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free of tagged block should be detected")
	}
}

func TestScanSteps(t *testing.T) {
	a, _ := newTestAlloc()
	// Populate the freelist with blocks too small for the next request:
	// the scan must visit them.
	var small []uint64
	for i := 0; i < 20; i++ {
		p, _ := a.Malloc(16)
		small = append(small, p)
	}
	big, _ := a.Malloc(512) // separates small blocks from heap top
	for _, p := range small {
		a.Free(p)
	}
	_ = big
	before := a.ScanSteps()
	if _, err := a.Malloc(400); err != nil {
		t.Fatal(err)
	}
	if a.ScanSteps() == before {
		t.Error("allocation did not scan the freelist")
	}
	allocs, frees, _ := a.Stats()
	if allocs != 22 || frees != 20 {
		t.Errorf("stats: %d allocs %d frees", allocs, frees)
	}
}

func TestMallocZero(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(0)
	if err != nil || p == 0 {
		t.Errorf("Malloc(0): %#x %v", p, err)
	}
	if err := a.Free(p); err != nil {
		t.Error(err)
	}
}

func TestRegionExhaustion(t *testing.T) {
	a, _ := newTestAlloc()
	// The heap region is capped at 4 GiB: two 2 GiB requests cannot both
	// fit, and the failure must surface as an error, not a panic.
	if _, err := a.Malloc(1 << 31); err != nil {
		t.Fatalf("first huge allocation: %v", err)
	}
	if _, err := a.Malloc(1 << 31); err == nil {
		t.Error("expected out-of-memory on second huge allocation")
	}
}

func TestConformanceAddrOrder(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, WithAddressOrder()) })
}

func TestAddressOrderMaintained(t *testing.T) {
	a, _ := newTestAlloc(WithAddressOrder())
	// Allocate with separators, free in a scrambled order, then verify
	// the freelist is sorted by address.
	var frees []uint64
	for i := 0; i < 12; i++ {
		p, err := a.Malloc(40)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Malloc(16); err != nil { // separator stays live
			t.Fatal(err)
		}
		frees = append(frees, p)
	}
	order := []int{7, 2, 11, 0, 5, 9, 1, 10, 3, 8, 6, 4}
	for _, i := range order {
		if err := a.Free(frees[i]); err != nil {
			t.Fatal(err)
		}
	}
	prev := uint64(0)
	for b := a.h.Next(a.head); b != a.head; b = a.h.Next(b) {
		if b <= prev {
			t.Fatalf("freelist out of address order: %#x after %#x", b, prev)
		}
		prev = b
	}
}

func TestAddrOrderLowFragmentation(t *testing.T) {
	// Address-ordered first fit classically fragments less than the
	// roving variant under mixed-size churn.
	run := func(opts ...Option) uint64 {
		a, m := newTestAlloc(opts...)
		r := newSeq()
		var live []uint64
		for op := 0; op < 6000; op++ {
			if len(live) > 100 || (len(live) > 0 && r.next()%2 == 0) {
				i := int(r.next()) % len(live)
				if err := a.Free(live[i]); err != nil {
					panic(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			n := uint32(8 + r.next()%250)
			p, err := a.Malloc(n)
			if err != nil {
				panic(err)
			}
			live = append(live, p)
		}
		return m.Footprint()
	}
	rover := run()
	sorted := run(WithAddressOrder())
	if sorted > rover*3/2 {
		t.Errorf("address-ordered footprint %d far above roving %d", sorted, rover)
	}
}

// newSeq is a tiny deterministic sequence for the fragmentation test.
type seq struct{ s uint64 }

func newSeq() *seq { return &seq{s: 0x9e3779b97f4a7c15} }

func (q *seq) next() uint64 {
	q.s = q.s*6364136223846793005 + 1442695040888963407
	return q.s >> 33
}

// TestHeapIntegrityUnderStress audits the full tag representation after
// randomized churn, for each policy variant.
func TestHeapIntegrityUnderStress(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"norover", []Option{WithoutRover()}},
		{"addrorder", []Option{WithAddressOrder()}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			a, _ := newTestAlloc(v.opts...)
			r := newSeq()
			var live []uint64
			for op := 0; op < 5000; op++ {
				if len(live) > 150 || (len(live) > 0 && r.next()%2 == 0) {
					i := int(r.next()) % len(live)
					if err := a.Free(live[i]); err != nil {
						t.Fatal(err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				p, err := a.Malloc(uint32(1 + r.next()%400))
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, p)
			}
			st, err := a.Check()
			if err != nil {
				t.Fatal(err)
			}
			if st.Blocks == 0 || st.FreeBlocks == 0 {
				t.Errorf("implausible heap stats %+v", st)
			}
			for _, p := range live {
				if err := a.Free(p); err != nil {
					t.Fatal(err)
				}
			}
			st, err = a.Check()
			if err != nil {
				t.Fatal(err)
			}
			// Everything freed and coalesced: a near-empty heap is one
			// (or very few) free blocks.
			if st.LiveBytes != 0 {
				t.Errorf("live bytes %d after freeing everything", st.LiveBytes)
			}
			if st.FreeBlocks > 2 {
				t.Errorf("%d free blocks after full free; coalescing incomplete", st.FreeBlocks)
			}
		})
	}
}
