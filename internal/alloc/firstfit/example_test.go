package firstfit_test

import (
	"fmt"

	"mallocsim/internal/alloc/firstfit"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// Allocate, free and re-allocate through FIRSTFIT on simulated memory,
// observing the allocator's own memory references and instruction
// charges — the quantities the paper measures.
func Example() {
	meter := &cost.Meter{}
	var refs trace.Counter
	m := mem.New(&refs, meter)
	a := firstfit.New(m)

	p, _ := a.Malloc(100)
	q, _ := a.Malloc(24) // adjacent to p
	foot := m.Footprint()

	// Freeing both lets boundary-tag coalescing rebuild one large
	// block, so a bigger allocation fits without growing the heap.
	_ = a.Free(p)
	_ = a.Free(q)
	if _, err := a.Malloc(130); err != nil {
		fmt.Println(err)
	}

	fmt.Printf("heap grew: %v\n", m.Footprint() != foot)
	fmt.Printf("allocator touched memory: %v\n", refs.Total() > 0)
	fmt.Printf("instructions charged: %v\n", meter.Total() > 0)
	// Output:
	// heap grew: false
	// allocator touched memory: true
	// instructions charged: true
}
