package gnulocal

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc(opts ...Option) (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m, opts...), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestConformancePadTags(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m, WithPadTags()) })
}

func TestFragLog(t *testing.T) {
	cases := []struct {
		n    uint32
		want int
	}{
		{1, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {100, 7}, {2048, 11},
	}
	for _, c := range cases {
		if got := fragLog(c.n); got != c.want {
			t.Errorf("fragLog(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFragmentPacking(t *testing.T) {
	a, m := newTestAlloc()
	// 64-byte fragments: one block holds 64 of them; all must come from
	// the same page without heap growth.
	p0, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	foot := m.Footprint()
	addrs := map[uint64]bool{p0: true}
	for i := 1; i < 64; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if addrs[p] {
			t.Fatalf("duplicate fragment %#x", p)
		}
		addrs[p] = true
		if (p-p0)/BlockSize != 0 {
			t.Fatalf("fragment %#x outside the first block", p)
		}
	}
	if m.Footprint() != foot {
		t.Error("heap grew while fragments remained")
	}
}

func TestWholeBlockReclamation(t *testing.T) {
	a, _ := newTestAlloc()
	// Fill one block with 512-byte fragments (8 of them), free them all,
	// then allocate a large object: the reclaimed block must be reused.
	var ptrs []uint64
	for i := 0; i < 8; i++ {
		p, err := a.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	blockBase := ptrs[0] &^ (BlockSize - 1)
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	big, err := a.Malloc(3000) // one whole block
	if err != nil {
		t.Fatal(err)
	}
	if big != blockBase {
		t.Errorf("reclaimed block %#x not reused for large object (got %#x)", blockBase, big)
	}
}

func TestLargeObjectsBlockGranular(t *testing.T) {
	a, m := newTestAlloc()
	foot := m.Footprint()
	p, err := a.Malloc(2049) // just above MaxFragSize: one whole block
	if err != nil {
		t.Fatal(err)
	}
	if p%BlockSize != 0 {
		t.Errorf("large object %#x not block aligned", p)
	}
	// Growth is one data block plus one 16-byte descriptor.
	if grew := m.Footprint() - foot; grew < BlockSize || grew > BlockSize+128 {
		t.Errorf("2049-byte object grew heap by %d, want ~one block", grew)
	}
	q, err := a.Malloc(3 * BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(q); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunCoalescing(t *testing.T) {
	a, m := newTestAlloc()
	// Three adjacent large objects freed out of order must coalesce into
	// one run serving a triple-size allocation without growth.
	p1, _ := a.Malloc(4096)
	p2, _ := a.Malloc(4096)
	p3, _ := a.Malloc(4096)
	foot := m.Footprint()
	a.Free(p1)
	a.Free(p3)
	a.Free(p2)
	q, err := a.Malloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Errorf("coalesced run should start at %#x, got %#x", p1, q)
	}
	if m.Footprint() != foot {
		t.Error("heap grew despite coalesced runs")
	}
}

func TestInteriorFreeRejected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(3 * 4096)
	if err := a.Free(p + 4096); err == nil {
		t.Error("free of interior block pointer must fail")
	}
	if err := a.Free(p); err != nil {
		t.Error(err)
	}
}

func TestMisalignedFragFreeRejected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(64)
	if err := a.Free(p + 4); err == nil {
		t.Error("free of misaligned fragment pointer must fail")
	}
}

func TestPadTagsOverhead(t *testing.T) {
	plain, mp := newTestAlloc()
	tagged, mt := newTestAlloc(WithPadTags())
	if plain.Name() != "gnulocal" || tagged.Name() != "gnulocal-tags" {
		t.Fatalf("names: %q %q", plain.Name(), tagged.Name())
	}
	// 8 extra bytes per object: 64-byte requests become 128-byte
	// fragments under padding (72 -> 128), doubling footprint growth.
	for i := 0; i < 256; i++ {
		if _, err := plain.Malloc(64); err != nil {
			t.Fatal(err)
		}
		if _, err := tagged.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Footprint() <= mp.Footprint() {
		t.Errorf("tag padding did not increase footprint: %d vs %d", mt.Footprint(), mp.Footprint())
	}
}

func TestPadTagsRoundTrip(t *testing.T) {
	a, _ := newTestAlloc(WithPadTags())
	var ptrs []uint64
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(uint32(8 + i*7%200))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatalf("Free(%#x): %v", p, err)
		}
	}
}

func TestStats(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(10)
	a.Free(p)
	allocs, frees := a.Stats()
	if allocs != 1 || frees != 1 {
		t.Errorf("stats %d/%d", allocs, frees)
	}
}
