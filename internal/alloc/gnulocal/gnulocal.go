// Package gnulocal implements the paper's "GNU LOCAL" allocator, Mike
// Haertel's GNU malloc: a hybrid of first-fit and segregated storage
// that actively seeks to improve reference locality.
//
// The heap is divided into 4 KB blocks. A compact descriptor table
// (GNU malloc's _heapinfo) records, for every block, whether it is
// free, part of a large multi-block object, or carved into power-of-two
// fragments of a single size. Requests of at most half a block are
// served from per-class fragment freelists threaded through the free
// fragments themselves; larger requests take whole-block runs found
// first-fit on an address-ordered free-run list kept entirely inside
// the descriptor table. Because the address of any object identifies
// its block — and the block descriptor records the object size — no
// per-object boundary tags are needed, and instead of traversing the
// heap the allocator traverses only the small, highly-localized
// descriptor area. A per-block free-fragment count lets the allocator
// reclaim a whole block the moment all its fragments are free.
//
// The paper's verdict: the careful locality engineering works (GNU
// LOCAL often has the lowest miss *time*), but its extra CPU overhead
// means BSD and QUICKFIT still win on total execution time at 1993-era
// miss penalties.
//
// The WithPadTags option reproduces the paper's Table 6 ablation: each
// object is allocated 8 extra bytes that are written on malloc and read
// on free, emulating the cache pollution of boundary tags without
// otherwise changing the algorithm.
package gnulocal

import (
	"fmt"

	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

const (
	// BlockSize is the heap block granularity (GNU malloc's BLOCKSIZE).
	BlockSize = mem.PageSize
	blockLog  = 12

	// MaxFragSize is the largest request served from fragments; larger
	// requests take whole blocks (GNU malloc: size <= BLOCKSIZE/2).
	MaxFragSize = BlockSize / 2

	minFragLog = 3 // smallest fragment is 8 bytes (room for two links)
	maxFragLog = 11

	// Descriptor layout: 16 bytes per block in the info region.
	descSize = 16
	dStatus  = 0  // free / large-head / large-cont / frag
	dInfo    = 4  // free run: length; large head: length; frag: log2 size
	dLink    = 8  // free run head: next run index; frag: free frag count
	dExtra   = 12 // free run head: prev run index

	statusNever     = 0 // never part of an object (fresh or guard)
	statusFree      = 1
	statusLargeHead = 2
	statusLargeCont = 3
	statusFrag      = 4

	// TagPad is the per-object overhead emulated by WithPadTags: "an
	// additional eight bytes of data for each object" (Table 6).
	TagPad = 8
)

// State-region word offsets.
const (
	sFragHead0 = 0                                 // fraghead[minFragLog..maxFragLog], one word each
	sFreeHead  = (maxFragLog - minFragLog + 1) * 4 // head of the address-ordered free-run list
	sNBlocks   = sFreeHead + 4                     // total blocks in the data region (incl. guard)
	stateSize  = sNBlocks + 4
)

// Option configures the allocator.
type Option func(*Allocator)

// WithPadTags enables the Table 6 boundary-tag emulation.
func WithPadTags() Option {
	return func(a *Allocator) { a.padTags = true }
}

// Allocator is a GNU LOCAL instance.
type Allocator struct {
	m     *mem.Memory
	data  *mem.Region // heap blocks
	info  *mem.Region // descriptor table, 16 bytes per block
	state *mem.Region // fragheads, free-run head, block count

	dataBase  uint64
	infoBase  uint64
	stateBase uint64

	// infoBlocks is host-side bookkeeping of the descriptor table
	// capacity (in blocks); the simulated count lives at sNBlocks.
	infoBlocks uint64

	// freeFrags is a host-side validation table of currently-free
	// fragment addresses. The algorithm itself keeps no per-fragment
	// allocated bit (that tagless-ness is its design point), so a double
	// free of a fragment is undetectable from simulated state alone and
	// used to re-link the fragment, cycling its class list. The side
	// table costs no simulated references or instructions — it is the
	// equivalent of a debug-build assertion, not part of the measured
	// algorithm.
	freeFrags map[uint64]bool

	padTags bool
	allocs  uint64
	frees   uint64
}

// New creates a GNU LOCAL allocator with its own regions on m.
func New(m *mem.Memory, opts ...Option) *Allocator {
	a := &Allocator{
		m:         m,
		data:      m.NewRegion("gnulocal-heap", 0),
		info:      m.NewRegion("gnulocal-info", 0),
		state:     m.NewRegion("gnulocal-state", 0),
		freeFrags: map[uint64]bool{},
	}
	for _, o := range opts {
		o(a)
	}
	var err error
	a.stateBase, err = a.state.Sbrk(stateSize)
	if err == nil {
		// Block 0 is a reserved guard (absorbing the region's reserved
		// prefix so later blocks are page-aligned): block index 0 can
		// then serve as the null link in descriptor lists and fragment
		// offset 0 as the null fragment pointer.
		a.dataBase = a.data.Base()
		_, err = a.data.Sbrk(BlockSize - mem.RegionReserve)
	}
	if err == nil {
		a.infoBase, err = a.info.Sbrk(descSize)
	}
	if err != nil {
		panic("gnulocal: init sbrk failed: " + err.Error())
	}
	a.infoBlocks = 1
	a.m.WriteWord(a.stateBase+sNBlocks, 1)
	return a
}

func init() {
	alloc.Register("gnulocal", func(m *mem.Memory) alloc.Allocator { return New(m) })
	alloc.Register("gnulocal-tags", func(m *mem.Memory) alloc.Allocator {
		return New(m, WithPadTags())
	})
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string {
	if a.padTags {
		return "gnulocal-tags"
	}
	return "gnulocal"
}

// --- simulated-state accessors ---

func (a *Allocator) fragHeadAddr(log int) uint64 {
	return a.stateBase + sFragHead0 + uint64(log-minFragLog)*4
}

func (a *Allocator) desc(idx uint64) uint64 { return a.infoBase + idx*descSize }

func (a *Allocator) readDesc(idx, field uint64) uint64 {
	return a.m.ReadWord(a.desc(idx) + field)
}

func (a *Allocator) writeDesc(idx, field, v uint64) {
	a.m.WriteWord(a.desc(idx)+field, v)
}

// Block index 0 is the reserved guard page at the data-region base, so
// index 0 doubles as the null link in descriptor lists.
func (a *Allocator) blockAddr(idx uint64) uint64 { return a.dataBase + idx*BlockSize }

func (a *Allocator) blockIndex(addr uint64) uint64 {
	return (addr - a.dataBase) >> blockLog
}

// Fragment pointers are stored as data-region offsets; offset 0 is null
// (the guard block occupies the first page, so no fragment lives there).
func (a *Allocator) fragAddr(off uint64) uint64 { return a.data.Base() + off }
func (a *Allocator) fragOff(addr uint64) uint64 { return addr - a.data.Base() }

// --- allocation ---

func fragLog(n uint32) int {
	log := minFragLog
	for uint32(1)<<log < n {
		log++
	}
	return log
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 70)
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	if a.padTags {
		n += TagPad
	}
	var addr uint64
	var err error
	if n <= MaxFragSize {
		addr, err = a.mallocFrag(fragLog(n))
	} else {
		addr, err = a.mallocLarge(n)
	}
	if err != nil {
		return 0, err
	}
	if a.padTags {
		// Emulated boundary tags: a header word pair written before the
		// payload, read back on free.
		a.m.WriteWord(addr, uint64(n))
		a.m.WriteWord(addr+mem.WordSize, uint64(n))
		addr += TagPad
	}
	return addr, nil
}

func (a *Allocator) mallocFrag(log int) (uint64, error) {
	headSlot := a.fragHeadAddr(log)
	head := a.m.ReadWord(headSlot)
	if head == 0 {
		if err := a.newFragBlock(log); err != nil {
			return 0, err
		}
		head = a.m.ReadWord(headSlot)
	}
	// Pop the first free fragment of this class.
	fa := a.fragAddr(head)
	next := a.m.ReadWord(fa) // frag word 0: next link
	a.m.WriteWord(headSlot, next)
	if next != 0 {
		a.m.WriteWord(a.fragAddr(next)+mem.WordSize, 0) // new head's prev = null
	}
	idx := a.blockIndex(fa)
	nfree := a.readDesc(idx, dLink)
	a.writeDesc(idx, dLink, nfree-1)
	alloc.Charge(a.m, 4)
	delete(a.freeFrags, fa)
	return fa, nil
}

// newFragBlock dedicates a fresh block to fragments of class log,
// linking every fragment onto the class freelist (as GNU malloc does —
// the new page is touched end to end).
func (a *Allocator) newFragBlock(log int) error {
	idx, err := a.allocRun(1)
	if err != nil {
		return err
	}
	a.writeDesc(idx, dStatus, statusFrag)
	a.writeDesc(idx, dInfo, uint64(log))
	nfrags := uint64(BlockSize >> log)
	a.writeDesc(idx, dLink, nfrags)
	base := a.blockAddr(idx)
	headSlot := a.fragHeadAddr(log)
	// Chain fragments in address order: frag[i].next = frag[i+1].
	fragSize := uint64(1) << log
	var prevOff uint64
	for i := uint64(0); i < nfrags; i++ {
		fa := base + i*fragSize
		off := a.fragOff(fa)
		var nextOff uint64
		if i+1 < nfrags {
			nextOff = off + fragSize
		}
		a.m.WriteWord(fa, nextOff)
		a.m.WriteWord(fa+mem.WordSize, prevOff)
		prevOff = off
		alloc.Charge(a.m, 2)
		a.freeFrags[fa] = true
	}
	a.m.WriteWord(headSlot, a.fragOff(base))
	return nil
}

func (a *Allocator) mallocLarge(n uint32) (uint64, error) {
	blocks := (uint64(n) + BlockSize - 1) / BlockSize
	idx, err := a.allocRun(blocks)
	if err != nil {
		return 0, err
	}
	a.writeDesc(idx, dStatus, statusLargeHead)
	a.writeDesc(idx, dInfo, blocks)
	for j := uint64(1); j < blocks; j++ {
		a.writeDesc(idx+j, dStatus, statusLargeCont)
	}
	return a.blockAddr(idx), nil
}

// allocRun finds `blocks` contiguous free blocks first-fit on the
// address-ordered free-run list, growing the heap if necessary, and
// returns the index of the first block.
func (a *Allocator) allocRun(blocks uint64) (uint64, error) {
	for pass := 0; ; pass++ {
		var prev uint64
		cur := a.m.ReadWord(a.stateBase + sFreeHead)
		for cur != 0 {
			alloc.Charge(a.m, 3)
			runLen := a.readDesc(cur, dInfo)
			next := a.readDesc(cur, dLink)
			if runLen >= blocks {
				a.takeFromRun(cur, runLen, blocks, prev, next)
				return cur, nil
			}
			prev = cur
			cur = next
		}
		if pass > 0 {
			// grow reported success but the run is not findable — a
			// free-run list inconsistency. Surface it as an allocation
			// failure instead of tearing down the whole simulation.
			return 0, fmt.Errorf("gnulocal: grown %d-block run not found on free list: %w", blocks, mem.ErrOutOfMemory)
		}
		if err := a.grow(blocks); err != nil {
			return 0, err
		}
	}
}

// takeFromRun allocates `blocks` from the front of the free run at cur
// (length runLen, list neighbours prev/next), updating the list.
func (a *Allocator) takeFromRun(cur, runLen, blocks, prev, next uint64) {
	alloc.Charge(a.m, 4)
	if runLen == blocks {
		a.setRunLink(prev, next)
		if next != 0 {
			a.writeDesc(next, dExtra, prev)
		}
		return
	}
	newHead := cur + blocks
	a.writeDesc(newHead, dStatus, statusFree)
	a.writeDesc(newHead, dInfo, runLen-blocks)
	a.writeDesc(newHead, dLink, next)
	a.writeDesc(newHead, dExtra, prev)
	a.setRunLink(prev, newHead)
	if next != 0 {
		a.writeDesc(next, dExtra, newHead)
	}
}

// setRunLink points prev's next-run link (or the list head) at idx.
func (a *Allocator) setRunLink(prev, idx uint64) {
	if prev == 0 {
		a.m.WriteWord(a.stateBase+sFreeHead, idx)
	} else {
		a.writeDesc(prev, dLink, idx)
	}
}

// grow extends the data region by at least `blocks` blocks (and the
// descriptor table to match) and inserts the new run on the free list.
func (a *Allocator) grow(blocks uint64) error {
	nblocks := a.m.ReadWord(a.stateBase + sNBlocks)
	// Grow the descriptor table before the data region: if the data
	// Sbrk fails afterwards the spare descriptor capacity is harmless,
	// whereas data pages without descriptors would be unreachable to
	// every later operation (a Free into that gap walked off the end of
	// the info region).
	for a.infoBlocks < nblocks+blocks {
		if _, err := a.info.Sbrk(descSize * blocks); err != nil {
			return err
		}
		a.infoBlocks += blocks
	}
	if _, err := a.data.Sbrk(blocks * BlockSize); err != nil {
		return err
	}
	a.m.WriteWord(a.stateBase+sNBlocks, nblocks+blocks)
	a.freeRun(nblocks, blocks)
	return nil
}

// freeRun inserts the run [idx, idx+blocks) into the address-ordered
// free-run list, coalescing with adjacent runs. This is the walk the
// paper refers to when noting that GNU malloc traverses only its chunk
// headers rather than the heap itself.
func (a *Allocator) freeRun(idx, blocks uint64) {
	var prev uint64
	cur := a.m.ReadWord(a.stateBase + sFreeHead)
	for cur != 0 && cur < idx {
		alloc.Charge(a.m, 2)
		prev = cur
		cur = a.readDesc(cur, dLink)
	}
	// The head block is free from here on, whichever list shape results.
	// The merge-into-prev path used to skip this write, leaving the
	// descriptor claiming statusLargeHead — so a double free of that
	// object passed validation and corrupted the free-run list.
	a.writeDesc(idx, dStatus, statusFree)
	// Try to merge into the preceding run.
	if prev != 0 {
		plen := a.readDesc(prev, dInfo)
		if prev+plen == idx {
			plen += blocks
			a.writeDesc(prev, dInfo, plen)
			if prev+plen == cur && cur != 0 {
				// The enlarged run now abuts the next one: absorb it.
				nn := a.readDesc(cur, dLink)
				a.writeDesc(prev, dInfo, plen+a.readDesc(cur, dInfo))
				a.writeDesc(prev, dLink, nn)
				if nn != 0 {
					a.writeDesc(nn, dExtra, prev)
				}
			}
			return
		}
	}
	if idx+blocks == cur && cur != 0 {
		// Merge with the following run: idx becomes its new head.
		a.writeDesc(idx, dInfo, blocks+a.readDesc(cur, dInfo))
		nn := a.readDesc(cur, dLink)
		a.writeDesc(idx, dLink, nn)
		a.writeDesc(idx, dExtra, prev)
		a.setRunLink(prev, idx)
		if nn != 0 {
			a.writeDesc(nn, dExtra, idx)
		}
		return
	}
	// Plain insertion between prev and cur.
	a.writeDesc(idx, dInfo, blocks)
	a.writeDesc(idx, dLink, cur)
	a.writeDesc(idx, dExtra, prev)
	a.setRunLink(prev, idx)
	if cur != 0 {
		a.writeDesc(cur, dExtra, idx)
	}
}

// --- deallocation ---

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 60)
	if a.padTags {
		if p < a.data.Base()+TagPad {
			return alloc.ErrBadFree
		}
		p -= TagPad
	}
	if p%mem.WordSize != 0 || !a.data.Contains(p) || p < a.dataBase+BlockSize {
		return alloc.ErrBadFree
	}
	if a.padTags {
		// Read the emulated tags back, as a real free would.
		a.m.ReadWord(p)
		a.m.ReadWord(p + mem.WordSize)
	}
	idx := a.blockIndex(p)
	switch a.readDesc(idx, dStatus) {
	case statusFrag:
		return a.freeFrag(p, idx)
	case statusLargeHead:
		if p != a.blockAddr(idx) {
			return alloc.ErrBadFree
		}
		blocks := a.readDesc(idx, dInfo)
		a.freeRun(idx, blocks)
		return nil
	default:
		return alloc.ErrBadFree
	}
}

func (a *Allocator) freeFrag(p, idx uint64) error {
	log := int(a.readDesc(idx, dInfo))
	fragSize := uint64(1) << log
	if (p-a.blockAddr(idx))%fragSize != 0 {
		return alloc.ErrBadFree
	}
	if a.freeFrags[p] {
		// Double free of a fragment (zero-cost side-table check; see
		// the freeFrags field comment).
		return alloc.ErrBadFree
	}
	headSlot := a.fragHeadAddr(log)
	head := a.m.ReadWord(headSlot)
	off := a.fragOff(p)
	// Push onto the class freelist.
	a.m.WriteWord(p, head)
	a.m.WriteWord(p+mem.WordSize, 0)
	if head != 0 {
		a.m.WriteWord(a.fragAddr(head)+mem.WordSize, off)
	}
	a.m.WriteWord(headSlot, off)

	a.freeFrags[p] = true
	nfree := a.readDesc(idx, dLink) + 1
	a.writeDesc(idx, dLink, nfree)
	alloc.Charge(a.m, 4)
	if nfree == uint64(BlockSize>>log) {
		// Every fragment of this block is free: unthread them all from
		// the class freelist (GNU malloc walks the list exactly like
		// this) and return the whole block to the free-run list.
		a.reclaimFragBlock(idx, log)
	}
	return nil
}

func (a *Allocator) reclaimFragBlock(idx uint64, log int) {
	headSlot := a.fragHeadAddr(log)
	cur := a.m.ReadWord(headSlot)
	for cur != 0 {
		alloc.Charge(a.m, 3)
		fa := a.fragAddr(cur)
		next := a.m.ReadWord(fa)
		if a.blockIndex(fa) == idx {
			prev := a.m.ReadWord(fa + mem.WordSize)
			if prev == 0 {
				a.m.WriteWord(headSlot, next)
			} else {
				a.m.WriteWord(a.fragAddr(prev), next)
			}
			if next != 0 {
				a.m.WriteWord(a.fragAddr(next)+mem.WordSize, prev)
			}
			delete(a.freeFrags, fa)
		}
		cur = next
	}
	a.freeRun(idx, 1)
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees uint64) { return a.allocs, a.frees }
