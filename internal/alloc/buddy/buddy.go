// Package buddy implements a binary buddy-system allocator, completing
// the paper's §2.1 taxonomy: "Standish divides algorithms for dynamic
// storage allocation into three broad categories: sequential-fit
// algorithms (e.g., first-fit and best-fit), buddy-system methods
// (e.g., binary-buddy and Fibonacci), and segregated-storage
// algorithms". The paper evaluates the first and third; this package
// supplies the second for the extended taxonomy experiments.
//
// The heap is carved from maximally aligned 64 KB arenas. Every block
// is a power of two from 16 bytes to the arena size, with a one-word
// header holding its order and allocation bit; the usable payload is
// therefore 2^k − 4 bytes, giving buddy systems the same
// just-over-a-class internal fragmentation pathology as BSD, plus
// block-pair ("buddy") coalescing: when a block is freed and its buddy
// — the block at the address obtained by XORing the block offset with
// its size — is also free and of the same order, the two merge,
// recursively. Free blocks of each order are kept on doubly-linked
// lists threaded through block payloads, with heads in a small state
// area of simulated memory.
//
// Expected behaviour under the paper's metrics: allocation and free are
// fast-ish (no searching), coalescing costs locality (buddy header
// probes touch neighbouring blocks), and internal fragmentation is
// severe — a middle point between the sequential-fit and
// segregated-storage families.
package buddy

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

const (
	// minOrder is the smallest block: 2^4 = 16 bytes (header + 12).
	minOrder = 4
	// maxOrder is the arena size: 2^16 = 64 KB, the largest request
	// (minus header) this allocator serves directly.
	maxOrder = 16

	ArenaSize  = 1 << maxOrder
	headerSize = mem.WordSize

	// Header encoding: allocMagic | order for live blocks; free blocks
	// store order only (plus their list links in the payload).
	allocMagic = 0xb0dd1000
	orderMask  = 0xff

	// State-region word offsets: one freelist head per order.
	numOrders = maxOrder - minOrder + 1
)

// Allocator is a binary buddy instance.
type Allocator struct {
	m     *mem.Memory
	data  *mem.Region
	state *mem.Region

	stateBase uint64
	arenaBase uint64 // first arena-aligned address
	arenaTop  uint64 // end of carved arenas

	allocs uint64
	frees  uint64
	merges uint64
	splits uint64
}

// New creates a buddy allocator with its own regions on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:     m,
		data:  m.NewRegion("buddy-heap", 0),
		state: m.NewRegion("buddy-state", mem.PageSize),
	}
	base, err := a.state.Sbrk(numOrders * mem.WordSize)
	if err != nil {
		panic("buddy: state sbrk failed: " + err.Error())
	}
	a.stateBase = base
	for i := 0; i < numOrders; i++ {
		m.WriteWord(base+uint64(i)*mem.WordSize, 0)
	}
	// Arenas must be ArenaSize-aligned for the XOR buddy computation;
	// pad the region's reserved prefix out to the first aligned offset.
	pad := ArenaSize - (a.data.Brk()-a.data.Base())%ArenaSize
	if pad != ArenaSize {
		if _, err := a.data.Sbrk(pad); err != nil {
			panic("buddy: alignment sbrk failed: " + err.Error())
		}
	}
	a.arenaBase = a.data.Brk()
	a.arenaTop = a.arenaBase
	return a
}

func init() {
	alloc.Register("buddy", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "buddy" }

// BlockSize returns the block consumed by an n-byte request.
func BlockSize(n uint32) uint64 {
	need := uint64(n) + headerSize
	size := uint64(1) << minOrder
	for size < need {
		size <<= 1
	}
	return size
}

func orderFor(n uint32) int {
	need := uint64(n) + headerSize
	k := minOrder
	for uint64(1)<<k < need {
		k++
	}
	return k
}

func (a *Allocator) headSlot(order int) uint64 {
	return a.stateBase + uint64(order-minOrder)*mem.WordSize
}

// Free-list links live in the payload: next at block+4, prev at
// block+8 (the 16-byte minimum block just fits header+next+prev).
func (a *Allocator) next(b uint64) uint64 { return a.data.DecodePtr(a.m.ReadWord(b + mem.WordSize)) }
func (a *Allocator) prev(b uint64) uint64 { return a.data.DecodePtr(a.m.ReadWord(b + 2*mem.WordSize)) }
func (a *Allocator) setNext(b, v uint64)  { a.m.WriteWord(b+mem.WordSize, a.data.EncodePtr(v)) }
func (a *Allocator) setPrev(b, v uint64)  { a.m.WriteWord(b+2*mem.WordSize, a.data.EncodePtr(v)) }

// pushFree adds block b of the given order to its freelist and writes
// its free header.
func (a *Allocator) pushFree(b uint64, order int) {
	a.m.WriteWord(b, uint64(order))
	slot := a.headSlot(order)
	head := a.m.ReadWord(slot)
	a.setNext(b, a.data.DecodePtr(head))
	a.setPrev(b, 0)
	if head != 0 {
		a.setPrev(a.data.DecodePtr(head), b)
	}
	a.m.WriteWord(slot, a.data.EncodePtr(b))
}

// popFree removes the head of the order's freelist, or returns 0.
func (a *Allocator) popFree(order int) uint64 {
	slot := a.headSlot(order)
	head := a.m.ReadWord(slot)
	if head == 0 {
		return 0
	}
	b := a.data.DecodePtr(head)
	next := a.next(b)
	a.m.WriteWord(slot, a.data.EncodePtr(next))
	if next != 0 {
		a.setPrev(next, 0)
	}
	return b
}

// unlink removes a specific block from its freelist (buddy merging).
func (a *Allocator) unlink(b uint64, order int) {
	next, prev := a.next(b), a.prev(b)
	if prev == 0 {
		a.m.WriteWord(a.headSlot(order), a.data.EncodePtr(next))
	} else {
		a.setNext(prev, next)
	}
	if next != 0 {
		a.setPrev(next, prev)
	}
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 8)
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	order := orderFor(n)
	if order > maxOrder {
		return 0, alloc.ErrTooLarge
	}
	// Find the smallest non-empty order >= the request's.
	b := uint64(0)
	k := order
	for ; k <= maxOrder; k++ {
		alloc.Charge(a.m, 2)
		if b = a.popFree(k); b != 0 {
			break
		}
	}
	if b == 0 {
		// Fresh arena.
		addr, err := a.data.Sbrk(ArenaSize)
		if err != nil {
			return 0, err
		}
		a.arenaTop = a.data.Brk()
		b, k = addr, maxOrder
	}
	// Split down to the requested order, pushing the upper halves.
	for ; k > order; k-- {
		a.splits++
		alloc.Charge(a.m, 3)
		half := uint64(1) << (k - 1)
		a.pushFree(b+half, k-1)
	}
	a.m.WriteWord(b, allocMagic|uint64(order))
	return b + headerSize, nil
}

// Free implements alloc.Allocator: push the block and merge buddies
// upward as far as possible.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 8)
	if p%mem.WordSize != 0 || p < a.arenaBase+headerSize || p >= a.arenaTop {
		return alloc.ErrBadFree
	}
	b := p - headerSize
	hdr := a.m.ReadWord(b)
	order := int(hdr & orderMask)
	if hdr&^uint64(orderMask) != allocMagic || order < minOrder || order > maxOrder {
		return alloc.ErrBadFree
	}
	if (b-a.arenaBase)%(uint64(1)<<order) != 0 {
		return alloc.ErrBadFree
	}
	// Mark the block free before merging. When it merges into its lower
	// buddy, only the merged base gets a fresh header; without this
	// write the freed block's own header still read allocMagic|order, so
	// a double free passed every check above and re-linked a block
	// sitting inside a larger free one.
	a.m.WriteWord(b, uint64(order))

	for order < maxOrder {
		buddy := a.arenaBase + ((b - a.arenaBase) ^ (uint64(1) << order))
		if buddy+headerSize > a.arenaTop {
			break
		}
		alloc.Charge(a.m, 4)
		bh := a.m.ReadWord(buddy)
		// The buddy must be free and of the same order to merge; a free
		// buddy of smaller order is still split.
		if bh&^uint64(orderMask) == allocMagic || bh != uint64(order) {
			break
		}
		a.unlink(buddy, order)
		a.merges++
		if buddy < b {
			b = buddy
		}
		order++
	}
	a.pushFree(b, order)
	return nil
}

// Stats reports operation and split/merge counts.
func (a *Allocator) Stats() (allocs, frees, splits, merges uint64) {
	return a.allocs, a.frees, a.splits, a.merges
}
