package buddy

import (
	"testing"
	"testing/quick"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.RunOpts(t, func(m *mem.Memory) alloc.Allocator { return New(m) },
		alloctest.Options{MaxSize: ArenaSize - 8})
}

func TestBlockSize(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint64
	}{
		{1, 16}, {12, 16}, {13, 32}, {24, 32}, {28, 32}, {29, 64},
		{1000, 1024}, {ArenaSize - 4, ArenaSize},
	}
	for _, c := range cases {
		if got := BlockSize(c.n); got != c.want {
			t.Errorf("BlockSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTooLarge(t *testing.T) {
	a, _ := newTestAlloc()
	if _, err := a.Malloc(ArenaSize); err == nil {
		t.Error("request above arena order must fail")
	}
}

func TestSplitAndMergeRoundTrip(t *testing.T) {
	a, m := newTestAlloc()
	// Fill an arena with minimum blocks, free them all, then allocate a
	// maximal block: full buddy coalescing must restore the arena.
	const count = ArenaSize / 16
	var ptrs []uint64
	for i := 0; i < count; i++ {
		p, err := a.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	foot := m.Footprint()
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	big, err := a.Malloc(ArenaSize - 8)
	if err != nil {
		t.Fatalf("arena did not coalesce: %v", err)
	}
	if m.Footprint() != foot {
		t.Errorf("heap grew (%d -> %d) despite full coalescing", foot, m.Footprint())
	}
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
	_, _, splits, merges := a.Stats()
	if splits == 0 || merges == 0 {
		t.Errorf("splits=%d merges=%d: expected both", splits, merges)
	}
}

func TestBuddyAddressInvariant(t *testing.T) {
	a, _ := newTestAlloc()
	// Every returned block must be size-aligned relative to the arena
	// base — the invariant the XOR buddy computation rests on.
	r := rng.New(5)
	var live []uint64
	for op := 0; op < 2000; op++ {
		if len(live) > 0 && r.Bool(0.45) {
			i := r.Intn(len(live))
			if err := a.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		n := uint32(1 + r.Intn(5000))
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		block := p - 4
		size := BlockSize(n)
		if (block-a.arenaBase)%size != 0 {
			t.Fatalf("block %#x not aligned to its size %d", block, size)
		}
		live = append(live, p)
	}
}

func TestPartialMergeStops(t *testing.T) {
	a, _ := newTestAlloc()
	// Allocate two sibling 16-byte blocks; freeing one must not merge
	// (buddy still live), freeing both must.
	p1, _ := a.Malloc(8)
	p2, _ := a.Malloc(8)
	if (p1-4)^(p2-4) != 16 {
		t.Skip("allocator did not hand out sibling blocks first") // layout guard
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	_, _, _, mergesBefore := a.Stats()
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	_, _, _, mergesAfter := a.Stats()
	if mergesAfter <= mergesBefore {
		t.Error("freeing the second sibling should merge")
	}
}

// Property: internal fragmentation never exceeds 50% + header for any
// request (power-of-two rounding bound).
func TestQuickFragmentationBound(t *testing.T) {
	prop := func(raw uint16) bool {
		n := uint32(raw)%60000 + 1
		size := BlockSize(n)
		if size == 16 { // minimum block
			return uint64(n)+4 <= 16
		}
		return size >= uint64(n)+4 && size <= 2*(uint64(n)+4)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(100)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free should be detected (header no longer allocMagic)")
	}
}
