// Package alloc defines the dynamic storage allocation (DSA) interface
// shared by the five allocator implementations the paper compares —
// FIRSTFIT, GNU G++ (Lea), BSD (Kingsley), GNU LOCAL (Haertel) and
// QUICKFIT (Weinstock/Wulf) — plus the paper's recommended §4.4
// architecture (package custom).
//
// Allocators are real implementations operating on simulated memory
// (package mem): their freelists, boundary tags and chunk descriptors
// are words in that memory, so every pointer chase an allocator performs
// shows up in the reference trace consumed by the cache and VM
// simulators. That is the point of the reproduction: the paper's
// central result is that the allocator's own reference behaviour (and
// the placement decisions it makes) measurably changes program locality.
package alloc

import (
	"errors"
	"fmt"
	"sort"

	"mallocsim/internal/mem"
)

// Errors returned by allocators.
var (
	// ErrBadFree reports a free of an address that is not currently
	// allocated by this allocator.
	ErrBadFree = errors.New("alloc: bad free")
	// ErrTooLarge reports a request beyond the allocator's limits.
	ErrTooLarge = errors.New("alloc: request too large")
)

// Allocator is the malloc/free interface.
//
// Malloc returns the address of n usable bytes. Free releases an
// address previously returned by Malloc. Implementations charge their
// ALU work to the memory's cost meter; the caller (the simulation
// driver) is responsible for switching the meter into the Malloc/Free
// domain around calls and for charging the fixed call overhead.
//
// The shared contract, enforced by every registered implementation and
// audited by package shadow:
//
//   - Malloc(0) is legal and behaves as Malloc of one word
//     (mem.WordSize): it returns a distinct, word-aligned, non-null
//     address with at least one usable word.
//   - Malloc failures are ErrTooLarge (the request exceeds the
//     algorithm's structural limits) or an error wrapping
//     mem.ErrOutOfMemory (the region limit was hit mid-run). Running
//     out of backing store must not panic once construction succeeded.
//   - Free returns ErrBadFree — without corrupting allocator state —
//     for null addresses, addresses never returned by Malloc, addresses
//     already freed (double free), and pointers into the interior of a
//     live block, to the extent the algorithm's metadata can detect
//     them. Detection is exact for double frees of the patterns the
//     alloctest battery exercises; adversarially constructed interior
//     pointers may evade tag checks on some algorithms, which is what
//     the shadow oracle exists to catch.
type Allocator interface {
	// Name returns the registry name, e.g. "firstfit".
	Name() string
	// Malloc allocates n bytes (n == 0 is read as one word) and
	// returns its address.
	Malloc(n uint32) (uint64, error)
	// Free releases a previously allocated address.
	Free(addr uint64) error
}

// Checker is an optional interface implemented by allocators that can
// audit their own heap structure (boundary-tag tiling, freelist
// consistency — see HeapCheck). The shadow wrapper runs Check
// periodically when the wrapped allocator implements it. Check performs
// counted references on the simulated memory, so audited runs charge
// more instructions than unaudited ones.
type Checker interface {
	// Check walks the heap and returns an error describing the first
	// inconsistency found, if any.
	Check() (HeapStats, error)
}

// SiteAllocator is implemented by allocators that can exploit
// allocation-site information — the paper's §5.1 future work ("we also
// hope to include other work in program behavior prediction based on
// call site information [Barrett & Zorn] in the synthesized
// allocators"). Site identifiers are opaque small integers; callers
// that have no site information use plain Malloc, which such allocators
// treat as site 0.
type SiteAllocator interface {
	Allocator
	// MallocSite allocates n bytes on behalf of the given call site.
	MallocSite(n uint32, site uint32) (uint64, error)
}

// LocalityHinter is implemented by allocators that can exploit a
// caller-supplied locality hint — an opaque small integer naming the
// program phase (or other affinity domain) an object is born into.
// Objects carrying nearby hints are expected to be referenced together,
// so a hint-aware allocator steers them into the same arena to improve
// spatial locality (the post-1993 refinement of the paper's §4.4
// placement argument). Callers with no hint use plain Malloc, which
// hint-aware allocators treat as locality 0; allocators that cannot
// exploit hints simply do not implement the interface, and the workload
// driver falls back to Malloc/MallocSite for them.
type LocalityHinter interface {
	Allocator
	// MallocLocal allocates n bytes with the given locality id.
	MallocLocal(n uint32, locality uint32) (uint64, error)
}

// HintAware reports whether a — or the allocator at the bottom of a's
// wrapper chain (anything implementing Unwrap() Allocator) — natively
// exploits locality hints. Instrumentation wrappers implement
// LocalityHinter unconditionally so hints pass through transparently; a
// plain type assertion on a wrapped allocator therefore cannot tell a
// hint-aware heap from a wrapped oblivious one. Dispatchers holding
// both site and locality information use HintAware to decide which
// optional entry point to call.
func HintAware(a Allocator) bool {
	for {
		u, ok := a.(interface{ Unwrap() Allocator })
		if !ok {
			_, ok := a.(LocalityHinter)
			return ok
		}
		a = u.Unwrap()
	}
}

// Scanner is an optional interface implemented by allocators that
// search freelists (the sequential fits, and hybrids that fall back to
// one). ScanSteps returns the cumulative number of freelist nodes
// examined across all operations; per-call scan lengths — the paper's
// "sequential fit algorithms ... require a search" cost made visible —
// are deltas of this counter. Callers discover conformance with a type
// assertion; allocators that never search simply do not implement it.
type Scanner interface {
	ScanSteps() uint64
}

// CallOverhead is the instruction cost of the call/return linkage and
// argument setup of a malloc or free call, charged by the simulation
// driver per call (on top of the work the allocator itself performs).
const CallOverhead = 8

// Constructor builds an allocator instance on the given memory. Each
// instance creates its own regions; one Memory can host one allocator
// instance (plus workload regions).
type Constructor func(m *mem.Memory) Allocator

var registry = map[string]Constructor{}

// Register adds a named constructor. It panics on duplicates and is
// intended to be called from package init functions.
func Register(name string, c Constructor) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("alloc: duplicate registration of %q", name))
	}
	registry[name] = c
}

// New builds the named allocator on m.
func New(name string, m *mem.Memory) (Allocator, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("alloc: unknown allocator %q (have %v)", name, Names())
	}
	return c(m), nil
}

// Names returns the registered allocator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Charge adds n ALU instructions to m's meter, if any. Allocator
// implementations use it for non-memory work (comparisons, arithmetic,
// branches); memory accesses are charged by mem itself.
func Charge(m *mem.Memory, n uint64) {
	if meter := m.Meter(); meter != nil {
		meter.Charge(n)
	}
}
