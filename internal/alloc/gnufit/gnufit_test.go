package gnufit

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestBinIndex(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{16, 4}, {17, 4}, {31, 4}, {32, 5}, {63, 5}, {64, 6},
		{1 << 20, 20}, {1 << 30, NumBins - 1}, {1 << 40, NumBins - 1},
		{1, 4}, // clamped to the minimum bin
	}
	for _, c := range cases {
		if got := binIndex(c.size); got != c.want {
			t.Errorf("binIndex(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSegregationShortensScans(t *testing.T) {
	a, _ := newTestAlloc()
	// Fill the freelists with many small blocks, then allocate a large
	// one: the bin structure must avoid scanning the small blocks (only
	// bin-head probes happen).
	var small []uint64
	for i := 0; i < 200; i++ {
		p, err := a.Malloc(20)
		if err != nil {
			t.Fatal(err)
		}
		small = append(small, p)
	}
	// A big live block prevents total coalescing into one run.
	for i, p := range small {
		if i%2 == 0 {
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := a.ScanSteps()
	if _, err := a.Malloc(8000); err != nil {
		t.Fatal(err)
	}
	steps := a.ScanSteps() - before
	if steps > 5 {
		t.Errorf("large allocation scanned %d blocks despite segregation", steps)
	}
}

func TestCoalescingAcrossBins(t *testing.T) {
	a, m := newTestAlloc()
	// Adjacent frees of different sizes must merge even though they
	// lived in different bins.
	p1, _ := a.Malloc(24)
	p2, _ := a.Malloc(200)
	p3, _ := a.Malloc(24)
	_ = p3
	foot := m.Footprint()
	a.Free(p1)
	a.Free(p2) // merges with p1's block
	q, err := a.Malloc(220)
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Errorf("merged block not reused: got %#x want %#x", q, p1)
	}
	if m.Footprint() != foot {
		t.Error("heap grew despite coalesced space")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free should be detected")
	}
}

func TestStatsAndRegion(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(10)
	a.Free(p)
	allocs, frees, _ := a.Stats()
	if allocs != 1 || frees != 1 {
		t.Errorf("stats %d/%d", allocs, frees)
	}
	if a.Region() == nil || !a.Region().Contains(p) {
		t.Error("Region() must expose the heap region")
	}
}

// TestHeapIntegrityUnderStress audits tags, tiling and bin membership
// after randomized churn.
func TestHeapIntegrityUnderStress(t *testing.T) {
	a, _ := newTestAlloc()
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	var live []uint64
	for op := 0; op < 5000; op++ {
		if len(live) > 150 || (len(live) > 0 && next()%2 == 0) {
			i := int(next()) % len(live)
			if err := a.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p, err := a.Malloc(uint32(1 + next()%400))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	if _, err := a.Check(); err != nil {
		t.Fatal(err)
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveBytes != 0 || st.FreeBlocks > 2 {
		t.Errorf("after full free: %+v", st)
	}
}
