// Package gnufit implements the paper's "GNU G++" allocator, Doug Lea's
// enhancement of the standard first-fit algorithm (the malloc
// distributed with libg++, an early ancestor of dlmalloc).
//
// It keeps an array of freelists segregated by object size: an
// appropriate freelist is selected based on the logarithm of the
// allocation request, which raises the probability of a quick, good
// fit. Within each bin, free blocks are connected in a doubly-linked
// list scanned first-fit; when a bin is exhausted, successively larger
// bins are consulted, whose first member is guaranteed to fit. In
// other respects — boundary tags, constant-time coalescing on free,
// splitting large blocks — it matches FIRSTFIT.
//
// The paper finds that searching fewer objects makes GNU G++ markedly
// more resilient than FIRSTFIT on page locality, but it remains the
// second-worst allocator for cache locality: it still searches and
// still coalesces.
package gnufit

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

const (
	// NumBins is the number of size-segregated freelists. Bin i holds
	// free blocks with size in [2^i, 2^(i+1)); the smallest legal block
	// is 16 bytes (bin 4) and bin NumBins-1 holds everything larger.
	NumBins = 28

	minBin = 4

	// SplitThreshold and ExpandChunk match FIRSTFIT.
	SplitThreshold = 24
	ExpandChunk    = mem.PageSize
)

// Allocator is a GNU G++ style segregated first-fit instance.
type Allocator struct {
	m        *mem.Memory
	h        alloc.BlockHeap
	bins     [NumBins]uint64 // sentinel addresses (0 for unused low bins)
	lowBlock uint64

	scanSteps uint64
	allocs    uint64
	frees     uint64
}

// New creates a GNU G++ allocator with its own heap region on m.
func New(m *mem.Memory) *Allocator {
	r := m.NewRegion("gnufit-heap", 0)
	a := &Allocator{m: m, h: alloc.BlockHeap{M: m, R: r}}
	// The bin sentinel array lives at the base of the heap region, so
	// bin probes are real references to a compact header area.
	for i := minBin; i < NumBins; i++ {
		head, err := a.h.NewListHead()
		if err != nil {
			panic("gnufit: sentinel sbrk failed: " + err.Error())
		}
		a.bins[i] = head
	}
	a.lowBlock = r.Brk()
	return a
}

func init() {
	alloc.Register("gnufit", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "gnufit" }

// Region exposes the heap region; embedding allocators (QUICKFIT) carve
// their small blocks out of general-allocator chunks and need the
// region to encode pointers into it.
func (a *Allocator) Region() *mem.Region { return a.h.R }

// Allocator searches its bins' freelists, so it implements
// alloc.Scanner.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: the cumulative number of
// freelist nodes examined.
func (a *Allocator) ScanSteps() uint64 { return a.scanSteps }

// binIndex returns the bin holding blocks of the given size:
// floor(log2(size)), clamped to the bin range.
func binIndex(size uint64) int {
	i := 0
	for s := size; s > 1; s >>= 1 {
		i++
	}
	if i < minBin {
		i = minBin
	}
	if i >= NumBins {
		i = NumBins - 1
	}
	return i
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 16) // rounding + log2 bin computation
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	need := alloc.BlockSizeFor(n)
	start := binIndex(need)

	// First-fit scan of the bin that may contain just-fitting blocks.
	head := a.bins[start]
	for b := a.h.Next(head); b != head; b = a.h.Next(b) {
		size, _ := a.h.Header(b)
		alloc.Charge(a.m, 3)
		a.scanSteps++
		if size >= need {
			return a.allocateFrom(b, size, need), nil
		}
	}

	// Larger bins: any non-empty bin's first block fits, because every
	// block in bin j has size >= 2^j >= 2^(start+1) > need.
	for i := start + 1; i < NumBins; i++ {
		head := a.bins[i]
		b := a.h.Next(head) // one probe reference per bin examined
		alloc.Charge(a.m, 2)
		if b == head {
			continue
		}
		if i == NumBins-1 {
			// The top bin is unbounded above but also holds blocks as
			// small as 2^(NumBins-1)... in practice every block here is
			// huge; still scan first-fit for correctness.
			for ; b != head; b = a.h.Next(b) {
				size, _ := a.h.Header(b)
				alloc.Charge(a.m, 3)
				a.scanSteps++
				if size >= need {
					return a.allocateFrom(b, size, need), nil
				}
			}
			continue
		}
		size, _ := a.h.Header(b)
		a.scanSteps++
		return a.allocateFrom(b, size, need), nil
	}

	// Nothing anywhere: extend the heap.
	b, size, err := a.expand(need)
	if err != nil {
		return 0, err
	}
	return a.allocateFrom(b, size, need), nil
}

func (a *Allocator) allocateFrom(b, size, need uint64) uint64 {
	alloc.Charge(a.m, 4)
	a.h.Remove(b)
	if size >= need+SplitThreshold {
		rem := b + need
		remSize := size - need
		a.h.SetTags(rem, remSize, false)
		a.h.InsertAfter(a.bins[binIndex(remSize)], rem)
		size = need
	}
	a.h.SetTags(b, size, true)
	return a.h.Payload(b)
}

func (a *Allocator) expand(need uint64) (uint64, uint64, error) {
	grow := need
	if grow < ExpandChunk {
		grow = ExpandChunk
	}
	addr, err := a.h.R.Sbrk(grow)
	if err != nil {
		return 0, 0, err
	}
	b, size := addr, grow
	if addr > a.lowBlock {
		if psize, palloc := a.h.FooterBefore(addr); !palloc {
			prev := addr - psize
			a.h.Remove(prev)
			b = prev
			size += psize
		}
	}
	a.h.SetTags(b, size, false)
	a.h.InsertAfter(a.bins[binIndex(size)], b)
	return b, size, nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 14)
	if p%mem.WordSize != 0 || p < a.lowBlock+mem.WordSize || p >= a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	b := a.h.BlockOf(p)
	size, allocated := a.h.Header(b)
	if !allocated || size < alloc.MinBlock || b+size > a.h.R.Brk() {
		return alloc.ErrBadFree
	}
	// Both boundary tags must agree: a lone header can be a stale word
	// inside a since-coalesced free block (double free) or arbitrary
	// payload bits (interior pointer).
	if fsize, falloc := a.h.FooterBefore(b + size); fsize != size || !falloc {
		return alloc.ErrBadFree
	}
	// Mark the block free before coalescing, so its own header never
	// survives inside a merged free area still reading "allocated" (the
	// double-free hole the footer check alone cannot close when both
	// neighbours are free).
	a.h.SetTags(b, size, false)

	// Constant-time coalescing via boundary tags; the doubly-linked
	// bins allow neighbours to be unlinked without knowing their bin.
	if next := b + size; next < a.h.R.Brk() {
		if nsize, nalloc := a.h.Header(next); !nalloc {
			a.h.Remove(next)
			size += nsize
		}
	}
	if b > a.lowBlock {
		if psize, palloc := a.h.FooterBefore(b); !palloc {
			prev := b - psize
			a.h.Remove(prev)
			b = prev
			size += psize
		}
	}

	a.h.SetTags(b, size, false)
	a.h.InsertAfter(a.bins[binIndex(size)], b)
	return nil
}

// Stats reports basic operation counts.
func (a *Allocator) Stats() (allocs, frees, scanSteps uint64) {
	return a.allocs, a.frees, a.scanSteps
}

// Allocator can audit its own heap (shadow wrapper hook).
var _ alloc.Checker = (*Allocator)(nil)

// Check audits the heap representation (tags, tiling, bin consistency).
// The walk performs counted references; meant for tests and explicit
// audits.
func (a *Allocator) Check() (alloc.HeapStats, error) {
	heads := make([]uint64, 0, NumBins)
	for i := minBin; i < NumBins; i++ {
		heads = append(heads, a.bins[i])
	}
	hc := alloc.HeapCheck{
		H:               &a.h,
		Lo:              a.lowBlock,
		Hi:              a.h.R.Brk(),
		Heads:           heads,
		ExpectCoalesced: true,
	}
	return hc.Run()
}
