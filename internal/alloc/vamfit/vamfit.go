// Package vamfit implements a Vam-style allocator (Feng & Berger,
// MSP 2005; plasma-umass/vam): fine-grained size classes over
// page-aligned regions with reap-then-recycle placement.
//
// Small requests round to the word size and map to an exact size
// class — one class per word multiple up to MaxSmall, so internal
// fragmentation is at most a word. Each class bump-carves ("reaps")
// blocks out of a dedicated current page; carving is headerless, so
// consecutive allocations of a class are contiguous, which is where
// Vam's locality improvement comes from. Only when the current page is
// exhausted does allocation fall back to the class's freelist of
// previously released blocks ("recycle"), and only when both fail is a
// new page taken — first from the pool of pages that have drained
// (every object on them freed), then from the OS.
//
// Deallocation is page-directed: the page descriptor recovers the
// block size from the address, rejecting interior pointers (offset not
// a multiple of the block size), pointers past the page's carve
// frontier, and frees into uncarved pages. When a page's live count
// drops to zero its blocks are unthreaded from the class freelist and
// the whole page is returned to the pool for reuse by any class —
// Vam's page-level recycling, which keeps a long-lived process's heap
// from being pinned by stale size-class ownership.
//
// Requests larger than MaxSmall go to an embedded GNU G++ general
// allocator, the same arrangement QUICKFIT uses.
package vamfit

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/gnufit"
	"mallocsim/internal/mem"
)

const (
	// MaxSmall is the largest request served from class pages.
	MaxSmall = 256
	// numClasses is one exact class per word multiple 4, 8, ..., 256.
	numClasses = MaxSmall / mem.WordSize

	// Per-page descriptor fields in the info region: dSize (block
	// size; 0 = uncarved or pooled), dLive (live blocks), dBump
	// (carve frontier, bytes), dNext (pool link, page index+1).
	dSize     = 0
	dLive     = 1
	dBump     = 2
	dNext     = 3
	descWords = dNext + 1

	// State-region word offsets: the drained-page pool head, then per
	// class a freelist head (encoded block pointer) and the current
	// reap page (page index + 1; 0 = none).
	sPool      = 0
	sClasses   = sPool + mem.WordSize
	classWords = 2
	cHead      = 0
	cPage      = 1
	stateLen   = sClasses + numClasses*classWords*mem.WordSize
)

// Allocator is a Vam-style instance. Class state, page descriptors and
// freelist links are words in simulated memory; the only host-side
// structure is a liveness set used as a debug assertion for exact
// double-free detection (headerless blocks carry no tag to check), the
// same arrangement package custom documents.
type Allocator struct {
	m       *mem.Memory
	general *gnufit.Allocator
	data    *mem.Region // class pages
	info    *mem.Region // per-page descriptors
	state   *mem.Region // pool head + class table

	pagesBase uint64 // first class page (data base + guard page)
	infoBase  uint64
	stateBase uint64
	pages     uint64 // pages carved so far

	// freed marks small blocks currently on a class freelist. Host-side
	// only: consulting it performs no simulated references, so it is a
	// zero-cost assertion, not part of the simulated algorithm.
	freed map[uint64]bool

	scans uint64 // unthreading steps (alloc.Scanner)
}

// New creates a Vam-style allocator (and its embedded GNU G++
// fallback) on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:       m,
		general: gnufit.New(m),
		data:    m.NewRegion("vamfit-heap", 0),
		info:    m.NewRegion("vamfit-info", 0),
		state:   m.NewRegion("vamfit-state", mem.PageSize),
		freed:   map[uint64]bool{},
	}
	// Guard allotment: absorb the region reserve so page Sbrks are
	// page-aligned and offset arithmetic cannot reach the reserve.
	if _, err := a.data.Sbrk(mem.PageSize - mem.RegionReserve); err != nil {
		panic("vamfit: guard sbrk failed: " + err.Error())
	}
	a.pagesBase = a.data.Base() + mem.PageSize
	a.infoBase = a.info.Brk()
	stateBase, err := a.state.Sbrk(uint64(stateLen))
	if err != nil {
		panic("vamfit: state sbrk failed: " + err.Error())
	}
	a.stateBase = stateBase
	for rel := uint64(0); rel < stateLen; rel += mem.WordSize {
		m.WriteWord(stateBase+rel, 0)
	}
	return a
}

func init() {
	alloc.Register("vamfit", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "vamfit" }

// classSlot returns the state address of a class-table word.
func (a *Allocator) classSlot(class, word uint64) uint64 {
	return a.stateBase + sClasses + (class*classWords+word)*mem.WordSize
}

// descAddr returns the info address of a page descriptor word.
func (a *Allocator) descAddr(page uint64, word uint64) uint64 {
	return a.infoBase + (page*descWords+word)*mem.WordSize
}

// pageAddr returns the data address of a class page.
func (a *Allocator) pageAddr(page uint64) uint64 {
	return a.pagesBase + page*mem.PageSize
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	alloc.Charge(a.m, 8) // round + class computation + range test
	if n > MaxSmall {
		return a.general.Malloc(n)
	}
	s := mem.AlignUp(uint64(n), mem.WordSize)
	if s == 0 {
		s = mem.WordSize // Malloc(0) contract: one usable word
	}
	class := s/mem.WordSize - 1

	// Reap: bump the class's current page.
	if cur := a.m.ReadWord(a.classSlot(class, cPage)); cur != 0 {
		page := cur - 1
		bump := a.m.ReadWord(a.descAddr(page, dBump))
		if bump+s <= mem.PageSize {
			a.m.WriteWord(a.descAddr(page, dBump), bump+s)
			a.bookLive(page, 1)
			return a.pageAddr(page) + bump, nil
		}
		// Fully carved: stop probing it on every call.
		a.m.WriteWord(a.classSlot(class, cPage), 0)
	}

	// Recycle: pop the class freelist.
	if head := a.m.ReadWord(a.classSlot(class, cHead)); head != 0 {
		b := a.data.DecodePtr(head)
		a.m.WriteWord(a.classSlot(class, cHead), a.m.ReadWord(b))
		delete(a.freed, b)
		a.bookLive(mem.PageOf(b-a.pagesBase), 1)
		return b, nil
	}

	// New page: drained pool first, then the OS.
	page, err := a.newPage(s)
	if err != nil {
		return 0, err
	}
	a.m.WriteWord(a.classSlot(class, cPage), page+1)
	a.m.WriteWord(a.descAddr(page, dBump), s)
	a.bookLive(page, 1)
	return a.pageAddr(page), nil
}

// bookLive adds delta to a page's live count.
func (a *Allocator) bookLive(page uint64, delta uint64) {
	a.m.WriteWord(a.descAddr(page, dLive), a.m.ReadWord(a.descAddr(page, dLive))+delta)
}

// newPage produces an empty page dedicated to block size s: the
// drained-page pool if possible, a fresh OS page otherwise. Descriptor
// space grows before data space so page indices and descriptor offsets
// cannot desynchronise on a mid-pair Sbrk failure.
func (a *Allocator) newPage(s uint64) (uint64, error) {
	if head := a.m.ReadWord(a.stateBase + sPool); head != 0 {
		page := head - 1
		a.m.WriteWord(a.stateBase+sPool, a.m.ReadWord(a.descAddr(page, dNext)))
		a.m.WriteWord(a.descAddr(page, dSize), s)
		a.m.WriteWord(a.descAddr(page, dLive), 0)
		a.m.WriteWord(a.descAddr(page, dBump), 0)
		return page, nil
	}
	if _, err := a.info.Sbrk(descWords * mem.WordSize); err != nil {
		return 0, err
	}
	if _, err := a.data.Sbrk(mem.PageSize); err != nil {
		return 0, err
	}
	page := a.pages
	a.pages++
	a.m.WriteWord(a.descAddr(page, dSize), s)
	a.m.WriteWord(a.descAddr(page, dLive), 0)
	a.m.WriteWord(a.descAddr(page, dBump), 0)
	a.m.WriteWord(a.descAddr(page, dNext), 0)
	return page, nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	alloc.Charge(a.m, 8)
	if !a.data.Contains(p) {
		// Not a class page: the general allocator owns it (or it is
		// garbage, which the general allocator's tags reject).
		return a.general.Free(p)
	}
	if p < a.pagesBase {
		return alloc.ErrBadFree // guard allotment, never handed out
	}
	page := mem.PageOf(p - a.pagesBase)
	s := a.m.ReadWord(a.descAddr(page, dSize))
	if s == 0 {
		return alloc.ErrBadFree // uncarved or drained-pool page
	}
	rel := p - a.pageAddr(page)
	alloc.Charge(a.m, 6) // page/offset arithmetic
	if rel%s != 0 {
		return alloc.ErrBadFree // interior pointer
	}
	if rel >= a.m.ReadWord(a.descAddr(page, dBump)) {
		return alloc.ErrBadFree // past the carve frontier: never allocated
	}
	if a.freed[p] {
		return alloc.ErrBadFree // double free (host-side assertion)
	}
	class := s/mem.WordSize - 1
	a.m.WriteWord(p, a.m.ReadWord(a.classSlot(class, cHead)))
	a.m.WriteWord(a.classSlot(class, cHead), a.data.EncodePtr(p))
	a.freed[p] = true
	live := a.m.ReadWord(a.descAddr(page, dLive)) - 1
	a.m.WriteWord(a.descAddr(page, dLive), live)
	if live == 0 {
		a.release(class, page, s)
	}
	return nil
}

// release drains a page whose last live block was just freed: its
// blocks are unthreaded from the class freelist, the class's reap
// pointer is cleared if it pointed here, and the page joins the
// drained pool for reuse by any class.
func (a *Allocator) release(class, page, s uint64) {
	pb := a.pageAddr(page)
	bump := a.m.ReadWord(a.descAddr(page, dBump))
	// Unthread: walk the class freelist dropping nodes on this page.
	slot := a.classSlot(class, cHead)
	prev := uint64(0) // 0: head pointer lives in the class table
	cur := a.m.ReadWord(slot)
	for cur != 0 {
		a.scans++
		alloc.Charge(a.m, 3)
		b := a.data.DecodePtr(cur)
		next := a.m.ReadWord(b)
		if b >= pb && b < pb+mem.PageSize {
			if prev == 0 {
				a.m.WriteWord(slot, next)
			} else {
				a.m.WriteWord(a.data.DecodePtr(prev), next)
			}
		} else {
			prev = cur
		}
		cur = next
	}
	for rel := uint64(0); rel < bump; rel += s {
		delete(a.freed, pb+rel)
	}
	if a.m.ReadWord(a.classSlot(class, cPage)) == page+1 {
		a.m.WriteWord(a.classSlot(class, cPage), 0)
	}
	a.m.WriteWord(a.descAddr(page, dSize), 0)
	a.m.WriteWord(a.descAddr(page, dBump), 0)
	a.m.WriteWord(a.descAddr(page, dNext), a.m.ReadWord(a.stateBase+sPool))
	a.m.WriteWord(a.stateBase+sPool, page+1)
}

// The drain-time unthreading walk is vamfit's only search; the
// general-allocator fallback walks real freelists.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: freelist nodes examined while
// unthreading drained pages plus the embedded general allocator's
// steps.
func (a *Allocator) ScanSteps() uint64 { return a.scans + a.general.ScanSteps() }
