package vamfit

import (
	"errors"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

// Reap placement: consecutive allocations of one class are contiguous
// within a page — the locality property Vam is built around.
func TestReapContiguity(t *testing.T) {
	a, _ := newTestAlloc()
	var prev uint64
	for i := 0; i < 50; i++ {
		p, err := a.Malloc(24)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && p != prev+24 {
			t.Fatalf("alloc %d: %#x not contiguous after %#x", i, p, prev)
		}
		prev = p
	}
}

// Recycle placement: freed blocks are reused only after the current
// page is exhausted, and then in LIFO order.
func TestRecycleAfterReap(t *testing.T) {
	a, _ := newTestAlloc()
	s := uint64(64)
	perPage := mem.PageSize / s
	ptrs := make([]uint64, 0, perPage)
	for i := uint64(0); i < perPage; i++ {
		p, err := a.Malloc(uint32(s))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free two blocks, keep the rest live so the page does not drain.
	if err := a.Free(ptrs[3]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(ptrs[5]); err != nil {
		t.Fatal(err)
	}
	// The page is fully carved, so the next allocation must recycle the
	// most recently freed block.
	p, err := a.Malloc(uint32(s))
	if err != nil {
		t.Fatal(err)
	}
	if p != ptrs[5] {
		t.Errorf("recycled %#x, want most recently freed %#x", p, ptrs[5])
	}
}

// A drained page is returned to the pool and reused by another class.
func TestPageDrainAndCrossClassReuse(t *testing.T) {
	a, m := newTestAlloc()
	p1, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	page := mem.PageOf(p1 - a.pagesBase)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	foot := m.Footprint()
	// The drained page must satisfy a different class without growth.
	q, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.PageOf(q - a.pagesBase); got != page {
		t.Errorf("cross-class alloc landed on page %d, want drained page %d", got, page)
	}
	if got := m.Footprint(); got != foot {
		t.Errorf("footprint grew %d → %d despite pooled page", foot, got)
	}
	// Stale freelist entries from the drained page must not resurface.
	r, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if r == p1 || r == p2 {
		t.Errorf("stale block %#x resurfaced from drained page", r)
	}
}

// Exact bad-free detection: interior, past-frontier, header-free,
// double free, drained page.
func TestBadFrees(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p + mem.WordSize); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("interior free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(p + 40); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("past-frontier free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("double free: got %v, want ErrBadFree", err)
	}
	// p's page has drained; a free into the pooled page must fail.
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("free into drained page: got %v, want ErrBadFree", err)
	}
}

// Requests beyond MaxSmall go to the general allocator and free back
// through it.
func TestLargeFallback(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(MaxSmall + 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.data.Contains(p) {
		t.Errorf("large request landed in a class page")
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("large free: %v", err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("large double free: got %v, want ErrBadFree", err)
	}
}
