package locarena

import (
	"errors"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

// Hints steer placement: same-bucket hints pack onto shared pages,
// distant hints land in different arenas.
func TestHintSteering(t *testing.T) {
	a, _ := newTestAlloc()
	p0, err := a.MallocLocal(40, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.MallocLocal(40, 1<<BucketShift-1) // same bucket as 0
	if err != nil {
		t.Fatal(err)
	}
	if mem.PageOf(p0-a.pagesBase) != mem.PageOf(p1-a.pagesBase) {
		t.Errorf("nearby hints split across pages %d and %d",
			mem.PageOf(p0-a.pagesBase), mem.PageOf(p1-a.pagesBase))
	}
	p2, err := a.MallocLocal(40, 1<<BucketShift) // next bucket
	if err != nil {
		t.Fatal(err)
	}
	if mem.PageOf(p0-a.pagesBase) == mem.PageOf(p2-a.pagesBase) {
		t.Errorf("distant hints share page %d", mem.PageOf(p0-a.pagesBase))
	}
	// Buckets cycle: a hint NumBuckets bins away reuses bucket 0's arena.
	p3, err := a.MallocLocal(40, NumBuckets<<BucketShift)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PageOf(p0-a.pagesBase) != mem.PageOf(p3-a.pagesBase) {
		t.Errorf("wrapped hint left bucket 0's page")
	}
}

// Freed blocks are recycled only within their bucket and size bin.
func TestBucketLocalRecycling(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.MallocLocal(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// A different bucket must not receive the freed block.
	q, err := a.MallocLocal(40, 200)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Errorf("block %#x migrated between buckets", p)
	}
	// The same bucket and bin must.
	r, err := a.MallocLocal(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r != p {
		t.Errorf("same-bucket realloc got %#x, want recycled %#x", r, p)
	}
}

// Interior and double frees are rejected exactly, even when payload
// bytes are crafted to look like a live header (the host-side live-set
// assertion the package doc describes).
func TestExactBadFreeDetection(t *testing.T) {
	a, m := newTestAlloc()
	p, err := a.MallocLocal(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p + mem.WordSize); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("interior free: got %v, want ErrBadFree", err)
	}
	// Forge a live-looking header inside the payload: tag 0xa5,
	// bucket 1, chunk 8 — every simulated tag check passes, only the
	// live-set assertion can reject the free of the word after it.
	forged := tagLive<<24 | 1<<16 | 8
	m.WriteWord(p+mem.WordSize, uint64(forged))
	if err := a.Free(p + 2*mem.WordSize); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("forged-header interior free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("valid free after rejections: %v", err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("double free: got %v, want ErrBadFree", err)
	}
}

// Plain Malloc is MallocLocal with locality 0: the two produce the
// same address stream on fresh instances.
func TestMallocIsLocality0(t *testing.T) {
	a1, _ := newTestAlloc()
	a2, _ := newTestAlloc()
	for i := 0; i < 200; i++ {
		n := uint32(i%97 + 1)
		p1, err1 := a1.Malloc(n)
		p2, err2 := a2.MallocLocal(n, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("op %d: %v / %v", i, err1, err2)
		}
		if p1 != p2 {
			t.Fatalf("op %d: Malloc %#x != MallocLocal(0) %#x", i, p1, p2)
		}
		if i%3 == 0 {
			if a1.Free(p1) != nil || a2.Free(p2) != nil {
				t.Fatalf("op %d: free failed", i)
			}
		}
	}
}

// Requests beyond MaxSmall go to the general allocator and free back
// through it.
func TestLargeFallback(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.MallocLocal(MaxSmall+1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.data.Contains(p) {
		t.Errorf("large request landed in an arena page")
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("large free: %v", err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("large double free: got %v, want ErrBadFree", err)
	}
}
