// Package locarena implements a locality-hint arena allocator: the
// caller passes a locality id (an opaque phase/affinity integer) and
// placement is steered into distance-bucketed arenas, after the
// LocalityArenaAllocator sketch in SNIPPETS.md §1.
//
// Hints within 2^BucketShift of each other map to the same bucket, and
// buckets cycle modulo NumBuckets, so a long-running program's phases
// reuse arenas instead of growing an unbounded set. Each bucket owns
// its own pages: objects born in the same phase are packed together by
// a per-bucket bump pointer, and freed blocks return to per-bucket
// size-binned freelists (powers of two, BSD-style) so recycling never
// migrates a block between buckets. That is the whole bet: same-phase
// objects die and are revived together, so keeping them on the same
// pages and lines improves spatial locality the same way the paper's
// §4.4 allocator does with size segregation — but driven by the
// caller's knowledge instead of the request size.
//
// locarena implements alloc.LocalityHinter; plain Malloc is
// MallocLocal with locality 0, so hint-free callers see an ordinary
// single-arena allocator. Blocks carry a one-word header encoding a
// live/free tag, the owning bucket and the bin size, giving the usual
// tag-based double-free screening; on top of that a host-side live-set
// map (a zero-cost debug assertion, as in package custom) makes
// interior and double free detection exact even when a stale or
// adversarial pointer lands on payload bytes that happen to look like
// a live header — the bitmap-less arena's equivalent of bitfit's exact
// geometry check.
//
// Requests larger than MaxSmall go to an embedded GNU G++ general
// allocator (losing their hint), the same arrangement QUICKFIT uses.
package locarena

import (
	"math/bits"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/gnufit"
	"mallocsim/internal/mem"
)

const (
	// BucketShift collapses nearby hints: ids within 2^BucketShift of
	// each other share an arena bucket.
	BucketShift = 2
	// NumBuckets is the arena count; bucket indices cycle modulo this.
	NumBuckets = 32

	// headerSize is the one-word block header: tag | bucket | bin size.
	headerSize = mem.WordSize

	// minChunk and maxChunk bound the power-of-two bin sizes
	// (header + payload).
	minChunk = 8
	maxChunk = 1024
	numBins  = 8 // 8, 16, ..., 1024

	// MaxSmall is the largest payload served from arena pages.
	MaxSmall = maxChunk - headerSize

	// Header tags (bits 31..24; bucket in 23..16, chunk size in 15..0).
	tagLive = 0xa5
	tagFree = 0x5a

	// descWords is the per-page descriptor in the info region: dBucket
	// (owning arena) and dBump (carve frontier, bytes).
	descWords = 2
	dBucket   = 0
	dBump     = 1

	// State-region word offsets: per bucket a current reap page
	// (page index + 1; 0 = none) followed by numBins freelist heads.
	bucketWords = 1 + numBins
	bPage       = 0
	bBins       = 1
	stateLen    = NumBuckets * bucketWords * mem.WordSize
)

// Allocator is a locality-hint arena instance.
type Allocator struct {
	m       *mem.Memory
	general *gnufit.Allocator
	data    *mem.Region // arena pages
	info    *mem.Region // per-page descriptors
	state   *mem.Region // bucket table

	pagesBase uint64 // first arena page (data base + guard page)
	infoBase  uint64
	stateBase uint64
	pages     uint64 // pages carved so far

	// live marks payload addresses currently allocated. Host-side only:
	// consulting it performs no simulated references, so it is a
	// zero-cost assertion layered over the header-tag checks.
	live map[uint64]bool
}

// New creates a locality-arena allocator (and its embedded GNU G++
// fallback) on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:       m,
		general: gnufit.New(m),
		data:    m.NewRegion("locarena-heap", 0),
		info:    m.NewRegion("locarena-info", 0),
		state:   m.NewRegion("locarena-state", mem.PageSize),
		live:    map[uint64]bool{},
	}
	// Guard allotment: absorb the region reserve so page Sbrks are
	// page-aligned and offset arithmetic cannot reach the reserve.
	if _, err := a.data.Sbrk(mem.PageSize - mem.RegionReserve); err != nil {
		panic("locarena: guard sbrk failed: " + err.Error())
	}
	a.pagesBase = a.data.Base() + mem.PageSize
	a.infoBase = a.info.Brk()
	stateBase, err := a.state.Sbrk(uint64(stateLen))
	if err != nil {
		panic("locarena: state sbrk failed: " + err.Error())
	}
	a.stateBase = stateBase
	for rel := uint64(0); rel < stateLen; rel += mem.WordSize {
		m.WriteWord(stateBase+rel, 0)
	}
	return a
}

func init() {
	alloc.Register("locarena", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "locarena" }

// bucketOf maps a locality id to its arena bucket.
func bucketOf(locality uint32) uint64 {
	return uint64(locality>>BucketShift) % NumBuckets
}

// binOf returns the bin index and chunk size (header + payload)
// serving a payload of n bytes.
func binOf(n uint32) (uint64, uint64) {
	need := uint64(n) + headerSize
	if need < minChunk {
		need = minChunk
	}
	chunk := uint64(1) << bits.Len64(need-1)
	bin := uint64(bits.Len64(chunk)) - 4 // 8 → 0, 16 → 1, ...
	return bin, chunk
}

// bucketSlot returns the state address of a bucket-table word.
func (a *Allocator) bucketSlot(bucket, word uint64) uint64 {
	return a.stateBase + (bucket*bucketWords+word)*mem.WordSize
}

// descAddr returns the info address of a page descriptor word.
func (a *Allocator) descAddr(page uint64, word uint64) uint64 {
	return a.infoBase + (page*descWords+word)*mem.WordSize
}

// pageAddr returns the data address of an arena page.
func (a *Allocator) pageAddr(page uint64) uint64 {
	return a.pagesBase + page*mem.PageSize
}

// Malloc implements alloc.Allocator: an allocation with no locality
// information lands in bucket 0.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	return a.MallocLocal(n, 0)
}

// MallocLocal implements alloc.LocalityHinter.
func (a *Allocator) MallocLocal(n uint32, locality uint32) (uint64, error) {
	alloc.Charge(a.m, 10) // bucket hash + bin computation + range test
	if n > MaxSmall {
		return a.general.Malloc(n)
	}
	bucket := bucketOf(locality)
	bin, chunk := binOf(n)

	// Recycle within the bucket: same phase, same size bin.
	slot := a.bucketSlot(bucket, bBins+bin)
	if head := a.m.ReadWord(slot); head != 0 {
		b := a.data.DecodePtr(head)
		a.m.WriteWord(slot, a.m.ReadWord(b+headerSize))
		a.m.WriteWord(b, tagLive<<24|bucket<<16|chunk)
		a.live[b+headerSize] = true
		return b + headerSize, nil
	}

	// Reap: bump the bucket's current page.
	b, err := a.carve(bucket, chunk)
	if err != nil {
		return 0, err
	}
	a.m.WriteWord(b, tagLive<<24|bucket<<16|chunk)
	a.live[b+headerSize] = true
	return b + headerSize, nil
}

// carve takes a chunk from the bucket's current page, starting a fresh
// page when the frontier cannot fit it (the tail is abandoned, as in
// QUICKFIT's tail chunks: arena packing is the point, not utilisation).
func (a *Allocator) carve(bucket, chunk uint64) (uint64, error) {
	if cur := a.m.ReadWord(a.bucketSlot(bucket, bPage)); cur != 0 {
		page := cur - 1
		bump := a.m.ReadWord(a.descAddr(page, dBump))
		if bump+chunk <= mem.PageSize {
			a.m.WriteWord(a.descAddr(page, dBump), bump+chunk)
			return a.pageAddr(page) + bump, nil
		}
	}
	// Descriptor space grows before data space so page indices and
	// descriptor offsets cannot desynchronise on a mid-pair failure.
	if _, err := a.info.Sbrk(descWords * mem.WordSize); err != nil {
		return 0, err
	}
	if _, err := a.data.Sbrk(mem.PageSize); err != nil {
		return 0, err
	}
	page := a.pages
	a.pages++
	a.m.WriteWord(a.descAddr(page, dBucket), bucket)
	a.m.WriteWord(a.descAddr(page, dBump), chunk)
	a.m.WriteWord(a.bucketSlot(bucket, bPage), page+1)
	return a.pageAddr(page), nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	alloc.Charge(a.m, 8)
	if !a.data.Contains(p) {
		// Not an arena page: the general allocator owns it (or it is
		// garbage, which the general allocator's tags reject).
		return a.general.Free(p)
	}
	if p%mem.WordSize != 0 || p < a.pagesBase+headerSize {
		return alloc.ErrBadFree // unaligned, guard allotment, or headerless start
	}
	page := mem.PageOf(p - a.pagesBase)
	rel := p - a.pageAddr(page)
	if rel < headerSize {
		return alloc.ErrBadFree // page-straddling pointer: no header here
	}
	hdr := a.m.ReadWord(p - headerSize)
	tag := hdr >> 24
	bucket := (hdr >> 16) & 0xff
	chunk := hdr & 0xffff
	alloc.Charge(a.m, 6) // tag decode + range checks
	if tag == tagFree {
		return alloc.ErrBadFree // freed tag: double free
	}
	if tag != tagLive || bucket >= NumBuckets ||
		chunk < minChunk || chunk > maxChunk || chunk&(chunk-1) != 0 {
		return alloc.ErrBadFree // not a block header: interior or garbage
	}
	if a.m.ReadWord(a.descAddr(page, dBucket)) != bucket {
		return alloc.ErrBadFree // header claims a bucket this page is not in
	}
	if rel-headerSize+chunk > a.m.ReadWord(a.descAddr(page, dBump)) {
		return alloc.ErrBadFree // past the carve frontier: never allocated
	}
	if !a.live[p] {
		// Payload bytes impersonating a live header (or a stale
		// pointer): the host-side assertion makes the rejection exact.
		return alloc.ErrBadFree
	}
	bin, _ := binOf(uint32(chunk - headerSize))
	b := p - headerSize
	slot := a.bucketSlot(bucket, bBins+bin)
	a.m.WriteWord(b, tagFree<<24|bucket<<16|chunk)
	a.m.WriteWord(p, a.m.ReadWord(slot)) // link lives in the payload word
	a.m.WriteWord(slot, a.data.EncodePtr(b))
	delete(a.live, p)
	return nil
}

// Compile-time interface conformance.
var (
	_ alloc.Allocator      = (*Allocator)(nil)
	_ alloc.LocalityHinter = (*Allocator)(nil)
	_ alloc.Scanner        = (*Allocator)(nil)
)

// ScanSteps implements alloc.Scanner: the arena's bin pops never
// search, so only the embedded general allocator contributes.
func (a *Allocator) ScanSteps() uint64 { return a.general.ScanSteps() }
