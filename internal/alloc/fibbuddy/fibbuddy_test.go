package fibbuddy

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.RunOpts(t, func(m *mem.Memory) alloc.Allocator { return New(m) },
		alloctest.Options{MaxSize: uint32(ArenaSize) - 8})
}

func TestSizeSequence(t *testing.T) {
	s := SizeClasses()
	if s[0] != 16 || s[1] != 24 {
		t.Fatalf("seed sizes: %v", s[:2])
	}
	for k := 2; k < len(s); k++ {
		if s[k] != s[k-1]+s[k-2] {
			t.Fatalf("not Fibonacci at %d: %v", k, s[:k+1])
		}
	}
	// Golden-ratio growth bounds worst-case internal fragmentation well
	// below binary buddy's 2x.
	for k := 4; k < len(s); k++ {
		ratio := float64(s[k]) / float64(s[k-1])
		if ratio > 1.67 || ratio < 1.55 {
			t.Errorf("ratio at order %d: %.3f", k, ratio)
		}
	}
}

func TestBlockSize(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint64
	}{
		{1, 16}, {12, 16}, {13, 24}, {20, 24}, {21, 40}, {36, 40},
		{37, 64}, {60, 64}, {100, 104}, {101, 168},
	}
	for _, c := range cases {
		got, err := BlockSize(c.n)
		if err != nil || got != c.want {
			t.Errorf("BlockSize(%d) = %d,%v want %d", c.n, got, err, c.want)
		}
	}
	if _, err := BlockSize(uint32(ArenaSize)); err == nil {
		t.Error("oversize request must fail")
	}
}

func TestTighterThanBinary(t *testing.T) {
	// The selling point: a 70-byte request costs a 104-byte Fibonacci
	// block versus binary buddy's 128.
	got, _ := BlockSize(70)
	if got != 104 {
		t.Errorf("BlockSize(70) = %d, want 104", got)
	}
}

func TestFullMergeRestoresArena(t *testing.T) {
	a, m := newTestAlloc()
	// Fill one arena with minimum blocks, free them all (random order),
	// then allocate an arena-sized block without heap growth.
	var ptrs []uint64
	for {
		before := m.Footprint()
		p, err := a.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if m.Footprint() != before && len(ptrs) > 0 {
			// Second arena started: put the straw back and stop.
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
			break
		}
		ptrs = append(ptrs, p)
	}
	foot := m.Footprint()
	r := rng.New(3)
	for len(ptrs) > 0 {
		i := r.Intn(len(ptrs))
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
		ptrs[i] = ptrs[len(ptrs)-1]
		ptrs = ptrs[:len(ptrs)-1]
	}
	if _, err := a.Malloc(uint32(ArenaSize) - 8); err != nil {
		t.Fatalf("arena did not fully coalesce: %v", err)
	}
	if m.Footprint() != foot {
		t.Errorf("footprint grew %d -> %d despite full merge", foot, m.Footprint())
	}
	_, _, splits, merges := a.Stats()
	if splits == 0 || merges == 0 {
		t.Errorf("splits=%d merges=%d", splits, merges)
	}
}

func TestUnequalBuddies(t *testing.T) {
	a, _ := newTestAlloc()
	// Allocating a near-arena block then a smaller one exercises the
	// unequal split: sizes must be Fibonacci neighbours.
	p1, err := a.Malloc(30000) // order with F >= 30004: 33448
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(15000) // the 20672 right part... or fresh split
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlap")
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	// After both frees the arena is whole again.
	if _, err := a.Malloc(uint32(ArenaSize) - 8); err != nil {
		t.Fatalf("merge across unequal buddies failed: %v", err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAlloc()
	p, _ := a.Malloc(100)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free accepted")
	}
}

func TestChurnStaysBounded(t *testing.T) {
	a, m := newTestAlloc()
	r := rng.New(11)
	var live []uint64
	peak := uint64(0)
	for op := 0; op < 20000; op++ {
		if len(live) > 64 || (len(live) > 0 && r.Bool(0.5)) {
			i := r.Intn(len(live))
			if err := a.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p, err := a.Malloc(uint32(8 + r.Intn(2000)))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		if m.Footprint() > peak {
			peak = m.Footprint()
		}
	}
	// 64 live objects of <= 2 KB fit comfortably in a handful of arenas.
	if peak > 12*ArenaSize {
		t.Errorf("churn footprint peaked at %d (%d arenas)", peak, peak/ArenaSize)
	}
}
