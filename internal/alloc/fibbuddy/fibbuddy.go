// Package fibbuddy implements a Fibonacci buddy-system allocator — the
// second buddy method the paper's §2.1 taxonomy names ("buddy-system
// methods (e.g., binary-buddy and Fibonacci)").
//
// Block sizes follow a Fibonacci sequence seeded at 16/24 bytes, so
// consecutive sizes differ by the golden ratio (~1.62×) instead of
// binary buddy's 2×, roughly halving worst-case internal fragmentation.
// The price is bookkeeping: a block of order k splits into *unequal*
// buddies of orders k-1 (left) and k-2 (right), and locating a block's
// buddy requires knowing whether it is a left or right part. We use
// Hinds' classic scheme: each header carries a left-buddy count (LBC).
// Splitting gives the left part LBC+1 and the right part LBC 0; a
// block with LBC > 0 is a left part whose buddy (order k-1) lies at
// addr + F(k), and a block with LBC 0 is a right part whose buddy
// (order k+1) lies at addr − F(k+1). Arena-sized root blocks carry a
// root flag and never merge further.
//
// Header word layout: 0xFB magic byte | LBC | flags+order.
// Free blocks keep doubly-linked freelist pointers in their payload.
package fibbuddy

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/mem"
)

// sizes is the Fibonacci size sequence; sizes[k] = sizes[k-1]+sizes[k-2].
var sizes = buildSizes()

// MaxOrder is the arena order; requests above sizes[MaxOrder]-4 fail.
const MaxOrder = 18

func buildSizes() []uint64 {
	s := make([]uint64, MaxOrder+1)
	s[0], s[1] = 16, 24
	for k := 2; k <= MaxOrder; k++ {
		s[k] = s[k-1] + s[k-2]
	}
	return s
}

// ArenaSize is the root block size carved per sbrk (sizes[MaxOrder]).
var ArenaSize = sizes[MaxOrder]

// Header encoding.
const (
	headerSize = mem.WordSize

	hdrMagic     = 0xFB000000
	hdrMagicMask = 0xFF000000
	hdrAlloc     = 1 << 0
	hdrRoot      = 1 << 7
	orderShift   = 1
	orderMask    = 0x3E // 5 bits at bit 1
	lbcShift     = 8
	lbcMask      = 0x3F << lbcShift
)

func packHdr(order int, lbc uint64, allocated, root bool) uint64 {
	h := uint64(hdrMagic) | uint64(order)<<orderShift | lbc<<lbcShift
	if allocated {
		h |= hdrAlloc
	}
	if root {
		h |= hdrRoot
	}
	return h
}

// Allocator is a Fibonacci buddy instance.
type Allocator struct {
	m     *mem.Memory
	data  *mem.Region
	state *mem.Region

	stateBase uint64
	low       uint64 // first block address

	allocs, frees  uint64
	splits, merges uint64
}

// New creates a Fibonacci buddy allocator with its own regions on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:     m,
		data:  m.NewRegion("fibbuddy-heap", 0),
		state: m.NewRegion("fibbuddy-state", mem.PageSize),
	}
	base, err := a.state.Sbrk(uint64(MaxOrder+1) * mem.WordSize)
	if err != nil {
		panic("fibbuddy: state sbrk failed: " + err.Error())
	}
	a.stateBase = base
	for k := 0; k <= MaxOrder; k++ {
		m.WriteWord(a.headSlot(k), 0)
	}
	a.low = a.data.Brk()
	return a
}

func init() {
	alloc.Register("fibbuddy", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "fibbuddy" }

// BlockSize returns the Fibonacci block consumed by an n-byte request.
func BlockSize(n uint32) (uint64, error) {
	need := uint64(n) + headerSize
	for _, s := range sizes {
		if s >= need {
			return s, nil
		}
	}
	return 0, alloc.ErrTooLarge
}

func orderFor(n uint32) (int, error) {
	need := uint64(n) + headerSize
	for k, s := range sizes {
		if s >= need {
			return k, nil
		}
	}
	return 0, alloc.ErrTooLarge
}

func (a *Allocator) headSlot(order int) uint64 {
	return a.stateBase + uint64(order)*mem.WordSize
}

// Freelist links live in free payloads: next at +4, prev at +8 (the
// 16-byte minimum block holds header + both).
func (a *Allocator) next(b uint64) uint64 { return a.data.DecodePtr(a.m.ReadWord(b + mem.WordSize)) }
func (a *Allocator) prev(b uint64) uint64 { return a.data.DecodePtr(a.m.ReadWord(b + 2*mem.WordSize)) }
func (a *Allocator) setNext(b, v uint64)  { a.m.WriteWord(b+mem.WordSize, a.data.EncodePtr(v)) }
func (a *Allocator) setPrev(b, v uint64)  { a.m.WriteWord(b+2*mem.WordSize, a.data.EncodePtr(v)) }

func (a *Allocator) pushFree(b uint64, order int, lbc uint64, root bool) {
	a.m.WriteWord(b, packHdr(order, lbc, false, root))
	slot := a.headSlot(order)
	head := a.m.ReadWord(slot)
	a.setNext(b, a.data.DecodePtr(head))
	a.setPrev(b, 0)
	if head != 0 {
		a.setPrev(a.data.DecodePtr(head), b)
	}
	a.m.WriteWord(slot, a.data.EncodePtr(b))
}

func (a *Allocator) popFree(order int) uint64 {
	slot := a.headSlot(order)
	head := a.m.ReadWord(slot)
	if head == 0 {
		return 0
	}
	b := a.data.DecodePtr(head)
	next := a.next(b)
	a.m.WriteWord(slot, a.data.EncodePtr(next))
	if next != 0 {
		a.setPrev(next, 0)
	}
	return b
}

func (a *Allocator) unlink(b uint64, order int) {
	next, prev := a.next(b), a.prev(b)
	if prev == 0 {
		a.m.WriteWord(a.headSlot(order), a.data.EncodePtr(next))
	} else {
		a.setNext(prev, next)
	}
	if next != 0 {
		a.setPrev(next, prev)
	}
}

func hdrOrder(h uint64) int  { return int(h&orderMask) >> orderShift }
func hdrLBC(h uint64) uint64 { return (h & lbcMask) >> lbcShift }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, 10)
	if n == 0 {
		n = mem.WordSize // Malloc(0) contract: one usable word
	}
	order, err := orderFor(n)
	if err != nil {
		return 0, err
	}
	b, k, lbc, root := uint64(0), order, uint64(0), false
	for ; k <= MaxOrder; k++ {
		alloc.Charge(a.m, 2)
		if b = a.popFree(k); b != 0 {
			h := a.m.ReadWord(b)
			lbc, root = hdrLBC(h), h&hdrRoot != 0
			break
		}
	}
	if b == 0 {
		addr, err := a.data.Sbrk(ArenaSize)
		if err != nil {
			return 0, err
		}
		b, k, lbc, root = addr, MaxOrder, 0, true
	}
	// Split down: a block of order k yields a left part of order k-1
	// (kept) and a right part of order k-2 (freed), until the left part
	// would no longer satisfy the request.
	for k > order && k >= 2 && sizes[k-1] >= uint64(n)+headerSize {
		a.splits++
		alloc.Charge(a.m, 4)
		right := b + sizes[k-1]
		a.pushFree(right, k-2, 0, false)
		k--
		lbc++
		root = false
	}
	a.m.WriteWord(b, packHdr(k, lbc, true, root))
	return b + headerSize, nil
}

// Free implements alloc.Allocator, merging buddies via Hinds' LBC
// algorithm.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, 10)
	if p%mem.WordSize != 0 || p < a.low+headerSize || p >= a.data.Brk() {
		return alloc.ErrBadFree
	}
	b := p - headerSize
	h := a.m.ReadWord(b)
	if h&hdrMagicMask != hdrMagic || h&hdrAlloc == 0 {
		return alloc.ErrBadFree
	}
	order := hdrOrder(h)
	lbc := hdrLBC(h)
	root := h&hdrRoot != 0
	if order > MaxOrder {
		return alloc.ErrBadFree
	}
	// Clear the alloc bit before merging. When this block merges into a
	// left buddy at a lower address, only the merged base gets a fresh
	// header; without this write the freed block's own header kept its
	// alloc bit, so a double free passed the checks above and re-linked
	// a block interior to a larger free one.
	a.m.WriteWord(b, packHdr(order, lbc, false, root))

	for !root {
		alloc.Charge(a.m, 5)
		if lbc > 0 {
			// Left part: the right buddy (order-1) sits at b + F(order).
			buddy := b + sizes[order]
			if buddy >= a.data.Brk() {
				break
			}
			bh := a.m.ReadWord(buddy)
			if bh&hdrMagicMask != hdrMagic || bh&hdrAlloc != 0 ||
				hdrOrder(bh) != order-1 || bh&hdrRoot != 0 {
				break
			}
			a.merges++
			a.unlink(buddy, order-1)
			order++
			lbc--
			root = lbc == 0 && order == MaxOrder
		} else {
			// Right part: the left buddy (order+1) sits at b − F(order+1).
			if order+1 > MaxOrder || b < a.low+sizes[order+1] {
				break
			}
			buddy := b - sizes[order+1]
			bh := a.m.ReadWord(buddy)
			if bh&hdrMagicMask != hdrMagic || bh&hdrAlloc != 0 || hdrOrder(bh) != order+1 {
				break
			}
			a.merges++
			a.unlink(buddy, order+1)
			b = buddy
			order += 2
			lbc = hdrLBC(bh) - 1
			root = bh&hdrRoot != 0 || (lbc == 0 && order == MaxOrder)
		}
	}
	a.pushFree(b, order, lbc, root)
	return nil
}

// Stats reports operation and split/merge counts.
func (a *Allocator) Stats() (allocs, frees, splits, merges uint64) {
	return a.allocs, a.frees, a.splits, a.merges
}

// SizeClasses returns the Fibonacci block sizes, for tests and docs.
func SizeClasses() []uint64 {
	out := make([]uint64, len(sizes))
	copy(out, sizes)
	return out
}
