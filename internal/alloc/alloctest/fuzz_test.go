package alloctest

import (
	"testing"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// FuzzAllocatorOps drives fuzzer-chosen malloc/free sequences through
// every registered allocator, checking the universal invariants: live
// allocations never overlap, valid frees succeed, and nothing panics.
// Byte stream encoding: each op byte b —
//
//	b % 3 == 0: free the (b/3 mod len(live))-th live block
//	otherwise:  malloc of size (b*37 mod 997)+1
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5, 6, 9, 200, 255, 0, 0})
	f.Add([]byte{7, 7, 7, 7, 7, 7})
	f.Add([]byte{0})
	names := []string{"firstfit", "gnufit", "bsd", "gnulocal", "quickfit",
		"custom", "buddy", "fibbuddy", "lifetime", "bestfit",
		"bitfit", "vamfit", "locarena"}
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		for _, name := range names {
			m := mem.New(trace.Discard, &cost.Meter{})
			a, err := alloc.New(name, m)
			if err != nil {
				t.Fatal(err)
			}
			type blk struct {
				addr uint64
				size uint32
			}
			var live []blk
			for _, b := range ops {
				if b%3 == 0 && len(live) > 0 {
					i := int(b/3) % len(live)
					if err := a.Free(live[i].addr); err != nil {
						t.Fatalf("%s: free of live block: %v", name, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				n := uint32(b)*37%997 + 1
				p, err := a.Malloc(n)
				if err != nil {
					t.Fatalf("%s: malloc(%d): %v", name, n, err)
				}
				for _, l := range live {
					if p < l.addr+uint64(l.size) && l.addr < p+uint64(n) {
						t.Fatalf("%s: overlap [%#x,+%d) vs [%#x,+%d)", name, p, n, l.addr, l.size)
					}
				}
				live = append(live, blk{p, n})
			}
			for _, l := range live {
				if err := a.Free(l.addr); err != nil {
					t.Fatalf("%s: final free: %v", name, err)
				}
			}
		}
	})
}
