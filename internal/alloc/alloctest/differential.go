package alloctest

// Differential replay: drive one recorded operation trace through many
// allocator implementations and compare their *error behaviour*. The
// allocator contract (see alloc.Allocator) pins down not just success
// cases but failure classes — zero-size requests succeed, invalid frees
// are alloc.ErrBadFree, capacity failures are alloc.ErrTooLarge or wrap
// mem.ErrOutOfMemory — so two conforming allocators replaying the same
// trace must produce the same outcome class at every operation, even
// though their addresses, layouts and exact capacity limits differ.

import (
	"errors"
	"fmt"
	"sort"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/optrace"
	"mallocsim/internal/trace"
)

// Outcome is the contract-level classification of one operation's
// result. Capacity merges alloc.ErrTooLarge with wrapped
// mem.ErrOutOfMemory: where an allocator's direct-service limit falls
// (the buddy arena order, a size-class table) is policy, but that an
// oversized or unsatisfiable request fails with a capacity-class error
// is contract.
type Outcome uint8

const (
	// OutcomeOK: the operation succeeded.
	OutcomeOK Outcome = iota
	// OutcomeBadFree: rejected with alloc.ErrBadFree.
	OutcomeBadFree
	// OutcomeCapacity: failed with alloc.ErrTooLarge or an error
	// wrapping mem.ErrOutOfMemory.
	OutcomeCapacity
	// OutcomeOther: any other error — always a contract breach.
	OutcomeOther
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBadFree:
		return "bad-free"
	case OutcomeCapacity:
		return "capacity"
	default:
		return "other"
	}
}

// Classify maps an operation error to its Outcome class.
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, alloc.ErrBadFree):
		return OutcomeBadFree
	case errors.Is(err, alloc.ErrTooLarge), errors.Is(err, mem.ErrOutOfMemory):
		return OutcomeCapacity
	default:
		return OutcomeOther
	}
}

// ReplayOutcomes drives ops through a fresh allocator built by f on a
// fresh Memory (with DefaultRegionLimit set to limit when non-zero) and
// returns one Outcome per op. Unlike optrace.Replay it is deliberately
// tolerant — errors are recorded, not fatal — so traces may contain
// adversarial operations:
//
//   - a free of an ID whose malloc failed, or never appeared, replays as
//     Free(0) (a null free every allocator must reject);
//   - a free of an already-freed ID replays as a Free of the former
//     address — a deliberate double free.
func ReplayOutcomes(f Factory, ops []optrace.Op, limit uint64) []Outcome {
	m := mem.New(trace.Discard, &cost.Meter{})
	if limit != 0 {
		m.DefaultRegionLimit = limit
	}
	a := f(m)
	live := map[uint64]uint64{}     // id → address while allocated
	lastAddr := map[uint64]uint64{} // id → last address, surviving free
	out := make([]Outcome, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case optrace.OpMalloc:
			var p uint64
			var err error
			if sa, ok := a.(alloc.SiteAllocator); ok {
				p, err = sa.MallocSite(op.Size, op.Site)
			} else {
				p, err = a.Malloc(op.Size)
			}
			if err == nil {
				live[op.ID] = p
				lastAddr[op.ID] = p
			}
			out = append(out, Classify(err))
		case optrace.OpFree:
			var target uint64
			if p, ok := live[op.ID]; ok {
				target = p
				delete(live, op.ID)
			} else if p, ok := lastAddr[op.ID]; ok {
				target = p
			}
			out = append(out, Classify(a.Free(target)))
		}
	}
	return out
}

// Mismatch reports one operation where two allocators' outcome classes
// diverged.
type Mismatch struct {
	// Index is the op's position in the trace.
	Index int
	// Op is the diverging operation.
	Op optrace.Op
	// Reference names the baseline allocator and Got the diverging one,
	// with their outcome classes.
	Reference, Got string
}

func (d Mismatch) String() string {
	kind := "malloc"
	if d.Op.Kind == optrace.OpFree {
		kind = "free"
	}
	return fmt.Sprintf("op %d (%s id=%d size=%d): %s vs %s",
		d.Index, kind, d.Op.ID, d.Op.Size, d.Reference, d.Got)
}

// DiffReplay replays ops through every factory and compares outcome
// classes op-by-op. The first name in sorted order is the reference;
// each divergence from it is reported once per (allocator, op). A nil
// result means every allocator exhibited identical error behaviour.
func DiffReplay(factories map[string]Factory, ops []optrace.Op, limit uint64) []Mismatch {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	ref := names[0]
	refOut := ReplayOutcomes(factories[ref], ops, limit)
	var diffs []Mismatch
	for _, name := range names[1:] {
		got := ReplayOutcomes(factories[name], ops, limit)
		for i := range ops {
			if got[i] != refOut[i] {
				diffs = append(diffs, Mismatch{
					Index:     i,
					Op:        ops[i],
					Reference: fmt.Sprintf("%s=%s", ref, refOut[i]),
					Got:       fmt.Sprintf("%s=%s", name, got[i]),
				})
			}
		}
	}
	return diffs
}
