// Package alloctest provides a conformance battery run against every
// allocator implementation. It checks the invariants any malloc must
// uphold regardless of policy: live allocations never overlap, returned
// addresses are aligned, allocator metadata never intrudes on live
// payloads, memory freed is memory reused (bounded footprint under
// steady-state churn), and bad frees are rejected without panicking.
package alloctest

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/shadow"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/rng"
	"mallocsim/internal/trace"
)

// Factory builds a fresh allocator on a fresh Memory.
type Factory func(m *mem.Memory) alloc.Allocator

// Options tunes the battery for deliberately degraded variants.
type Options struct {
	// SkipSteadyState disables the sawtooth steady-state footprint
	// check, for allocators whose whole point is to demonstrate
	// fragmentation (e.g. first fit without coalescing).
	SkipSteadyState bool
	// MaxSize caps request sizes for allocators with a bounded maximum
	// block (the buddy system's arena order). Zero means unlimited.
	MaxSize uint32
}

func (o Options) clamp(n uint32) uint32 {
	if o.MaxSize != 0 && n > o.MaxSize {
		return o.MaxSize
	}
	return n
}

// Run executes the conformance battery against the factory.
func Run(t *testing.T, f Factory) { RunOpts(t, f, Options{}) }

// RunOpts executes the conformance battery with options.
func RunOpts(t *testing.T, f Factory, o Options) {
	t.Run("Alignment", func(t *testing.T) { testAlignment(t, f) })
	t.Run("NoOverlap", func(t *testing.T) { testNoOverlap(t, f) })
	t.Run("PayloadIntegrity", func(t *testing.T) { testPayloadIntegrity(t, f) })
	t.Run("BoundedChurn", func(t *testing.T) { testBoundedChurn(t, f) })
	t.Run("BadFree", func(t *testing.T) { testBadFree(t, f) })
	t.Run("ZeroSize", func(t *testing.T) { testZeroSize(t, f) })
	t.Run("DoubleFree", func(t *testing.T) { testDoubleFree(t, f) })
	t.Run("InteriorFree", func(t *testing.T) { testInteriorFree(t, f) })
	t.Run("OutOfMemory", func(t *testing.T) { testOutOfMemory(t, f) })
	t.Run("ShadowOracle", func(t *testing.T) { testShadowOracle(t, f, o) })
	t.Run("LocalityHints", func(t *testing.T) { testLocalityHints(t, f) })
	if !o.SkipSteadyState {
		t.Run("SawtoothPattern", func(t *testing.T) { testSawtooth(t, f) })
	}
	t.Run("LargeObjectStress", func(t *testing.T) { testLargeObjects(t, f, o) })
	t.Run("QuickRandomOps", func(t *testing.T) { testQuickRandomOps(t, f) })
	t.Run("Determinism", func(t *testing.T) { testDeterminism(t, f) })
}

func newAlloc(f Factory) (alloc.Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return f(m), m
}

type block struct {
	addr uint64
	size uint32
}

func overlaps(a block, b block) bool {
	return a.addr < b.addr+uint64(b.size) && b.addr < a.addr+uint64(a.size)
}

func testAlignment(t *testing.T, f Factory) {
	a, _ := newAlloc(f)
	for _, n := range []uint32{1, 2, 3, 4, 5, 8, 12, 13, 24, 31, 32, 33, 64, 100, 4096, 10000} {
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("Malloc(%d): %v", n, err)
		}
		if p == 0 {
			t.Fatalf("Malloc(%d) returned null", n)
		}
		if p%mem.WordSize != 0 {
			t.Errorf("Malloc(%d) = %#x: not word-aligned", n, p)
		}
	}
}

func testNoOverlap(t *testing.T, f Factory) {
	a, _ := newAlloc(f)
	r := rng.New(42)
	var live []block
	for op := 0; op < 4000; op++ {
		if len(live) > 0 && (r.Bool(0.45) || len(live) > 300) {
			i := r.Intn(len(live))
			if err := a.Free(live[i].addr); err != nil {
				t.Fatalf("op %d: Free(%#x) of live block: %v", op, live[i].addr, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		var n uint32
		switch r.Intn(10) {
		case 0:
			n = uint32(1 + r.Intn(8000)) // occasionally large
		case 1, 2:
			n = uint32(256 + r.Intn(1024))
		default:
			n = uint32(1 + r.Intn(200))
		}
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("op %d: Malloc(%d): %v", op, n, err)
		}
		nb := block{p, n}
		for _, b := range live {
			if overlaps(nb, b) {
				t.Fatalf("op %d: Malloc(%d)=[%#x,+%d) overlaps live [%#x,+%d)",
					op, n, nb.addr, nb.size, b.addr, b.size)
			}
		}
		live = append(live, nb)
	}
	for _, b := range live {
		if err := a.Free(b.addr); err != nil {
			t.Fatalf("final Free(%#x): %v", b.addr, err)
		}
	}
}

// testPayloadIntegrity writes a pattern into every full word of each
// live payload and verifies it just before freeing: the allocator must
// never write into a live allocation (boundary tags and links live
// outside the payload or only inside free blocks).
func testPayloadIntegrity(t *testing.T, f Factory) {
	a, m := newAlloc(f)
	r := rng.New(7)
	pattern := func(addr uint64) uint64 { return (addr * 2654435761) & 0xffffffff }
	fill := func(b block) {
		for off := uint64(0); off+mem.WordSize <= uint64(b.size); off += mem.WordSize {
			m.WriteWord(b.addr+off, pattern(b.addr+off))
		}
	}
	check := func(b block) {
		for off := uint64(0); off+mem.WordSize <= uint64(b.size); off += mem.WordSize {
			if got := m.ReadWord(b.addr + off); got != pattern(b.addr+off) {
				t.Fatalf("payload [%#x,+%d) corrupted at +%d: got %#x", b.addr, b.size, off, got)
			}
		}
	}
	var live []block
	for op := 0; op < 1500; op++ {
		if len(live) > 0 && r.Bool(0.48) {
			i := r.Intn(len(live))
			check(live[i])
			if err := a.Free(live[i].addr); err != nil {
				t.Fatalf("op %d: Free: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		n := uint32(4 + r.Intn(300))
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("op %d: Malloc(%d): %v", op, n, err)
		}
		b := block{p, n}
		fill(b)
		live = append(live, b)
	}
	for _, b := range live {
		check(b)
	}
}

// testBoundedChurn verifies freed memory is actually reused: a steady
// alloc/free cycle must not grow the heap without bound.
func testBoundedChurn(t *testing.T, f Factory) {
	a, m := newAlloc(f)
	warmup := func() uint64 {
		for i := 0; i < 200; i++ {
			p, err := a.Malloc(24)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		return m.Footprint()
	}
	base := warmup()
	for i := 0; i < 5000; i++ {
		p, err := a.Malloc(24)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if grew := m.Footprint() - base; grew > 64*1024 {
		t.Errorf("steady-state churn grew the heap by %d bytes (footprint %d)", grew, m.Footprint())
	}
}

func testBadFree(t *testing.T, f Factory) {
	a, _ := newAlloc(f)
	p, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []uint64{0, 1, 2, 3, 0x7, 1 << 60, p + 1} {
		if err := a.Free(bad); err == nil {
			t.Errorf("Free(%#x): expected error, got nil", bad)
		}
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("Free of valid pointer: %v", err)
	}
}

// testZeroSize checks the Malloc(0) contract: a distinct, word-aligned,
// freeable block of at least one usable word per call.
func testZeroSize(t *testing.T, f Factory) {
	a, m := newAlloc(f)
	var ptrs []uint64
	for i := 0; i < 8; i++ {
		p, err := a.Malloc(0)
		if err != nil {
			t.Fatalf("Malloc(0) #%d: %v", i, err)
		}
		if p == 0 {
			t.Fatalf("Malloc(0) #%d returned null", i)
		}
		if p%mem.WordSize != 0 {
			t.Errorf("Malloc(0) #%d = %#x: not word-aligned", i, p)
		}
		for _, q := range ptrs {
			if p < q+mem.WordSize && q < p+mem.WordSize {
				t.Fatalf("Malloc(0) blocks overlap: %#x vs %#x", p, q)
			}
		}
		// The one usable word must hold app data (and survive until the
		// integrity pass below).
		m.WriteWord(p, (p*2654435761)&0xffffffff)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if got := m.ReadWord(p); got != (p*2654435761)&0xffffffff {
			t.Errorf("zero-size payload at %#x corrupted: got %#x", p, got)
		}
		if err := a.Free(p); err != nil {
			t.Fatalf("Free of zero-size block %#x: %v", p, err)
		}
	}
}

// testDoubleFree checks that a second free of the same base is rejected
// with alloc.ErrBadFree and corrupts nothing — including when the first
// free coalesced the block into a neighbour.
func testDoubleFree(t *testing.T, f Factory) {
	a, _ := newAlloc(f)

	// Immediate double free, isolated block.
	p, err := a.Malloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free accepted")
	} else if !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("double free rejected with %v, want alloc.ErrBadFree", err)
	}

	// Coalescing patterns: three adjacent-ish blocks, freed so that the
	// middle and left merge where the allocator coalesces at all; every
	// re-free must still be rejected.
	var blocks [3]uint64
	for i := range blocks {
		if blocks[i], err = a.Malloc(48); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Free(blocks[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(blocks[0]); err != nil {
		t.Fatal(err)
	}
	for _, q := range blocks[:2] {
		if err := a.Free(q); err == nil {
			t.Fatalf("double free of %#x after coalescing accepted", q)
		} else if !errors.Is(err, alloc.ErrBadFree) {
			t.Errorf("double free of %#x rejected with %v, want alloc.ErrBadFree", q, err)
		}
	}
	// State must be intact: the survivor frees cleanly and churn works.
	if err := a.Free(blocks[2]); err != nil {
		t.Fatalf("Free of untouched neighbour after double frees: %v", err)
	}
	for i := 0; i < 50; i++ {
		q, err := a.Malloc(48)
		if err != nil {
			t.Fatalf("Malloc after double frees: %v", err)
		}
		if err := a.Free(q); err != nil {
			t.Fatalf("Free after double frees: %v", err)
		}
	}
}

// testLocalityHints exercises the alloc.LocalityHinter contract on
// allocators that implement it (everything else skips): hinted
// allocation upholds the full base contract — distinct non-overlapping
// word-aligned blocks, intact payloads, clean frees, exact double-free
// rejection — across arbitrary hint values, hint 0 is byte-identical
// to plain Malloc, and the hinted op stream is deterministic.
func testLocalityHints(t *testing.T, f Factory) {
	a, m := newAlloc(f)
	lh, ok := a.(alloc.LocalityHinter)
	if !ok {
		t.Skip("allocator does not implement alloc.LocalityHinter")
	}

	// Hinted churn across many buckets, with payload patterns.
	r := rng.New(99)
	type hblock struct {
		block
		pat uint64
	}
	var live []hblock
	for op := 0; op < 3000; op++ {
		if len(live) > 0 && (r.Bool(0.45) || len(live) > 200) {
			i := r.Intn(len(live))
			b := live[i]
			if got := m.ReadWord(b.addr); got != b.pat {
				t.Fatalf("op %d: payload at %#x corrupted: got %#x want %#x", op, b.addr, got, b.pat)
			}
			if err := a.Free(b.addr); err != nil {
				t.Fatalf("op %d: Free(%#x): %v", op, b.addr, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		n := uint32(1 + r.Intn(300))
		hint := uint32(r.Intn(1 << 14))
		p, err := lh.MallocLocal(n, hint)
		if err != nil {
			t.Fatalf("op %d: MallocLocal(%d, %d): %v", op, n, hint, err)
		}
		if p == 0 || p%mem.WordSize != 0 {
			t.Fatalf("op %d: MallocLocal(%d, %d) = %#x: null or unaligned", op, n, hint, p)
		}
		nb := hblock{block{addr: p, size: n}, (p * 2654435761) & 0xffffffff}
		for _, b := range live {
			if overlaps(nb.block, b.block) {
				t.Fatalf("op %d: hinted block %#x+%d overlaps live %#x+%d",
					op, nb.addr, nb.size, b.addr, b.size)
			}
		}
		m.WriteWord(p, nb.pat)
		live = append(live, nb)
	}
	for _, b := range live {
		if err := a.Free(b.addr); err != nil {
			t.Fatalf("drain Free(%#x): %v", b.addr, err)
		}
		if err := a.Free(b.addr); !errors.Is(err, alloc.ErrBadFree) {
			t.Fatalf("double free of hinted block %#x: got %v, want ErrBadFree", b.addr, err)
		}
	}

	// Hint 0 ≡ plain Malloc, and hinted streams are deterministic:
	// three fresh instances, one driven by Malloc, two by MallocLocal.
	plain, _ := newAlloc(f)
	h1, _ := newAlloc(f)
	h2, _ := newAlloc(f)
	lh1 := h1.(alloc.LocalityHinter)
	lh2 := h2.(alloc.LocalityHinter)
	for op := 0; op < 500; op++ {
		n := uint32(1 + op%277)
		p0, err0 := plain.Malloc(n)
		p1, err1 := lh1.MallocLocal(n, 0)
		if err0 != nil || err1 != nil {
			t.Fatalf("op %d: %v / %v", op, err0, err1)
		}
		if p0 != p1 {
			t.Fatalf("op %d: Malloc %#x != MallocLocal(·, 0) %#x", op, p0, p1)
		}
		hint := uint32(op >> 4)
		q1, err := lh2.MallocLocal(n, hint)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		q2, err := lh2.MallocLocal(n, hint)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if q1 == q2 {
			t.Fatalf("op %d: same address %#x returned twice", op, q1)
		}
		if err := lh2.Free(q2); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if op%3 == 0 {
			if plain.Free(p0) != nil || lh1.Free(p1) != nil {
				t.Fatalf("op %d: hint-0 frees diverged", op)
			}
		}
	}
}

// testInteriorFree checks that word-aligned pointers strictly inside a
// live block are rejected without disturbing the block.
func testInteriorFree(t *testing.T, f Factory) {
	a, _ := newAlloc(f)
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{mem.WordSize, 2 * mem.WordSize, 32} {
		if err := a.Free(p + off); err == nil {
			t.Errorf("Free(%#x): interior pointer (base+%d) accepted", p+off, off)
		} else if !errors.Is(err, alloc.ErrBadFree) {
			t.Errorf("Free(%#x) rejected with %v, want alloc.ErrBadFree", p+off, err)
		}
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("Free of base after interior-free attempts: %v", err)
	}
}

// testOutOfMemory exhausts a memory-capped allocator: the failure must
// surface as an error (never a panic), and the allocator must remain
// usable — frees succeed and create room for further allocations.
func testOutOfMemory(t *testing.T, f Factory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	m.DefaultRegionLimit = 256 * 1024
	a := f(m)
	var live []uint64
	var oom bool
	for i := 0; i < 100000; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			if !errors.Is(err, mem.ErrOutOfMemory) && !errors.Is(err, alloc.ErrTooLarge) {
				t.Errorf("exhaustion surfaced with the wrong error class: %v", err)
			}
			oom = true
			break
		}
		live = append(live, p)
	}
	if !oom {
		t.Fatal("allocator never reported out-of-memory within the region cap")
	}
	if len(live) == 0 {
		t.Fatal("no allocations succeeded before exhaustion")
	}
	// Recovery: free everything, then allocate again.
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatalf("Free(%#x) after OOM: %v", p, err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := a.Malloc(64); err != nil {
			t.Fatalf("allocation %d after recovery: %v", i, err)
		}
	}
}

// testShadowOracle runs a random churn through the shadow heap auditor
// (internal/alloc/shadow) with a tight audit cadence: the oracle's
// independent live-set model and the allocator must agree on every
// operation, including deliberate double frees and interior pointers the
// allocator is expected to reject.
func testShadowOracle(t *testing.T, f Factory, o Options) {
	m := mem.New(trace.Discard, &cost.Meter{})
	s := shadow.Wrap(f(m), m, shadow.Options{AuditEvery: 512})
	r := rng.New(31)
	var live []uint64
	for op := 0; op < 4000; op++ {
		if len(live) > 0 && (r.Bool(0.45) || len(live) > 400) {
			i := r.Intn(len(live))
			if err := s.Free(live[i]); err != nil {
				t.Fatalf("op %d: Free(%#x) of live block: %v", op, live[i], err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		var n uint32
		switch r.Intn(8) {
		case 0:
			n = 0 // Malloc(0) contract path
		case 1:
			n = o.clamp(uint32(1024 + r.Intn(8192)))
		default:
			n = uint32(1 + r.Intn(256))
		}
		p, err := s.Malloc(n)
		if err != nil {
			t.Fatalf("op %d: Malloc(%d): %v", op, n, err)
		}
		live = append(live, p)
	}
	// Adversarial frees. The allocator must reject them; the oracle
	// flags a violation only if one is *accepted*.
	if len(live) > 2 {
		p := live[0]
		live = live[1:]
		_ = s.Free(p)          // valid
		_ = s.Free(p)          // immediate double free
		_ = s.Free(live[0] + mem.WordSize) // interior pointer
	}
	for _, p := range live {
		if err := s.Free(p); err != nil {
			t.Fatalf("final Free(%#x): %v", p, err)
		}
	}
	s.Audit()
	if n := s.ViolationCount(); n != 0 {
		for _, v := range s.Violations() {
			t.Errorf("%s", v.String())
		}
		t.Fatalf("shadow oracle recorded %d violations", n)
	}
	if s.LiveBlocks() != 0 {
		t.Errorf("oracle live set not empty at exit: %d blocks", s.LiveBlocks())
	}
}

// testSawtooth models phase behaviour: repeatedly build up a structure
// of mixed sizes and tear it all down. Footprint must reach a steady
// state rather than growing per phase.
func testSawtooth(t *testing.T, f Factory) {
	a, m := newAlloc(f)
	r := rng.New(13)
	var peak uint64
	var phase5 uint64
	for phase := 0; phase < 12; phase++ {
		var live []uint64
		for i := 0; i < 300; i++ {
			n := uint32(8 + r.Intn(120))
			p, err := a.Malloc(n)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		for _, p := range live {
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		if fp := m.Footprint(); fp > peak {
			peak = fp
		}
		if phase == 5 {
			phase5 = m.Footprint()
		}
	}
	if phase5 == 0 {
		t.Fatal("no footprint recorded")
	}
	if float64(peak) > float64(phase5)*1.5 {
		t.Errorf("sawtooth churn kept growing the heap: %d at phase 5, %d peak", phase5, peak)
	}
}

// testLargeObjects stresses the multi-page paths: allocations from 2 KB
// to 256 KB interleaved with small ones, all disjoint, all freeable.
func testLargeObjects(t *testing.T, f Factory, o Options) {
	a, _ := newAlloc(f)
	r := rng.New(21)
	var live []block
	for op := 0; op < 300; op++ {
		if len(live) > 0 && r.Bool(0.4) {
			i := r.Intn(len(live))
			if err := a.Free(live[i].addr); err != nil {
				t.Fatalf("op %d: Free: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		var n uint32
		if r.Bool(0.5) {
			n = o.clamp(uint32(2048 + r.Intn(256*1024)))
		} else {
			n = uint32(1 + r.Intn(64))
		}
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("op %d: Malloc(%d): %v", op, n, err)
		}
		nb := block{p, n}
		for _, b := range live {
			if overlaps(nb, b) {
				t.Fatalf("op %d: Malloc(%d)=[%#x,+%d) overlaps [%#x,+%d)",
					op, n, nb.addr, nb.size, b.addr, b.size)
			}
		}
		live = append(live, nb)
	}
	for _, b := range live {
		if err := a.Free(b.addr); err != nil {
			t.Fatal(err)
		}
	}
}

// testQuickRandomOps drives property-based random operation sequences
// through testing/quick: for any op sequence, allocations are disjoint
// and frees of live pointers succeed.
func testQuickRandomOps(t *testing.T, f Factory) {
	prop := func(seed uint64, opsRaw []byte) bool {
		a, _ := newAlloc(f)
		r := rng.New(seed)
		var live []block
		for _, raw := range opsRaw {
			if raw%2 == 0 && len(live) > 0 {
				i := r.Intn(len(live))
				if err := a.Free(live[i].addr); err != nil {
					t.Logf("Free of live block failed: %v", err)
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			n := uint32(raw)/2 + 1
			p, err := a.Malloc(n)
			if err != nil {
				t.Logf("Malloc(%d) failed: %v", n, err)
				return false
			}
			nb := block{p, n}
			for _, b := range live {
				if overlaps(nb, b) {
					t.Logf("overlap: [%#x,+%d) vs [%#x,+%d)", nb.addr, nb.size, b.addr, b.size)
					return false
				}
			}
			live = append(live, nb)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// testDeterminism verifies that an identical op sequence yields
// identical addresses, instruction counts and footprint on two fresh
// instances: the whole reproduction depends on runs being replayable.
func testDeterminism(t *testing.T, f Factory) {
	runOnce := func() (string, uint64, uint64) {
		meter := &cost.Meter{}
		m := mem.New(trace.Discard, meter)
		a := f(m)
		r := rng.New(99)
		var live []uint64
		sig := ""
		for op := 0; op < 600; op++ {
			if len(live) > 0 && r.Bool(0.4) {
				i := r.Intn(len(live))
				if err := a.Free(live[i]); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			n := uint32(1 + r.Intn(100))
			p, err := a.Malloc(n)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
			if op%37 == 0 {
				sig += fmt.Sprintf("%x,", p)
			}
		}
		return sig, meter.Total(), m.Footprint()
	}
	sig1, instr1, fp1 := runOnce()
	sig2, instr2, fp2 := runOnce()
	if sig1 != sig2 || instr1 != instr2 || fp1 != fp2 {
		t.Errorf("nondeterministic run: (%q,%d,%d) vs (%q,%d,%d)", sig1, instr1, fp1, sig2, instr2, fp2)
	}
}
