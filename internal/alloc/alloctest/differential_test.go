package alloctest

import (
	"bytes"
	"io"
	"testing"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/optrace"
	"mallocsim/internal/trace"
	"mallocsim/internal/workload"
)

// registryFactories builds one Factory per registered allocator.
func registryFactories(t *testing.T) map[string]Factory {
	t.Helper()
	out := map[string]Factory{}
	for _, name := range alloc.Names() {
		name := name
		out[name] = func(m *mem.Memory) alloc.Allocator {
			a, err := alloc.New(name, m)
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			return a
		}
	}
	return out
}

// recordWorkload snapshots one synthetic program's op stream through an
// optrace.Recorder, returning the decoded ops and the highest ID used.
func recordWorkload(t *testing.T, program string, scale uint64) ([]optrace.Op, uint64) {
	t.Helper()
	prog, ok := workload.ByName(program)
	if !ok {
		t.Fatalf("unknown program %q", program)
	}
	var buf bytes.Buffer
	w, err := optrace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(trace.Discard, &cost.Meter{})
	inner, err := alloc.New("firstfit", m)
	if err != nil {
		t.Fatal(err)
	}
	rec := optrace.NewRecorder(inner, w)
	if _, err := workload.Run(m, rec, workload.Config{Program: prog, Scale: scale, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := optrace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ops []optrace.Op
	var maxID uint64
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Clamp request sizes so the whole trace is within every
		// allocator's direct-service range (the buddy arena caps out at
		// 64 KB): the differential compares error *classes*, and where a
		// capacity limit falls is per-allocator policy, not contract.
		if op.Kind == optrace.OpMalloc && op.Size > 32768 {
			op.Size = 32768
		}
		if op.ID > maxID {
			maxID = op.ID
		}
		ops = append(ops, op)
	}
	return ops, maxID
}

// TestDifferentialWorkloadTrace records one synthetic workload's op
// stream, appends adversarial zero-size and double-free operations, and
// replays it through every registered allocator: all of them must
// produce identical outcome classes at every operation.
func TestDifferentialWorkloadTrace(t *testing.T) {
	ops, maxID := recordWorkload(t, "espresso", 512)
	if len(ops) < 100 {
		t.Fatalf("recorded only %d ops", len(ops))
	}
	id := maxID + 1
	ops = append(ops,
		// Zero-size malloc, freed once (ok) and again (double free).
		optrace.Op{Kind: optrace.OpMalloc, ID: id, Size: 0},
		optrace.Op{Kind: optrace.OpFree, ID: id},
		optrace.Op{Kind: optrace.OpFree, ID: id},
		// Zero-size malloc left live across further traffic.
		optrace.Op{Kind: optrace.OpMalloc, ID: id + 1, Size: 0},
		optrace.Op{Kind: optrace.OpMalloc, ID: id + 2, Size: 128},
		optrace.Op{Kind: optrace.OpFree, ID: id + 2},
		// Free of an ID no malloc ever defined: replays as Free(0).
		optrace.Op{Kind: optrace.OpFree, ID: id + 1000},
	)
	diffs := DiffReplay(registryFactories(t), ops, 0)
	for _, d := range diffs {
		t.Errorf("%s", d.String())
	}
	if len(diffs) == 0 {
		t.Logf("replayed %d ops through %d allocators: identical error behaviour",
			len(ops), len(alloc.Names()))
	}
}

// TestDifferentialExhaustion replays a synthetic exhaustion stream under
// a tight region limit: a prefix every allocator can satisfy, one
// unsatisfiable request (capacity class for all — OOM for the
// sequential fits, ErrTooLarge for the bounded buddy systems), recovery
// traffic, then teardown with a deliberate mid-stream double free and
// an unknown-ID free.
func TestDifferentialExhaustion(t *testing.T) {
	var ops []optrace.Op
	malloc := func(id uint64, size uint32) {
		ops = append(ops, optrace.Op{Kind: optrace.OpMalloc, ID: id, Size: size})
	}
	free := func(id uint64) {
		ops = append(ops, optrace.Op{Kind: optrace.OpFree, ID: id})
	}
	for id := uint64(1); id <= 100; id++ {
		malloc(id, 64)
	}
	malloc(101, 8<<20) // unsatisfiable under the 256 KB region cap
	for id := uint64(102); id <= 121; id++ {
		malloc(id, 64) // recovery: the failure must not wedge the allocator
	}
	for id := uint64(1); id <= 100; id++ {
		free(id)
		if id == 50 {
			free(id) // immediate double free mid-teardown
		}
	}
	free(101) // its malloc failed: replays as Free(0)
	free(999) // never allocated: replays as Free(0)
	for id := uint64(102); id <= 121; id++ {
		free(id)
	}
	diffs := DiffReplay(registryFactories(t), ops, 256*1024)
	for _, d := range diffs {
		t.Errorf("%s", d.String())
	}
}
