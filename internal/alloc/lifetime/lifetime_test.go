package lifetime

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func TestPredictorLearnsSites(t *testing.T) {
	a, _ := newTestAlloc()
	// Site 1: objects always die. Site 2: objects never die.
	for i := 0; i < 200; i++ {
		p, err := a.MallocSite(24, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
		if _, err := a.MallocSite(24, 2); err != nil {
			t.Fatal(err)
		}
	}
	_, _, longRouted := a.Stats()
	// After the 16-observation warmup, every site-2 allocation should be
	// routed long; site 1 never should.
	if longRouted < 150 || longRouted > 200 {
		t.Errorf("long-routed %d of 200 immortal allocations", longRouted)
	}
	short, long := a.Arenas()
	_, sf := short.Stats()
	la, _ := long.Stats()
	if sf == 0 {
		t.Error("short arena saw no frees")
	}
	if la < 150 {
		t.Errorf("long arena received %d allocations", la)
	}
}

// TestSegregationSeparatesAddressSpace: immortal and churn objects land
// in disjoint regions once the predictor converges.
func TestSegregationSeparatesAddressSpace(t *testing.T) {
	a, _ := newTestAlloc()
	var immortalAddrs, churnAddrs []uint64
	for i := 0; i < 300; i++ {
		p, err := a.MallocSite(32, 7) // churn site
		if err != nil {
			t.Fatal(err)
		}
		churnAddrs = append(churnAddrs, p)
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
		q, err := a.MallocSite(32, 9) // immortal site
		if err != nil {
			t.Fatal(err)
		}
		immortalAddrs = append(immortalAddrs, q)
	}
	short, long := a.Arenas()
	_ = short
	inLong := 0
	for _, q := range immortalAddrs[50:] { // after warmup
		if long.Owns(q) {
			inLong++
		}
	}
	if inLong != len(immortalAddrs[50:]) {
		t.Errorf("only %d/%d post-warmup immortal objects in the long arena",
			inLong, len(immortalAddrs[50:]))
	}
	for _, p := range churnAddrs {
		if long.Owns(p) {
			t.Fatalf("churn object %#x in the long arena", p)
		}
	}
}

func TestMallocWithoutSite(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.Name() != "lifetime" {
		t.Errorf("name %q", a.Name())
	}
}

func TestFreeUnknownAddress(t *testing.T) {
	a, _ := newTestAlloc()
	if err := a.Free(12345); err == nil {
		t.Error("free of foreign address must fail")
	}
}

var _ alloc.SiteAllocator = (*Allocator)(nil)
