// Package lifetime implements the paper's stated future work (§5.1):
// memory allocation guided by lifetime prediction from call-site
// information, after Barrett & Zorn, "Using lifetime predictors to
// improve memory allocation performance" (PLDI 1993, the paper's
// reference [2]).
//
// The allocator maintains per-call-site death statistics: every
// allocation is attributed to a site, and every free is credited back
// to the site that allocated the object. Once a site has enough
// history, its objects are routed to one of two arenas:
//
//   - the short arena, for sites whose objects demonstrably die — the
//     churn working set stays compact and hot;
//   - the long arena, for sites whose objects survive — long-lived data
//     accretes densely in its own pages instead of being interleaved
//     with (and pinning) transient neighbours.
//
// Both arenas are instances of the §4.4 recommended architecture
// (package custom), so the design composes the paper's two "future
// directions" — synthesized segregated storage plus lifetime
// prediction. The payoff shows up in page locality: with the immortal
// core packed separately, the pages holding churn objects recycle
// entirely, shrinking the resident set.
//
// Prediction state lives host-side (a real implementation keeps a small
// table keyed by call site); its cost is charged to the instruction
// meter at a flat per-operation rate.
package lifetime

import (
	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/custom"
	"mallocsim/internal/mem"
)

const (
	// minHistory is how many completed observations a site needs before
	// the predictor trusts it.
	minHistory = 16
	// longThreshold: a site is predicted long-lived while fewer than
	// this fraction of its observed objects have died.
	longThreshold = 0.2
	// predictorCost is the per-operation instruction charge for the
	// site-table lookup and update.
	predictorCost = 6
)

type siteStats struct {
	allocs uint64
	frees  uint64
}

// Allocator is a lifetime-segregated allocator.
type Allocator struct {
	m     *mem.Memory
	short *custom.Allocator
	long  *custom.Allocator

	sites   map[uint32]*siteStats
	objSite map[uint64]uint32

	allocs, frees uint64
	longRouted    uint64
}

// New creates a lifetime-segregated allocator with two custom arenas on
// m.
func New(m *mem.Memory) *Allocator {
	return &Allocator{
		m:       m,
		short:   custom.New(m, custom.DefaultConfig()),
		long:    custom.New(m, custom.DefaultConfig()),
		sites:   make(map[uint32]*siteStats),
		objSite: make(map[uint64]uint32),
	}
}

func init() {
	alloc.Register("lifetime", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "lifetime" }

// Malloc implements alloc.Allocator: without site information, objects
// are attributed to site 0. The Malloc(0) and bad-free contract is
// inherited from the custom arenas that serve every request.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	return a.MallocSite(n, 0)
}

// MallocSite implements alloc.SiteAllocator.
func (a *Allocator) MallocSite(n uint32, site uint32) (uint64, error) {
	a.allocs++
	alloc.Charge(a.m, predictorCost)
	st := a.sites[site]
	if st == nil {
		st = &siteStats{}
		a.sites[site] = st
	}
	arena := a.short
	if a.predictLong(st) {
		arena = a.long
		a.longRouted++
	}
	st.allocs++
	p, err := arena.Malloc(n)
	if err != nil {
		return 0, err
	}
	a.objSite[p] = site
	return p, nil
}

// predictLong returns true when a site's history says its objects
// rarely die.
func (a *Allocator) predictLong(st *siteStats) bool {
	if st.allocs < minHistory {
		return false
	}
	return float64(st.frees) < float64(st.allocs)*longThreshold
}

// Free implements alloc.Allocator, routing the free to the owning arena
// and crediting the death back to the allocating site.
func (a *Allocator) Free(p uint64) error {
	a.frees++
	alloc.Charge(a.m, predictorCost)
	var err error
	switch {
	case a.short.Owns(p):
		err = a.short.Free(p)
	case a.long.Owns(p):
		err = a.long.Free(p)
	default:
		return alloc.ErrBadFree
	}
	if err != nil {
		return err
	}
	if site, ok := a.objSite[p]; ok {
		delete(a.objSite, p)
		if st := a.sites[site]; st != nil {
			st.frees++
		}
	}
	return nil
}

// Stats reports operation counts and how many allocations the
// predictor routed to the long arena.
func (a *Allocator) Stats() (allocs, frees, longRouted uint64) {
	return a.allocs, a.frees, a.longRouted
}

// Arenas exposes the two arenas for inspection in tests and
// experiments.
func (a *Allocator) Arenas() (short, long *custom.Allocator) {
	return a.short, a.long
}
