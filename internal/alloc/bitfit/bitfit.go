// Package bitfit implements a bitmap-fit allocator in the style of
// "Fast Bitmap Fit" (arXiv 2110.10357): size-segregated single-object
// pages whose occupancy is tracked by a bitmap header sized to exactly
// one cache line (mem.LineSize).
//
// Each page serves one size class. The first mem.LineSize bytes of the
// page hold the occupancy bitmap — one bit per slot, at most 256 slots
// with 32-byte lines — and the rest of the page is carved into
// fixed-size slots. Allocation pops the head of the class's
// partial-page list and scans the bitmap for a clear bit; because the
// whole bitmap fits in one cache line, the search touches a single
// line no matter where the free slot is, which is the paper's argument
// against pointer-chasing freelist walks. Deallocation recomputes the
// slot index from the address and clears its bit, so double frees
// (bit already clear) and interior pointers (offset not a slot
// multiple, or inside the header line) are detected exactly from the
// bitmap geometry alone — no per-object boundary tags.
//
// Requests larger than MaxSmall go to an embedded GNU G++ general
// allocator, the same fallback arrangement QUICKFIT uses.
package bitfit

import (
	"math/bits"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/gnufit"
	"mallocsim/internal/mem"
)

const (
	// MaxSmall is the largest request served from bitmap pages.
	MaxSmall = 512

	// headerSize is the bitmap header: exactly one cache line at the
	// start of every page, as in the Fast Bitmap Fit design.
	headerSize = mem.LineSize

	// slotArea is the per-page payload span behind the header.
	slotArea = mem.PageSize - headerSize

	// bitsPerWord is the occupancy bits held by one bitmap word.
	bitsPerWord = 8 * mem.WordSize

	// maxSlots is the bitmap capacity: one bit per byte of header.
	// The smallest class size (16) keeps slotArea/size under this.
	maxSlots = 8 * headerSize

	// descWords is the per-page descriptor in the info region:
	// dClass (size-class index), dCount (free slots), dNext
	// (next page index + 1 on the class's partial list; 0 ends it).
	descWords = 3
	dClass    = 0
	dCount    = 1
	dNext     = 2
)

// classSizes lists the slot sizes of the size classes: fine-grained
// word multiples at the small end (where the paper's workloads
// concentrate), geometric above. Every size keeps slotArea/size within
// the one-line bitmap's 256 bits.
var classSizes = [...]uint64{
	16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128,
	160, 192, 224, 256, 320, 384, 448, 512,
}

const numClasses = len(classSizes)

// State-region word offsets: the request-size → class map (indexed by
// size/WordSize, sizes 0..MaxSmall), then one partial-list head per
// class (page index + 1; 0 = empty).
const (
	sSizeMap = 0
	sHeads   = sSizeMap + (MaxSmall/mem.WordSize+1)*mem.WordSize
	stateLen = sHeads + numClasses*mem.WordSize
)

// Allocator is a bitmap-fit instance. Its bitmap headers and page
// descriptors are words in simulated memory, so every bitmap probe an
// allocation performs shows up in the reference trace.
type Allocator struct {
	m       *mem.Memory
	general *gnufit.Allocator
	data    *mem.Region // bitmap pages
	info    *mem.Region // per-page descriptors
	state   *mem.Region // size map + class heads

	pagesBase uint64 // first bitmap page (data base + guard page)
	infoBase  uint64
	stateBase uint64
	pages     uint64 // bitmap pages carved so far

	scans uint64 // bitmap words examined (alloc.Scanner)
}

// New creates a bitmap-fit allocator (and its embedded GNU G++
// fallback) on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		m:       m,
		general: gnufit.New(m),
		data:    m.NewRegion("bitfit-heap", 0),
		info:    m.NewRegion("bitfit-info", 0),
		state:   m.NewRegion("bitfit-state", mem.PageSize),
	}
	// Guard allotment: absorb the region reserve so every subsequent
	// page Sbrk is page-aligned, and addresses below pagesBase are
	// never valid bitmap slots (offset arithmetic cannot reach them).
	if _, err := a.data.Sbrk(mem.PageSize - mem.RegionReserve); err != nil {
		panic("bitfit: guard sbrk failed: " + err.Error())
	}
	a.pagesBase = a.data.Base() + mem.PageSize
	a.infoBase = a.info.Brk()
	stateBase, err := a.state.Sbrk(uint64(stateLen))
	if err != nil {
		panic("bitfit: state sbrk failed: " + err.Error())
	}
	a.stateBase = stateBase
	// Size map: request words → class index.
	class := uint64(0)
	for s := uint64(0); s <= MaxSmall; s += mem.WordSize {
		for classSizes[class] < s {
			class++
		}
		a.m.WriteWord(stateBase+sSizeMap+(s/mem.WordSize)*mem.WordSize, class)
	}
	for c := 0; c < numClasses; c++ {
		a.m.WriteWord(a.headSlot(uint64(c)), 0)
	}
	return a
}

func init() {
	alloc.Register("bitfit", func(m *mem.Memory) alloc.Allocator { return New(m) })
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "bitfit" }

// headSlot returns the state address of a class's partial-list head.
func (a *Allocator) headSlot(class uint64) uint64 {
	return a.stateBase + sHeads + class*mem.WordSize
}

// descAddr returns the info address of a page descriptor word.
func (a *Allocator) descAddr(page uint64, word uint64) uint64 {
	return a.infoBase + (page*descWords+word)*mem.WordSize
}

// pageAddr returns the data address of a bitmap page.
func (a *Allocator) pageAddr(page uint64) uint64 {
	return a.pagesBase + page*mem.PageSize
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(n uint32) (uint64, error) {
	alloc.Charge(a.m, 8) // round + range test
	if n > MaxSmall {
		return a.general.Malloc(n)
	}
	s := mem.AlignUp(uint64(n), mem.WordSize)
	if s == 0 {
		s = mem.WordSize // Malloc(0) contract: one usable word
	}
	class := a.m.ReadWord(a.stateBase + sSizeMap + (s/mem.WordSize)*mem.WordSize)
	head := a.m.ReadWord(a.headSlot(class))
	if head == 0 {
		page, err := a.newPage(class)
		if err != nil {
			return 0, err
		}
		head = page + 1
	}
	return a.take(class, head-1)
}

// take claims a free slot on the given page (the head of its class's
// partial list) by scanning the one-line bitmap header.
func (a *Allocator) take(class, page uint64) (uint64, error) {
	size := classSizes[class]
	nslots := slotArea / size
	pb := a.pageAddr(page)
	slot, ok := a.claim(pb, nslots)
	if !ok {
		// The partial-list invariant (a listed page has a clear bit)
		// broke — only possible if a stray write corrupted the header.
		// Unlink the page and carve a fresh one instead of corrupting
		// further; the fresh page's first slot is clear by construction.
		a.m.WriteWord(a.headSlot(class), a.m.ReadWord(a.descAddr(page, dNext)))
		np, err := a.newPage(class)
		if err != nil {
			return 0, err
		}
		page = np
		pb = a.pageAddr(page)
		slot, _ = a.claim(pb, nslots)
	}
	count := a.m.ReadWord(a.descAddr(page, dCount)) - 1
	a.m.WriteWord(a.descAddr(page, dCount), count)
	if count == 0 {
		// Page full: unlink from the class's partial list.
		next := a.m.ReadWord(a.descAddr(page, dNext))
		a.m.WriteWord(a.headSlot(class), next)
	}
	return pb + headerSize + slot*size, nil
}

// claim finds and sets the first clear bit among the page's nslots
// valid occupancy bits. The whole scan stays inside one cache line —
// the Fast Bitmap Fit selling point.
func (a *Allocator) claim(pb, nslots uint64) (uint64, bool) {
	for w := uint64(0); w*bitsPerWord < nslots; w++ {
		a.scans++
		word := a.m.ReadWord(pb + w*mem.WordSize)
		alloc.Charge(a.m, 2) // full-word compare + loop
		if word == (1<<bitsPerWord)-1 {
			continue
		}
		bit := uint64(bits.TrailingZeros32(^uint32(word)))
		slot := w*bitsPerWord + bit
		if slot >= nslots {
			continue // tail bits past nslots are never valid
		}
		alloc.Charge(a.m, 4) // bit isolation
		a.m.WriteWord(pb+w*mem.WordSize, word|(1<<bit))
		return slot, true
	}
	return 0, false
}

// newPage carves a fresh page for the class and links it as the
// partial-list head, returning its index. The descriptor space is
// grown first: if the data Sbrk then fails, the spare descriptor slot
// is benign, whereas the reverse order would desynchronise page
// indices from descriptor offsets.
func (a *Allocator) newPage(class uint64) (uint64, error) {
	if _, err := a.info.Sbrk(descWords * mem.WordSize); err != nil {
		return 0, err
	}
	if _, err := a.data.Sbrk(mem.PageSize); err != nil {
		return 0, err
	}
	page := a.pages
	a.pages++
	pb := a.pageAddr(page)
	for w := uint64(0); w < headerSize/mem.WordSize; w++ {
		a.m.WriteWord(pb+w*mem.WordSize, 0)
	}
	a.m.WriteWord(a.descAddr(page, dClass), class)
	a.m.WriteWord(a.descAddr(page, dCount), slotArea/classSizes[class])
	a.m.WriteWord(a.descAddr(page, dNext), a.m.ReadWord(a.headSlot(class)))
	a.m.WriteWord(a.headSlot(class), page+1)
	return page, nil
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(p uint64) error {
	alloc.Charge(a.m, 8)
	if !a.data.Contains(p) {
		// Not a bitmap page: the general allocator owns it (or it is
		// garbage, which the general allocator's tags reject).
		return a.general.Free(p)
	}
	if p < a.pagesBase {
		return alloc.ErrBadFree // guard allotment, never handed out
	}
	page := mem.PageOf(p - a.pagesBase)
	pb := a.pageAddr(page)
	rel := p - pb
	if rel < headerSize {
		return alloc.ErrBadFree // points into the bitmap header
	}
	class := a.m.ReadWord(a.descAddr(page, dClass))
	size := classSizes[class]
	rel -= headerSize
	slot := rel / size
	alloc.Charge(a.m, 6) // page/slot arithmetic
	if rel%size != 0 || slot >= slotArea/size {
		return alloc.ErrBadFree // interior pointer or tail waste
	}
	w := slot / bitsPerWord
	bit := slot % bitsPerWord
	word := a.m.ReadWord(pb + w*mem.WordSize)
	if word&(1<<bit) == 0 {
		return alloc.ErrBadFree // bit already clear: double free
	}
	a.m.WriteWord(pb+w*mem.WordSize, word&^(1<<bit))
	count := a.m.ReadWord(a.descAddr(page, dCount)) + 1
	a.m.WriteWord(a.descAddr(page, dCount), count)
	if count == 1 {
		// Was full: relink as the class's partial-list head.
		a.m.WriteWord(a.descAddr(page, dNext), a.m.ReadWord(a.headSlot(class)))
		a.m.WriteWord(a.headSlot(class), page+1)
	}
	return nil
}

// The bitmap scan is bitfit's search; the general-allocator fallback
// walks real freelists.
var _ alloc.Scanner = (*Allocator)(nil)

// ScanSteps implements alloc.Scanner: bitmap words examined plus the
// embedded general allocator's freelist steps.
func (a *Allocator) ScanSteps() uint64 { return a.scans + a.general.ScanSteps() }
