package bitfit

import (
	"errors"
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/alloctest"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(m *mem.Memory) alloc.Allocator { return New(m) })
}

func newTestAlloc() (*Allocator, *mem.Memory) {
	m := mem.New(trace.Discard, &cost.Meter{})
	return New(m), m
}

// Slots must stay word-aligned even when a request rounds up across a
// cache-line boundary: the one-line header keeps the first slot
// line-aligned, and every class size is a word multiple.
func TestSlotAlignmentAcrossLineRounding(t *testing.T) {
	a, _ := newTestAlloc()
	for _, n := range []uint32{1, 29, 30, 31, 32, 33, 61, 63, 64, 65, 511, 512} {
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("Malloc(%d): %v", n, err)
		}
		if p%mem.WordSize != 0 {
			t.Errorf("Malloc(%d) = %#x: not word-aligned", n, p)
		}
		if mem.PageOffset(p-a.pagesBase) < headerSize {
			t.Errorf("Malloc(%d) = %#x: inside the bitmap header line", n, p)
		}
	}
	// Line-multiple classes get line-aligned slots (the locality point
	// of sizing the header to exactly one line).
	p, err := a.Malloc(mem.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	if mem.LineOffset(p) != 0 {
		t.Errorf("Malloc(LineSize) = %#x: not line-aligned", p)
	}
}

// The bitmap detects double frees and interior pointers exactly.
func TestBitmapBadFrees(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("double free: got %v, want ErrBadFree", err)
	}
	q, err := a.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(q + mem.WordSize); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("interior free: got %v, want ErrBadFree", err)
	}
	// A pointer into the header line of a live page.
	if err := a.Free(a.pageAddr(0) + mem.WordSize); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("header free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(q); err != nil {
		t.Fatalf("valid free after rejections: %v", err)
	}
}

// Pages are size-segregated: two classes never share a page, and a
// full page is refilled only through its own class list.
func TestSizeSegregation(t *testing.T) {
	a, _ := newTestAlloc()
	p16, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	p64, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PageOf(p16-a.pagesBase) == mem.PageOf(p64-a.pagesBase) {
		t.Errorf("classes 16 and 64 share page %d", mem.PageOf(p16-a.pagesBase))
	}
	// Exhaust class 16's first page and confirm a second page appears.
	nslots := uint64(slotArea / 16)
	seen := map[uint64]bool{mem.PageOf(p16 - a.pagesBase): true}
	for i := uint64(1); i < nslots+1; i++ {
		p, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		seen[mem.PageOf(p-a.pagesBase)] = true
	}
	if len(seen) != 2 {
		t.Errorf("after %d allocs of 16 bytes: %d pages, want 2", nslots+1, len(seen))
	}
}

// Freed slots are recycled before new pages are carved.
func TestSlotRecycling(t *testing.T) {
	a, m := newTestAlloc()
	p, err := a.Malloc(40)
	if err != nil {
		t.Fatal(err)
	}
	foot := m.Footprint()
	for i := 0; i < 1000; i++ {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
		q, err := a.Malloc(40)
		if err != nil {
			t.Fatal(err)
		}
		if q != p {
			t.Fatalf("iteration %d: recycled %#x, want %#x", i, q, p)
		}
	}
	if got := m.Footprint(); got != foot {
		t.Errorf("footprint grew %d → %d under pure recycling", foot, got)
	}
}

// Requests beyond MaxSmall go to the general allocator and free back
// through it.
func TestLargeFallback(t *testing.T) {
	a, _ := newTestAlloc()
	p, err := a.Malloc(MaxSmall + 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.data.Contains(p) {
		t.Errorf("large request landed in a bitmap page")
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("large free: %v", err)
	}
	if err := a.Free(p); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("large double free: got %v, want ErrBadFree", err)
	}
}
