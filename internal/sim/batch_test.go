package sim

import (
	"reflect"
	"testing"

	"mallocsim/internal/cache"
	"mallocsim/internal/workload"
)

// TestBatchedRunMatchesSeedPipeline: Run (which batches reference
// delivery through mem.Memory's ring buffer) must produce numerically
// identical results to the unbatched seed pipeline (runSeedBaseline) —
// batching may only change *when* sinks observe references, never what
// they accumulate by the end of the run.
func TestBatchedRunMatchesSeedPipeline(t *testing.T) {
	prog, ok := workload.ByName("make")
	if !ok {
		t.Fatal("no make program")
	}
	cfg := Config{
		Program:   prog,
		Allocator: "quickfit",
		Scale:     8,
		Caches:    []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
	}
	batched, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := runSeedBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Refs != plain.Refs {
		t.Errorf("ref counters differ: %+v vs %+v", batched.Refs, plain.Refs)
	}
	if !reflect.DeepEqual(batched.Caches, plain.Caches) {
		t.Errorf("cache results differ:\nbatched: %+v\nplain:   %+v", batched.Caches, plain.Caches)
	}
	if batched.Instr != plain.Instr {
		t.Errorf("instruction splits differ: %+v vs %+v", batched.Instr, plain.Instr)
	}
	if batched.TotalFootprint != plain.TotalFootprint {
		t.Errorf("footprints differ: %d vs %d", batched.TotalFootprint, plain.TotalFootprint)
	}
	if !reflect.DeepEqual(batched.Workload, plain.Workload) {
		t.Errorf("workload stats differ")
	}
}
