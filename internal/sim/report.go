package sim

import (
	"mallocsim/internal/obs"
)

// Report assembles the versioned machine-readable run report from
// everything the run measured. Observability fields (per-call
// histograms, time series, attribution) are present only when the run
// was configured with them; the end-of-run aggregates are always
// included.
func (r *Result) Report() *obs.Report {
	rep := obs.NewReport()
	rep.Program = r.Program
	rep.Allocator = r.Allocator
	rep.Scale = r.Scale
	rep.Seed = r.Seed
	rep.Workload = obs.WorkloadSummary{
		Allocs:    r.Workload.Allocs,
		Frees:     r.Workload.Frees,
		FinalLive: r.Workload.FinalLive,
		LiveBytes: r.Workload.LiveBytes,
		ReqBytes:  r.Workload.ReqBytes,
		Handoffs:  r.Workload.Handoffs,
	}
	rep.Instr = r.Instr
	rep.Refs = obs.RefSummary{
		Reads:      r.Refs.Reads,
		Writes:     r.Refs.Writes,
		BytesRead:  r.Refs.BytesRead,
		BytesWrote: r.Refs.BytesWrote,
	}
	rep.FootprintBytes = r.Footprint
	rep.TotalFootprintBytes = r.TotalFootprint

	if r.Recorder != nil {
		snap := r.Recorder.Snapshot()
		rep.Alloc = &snap
	}
	rep.Series = r.Series
	rep.Attribution = r.Attribution
	rep.Shadow = r.Shadow

	for _, c := range r.Caches {
		rep.Caches = append(rep.Caches, obs.CacheSummary{
			Config:   c.Config.String(),
			Accesses: c.Accesses,
			Misses:   c.Misses,
			MissRate: c.MissRate(),
		})
	}
	if r.Curve != nil {
		v := &obs.VMSummary{
			PageSize:      r.Curve.PageSize,
			Refs:          r.Curve.Refs,
			DistinctPages: r.Curve.DistinctPages(),
		}
		if r.Curve.SampleShift > 0 {
			// Label sampled (estimated) curves; exact runs leave the
			// field absent so existing report bytes are unchanged.
			v.SampleRate = r.Curve.SampleRate()
		}
		// Fault curve at power-of-two memory sizes up to the point where
		// only cold faults remain — the paper's Figures 2/3 x-axis.
		for _, p := range r.Curve.Sweep() {
			v.Curve = append(v.Curve, obs.VMPoint{
				Pages:     p.Pages,
				Faults:    p.Faults,
				FaultRate: p.FaultRate,
			})
		}
		rep.VM = v
	}
	rep.Sharing = r.Sharing
	return rep
}
