package sim

import (
	"os"
	"strconv"
	"testing"
	"time"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/obs"
	"mallocsim/internal/trace"
	"mallocsim/internal/workload"
)

func benchConfig(b *testing.B) Config {
	b.Helper()
	prog, ok := workload.ByName("make")
	if !ok {
		b.Fatal("no make program")
	}
	return Config{
		Program:   prog,
		Allocator: "quickfit",
		Scale:     8,
		Caches:    []cache.Config{{Size: 64 << 10}},
	}
}

// runSeedBaseline replicates Run's pre-observability body: the same
// pipeline with no obs branch compiled in at all. It is the reference
// the nil-Recorder path is compared against — if someone adds
// unconditional obs work to Run, the comparison (TestNilRecorderOverhead,
// BenchmarkRunBaseline vs BenchmarkRunNilRecorder) exposes it.
func runSeedBaseline(cfg Config) (*Result, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	meter := &cost.Meter{}
	var counter trace.Counter
	sinks := []trace.Sink{&counter}
	var group *cache.Group
	if len(cfg.Caches) > 0 {
		group = cache.NewGroup(cfg.Caches...)
		sinks = append(sinks, group)
	}
	m := mem.New(trace.NewTee(sinks...), meter)
	a, err := alloc.New(cfg.Allocator, m)
	if err != nil {
		return nil, err
	}
	stats, err := workload.Run(m, a, workload.Config{
		Program: cfg.Program,
		Scale:   cfg.Scale,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Workload:       stats,
		Instr:          meter.Snapshot(),
		Refs:           counter,
		TotalFootprint: m.Footprint(),
	}
	if group != nil {
		res.Caches = group.Results()
	}
	return res, nil
}

// BenchmarkRunBaseline is the seed pipeline with no observability code
// at all (see runSeedBaseline).
func BenchmarkRunBaseline(b *testing.B) {
	cfg := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runSeedBaseline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNilRecorder is Run as shipped, with the observability
// layer compiled in but disabled (nil Recorder). Compare against
// BenchmarkRunBaseline: the two must be within noise of each other.
func BenchmarkRunNilRecorder(b *testing.B) {
	cfg := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInstrumented measures the full observability stack:
// recorder, sampler, and attribution all enabled.
func BenchmarkRunInstrumented(b *testing.B) {
	cfg := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Recorder = &obs.Recorder{}
		cfg.SampleEvery = 1024
		cfg.Attribution = true
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNilRecorderOverhead is the zero-overhead guard for the
// observability layer: Run with a nil Recorder must stay within noise
// of the seed pipeline (runSeedBaseline). The check is opt-in (set
// OBS_OVERHEAD_CHECK=1, optionally OBS_OVERHEAD_PCT) because wall-time
// thresholds are hostile to loaded development machines; CI enables it.
func TestNilRecorderOverhead(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_CHECK") == "" {
		t.Skip("set OBS_OVERHEAD_CHECK=1 to enable the timing comparison")
	}
	pct := 2.0
	if s := os.Getenv("OBS_OVERHEAD_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad OBS_OVERHEAD_PCT %q: %v", s, err)
		}
		pct = v
	}

	prog, ok := workload.ByName("make")
	if !ok {
		t.Fatal("no make program")
	}
	cfg := Config{
		Program:   prog,
		Allocator: "quickfit",
		Scale:     8,
		Caches:    []cache.Config{{Size: 64 << 10}},
	}

	const rounds = 9
	median := func(run func(Config) (*Result, error)) time.Duration {
		times := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := run(cfg); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(start))
		}
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}

	// Warm both paths once so cold-start effects don't land on either
	// side of the comparison, then interleave-measure.
	if _, err := runSeedBaseline(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	base := median(runSeedBaseline)
	nilRec := median(Run)

	overhead := 100 * (float64(nilRec)/float64(base) - 1)
	t.Logf("seed baseline median %v, nil-recorder Run median %v (overhead %.2f%%, threshold %.1f%%)",
		base, nilRec, overhead, pct)
	if overhead > pct {
		t.Errorf("nil-recorder Run is %.2f%% slower than the seed pipeline (threshold %.1f%%): %v vs %v",
			overhead, pct, nilRec, base)
	}

	// Structural guard, independent of timing: the nil path must not
	// fabricate any obs state.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder != nil || res.Series != nil || res.Attribution != nil {
		t.Error("nil-recorder run produced obs data")
	}
}
