package sim

import (
	"encoding/json"
	"testing"

	"mallocsim/internal/cache"
	"mallocsim/internal/obs"
	"mallocsim/internal/workload"
)

func runObs(t *testing.T, progName, allocName string, scale uint64) (*Result, *obs.Recorder) {
	t.Helper()
	prog, ok := workload.ByName(progName)
	if !ok {
		t.Fatalf("no program %q", progName)
	}
	rec := &obs.Recorder{}
	res, err := Run(Config{
		Program:     prog,
		Allocator:   allocName,
		Scale:       scale,
		Caches:      []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
		Recorder:    rec,
		SampleEvery: 256,
		Attribution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestObsDoesNotPerturbRun: the load-bearing invariant of the
// observability layer — instrumenting a run must not change what the
// run measures. Every aggregate of an instrumented run must be
// identical to the uninstrumented run at the same seed.
func TestObsDoesNotPerturbRun(t *testing.T) {
	plain := run(t, "make", "quickfit", 8, false)
	instr, _ := runObs(t, "make", "quickfit", 8)

	if plain.Instr != instr.Instr {
		t.Errorf("instruction split changed: %+v vs %+v", plain.Instr, instr.Instr)
	}
	if plain.Refs != instr.Refs {
		t.Errorf("reference counts changed: %+v vs %+v", plain.Refs, instr.Refs)
	}
	if plain.Footprint != instr.Footprint || plain.TotalFootprint != instr.TotalFootprint {
		t.Errorf("footprints changed: %d/%d vs %d/%d",
			plain.Footprint, plain.TotalFootprint, instr.Footprint, instr.TotalFootprint)
	}
	if plain.Workload.Allocs != instr.Workload.Allocs ||
		plain.Workload.Frees != instr.Workload.Frees ||
		plain.Workload.LiveBytes != instr.Workload.LiveBytes ||
		plain.Workload.ReqBytes != instr.Workload.ReqBytes {
		t.Errorf("workload stats changed: %+v vs %+v", plain.Workload, instr.Workload)
	}
	for i := range plain.Caches {
		if plain.Caches[i].Misses != instr.Caches[i].Misses ||
			plain.Caches[i].Accesses != instr.Caches[i].Accesses {
			t.Errorf("cache %d results changed: %+v vs %+v",
				i, plain.Caches[i], instr.Caches[i])
		}
	}
}

func TestObsRecorderConsistency(t *testing.T) {
	res, rec := runObs(t, "make", "firstfit", 8)

	// Recorder call counts must agree with the workload's.
	if rec.Mallocs.Value() != res.Workload.Allocs {
		t.Errorf("recorder mallocs %d != workload allocs %d",
			rec.Mallocs.Value(), res.Workload.Allocs)
	}
	if rec.Frees.Value() != res.Workload.Frees {
		t.Errorf("recorder frees %d != workload frees %d",
			rec.Frees.Value(), res.Workload.Frees)
	}
	// Live gauges must agree with the workload's exit state.
	if uint64(rec.LiveObjects.Value()) != res.Workload.FinalLive {
		t.Errorf("live objects %d != final live %d",
			rec.LiveObjects.Value(), res.Workload.FinalLive)
	}
	if uint64(rec.LiveBytes.Value()) != res.Workload.LiveBytes {
		t.Errorf("live bytes %d != workload %d",
			rec.LiveBytes.Value(), res.Workload.LiveBytes)
	}
	// Latency sums must equal the meter's domains minus the per-call
	// overhead the driver charges outside the wrapper's measurement.
	overhead := res.Workload.Allocs * 8 // alloc.CallOverhead
	if got := rec.MallocInstr.Sum() + overhead; got != res.Instr.Malloc {
		t.Errorf("malloc latency sum+overhead %d != domain %d", got, res.Instr.Malloc)
	}
	// Request-size histogram totals the requested bytes.
	if rec.ReqSize.Sum() != res.Workload.ReqBytes {
		t.Errorf("request size sum %d != req bytes %d",
			rec.ReqSize.Sum(), res.Workload.ReqBytes)
	}
	// firstfit searches, so scan deltas were recorded per malloc.
	if rec.Scan.Count() != res.Workload.Allocs {
		t.Errorf("scan observations %d != allocs %d", rec.Scan.Count(), res.Workload.Allocs)
	}
	// No errors on a healthy run.
	if rec.BadFree.Value()+rec.TooLarge.Value()+rec.OOM.Value()+rec.OtherErrors.Value() != 0 {
		t.Error("spurious error counts on a clean run")
	}
}

func TestObsSeriesAndAttribution(t *testing.T) {
	res, _ := runObs(t, "make", "quickfit", 8)

	if len(res.Series) < 10 {
		t.Fatalf("series has %d points, want >= 10", len(res.Series))
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Op <= res.Series[i-1].Op {
			t.Errorf("series ops not increasing at %d", i)
		}
		if res.Series[i].FootprintBytes < res.Series[i-1].FootprintBytes {
			t.Errorf("footprint decreased at %d", i)
		}
	}
	if res.Series[0].Caches == nil {
		t.Error("series points missing cache state")
	}

	if len(res.Attribution) == 0 {
		t.Fatal("no attribution rows")
	}
	// Attribution must cover every reference the run counted.
	var attributed uint64
	domains := map[string]bool{}
	regions := map[string]bool{}
	for _, row := range res.Attribution {
		attributed += row.Reads + row.Writes
		domains[row.Domain] = true
		regions[row.Region] = true
	}
	if attributed != res.Refs.Total() {
		t.Errorf("attributed %d refs, counter saw %d", attributed, res.Refs.Total())
	}
	for _, d := range []string{"app", "malloc", "free"} {
		if !domains[d] {
			t.Errorf("no attribution rows for domain %q", d)
		}
	}
	for _, r := range []string{"make-stack", "make-globals"} {
		if !regions[r] {
			t.Errorf("no attribution rows for region %q", r)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	res, _ := runObs(t, "make", "quickfit", 8)
	rep := res.Report()
	if rep.Version != obs.ReportVersion || rep.Kind != obs.ReportKind {
		t.Errorf("report header %d/%q", rep.Version, rep.Kind)
	}
	if rep.Alloc == nil || rep.Alloc.Mallocs != res.Workload.Allocs {
		t.Error("report missing recorder snapshot")
	}
	if len(rep.Series) != len(res.Series) || len(rep.Attribution) != len(res.Attribution) {
		t.Error("report dropped series or attribution")
	}
	if len(rep.Caches) != 2 {
		t.Errorf("report caches: %d", len(rep.Caches))
	}

	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"version", "kind", "program", "allocator", "workload",
		"instr", "refs", "alloc", "series", "attribution", "caches"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	// The instr object carries the derived alloc fraction (Figure 1).
	instr, _ := decoded["instr"].(map[string]any)
	if _, ok := instr["alloc_fraction"]; !ok {
		t.Error("instr JSON missing alloc_fraction")
	}
}

// TestReportWithoutObs: a plain run still yields a valid (aggregates
// only) report.
func TestReportWithoutObs(t *testing.T) {
	res := run(t, "make", "bsd", 8, true)
	rep := res.Report()
	if rep.Alloc != nil || rep.Series != nil || rep.Attribution != nil {
		t.Error("uninstrumented run must not fabricate obs data")
	}
	if rep.VM == nil || len(rep.VM.Curve) == 0 {
		t.Error("page-sim run should include the fault curve")
	}
	if _, err := rep.Encode(); err != nil {
		t.Fatal(err)
	}
}
