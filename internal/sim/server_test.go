package sim

import (
	"encoding/json"
	"testing"

	"mallocsim/internal/cache"
	"mallocsim/internal/workload"
)

func serverConfig(t *testing.T, allocName string, scale uint64) Config {
	t.Helper()
	scen, ok := workload.ServerByName("server")
	if !ok {
		t.Fatal("no server scenario")
	}
	return Config{
		Server:    &scen,
		Allocator: allocName,
		Scale:     scale,
		Caches:    []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
	}
}

// TestServerRunReport: a server run must produce the sharing summary —
// nonzero true and false sharing, rows attributed to named regions and
// multiple threads — and the serialized report must carry it, while
// plain program runs keep the section absent.
func TestServerRunReport(t *testing.T) {
	res, err := Run(serverConfig(t, "bsd", 1024))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sharing
	if s == nil {
		t.Fatal("server run produced no sharing summary")
	}
	if s.TrueEvents == 0 || s.FalseEvents == 0 {
		t.Errorf("expected both true and false sharing, got true=%d false=%d", s.TrueEvents, s.FalseEvents)
	}
	if s.PingLines == 0 || len(s.Rows) == 0 {
		t.Errorf("missing attribution detail: pingLines=%d rows=%d", s.PingLines, len(s.Rows))
	}
	tids := map[uint32]bool{}
	for _, row := range s.Rows {
		if row.Region == "?" {
			t.Errorf("row %+v not resolved to a region name", row)
		}
		tids[row.Tid] = true
	}
	if len(tids) < 2 {
		t.Errorf("sharing rows span %d threads, want several", len(tids))
	}
	if res.Workload.Handoffs == 0 {
		t.Error("server run recorded no cross-thread handoffs")
	}
	rep, err := json.Marshal(res.Report())
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(rep) {
		t.Fatal("report not valid JSON")
	}
	var m map[string]any
	if err := json.Unmarshal(rep, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["sharing"]; !ok {
		t.Error("serialized report lacks the sharing section")
	}

	// Single-threaded program runs must keep the schema untouched.
	plain, err := Run(pagingConfig(t, "gawk", 256))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(plain.Report())
	if err != nil {
		t.Fatal(err)
	}
	var pm map[string]any
	if err := json.Unmarshal(pj, &pm); err != nil {
		t.Fatal(err)
	}
	if _, ok := pm["sharing"]; ok {
		t.Error("program run report grew a sharing section")
	}
	if w, ok := pm["workload"].(map[string]any); ok {
		if _, ok := w["handoffs"]; ok {
			t.Error("program run report grew a handoffs field")
		}
	}
}

// TestServerShardedMatchesUnsharded: the sharing attributor is a
// separate sink outside the cache group's shard partitioning, and the
// server workload replays logical threads on one goroutine — so the
// whole report, sharing rows included, must be byte-identical across
// shard widths.
func TestServerShardedMatchesUnsharded(t *testing.T) {
	cfg := serverConfig(t, "locarena", 1024)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheShards = 8
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(plain.Report())
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(sharded.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(pj) != string(sj) {
		t.Errorf("server reports not byte-identical across shard widths:\nplain:   %s\nsharded: %s", pj, sj)
	}
}
