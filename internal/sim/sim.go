// Package sim binds a workload model, an allocator, and the locality
// simulators into one experiment run, producing the metrics every
// table and figure of the paper is computed from.
//
// A run wires up:
//
//	workload.Run ──refs──▶ mem.Memory ──trace──▶ counter
//	                        │    ▲                cache.Group (N configs)
//	                        ▼    │                vm.StackSim (optional)
//	                     allocator (real implementation in that memory)
//
// and instruction costs flow into a cost.Meter split by app/malloc/free
// domain. Execution time is then estimated with the paper's model
// T = I + M·P·D (§4.2).
package sim

import (
	"context"
	"fmt"
	"strings"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all" // register all allocator implementations
	"mallocsim/internal/alloc/shadow"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/obs"
	"mallocsim/internal/trace"
	"mallocsim/internal/vm"
	"mallocsim/internal/workload"
)

// DefaultPenalty is the paper's cache miss penalty ("a modest cache
// miss penalty (25 cycles)").
const DefaultPenalty = 25

// ClockHz converts simulated cycles to the paper's reported seconds.
// Table 2 gives ESPRESSO 2506 M instructions in 155.1 s on the
// DECstation 5000/120 test vehicle — 16.16 MIPS at the paper's
// one-instruction-per-cycle assumption.
const ClockHz = 16.16e6

// Config describes one experiment run.
type Config struct {
	Program   workload.Program
	Allocator string
	// Server, when non-nil, runs the concurrent server scenario instead
	// of Program (which is then ignored): the workload drives N logical
	// threads with per-thread reference streams (see workload.RunServer)
	// and the run attaches a cache.Sharing sink that attributes
	// cross-thread line transfers as true vs. false sharing
	// (Result.Sharing).
	Server *workload.ServerConfig
	// Scale divides the program's event counts (see workload.Config).
	Scale uint64
	// Seed defaults to 1.
	Seed uint64
	// Caches lists the cache configurations to simulate in parallel.
	Caches []cache.Config
	// CacheShards, when > 1, simulates independent set partitions of
	// the cache group on that many worker goroutines (rounded down to a
	// power of two and clamped to the smallest configuration's set
	// count; see cache.Group.StartShards). Results are exact — set
	// partitions are disjoint and the counters are order-independent
	// sums — but configurations with flush intervals fall back to
	// single-goroutine simulation. 0 or 1 keeps everything on the run's
	// goroutine.
	CacheShards int
	// PageSim enables LRU stack-distance page-fault simulation.
	PageSim bool
	// PageSampleShift, with PageSim, samples stack distances at rate
	// 2^-PageSampleShift instead of simulating every page exactly (see
	// vm.WithSampleShift). 0 keeps the exact default; the rate is
	// recorded on the curve and in run reports.
	PageSampleShift uint

	// Recorder, when non-nil, enables the observability layer: the
	// allocator is wrapped with obs.Instrument and per-call metrics
	// (instruction-latency and request-size histograms, error counts,
	// live-set gauges, freelist scan lengths) accumulate in it. A nil
	// Recorder takes the seed code path — no wrapper, no extra sinks,
	// zero overhead (guarded by BenchmarkNilRecorderOverhead).
	Recorder *obs.Recorder
	// SampleEvery, with a non-nil Recorder, captures one
	// obs.SamplePoint every that many malloc/free operations: the
	// phase-behaviour time series (Result.Series).
	SampleEvery uint64
	// Attribution enables the per-region × cost-domain reference
	// attribution matrix (Result.Attribution).
	Attribution bool

	// CheckHeap wraps the allocator in the shadow heap auditor
	// (internal/alloc/shadow): an independent host-side oracle model of
	// the live set that validates every malloc/free against the
	// allocator contract and runs periodic boundary-tag audits. The
	// wrapper adds no simulated references or instructions, so all
	// paper metrics are unchanged; violations land in Result.Shadow.
	CheckHeap bool
	// AuditEvery overrides the heap-audit cadence (operations between
	// full heap-walk audits) when CheckHeap is set; 0 uses
	// shadow.DefaultAuditEvery.
	AuditEvery uint64
}

// Result carries everything measured in one run.
type Result struct {
	Program   string
	Allocator string
	Scale     uint64
	Seed      uint64

	Workload workload.Stats
	Instr    cost.Snapshot
	Refs     trace.Counter
	// Footprint is the paper's "maximum heap size": bytes requested
	// from the OS across all allocator regions (excluding the
	// workload's stack and global segments).
	Footprint uint64
	// TotalFootprint includes the stack and global segments.
	TotalFootprint uint64

	Caches []cache.Result
	Curve  *vm.Curve

	// Recorder echoes Config.Recorder: the per-call allocator metrics
	// (nil when the run was not instrumented).
	Recorder *obs.Recorder
	// Series is the operation-time sample series (Config.SampleEvery).
	Series []obs.SamplePoint
	// Attribution is the region × domain reference matrix
	// (Config.Attribution).
	Attribution []obs.AttribRow

	// Shadow is the heap auditor's verdict (Config.CheckHeap): operation
	// counts, live-set totals, and any contract violations detected.
	Shadow *shadow.Snapshot

	// Sharing is the true/false-sharing attribution of a server run
	// (nil for single-threaded program runs).
	Sharing *obs.SharingSummary
}

// Run executes the configured experiment.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation. The workload driver
// polls ctx periodically inside its step loop (see workload.RunContext)
// so a cancelled or expired context stops the simulation — and with it
// the cache and VM reference sweeps it feeds — within a bounded amount
// of work; the error then satisfies errors.Is for context.Canceled or
// context.DeadlineExceeded via context.Cause. A run that completes is
// byte-identical to one executed without a cancellable context.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	progName := cfg.Program.Name
	if cfg.Server != nil {
		progName = cfg.Server.Name
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim %s/%s: %w", progName, cfg.Allocator, context.Cause(ctx))
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}

	meter := &cost.Meter{}
	var counter trace.Counter
	sinks := []trace.Sink{&counter}
	var group *cache.Group
	if len(cfg.Caches) > 0 {
		group = cache.NewGroup(cfg.Caches...)
		if cfg.CacheShards > 1 {
			group.StartShards(cfg.CacheShards)
			// Joins the shard workers on every exit path; Results()
			// drains in-flight work before reading, and Stop is
			// idempotent, so ordering against assembly is free.
			defer group.Stop()
		}
		sinks = append(sinks, group)
	}
	var pages *vm.StackSim
	if cfg.PageSim {
		var vopts []vm.Option
		if cfg.PageSampleShift > 0 {
			vopts = append(vopts, vm.WithSampleShift(cfg.PageSampleShift))
		}
		pages = vm.NewStackSim(vopts...)
		sinks = append(sinks, pages)
	}

	m := mem.New(trace.NewTee(sinks...), meter)

	// Concurrent runs attach the sharing attributor: a separate sink,
	// so its classification is independent of the cache group's shard
	// count. Events are attributed to the index of the containing
	// region, resolved to the region name at report assembly (regions
	// only ever grow, so indices are stable).
	var sharing *cache.Sharing
	if cfg.Server != nil {
		sharing = cache.NewSharing(cache.SharingConfig{
			RegionOf: func(addr uint64) int {
				for i, r := range m.Regions() {
					if r.Contains(addr) {
						return i
					}
				}
				return 0
			},
		})
		sinks = append(sinks, sharing)
		m.SetSink(trace.NewTee(sinks...))
	}

	// Observability layer: strictly opt-in, so the nil-Recorder path is
	// byte-for-byte the seed configuration. The extra sinks are
	// installed before the allocator is constructed so that even the
	// allocator's initialization references are attributed.
	var sampler *obs.Sampler
	var attrib *obs.Attribution
	if cfg.Recorder != nil || cfg.Attribution {
		if cfg.Attribution {
			attrib = obs.NewAttribution(m, meter)
			sinks = append(sinks, attrib)
		}
		if cfg.Recorder != nil {
			cfg.Recorder.FootprintFn = m.Footprint
			if cfg.SampleEvery > 0 {
				sampler = &obs.Sampler{
					Every: cfg.SampleEvery,
					Mem:   m,
					Meter: meter,
					Group: group,
					Pages: pages,
				}
				sampler.Bind(cfg.Recorder)
				sinks = append(sinks, sampler)
			}
		}
		m.SetSink(trace.NewTee(sinks...))
	}

	// Batched reference delivery: the counter, cache group, page
	// simulator and sampler all implement trace.BlockSink, so the hot
	// per-word emit devirtualizes into columnar buffer appends with one
	// block fan-out per buffer fill (the cache group decomposes each
	// block's addresses into a run-length-collapsed line stream once
	// for all configurations). Order-sensitive sinks (obs.Attribution
	// reads the meter's current domain per reference) implement neither
	// BatchSink nor BlockSink and keep receiving every reference
	// synchronously.
	m.SetBatching(0)

	a, err := alloc.New(cfg.Allocator, m)
	if err != nil {
		return nil, err
	}
	if cfg.Recorder != nil {
		a = obs.Instrument(a, meter, cfg.Recorder)
	}
	// The shadow auditor wraps outermost so obs.Instrument still sees the
	// raw allocator (Scanner detection, latency attribution) while the
	// oracle observes exactly the addresses and errors the workload does.
	var shw *shadow.Allocator
	if cfg.CheckHeap {
		shw = shadow.Wrap(a, m, shadow.Options{AuditEvery: cfg.AuditEvery})
		a = shw
	}

	var stats workload.Stats
	if cfg.Server != nil {
		stats, err = workload.RunServerContext(ctx, m, a, workload.ServerRunConfig{
			Scenario: *cfg.Server,
			Scale:    cfg.Scale,
			Seed:     cfg.Seed,
		})
	} else {
		stats, err = workload.RunContext(ctx, m, a, workload.Config{
			Program: cfg.Program,
			Scale:   cfg.Scale,
			Seed:    cfg.Seed,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("sim %s/%s: %w", progName, cfg.Allocator, err)
	}
	m.Flush() // deliver the tail of the batched reference stream

	// The run completed; one final poll before the cache-result and
	// VM-curve assembly sweeps so a deadline that fired during the last
	// partial batch is still honoured.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim %s/%s: %w", progName, cfg.Allocator, context.Cause(ctx))
	}

	res := &Result{
		Program:        progName,
		Allocator:      cfg.Allocator,
		Scale:          cfg.Scale,
		Seed:           cfg.Seed,
		Workload:       stats,
		Instr:          meter.Snapshot(),
		Refs:           counter,
		TotalFootprint: m.Footprint(),
	}
	for _, r := range m.Regions() {
		// The workload's own segments — "<prog>-stack" (plus the server
		// driver's per-thread "<prog>-stackN") and "<prog>-globals" —
		// belong to the application, not the allocator.
		name := r.Name()
		if name == progName+"-globals" || strings.HasPrefix(name, progName+"-stack") {
			continue
		}
		res.Footprint += r.Size()
	}
	if group != nil {
		res.Caches = group.Results()
	}
	if pages != nil {
		res.Curve = pages.Curve()
	}
	res.Recorder = cfg.Recorder
	if sampler != nil {
		res.Series = sampler.Points()
	}
	if attrib != nil {
		res.Attribution = attrib.Rows()
	}
	if shw != nil {
		// One final full audit so end-of-run heap corruption is caught
		// even when the op count never hit the periodic cadence.
		shw.Audit()
		res.Shadow = shw.Snapshot()
	}
	if sharing != nil {
		res.Sharing = sharingSummary(sharing.Report(), m.Regions(), cfg.Server.Threads)
	}
	return res, nil
}

// sharingSummary resolves the attributor's region indices to region
// names for the report.
func sharingSummary(rep cache.SharingReport, regions []*mem.Region, threads int) *obs.SharingSummary {
	s := &obs.SharingSummary{
		Threads:     threads,
		TrueEvents:  rep.True,
		FalseEvents: rep.False,
		PingLines:   rep.PingLines,
	}
	for _, row := range rep.Rows {
		name := "?"
		if row.Region >= 0 && row.Region < len(regions) {
			name = regions[row.Region].Name()
		}
		s.Rows = append(s.Rows, obs.SharingRow{
			Region:      name,
			Tid:         uint32(row.Tid),
			TrueEvents:  row.True,
			FalseEvents: row.False,
		})
	}
	return s
}

// AllocFraction returns the fraction of instructions spent in malloc
// and free (Figure 1's y-axis).
func (r *Result) AllocFraction() float64 {
	t := r.Instr.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Instr.Malloc+r.Instr.Free) / float64(t)
}

// CacheResult returns the result for the cache of the given size, or
// false when that size was not simulated.
func (r *Result) CacheResult(size uint64) (cache.Result, bool) {
	for _, c := range r.Caches {
		if c.Config.Size == size {
			return c, true
		}
	}
	return cache.Result{}, false
}

// BaseCycles is the execution time in cycles ignoring the memory
// hierarchy: the instruction count (loads and stores complete in one
// cycle).
func (r *Result) BaseCycles() uint64 { return r.Instr.Total() }

// MissCycles is the time spent waiting on data-cache misses for the
// cache of the given size: penalty × misses (the M·P·D term).
func (r *Result) MissCycles(cacheSize uint64, penalty uint64) uint64 {
	c, ok := r.CacheResult(cacheSize)
	if !ok {
		return 0
	}
	return penalty * c.Misses
}

// TotalCycles is the paper's estimated execution time I + M·P·D.
func (r *Result) TotalCycles(cacheSize uint64, penalty uint64) uint64 {
	return r.BaseCycles() + r.MissCycles(cacheSize, penalty)
}

// Seconds converts simulated cycles to full-scale seconds on the
// paper's test vehicle, undoing the run's scale factor so values are
// comparable with the paper's tables.
func (r *Result) Seconds(cycles uint64) float64 {
	return float64(cycles) * float64(r.Scale) / ClockHz
}
