package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"mallocsim/internal/cache"
	"mallocsim/internal/workload"
)

func pagingConfig(t *testing.T, prog string, scale uint64) Config {
	t.Helper()
	p, ok := workload.ByName(prog)
	if !ok {
		t.Fatalf("no %s program", prog)
	}
	return Config{
		Program:   p,
		Allocator: "quickfit",
		Scale:     scale,
		Caches:    []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
		PageSim:   true,
	}
}

// TestShardedRunMatchesUnsharded: CacheShards routes the cache-line
// stream through worker goroutines, but set partitions are disjoint
// and the counters order-independent sums, so the whole result — and
// the serialized run report — must be byte-identical to the
// single-goroutine run.
func TestShardedRunMatchesUnsharded(t *testing.T) {
	cfg := pagingConfig(t, "gs", 64)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheShards = 8
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Caches, sharded.Caches) {
		t.Errorf("cache results diverged:\nplain:   %+v\nsharded: %+v", plain.Caches, sharded.Caches)
	}
	if plain.Refs != sharded.Refs {
		t.Errorf("ref counters diverged: %+v vs %+v", plain.Refs, sharded.Refs)
	}
	if !reflect.DeepEqual(plain.Curve, sharded.Curve) {
		t.Errorf("fault curves diverged")
	}
	pj, err := json.Marshal(plain.Report())
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(sharded.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(pj) != string(sj) {
		t.Errorf("run reports not byte-identical:\nplain:   %s\nsharded: %s", pj, sj)
	}
}

// TestSampledRunConvergence: with PageSampleShift set, the golden
// paging workloads' sampled fault curves must track the exact curves
// at every sweep point at or above four times the 2^shift distance
// resolution: within 20% of the fault count, or — at the steep knees
// of the curve, where sampled distances spread across the threshold —
// within 0.3 percentage points of the fault *rate* (the quantity the
// paper's figures plot). Below the resolution, quantization (sampled
// distances are multiples of 2^shift) dominates by construction.
// Reference counts must stay exact, the sampling rate must be
// recorded in the run report, and the exact run's report must not
// carry a sample_rate field — its bytes are pinned by the golden
// matrix.
func TestSampledRunConvergence(t *testing.T) {
	// The rate a workload needs scales with its page population: gs
	// touches thousands of distinct pages (rate 1/4 suffices), ptc
	// only hundreds (rate 1/2 keeps enough sampled pages for the
	// estimator).
	cases := []struct {
		prog  string
		scale uint64
		shift uint
	}{
		{"gs", 16, 2},
		{"ptc", 8, 1},
	}
	for _, tc := range cases {
		prog, shift := tc.prog, tc.shift
		rate := 1 / float64(uint64(1)<<shift)
		t.Run(prog, func(t *testing.T) {
			cfg := pagingConfig(t, prog, tc.scale)
			exact, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.PageSampleShift = shift
			sampled, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Curve == nil || sampled.Curve == nil {
				t.Fatal("missing fault curves")
			}
			if exact.Curve.Refs != sampled.Curve.Refs {
				t.Errorf("Refs must stay exact under sampling: %d vs %d", exact.Curve.Refs, sampled.Curve.Refs)
			}
			if got := sampled.Curve.SampleRate(); got != rate {
				t.Errorf("SampleRate = %v, want %v", got, rate)
			}
			checked := 0
			for _, p := range exact.Curve.Sweep() {
				if p.Pages < 1<<(shift+2) || p.Faults < 2000 {
					continue
				}
				est := sampled.Curve.Faults(p.Pages)
				diff := float64(est) - float64(p.Faults)
				if diff < 0 {
					diff = -diff
				}
				rel := diff / float64(p.Faults)
				rateErr := diff / float64(exact.Curve.Refs)
				if rel > 0.20 && rateErr > 0.003 {
					t.Errorf("faults(%d pages) off by %.1f%% (%.2fpp of fault rate): sampled %d vs exact %d",
						p.Pages, 100*rel, 100*rateErr, est, p.Faults)
				}
				checked++
			}
			if checked == 0 {
				t.Error("no sweep point had enough fault events to check convergence")
			}

			// The rate lands in the report; exact reports stay unchanged.
			if rep := sampled.Report(); rep.VM == nil || rep.VM.SampleRate != rate {
				t.Errorf("sampled run report does not record the sampling rate: %+v", rep.VM)
			}
			if rep := exact.Report(); rep.VM == nil || rep.VM.SampleRate != 0 {
				t.Errorf("exact run report must leave sample_rate absent: %+v", rep.VM)
			}
		})
	}
}
