package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"mallocsim/internal/cache"
	"mallocsim/internal/workload"
)

// cancelConfig is a run long enough (at scale 4, with cache and page
// simulation attached) that a cancelled context must interrupt it: the
// full run takes well over the budgets asserted below.
func cancelConfig(t *testing.T) Config {
	t.Helper()
	prog, ok := workload.ByName("espresso")
	if !ok {
		t.Fatal("espresso workload missing")
	}
	return Config{
		Program:   prog,
		Allocator: "bsd",
		Scale:     4,
		Caches:    []cache.Config{{Size: 64 << 10}},
		PageSim:   true,
	}
}

// TestRunContextPreCancelled covers the entry check: a context that is
// already done must fail immediately with the cancellation cause, not
// start simulating.
func TestRunContextPreCancelled(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		ctx  func() context.Context
		want error
	}{
		{
			name: "cancelled",
			ctx: func() context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			want: context.Canceled,
		},
		{
			name: "deadline-exceeded",
			ctx: func() context.Context {
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				_ = cancel // context is already past its deadline
				return ctx
			},
			want: context.DeadlineExceeded,
		},
		{
			name: "cancel-cause-deadline",
			ctx: func() context.Context {
				// The experiment service's deadline shape: a plain cancel
				// whose recorded cause is DeadlineExceeded.
				ctx, cancel := context.WithCancelCause(context.Background())
				cancel(context.DeadlineExceeded)
				return ctx
			},
			want: context.DeadlineExceeded,
		},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			res, err := RunContext(tc.ctx(), cancelConfig(t))
			if res != nil {
				t.Fatalf("got a result from a pre-cancelled run")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is %v", err, tc.want)
			}
			if d := time.Since(start); d > time.Second {
				t.Fatalf("pre-cancelled run took %v; the entry check must not simulate", d)
			}
		})
	}
}

// TestRunContextMidRunCancel cancels while the workload driver is in
// its step loop and requires the run to stop within a small multiple
// of the driver's poll cadence, far below the run's natural duration.
func TestRunContextMidRunCancel(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, cancelConfig(t))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the driver enter its loop
	cancel()
	start := time.Now()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want errors.Is context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("run still going %v after cancel", time.Since(start))
	}
}

// TestRunContextCompletedUnaffected runs to completion under a
// cancellable context, cancels afterwards, and requires the report to
// be byte-identical to an uncancellable run: wiring a context through
// must never perturb results.
func TestRunContextCompletedUnaffected(t *testing.T) {
	t.Parallel()
	prog, _ := workload.ByName("make")
	cfg := Config{
		Program:   prog,
		Allocator: "gnufit",
		Scale:     512,
		Caches:    []cache.Config{{Size: 16 << 10}},
		PageSim:   true,
	}

	ctx, cancel := context.WithCancel(context.Background())
	got, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // after completion: must not matter

	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Report().Encode()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Report().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatal("report from a cancellable (but uncancelled) run differs from a plain run")
	}
}
