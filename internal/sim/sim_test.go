package sim

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/alloc/all"
	"mallocsim/internal/cache"
	"mallocsim/internal/workload"
)

func run(t *testing.T, progName, allocName string, scale uint64, pageSim bool) *Result {
	t.Helper()
	prog, ok := workload.ByName(progName)
	if !ok {
		t.Fatalf("no program %q", progName)
	}
	res, err := Run(Config{
		Program:   prog,
		Allocator: allocName,
		Scale:     scale,
		Caches:    []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
		PageSim:   pageSim,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	// Importing sim registers every allocator; the paper's five plus our
	// extensions and ablation variants must all be constructible.
	names := alloc.Names()
	want := []string{"bsd", "custom", "custom-pow2", "custom-reclaim", "firstfit",
		"firstfit-nocoalesce", "firstfit-norover", "gnufit", "gnulocal",
		"gnulocal-tags", "quickfit"}
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	for _, w := range want {
		if !has[w] {
			t.Errorf("registry missing %q (have %v)", w, names)
		}
	}
	for _, n := range all.Paper {
		if !has[n] {
			t.Errorf("paper list references unregistered %q", n)
		}
	}
}

func TestRunProducesAllMetrics(t *testing.T) {
	res := run(t, "make", "quickfit", 4, true)
	if res.Program != "make" || res.Allocator != "quickfit" {
		t.Error("identity fields wrong")
	}
	if res.Instr.Total() == 0 || res.Refs.Total() == 0 {
		t.Error("no instructions or references recorded")
	}
	if res.Footprint == 0 || res.TotalFootprint <= res.Footprint {
		t.Errorf("footprints: %d / %d", res.Footprint, res.TotalFootprint)
	}
	if len(res.Caches) != 2 {
		t.Fatalf("cache results: %d", len(res.Caches))
	}
	if res.Curve == nil || res.Curve.Refs == 0 {
		t.Error("page curve missing")
	}
	if _, ok := res.CacheResult(16 << 10); !ok {
		t.Error("16K result missing")
	}
	if _, ok := res.CacheResult(99); ok {
		t.Error("bogus cache size found")
	}
	if res.AllocFraction() <= 0 || res.AllocFraction() >= 1 {
		t.Errorf("alloc fraction %v", res.AllocFraction())
	}
}

func TestTimeModel(t *testing.T) {
	res := run(t, "make", "bsd", 8, false)
	base := res.BaseCycles()
	miss := res.MissCycles(16<<10, 25)
	if base != res.Instr.Total() {
		t.Error("base cycles must equal instructions")
	}
	c, _ := res.CacheResult(16 << 10)
	if miss != 25*c.Misses {
		t.Errorf("miss cycles %d != 25 x %d", miss, c.Misses)
	}
	if res.TotalCycles(16<<10, 25) != base+miss {
		t.Error("T != I + M*P*D")
	}
	if res.MissCycles(1<<30, 25) != 0 {
		t.Error("unknown cache size must contribute zero miss time")
	}
	// Seconds undo the scale factor.
	if s := res.Seconds(uint64(ClockHz)); s != float64(res.Scale) {
		t.Errorf("Seconds(1Hz-sec of cycles) = %v, want scale %d", s, res.Scale)
	}
}

func TestUnknownAllocator(t *testing.T) {
	prog, _ := workload.ByName("make")
	if _, err := Run(Config{Program: prog, Allocator: "nope"}); err == nil {
		t.Error("expected error for unknown allocator")
	}
}

// TestPaperShapes asserts the qualitative conclusions of the paper on a
// moderately scaled GhostScript-medium run (the paper notes locality
// differences are "muted for the smaller input set", so the medium set
// is the right place to look): these are the load-bearing integration
// checks of the whole reproduction.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	results := map[string]*Result{}
	for _, name := range all.Paper {
		results[name] = run(t, "gs-medium", name, 32, false)
	}
	miss16 := func(n string) float64 {
		c, _ := results[n].CacheResult(16 << 10)
		return c.MissRate()
	}
	// 1. FIRSTFIT has the worst cache locality of the five.
	for _, other := range []string{"gnufit", "bsd", "gnulocal", "quickfit"} {
		if miss16("firstfit") < miss16(other)*1.1 {
			t.Errorf("firstfit miss rate %.3f not clearly worse than %s %.3f",
				miss16("firstfit"), other, miss16(other))
		}
	}
	// 2. BSD wastes the most memory among the segregated allocators.
	if results["bsd"].Footprint <= results["quickfit"].Footprint {
		t.Errorf("bsd footprint %d not larger than quickfit %d",
			results["bsd"].Footprint, results["quickfit"].Footprint)
	}
	if results["bsd"].Footprint <= results["gnulocal"].Footprint {
		t.Errorf("bsd footprint %d not larger than gnulocal %d",
			results["bsd"].Footprint, results["gnulocal"].Footprint)
	}
	// 3. BSD and QUICKFIT are the cheapest in allocator CPU time.
	for _, fast := range []string{"bsd", "quickfit"} {
		for _, slow := range []string{"firstfit", "gnulocal"} {
			if results[fast].AllocFraction() >= results[slow].AllocFraction() {
				t.Errorf("%s alloc time %.4f not below %s %.4f", fast,
					results[fast].AllocFraction(), slow, results[slow].AllocFraction())
			}
		}
	}
	// 4. GNU LOCAL's locality engineering works: lowest 64K miss rate.
	c64 := func(n string) float64 {
		c, _ := results[n].CacheResult(64 << 10)
		return c.MissRate()
	}
	for _, other := range []string{"firstfit", "gnufit", "bsd", "quickfit"} {
		if c64("gnulocal") > c64(other) {
			t.Errorf("gnulocal 64K miss %.4f above %s %.4f", c64("gnulocal"), other, c64(other))
		}
	}
}

// TestBoundaryTagAblation: padding GNU LOCAL with emulated tags must
// increase footprint and execution time — the paper's Table 6 direction.
func TestBoundaryTagAblation(t *testing.T) {
	plain := run(t, "espresso", "gnulocal", 64, false)
	tagged := run(t, "espresso", "gnulocal-tags", 64, false)
	if tagged.Footprint <= plain.Footprint {
		t.Errorf("tags should cost space: %d vs %d", tagged.Footprint, plain.Footprint)
	}
	if tagged.TotalCycles(64<<10, 25) <= plain.TotalCycles(64<<10, 25) {
		t.Errorf("tags should cost time: %d vs %d",
			tagged.TotalCycles(64<<10, 25), plain.TotalCycles(64<<10, 25))
	}
}

// TestCustomBeatsBSDOnSpace: the recommended architecture should match
// BSD's speed while wasting far less memory.
func TestCustomBeatsBSDOnSpace(t *testing.T) {
	bsd := run(t, "gawk", "bsd", 32, false)
	custom := run(t, "gawk", "custom", 32, false)
	if custom.Footprint >= bsd.Footprint {
		t.Errorf("custom footprint %d not below bsd %d", custom.Footprint, bsd.Footprint)
	}
	if custom.AllocFraction() > bsd.AllocFraction()*1.5 {
		t.Errorf("custom alloc time %.4f far above bsd %.4f",
			custom.AllocFraction(), bsd.AllocFraction())
	}
}

// TestAssociativityExtension: higher associativity at equal size never
// dramatically worsens the workload miss rate and usually improves it.
func TestAssociativityExtension(t *testing.T) {
	prog, _ := workload.ByName("make")
	res, err := Run(Config{
		Program:   prog,
		Allocator: "bsd",
		Scale:     4,
		Caches: []cache.Config{
			{Size: 16 << 10, Assoc: 1},
			{Size: 16 << 10, Assoc: 2},
			{Size: 16 << 10, Assoc: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dm := res.Caches[0].MissRate()
	w4 := res.Caches[2].MissRate()
	if w4 > dm*1.1 {
		t.Errorf("4-way miss rate %.4f far above direct-mapped %.4f", w4, dm)
	}
}

func TestStackAndGlobalsExcludedFromHeapFootprint(t *testing.T) {
	res := run(t, "make", "bsd", 8, false)
	prog, _ := workload.ByName("make")
	diff := res.TotalFootprint - res.Footprint
	// Stack (8 KB touched) + globals segment + region reserves.
	if diff < prog.GlobalBytes {
		t.Errorf("non-heap segments too small: %d", diff)
	}
}

// TestBuddyFamilyShapes: Fibonacci buddy's golden-ratio classes waste
// less memory than binary buddy's powers of two, and both allocate
// faster than searching first fit.
func TestBuddyFamilyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	bin := run(t, "espresso", "buddy", 32, false)
	fib := run(t, "espresso", "fibbuddy", 32, false)
	ff := run(t, "espresso", "firstfit", 32, false)
	if fib.Footprint >= bin.Footprint {
		t.Errorf("fibonacci footprint %d not below binary %d", fib.Footprint, bin.Footprint)
	}
	if ff.Footprint >= bin.Footprint {
		t.Errorf("binary buddy %d should waste more than first fit %d", bin.Footprint, ff.Footprint)
	}
	for _, b := range []*Result{bin, fib} {
		if b.AllocFraction() >= ff.AllocFraction() {
			t.Errorf("%s alloc time %.4f not below firstfit %.4f",
				b.Allocator, b.AllocFraction(), ff.AllocFraction())
		}
	}
}

// TestLifetimeSegregationShapes: the §5.1 design should cost little
// (two arenas) and never be dramatically worse than plain custom, while
// routing immortals separately (verified precisely in its unit tests).
func TestLifetimeSegregationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	custom := run(t, "espresso", "custom", 32, true)
	lifetime := run(t, "espresso", "lifetime", 32, true)
	if float64(lifetime.Footprint) > float64(custom.Footprint)*1.35 {
		t.Errorf("lifetime footprint %d far above custom %d", lifetime.Footprint, custom.Footprint)
	}
	// Page locality at constrained memory should be competitive or
	// better (segregated immortals pin fewer churn pages).
	half := custom.Curve.MinResidentPages() / 2
	cf := custom.Curve.FaultRate(half)
	lf := lifetime.Curve.FaultRate(half)
	if lf > cf*1.25 {
		t.Errorf("lifetime fault rate %.6f far above custom %.6f", lf, cf)
	}
}
