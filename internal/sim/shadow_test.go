package sim

import (
	"sync"
	"testing"

	"mallocsim/internal/alloc/all"
	"mallocsim/internal/workload"
)

// TestCheckedPaperMatrix runs the paper's full 5×5 matrix — every paper
// program through every paper allocator — under the shadow heap auditor
// with a tight audit cadence, in parallel (the -race CI job covers the
// checked code paths): every run must finish with zero contract
// violations and an empty oracle live set left only by design (the
// workloads leak their final live structures, so LiveBlocks is merely
// reported, not asserted).
func TestCheckedPaperMatrix(t *testing.T) {
	type pair struct{ prog, alloc string }
	var pairs []pair
	for _, p := range workload.PaperPrograms() {
		for _, a := range all.Paper {
			pairs = append(pairs, pair{p.Name, a})
		}
	}
	var wg sync.WaitGroup
	for _, pr := range pairs {
		wg.Add(1)
		go func(pr pair) {
			defer wg.Done()
			prog, _ := workload.ByName(pr.prog)
			res, err := Run(Config{
				Program:    prog,
				Allocator:  pr.alloc,
				Scale:      512,
				CheckHeap:  true,
				AuditEvery: 256,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", pr.prog, pr.alloc, err)
				return
			}
			s := res.Shadow
			if s == nil {
				t.Errorf("%s/%s: CheckHeap run produced no shadow snapshot", pr.prog, pr.alloc)
				return
			}
			if s.Violations != 0 {
				for _, v := range s.First {
					t.Errorf("%s/%s: %s", pr.prog, pr.alloc, v.String())
				}
				t.Errorf("%s/%s: %d contract violations", pr.prog, pr.alloc, s.Violations)
			}
			if s.Ops == 0 {
				t.Errorf("%s/%s: oracle observed no operations", pr.prog, pr.alloc)
			}
		}(pr)
	}
	wg.Wait()
}

// TestCheckedRunMatchesUnchecked: the shadow wrapper is host-side only,
// so a checked run must report byte-identical paper metrics to the
// unchecked run — except where periodic audits (which walk the heap with
// counted references) are enabled; this test therefore audits only at
// the end via cadence larger than the op count.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	prog, _ := workload.ByName("make")
	base, err := Run(Config{Program: prog, Allocator: "firstfit", Scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(Config{
		Program:   prog,
		Allocator: "firstfit",
		Scale:     64,
		CheckHeap: true,
		// One op between audits would perturb counts; push the cadence
		// beyond the run length so only the end-of-run audit happens
		// after the workload's metrics are final.
		AuditEvery: 1 << 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Instr.Total() != checked.Instr.Total() {
		t.Errorf("instruction counts diverge: %d vs %d", base.Instr.Total(), checked.Instr.Total())
	}
	if base.Refs != checked.Refs {
		t.Errorf("reference counts diverge: %+v vs %+v", base.Refs, checked.Refs)
	}
	if base.Footprint != checked.Footprint {
		t.Errorf("footprints diverge: %d vs %d", base.Footprint, checked.Footprint)
	}
	if checked.Shadow == nil || checked.Shadow.Violations != 0 {
		t.Errorf("checked run not clean: %+v", checked.Shadow)
	}
}
