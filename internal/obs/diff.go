package obs

import (
	"fmt"
	"math"
	"strings"
)

// Report diffing: the query side of the system of record. Two runs —
// the same spec on two builds, or two allocators on one workload — are
// compared field by field, and every numeric metric becomes a
// MetricDelta carrying the absolute and relative change plus a
// significance verdict against a caller-chosen threshold. The serve
// layer exposes this as GET /v1/diff/{a}/{b}; the regression sentinel
// applies the same significance rule to paper tables.

// DiffVersion is the schema version of the diff document.
const DiffVersion = 1

// DiffKind identifies the diff document type.
const DiffKind = "mallocsim-report-diff"

// DiffOptions tunes significance.
type DiffOptions struct {
	// RelThreshold is the relative-delta significance bar: a metric
	// whose symmetric relative change exceeds it is flagged. 0 means
	// any change at all is significant — the right default for a
	// deterministic simulator, where identical inputs must reproduce
	// identical outputs.
	RelThreshold float64
	// AbsThreshold additionally requires |a-b| to exceed this value
	// before a metric is flagged; it suppresses noise on metrics that
	// hover near zero. 0 imposes no floor.
	AbsThreshold float64
}

// MetricDelta is one numeric metric's change between two reports.
type MetricDelta struct {
	// Metric is the dotted path of the field, e.g. "instr.malloc" or
	// "cache[16K:32:1].miss_rate".
	Metric string  `json:"metric"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	// AbsDelta is b - a (signed, so a regression's direction is
	// visible).
	AbsDelta float64 `json:"abs_delta"`
	// RelDelta is |b-a| / max(|a|, |b|): symmetric, bounded, and
	// JSON-safe even when one side is zero (0 when both are).
	RelDelta float64 `json:"rel_delta"`
	// Significant marks deltas beyond the thresholds.
	Significant bool `json:"significant,omitempty"`
}

// FieldDiff is one non-numeric field (identity or structure) that
// differs between the reports.
type FieldDiff struct {
	Field string `json:"field"`
	A     string `json:"a"`
	B     string `json:"b"`
}

// Diff is the machine-readable comparison of two run reports.
type Diff struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// HashA/HashB are the content addresses of the compared reports
	// when the caller knows them (the HTTP layer fills them in).
	HashA string `json:"hash_a,omitempty"`
	HashB string `json:"hash_b,omitempty"`
	// Identical is true when every compared field matches exactly.
	Identical bool `json:"identical"`
	// Fields lists non-numeric differences: program, allocator, report
	// version, missing sections, unmatched cache configs.
	Fields []FieldDiff `json:"fields,omitempty"`
	// Metrics lists every compared numeric metric, in a fixed order.
	Metrics []MetricDelta `json:"metrics"`
	// SignificantCount is the number of metrics beyond threshold.
	SignificantCount int `json:"significant_count"`
}

// Significant returns the metrics flagged as beyond threshold.
func (d *Diff) Significant() []MetricDelta {
	var out []MetricDelta
	for _, m := range d.Metrics {
		if m.Significant {
			out = append(out, m)
		}
	}
	return out
}

// String renders a compact human-readable summary: the verdict line,
// then one line per significant metric.
func (d *Diff) String() string {
	var sb strings.Builder
	if d.Identical {
		sb.WriteString("reports identical\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "reports differ: %d/%d metrics beyond threshold, %d field differences\n",
		d.SignificantCount, len(d.Metrics), len(d.Fields))
	for _, f := range d.Fields {
		fmt.Fprintf(&sb, "  field %-28s %q -> %q\n", f.Field, f.A, f.B)
	}
	for _, m := range d.Metrics {
		if !m.Significant {
			continue
		}
		fmt.Fprintf(&sb, "  %-34s %v -> %v (delta %+g, %.4f%% rel)\n",
			m.Metric, m.A, m.B, m.AbsDelta, m.RelDelta*100)
	}
	return sb.String()
}

// relDelta is the symmetric relative change |b-a| / max(|a|, |b|).
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}

// diffBuilder accumulates deltas against one threshold pair.
type diffBuilder struct {
	opts DiffOptions
	d    *Diff
}

func (b *diffBuilder) metric(name string, a, c float64) {
	m := MetricDelta{Metric: name, A: a, B: c, AbsDelta: c - a, RelDelta: relDelta(a, c)}
	if a != c && m.RelDelta >= b.opts.RelThreshold && math.Abs(m.AbsDelta) >= b.opts.AbsThreshold {
		m.Significant = true
		b.d.SignificantCount++
	}
	b.d.Metrics = append(b.d.Metrics, m)
}

func (b *diffBuilder) umetric(name string, a, c uint64) {
	b.metric(name, float64(a), float64(c))
}

func (b *diffBuilder) field(name, a, c string) {
	if a != c {
		b.d.Fields = append(b.d.Fields, FieldDiff{Field: name, A: a, B: c})
	}
}

// DiffReports compares two run reports field by field. Identity fields
// (program, allocator, version) that differ are reported as FieldDiffs
// — diffing two different experiments is a legitimate query ("compare
// quickfit to firstfit on gs"), so it is not an error. Numeric metrics
// are emitted in a fixed order regardless of input, so diff documents
// for the same report pair are byte-identical across runs.
func DiffReports(a, b *Report, opts DiffOptions) *Diff {
	bd := &diffBuilder{opts: opts, d: &Diff{Version: DiffVersion, Kind: DiffKind}}
	d := bd.d

	bd.field("kind", a.Kind, b.Kind)
	bd.field("program", a.Program, b.Program)
	bd.field("allocator", a.Allocator, b.Allocator)
	bd.field("version", fmt.Sprint(a.Version), fmt.Sprint(b.Version))
	bd.umetric("scale", a.Scale, b.Scale)
	bd.umetric("seed", a.Seed, b.Seed)

	bd.umetric("workload.allocs", a.Workload.Allocs, b.Workload.Allocs)
	bd.umetric("workload.frees", a.Workload.Frees, b.Workload.Frees)
	bd.umetric("workload.final_live", a.Workload.FinalLive, b.Workload.FinalLive)
	bd.umetric("workload.live_bytes", a.Workload.LiveBytes, b.Workload.LiveBytes)
	bd.umetric("workload.req_bytes", a.Workload.ReqBytes, b.Workload.ReqBytes)

	bd.umetric("instr.app", a.Instr.App, b.Instr.App)
	bd.umetric("instr.malloc", a.Instr.Malloc, b.Instr.Malloc)
	bd.umetric("instr.free", a.Instr.Free, b.Instr.Free)
	bd.metric("instr.alloc_fraction", a.Instr.AllocFraction(), b.Instr.AllocFraction())

	bd.umetric("refs.reads", a.Refs.Reads, b.Refs.Reads)
	bd.umetric("refs.writes", a.Refs.Writes, b.Refs.Writes)
	bd.umetric("refs.bytes_read", a.Refs.BytesRead, b.Refs.BytesRead)
	bd.umetric("refs.bytes_wrote", a.Refs.BytesWrote, b.Refs.BytesWrote)

	bd.umetric("footprint_bytes", a.FootprintBytes, b.FootprintBytes)
	bd.umetric("total_footprint_bytes", a.TotalFootprintBytes, b.TotalFootprintBytes)

	diffCaches(bd, a.Caches, b.Caches)
	diffVM(bd, a.VM, b.VM)
	diffAlloc(bd, a.Alloc, b.Alloc)

	d.Identical = len(d.Fields) == 0 && allZero(d.Metrics)
	return d
}

// allZero reports whether no metric moved at all (significance aside:
// a sub-threshold drift still makes reports non-identical).
func allZero(ms []MetricDelta) bool {
	for _, m := range ms {
		if m.AbsDelta != 0 {
			return false
		}
	}
	return true
}

// diffCaches aligns cache summaries by their config string; configs
// present on only one side become FieldDiffs.
func diffCaches(bd *diffBuilder, a, b []CacheSummary) {
	inB := map[string]CacheSummary{}
	for _, c := range b {
		inB[c.Config] = c
	}
	matched := map[string]bool{}
	for _, ca := range a {
		cb, ok := inB[ca.Config]
		if !ok {
			bd.field("cache["+ca.Config+"]", "present", "missing")
			continue
		}
		matched[ca.Config] = true
		bd.umetric("cache["+ca.Config+"].accesses", ca.Accesses, cb.Accesses)
		bd.umetric("cache["+ca.Config+"].misses", ca.Misses, cb.Misses)
		bd.metric("cache["+ca.Config+"].miss_rate", ca.MissRate, cb.MissRate)
	}
	for _, cb := range b {
		if !matched[cb.Config] {
			bd.field("cache["+cb.Config+"]", "missing", "present")
		}
	}
}

// diffVM compares page-fault summaries; curve points align by pages.
func diffVM(bd *diffBuilder, a, b *VMSummary) {
	switch {
	case a == nil && b == nil:
		return
	case a == nil || b == nil:
		bd.field("vm", presence(a != nil), presence(b != nil))
		return
	}
	bd.umetric("vm.page_size", a.PageSize, b.PageSize)
	bd.umetric("vm.refs", a.Refs, b.Refs)
	bd.umetric("vm.distinct_pages", a.DistinctPages, b.DistinctPages)
	inB := map[uint64]VMPoint{}
	for _, p := range b.Curve {
		inB[p.Pages] = p
	}
	matched := map[uint64]bool{}
	for _, pa := range a.Curve {
		pb, ok := inB[pa.Pages]
		if !ok {
			bd.field(fmt.Sprintf("vm.curve[%d]", pa.Pages), "present", "missing")
			continue
		}
		matched[pa.Pages] = true
		bd.umetric(fmt.Sprintf("vm.curve[%d].faults", pa.Pages), pa.Faults, pb.Faults)
		bd.metric(fmt.Sprintf("vm.curve[%d].fault_rate", pa.Pages), pa.FaultRate, pb.FaultRate)
	}
	for _, pb := range b.Curve {
		if !matched[pb.Pages] {
			bd.field(fmt.Sprintf("vm.curve[%d]", pb.Pages), "missing", "present")
		}
	}
}

// diffAlloc compares the per-call allocator metrics when both runs were
// instrumented; an asymmetric presence is a field difference, not an
// error, since instrumentation is optional.
func diffAlloc(bd *diffBuilder, a, b *RecorderSnapshot) {
	switch {
	case a == nil && b == nil:
		return
	case a == nil || b == nil:
		bd.field("alloc", presence(a != nil), presence(b != nil))
		return
	}
	bd.umetric("alloc.mallocs", a.Mallocs, b.Mallocs)
	bd.umetric("alloc.frees", a.Frees, b.Frees)
	bd.umetric("alloc.err_bad_free", a.BadFree, b.BadFree)
	bd.umetric("alloc.err_too_large", a.TooLarge, b.TooLarge)
	bd.umetric("alloc.err_oom", a.OOM, b.OOM)
	bd.metric("alloc.live_objects", float64(a.LiveObjects), float64(b.LiveObjects))
	bd.metric("alloc.live_objects_max", float64(a.LiveObjectsMax), float64(b.LiveObjectsMax))
	bd.metric("alloc.live_bytes", float64(a.LiveBytes), float64(b.LiveBytes))
	bd.metric("alloc.live_bytes_max", float64(a.LiveBytesMax), float64(b.LiveBytesMax))
	bd.metric("alloc.footprint_max", float64(a.FootprintMax), float64(b.FootprintMax))
}

func presence(p bool) string {
	if p {
		return "present"
	}
	return "missing"
}
