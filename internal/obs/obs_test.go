package obs

import (
	"encoding/json"
	"errors"
	"testing"

	"mallocsim/internal/alloc"
	_ "mallocsim/internal/alloc/all"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Add(10)
	g.Add(-3)
	g.Add(5)
	if g.Value() != 12 {
		t.Errorf("gauge = %d, want 12", g.Value())
	}
	if g.Max() != 12 {
		t.Errorf("gauge max = %d, want 12", g.Max())
	}
	g.Add(-12)
	if g.Value() != 0 || g.Max() != 12 {
		t.Errorf("gauge after drain = %d max %d, want 0 max 12", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      uint64
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{1023, 512, 1023},
		{1024, 1024, 2047},
	}
	for _, c := range cases {
		i := bucketIndex(c.v)
		if BucketLo(i) != c.lo || BucketHi(i) != c.hi {
			t.Errorf("value %d: bucket [%d,%d], want [%d,%d]",
				c.v, BucketLo(i), BucketHi(i), c.lo, c.hi)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.String() != "empty" || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 100, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 || h.Sum() != 1306 {
		t.Errorf("count=%d sum=%d, want 8/1306", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min=%d max=%d, want 0/1000", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 1306.0/8; got != want {
		t.Errorf("mean=%v want %v", got, want)
	}
	// p50 of 8 values → 4th value (3), bucket [2,3] → upper bound 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50=%d, want 3", q)
	}
	// p99 → 8th value (1000), bucket [512,1023] clamped to max.
	if q := h.Quantile(0.99); q != 1000 {
		t.Errorf("p99=%d, want 1000", q)
	}
	// Quantile upper bounds clamp to the observed max.
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100=%d, want 1000", q)
	}

	buckets := h.Buckets()
	var n uint64
	for _, b := range buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket [%d,%d] inverted", b.Lo, b.Hi)
		}
		n += b.Count
	}
	if n != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", n, h.Count())
	}
}

func TestHistogramJSON(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(9)
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var snap HistogramSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 2 || snap.Sum != 14 || snap.Min != 5 || snap.Max != 9 {
		t.Errorf("roundtrip snapshot = %+v", snap)
	}
}

// errAllocator fails every call with a configured error.
type errAllocator struct{ err error }

func (a *errAllocator) Name() string                  { return "err" }
func (a *errAllocator) Malloc(uint32) (uint64, error) { return 0, a.err }
func (a *errAllocator) Free(uint64) error             { return a.err }

func TestInstrumentNilRecorder(t *testing.T) {
	a := &errAllocator{}
	if got := Instrument(a, nil, nil); got != alloc.Allocator(a) {
		t.Error("nil recorder should return the allocator unchanged")
	}
}

func TestInstrumentErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		read func(r *Recorder) uint64
	}{
		{alloc.ErrBadFree, func(r *Recorder) uint64 { return r.BadFree.Value() }},
		{alloc.ErrTooLarge, func(r *Recorder) uint64 { return r.TooLarge.Value() }},
		{mem.ErrOutOfMemory, func(r *Recorder) uint64 { return r.OOM.Value() }},
		{errors.New("novel failure"), func(r *Recorder) uint64 { return r.OtherErrors.Value() }},
	}
	for _, c := range cases {
		rec := &Recorder{}
		w := Instrument(&errAllocator{err: c.err}, &cost.Meter{}, rec)
		if _, err := w.Malloc(8); !errors.Is(err, c.err) {
			t.Errorf("Malloc error %v not propagated", c.err)
		}
		if err := w.Free(4); !errors.Is(err, c.err) {
			t.Errorf("Free error %v not propagated", c.err)
		}
		if got := c.read(rec); got != 2 {
			t.Errorf("%v: counted %d, want 2 (one malloc + one free)", c.err, got)
		}
		if rec.Mallocs.Value() != 0 || rec.Frees.Value() != 0 {
			t.Errorf("%v: failed calls must not count as successes", c.err)
		}
		if rec.Ops() != 2 {
			t.Errorf("%v: ops = %d, want 2 (failures count as operations)", c.err, rec.Ops())
		}
	}
}

func TestInstrumentRealAllocator(t *testing.T) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	inner, err := alloc.New("firstfit", m)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{FootprintFn: m.Footprint}
	a := Instrument(inner, meter, rec)

	var addrs []uint64
	for i := 0; i < 100; i++ {
		addr, err := a.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	if rec.Mallocs.Value() != 100 {
		t.Errorf("mallocs = %d, want 100", rec.Mallocs.Value())
	}
	if rec.LiveObjects.Value() != 100 || rec.LiveBytes.Value() != 3200 {
		t.Errorf("live = %d objects / %d bytes, want 100/3200",
			rec.LiveObjects.Value(), rec.LiveBytes.Value())
	}
	if rec.MallocInstr.Count() != 100 || rec.MallocInstr.Sum() == 0 {
		t.Errorf("malloc latency histogram: count=%d sum=%d",
			rec.MallocInstr.Count(), rec.MallocInstr.Sum())
	}
	// The latency delta must match the meter's Malloc domain exactly:
	// the wrapper entered the domain itself, and nothing else charged it.
	if rec.MallocInstr.Sum() != meter.Instr(cost.Malloc) {
		t.Errorf("latency sum %d != meter malloc domain %d",
			rec.MallocInstr.Sum(), meter.Instr(cost.Malloc))
	}
	if rec.ReqSize.Count() != 100 || rec.ReqSize.Min() != 32 || rec.ReqSize.Max() != 32 {
		t.Errorf("request size histogram: %s", rec.ReqSize.String())
	}
	// firstfit implements alloc.Scanner, so scan deltas are recorded.
	if rec.Scan.Count() != 100 {
		t.Errorf("scan histogram count = %d, want 100", rec.Scan.Count())
	}
	if rec.Footprint.Max() == 0 {
		t.Error("footprint gauge never polled")
	}

	for _, addr := range addrs {
		if err := a.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Frees.Value() != 100 || rec.LiveObjects.Value() != 0 || rec.LiveBytes.Value() != 0 {
		t.Errorf("after frees: %d frees, live %d/%d",
			rec.Frees.Value(), rec.LiveObjects.Value(), rec.LiveBytes.Value())
	}
	if rec.LiveObjects.Max() != 100 || rec.LiveBytes.Max() != 3200 {
		t.Errorf("high-water %d objects / %d bytes, want 100/3200",
			rec.LiveObjects.Max(), rec.LiveBytes.Max())
	}
	if rec.FreeInstr.Sum() != meter.Instr(cost.Free) {
		t.Errorf("free latency sum %d != meter free domain %d",
			rec.FreeInstr.Sum(), meter.Instr(cost.Free))
	}
	if rec.Ops() != 200 {
		t.Errorf("ops = %d, want 200", rec.Ops())
	}

	// Freeing garbage classifies as a bad free and propagates.
	if err := a.Free(12345); !errors.Is(err, alloc.ErrBadFree) {
		t.Errorf("free of garbage returned %v", err)
	}
	if rec.BadFree.Value() != 1 {
		t.Errorf("bad free count = %d, want 1", rec.BadFree.Value())
	}
}

// TestInstrumentPreservesDomain verifies the wrapper restores whatever
// cost domain the caller was in.
func TestInstrumentPreservesDomain(t *testing.T) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	inner, err := alloc.New("bsd", m)
	if err != nil {
		t.Fatal(err)
	}
	a := Instrument(inner, meter, &Recorder{})

	meter.Enter(cost.Free) // caller in an unusual domain
	if _, err := a.Malloc(16); err != nil {
		t.Fatal(err)
	}
	if meter.Current() != cost.Free {
		t.Errorf("domain after Malloc = %v, want free", meter.Current())
	}
	meter.Enter(cost.App)
	if _, err := a.Malloc(16); err != nil {
		t.Fatal(err)
	}
	if meter.Current() != cost.App {
		t.Errorf("domain after Malloc = %v, want app", meter.Current())
	}
}

// TestInstrumentSiteFallback: the wrapper always offers MallocSite,
// delegating to the inner allocator's site support when present and
// falling back to plain Malloc otherwise.
func TestInstrumentSiteFallback(t *testing.T) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	inner, err := alloc.New("bsd", m) // not site-aware
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	a := Instrument(inner, meter, rec)
	sa, ok := a.(alloc.SiteAllocator)
	if !ok {
		t.Fatal("instrumented allocator should implement SiteAllocator")
	}
	if _, err := sa.MallocSite(24, 7); err != nil {
		t.Fatal(err)
	}
	if rec.Mallocs.Value() != 1 {
		t.Errorf("mallocs = %d, want 1", rec.Mallocs.Value())
	}
}

func TestRecorderSnapshotJSON(t *testing.T) {
	rec := &Recorder{}
	rec.Mallocs.Add(3)
	rec.MallocInstr.Observe(10)
	rec.ReqSize.Observe(64)
	snap := rec.Snapshot()
	if snap.Scan != nil {
		t.Error("scan snapshot should be omitted when no scans were recorded")
	}
	rec.Scan.Observe(2)
	snap = rec.Snapshot()
	if snap.Scan == nil || snap.Scan.Count != 1 {
		t.Error("scan snapshot missing after observation")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}
