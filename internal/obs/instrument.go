package obs

import (
	"errors"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
)

// Instrumented wraps an allocator and records per-call metrics into a
// Recorder. Build one with Instrument.
type Instrumented struct {
	inner alloc.Allocator
	site  alloc.SiteAllocator  // nil when inner has no site support
	hint  alloc.LocalityHinter // nil when inner has no hint support
	scan  alloc.Scanner        // nil when inner does not search freelists
	meter *cost.Meter
	rec   *Recorder
	sizes map[uint64]uint32 // live addr → request size, for Free accounting
}

// Instrument wraps a with per-call metric recording into rec. The
// meter supplies instruction-latency deltas (its Malloc/Free domains);
// a nil meter disables the latency histograms, and a nil rec returns a
// unchanged — the uninstrumented allocator with zero added overhead.
//
// The wrapper is domain-safe in both directions: it enters the proper
// cost domain itself, so it measures correctly whether the caller is
// the workload driver (which has already switched domains) or a bare
// test harness (which has not). Site- and hint-aware allocation are
// preserved: the wrapper always implements alloc.SiteAllocator and
// alloc.LocalityHinter, forwarding to the wrapped allocator's
// MallocSite/MallocLocal when it has one and falling back to plain
// Malloc otherwise (the same semantics the workload driver applies to
// an unwrapped allocator — dispatchers that must distinguish a
// hint-aware heap from a transparent wrapper use alloc.HintAware,
// which sees through Unwrap).
func Instrument(a alloc.Allocator, meter *cost.Meter, rec *Recorder) alloc.Allocator {
	if rec == nil || a == nil {
		return a
	}
	w := &Instrumented{
		inner: a,
		meter: meter,
		rec:   rec,
		sizes: make(map[uint64]uint32),
	}
	if sa, ok := a.(alloc.SiteAllocator); ok {
		w.site = sa
	}
	if lh, ok := a.(alloc.LocalityHinter); ok {
		w.hint = lh
	}
	if sc, ok := a.(alloc.Scanner); ok {
		w.scan = sc
	}
	return w
}

// Unwrap returns the wrapped allocator.
func (w *Instrumented) Unwrap() alloc.Allocator { return w.inner }

// Name implements alloc.Allocator, reporting the wrapped name.
func (w *Instrumented) Name() string { return w.inner.Name() }

// Malloc implements alloc.Allocator.
func (w *Instrumented) Malloc(n uint32) (uint64, error) {
	return w.malloc(n, func() (uint64, error) { return w.inner.Malloc(n) })
}

// MallocSite implements alloc.SiteAllocator, falling back to Malloc
// when the wrapped allocator is not site-aware.
func (w *Instrumented) MallocSite(n uint32, site uint32) (uint64, error) {
	return w.malloc(n, func() (uint64, error) {
		if w.site != nil {
			return w.site.MallocSite(n, site)
		}
		return w.inner.Malloc(n)
	})
}

// MallocLocal implements alloc.LocalityHinter, falling back to Malloc
// when the wrapped allocator is not hint-aware.
func (w *Instrumented) MallocLocal(n uint32, locality uint32) (uint64, error) {
	return w.malloc(n, func() (uint64, error) {
		if w.hint != nil {
			return w.hint.MallocLocal(n, locality)
		}
		return w.inner.Malloc(n)
	})
}

func (w *Instrumented) malloc(n uint32, call func() (uint64, error)) (uint64, error) {
	var before, scanBefore uint64
	if w.meter != nil {
		prev := w.meter.Enter(cost.Malloc)
		defer w.meter.Enter(prev)
		before = w.meter.Instr(cost.Malloc)
	}
	if w.scan != nil {
		scanBefore = w.scan.ScanSteps()
	}

	addr, err := call()

	if w.meter != nil {
		w.rec.MallocInstr.Observe(w.meter.Instr(cost.Malloc) - before)
	}
	if w.scan != nil {
		w.rec.Scan.Observe(w.scan.ScanSteps() - scanBefore)
	}
	w.rec.ReqSize.Observe(uint64(n))
	if err != nil {
		w.recordError(err)
	} else {
		w.rec.Mallocs.Inc()
		w.rec.LiveObjects.Add(1)
		w.rec.LiveBytes.Add(int64(n))
		w.sizes[addr] = n
	}
	w.rec.finishOp()
	return addr, err
}

// Free implements alloc.Allocator.
func (w *Instrumented) Free(addr uint64) error {
	var before uint64
	if w.meter != nil {
		prev := w.meter.Enter(cost.Free)
		defer w.meter.Enter(prev)
		before = w.meter.Instr(cost.Free)
	}

	err := w.inner.Free(addr)

	if w.meter != nil {
		w.rec.FreeInstr.Observe(w.meter.Instr(cost.Free) - before)
	}
	if err != nil {
		w.recordError(err)
	} else {
		w.rec.Frees.Inc()
		w.rec.LiveObjects.Add(-1)
		if n, ok := w.sizes[addr]; ok {
			w.rec.LiveBytes.Add(-int64(n))
			delete(w.sizes, addr)
		}
	}
	w.rec.finishOp()
	return err
}

// recordError classifies err into the recorder's error counters.
func (w *Instrumented) recordError(err error) {
	switch {
	case errors.Is(err, alloc.ErrBadFree):
		w.rec.BadFree.Inc()
	case errors.Is(err, alloc.ErrTooLarge):
		w.rec.TooLarge.Inc()
	case errors.Is(err, mem.ErrOutOfMemory):
		w.rec.OOM.Inc()
	default:
		w.rec.OtherErrors.Inc()
	}
}
