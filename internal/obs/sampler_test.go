package obs

import (
	"testing"

	"mallocsim/internal/alloc"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

func TestSamplerCapturesEveryN(t *testing.T) {
	meter := &cost.Meter{}
	group := cache.NewGroup(cache.Config{Size: 16 << 10})
	s := &Sampler{Every: 4, Meter: meter, Group: group}
	rec := &Recorder{}
	s.Bind(rec)

	m := mem.New(trace.NewTee(group, s), meter)
	inner, err := alloc.New("bsd", m)
	if err != nil {
		t.Fatal(err)
	}
	s.Mem = m
	a := Instrument(inner, meter, rec)

	var addrs []uint64
	for i := 0; i < 10; i++ {
		addr, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	for _, addr := range addrs[:6] {
		if err := a.Free(addr); err != nil {
			t.Fatal(err)
		}
	}

	// 16 ops at Every=4 → samples at ops 4, 8, 12, 16.
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d sample points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := uint64(4 * (i + 1)); p.Op != want {
			t.Errorf("point %d at op %d, want %d", i, p.Op, want)
		}
	}
	// Live objects: 4 after op 4, 8 after op 8, 10-2 after op 12 (10
	// mallocs + 2 frees), 10-6 after op 16.
	wantLive := []int64{4, 8, 8, 4}
	for i, p := range pts {
		if p.LiveObjects != wantLive[i] {
			t.Errorf("point %d live objects = %d, want %d", i, p.LiveObjects, wantLive[i])
		}
	}
	// Refs and footprint must be monotonically non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Refs < pts[i-1].Refs {
			t.Errorf("refs decreased at point %d", i)
		}
		if pts[i].FootprintBytes < pts[i-1].FootprintBytes {
			t.Errorf("footprint decreased at point %d", i)
		}
		if pts[i].Instr.Total() < pts[i-1].Instr.Total() {
			t.Errorf("instr total decreased at point %d", i)
		}
	}
	// Interval cache counts must sum back to the cumulative counts.
	last := pts[len(pts)-1]
	if len(last.Caches) != 1 {
		t.Fatalf("expected 1 cache point, got %d", len(last.Caches))
	}
	var intervalSum uint64
	for _, p := range pts {
		intervalSum += p.Caches[0].IntervalMisses
	}
	if intervalSum != last.Caches[0].Misses {
		t.Errorf("interval misses sum %d != cumulative %d", intervalSum, last.Caches[0].Misses)
	}
}

func TestSamplerDefaultEvery(t *testing.T) {
	s := &Sampler{}
	s.Bind(&Recorder{})
	if s.Every != 1024 {
		t.Errorf("default Every = %d, want 1024", s.Every)
	}
}

// TestAttributionHandBuilt drives the attribution sink with a
// hand-built reference stream whose region and domain for every single
// reference are known, and checks each cell exactly.
func TestAttributionHandBuilt(t *testing.T) {
	meter := &cost.Meter{}
	m := mem.New(trace.Discard, meter)
	heap := m.NewRegion("heap", 0)
	heapBase, err := heap.Sbrk(4096)
	if err != nil {
		t.Fatal(err)
	}
	stack := m.NewRegion("stack", 0)
	stackBase, err := stack.Sbrk(4096)
	if err != nil {
		t.Fatal(err)
	}

	a := NewAttribution(m, meter)

	// App domain: two heap reads, one stack write.
	a.Ref(trace.Ref{Addr: heapBase, Size: 4, Kind: trace.Read})
	a.Ref(trace.Ref{Addr: heapBase + 8, Size: 4, Kind: trace.Read})
	a.Ref(trace.Ref{Addr: stackBase, Size: 8, Kind: trace.Write})

	// Malloc domain: one heap write.
	meter.Enter(cost.Malloc)
	a.Ref(trace.Ref{Addr: heapBase + 16, Size: 4, Kind: trace.Write})

	// Free domain: one heap read, one reference outside every region.
	meter.Enter(cost.Free)
	a.Ref(trace.Ref{Addr: heapBase + 20, Size: 4, Kind: trace.Read})
	a.Ref(trace.Ref{Addr: 12, Size: 4, Kind: trace.Read})
	meter.Enter(cost.App)

	if c := a.Cell("heap", cost.App); c != (RefCell{Reads: 2, Writes: 0, Bytes: 8}) {
		t.Errorf("heap/app = %+v", c)
	}
	if c := a.Cell("heap", cost.Malloc); c != (RefCell{Reads: 0, Writes: 1, Bytes: 4}) {
		t.Errorf("heap/malloc = %+v", c)
	}
	if c := a.Cell("heap", cost.Free); c != (RefCell{Reads: 1, Writes: 0, Bytes: 4}) {
		t.Errorf("heap/free = %+v", c)
	}
	if c := a.Cell("stack", cost.App); c != (RefCell{Reads: 0, Writes: 1, Bytes: 8}) {
		t.Errorf("stack/app = %+v", c)
	}
	if c := a.Cell("stack", cost.Malloc); c != (RefCell{}) {
		t.Errorf("stack/malloc should be empty, got %+v", c)
	}

	rows := a.Rows()
	// heap×3 domains + stack×1 + unmapped×1 = 5 non-empty cells,
	// sorted by region then domain.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5: %+v", len(rows), rows)
	}
	if rows[0].Region != "(unmapped)" || rows[0].Domain != "free" {
		t.Errorf("row 0 = %+v, want (unmapped)/free", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Region > rows[i].Region {
			t.Errorf("rows not sorted by region at %d", i)
		}
	}
	var total uint64
	for _, r := range rows {
		total += r.Reads + r.Writes
	}
	if total != 6 {
		t.Errorf("total attributed refs = %d, want 6", total)
	}
}

// TestAttributionNilMeter: without a meter everything lands in the App
// domain.
func TestAttributionNilMeter(t *testing.T) {
	m := mem.New(trace.Discard, nil)
	r := m.NewRegion("only", 0)
	base, err := r.Sbrk(64)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAttribution(m, nil)
	a.Ref(trace.Ref{Addr: base, Size: 4, Kind: trace.Write})
	if c := a.Cell("only", cost.App); c.Writes != 1 {
		t.Errorf("nil-meter ref not attributed to app: %+v", c)
	}
}

func TestReportEncode(t *testing.T) {
	rep := NewReport()
	if rep.Version != ReportVersion || rep.Kind != ReportKind {
		t.Errorf("header = %d/%q", rep.Version, rep.Kind)
	}
	rep.Program = "espresso"
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty encoding")
	}
}
