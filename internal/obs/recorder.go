package obs

// Recorder accumulates per-call allocator metrics. It is populated by
// the Instrument middleware; one Recorder belongs to one simulation run
// (like every other piece of per-run state in this repository, it is
// not safe for concurrent use).
type Recorder struct {
	// MallocInstr and FreeInstr are per-call instruction latencies:
	// the delta of the cost meter's Malloc/Free domain across each
	// call, including the memory accesses the allocator performs (one
	// instruction per word on the paper's test vehicle) but excluding
	// the fixed call overhead charged by the driver.
	MallocInstr Histogram
	FreeInstr   Histogram
	// ReqSize is the request-size histogram — the paper's "most
	// allocation requests were for one of a few different object
	// sizes" observation, measured rather than asserted.
	ReqSize Histogram
	// Scan is the per-malloc freelist scan length (delta of
	// alloc.Scanner's ScanSteps), recorded only for allocators that
	// search freelists.
	Scan Histogram

	// Mallocs and Frees count successful calls.
	Mallocs Counter
	Frees   Counter
	// BadFree, TooLarge and OOM classify failed calls by the sentinel
	// errors of packages alloc and mem; OtherErrors catches the rest.
	BadFree     Counter
	TooLarge    Counter
	OOM         Counter
	OtherErrors Counter

	// LiveObjects and LiveBytes gauge the allocator's live population
	// (with high-water marks).
	LiveObjects Gauge
	LiveBytes   Gauge
	// Footprint gauges bytes requested from the OS across all regions,
	// updated once per operation via FootprintFn.
	Footprint Gauge

	// FootprintFn, when non-nil, is polled after every operation to
	// update the Footprint gauge. The simulation driver sets it to the
	// run's mem.Memory Footprint method.
	FootprintFn func() uint64

	ops  uint64
	onOp func(op uint64)
}

// Ops returns the total number of malloc and free calls observed,
// failed calls included: the x-axis of the operation-time series.
func (r *Recorder) Ops() uint64 { return r.ops }

// finishOp runs end-of-operation bookkeeping: the footprint gauge poll
// and the sampler hook.
func (r *Recorder) finishOp() {
	if r.FootprintFn != nil {
		r.Footprint.Set(int64(r.FootprintFn()))
	}
	r.ops++
	if r.onOp != nil {
		r.onOp(r.ops)
	}
}

// RecorderSnapshot is the serialized form of a Recorder.
type RecorderSnapshot struct {
	Mallocs     uint64 `json:"mallocs"`
	Frees       uint64 `json:"frees"`
	BadFree     uint64 `json:"err_bad_free,omitempty"`
	TooLarge    uint64 `json:"err_too_large,omitempty"`
	OOM         uint64 `json:"err_oom,omitempty"`
	OtherErrors uint64 `json:"err_other,omitempty"`

	MallocInstr HistogramSnapshot `json:"malloc_instr"`
	FreeInstr   HistogramSnapshot `json:"free_instr"`
	ReqSize     HistogramSnapshot `json:"request_size"`
	// Scan is omitted for allocators that do not search freelists.
	Scan *HistogramSnapshot `json:"scan_steps,omitempty"`

	LiveObjects    int64 `json:"live_objects"`
	LiveObjectsMax int64 `json:"live_objects_max"`
	LiveBytes      int64 `json:"live_bytes"`
	LiveBytesMax   int64 `json:"live_bytes_max"`
	FootprintMax   int64 `json:"footprint_max,omitempty"`
}

// Snapshot returns a copyable, JSON-ready summary of the recorder.
func (r *Recorder) Snapshot() RecorderSnapshot {
	s := RecorderSnapshot{
		Mallocs:        r.Mallocs.Value(),
		Frees:          r.Frees.Value(),
		BadFree:        r.BadFree.Value(),
		TooLarge:       r.TooLarge.Value(),
		OOM:            r.OOM.Value(),
		OtherErrors:    r.OtherErrors.Value(),
		MallocInstr:    r.MallocInstr.Snapshot(),
		FreeInstr:      r.FreeInstr.Snapshot(),
		ReqSize:        r.ReqSize.Snapshot(),
		LiveObjects:    r.LiveObjects.Value(),
		LiveObjectsMax: r.LiveObjects.Max(),
		LiveBytes:      r.LiveBytes.Value(),
		LiveBytesMax:   r.LiveBytes.Max(),
		FootprintMax:   r.Footprint.Max(),
	}
	if r.Scan.Count() > 0 {
		sc := r.Scan.Snapshot()
		s.Scan = &sc
	}
	return s
}
