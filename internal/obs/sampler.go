package obs

import (
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
	"mallocsim/internal/vm"
)

// CachePoint is one cache configuration's state at a sample point:
// cumulative counts since the start of the run, plus the interval
// (windowed) counts since the previous sample — the quantity that
// exposes phase behaviour, which cumulative rates smooth away.
type CachePoint struct {
	Config           string  `json:"config"`
	Accesses         uint64  `json:"accesses"`
	Misses           uint64  `json:"misses"`
	MissRate         float64 `json:"miss_rate"`
	IntervalAccesses uint64  `json:"interval_accesses"`
	IntervalMisses   uint64  `json:"interval_misses"`
	IntervalMissRate float64 `json:"interval_miss_rate"`
}

// SamplePoint is one point of the operation-time series.
type SamplePoint struct {
	// Op is the malloc/free operation count at the sample.
	Op uint64 `json:"op"`
	// Refs is the number of data references seen by the sampler.
	Refs uint64 `json:"refs"`
	// Instr is the cumulative per-domain instruction split.
	Instr cost.Snapshot `json:"instr"`

	LiveObjects int64 `json:"live_objects"`
	LiveBytes   int64 `json:"live_bytes"`
	// FootprintBytes is the memory requested from the OS across all
	// regions (heap, state, stack and globals).
	FootprintBytes uint64 `json:"footprint_bytes"`
	// TouchedPages counts distinct backing pages materialized so far.
	TouchedPages int `json:"touched_pages"`

	Caches []CachePoint `json:"caches,omitempty"`
	// DistinctPages is the VM simulator's distinct-page count (only
	// when page simulation is enabled).
	DistinctPages uint64 `json:"distinct_pages,omitempty"`
}

// Sampler snapshots the run's observable state every Every malloc/free
// operations, producing the phase-behaviour time series the paper's
// end-of-run tables cannot show. It implements trace.Sink so it can sit
// in the reference tee (counting refs); the sampling trigger itself is
// the recorder's per-operation hook, installed by Bind.
//
// All source fields are optional: a nil Mem, Group, Pages or Meter
// simply leaves the corresponding sample fields zero.
type Sampler struct {
	// Every is the operation sampling interval; 0 defaults to 1024.
	Every uint64

	Mem   *mem.Memory
	Meter *cost.Meter
	Group *cache.Group
	Pages *vm.StackSim

	rec    *Recorder
	refs   uint64
	points []SamplePoint
	prev   []cache.Result
}

// Bind attaches the sampler to a recorder: every Every operations
// (counted across mallocs and frees, failures included) one sample
// point is captured. Bind must be called before the run starts.
func (s *Sampler) Bind(rec *Recorder) {
	if s.Every == 0 {
		s.Every = 1024
	}
	s.rec = rec
	rec.onOp = func(op uint64) {
		if op%s.Every == 0 {
			s.capture(op)
		}
	}
}

// Ref implements trace.Sink, counting references.
func (s *Sampler) Ref(trace.Ref) { s.refs++ }

// Refs implements trace.BatchSink. Capture correctness under batched
// delivery is preserved by capture, which flushes Mem's buffer first.
func (s *Sampler) Refs(batch []trace.Ref) { s.refs += uint64(len(batch)) }

// Block implements trace.BlockSink: only the reference count matters,
// so columnar delivery avoids materializing a []Ref for the sampler.
func (s *Sampler) Block(b *trace.Block) { s.refs += uint64(b.Refs()) }

// Points returns the captured time series.
func (s *Sampler) Points() []SamplePoint { return s.points }

// capture appends one sample point. With a batching mem.Memory, the
// trigger (the recorder's per-operation hook) fires outside the
// reference stream, so any buffered references are flushed first to
// keep the sampled counters (Refs, cache results, page counts) exact.
func (s *Sampler) capture(op uint64) {
	if s.Mem != nil {
		s.Mem.Flush()
	}
	p := SamplePoint{Op: op, Refs: s.refs}
	if s.Meter != nil {
		p.Instr = s.Meter.Snapshot()
	}
	if s.rec != nil {
		p.LiveObjects = s.rec.LiveObjects.Value()
		p.LiveBytes = s.rec.LiveBytes.Value()
	}
	if s.Mem != nil {
		p.FootprintBytes = s.Mem.Footprint()
		p.TouchedPages = s.Mem.TouchedPages()
	}
	if s.Group != nil {
		results := s.Group.Results()
		p.Caches = make([]CachePoint, len(results))
		for i, r := range results {
			cp := CachePoint{
				Config:   r.Config.String(),
				Accesses: r.Accesses,
				Misses:   r.Misses,
				MissRate: r.MissRate(),
			}
			if i < len(s.prev) {
				cp.IntervalAccesses = r.Accesses - s.prev[i].Accesses
				cp.IntervalMisses = r.Misses - s.prev[i].Misses
			} else {
				cp.IntervalAccesses = r.Accesses
				cp.IntervalMisses = r.Misses
			}
			if cp.IntervalAccesses > 0 {
				cp.IntervalMissRate = float64(cp.IntervalMisses) / float64(cp.IntervalAccesses)
			}
			p.Caches[i] = cp
		}
		s.prev = results
	}
	if s.Pages != nil {
		p.DistinctPages = uint64(s.Pages.DistinctPages())
	}
	s.points = append(s.points, p)
}
