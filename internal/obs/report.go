package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"mallocsim/internal/alloc/shadow"
	"mallocsim/internal/cost"
)

// ReportVersion is the schema version stamped into every run report.
// Bump it on any field rename or semantic change; consumers check Kind
// and Version before parsing the rest.
const ReportVersion = 1

// ReportKind identifies the document type.
const ReportKind = "mallocsim-run-report"

// WorkloadSummary is the report's view of workload.Stats.
type WorkloadSummary struct {
	Allocs    uint64 `json:"allocs"`
	Frees     uint64 `json:"frees"`
	FinalLive uint64 `json:"final_live"`
	LiveBytes uint64 `json:"live_bytes"`
	ReqBytes  uint64 `json:"req_bytes"`
	// Handoffs counts producer/consumer cross-thread frees; absent for
	// single-threaded programs so their report bytes are unchanged.
	Handoffs uint64 `json:"handoffs,omitempty"`
}

// SharingRow is one region × thread attribution row of the sharing
// summary.
type SharingRow struct {
	Region      string `json:"region"`
	Tid         uint32 `json:"tid"`
	TrueEvents  uint64 `json:"true_events"`
	FalseEvents uint64 `json:"false_events"`
}

// SharingSummary is the report's view of the cache sharing attributor
// (cache.Sharing): cross-thread coherence transfers split into true
// sharing (the consumer read words the remote owner wrote) and false
// sharing (distinct words merely cohabiting one line — the placement
// artifact the allocator controls). Present only for concurrent
// (server) runs.
type SharingSummary struct {
	Threads     int          `json:"threads"`
	TrueEvents  uint64       `json:"true_events"`
	FalseEvents uint64       `json:"false_events"`
	PingLines   uint64       `json:"ping_lines"`
	Rows        []SharingRow `json:"rows,omitempty"`
}

// RefSummary is the report's view of trace.Counter.
type RefSummary struct {
	Reads      uint64 `json:"reads"`
	Writes     uint64 `json:"writes"`
	BytesRead  uint64 `json:"bytes_read"`
	BytesWrote uint64 `json:"bytes_wrote"`
}

// CacheSummary is one cache configuration's end-of-run result.
type CacheSummary struct {
	Config   string  `json:"config"`
	Accesses uint64  `json:"accesses"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// VMPoint is one point of the page-fault curve.
type VMPoint struct {
	Pages     uint64  `json:"pages"`
	Faults    uint64  `json:"faults"`
	FaultRate float64 `json:"fault_rate"`
}

// VMSummary is the report's view of the page-fault simulation.
type VMSummary struct {
	PageSize      uint64 `json:"page_size"`
	Refs          uint64 `json:"refs"`
	DistinctPages uint64 `json:"distinct_pages"`
	// SampleRate is the stack-distance sampling rate: absent (0) or 1
	// for exact simulation, 2^-k when the run sampled pages at rate
	// 2^-k and the curve's fault counts are scaled estimates.
	SampleRate float64   `json:"sample_rate,omitempty"`
	Curve      []VMPoint `json:"curve,omitempty"`
}

// Report is the machine-readable result of one simulation run: the
// end-of-run aggregates the seed already produced, plus everything the
// observability layer records — per-call histograms, the operation-time
// series, and the region × domain attribution matrix. It is the stable
// interchange format between the simulator and external analysis; treat
// field changes as schema changes and bump ReportVersion.
type Report struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"`
	Program   string `json:"program"`
	Allocator string `json:"allocator"`
	Scale     uint64 `json:"scale"`
	Seed      uint64 `json:"seed"`

	Workload WorkloadSummary `json:"workload"`
	Instr    cost.Snapshot   `json:"instr"`
	Refs     RefSummary      `json:"refs"`

	FootprintBytes      uint64 `json:"footprint_bytes"`
	TotalFootprintBytes uint64 `json:"total_footprint_bytes"`

	// Alloc carries the per-call allocator metrics (present when the
	// run was instrumented).
	Alloc *RecorderSnapshot `json:"alloc,omitempty"`
	// Series is the operation-time phase-behaviour series.
	Series []SamplePoint `json:"series,omitempty"`
	// Attribution is the region × domain reference matrix.
	Attribution []AttribRow `json:"attribution,omitempty"`

	Caches []CacheSummary `json:"caches,omitempty"`
	VM     *VMSummary     `json:"vm,omitempty"`

	// Sharing is the true/false-sharing attribution of concurrent runs
	// (absent for single-threaded programs).
	Sharing *SharingSummary `json:"sharing,omitempty"`

	// Shadow is the heap auditor's verdict (present when the run was
	// executed with heap checking): operation totals and any allocator
	// contract violations, grouped by invariant.
	Shadow *shadow.Snapshot `json:"shadow,omitempty"`
}

// NewReport returns an empty report with the version header filled in.
func NewReport() *Report {
	return &Report{Version: ReportVersion, Kind: ReportKind}
}

// Encode renders the report as indented JSON.
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Write streams the report as indented JSON, with a trailing newline.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Hash returns the hex SHA-256 of the report's canonical (Encode) JSON
// form. Simulation runs are deterministic, so two runs of the same
// job spec yield byte-identical reports and therefore equal hashes;
// consumers use this to content-address results and to assert that
// re-running an experiment reproduced the published numbers.
func (r *Report) Hash() (string, error) {
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
