package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport()
	r.Program = "gs"
	r.Allocator = "quickfit"
	r.Scale = 256
	r.Seed = 1
	r.Workload = WorkloadSummary{Allocs: 1000, Frees: 990, FinalLive: 10, LiveBytes: 4096, ReqBytes: 65536}
	r.Instr.App = 1_000_000
	r.Instr.Malloc = 50_000
	r.Instr.Free = 25_000
	r.Refs = RefSummary{Reads: 800_000, Writes: 200_000, BytesRead: 3_200_000, BytesWrote: 800_000}
	r.FootprintBytes = 1 << 20
	r.TotalFootprintBytes = 2 << 20
	r.Caches = []CacheSummary{
		{Config: "16K:32:1", Accesses: 1_000_000, Misses: 40_000, MissRate: 0.04},
		{Config: "64K:32:1", Accesses: 1_000_000, Misses: 12_000, MissRate: 0.012},
	}
	r.VM = &VMSummary{
		PageSize: 4096, Refs: 1_000_000, DistinctPages: 300,
		Curve: []VMPoint{{Pages: 100, Faults: 5000, FaultRate: 0.005}, {Pages: 200, Faults: 700, FaultRate: 0.0007}},
	}
	return r
}

func TestDiffIdenticalReports(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	d := DiffReports(a, b, DiffOptions{})
	if !d.Identical {
		t.Fatalf("identical reports not identical: %s", d.String())
	}
	if d.SignificantCount != 0 || len(d.Significant()) != 0 {
		t.Fatalf("identical reports flagged %d metrics", d.SignificantCount)
	}
	if len(d.Metrics) == 0 {
		t.Fatal("no metrics compared")
	}
	if !strings.Contains(d.String(), "identical") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestDiffFlagsMovedMetric(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Instr.Malloc = 55_000 // +10%
	b.Caches[0].Misses = 41_000
	b.Caches[0].MissRate = 0.041

	d := DiffReports(a, b, DiffOptions{})
	if d.Identical {
		t.Fatal("moved metrics reported identical")
	}
	sig := map[string]MetricDelta{}
	for _, m := range d.Significant() {
		sig[m.Metric] = m
	}
	m, ok := sig["instr.malloc"]
	if !ok {
		t.Fatalf("instr.malloc not flagged; significant = %v", d.Significant())
	}
	if m.AbsDelta != 5000 {
		t.Fatalf("instr.malloc abs delta = %v", m.AbsDelta)
	}
	if m.RelDelta < 0.09 || m.RelDelta > 0.1 {
		t.Fatalf("instr.malloc rel delta = %v", m.RelDelta)
	}
	if _, ok := sig["cache[16K:32:1].miss_rate"]; !ok {
		t.Fatal("cache miss rate change not flagged")
	}
	// instr.alloc_fraction moves as a consequence; instr.free must not.
	if _, ok := sig["instr.free"]; ok {
		t.Fatal("unmoved metric flagged")
	}
}

func TestDiffThresholdSuppressesSmallDrift(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Instr.App = a.Instr.App + 10 // 0.001% drift

	strict := DiffReports(a, b, DiffOptions{})
	if strict.SignificantCount == 0 {
		t.Fatal("zero threshold must flag any change")
	}
	loose := DiffReports(a, b, DiffOptions{RelThreshold: 0.01})
	if loose.SignificantCount != 0 {
		t.Fatalf("1%% threshold flagged a 0.001%% drift: %v", loose.Significant())
	}
	if loose.Identical {
		t.Fatal("sub-threshold drift must still be non-identical")
	}
}

func TestDiffStructuralDifferences(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Allocator = "firstfit"
	b.Caches = b.Caches[:1] // drop 64K config
	b.VM = nil

	d := DiffReports(a, b, DiffOptions{})
	if d.Identical {
		t.Fatal("structurally different reports reported identical")
	}
	fields := map[string]FieldDiff{}
	for _, f := range d.Fields {
		fields[f.Field] = f
	}
	if f, ok := fields["allocator"]; !ok || f.A != "quickfit" || f.B != "firstfit" {
		t.Fatalf("allocator field diff = %+v (fields %v)", fields["allocator"], d.Fields)
	}
	if f, ok := fields["cache[64K:32:1]"]; !ok || f.A != "present" || f.B != "missing" {
		t.Fatalf("missing cache config not reported: %v", d.Fields)
	}
	if f, ok := fields["vm"]; !ok || f.B != "missing" {
		t.Fatalf("missing vm section not reported: %v", d.Fields)
	}
}

func TestDiffRelDeltaZeroSides(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	a.Workload.FinalLive = 0
	b.Workload.FinalLive = 7
	d := DiffReports(a, b, DiffOptions{})
	for _, m := range d.Metrics {
		if m.Metric == "workload.final_live" {
			if m.RelDelta != 1 || !m.Significant {
				t.Fatalf("zero→nonzero delta = %+v", m)
			}
			return
		}
	}
	t.Fatal("workload.final_live not compared")
}

// TestDiffDeterministicDocument pins that the diff of the same pair is
// byte-identical across calls (fixed metric order, no map leakage).
func TestDiffDeterministicDocument(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Instr.Malloc++
	b.Caches = b.Caches[:1]
	enc := func() []byte {
		d := DiffReports(a, b, DiffOptions{})
		out, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := enc()
	for i := 0; i < 10; i++ {
		if got := enc(); string(got) != string(first) {
			t.Fatalf("diff document differs across calls:\n%s\n%s", first, got)
		}
	}
}

// TestDiffAfterJSONRoundTrip mirrors the serve path: reports decoded
// from their wire JSON must diff exactly like in-memory reports.
func TestDiffAfterJSONRoundTrip(t *testing.T) {
	a := sampleReport()
	raw, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	d := DiffReports(a, &back, DiffOptions{})
	if !d.Identical {
		t.Fatalf("round-tripped report differs from itself: %s", d.String())
	}
}
