package obs

import (
	"sort"

	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/trace"
)

// RefCell tallies one (region, domain) attribution cell.
type RefCell struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Bytes  uint64 `json:"bytes"`
}

// AttribRow is one row of the attribution matrix for serialization.
type AttribRow struct {
	// Region is the region name ("gnufit-heap", "espresso-stack", ...)
	// or "(unmapped)" for references outside every region.
	Region string `json:"region"`
	// Domain is the cost domain that issued the references: "app",
	// "malloc" or "free".
	Domain string `json:"domain"`
	RefCell
}

// Attribution is a trace.Sink that attributes every reference to a
// (memory region × cost domain) cell: "who touches what memory". It is
// the observability view of the paper's central concern — the
// allocator's *own* reference behaviour, separated from the
// application's, per area of the address space. A reference is charged
// to the domain the meter is in when the reference is issued, so
// allocator-issued references land in malloc/free rows even when they
// touch the heap the application also uses.
type Attribution struct {
	mem   *mem.Memory
	meter *cost.Meter
	cells map[*mem.Region]*[cost.NumDomains]RefCell
	// orphan catches references outside every region (impossible for
	// word accesses, which mem checks, but kept for robustness).
	orphan [cost.NumDomains]RefCell
}

// NewAttribution builds an attribution sink resolving regions via m and
// domains via meter. A nil meter attributes everything to the App
// domain.
func NewAttribution(m *mem.Memory, meter *cost.Meter) *Attribution {
	return &Attribution{
		mem:   m,
		meter: meter,
		cells: make(map[*mem.Region]*[cost.NumDomains]RefCell),
	}
}

// Ref implements trace.Sink.
func (a *Attribution) Ref(r trace.Ref) {
	d := cost.App
	if a.meter != nil {
		d = a.meter.Current()
	}
	cell := &a.orphan[d]
	if reg := a.mem.RegionAt(r.Addr); reg != nil {
		row := a.cells[reg]
		if row == nil {
			row = new([cost.NumDomains]RefCell)
			a.cells[reg] = row
		}
		cell = &row[d]
	}
	if r.Kind == trace.Write {
		cell.Writes++
	} else {
		cell.Reads++
	}
	cell.Bytes += uint64(r.Size)
}

// Cell returns the tallies for one region name and domain (zero if the
// pair saw no references).
func (a *Attribution) Cell(region string, d cost.Domain) RefCell {
	// Iterate the memory's region slice (creation order), not the cells
	// map: map order is randomized and this feeds report assembly.
	for _, reg := range a.mem.Regions() {
		if reg.Name() != region {
			continue
		}
		if row := a.cells[reg]; row != nil {
			return row[d]
		}
	}
	return RefCell{}
}

// Rows returns the non-empty attribution cells, sorted by region name
// then domain, ready for serialization.
func (a *Attribution) Rows() []AttribRow {
	var out []AttribRow
	for _, reg := range a.mem.Regions() {
		row := a.cells[reg]
		if row == nil {
			continue
		}
		for d := 0; d < cost.NumDomains; d++ {
			c := row[d]
			if c.Reads == 0 && c.Writes == 0 {
				continue
			}
			out = append(out, AttribRow{Region: reg.Name(), Domain: cost.Domain(d).String(), RefCell: c})
		}
	}
	for d, c := range a.orphan {
		if c.Reads == 0 && c.Writes == 0 {
			continue
		}
		out = append(out, AttribRow{Region: "(unmapped)", Domain: cost.Domain(d).String(), RefCell: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}
