// Package obs is the observability layer of the reproduction: metric
// primitives (counters, gauges, log₂-bucketed histograms), an
// allocator-instrumentation middleware, an operation-time sampler that
// turns one run into a phase-behaviour time series, a per-region ×
// cost-domain reference-attribution sink, and a versioned JSON run
// report tying it all together.
//
// The paper's entire argument is built from measurements — instruction
// counts split by domain (Figure 1), miss rates over cache sizes
// (Figures 4/5), fault curves (Figures 2/3) — but, like the paper, the
// seed simulator only reported end-of-run aggregates. Package obs makes
// the *distributions* and the *phases* visible: how many instructions
// each individual malloc took, how the miss rate moves as the heap
// grows, and which region of memory each cost domain actually touches.
//
// Everything here is zero-dependency (standard library only) and
// strictly opt-in: a nil *Recorder disables the whole layer, and the
// simulation driver takes the exact seed code path.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use. Counters are not safe for concurrent use; each simulation run
// owns its metrics, matching the rest of the repository.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// MarshalJSON encodes the counter as a bare number.
func (c Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.n)
}

// Gauge is an instantaneous signed value that also tracks its
// high-water mark. The zero value is ready to use.
type Gauge struct {
	v   int64
	max int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.Set(g.v + delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// MarshalJSON encodes the gauge with its high-water mark.
func (g Gauge) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Value int64 `json:"value"`
		Max   int64 `json:"max"`
	}{g.v, g.max})
}

// histBuckets is one bucket per power of two: bucket 0 holds the value
// 0 and bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). 65 buckets
// cover the full uint64 range.
const histBuckets = 65

// Histogram is a log₂-bucketed histogram of uint64 observations: the
// standard allocator-telemetry shape (tcmalloc, jemalloc and the
// Risco-Martín profiles all bucket sizes and latencies in powers of
// two). It keeps exact count/sum/min/max alongside the buckets, so
// means are exact and only quantiles are approximate. The zero value is
// an empty, ready-to-use histogram.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketIndex returns the bucket for v: bits.Len64 maps 0→0, 1→1,
// [2,4)→2, [4,8)→3 and so on.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHi returns the inclusive upper bound of bucket i.
func BucketHi(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observation (0 for an empty histogram).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact mean observation (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the p-quantile (0 ≤ p ≤ 1): the upper
// bound of the first bucket whose cumulative count reaches p·count,
// clamped to the exact observed min/max. Log₂ buckets bound the
// relative error at 2×, which is plenty for "p99 malloc latency"-style
// reporting.
func (h *Histogram) Quantile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			hi := BucketHi(i)
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			return hi
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket for serialization.
type Bucket struct {
	// Lo and Hi are the inclusive value bounds of the bucket.
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		out = append(out, Bucket{Lo: BucketLo(i), Hi: BucketHi(i), Count: n})
	}
	return out
}

// HistogramSnapshot is the serialized form of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a copyable, JSON-ready summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Mean:    h.Mean(),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		Buckets: h.Buckets(),
	}
}

// MarshalJSON serializes the snapshot form.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.Snapshot())
}

// String renders a compact one-line summary for human-readable output.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
}
