// Package rng provides a small deterministic pseudo-random number
// generator and the sampling distributions used by the synthetic
// workload models: discrete weighted choice, geometric lifetimes and
// Zipf-ranked locality.
//
// Determinism matters here: the paper notes that "because the tools we
// use generate deterministic results, our experiments did not require
// statistically averaging multiple runs". Our experiments inherit that
// property — a (program, allocator, seed, scale) tuple always produces
// the identical trace.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; prefer New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the
// given mean (mean >= 1); the support is {1, 2, 3, ...}. It is used for
// object lifetimes measured in allocation events: most objects die
// young, a few live long, matching the empirical behaviour the paper's
// segregated-storage allocators exploit.
func (r *Rand) Geometric(mean float64) uint64 {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := r.Float64()
	if u == 0 {
		u = 1e-18
	}
	k := math.Ceil(math.Log(u) / math.Log(1-p))
	if k < 1 {
		k = 1
	}
	if k > 1e15 {
		k = 1e15
	}
	return uint64(k)
}

// Split derives an independent generator from this one, for giving
// subsystems (size sampling, lifetime sampling, reference synthesis)
// their own streams so that adding draws to one does not perturb the
// others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Discrete samples from a fixed weighted distribution over indices
// using binary search on the cumulative weights, narrowed by a guide
// table: 256 buckets over [0, total) whose precomputed index bounds
// bracket every index the search could return for a draw in that
// bucket. Typical distributions resolve to a one- or two-element range,
// making Sample effectively O(1) without changing a single returned
// index (the bounds are derived with the same comparison predicate the
// search uses, and IEEE multiplication is monotonic, so the bracket is
// always valid).
type Discrete struct {
	cum    []float64 // cumulative weights, cum[len-1] == total
	lo, hi []int32   // guide table: search bounds per bucket
}

// guideBuckets is the guide-table resolution. 256 buckets cost 2 KB per
// sampler and push the expected binary-search depth below one step for
// the workload models' 32- and 64-rank Zipf distributions.
const guideBuckets = 256

// NewDiscrete builds a sampler over weights (all must be >= 0, at least
// one > 0).
func NewDiscrete(weights []float64) *Discrete {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	d := &Discrete{cum: cum}
	d.buildGuide()
	return d
}

// buildGuide fills the per-bucket search bounds. A draw u = f*total
// with f in [b/256, (b+1)/256) satisfies t(b) <= u <= t(b+1) where
// t(x) = (x/256)*total (monotonicity of IEEE multiplication; b/256 is
// exact). The search result — the first index with cum[index] > u — is
// therefore bracketed by the first index with cum > t(b) and the first
// with cum > t(b+1).
func (d *Discrete) buildGuide() {
	total := d.cum[len(d.cum)-1]
	d.lo = make([]int32, guideBuckets)
	d.hi = make([]int32, guideBuckets)
	for b := 0; b < guideBuckets; b++ {
		d.lo[b] = d.firstAbove(float64(b) / guideBuckets * total)
		d.hi[b] = d.firstAbove(float64(b+1) / guideBuckets * total)
	}
}

// firstAbove returns the first index with cum[index] > t, or the last
// index when there is none (the search can never return past it).
func (d *Discrete) firstAbove(t float64) int32 {
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// Sample returns an index with probability proportional to its weight.
func (d *Discrete) Sample(r *Rand) int {
	f := r.Float64()
	u := f * d.cum[len(d.cum)-1]
	b := int(f * guideBuckets)
	lo, hi := int(d.lo[b]), int(d.hi[b])
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of outcomes.
func (d *Discrete) Len() int { return len(d.cum) }

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, via precomputed cumulative weights. It models temporal
// locality: the most recently used objects are the most likely to be
// referenced again.
type Zipf struct {
	d *Discrete
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (> 0).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with n <= 0")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return &Zipf{d: NewDiscrete(w)}
}

// Sample returns a rank in [0, n).
func (z *Zipf) Sample(r *Rand) int { return z.d.Sample(r) }

// Len returns the number of ranks.
func (z *Zipf) Len() int { return z.d.Len() }
