package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(124)
	same := 0
	for i := 0; i < 100; i++ {
		if New(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look identical")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) must panic")
		}
	}()
	r.Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	for _, mean := range []float64{2, 10, 50, 500} {
		const n = 30000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(mean))
		}
		got := sum / n
		if got < mean*0.9 || got > mean*1.1 {
			t.Errorf("Geometric(%v): sample mean %v", mean, got)
		}
	}
	if r.Geometric(0.5) != 1 {
		t.Error("mean <= 1 must return 1")
	}
}

func TestDiscreteWeights(t *testing.T) {
	d := NewDiscrete([]float64{1, 0, 3})
	r := New(3)
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if d.Len() != 3 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestDiscretePanics(t *testing.T) {
	mustPanic(t, func() { NewDiscrete([]float64{0, 0}) })
	mustPanic(t, func() { NewDiscrete([]float64{-1, 2}) })
	mustPanic(t, func() { NewDiscrete([]float64{math.NaN()}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(16, 1.0)
	r := New(17)
	counts := make([]int, 16)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[8] || counts[0] <= counts[15] {
		t.Errorf("zipf not skewed: %v", counts)
	}
	// Rank 0 over rank 1 should be ~2:1 at s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("rank0/rank1 = %v, want ~2", ratio)
	}
	if z.Len() != 16 {
		t.Errorf("len = %d", z.Len())
	}
	mustPanic(t, func() { NewZipf(0, 1) })
}

func TestSplitIndependence(t *testing.T) {
	r := New(42)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split generators identical")
	}
}

func TestIntn(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	mustPanic(t, func() { r.Intn(0) })
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) hit rate %v", frac)
	}
}

// Property: Uint64n(n) < n for arbitrary seeds and n.
func TestQuickUint64nInRange(t *testing.T) {
	prop := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Discrete never returns an index with zero weight.
func TestQuickDiscreteSupport(t *testing.T) {
	prop := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, b := range raw {
			weights[i] = float64(b)
			if b != 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		d := NewDiscrete(weights)
		r := New(seed)
		for i := 0; i < 64; i++ {
			if weights[d.Sample(r)] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
