package paper

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mallocsim/internal/store"
)

// The sentinel replays the paper's experiment battery and diffs every
// table against a stored baseline — the golden fixtures under
// testdata/golden, or documents recorded in a durable store. Because
// the simulator is deterministic, a clean tree reproduces each golden
// table byte-for-byte; any divergence is attributed to the experiment,
// row and column that moved, with absolute and relative deltas.

// SentinelVersion is the schema version stamped into sentinel report
// documents; bump on field renames.
const SentinelVersion = 1

// SentinelKind is the document kind of a JSON-encoded sentinel report.
const SentinelKind = "mallocsim-sentinel-report"

// GoldenScale is the scale divisor the committed golden fixtures were
// generated at. Replaying at any other scale diffs against the wrong
// baseline (the table note embeds the scale, so the mismatch is loud).
const GoldenScale = 256

// ErrNoBaseline reports that a baseline source has no document for an
// experiment. The sentinel flags the experiment rather than failing.
var ErrNoBaseline = errors.New("paper: no baseline for experiment")

// BaselineSource yields the baseline table for an experiment ID, plus
// the raw bytes it was decoded from so the sentinel can assert byte
// identity, not just value identity.
type BaselineSource interface {
	Load(id string) (*Table, []byte, error)
}

// DirBaseline reads baselines from a directory of <id>.json table
// documents — the layout of testdata/golden.
type DirBaseline struct {
	Dir string
}

// Load reads and decodes <dir>/<id>.json.
func (d DirBaseline) Load(id string) (*Table, []byte, error) {
	raw, err := os.ReadFile(filepath.Join(d.Dir, id+".json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoBaseline, id)
	}
	if err != nil {
		return nil, nil, err
	}
	t, err := DecodeTable(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("paper: baseline %s: %w", id, err)
	}
	return t, raw, nil
}

// StoreBaseline reads baselines from a durable document store: the
// newest "paper-table" document named after the experiment.
type StoreBaseline struct {
	Store store.Store
}

// Load fetches and decodes the latest stored table for the experiment.
func (s StoreBaseline) Load(id string) (*Table, []byte, error) {
	entries := store.Select(s.Store, store.Filter{Kind: "paper-table", Name: id})
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoBaseline, id)
	}
	// Listings are sorted by (StoredAt, Hash); the last entry is the
	// newest recording.
	raw, err := s.Store.Get(entries[len(entries)-1].Hash)
	if err != nil {
		return nil, nil, fmt.Errorf("paper: baseline %s: %w", id, err)
	}
	t, err := DecodeTable(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("paper: baseline %s: %w", id, err)
	}
	return t, raw, nil
}

// RecordTable writes a table document into the store, content-addressed
// by the SHA-256 of its canonical encoding, and returns that hash.
// Re-recording an unchanged table is an idempotent no-op (same bytes,
// same address); a changed table lands under a new address, becoming
// the baseline StoreBaseline serves.
func RecordTable(st store.Store, t *Table, scale, seed uint64) (string, error) {
	raw, err := EncodeTable(t)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	hash := hex.EncodeToString(sum[:])
	if err := st.Put(hash, raw, store.Meta{
		Kind: "paper-table", Name: t.ID, Scale: scale, Seed: seed,
	}); err != nil {
		return "", err
	}
	return hash, nil
}

// CellDelta is one table cell that moved between baseline and current.
type CellDelta struct {
	// Row is the row label (the first cell of the row).
	Row string `json:"row"`
	// Column is the column's header name.
	Column string `json:"column"`
	// A and B are the baseline and current cell texts.
	A string `json:"a"`
	B string `json:"b"`
	// Numeric reports whether both cells parsed as numbers (a "%"
	// suffix is tolerated); AbsDelta and RelDelta are meaningful only
	// when it is set.
	Numeric bool `json:"numeric"`
	// AbsDelta is current minus baseline, in the cell's own units.
	AbsDelta float64 `json:"abs_delta,omitempty"`
	// RelDelta is |b-a| / max(|a|,|b|): symmetric and bounded to
	// [0, 1], so zero baselines do not produce infinities.
	RelDelta float64 `json:"rel_delta,omitempty"`
	// Significant marks deltas past the configured threshold. A zero
	// threshold flags every change; non-numeric changes are always
	// significant.
	Significant bool `json:"significant"`
}

// ExperimentDiff is the sentinel's verdict for one experiment.
type ExperimentDiff struct {
	ID string `json:"id"`
	// Status is "ok", "regression" or "missing-baseline".
	Status string `json:"status"`
	// Identical reports byte-for-byte identity with the baseline
	// document — the expected state of a clean tree.
	Identical bool `json:"identical"`
	// Structural lists shape mismatches: title/note/header changes,
	// rows present on only one side.
	Structural []string `json:"structural,omitempty"`
	// Cells lists every changed cell of rows present on both sides.
	Cells []CellDelta `json:"cells,omitempty"`
	// Flagged counts structural mismatches plus significant cells; a
	// non-zero count makes the status "regression".
	Flagged int `json:"flagged"`
}

// SentinelReport is the full battery verdict, JSON-encodable as a
// versioned document.
type SentinelReport struct {
	Version     int              `json:"version"`
	Kind        string           `json:"kind"`
	Scale       uint64           `json:"scale"`
	Seed        uint64           `json:"seed"`
	Threshold   float64          `json:"threshold"`
	Checked     int              `json:"checked"`
	Regressions int              `json:"regressions"`
	Experiments []ExperimentDiff `json:"experiments"`
}

// Clean reports whether every experiment matched its baseline.
func (r *SentinelReport) Clean() bool { return r.Regressions == 0 }

// String renders the human-readable verdict: one line per experiment,
// with each flagged structural mismatch and cell delta attributed to
// its experiment, row and column.
func (r *SentinelReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sentinel: %d experiments at scale 1/%d, seed %d, threshold %g\n",
		r.Checked, r.Scale, r.Seed, r.Threshold)
	for _, e := range r.Experiments {
		switch {
		case e.Status == "ok" && e.Identical:
			fmt.Fprintf(&sb, "  %-10s ok (byte-identical)\n", e.ID)
		case e.Status == "ok":
			fmt.Fprintf(&sb, "  %-10s ok (%d sub-threshold deltas)\n", e.ID, len(e.Cells))
		case e.Status == "missing-baseline":
			fmt.Fprintf(&sb, "  %-10s MISSING BASELINE\n", e.ID)
		default:
			fmt.Fprintf(&sb, "  %-10s REGRESSION (%d flagged)\n", e.ID, e.Flagged)
			for _, s := range e.Structural {
				fmt.Fprintf(&sb, "    structural: %s\n", s)
			}
			for _, c := range e.Cells {
				if !c.Significant {
					continue
				}
				if c.Numeric {
					fmt.Fprintf(&sb, "    [%s × %s] %s -> %s (abs %+g, rel %.2f%%)\n",
						c.Row, c.Column, c.A, c.B, c.AbsDelta, c.RelDelta*100)
				} else {
					fmt.Fprintf(&sb, "    [%s × %s] %q -> %q\n", c.Row, c.Column, c.A, c.B)
				}
			}
		}
	}
	if r.Regressions == 0 {
		sb.WriteString("sentinel: clean — no regressions\n")
	} else {
		fmt.Fprintf(&sb, "sentinel: %d of %d experiments regressed\n", r.Regressions, r.Checked)
	}
	return sb.String()
}

// Sentinel replays experiments and diffs them against a baseline.
type Sentinel struct {
	// Runner executes the battery. Its Scale must match the scale the
	// baseline was recorded at for the comparison to be meaningful.
	Runner *Runner
	// Baseline supplies the reference documents.
	Baseline BaselineSource
	// Threshold is the relative delta above which a numeric cell
	// change is a regression. Zero means any change regresses —
	// the right setting for a deterministic simulator.
	Threshold float64
	// Experiments optionally restricts the battery to a subset of
	// IDs; nil replays every paper experiment.
	Experiments []string
}

// Run replays the battery and returns the verdict. The error is
// operational (a simulation failed, a baseline was unreadable) —
// regressions are reported in the SentinelReport, not as errors.
func (s *Sentinel) Run(ctx context.Context) (*SentinelReport, error) {
	ids := s.Experiments
	if len(ids) == 0 {
		for _, e := range s.Runner.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	// Warm the simulation matrix through the worker pool; table
	// assembly below is then pure lookup.
	if err := s.Runner.Prefetch(ctx, s.Runner.PairsFor(ids...)); err != nil {
		return nil, err
	}
	rep := &SentinelReport{
		Version:   SentinelVersion,
		Kind:      SentinelKind,
		Scale:     s.Runner.Scale,
		Seed:      s.Runner.Seed,
		Threshold: s.Threshold,
	}
	for _, id := range ids {
		exp, ok := s.Runner.ByID(id)
		if !ok {
			return nil, fmt.Errorf("paper: unknown experiment %q", id)
		}
		cur, err := exp.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("paper: sentinel replay %s: %w", id, err)
		}
		curRaw, err := EncodeTable(cur)
		if err != nil {
			return nil, fmt.Errorf("paper: sentinel encode %s: %w", id, err)
		}
		base, baseRaw, err := s.Baseline.Load(id)
		switch {
		case errors.Is(err, ErrNoBaseline):
			rep.Experiments = append(rep.Experiments, ExperimentDiff{
				ID: id, Status: "missing-baseline", Flagged: 1,
			})
			rep.Regressions++
		case err != nil:
			return nil, err
		default:
			d := DiffTables(base, cur, s.Threshold)
			d.Identical = string(curRaw) == string(baseRaw)
			if d.Status == "regression" {
				rep.Regressions++
			}
			rep.Experiments = append(rep.Experiments, d)
		}
		rep.Checked++
	}
	return rep, nil
}

// DiffTables compares a current table against its baseline. Rows are
// aligned by their label (first cell) so a reordered table reports
// moved rows structurally rather than as a wall of cell deltas;
// duplicate labels pair up in order of appearance.
func DiffTables(baseline, current *Table, relThreshold float64) ExperimentDiff {
	d := ExperimentDiff{ID: current.ID, Status: "ok"}
	structural := func(format string, args ...any) {
		d.Structural = append(d.Structural, fmt.Sprintf(format, args...))
		d.Flagged++
	}
	if baseline.ID != current.ID {
		structural("id: %q -> %q", baseline.ID, current.ID)
	}
	if baseline.Title != current.Title {
		structural("title: %q -> %q", baseline.Title, current.Title)
	}
	if baseline.Note != current.Note {
		structural("note: %q -> %q", baseline.Note, current.Note)
	}
	if len(baseline.Header) != len(current.Header) {
		structural("header: %d columns -> %d columns", len(baseline.Header), len(current.Header))
	}
	for i := 0; i < len(baseline.Header) && i < len(current.Header); i++ {
		if baseline.Header[i] != current.Header[i] {
			structural("header[%d]: %q -> %q", i, baseline.Header[i], current.Header[i])
		}
	}

	// Pair rows by label, consuming current-side matches in order.
	claimed := make([]bool, len(current.Rows))
	match := func(label string) int {
		for j, row := range current.Rows {
			if !claimed[j] && len(row) > 0 && row[0] == label {
				claimed[j] = true
				return j
			}
		}
		return -1
	}
	for _, brow := range baseline.Rows {
		if len(brow) == 0 {
			continue
		}
		j := match(brow[0])
		if j < 0 {
			structural("row %q: missing from current", brow[0])
			continue
		}
		crow := current.Rows[j]
		if len(brow) != len(crow) {
			structural("row %q: %d cells -> %d cells", brow[0], len(brow), len(crow))
		}
		for i := 1; i < len(brow) && i < len(crow); i++ {
			if brow[i] == crow[i] {
				continue
			}
			col := fmt.Sprintf("col%d", i)
			if i < len(baseline.Header) {
				col = baseline.Header[i]
			}
			c := CellDelta{Row: brow[0], Column: col, A: brow[i], B: crow[i]}
			va, aok := numericCell(brow[i])
			vb, bok := numericCell(crow[i])
			if aok && bok {
				c.Numeric = true
				c.AbsDelta = vb - va
				c.RelDelta = symRelDelta(va, vb)
				c.Significant = c.RelDelta > relThreshold
			} else {
				c.Significant = true
			}
			if c.Significant {
				d.Flagged++
			}
			d.Cells = append(d.Cells, c)
		}
	}
	for j, row := range current.Rows {
		if !claimed[j] && len(row) > 0 {
			structural("row %q: not in baseline", row[0])
		}
	}
	if d.Flagged > 0 {
		d.Status = "regression"
	}
	return d
}

// numericCell parses a table cell as a number, tolerating the percent
// suffix the formatting helpers emit.
func numericCell(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	return v, err == nil
}

// symRelDelta is the symmetric relative delta |b-a| / max(|a|,|b|),
// zero when both sides are zero.
func symRelDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}
