package paper

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mallocsim/internal/store"
)

func table(id string, header []string, rows ...[]string) *Table {
	return &Table{ID: id, Title: "t", Header: header, Rows: rows}
}

func TestDiffTablesIdentical(t *testing.T) {
	a := table("x", []string{"Program", "v"}, []string{"gs", "1.00"})
	d := DiffTables(a, a, 0)
	if d.Status != "ok" || d.Flagged != 0 || len(d.Cells) != 0 {
		t.Fatalf("self diff = %+v", d)
	}
}

func TestDiffTablesNumericCell(t *testing.T) {
	a := table("x", []string{"Program", "rate"}, []string{"gs", "4.00%"})
	b := table("x", []string{"Program", "rate"}, []string{"gs", "5.00%"})
	d := DiffTables(a, b, 0)
	if d.Status != "regression" || len(d.Cells) != 1 {
		t.Fatalf("diff = %+v", d)
	}
	c := d.Cells[0]
	if c.Row != "gs" || c.Column != "rate" || !c.Numeric || !c.Significant {
		t.Fatalf("cell = %+v", c)
	}
	if c.AbsDelta != 1.0 {
		t.Fatalf("abs delta = %v", c.AbsDelta)
	}
	if c.RelDelta < 0.19 || c.RelDelta > 0.21 {
		t.Fatalf("rel delta = %v", c.RelDelta)
	}
}

func TestDiffTablesThreshold(t *testing.T) {
	a := table("x", []string{"Program", "v"}, []string{"gs", "100.00"})
	b := table("x", []string{"Program", "v"}, []string{"gs", "100.05"})
	if d := DiffTables(a, b, 0.01); d.Status != "regression" && d.Flagged != 0 {
		t.Fatalf("sub-threshold diff flagged: %+v", d)
	} else if d.Status != "ok" {
		t.Fatalf("status = %q", d.Status)
	} else if len(d.Cells) != 1 || d.Cells[0].Significant {
		t.Fatalf("sub-threshold delta must be recorded but not significant: %+v", d.Cells)
	}
	if d := DiffTables(a, b, 0); d.Status != "regression" {
		t.Fatalf("zero threshold must flag any change: %+v", d)
	}
}

func TestDiffTablesStructural(t *testing.T) {
	a := table("x", []string{"Program", "v"},
		[]string{"gs", "1"}, []string{"ptc", "2"})
	b := table("x", []string{"Program", "w"},
		[]string{"gs", "1"}, []string{"cfrac", "3"})
	d := DiffTables(a, b, 0)
	if d.Status != "regression" {
		t.Fatalf("structural diff not flagged: %+v", d)
	}
	joined := strings.Join(d.Structural, "\n")
	for _, want := range []string{`header[1]: "v" -> "w"`, `row "ptc": missing`, `row "cfrac": not in baseline`} {
		if !strings.Contains(joined, want) {
			t.Fatalf("structural %q missing from:\n%s", want, joined)
		}
	}
}

func TestDiffTablesRowReorder(t *testing.T) {
	a := table("x", []string{"Program", "v"},
		[]string{"gs", "1"}, []string{"ptc", "2"})
	b := table("x", []string{"Program", "v"},
		[]string{"ptc", "2"}, []string{"gs", "1"})
	d := DiffTables(a, b, 0)
	if len(d.Cells) != 0 || len(d.Structural) != 0 {
		t.Fatalf("reordered rows produced deltas: %+v", d)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	orig := table("figure4", []string{"Program", "bsd"}, []string{"gs", "1.23"})
	orig.Title = "Normalized Execution Time"
	orig.Note = "a note"
	raw, err := EncodeTable(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := EncodeTable(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip not byte-stable:\n%s\n%s", raw, raw2)
	}
	if _, err := DecodeTable([]byte(`{"version":1,"kind":"something-else"}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := DecodeTable([]byte(`{"version":99,"kind":"mallocsim-table"}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestSentinelCleanReplay is the acceptance battery: replaying the full
// golden matrix at the recorded scale against the committed fixtures
// must yield zero regressions with every experiment byte-identical.
func TestSentinelCleanReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replay in -short mode")
	}
	s := &Sentinel{
		Runner:   NewRunner(GoldenScale),
		Baseline: DirBaseline{Dir: "testdata/golden"},
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean tree regressed:\n%s", rep.String())
	}
	if rep.Checked != 17 || len(rep.Experiments) != 17 {
		t.Fatalf("checked %d experiments, want 17", rep.Checked)
	}
	for _, e := range rep.Experiments {
		if e.Status != "ok" || !e.Identical {
			t.Fatalf("%s: status %q identical=%v — golden replay must be byte-identical", e.ID, e.Status, e.Identical)
		}
	}
	if !strings.Contains(rep.String(), "clean — no regressions") {
		t.Fatalf("text verdict missing: %s", rep.String())
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["kind"] != SentinelKind || doc["regressions"].(float64) != 0 {
		t.Fatalf("json verdict = %s", raw)
	}
}

// tamperedBaseline serves the real golden fixtures except for one
// experiment, whose table is mutated before encoding — simulating a
// regression between the tree and its recorded baseline.
type tamperedBaseline struct {
	inner  BaselineSource
	id     string
	mutate func(*Table)
}

func (tb tamperedBaseline) Load(id string) (*Table, []byte, error) {
	tab, raw, err := tb.inner.Load(id)
	if err != nil || id != tb.id {
		return tab, raw, err
	}
	tb.mutate(tab)
	raw, err = EncodeTable(tab)
	return tab, raw, err
}

// TestSentinelFlagsInjectedRegression perturbs one numeric cell of the
// table2 baseline and requires the sentinel to attribute the exact
// experiment, row, column and delta — in the structured report and in
// the human-readable rendering.
func TestSentinelFlagsInjectedRegression(t *testing.T) {
	var row, col string
	s := &Sentinel{
		Runner: NewRunner(GoldenScale),
		Baseline: tamperedBaseline{
			inner: DirBaseline{Dir: "testdata/golden"},
			id:    "table2",
			mutate: func(tab *Table) {
				row, col = tab.Rows[0][0], tab.Header[1]
				tab.Rows[0][1] = "999999.0"
			},
		},
		Experiments: []string{"table2", "table3"},
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", rep.Regressions, rep.String())
	}
	var d *ExperimentDiff
	for i := range rep.Experiments {
		if rep.Experiments[i].ID == "table2" {
			d = &rep.Experiments[i]
		} else if rep.Experiments[i].Status != "ok" {
			t.Fatalf("untampered %s flagged: %+v", rep.Experiments[i].ID, rep.Experiments[i])
		}
	}
	if d == nil || d.Status != "regression" || d.Identical {
		t.Fatalf("tampered experiment diff = %+v", d)
	}
	var hit *CellDelta
	for i := range d.Cells {
		if d.Cells[i].Row == row && d.Cells[i].Column == col {
			hit = &d.Cells[i]
		}
	}
	if hit == nil {
		t.Fatalf("no cell delta for [%s × %s]: %+v", row, col, d.Cells)
	}
	if !hit.Significant || !hit.Numeric || hit.AbsDelta >= 0 {
		t.Fatalf("cell delta = %+v (current is far below the tampered baseline)", hit)
	}

	text := rep.String()
	for _, want := range []string{"table2", "REGRESSION", row, col} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"table2"`, `"status":"regression"`, `"row":"` + row + `"`, `"abs_delta"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("json report missing %s:\n%s", want, raw)
		}
	}
}

// TestSentinelMissingBaseline: an experiment with no recorded baseline
// is flagged, not silently skipped.
func TestSentinelMissingBaseline(t *testing.T) {
	s := &Sentinel{
		Runner:      NewRunner(GoldenScale),
		Baseline:    DirBaseline{Dir: t.TempDir()},
		Experiments: []string{"table1"},
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Experiments[0].Status != "missing-baseline" {
		t.Fatalf("missing baseline not flagged: %+v", rep.Experiments)
	}
	if !strings.Contains(rep.String(), "MISSING BASELINE") {
		t.Fatalf("text verdict: %s", rep.String())
	}
}

// TestSentinelStoreRoundTrip ingests golden fixtures into a durable
// store, then replays against the store-backed baseline: the stored
// documents must serve byte-identically to the files they came from.
func TestSentinelStoreRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"table1", "table2", "table3"}
	dir := DirBaseline{Dir: "testdata/golden"}
	for _, id := range ids {
		tab, _, err := dir.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		hash, err := RecordTable(st, tab, GoldenScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Recording the identical table again is idempotent.
		if again, err := RecordTable(st, tab, GoldenScale, 1); err != nil || again != hash {
			t.Fatalf("re-record: %v (hash %s vs %s)", err, again, hash)
		}
	}
	if st.Len() != len(ids) {
		t.Fatalf("store has %d documents, want %d", st.Len(), len(ids))
	}
	s := &Sentinel{
		Runner:      NewRunner(GoldenScale),
		Baseline:    StoreBaseline{Store: st},
		Experiments: ids,
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store-backed replay regressed:\n%s", rep.String())
	}
	for _, e := range rep.Experiments {
		if !e.Identical {
			t.Fatalf("%s not byte-identical through the store", e.ID)
		}
	}
	// An experiment that was never recorded is missing, not invented.
	s.Experiments = []string{"figure9"}
	rep, err = s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiments[0].Status != "missing-baseline" {
		t.Fatalf("unrecorded experiment = %+v", rep.Experiments[0])
	}
}
