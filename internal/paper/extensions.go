package paper

// Extension experiments beyond the paper's own tables and figures, each
// anchored in a direction the paper itself raises:
//
//   - ext-penalty: §4.4 — "if cache miss penalties increase
//     dramatically, the added CPU overhead required to obtain the
//     marginal increase in locality may then be warranted". Sweeps the
//     miss penalty from the paper's 25 cycles to Mogul & Borg's 200 and
//     beyond, finding where GNU LOCAL's trade flips.
//   - ext-victim: the paper's reference [11] (Jouppi) proposes victim
//     caches for exactly the conflict misses the allocators induce;
//     how much of FIRSTFIT's pathology does a small victim buffer absorb?
//   - ext-flush: §3.2 — the paper "intentionally avoid[s] introducing
//     the effects of intermittent cache flushes"; this experiment adds
//     them back (context switches à la Mogul & Borg).
//   - ext-tlb: the third locality level — a fully-associative TLB
//     simulated with the same machinery (page-sized lines).
//   - ext-lifetime: §5.1 future work — lifetime-prediction-guided
//     segregation (Barrett & Zorn) versus the plain §4.4 architecture.
//   - ext-seqfit: Standish's sequential-fit family (first fit / best
//     fit / address-ordered / head-scan) compared on equal footing.

import (
	"context"
	"fmt"

	"mallocsim/internal/apps"
	"mallocsim/internal/cache"
	"mallocsim/internal/cost"
	"mallocsim/internal/mem"
	"mallocsim/internal/sim"
	"mallocsim/internal/trace"
	"mallocsim/internal/workload"

	"mallocsim/internal/alloc"
)

// extensions returns the extension experiment index.
func (r *Runner) extensions() []Experiment {
	return []Experiment{
		{"ext-penalty", r.ExtPenaltySweep, "miss-penalty sweep: where does GNU LOCAL start to win?"},
		{"ext-victim", r.ExtVictimCache, "Jouppi victim cache vs allocator conflict misses"},
		{"ext-flush", r.ExtCacheFlush, "context-switch cache flushes (the effect §3.2 excludes)"},
		{"ext-tlb", r.ExtTLB, "TLB miss rates per allocator (64-entry fully associative)"},
		{"ext-lifetime", r.ExtLifetime, "lifetime-predicted segregation (§5.1 future work)"},
		{"ext-seqfit", r.ExtSequentialFits, "the sequential-fit family: first/best/address-ordered fit"},
		{"ext-taxonomy", r.ExtTaxonomy, "Standish's three allocator families compared (§2.1)"},
		{"ext-hierarchy", r.ExtHierarchy, "two-level cache (Mogul & Borg: 200-cycle L2 miss)"},
		{"ext-linesize", r.ExtLineSize, "cache line size sweep (Smith [21]: hardware prefetching)"},
		{"ext-apps", r.ExtApps, "real pointer-chasing kernels in simulated memory, per allocator"},
		{"ext-frag", r.ExtFragmentation, "space overhead over time (heap bytes per live payload byte)"},
		{"ext-seeds", r.ExtSeedSensitivity, "seed sensitivity: do the orderings hold across workload seeds?"},
	}
}

// ExtSeedSensitivity reruns the 16 K GS-Small cache experiment across
// several workload seeds. The paper's tooling was deterministic and
// needed no averaging; our synthetic workloads are deterministic too,
// but parameterized by a seed — this experiment shows the paper-shape
// conclusions are not artifacts of one draw.
func (r *Runner) ExtSeedSensitivity(ctx context.Context) (*Table, error) {
	allocs := []string{"firstfit", "gnufit", "bsd", "gnulocal", "quickfit"}
	seeds := []uint64{1, 2, 3, 4, 5}
	t := &Table{
		ID:     "ext-seeds",
		Title:  "GS-Small 16K miss rate (%) across workload seeds (min / mean / max)",
		Note:   r.note(),
		Header: []string{"Allocator", "min", "mean", "max", "worst-of-5?"},
	}
	// rates[allocator][seed index]
	rates := make(map[string][]float64)
	for _, seed := range seeds {
		for _, a := range allocs {
			prog, _ := workload.ByName("gs-small")
			res, err := sim.RunContext(ctx, sim.Config{
				Program:   prog,
				Allocator: a,
				Scale:     r.Scale,
				Seed:      seed,
				Caches:    []cache.Config{{Size: 16 << 10}},
			})
			if err != nil {
				return nil, err
			}
			rates[a] = append(rates[a], res.Caches[0].MissRate()*100)
		}
	}
	// Per seed, which allocator had the worst miss rate?
	worstCount := make(map[string]int)
	for i := range seeds {
		worst, worstRate := "", -1.0
		for _, a := range allocs {
			if rates[a][i] > worstRate {
				worst, worstRate = a, rates[a][i]
			}
		}
		worstCount[worst]++
	}
	for _, a := range allocs {
		min, max, sum := rates[a][0], rates[a][0], 0.0
		for _, v := range rates[a] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		t.AddRow(a, f3(min), f3(sum/float64(len(rates[a]))), f3(max),
			fmt.Sprintf("%d/%d", worstCount[a], len(seeds)))
	}
	return t, nil
}

// ExtFragmentation tracks each allocator's space overhead — heap bytes
// requested from the OS per live payload byte — over the course of an
// espresso run, quantifying the paper's §4.1 space-efficiency axis as
// a time series: does fragmentation converge or keep growing?
func (r *Runner) ExtFragmentation(ctx context.Context) (*Table, error) {
	allocs := []string{"firstfit", "firstfit-addrorder", "bsd", "buddy", "fibbuddy", "quickfit", "custom"}
	t := &Table{
		ID:     "ext-frag",
		Title:  "Espresso space overhead over time (heap bytes per live payload byte)",
		Note:   r.note(),
		Header: append([]string{"Run fraction"}, allocs...),
	}
	prog, _ := workload.ByName("espresso")
	nAllocs := prog.Allocs / r.Scale
	series := make(map[string][]workload.Sample)
	for _, a := range allocs {
		meter := &cost.Meter{}
		m := mem.New(trace.Discard, meter)
		inst, err := alloc.New(a, m)
		if err != nil {
			return nil, err
		}
		stats, err := workload.RunContext(ctx, m, inst, workload.Config{
			Program:     prog,
			Scale:       r.Scale,
			Seed:        r.Seed,
			SampleEvery: nAllocs/20 + 1,
		})
		if err != nil {
			return nil, err
		}
		series[a] = stats.Samples
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, a := range allocs {
			s := series[a]
			idx := int(float64(len(s)-1) * frac)
			row = append(row, fmt.Sprintf("%.2f", s[idx].Overhead()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtApps runs the benchmark kernels of package apps — real programs
// computing in simulated memory — under each allocator, reporting the
// malloc+free instruction share, heap footprint and 16 K miss rate.
// The checksum column is the end-to-end correctness oracle: it must be
// identical down each app's row.
func (r *Runner) ExtApps(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "ext-apps",
		Title:  "Pointer-chasing kernels (simulated-memory programs): per allocator malloc+free % / heap KB / 16K miss %",
		Note:   "kernel size scales with 1/scale; checksums verified identical across allocators",
		Header: append([]string{"Kernel"}, Allocators...),
	}
	size := int(60000 / r.Scale)
	if size < 200 {
		size = 200
	}
	for _, appName := range apps.Names() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ext-apps: %w", context.Cause(ctx))
		}
		app, _ := apps.Get(appName)
		row := []string{appName}
		var want uint64
		for i, allocName := range Allocators {
			// Each iteration replays a whole kernel; poll per allocator so
			// cancellation lands between kernels, not after the full row.
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ext-apps: %w", context.Cause(ctx))
			}
			meter := &cost.Meter{}
			c16 := cache.New(cache.Config{Size: 16 << 10})
			m := mem.New(c16, meter)
			m.SetBatching(0)
			a, err := alloc.New(allocName, m)
			if err != nil {
				return nil, err
			}
			sum, err := app.Run(apps.NewCtx(m, a, r.Seed), size)
			if err != nil {
				return nil, fmt.Errorf("ext-apps %s/%s: %w", appName, allocName, err)
			}
			m.Flush()
			if i == 0 {
				want = sum
			} else if sum != want {
				return nil, fmt.Errorf("ext-apps %s: checksum mismatch under %s (%#x vs %#x)",
					appName, allocName, sum, want)
			}
			row = append(row, fmt.Sprintf("%.1f/%s/%.2f",
				meter.AllocFraction()*100, kb(m.Footprint()), c16.MissRate()*100))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtHierarchy evaluates the allocators under the two-level hierarchy
// the paper cites from Mogul & Borg: a small L1 backed by a large L2
// with a 200-cycle memory penalty. Reported: L1 and global miss rates,
// write-back traffic, and estimated time under the deep-hierarchy
// stall model — the future regime the paper argues will reward GNU
// LOCAL's locality engineering.
func (r *Runner) ExtHierarchy(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "ext-hierarchy",
		Title:  "GS-Small on a two-level hierarchy (16K direct L1, 256K 2-way L2, 12/200-cycle service): L1 miss % / global miss % / writebacks per Kref / est. sec",
		Note:   r.note(),
		Header: []string{"Allocator", "L1 miss", "global miss", "wb/Kref", "est sec"},
	}
	for _, a := range Allocators {
		h := cache.NewHierarchy(
			cache.Config{Size: 16 << 10},
			cache.Config{Size: 256 << 10, Assoc: 2},
		)
		meter, err := r.extRun(ctx, "gs-small", a, h)
		if err != nil {
			return nil, err
		}
		cycles := meter.Total() + h.StallCycles()
		secs := float64(cycles) * float64(r.Scale) / sim.ClockHz
		wb := float64(h.L1.Writebacks()+h.L2.Writebacks()) / float64(h.Accesses()) * 1000
		t.AddRow(a,
			f3(h.L1MissRate()*100),
			f3(h.GlobalMissRate()*100),
			fmt.Sprintf("%.1f", wb),
			fmt.Sprintf("%.1f", secs))
	}
	return t, nil
}

// ExtLineSize sweeps the cache block size at fixed 16 K capacity. The
// paper's §4.2 notes that prefetching "usually arises when cache lines
// contain multiple words — referencing one word automatically brings
// other words into the cache" (Smith); longer lines reward allocators
// that pack related data densely and punish metadata pollution.
func (r *Runner) ExtLineSize(ctx context.Context) (*Table, error) {
	lineSizes := []uint64{16, 32, 64, 128}
	t := &Table{
		ID:     "ext-linesize",
		Title:  "GS-Small 16K direct-mapped miss rate (%) vs line size",
		Note:   r.note(),
		Header: []string{"Allocator", "16B", "32B", "64B", "128B"},
	}
	for _, a := range Allocators {
		caches := make([]*cache.Cache, len(lineSizes))
		sinks := make([]trace.Sink, len(lineSizes))
		for i, ls := range lineSizes {
			caches[i] = cache.New(cache.Config{Size: 16 << 10, LineSize: ls})
			sinks[i] = caches[i]
		}
		if _, err := r.extRun(ctx, "gs-small", a, trace.NewTee(sinks...)); err != nil {
			return nil, err
		}
		row := []string{a}
		for _, c := range caches {
			row = append(row, f3(c.MissRate()*100))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtTaxonomy compares one representative of each category in
// Standish's taxonomy (§2.1) — sequential fit, buddy system and
// segregated storage — plus the paper's recommended architecture, on
// the paper's metrics. The paper evaluates only the first and third
// families; the binary buddy implementation completes the picture.
func (r *Runner) ExtTaxonomy(ctx context.Context) (*Table, error) {
	allocs := []string{"firstfit", "buddy", "fibbuddy", "quickfit", "custom"}
	labels := []string{"sequential (firstfit)", "buddy (binary)", "buddy (Fibonacci)", "segregated (quickfit)", "recommended (custom)"}
	t := &Table{
		ID:     "ext-taxonomy",
		Title:  "Standish's allocator taxonomy on espresso: malloc+free % / heap KB / 16K miss % / faults-per-Mref at half memory",
		Note:   r.note(),
		Header: append([]string{"Metric"}, labels...),
	}
	results := map[string]*sim.Result{}
	for _, a := range allocs {
		prog, _ := workload.ByName("espresso")
		res, err := sim.RunContext(ctx, sim.Config{
			Program:   prog,
			Allocator: a,
			Scale:     r.Scale,
			Seed:      r.Seed,
			Caches:    []cache.Config{{Size: 16 << 10}},
			PageSim:   true,
		})
		if err != nil {
			return nil, err
		}
		results[a] = res
	}
	add := func(name string, f func(*sim.Result) string) {
		cells := []string{name}
		for _, a := range allocs {
			cells = append(cells, f(results[a]))
		}
		t.AddRow(cells...)
	}
	add("malloc+free (% time)", func(r *sim.Result) string { return f2(r.AllocFraction() * 100) })
	add("heap (KB)", func(r *sim.Result) string { return kb(r.Footprint) })
	add("16K miss (%)", func(r *sim.Result) string { return f3(r.Caches[0].MissRate() * 100) })
	add("faults/Mref @ half mem", func(res *sim.Result) string {
		half := res.Curve.MinResidentPages() / 2
		if half == 0 {
			half = 1
		}
		return fmt.Sprintf("%.1f", res.Curve.FaultRate(half)*1e6)
	})
	return t, nil
}

// ExtPenaltySweep recomputes the paper's execution-time model across
// miss penalties. It reuses the memoized runs: the penalty enters only
// the analytical T = I + M·P·D step.
func (r *Runner) ExtPenaltySweep(ctx context.Context) (*Table, error) {
	const cacheSize = 64 << 10
	allocs := []string{"firstfit", "bsd", "quickfit", "gnulocal"}
	penalties := []uint64{10, 25, 50, 100, 200, 400}
	t := &Table{
		ID:     "ext-penalty",
		Title:  "Estimated GhostScript time (sec) vs miss penalty, 64K cache — the §4.4 crossover",
		Note:   r.note(),
		Header: append([]string{"Penalty (cycles)"}, append(append([]string{}, allocs...), "winner")...),
	}
	for _, p := range penalties {
		row := []string{fmt.Sprintf("%d", p)}
		best, bestTime := "", 0.0
		for _, a := range allocs {
			res, err := r.Result(ctx, "gs", a)
			if err != nil {
				return nil, err
			}
			secs := res.Seconds(res.TotalCycles(cacheSize, p))
			row = append(row, fmt.Sprintf("%.1f", secs))
			if best == "" || secs < bestTime {
				best, bestTime = a, secs
			}
		}
		row = append(row, best)
		t.AddRow(row...)
	}
	return t, nil
}

// extRun executes one ad-hoc simulation through arbitrary sinks,
// returning the meter. Used by extensions whose instrumentation is not
// expressible as a cache.Config list. References are batched (all the
// locality simulators implement trace.BatchSink) and flushed before
// returning, so callers may read sink state immediately.
func (r *Runner) extRun(ctx context.Context, progName, allocName string, sink trace.Sink) (*cost.Meter, error) {
	prog, ok := workload.ByName(progName)
	if !ok {
		return nil, fmt.Errorf("paper: unknown program %q", progName)
	}
	meter := &cost.Meter{}
	m := mem.New(sink, meter)
	m.SetBatching(0)
	a, err := alloc.New(allocName, m)
	if err != nil {
		return nil, err
	}
	if _, err := workload.RunContext(ctx, m, a, workload.Config{Program: prog, Scale: r.Scale, Seed: r.Seed}); err != nil {
		return nil, err
	}
	m.Flush()
	return meter, nil
}

// ExtVictimCache compares a plain 16 K direct-mapped cache against the
// same cache with a 4-entry victim buffer and against a 2-way cache of
// equal size, per allocator.
func (r *Runner) ExtVictimCache(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "ext-victim",
		Title:  "GS-Small 16K cache: plain vs +4-entry victim buffer vs 2-way (miss %)",
		Note:   r.note(),
		Header: []string{"Allocator", "direct", "victim", "rescued", "2-way"},
	}
	for _, a := range Allocators {
		plain := cache.New(cache.Config{Size: 16 << 10})
		victim := cache.NewVictim(cache.Config{Size: 16 << 10}, 4)
		twoWay := cache.New(cache.Config{Size: 16 << 10, Assoc: 2})
		if _, err := r.extRun(ctx, "gs-small", a, trace.NewTee(plain, victim, twoWay)); err != nil {
			return nil, err
		}
		rescued := 0.0
		if plain.Misses() > 0 {
			rescued = float64(victim.VictimHits()) / float64(plain.Misses())
		}
		t.AddRow(a,
			f3(plain.MissRate()*100),
			f3(victim.MissRate()*100),
			pct(rescued),
			f3(twoWay.MissRate()*100))
	}
	return t, nil
}

// ExtCacheFlush adds periodic whole-cache invalidations, modelling the
// context-switch interference the paper excluded.
func (r *Runner) ExtCacheFlush(ctx context.Context) (*Table, error) {
	intervals := []uint64{0, 1 << 20, 1 << 17, 1 << 14}
	t := &Table{
		ID:     "ext-flush",
		Title:  "GS-Small 64K miss rate (%) under periodic cache flushes (context switches)",
		Note:   r.note(),
		Header: []string{"Allocator", "no flush", "every 1M refs", "every 128K", "every 16K"},
	}
	for _, a := range []string{"firstfit", "quickfit", "gnulocal"} {
		caches := make([]*cache.Cache, len(intervals))
		sinks := make([]trace.Sink, len(intervals))
		for i, iv := range intervals {
			caches[i] = cache.New(cache.Config{Size: 64 << 10, FlushInterval: iv})
			sinks[i] = caches[i]
		}
		if _, err := r.extRun(ctx, "gs-small", a, trace.NewTee(sinks...)); err != nil {
			return nil, err
		}
		row := []string{a}
		for _, c := range caches {
			row = append(row, f3(c.MissRate()*100))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtTLB measures TLB locality: a fully-associative LRU TLB is a cache
// with page-sized lines, simulated with the existing machinery.
func (r *Runner) ExtTLB(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "ext-tlb",
		Title:  "TLB miss rate (%) per allocator, espresso (fully associative, 4 KB pages)",
		Note:   r.note(),
		Header: []string{"Allocator", "8-entry", "16-entry", "64-entry"},
	}
	entries := []int{8, 16, 64}
	for _, a := range Allocators {
		tlbs := make([]*cache.Cache, len(entries))
		sinks := make([]trace.Sink, len(entries))
		for i, n := range entries {
			tlbs[i] = cache.New(cache.Config{
				Size:     uint64(n) * mem.PageSize,
				LineSize: mem.PageSize,
				Assoc:    n,
			})
			sinks[i] = tlbs[i]
		}
		if _, err := r.extRun(ctx, "espresso", a, trace.NewTee(sinks...)); err != nil {
			return nil, err
		}
		row := []string{a}
		for _, c := range tlbs {
			row = append(row, f3(c.MissRate()*100))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtLifetime compares the lifetime-segregated allocator against the
// plain recommended architecture and BSD on footprint, paging and
// cache behaviour.
func (r *Runner) ExtLifetime(ctx context.Context) (*Table, error) {
	allocs := []string{"bsd", "custom", "lifetime"}
	t := &Table{
		ID:     "ext-lifetime",
		Title:  "Lifetime-predicted segregation on espresso: heap KB / faults-per-Mref at half memory / 16K miss %",
		Note:   r.note(),
		Header: append([]string{"Metric"}, allocs...),
	}
	type row struct {
		heapKB uint64
		faults float64
		miss   float64
	}
	rows := map[string]row{}
	for _, a := range allocs {
		prog, _ := workload.ByName("espresso")
		res, err := sim.RunContext(ctx, sim.Config{
			Program:   prog,
			Allocator: a,
			Scale:     r.Scale,
			Seed:      r.Seed,
			Caches:    []cache.Config{{Size: 16 << 10}},
			PageSim:   true,
		})
		if err != nil {
			return nil, err
		}
		half := res.Curve.MinResidentPages() / 2
		if half == 0 {
			half = 1
		}
		rows[a] = row{
			heapKB: (res.Footprint + 1023) / 1024,
			faults: res.Curve.FaultRate(half) * 1e6,
			miss:   res.Caches[0].MissRate() * 100,
		}
	}
	add := func(name string, f func(row) string) {
		cells := []string{name}
		for _, a := range allocs {
			cells = append(cells, f(rows[a]))
		}
		t.AddRow(cells...)
	}
	add("heap (KB)", func(r row) string { return fmt.Sprintf("%d", r.heapKB) })
	add("faults/Mref @ half mem", func(r row) string { return fmt.Sprintf("%.1f", r.faults) })
	add("16K miss rate (%)", func(r row) string { return f3(r.miss) })
	return t, nil
}

// ExtSequentialFits compares the sequential-fit family the paper's §2.1
// taxonomy names, on espresso.
func (r *Runner) ExtSequentialFits(ctx context.Context) (*Table, error) {
	allocs := []string{"firstfit", "firstfit-norover", "firstfit-addrorder", "firstfit-nocoalesce", "bestfit"}
	t := &Table{
		ID:     "ext-seqfit",
		Title:  "Sequential-fit family on espresso: malloc+free % / heap KB / 16K miss % / 64K miss %",
		Note:   r.note(),
		Header: append([]string{"Metric"}, allocs...),
	}
	results := map[string]*sim.Result{}
	for _, a := range allocs {
		prog, _ := workload.ByName("espresso")
		res, err := sim.RunContext(ctx, sim.Config{
			Program:   prog,
			Allocator: a,
			Scale:     r.Scale,
			Seed:      r.Seed,
			Caches:    []cache.Config{{Size: 16 << 10}, {Size: 64 << 10}},
		})
		if err != nil {
			return nil, err
		}
		results[a] = res
	}
	add := func(name string, f func(*sim.Result) string) {
		cells := []string{name}
		for _, a := range allocs {
			cells = append(cells, f(results[a]))
		}
		t.AddRow(cells...)
	}
	add("malloc+free (% time)", func(r *sim.Result) string { return f2(r.AllocFraction() * 100) })
	add("heap (KB)", func(r *sim.Result) string { return kb(r.Footprint) })
	add("16K miss (%)", func(r *sim.Result) string {
		c, _ := r.CacheResult(16 << 10)
		return f3(c.MissRate() * 100)
	})
	add("64K miss (%)", func(r *sim.Result) string {
		c, _ := r.CacheResult(64 << 10)
		return f3(c.MissRate() * 100)
	})
	return t, nil
}
