package paper

import (
	"context"
	"fmt"

	"mallocsim/internal/alloc"
)

// serverScenario names the concurrent workload behind the server
// experiment (see workload.ServerByName).
const serverScenario = "server"

// Server extends the evaluation to a concurrent, server-shaped workload
// the paper could not measure in 1993: eight logical threads with
// per-thread allocation streams, bursty arrivals and producer/consumer
// frees. Every registered allocator — the paper's five, the extended
// family, and the modern designs including locarena's hint-segregated
// arenas — serves the identical request sequence, and the table reports
// how its placement decisions translate into cross-thread cache-line
// transfers: true- and false-sharing events per 1000 data references
// and distinct ping-pong lines (the false-sharing column is the one an
// allocator controls — co-locating different threads' objects on one
// line manufactures transfers no program change can avoid), next to the
// familiar 16K miss rate and heap footprint.
func (r *Runner) Server(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "server",
		Title:  "Server workload: cross-thread sharing by allocator (events per 1k data refs)",
		Note:   r.note(),
		Header: []string{"Allocator", "True/1k", "False/1k", "Ping lines", "16K miss%", "Heap KB"},
	}
	for _, a := range alloc.Names() {
		res, err := r.Result(ctx, serverScenario, a)
		if err != nil {
			return nil, err
		}
		s := res.Sharing
		if s == nil {
			return nil, fmt.Errorf("paper: server run for %q carried no sharing summary", a)
		}
		refs := float64(res.Refs.Total())
		if refs == 0 {
			refs = 1
		}
		c16, _ := res.CacheResult(16 << 10)
		t.AddRow(a,
			fmt.Sprintf("%.3f", float64(s.TrueEvents)*1000/refs),
			fmt.Sprintf("%.3f", float64(s.FalseEvents)*1000/refs),
			fmt.Sprintf("%d", s.PingLines),
			fmt.Sprintf("%.2f", c16.MissRate()*100),
			kb(res.Footprint),
		)
	}
	return t, nil
}
