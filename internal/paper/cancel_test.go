package paper

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestResultPreCancelled: the memo layer checks the context before
// consulting or populating the cache.
func TestResultPreCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(4) // coarse scale is irrelevant; it must not run
	if _, err := r.Result(ctx, "make", "bsd"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is context.Canceled", err)
	}
}

// TestRunAllCancelledMidway cancels a full paper run (8 workers, under
// -race in CI) and requires RunAll to return the cancellation cause
// within seconds, not after finishing the remaining matrix.
func TestRunAllCancelledMidway(t *testing.T) {
	t.Parallel()
	r := NewRunner(8) // fine enough that a full run takes much longer than the budget
	r.Workers = 8
	ctx, cancel := context.WithCancelCause(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.RunAll(ctx)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel(context.DeadlineExceeded)
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want errors.Is context.DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunAll did not return within 10s of cancellation")
	}
}

// TestPrefetchCancelledMidway: the worker pool stops promptly too.
func TestPrefetchCancelledMidway(t *testing.T) {
	t.Parallel()
	r := NewRunner(8)
	r.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- r.Prefetch(ctx, r.PaperPairs()) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want errors.Is context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Prefetch did not return within 10s of cancellation")
	}
}
