package paper

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// Figure columns are published output: this pins the modern table's
// column and row order so the family can only grow append-only, and the
// paper columns stay exactly the paper's presentation order.
func TestModernColumnOrder(t *testing.T) {
	wantPaper := []string{"firstfit", "gnufit", "bsd", "gnulocal", "quickfit"}
	if !reflect.DeepEqual(Allocators, wantPaper) {
		t.Errorf("paper figure columns changed:\n got %v\nwant %v", Allocators, wantPaper)
	}
	wantModern := []string{"quickfit", "custom", "bitfit", "vamfit", "locarena"}
	if !reflect.DeepEqual(ModernAllocators, wantModern) {
		t.Errorf("modern figure columns changed:\n got %v\nwant %v", ModernAllocators, wantModern)
	}
	wantProgs := []string{"gawk", "espresso", "gs-small"}
	if !reflect.DeepEqual(modernPrograms, wantProgs) {
		t.Errorf("modern figure rows changed:\n got %v\nwant %v", modernPrograms, wantProgs)
	}
}

func TestModernTable(t *testing.T) {
	r := testRunner()
	tab, err := r.Modern(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "modern" {
		t.Errorf("id %q", tab.ID)
	}
	wantHeader := append([]string{"Program"}, ModernAllocators...)
	if !reflect.DeepEqual(tab.Header, wantHeader) {
		t.Errorf("header %v, want %v", tab.Header, wantHeader)
	}
	if len(tab.Rows) != len(modernPrograms) {
		t.Fatalf("%d rows, want %d", len(tab.Rows), len(modernPrograms))
	}
	for i, row := range tab.Rows {
		if row[0] != modernPrograms[i] {
			t.Errorf("row %d label %q, want %q", i, row[0], modernPrograms[i])
		}
		if len(row) != len(wantHeader) {
			t.Fatalf("row %q has %d cells, want %d", row[0], len(row), len(wantHeader))
		}
		// Every data cell is the Figure 9 compound format:
		// alloc-time% / heap KB / 16K miss% / 64K miss%.
		for _, cell := range row[1:] {
			parts := strings.Split(cell, "/")
			if len(parts) != 4 {
				t.Fatalf("cell %q: want 4 slash-separated metrics", cell)
			}
			for _, p := range parts {
				parseCell(t, p)
			}
		}
	}
	// The experiment is wired into the battery and the pair matrix.
	if _, ok := r.ByID("modern"); !ok {
		t.Error("modern not in experiment index")
	}
	if n := len(r.PairsFor("modern")); n != len(modernPrograms)*len(ModernAllocators) {
		t.Errorf("PairsFor(modern) = %d pairs, want %d", n, len(modernPrograms)*len(ModernAllocators))
	}
}
