package paper

import (
	"context"
	"testing"
)

// TestShardedRunnerByteIdentical: a Runner with sharded cache
// simulation on a full worker pool must render byte-identical tables
// to the sequential unsharded Runner — sharding partitions sets, and
// the partitions' counters are order-independent sums, so no measured
// byte may move. figure4 covers the cache tables, figure2 the paging
// curves (gs runs the page simulator). Run with -race to also check
// the shard workers' chunk handoff.
func TestShardedRunnerByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, id := range []string{"figure4", "figure2"} {
		seq := NewRunner(128)
		seq.Workers = 1
		e, ok := seq.ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		want, err := e.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}

		sharded := NewRunner(128)
		sharded.Workers = 8
		sharded.CacheShards = 8
		es, _ := sharded.ByID(id)
		got, err := es.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: sharded table differs from sequential table:\n--- sequential\n%s\n--- sharded\n%s",
				id, want.String(), got.String())
		}
	}
}
